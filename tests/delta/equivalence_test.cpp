// The tentpole contract: a world advanced by incremental deltas is
// byte-identical — snapshot encode AND a golden query battery — to a
// from-scratch rebuild of the same final state. Randomized across
// seeds so the property covers arbitrary event interleavings, not one
// hand-picked script.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "delta/apply.hpp"
#include "delta/feed.hpp"
#include "delta_test_util.hpp"
#include "synth/rng.hpp"

namespace fa::delta {
namespace {

using testing::ChainResult;
using testing::encode;
using testing::rebuild_reference;
using testing::Reference;
using testing::run_chain;
using testing::small_risk;
using testing::small_world;

// The "golden query battery" of the acceptance criteria: every serving
// read path exercised against both worlds, answers compared exactly.
void expect_query_battery_identical(const core::World& delta_built,
                                    const core::World& rebuilt,
                                    const core::ProviderRiskResult& d_risk,
                                    const core::ProviderRiskResult& r_risk,
                                    std::uint64_t seed) {
  ASSERT_EQ(delta_built.corpus().size(), rebuilt.corpus().size());
  const index::GridIndex& di = delta_built.txr_index();
  const index::GridIndex& ri = rebuilt.txr_index();
  synth::Rng rng(seed * 1315423911ull + 17);
  for (int probe = 0; probe < 32; ++probe) {
    const double cx = rng.uniform(-2.4e6, 2.4e6);
    const double cy = rng.uniform(-1.6e6, 1.6e6);
    const double half = rng.uniform(1e4, 4e5);
    const geo::BBox box{cx - half, cy - half, cx + half, cy + half};
    EXPECT_EQ(di.query_ids(box), ri.query_ids(box)) << "probe " << probe;
    EXPECT_EQ(di.nearest({cx, cy}, 5), ri.nearest({cx, cy}, 5))
        << "probe " << probe;
  }
  for (std::uint32_t id = 0; id < delta_built.corpus().size();
       id += 97) {
    EXPECT_EQ(delta_built.txr_class(id), rebuilt.txr_class(id))
        << "id " << id;
  }
  for (std::size_t p = 0; p < d_risk.rows.size(); ++p) {
    EXPECT_EQ(d_risk.rows[p].fleet, r_risk.rows[p].fleet);
    EXPECT_EQ(d_risk.rows[p].moderate, r_risk.rows[p].moderate);
    EXPECT_EQ(d_risk.rows[p].high, r_risk.rows[p].high);
    EXPECT_EQ(d_risk.rows[p].very_high, r_risk.rows[p].very_high);
  }
  EXPECT_EQ(d_risk.regional_brands_at_risk, r_risk.regional_brands_at_risk);
}

TEST(Equivalence, DeltaBuiltEpochMatchesFromScratchRebuild) {
  for (const std::uint64_t seed : {1ull, 7ull, 23ull, 101ull, 4099ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FeedOptions options;
    options.seed = seed;
    const ChainResult chain =
        run_chain(small_world(), small_risk(), options, 3);
    ASSERT_EQ(chain.batches_applied, 3u);
    const Reference ref = rebuild_reference(chain.world);
    EXPECT_EQ(encode(chain.world, chain.risk),
              encode(ref.world, ref.risk))
        << "snapshot bytes diverge from from-scratch rebuild";
    expect_query_battery_identical(chain.world, ref.world, chain.risk,
                                   ref.risk, seed);
  }
}

TEST(Equivalence, LongerChainStillMatches) {
  FeedOptions options;
  options.seed = 555;
  options.events_per_tick_mean = 64;
  const ChainResult chain =
      run_chain(small_world(), small_risk(), options, 8);
  ASSERT_EQ(chain.batches_applied, 8u);
  const Reference ref = rebuild_reference(chain.world);
  EXPECT_EQ(encode(chain.world, chain.risk), encode(ref.world, ref.risk));
}

TEST(Equivalence, ApplyIsDeterministic) {
  FeedOptions options;
  options.seed = 31;
  const ChainResult a = run_chain(small_world(), small_risk(), options, 3);
  const ChainResult b = run_chain(small_world(), small_risk(), options, 3);
  EXPECT_EQ(encode(a.world, a.risk), encode(b.world, b.risk));
}

TEST(Equivalence, EmptyBatchIsIdentity) {
  auto applied = Applier::apply(small_world(), small_risk(), {}, {});
  ASSERT_TRUE(applied.ok());
  ApplyResult result = std::move(applied).take();
  EXPECT_EQ(result.stats.events, 0u);
  EXPECT_TRUE(result.whp_shared);
  EXPECT_EQ(encode(result.world, result.provider_risk),
            encode(small_world(), small_risk()));
}

TEST(Equivalence, StructureSharingOnCorpusOnlyBatches) {
  // Add/retire/move never touch WHP or counties — those layers must be
  // the SAME allocation, not equal copies.
  std::vector<FeedEvent> batch;
  FeedEvent add;
  add.seq = 0;
  add.kind = EventKind::kAddTransceiver;
  add.txr.position = {-105.1, 39.9};
  add.txr.radio = cellnet::RadioType::kLte;
  add.txr.mcc = 310;
  add.txr.mnc = 410;
  add.txr.cell_id = 987654;
  batch.push_back(add);
  FeedEvent retire;
  retire.seq = 1;
  retire.kind = EventKind::kRetireTransceiver;
  retire.target = 3;
  batch.push_back(retire);
  FeedEvent move;
  move.seq = 2;
  move.kind = EventKind::kMoveTransceiver;
  move.target = 11;
  move.txr.position = {-104.8, 40.1};
  batch.push_back(move);

  auto applied = Applier::apply(small_world(), small_risk(), batch, {});
  ASSERT_TRUE(applied.ok());
  ApplyResult result = std::move(applied).take();
  EXPECT_TRUE(result.whp_shared);
  EXPECT_EQ(result.world.whp_ptr().get(), small_world().whp_ptr().get());
  EXPECT_EQ(result.world.counties_ptr().get(),
            small_world().counties_ptr().get());
}

TEST(Equivalence, CountiesAlwaysSharedEvenWhenWhpChanges) {
  FeedEvent patch;
  patch.seq = 0;
  patch.kind = EventKind::kWhpPatch;
  patch.patch_box = {-106.0, 39.0, -105.0, 40.0};
  patch.severity = synth::WhpClass::kVeryHigh;
  const std::vector<FeedEvent> batch{patch};
  auto applied = Applier::apply(small_world(), small_risk(), batch, {});
  ASSERT_TRUE(applied.ok());
  ApplyResult result = std::move(applied).take();
  EXPECT_FALSE(result.whp_shared);
  EXPECT_NE(result.world.whp_ptr().get(), small_world().whp_ptr().get());
  EXPECT_EQ(result.world.counties_ptr().get(),
            small_world().counties_ptr().get());
  // ...and the mutated-WHP world still matches a from-scratch rebuild.
  const Reference ref = rebuild_reference(result.world);
  EXPECT_EQ(encode(result.world, result.provider_risk),
            encode(ref.world, ref.risk));
}

}  // namespace
}  // namespace fa::delta

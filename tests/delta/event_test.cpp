// FeedEvent wire codec: deterministic round trip, totality on hostile
// bytes (every truncation/corruption is a Status, never a crash), and
// the structural validator's per-kind rules.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "delta/event.hpp"
#include "synth/rng.hpp"

namespace fa::delta {
namespace {

FeedEvent add_event(std::uint64_t seq, double lon = -105.0,
                    double lat = 40.0) {
  FeedEvent e;
  e.seq = seq;
  e.t_ms = seq * 1000;
  e.kind = EventKind::kAddTransceiver;
  e.txr.position = {lon, lat};
  e.txr.radio = cellnet::RadioType::kLte;
  e.txr.mcc = 310;
  e.txr.mnc = 410;
  e.txr.cell_id = static_cast<std::uint32_t>(seq * 7 + 1);
  e.txr.state = 5;
  return e;
}

FeedEvent fire_event(std::uint64_t seq) {
  FeedEvent e;
  e.seq = seq;
  e.t_ms = seq * 1000;
  e.kind = EventKind::kFirePerimeter;
  e.perimeter = geo::make_circle({-120.5, 39.5}, 0.1, 12);
  e.severity = synth::WhpClass::kVeryHigh;
  return e;
}

std::vector<FeedEvent> mixed_batch(std::uint64_t seed, std::size_t n) {
  synth::Rng rng(seed);
  std::vector<FeedEvent> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    FeedEvent e;
    e.seq = i;
    e.t_ms = rng.next_u64() >> 40;
    switch (rng.below(5)) {
      case 0:
        e = add_event(i, rng.uniform(-124.0, -67.0), rng.uniform(25.0, 49.0));
        break;
      case 1:
        e.kind = EventKind::kRetireTransceiver;
        e.target = static_cast<std::uint32_t>(rng.below(1000));
        break;
      case 2:
        e.kind = EventKind::kMoveTransceiver;
        e.target = static_cast<std::uint32_t>(rng.below(1000));
        e.txr.position = {rng.uniform(-124.0, -67.0), rng.uniform(25.0, 49.0)};
        break;
      case 3:
        e = fire_event(i);
        e.perimeter = geo::make_circle(
            {rng.uniform(-120.0, -80.0), rng.uniform(30.0, 45.0)},
            rng.uniform(0.02, 0.3), 3 + static_cast<int>(rng.below(30)));
        e.severity = static_cast<synth::WhpClass>(rng.below(6));
        break;
      default: {
        e.kind = EventKind::kWhpPatch;
        const double x = rng.uniform(-120.0, -80.0);
        const double y = rng.uniform(30.0, 45.0);
        e.patch_box = {x, y, x + 0.5, y + 0.4};
        e.severity = static_cast<synth::WhpClass>(rng.below(6));
        break;
      }
    }
    e.seq = i;
    events.push_back(e);
  }
  return events;
}

TEST(EventCodec, RoundTripMixedBatch) {
  const std::vector<FeedEvent> events = mixed_batch(7, 64);
  const std::string bytes = encode_events(events);
  auto decoded = decode_events(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  ASSERT_EQ(decoded.value().size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(decoded.value()[i], events[i]) << "event " << i;
  }
}

TEST(EventCodec, EncodeIsDeterministic) {
  const std::vector<FeedEvent> events = mixed_batch(11, 32);
  EXPECT_EQ(encode_events(events), encode_events(events));
}

TEST(EventCodec, NegativeZeroCanonicalizes) {
  FeedEvent a = add_event(1, 0.0, 40.0);
  FeedEvent b = add_event(1, -0.0, 40.0);
  const std::vector<FeedEvent> va{a};
  const std::vector<FeedEvent> vb{b};
  EXPECT_EQ(encode_events(va), encode_events(vb));
}

TEST(EventCodec, EmptyBatchRoundTrips) {
  const std::string bytes = encode_events({});
  auto decoded = decode_events(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(EventCodec, EveryPrefixIsAStatusNeverACrash) {
  const std::vector<FeedEvent> events = mixed_batch(3, 8);
  const std::string bytes = encode_events(events);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    auto decoded = decode_events(std::string_view(bytes.data(), cut));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << cut << " bytes decoded";
  }
}

TEST(EventCodec, TrailingBytesRejected) {
  std::string bytes = encode_events(mixed_batch(5, 4));
  bytes += '\0';
  auto decoded = decode_events(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code, fault::ErrCode::kSchema);
}

TEST(EventCodec, RandomCorruptionIsTotal) {
  const std::string bytes = encode_events(mixed_batch(13, 16));
  synth::Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mangled = bytes;
    const int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t at = rng.below(mangled.size());
      mangled[at] = static_cast<char>(rng.next_u64());
    }
    // Must return (ok or error), never crash; decoded events that do
    // come back must at least satisfy the enum-domain invariants the
    // decoder promises.
    auto decoded = decode_events(mangled);
    if (!decoded.ok()) continue;
    for (const FeedEvent& e : decoded.value()) {
      EXPECT_LT(static_cast<unsigned>(e.kind), kNumEventKinds);
      EXPECT_LT(static_cast<unsigned>(e.txr.radio), cellnet::kNumRadioTypes);
      EXPECT_LT(static_cast<unsigned>(e.severity), synth::kNumWhpClasses);
    }
  }
}

TEST(EventCodec, OversizedCountRejectedBeforeAllocation) {
  std::string bytes(4, '\xff');  // count = 0xffffffff
  auto decoded = decode_events(bytes);
  ASSERT_FALSE(decoded.ok());
}

TEST(ValidateShape, AddRequiresValidPosition) {
  FeedEvent e = add_event(42);
  EXPECT_TRUE(validate_shape(e).ok());
  e.txr.position.lat = 95.0;
  const fault::Status s = validate_shape(e);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.offset, 42u);
  EXPECT_EQ(s.source, "delta.feed");
}

TEST(ValidateShape, FireRequiresRealRing) {
  FeedEvent e = fire_event(7);
  EXPECT_TRUE(validate_shape(e).ok());
  e.perimeter = geo::Ring(std::vector<geo::Vec2>{{0, 0}, {1, 1}});
  EXPECT_FALSE(validate_shape(e).ok());
  e = fire_event(7);
  std::vector<geo::Vec2> pts(e.perimeter.points().begin(),
                             e.perimeter.points().end());
  pts[1].x = std::numeric_limits<double>::quiet_NaN();
  e.perimeter = geo::Ring(std::move(pts));
  EXPECT_FALSE(validate_shape(e).ok());
}

TEST(ValidateShape, PatchRequiresValidBox) {
  FeedEvent e;
  e.seq = 3;
  e.kind = EventKind::kWhpPatch;
  e.patch_box = {-100.0, 35.0, -99.0, 36.0};
  e.severity = synth::WhpClass::kHigh;
  EXPECT_TRUE(validate_shape(e).ok());
  e.patch_box = {-99.0, 35.0, -100.0, 36.0};  // inverted
  EXPECT_FALSE(validate_shape(e).ok());
}

TEST(ValidateShape, UnknownKindRejected) {
  FeedEvent e;
  e.kind = static_cast<EventKind>(0xff);
  EXPECT_FALSE(validate_shape(e).ok());
}

}  // namespace
}  // namespace fa::delta

// Incremental spatial-index maintenance, pinned against from-scratch
// builds: GridIndex::applied() must produce an index byte-identical to
// constructing over the final point set (points, binned SoA order, cell
// spans — the property the delta snapshot byte-identity rests on), and
// DynamicRTree must answer every query exactly like a fresh bulk-loaded
// tree, across 1000 seeded randomized op-sequences. The concurrent
// sections are the TSan targets: const readers race an applied() /
// compact() producer with no synchronization beyond the API contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "index/dynamic_rtree.hpp"
#include "index/grid_index.hpp"
#include "synth/rng.hpp"

namespace fa::index {
namespace {

constexpr geo::BBox kBounds{-10.0, -5.0, 10.0, 5.0};

std::vector<geo::Vec2> random_points(synth::Rng& rng, std::size_t n) {
  std::vector<geo::Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // A few points outside bounds exercise the edge-bin clamp.
    pts.push_back({rng.uniform(-11.0, 11.0), rng.uniform(-5.5, 5.5)});
  }
  return pts;
}

// Applies `delta` to a plain point vector — the semantic reference the
// index-level applied() must agree with.
std::vector<geo::Vec2> apply_to_points(const std::vector<geo::Vec2>& points,
                                       const PointDelta& delta) {
  std::vector<geo::Vec2> next;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (delta.new_id_of[i] != PointDelta::kDropped) {
      next.push_back(points[i]);
    }
  }
  for (const PointDelta::Moved& m : delta.moved) {
    next[delta.new_id_of[m.old_id]] = m.to;
  }
  next.insert(next.end(), delta.added.begin(), delta.added.end());
  return next;
}

PointDelta random_delta(synth::Rng& rng, std::size_t n) {
  PointDelta delta;
  delta.new_id_of.resize(n);
  std::uint32_t next_id = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool drop = rng.chance(0.15);
    delta.new_id_of[i] = drop ? PointDelta::kDropped : next_id++;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (delta.new_id_of[i] == PointDelta::kDropped) continue;
    if (rng.chance(0.1)) {
      delta.moved.push_back({static_cast<std::uint32_t>(i),
                             {rng.uniform(-11.0, 11.0), rng.uniform(-5.5, 5.5)}});
    }
  }
  const std::size_t n_add = rng.below(12);
  for (std::size_t i = 0; i < n_add; ++i) {
    delta.added.push_back({rng.uniform(-11.0, 11.0), rng.uniform(-5.5, 5.5)});
  }
  return delta;
}

void expect_identical(const GridIndex& got, const GridIndex& want,
                      std::uint64_t seed, int step) {
  ASSERT_EQ(got.size(), want.size()) << "seed " << seed << " step " << step;
  for (std::uint32_t id = 0; id < want.size(); ++id) {
    ASSERT_EQ(got.point(id).x, want.point(id).x)
        << "seed " << seed << " step " << step << " id " << id;
    ASSERT_EQ(got.point(id).y, want.point(id).y)
        << "seed " << seed << " step " << step << " id " << id;
  }
  // Binned storage must match entry for entry — same ids in the same
  // slots with the same SoA coordinates — which pins both the bin
  // assignment and the canonical in-bin order.
  ASSERT_TRUE(std::ranges::equal(got.binned_ids(), want.binned_ids()))
      << "seed " << seed << " step " << step;
  ASSERT_TRUE(std::ranges::equal(got.binned_xs(), want.binned_xs()));
  ASSERT_TRUE(std::ranges::equal(got.binned_ys(), want.binned_ys()));
}

TEST(GridIndexApplied, ThousandSeededSequencesMatchFreshBuild) {
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    synth::Rng rng(seed);
    const int cols = 2 + static_cast<int>(rng.below(14));
    const int rows = 2 + static_cast<int>(rng.below(6));
    std::vector<geo::Vec2> points = random_points(rng, rng.below(160));
    GridIndex incremental(points, kBounds, cols, rows);
    const int steps = 1 + static_cast<int>(rng.below(3));
    for (int step = 0; step < steps; ++step) {
      const PointDelta delta = random_delta(rng, points.size());
      points = apply_to_points(points, delta);
      incremental = incremental.applied(delta);
      const GridIndex fresh(points, kBounds, cols, rows);
      expect_identical(incremental, fresh, seed, step);
    }
  }
}

TEST(GridIndexApplied, DropEverything) {
  synth::Rng rng(7);
  const std::vector<geo::Vec2> points = random_points(rng, 50);
  const GridIndex base(points, kBounds, 8, 4);
  PointDelta delta;
  delta.new_id_of.assign(points.size(), PointDelta::kDropped);
  const GridIndex empty = base.applied(delta);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.query_ids(kBounds).empty());
}

TEST(GridIndexApplied, PureAppendOntoEmpty) {
  const GridIndex base(std::vector<geo::Vec2>{}, kBounds, 4, 4);
  PointDelta delta;
  delta.added = {{0.0, 0.0}, {1.0, 1.0}, {-9.0, -4.0}};
  const GridIndex grown = base.applied(delta);
  const GridIndex fresh(delta.added, kBounds, 4, 4);
  expect_identical(grown, fresh, 0, 0);
}

TEST(GridIndexApplied, ConcurrentReadersDuringApply) {
  // applied() is const: readers may keep querying the base while a
  // producer derives successors from it. TSan proves the claim.
  synth::Rng rng(42);
  std::vector<geo::Vec2> points = random_points(rng, 400);
  const GridIndex base(points, kBounds, 16, 8);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      synth::Rng r(1000 + static_cast<std::uint64_t>(t));
      std::uint64_t hits = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const double x = r.uniform(-10.0, 8.0);
        const double y = r.uniform(-5.0, 3.0);
        base.query({x, y, x + 2.0, y + 2.0},
                   [&](std::uint32_t, geo::Vec2) { ++hits; });
      }
      total.fetch_add(hits);
    });
  }
  GridIndex current = base;
  for (int step = 0; step < 20; ++step) {
    // Each delta is sized to base (every applied() derives from it).
    const PointDelta delta = random_delta(rng, points.size());
    current = base.applied(delta);  // reads base while readers read base
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  SUCCEED();
}

// ---------------------------------------------------------------------
// DynamicRTree: overlay/tombstone correctness against a fresh STR pack.

std::vector<DynamicRTree::Entry> boxes_of(
    const std::vector<std::pair<std::uint32_t, geo::BBox>>& live) {
  std::vector<DynamicRTree::Entry> entries;
  entries.reserve(live.size());
  for (const auto& [id, box] : live) entries.push_back({box, id});
  return entries;
}

geo::BBox random_box(synth::Rng& rng) {
  const double x = rng.uniform(-10.0, 9.0);
  const double y = rng.uniform(-5.0, 4.0);
  return {x, y, x + rng.uniform(0.1, 2.0), y + rng.uniform(0.1, 2.0)};
}

TEST(DynamicRTree, ThousandSeededOpSequencesMatchFreshTree) {
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    synth::Rng rng(seed);
    // Reference: live set as a plain vector (ordered by insertion).
    std::vector<std::pair<std::uint32_t, geo::BBox>> live;
    std::uint32_t next_id = 0;
    const std::size_t n0 = rng.below(40);
    for (std::size_t i = 0; i < n0; ++i) {
      live.push_back({next_id++, random_box(rng)});
    }
    DynamicRTree tree(boxes_of(live), 0.25, 8);
    const int ops = 4 + static_cast<int>(rng.below(28));
    for (int op = 0; op < ops; ++op) {
      switch (rng.below(3)) {
        case 0:  // insert
          live.push_back({next_id, random_box(rng)});
          tree.insert({live.back().second, next_id});
          ++next_id;
          break;
        case 1:  // remove (when non-empty)
          if (!live.empty()) {
            const std::size_t at = rng.below(live.size());
            EXPECT_TRUE(tree.remove(live[at].first));
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
          }
          break;
        default:  // replace (re-insert live id with a new box)
          if (!live.empty()) {
            const std::size_t at = rng.below(live.size());
            live[at].second = random_box(rng);
            tree.insert({live[at].second, live[at].first});
          }
          break;
      }
      ASSERT_EQ(tree.size(), live.size()) << "seed " << seed;
      // Query equivalence against a freshly bulk-loaded tree.
      const RTree fresh(boxes_of(live), 8);
      for (int q = 0; q < 3; ++q) {
        const geo::BBox query = random_box(rng);
        std::vector<std::uint32_t> got = tree.query(query);
        std::vector<std::uint32_t> want;
        fresh.query(query, [&](std::uint32_t id) { want.push_back(id); });
        std::ranges::sort(got);
        std::ranges::sort(want);
        ASSERT_EQ(got, want) << "seed " << seed << " op " << op;
      }
    }
  }
}

TEST(DynamicRTree, RemoveAbsentIdIsFalse) {
  DynamicRTree tree;
  EXPECT_FALSE(tree.remove(5));
  tree.insert({{0, 0, 1, 1}, 5});
  EXPECT_TRUE(tree.remove(5));
  EXPECT_FALSE(tree.remove(5));
}

TEST(DynamicRTree, FindReportsLiveBox) {
  DynamicRTree tree;
  tree.insert({{0, 0, 1, 1}, 9});
  geo::BBox box;
  ASSERT_TRUE(tree.find(9, box));
  EXPECT_EQ(box.min_x, 0.0);
  tree.insert({{2, 2, 3, 3}, 9});  // replace
  ASSERT_TRUE(tree.find(9, box));
  EXPECT_EQ(box.min_x, 2.0);
  tree.remove(9);
  EXPECT_FALSE(tree.find(9, box));
}

TEST(DynamicRTree, CompactionPreservesAnswers) {
  synth::Rng rng(77);
  std::vector<std::pair<std::uint32_t, geo::BBox>> live;
  for (std::uint32_t i = 0; i < 64; ++i) live.push_back({i, random_box(rng)});
  DynamicRTree tree(boxes_of(live), 0.25, 8);
  // Churn enough to cross the compaction threshold several times.
  for (std::uint32_t i = 0; i < 200; ++i) {
    const std::uint32_t id = 64 + i;
    live.push_back({id, random_box(rng)});
    tree.insert({live.back().second, id});
    if (i % 2 == 0 && live.size() > 8) {
      tree.remove(live.front().first);
      live.erase(live.begin());
    }
  }
  tree.compact();
  EXPECT_EQ(tree.overlay_size(), 0u);
  EXPECT_EQ(tree.tombstone_count(), 0u);
  const RTree fresh(boxes_of(live), 8);
  for (int q = 0; q < 20; ++q) {
    const geo::BBox query = random_box(rng);
    std::vector<std::uint32_t> got = tree.query(query);
    std::vector<std::uint32_t> want;
    fresh.query(query, [&](std::uint32_t id) { want.push_back(id); });
    std::ranges::sort(got);
    std::ranges::sort(want);
    EXPECT_EQ(got, want);
  }
}

TEST(DynamicRTree, ConcurrentReadersBetweenMutations) {
  // The contract: const queries race each other freely; mutation is
  // externally synchronized. Readers here run against an immutable
  // phase while the writer prepares the next tree off to the side —
  // the pattern the feed generator and serve layer use. TSan-clean.
  synth::Rng rng(5);
  std::vector<std::pair<std::uint32_t, geo::BBox>> live;
  for (std::uint32_t i = 0; i < 128; ++i) {
    live.push_back({i, random_box(rng)});
  }
  const DynamicRTree tree(boxes_of(live), 0.25, 8);
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      synth::Rng r(900 + static_cast<std::uint64_t>(t));
      std::uint64_t hits = 0;
      for (int q = 0; q < 3000; ++q) {
        tree.query(random_box(r), [&](std::uint32_t) { ++hits; });
      }
      total.fetch_add(hits);
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_GT(total.load(), 0u);
}

}  // namespace
}  // namespace fa::index

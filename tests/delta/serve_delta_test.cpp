// Server::apply_delta — the incremental sibling of rebuild(): epoch
// publication, survivability on injected failure, snapshot structure
// sharing, and the store integration (delta log appends, cold-start
// replay to the exact serving bytes, log disengagement after rebuild).
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "delta/feed.hpp"
#include "fault/injector.hpp"
#include "serve/server.hpp"
#include "store/codec.hpp"
#include "../serve/serve_test_util.hpp"
#include "../store/store_test_util.hpp"

namespace fa::serve {
namespace {

using store::testing::TempDir;
using testing::tiny_config;

std::size_t count_increments(const std::string& dir) {
  std::size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".fad") ++n;
  }
  return n;
}

std::string serving_bytes(const Server& server) {
  const auto snap = server.snapshots().acquire();
  return store::encode_world(snap->world(), snap->provider_risk());
}

// One ingested feed batch derived from the serving epoch.
std::vector<delta::FeedEvent> next_batch(const Server& server,
                                         delta::FeedGenerator& gen,
                                         delta::FeedIngestor& ingestor) {
  auto cleaned = ingestor.ingest(gen.tick());
  EXPECT_TRUE(cleaned.ok());
  return cleaned.ok() ? std::move(cleaned).take()
                      : std::vector<delta::FeedEvent>{};
}

TEST(ServeDelta, ApplyPublishesNextEpoch) {
  Server server(tiny_config());
  ASSERT_EQ(server.epoch(), 1u);
  const auto feed_root = server.snapshots().acquire();
  delta::FeedGenerator gen(feed_root->world(), {});
  delta::FeedIngestor ingestor;
  const std::vector<delta::FeedEvent> batch =
      next_batch(server, gen, ingestor);
  ASSERT_FALSE(batch.empty());
  delta::ApplyStats stats;
  const fault::Status status = server.apply_delta(batch, &stats);
  ASSERT_TRUE(status.ok()) << status.to_string();
  EXPECT_EQ(server.epoch(), 2u);
  EXPECT_EQ(stats.events, batch.size());
  EXPECT_GT(stats.dirty_transceivers + stats.whp_cells_changed, 0u);
  // Queries now answer from the delta-built epoch.
  const PointRiskResponse r =
      server.point_risk(PointRiskQuery{{-105.0, 40.0}, 0.0});
  EXPECT_EQ(r.epoch, 2u);
}

TEST(ServeDelta, InjectedFailureKeepsServingEpoch) {
  Server server(tiny_config());
  const std::string before = serving_bytes(server);
  const auto feed_root = server.snapshots().acquire();
  delta::FeedGenerator gen(feed_root->world(), {});
  delta::FeedIngestor ingestor;
  const std::vector<delta::FeedEvent> batch =
      next_batch(server, gen, ingestor);
  ASSERT_FALSE(batch.empty());

  fault::ScopedInjector arm(
      fault::Injector::parse("seed=2,delta.apply=1").take());
  const fault::Status status = server.apply_delta(batch);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code, fault::ErrCode::kInjected);
  EXPECT_EQ(server.epoch(), 1u);
  EXPECT_EQ(serving_bytes(server), before);
}

TEST(ServeDelta, SnapshotsShareUntouchedLayers) {
  Server server(tiny_config());
  const auto base = server.snapshots().acquire();
  delta::FeedEvent retire;
  retire.seq = 0;
  retire.kind = delta::EventKind::kRetireTransceiver;
  retire.target = 1;
  const std::vector<delta::FeedEvent> batch{retire};
  ASSERT_TRUE(server.apply_delta(batch).ok());
  const auto next = server.snapshots().acquire();
  ASSERT_NE(base.get(), next.get());
  // Corpus-only delta: WHP raster and county map are the same
  // allocations across epochs, not equal copies.
  EXPECT_EQ(next->world().whp_ptr().get(), base->world().whp_ptr().get());
  EXPECT_EQ(next->world().counties_ptr().get(),
            base->world().counties_ptr().get());
  EXPECT_EQ(next->world().corpus().size(),
            base->world().corpus().size() - 1);
}

TEST(ServeDelta, ColdStartReplaysChainToServingBytes) {
  TempDir tmp;
  ServerOptions options;
  options.store_dir = tmp.path;
  std::string final_bytes;
  {
    Server server(tiny_config(), options);
    ASSERT_TRUE(server.save_snapshot().ok());
    const auto feed_root = server.snapshots().acquire();
  delta::FeedGenerator gen(feed_root->world(), {});
    delta::FeedIngestor ingestor;
    for (int tick = 0; tick < 3; ++tick) {
      const std::vector<delta::FeedEvent> batch =
          next_batch(server, gen, ingestor);
      ASSERT_FALSE(batch.empty());
      ASSERT_TRUE(server.apply_delta(batch).ok()) << "tick " << tick;
    }
    EXPECT_EQ(count_increments(tmp.path), 3u);
    final_bytes = serving_bytes(server);
  }
  // Cold start: image + 3-increment chain replay, no fresh build.
  Server revived(tiny_config(), options);
  EXPECT_TRUE(revived.loaded_from_store());
  EXPECT_EQ(serving_bytes(revived), final_bytes);
  // The revived log continues the chain instead of restarting it.
  const auto revived_root = revived.snapshots().acquire();
  delta::FeedGenerator gen(revived_root->world(), {});
  delta::FeedIngestor ingestor;
  const std::vector<delta::FeedEvent> batch =
      next_batch(revived, gen, ingestor);
  ASSERT_TRUE(revived.apply_delta(batch).ok());
  EXPECT_EQ(count_increments(tmp.path), 4u);
}

TEST(ServeDelta, SaveSnapshotRerootsChain) {
  TempDir tmp;
  ServerOptions options;
  options.store_dir = tmp.path;
  Server server(tiny_config(), options);
  ASSERT_TRUE(server.save_snapshot().ok());
  const auto feed_root = server.snapshots().acquire();
  delta::FeedGenerator gen(feed_root->world(), {});
  delta::FeedIngestor ingestor;
  ASSERT_TRUE(
      server.apply_delta(next_batch(server, gen, ingestor)).ok());
  ASSERT_TRUE(
      server.apply_delta(next_batch(server, gen, ingestor)).ok());
  ASSERT_EQ(count_increments(tmp.path), 2u);
  // Committing the serving state supersedes the old chain: stale
  // increments prune, and the next delta starts a chain on the new
  // image.
  ASSERT_TRUE(server.save_snapshot().ok());
  EXPECT_EQ(count_increments(tmp.path), 0u);
  ASSERT_TRUE(
      server.apply_delta(next_batch(server, gen, ingestor)).ok());
  EXPECT_EQ(count_increments(tmp.path), 1u);
  const std::string final_bytes = serving_bytes(server);
  Server revived(tiny_config(), options);
  EXPECT_TRUE(revived.loaded_from_store());
  EXPECT_EQ(serving_bytes(revived), final_bytes);
}

TEST(ServeDelta, RebuildDisengagesLog) {
  TempDir tmp;
  ServerOptions options;
  options.store_dir = tmp.path;
  Server server(tiny_config(), options);
  ASSERT_TRUE(server.save_snapshot().ok());
  // rebuild() publishes a from-scratch world: the serving state no
  // longer derives from the committed generation, so subsequent deltas
  // must NOT append to that generation's chain (replaying them over
  // the old image would fabricate a different world than served).
  ASSERT_TRUE(server.rebuild(tiny_config()).ok());
  const auto feed_root = server.snapshots().acquire();
  delta::FeedGenerator gen(feed_root->world(), {});
  delta::FeedIngestor ingestor;
  ASSERT_TRUE(
      server.apply_delta(next_batch(server, gen, ingestor)).ok());
  EXPECT_EQ(count_increments(tmp.path), 0u);
  // save_snapshot() re-roots; appending resumes on the new image.
  ASSERT_TRUE(server.save_snapshot().ok());
  ASSERT_TRUE(
      server.apply_delta(next_batch(server, gen, ingestor)).ok());
  EXPECT_EQ(count_increments(tmp.path), 1u);
}

TEST(ServeDelta, NoStoreConfiguredStillApplies) {
  Server server(tiny_config());
  const auto feed_root = server.snapshots().acquire();
  delta::FeedGenerator gen(feed_root->world(), {});
  delta::FeedIngestor ingestor;
  ASSERT_TRUE(
      server.apply_delta(next_batch(server, gen, ingestor)).ok());
  EXPECT_EQ(server.epoch(), 2u);
}

}  // namespace
}  // namespace fa::serve

// DeltaLog: hash-chained increment persistence. Round trip, chain
// verification (every link checked against the predecessor's whole-file
// CRC, rooted at the base snapshot image), torn-tail truncation, debris
// cleanup, and pruning of superseded chains.
//
// The log is content-agnostic about its base image — it only needs the
// file and its CRC — so these tests commit a tiny opaque blob as the
// base generation instead of paying for a world build.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "delta/event.hpp"
#include "delta/log.hpp"
#include "store/store.hpp"
#include "../store/store_test_util.hpp"

namespace fa::delta {
namespace {

using store::testing::TempDir;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

bool file_exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

FeedEvent retire(std::uint64_t seq, std::uint32_t target) {
  FeedEvent e;
  e.seq = seq;
  e.kind = EventKind::kRetireTransceiver;
  e.target = target;
  return e;
}

std::vector<FeedEvent> batch(std::uint64_t first_seq, std::size_t n) {
  std::vector<FeedEvent> events;
  for (std::size_t i = 0; i < n; ++i) {
    events.push_back(
        retire(first_seq + i, static_cast<std::uint32_t>(100 + i)));
  }
  return events;
}

struct Fixture {
  TempDir tmp;
  store::StoreDir dir;
  store::Generation gen;

  Fixture()
      : dir(store::StoreDir::open(tmp.path).take()),
        gen(dir.commit("delta-log base image bytes").take()) {}
};

TEST(DeltaLog, FilenameFormat) {
  EXPECT_EQ(increment_filename(42, 7), "gen-000042.d-000007.fad");
}

TEST(DeltaLog, AppendReplayRoundTrip) {
  Fixture fx;
  auto log = DeltaLog::open(fx.dir, fx.gen.number, fx.gen.crc);
  ASSERT_TRUE(log.ok()) << log.status().to_string();
  DeltaLog d = std::move(log).take();
  const std::vector<std::vector<FeedEvent>> batches = {
      batch(0, 3), batch(3, 5), batch(8, 1)};
  for (std::size_t i = 0; i < batches.size(); ++i) {
    auto ordinal = d.append(batches[i]);
    ASSERT_TRUE(ordinal.ok()) << ordinal.status().to_string();
    EXPECT_EQ(ordinal.value(), i);
  }
  const DeltaLog::Replay replayed = d.replay();
  EXPECT_EQ(replayed.truncated, 0u);
  ASSERT_EQ(replayed.batches.size(), batches.size());
  for (std::size_t i = 0; i < batches.size(); ++i) {
    ASSERT_EQ(replayed.batches[i].size(), batches[i].size());
    for (std::size_t j = 0; j < batches[i].size(); ++j) {
      EXPECT_EQ(replayed.batches[i][j], batches[i][j]);
    }
  }
}

TEST(DeltaLog, ZeroBaseCrcComputedFromImage) {
  Fixture fx;
  // A scan()-sourced manifest reports crc 0; open() must derive the
  // real base link from the image file so the chain still verifies.
  auto log = DeltaLog::open(fx.dir, fx.gen.number, 0);
  ASSERT_TRUE(log.ok());
  DeltaLog d = std::move(log).take();
  ASSERT_TRUE(d.append(batch(0, 2)).ok());
  EXPECT_EQ(d.replay().batches.size(), 1u);
}

TEST(DeltaLog, ReopenFindsChainTail) {
  Fixture fx;
  {
    DeltaLog d = DeltaLog::open(fx.dir, fx.gen.number, fx.gen.crc).take();
    ASSERT_TRUE(d.append(batch(0, 2)).ok());
    ASSERT_TRUE(d.append(batch(2, 2)).ok());
  }
  DeltaLog d = DeltaLog::open(fx.dir, fx.gen.number, fx.gen.crc).take();
  EXPECT_EQ(d.next_ordinal(), 2u);
  auto ordinal = d.append(batch(4, 1));
  ASSERT_TRUE(ordinal.ok());
  EXPECT_EQ(ordinal.value(), 2u);
  EXPECT_EQ(d.replay().batches.size(), 3u);
}

TEST(DeltaLog, TornTailTruncatesNeverPoisons) {
  Fixture fx;
  DeltaLog d = DeltaLog::open(fx.dir, fx.gen.number, fx.gen.crc).take();
  ASSERT_TRUE(d.append(batch(0, 3)).ok());
  ASSERT_TRUE(d.append(batch(3, 3)).ok());
  // Tear the tail increment: drop its last 10 bytes.
  const std::string tail =
      fx.dir.file_path(increment_filename(fx.gen.number, 1));
  const std::string bytes = slurp(tail);
  spit(tail, bytes.substr(0, bytes.size() - 10));

  const DeltaLog::Replay replayed = d.replay();
  EXPECT_EQ(replayed.batches.size(), 1u);
  EXPECT_EQ(replayed.truncated, 1u);
}

TEST(DeltaLog, BrokenMiddleLinkDropsEverythingPastIt) {
  Fixture fx;
  DeltaLog d = DeltaLog::open(fx.dir, fx.gen.number, fx.gen.crc).take();
  ASSERT_TRUE(d.append(batch(0, 1)).ok());
  ASSERT_TRUE(d.append(batch(1, 1)).ok());
  ASSERT_TRUE(d.append(batch(2, 1)).ok());
  // Flip one payload byte of increment 1: its CRC check fails, and even
  // though increment 2 is pristine, its prev-link no longer proves
  // continuity, so replay must stop at increment 0.
  const std::string mid =
      fx.dir.file_path(increment_filename(fx.gen.number, 1));
  std::string bytes = slurp(mid);
  bytes[bytes.size() - 1] = static_cast<char>(bytes.back() ^ 0x5a);
  spit(mid, bytes);

  const DeltaLog::Replay replayed = d.replay();
  EXPECT_EQ(replayed.batches.size(), 1u);
  EXPECT_EQ(replayed.truncated, 1u);

  // Re-open heals: unreachable debris past the break is unlinked and
  // the next append re-uses ordinal 1 on a fresh, verifiable chain.
  DeltaLog reopened =
      DeltaLog::open(fx.dir, fx.gen.number, fx.gen.crc).take();
  EXPECT_EQ(reopened.next_ordinal(), 1u);
  EXPECT_FALSE(
      file_exists(fx.dir.file_path(increment_filename(fx.gen.number, 2))));
  ASSERT_TRUE(reopened.append(batch(1, 4)).ok());
  const DeltaLog::Replay healed = reopened.replay();
  EXPECT_EQ(healed.batches.size(), 2u);
  EXPECT_EQ(healed.truncated, 0u);
}

TEST(DeltaLog, WrongBaseCrcOrphansWholeChain) {
  Fixture fx;
  DeltaLog d = DeltaLog::open(fx.dir, fx.gen.number, fx.gen.crc).take();
  ASSERT_TRUE(d.append(batch(0, 2)).ok());
  // A chain rooted at a different image must not replay: increments
  // prove continuity from a specific base, not just from "a base".
  DeltaLog wrong =
      DeltaLog::open(fx.dir, fx.gen.number, fx.gen.crc ^ 1).take();
  EXPECT_EQ(wrong.next_ordinal(), 0u);
  EXPECT_TRUE(wrong.replay().batches.empty());
}

TEST(DeltaLog, PruneStaleRemovesSupersededChains) {
  Fixture fx;
  DeltaLog d = DeltaLog::open(fx.dir, fx.gen.number, fx.gen.crc).take();
  ASSERT_TRUE(d.append(batch(0, 1)).ok());
  ASSERT_TRUE(d.append(batch(1, 1)).ok());
  const store::Generation next = fx.dir.commit("newer image").take();
  DeltaLog::prune_stale(fx.dir, next.number);
  EXPECT_FALSE(
      file_exists(fx.dir.file_path(increment_filename(fx.gen.number, 0))));
  EXPECT_FALSE(
      file_exists(fx.dir.file_path(increment_filename(fx.gen.number, 1))));
  // The kept base's (empty) chain and the images themselves survive.
  EXPECT_TRUE(
      file_exists(fx.dir.file_path(store::generation_filename(next.number))));
}

TEST(DeltaLog, PruneKeepsCurrentChain) {
  Fixture fx;
  DeltaLog d = DeltaLog::open(fx.dir, fx.gen.number, fx.gen.crc).take();
  ASSERT_TRUE(d.append(batch(0, 1)).ok());
  DeltaLog::prune_stale(fx.dir, fx.gen.number);
  EXPECT_TRUE(
      file_exists(fx.dir.file_path(increment_filename(fx.gen.number, 0))));
  EXPECT_EQ(d.replay().batches.size(), 1u);
}

}  // namespace
}  // namespace fa::delta

// Shared scaffolding for the delta suite: small worlds (reusing the
// serve suite's scenario shapes), a feed -> ingest -> apply chain
// helper, and the from-scratch reference derivation the equivalence
// harness compares against.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/provider_risk.hpp"
#include "core/world.hpp"
#include "delta/apply.hpp"
#include "delta/feed.hpp"
#include "store/codec.hpp"
#include "../serve/serve_test_util.hpp"

namespace fa::delta::testing {

// One world per test binary; every caller shares the same build (world
// generation dominates test runtime).
inline const core::World& small_world() {
  static const core::World* world = new core::World(
      core::World::build(serve::testing::small_config()));
  return *world;
}

inline const core::ProviderRiskResult& small_risk() {
  static const core::ProviderRiskResult* risk =
      new core::ProviderRiskResult(core::run_provider_risk(small_world()));
  return *risk;
}

// The from-scratch rebuild of a delta-built world's final state: every
// cache, index and aggregate recomputed in full from the parts. The
// byte-identity contract says encode_world of the two must match.
struct Reference {
  core::World world;
  core::ProviderRiskResult risk;
};

inline Reference rebuild_reference(const core::World& built) {
  core::World::BuildOptions opts;
  auto ref = core::World::from_parts(
      cellnet::CellCorpus(
          std::vector<cellnet::Transceiver>(built.corpus().transceivers())),
      built.whp_ptr(), built.counties_ptr(), built.config(), opts);
  Reference out{std::move(ref).take(), {}};
  out.risk = core::run_provider_risk(out.world);
  return out;
}

// Drives `ticks` rounds of feed -> ingest -> apply starting from
// (world, risk); returns the final state. Asserts nothing itself — the
// caller checks quarantine counts / equivalence as the test demands.
struct ChainResult {
  core::World world;
  core::ProviderRiskResult risk;
  std::size_t quarantined = 0;
  std::size_t batches_applied = 0;
};

inline ChainResult run_chain(const core::World& base,
                             const core::ProviderRiskResult& base_risk,
                             const FeedOptions& feed_options,
                             std::size_t ticks) {
  ChainResult out{base, base_risk};
  FeedGenerator gen(base, feed_options);
  FeedIngestor ingestor;
  for (std::size_t i = 0; i < ticks; ++i) {
    auto cleaned = ingestor.ingest(gen.tick());
    if (!cleaned.ok()) continue;
    auto applied =
        Applier::apply(out.world, out.risk, cleaned.value(), {});
    if (!applied.ok()) continue;
    ApplyResult result = std::move(applied).take();
    out.quarantined += result.stats.quarantined;
    out.world = std::move(result.world);
    out.risk = std::move(result.provider_risk);
    ++out.batches_applied;
  }
  return out;
}

inline std::string encode(const core::World& world,
                          const core::ProviderRiskResult& risk) {
  return store::encode_world(world, risk);
}

}  // namespace fa::delta::testing

// Fault-injection seams in the delta path. The "delta.feed" stage
// corrupts the raw stream (duplicates, out-of-order arrivals, mangled
// records) deterministically, so tests can predict the damage and prove
// quarantine equivalence: a pipeline fed hostile input converges to the
// same world as one fed the manually pre-filtered stream. "delta.apply"
// proves the apply stage fails closed, leaving the base epoch intact.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "delta/apply.hpp"
#include "delta/feed.hpp"
#include "delta_test_util.hpp"
#include "fault/injector.hpp"

namespace fa::delta {
namespace {

using testing::encode;
using testing::small_risk;
using testing::small_world;

fault::Injector make_injector(const std::string& spec) {
  auto injector = fault::Injector::parse(spec);
  EXPECT_TRUE(injector.ok()) << injector.status().to_string();
  return std::move(injector).take();
}

TEST(FeedFault, CorruptionStageIsPredictable) {
  // Run the exposed stage on our own copy: ingest() under the same
  // armed injector must make the exact same per-seq decisions.
  FeedOptions options;
  options.seed = 5;
  FeedGenerator gen(small_world(), options);
  const std::vector<FeedEvent> raw = gen.tick();
  ASSERT_FALSE(raw.empty());

  fault::ScopedInjector arm(make_injector("seed=42,delta.feed=0.5"));
  std::vector<FeedEvent> predicted = raw;
  corrupt_feed_stage(predicted);
  std::vector<FeedEvent> again = raw;
  corrupt_feed_stage(again);
  ASSERT_EQ(predicted.size(), again.size());
  // Canonical-encoding comparison: mangled records carry NaN payloads,
  // which operator== (IEEE semantics) reports unequal even when
  // bit-identical.
  EXPECT_EQ(encode_events(predicted), encode_events(again));
  // At 50% the stage must actually do something to a real batch.
  EXPECT_NE(encode_events(predicted), encode_events(raw));
}

TEST(FeedFault, QuarantineEquivalence) {
  // World built from the corrupted stream == world built from the
  // clean stream with the would-be-rejected records filtered by hand.
  // Duplicates and reorderings are absorbed by dedup/sort; mangled
  // records quarantine; so the accepted set is identical.
  FeedOptions options;
  options.seed = 12;
  const std::string spec = "seed=7,delta.feed=0.35";

  core::World hostile_world = small_world();
  core::ProviderRiskResult hostile_risk = small_risk();
  core::World clean_world = small_world();
  core::ProviderRiskResult clean_risk = small_risk();

  FeedGenerator gen(small_world(), options);
  FeedIngestor hostile_ingestor;  // runs the armed stage inside ingest()
  FeedIngestor clean_ingestor;
  for (int tick = 0; tick < 3; ++tick) {
    const std::vector<FeedEvent> raw = gen.tick();

    std::vector<FeedEvent> cleaned_by_hand;
    {
      // Predict the corruption, then pre-filter: drop every record the
      // validator would reject; keep order/dups for the ingestor.
      fault::ScopedInjector arm(make_injector(spec));
      std::vector<FeedEvent> predicted = raw;
      corrupt_feed_stage(predicted);
      for (const FeedEvent& e : predicted) {
        if (validate_shape(e).ok()) cleaned_by_hand.push_back(e);
      }
    }

    fault::Result<std::vector<FeedEvent>> hostile_batch = [&] {
      fault::ScopedInjector arm(make_injector(spec));
      return hostile_ingestor.ingest(raw);
    }();
    ASSERT_TRUE(hostile_batch.ok());
    auto clean_batch = clean_ingestor.ingest(std::move(cleaned_by_hand));
    ASSERT_TRUE(clean_batch.ok());

    ASSERT_EQ(hostile_batch.value().size(), clean_batch.value().size())
        << "tick " << tick;
    // Encoding comparison: NaN-mangled fire/patch records can survive
    // shape validation (only their irrelevant txr field is mangled),
    // and operator== reports NaN payloads unequal even when identical.
    ASSERT_EQ(encode_events(hostile_batch.value()),
              encode_events(clean_batch.value()))
        << "tick " << tick;

    auto ha = Applier::apply(hostile_world, hostile_risk,
                             hostile_batch.value(), {});
    auto ca =
        Applier::apply(clean_world, clean_risk, clean_batch.value(), {});
    ASSERT_TRUE(ha.ok());
    ASSERT_TRUE(ca.ok());
    ApplyResult hr = std::move(ha).take();
    ApplyResult cr = std::move(ca).take();
    hostile_world = std::move(hr.world);
    hostile_risk = std::move(hr.provider_risk);
    clean_world = std::move(cr.world);
    clean_risk = std::move(cr.provider_risk);
  }
  EXPECT_EQ(encode(hostile_world, hostile_risk),
            encode(clean_world, clean_risk));
  EXPECT_GT(hostile_ingestor.stats().malformed +
                hostile_ingestor.stats().duplicates,
            0u);
}

TEST(FeedFault, StrictPolicySurfacesCorruption) {
  FeedOptions options;
  options.seed = 20;
  FeedGenerator gen(small_world(), options);
  IngestOptions strict;
  strict.policy = fault::RecoveryPolicy::kStrict;
  FeedIngestor ingestor(strict);
  fault::ScopedInjector arm(make_injector("seed=3,delta.feed=1"));
  bool failed = false;
  for (int tick = 0; tick < 4 && !failed; ++tick) {
    auto cleaned = ingestor.ingest(gen.tick());
    if (!cleaned.ok()) {
      failed = true;
      EXPECT_EQ(cleaned.status().source, "delta.feed");
    }
  }
  EXPECT_TRUE(failed) << "full-rate corruption never produced a "
                         "malformed record under strict policy";
}

TEST(ApplyFault, InjectedApplyFailureLeavesBaseUntouched) {
  FeedOptions options;
  options.seed = 4;
  FeedGenerator gen(small_world(), options);
  FeedIngestor ingestor;
  auto cleaned = ingestor.ingest(gen.tick());
  ASSERT_TRUE(cleaned.ok());
  ASSERT_FALSE(cleaned.value().empty());

  const std::string before = encode(small_world(), small_risk());
  fault::ScopedInjector arm(make_injector("seed=1,delta.apply=1"));
  auto applied =
      Applier::apply(small_world(), small_risk(), cleaned.value(), {});
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code, fault::ErrCode::kInjected);
  EXPECT_EQ(applied.status().source, "delta.apply");
  // apply() is non-destructive on failure: base still encodes the same.
  EXPECT_EQ(encode(small_world(), small_risk()), before);
}

TEST(ApplyFault, InvalidTargetStrictFailsQuarantineDrops) {
  FeedEvent bogus;
  bogus.seq = 0;
  bogus.kind = EventKind::kRetireTransceiver;
  bogus.target = 0xfffffff0u;  // far out of range
  FeedEvent fine;
  fine.seq = 1;
  fine.kind = EventKind::kRetireTransceiver;
  fine.target = 2;
  const std::vector<FeedEvent> batch{bogus, fine};

  ApplyOptions strict;
  strict.policy = fault::RecoveryPolicy::kStrict;
  auto failed = Applier::apply(small_world(), small_risk(), batch, strict);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().offset, 0u);

  auto quarantined =
      Applier::apply(small_world(), small_risk(), batch, {});
  ASSERT_TRUE(quarantined.ok());
  ApplyResult result = std::move(quarantined).take();
  EXPECT_EQ(result.stats.quarantined, 1u);
  EXPECT_EQ(result.stats.retires, 1u);
  EXPECT_EQ(result.world.corpus().size(), small_world().corpus().size() - 1);
}

TEST(ApplyFault, QuarantineEqualsApplyingOnlyValidSubset) {
  FeedEvent bogus;
  bogus.seq = 5;
  bogus.kind = EventKind::kMoveTransceiver;
  bogus.target = 0xfffffff0u;
  FeedEvent fine;
  fine.seq = 6;
  fine.kind = EventKind::kRetireTransceiver;
  fine.target = 7;
  const std::vector<FeedEvent> full{bogus, fine};
  const std::vector<FeedEvent> valid_only{fine};

  auto a = Applier::apply(small_world(), small_risk(), full, {});
  auto b = Applier::apply(small_world(), small_risk(), valid_only, {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ApplyResult ra = std::move(a).take();
  ApplyResult rb = std::move(b).take();
  EXPECT_EQ(encode(ra.world, ra.provider_risk),
            encode(rb.world, rb.provider_risk));
}

}  // namespace
}  // namespace fa::delta

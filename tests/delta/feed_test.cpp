// FeedGenerator + FeedIngestor: deterministic streams, FIRMS-style
// lookback re-serving, dedup/stale/malformed dispositions, and the
// generator's core promise — every emitted target is valid against the
// epoch its batch applies to (the strict-policy chain accepts 100%).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "delta/apply.hpp"
#include "delta/feed.hpp"
#include "delta_test_util.hpp"

namespace fa::delta {
namespace {

using testing::small_risk;
using testing::small_world;

TEST(FeedGenerator, DeterministicAcrossInstances) {
  FeedOptions options;
  options.seed = 404;
  FeedGenerator a(small_world(), options);
  FeedGenerator b(small_world(), options);
  for (int tick = 0; tick < 4; ++tick) {
    const std::vector<FeedEvent> ea = a.tick();
    const std::vector<FeedEvent> eb = b.tick();
    ASSERT_EQ(ea.size(), eb.size()) << "tick " << tick;
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i], eb[i]) << "tick " << tick << " event " << i;
    }
  }
}

TEST(FeedGenerator, DifferentSeedsDiverge) {
  FeedOptions a_opts;
  a_opts.seed = 1;
  FeedOptions b_opts;
  b_opts.seed = 2;
  FeedGenerator a(small_world(), a_opts);
  FeedGenerator b(small_world(), b_opts);
  const std::vector<FeedEvent> ea = a.tick();
  const std::vector<FeedEvent> eb = b.tick();
  bool differ = ea.size() != eb.size();
  for (std::size_t i = 0; !differ && i < ea.size(); ++i) {
    differ = !(ea[i] == eb[i]);
  }
  EXPECT_TRUE(differ);
}

TEST(FeedGenerator, ReservesLookbackDuplicates) {
  FeedOptions options;
  options.seed = 9;
  options.duplicate_fraction = 0.5;
  FeedGenerator gen(small_world(), options);
  gen.tick();  // warm the window
  std::size_t dup_total = 0;
  for (int tick = 0; tick < 4; ++tick) {
    const std::vector<FeedEvent> batch = gen.tick();
    std::set<std::uint64_t> seqs;
    for (const FeedEvent& e : batch) {
      if (!seqs.insert(e.seq).second) ++dup_total;
    }
    // Re-served events may also come from earlier ticks' windows, so
    // in-batch uniqueness is not guaranteed either way; the stream
    // contract is only that fresh seqs are unique and monotone, checked
    // via next_seq below.
  }
  // With duplicate_fraction = 0.5 and a warm window, re-serving must
  // actually happen across ticks (dedup is the ingestor's job).
  EXPECT_GT(dup_total, 0u);
}

TEST(FeedGenerator, EveryShapeIsValid) {
  FeedOptions options;
  options.seed = 21;
  FeedGenerator gen(small_world(), options);
  for (int tick = 0; tick < 5; ++tick) {
    for (const FeedEvent& e : gen.tick()) {
      EXPECT_TRUE(validate_shape(e).ok())
          << "tick " << tick << " seq " << e.seq;
    }
  }
}

TEST(FeedIngestor, SortsDedupsAndAcceptsFreshEvents) {
  FeedOptions options;
  options.seed = 33;
  options.duplicate_fraction = 0.5;
  FeedGenerator gen(small_world(), options);
  FeedIngestor ingestor;
  std::uint64_t last_watermark = 0;
  for (int tick = 0; tick < 5; ++tick) {
    const std::vector<FeedEvent> raw = gen.tick();
    std::set<std::uint64_t> fresh;
    for (const FeedEvent& e : raw) {
      if (e.seq >= last_watermark) fresh.insert(e.seq);
    }
    auto cleaned = ingestor.ingest(raw);
    ASSERT_TRUE(cleaned.ok());
    // Exactly the fresh seqs, in strictly increasing order.
    ASSERT_EQ(cleaned.value().size(), fresh.size()) << "tick " << tick;
    std::uint64_t prev = 0;
    bool first = true;
    for (const FeedEvent& e : cleaned.value()) {
      EXPECT_TRUE(fresh.count(e.seq));
      if (!first) {
        EXPECT_GT(e.seq, prev);
      }
      prev = e.seq;
      first = false;
    }
    last_watermark = ingestor.watermark();
  }
  EXPECT_EQ(ingestor.stats().malformed, 0u);
  EXPECT_GT(ingestor.stats().duplicates, 0u);
}

TEST(FeedIngestor, ReingestingABatchDropsEverySeq) {
  FeedOptions options;
  options.seed = 55;
  FeedGenerator gen(small_world(), options);
  FeedIngestor ingestor;
  const std::vector<FeedEvent> raw = gen.tick();
  auto first = ingestor.ingest(raw);
  ASSERT_TRUE(first.ok());
  const std::size_t accepted = first.value().size();
  ASSERT_GT(accepted, 0u);
  auto second = ingestor.ingest(raw);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().empty());
  EXPECT_GE(ingestor.stats().duplicates, accepted);
}

TEST(FeedIngestor, StaleEventsBehindLookbackDrop) {
  IngestOptions options;
  options.lookback_span = 10;
  FeedIngestor ingestor(options);
  FeedEvent recent;
  recent.kind = EventKind::kRetireTransceiver;
  recent.target = 1;
  recent.seq = 100;
  std::vector<FeedEvent> batch{recent};
  ASSERT_TRUE(ingestor.ingest(batch).ok());
  ASSERT_EQ(ingestor.watermark(), 101u);

  FeedEvent stale = recent;
  stale.seq = 80;  // behind watermark - lookback_span = 91
  FeedEvent ok = recent;
  ok.seq = 95;  // within the window, unseen -> accepted
  std::vector<FeedEvent> late{stale, ok};
  auto cleaned = ingestor.ingest(late);
  ASSERT_TRUE(cleaned.ok());
  ASSERT_EQ(cleaned.value().size(), 1u);
  EXPECT_EQ(cleaned.value()[0].seq, 95u);
  EXPECT_EQ(ingestor.stats().stale, 1u);
}

TEST(FeedIngestor, MalformedStrictFailsQuarantineDrops) {
  FeedEvent bad;
  bad.kind = EventKind::kAddTransceiver;
  bad.txr.position = {500.0, 40.0};
  bad.seq = 7;
  FeedEvent good;
  good.kind = EventKind::kRetireTransceiver;
  good.target = 3;
  good.seq = 8;
  const std::vector<FeedEvent> batch{bad, good};

  IngestOptions strict;
  strict.policy = fault::RecoveryPolicy::kStrict;
  FeedIngestor s(strict);
  auto failed = s.ingest(batch);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().offset, 7u);

  fault::Diagnostics diag;
  IngestOptions quarantine;
  quarantine.diagnostics = &diag;
  FeedIngestor q(quarantine);
  auto cleaned = q.ingest(batch);
  ASSERT_TRUE(cleaned.ok());
  ASSERT_EQ(cleaned.value().size(), 1u);
  EXPECT_EQ(cleaned.value()[0].seq, 8u);
  EXPECT_EQ(q.stats().malformed, 1u);
  EXPECT_EQ(diag.total_dropped(), 1u);
}

TEST(FeedChain, StrictPolicyAcceptsEveryGeneratedTarget) {
  // The generator mirrors the Applier's re-densification; if that
  // mirror ever drifted, a retire/move would reference a dead or
  // out-of-range id and this strict chain would fail the batch.
  FeedOptions options;
  options.seed = 77;
  FeedGenerator gen(small_world(), options);
  FeedIngestor ingestor;
  core::World world = small_world();
  core::ProviderRiskResult risk = small_risk();
  for (int tick = 0; tick < 5; ++tick) {
    auto cleaned = ingestor.ingest(gen.tick());
    ASSERT_TRUE(cleaned.ok());
    ApplyOptions apply_options;
    apply_options.policy = fault::RecoveryPolicy::kStrict;
    auto applied =
        Applier::apply(world, risk, cleaned.value(), apply_options);
    ASSERT_TRUE(applied.ok())
        << "tick " << tick << ": " << applied.status().to_string();
    ApplyResult result = std::move(applied).take();
    EXPECT_EQ(result.stats.quarantined, 0u);
    EXPECT_EQ(gen.alive(), result.world.corpus().size())
        << "generator mirror diverged at tick " << tick;
    world = std::move(result.world);
    risk = std::move(result.provider_risk);
  }
}

}  // namespace
}  // namespace fa::delta

// fa::ensemble determinism, quarantine, and optimizer properties.
//
// The load-bearing contracts: (a) the same config produces bit-identical
// reports at any thread count and on repeat runs; (b) the
// ensemble.member fault seam quarantines members deterministically and
// the aggregates provably exclude them; (c) the CELF hardening plan
// beats both random spend and the unhardened baseline when re-simulated.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/world.hpp"
#include "ensemble/ensemble.hpp"
#include "ensemble/harden.hpp"
#include "exec/exec.hpp"
#include "fault/injector.hpp"

namespace fa::ensemble {
namespace {

synth::ScenarioConfig world_config() {
  synth::ScenarioConfig cfg;
  cfg.seed = 20191022;
  cfg.whp_cell_m = 9000.0;
  cfg.corpus_scale = 100.0;
  cfg.counties_per_state = 16;
  return cfg;
}

// One world for the whole suite: builds dominate runtime, and every
// test reads it immutably (the ensemble's own contract).
const core::World& world() {
  static const core::World w =
      core::World::build(world_config(), {}).take();
  return w;
}

EnsembleConfig ens_config(std::uint32_t members = 24,
                          std::uint64_t seed = 7) {
  EnsembleConfig cfg;
  cfg.members = members;
  cfg.seed = seed;
  return cfg;
}

const SharedInputs& inputs() {
  static const SharedInputs in = SharedInputs::build(world(), ens_config());
  return in;
}

// Field-by-field equality over everything the report aggregates —
// doubles compared exactly, because the contract is bit-identity.
void expect_identical(const EnsembleReport& a, const EnsembleReport& b) {
  EXPECT_EQ(a.members, b.members);
  EXPECT_EQ(a.quarantined, b.quarantined);
  EXPECT_EQ(a.sites, b.sites);
  EXPECT_EQ(a.fires, b.fires);
  EXPECT_EQ(a.outage_site_days, b.outage_site_days);
  EXPECT_EQ(a.expected_user_hours, b.expected_user_hours);
  EXPECT_EQ(a.expected_power_user_hours, b.expected_power_user_hours);
  EXPECT_EQ(a.expected_pop_exposure, b.expected_pop_exposure);
  EXPECT_EQ(a.expected_overlap_user_hours, b.expected_overlap_user_hours);
  EXPECT_EQ(a.site_expected_user_hours, b.site_expected_user_hours);
  EXPECT_EQ(a.site_expected_power_user_hours,
            b.site_expected_power_user_hours);
  EXPECT_EQ(a.site_outage_probability, b.site_outage_probability);
  EXPECT_EQ(a.fragile_order, b.fragile_order);
  ASSERT_EQ(a.member_stats.size(), b.member_stats.size());
  for (std::size_t i = 0; i < a.member_stats.size(); ++i) {
    EXPECT_EQ(a.member_stats[i].user_hours, b.member_stats[i].user_hours);
    EXPECT_EQ(a.member_stats[i].power_user_hours,
              b.member_stats[i].power_user_hours);
    EXPECT_EQ(a.member_stats[i].pop_exposure, b.member_stats[i].pop_exposure);
    EXPECT_EQ(a.member_stats[i].quarantined, b.member_stats[i].quarantined);
  }
  ASSERT_EQ(a.exceedance.size(), b.exceedance.size());
  for (std::size_t i = 0; i < a.exceedance.size(); ++i) {
    EXPECT_EQ(a.exceedance[i].user_hours, b.exceedance[i].user_hours);
    EXPECT_EQ(a.exceedance[i].probability, b.exceedance[i].probability);
  }
}

TEST(Ensemble, SameSeedTwiceIsByteIdentical) {
  const EnsembleConfig cfg = ens_config();
  const EnsembleReport a = run_ensemble(inputs(), cfg);
  const EnsembleReport b = run_ensemble(inputs(), cfg);
  expect_identical(a, b);
  EXPECT_GT(a.expected_user_hours, 0.0);
  EXPECT_GT(a.fires, 0u);
}

TEST(Ensemble, ThreadCountDoesNotChangeTheReport) {
  const EnsembleConfig cfg = ens_config();
  EnsembleReport one;
  EnsembleReport eight;
  {
    const exec::ConcurrencyLimit limit(1);
    one = run_ensemble(inputs(), cfg);
  }
  {
    const exec::ConcurrencyLimit limit(8);
    eight = run_ensemble(inputs(), cfg);
  }
  expect_identical(one, eight);
}

TEST(Ensemble, SeedChangesTheSeason) {
  const EnsembleReport a = run_ensemble(inputs(), ens_config(24, 7));
  const EnsembleReport b = run_ensemble(inputs(), ens_config(24, 8));
  EXPECT_NE(a.expected_user_hours, b.expected_user_hours);
}

TEST(Ensemble, GrainIsAThroughputKnobOnly) {
  EnsembleConfig coarse = ens_config();
  coarse.exec_grain = 16;
  EnsembleConfig fine = ens_config();
  fine.exec_grain = 1;
  expect_identical(run_ensemble(inputs(), coarse),
                   run_ensemble(inputs(), fine));
}

TEST(Ensemble, AggregateInvariants) {
  const EnsembleReport r = run_ensemble(inputs(), ens_config());
  ASSERT_EQ(r.sites, inputs().sites.size());
  ASSERT_EQ(r.site_expected_user_hours.size(), r.sites);
  ASSERT_EQ(r.fragile_order.size(), r.sites);
  // Power losses are a component of the total, per site and overall.
  EXPECT_LE(r.expected_power_user_hours, r.expected_user_hours);
  for (std::uint32_t s = 0; s < r.sites; ++s) {
    EXPECT_LE(r.site_expected_power_user_hours[s],
              r.site_expected_user_hours[s] + 1e-9);
    EXPECT_GE(r.site_outage_probability[s], 0.0);
    EXPECT_LE(r.site_outage_probability[s], 1.0);
  }
  // fragile_order is the permutation sorted by expected loss descending.
  for (std::size_t i = 1; i < r.fragile_order.size(); ++i) {
    EXPECT_GE(r.site_expected_user_hours[r.fragile_order[i - 1]],
              r.site_expected_user_hours[r.fragile_order[i]]);
  }
  // The exceedance curve is monotone non-increasing in the threshold.
  for (std::size_t i = 1; i < r.exceedance.size(); ++i) {
    EXPECT_GE(r.exceedance[i].user_hours, r.exceedance[i - 1].user_hours);
    EXPECT_LE(r.exceedance[i].probability, r.exceedance[i - 1].probability);
  }
  // Expected total equals the mean of the member totals.
  double sum = 0.0;
  for (const MemberStats& m : r.member_stats) sum += m.user_hours;
  EXPECT_NEAR(r.expected_user_hours,
              sum / static_cast<double>(r.effective_members()),
              1e-6 * std::max(1.0, r.expected_user_hours));
}

TEST(Ensemble, TopKFragileProjectsTheRanking) {
  const EnsembleReport r = run_ensemble(inputs(), ens_config());
  const std::vector<FragileSite> top = top_k_fragile(inputs(), r, 10);
  ASSERT_EQ(top.size(), std::min<std::size_t>(10, r.sites));
  for (std::size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].site, r.fragile_order[i]);
    EXPECT_EQ(top[i].expected_user_hours,
              r.site_expected_user_hours[top[i].site]);
    EXPECT_GE(top[i].power_share, 0.0);
    EXPECT_LE(top[i].power_share, 1.0 + 1e-9);
    EXPECT_EQ(top[i].users, inputs().site_users[top[i].site]);
  }
  // Oversized k clamps to the site count.
  EXPECT_EQ(top_k_fragile(inputs(), r, 1u << 20).size(), r.sites);
}

TEST(Ensemble, QuarantineSeamExcludesMembersDeterministically) {
  const EnsembleConfig cfg = ens_config(32, 7);
  EnsembleReport one;
  EnsembleReport eight;
  {
    const fault::ScopedInjector scope(
        fault::Injector::parse("seed=11,ensemble.member=0.25").take());
    {
      const exec::ConcurrencyLimit limit(1);
      one = run_ensemble(inputs(), cfg);
    }
    {
      const exec::ConcurrencyLimit limit(8);
      eight = run_ensemble(inputs(), cfg);
    }
  }
  expect_identical(one, eight);
  ASSERT_GT(one.quarantined, 0u);
  ASSERT_LT(one.quarantined, one.members);
  // A quarantined member contributes nothing; the means are recomputable
  // from the surviving members alone.
  double sum = 0.0;
  std::uint32_t survivors = 0;
  for (const MemberStats& m : one.member_stats) {
    if (m.quarantined != 0) {
      EXPECT_EQ(m.user_hours, 0.0);
      EXPECT_EQ(m.fires, 0u);
      continue;
    }
    sum += m.user_hours;
    ++survivors;
  }
  EXPECT_EQ(survivors, one.effective_members());
  EXPECT_NEAR(one.expected_user_hours, sum / survivors,
              1e-6 * std::max(1.0, one.expected_user_hours));
  // Same config without the seam: every member simulates.
  const EnsembleReport clean = run_ensemble(inputs(), cfg);
  EXPECT_EQ(clean.quarantined, 0u);
  EXPECT_GT(clean.fires, one.fires);
}

TEST(Ensemble, HardeningOptimizerBeatsRandomAndBaseline) {
  const EnsembleConfig cfg = ens_config(32, 7);
  const EnsembleReport baseline = run_ensemble(inputs(), cfg);
  const HardenConfig harden;
  const HardeningPlan greedy = optimize_hardening(inputs(), baseline, harden);
  const HardeningPlan random = random_hardening(inputs(), harden, 7);
  EXPECT_LE(greedy.budget_spent, harden.budget);
  EXPECT_GT(greedy.budget_spent, 0u);
  EXPECT_GT(greedy.predicted_savings, 0.0);
  const double greedy_uh =
      run_ensemble(inputs(), cfg, &greedy).expected_user_hours;
  const double random_uh =
      run_ensemble(inputs(), cfg, &random).expected_user_hours;
  EXPECT_LT(greedy_uh, baseline.expected_user_hours);
  EXPECT_LT(greedy_uh, random_uh);
}

TEST(Ensemble, UnlimitedBatteriesEliminatePowerLoss) {
  const EnsembleConfig cfg = ens_config();
  HardeningPlan plan;
  plan.site_battery_hours.assign(inputs().sites.size(), 1e6);
  const EnsembleReport r = run_ensemble(inputs(), cfg, &plan);
  EXPECT_EQ(r.expected_power_user_hours, 0.0);
  // Fire damage and transport cuts are untouched by batteries.
  const EnsembleReport baseline = run_ensemble(inputs(), cfg);
  EXPECT_LT(r.expected_user_hours, baseline.expected_user_hours);
}

TEST(Ensemble, UnknownRegionThrows) {
  EnsembleConfig cfg = ens_config();
  cfg.region = "not-a-state";
  EXPECT_THROW(SharedInputs::build(world(), cfg), std::invalid_argument);
}

}  // namespace
}  // namespace fa::ensemble

// The served ensemble request pair, end to end: wire codec totality,
// fingerprint distinctness, Server::handle dispatch + cache
// equivalence, HTTP route parsing, and a live NetServer socket round
// trip — TopKFragileSites queryable through the same front door as
// every other query shape.
#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "net/client.hpp"
#include "net/http.hpp"
#include "net/server.hpp"
#include "serve/server.hpp"
#include "serve/types.hpp"
#include "serve/wire.hpp"
#include "../serve/serve_test_util.hpp"

namespace fa::serve {
namespace {

using testing::tiny_config;

// Tiny world, few members: these tests exercise plumbing, not the
// simulator — the engine's own properties live in ensemble_test.cpp.
constexpr std::uint32_t kMembers = 6;

Server& shared_server() {
  static Server* server = new Server(tiny_config());
  return *server;
}

TEST(EnsembleWire, RequestRoundTrip) {
  const Request summary{EnsembleSummaryQuery{17, 0xDEADBEEFCAFEULL}};
  const Request fragile{TopKFragileSitesQuery{33, 12345, 9}};
  for (const Request& request : {summary, fragile}) {
    const std::string bytes = wire::encode(request);
    const fault::Result<Request> back = wire::decode_request(bytes);
    ASSERT_TRUE(back.ok()) << back.status().to_string();
    EXPECT_EQ(back.value(), request);
  }
}

TEST(EnsembleWire, ResponseRoundTrip) {
  EnsembleSummaryResponse summary;
  summary.epoch = 3;
  summary.members = 17;
  summary.quarantined = 2;
  summary.sites = 41;
  summary.fires = 99;
  summary.expected_user_hours = 1.5e8;
  summary.expected_power_user_hours = 1.25e8;
  summary.expected_pop_exposure = 4.5e4;
  summary.expected_overlap_user_hours = 3.25e6;
  summary.exceedance = {{0.0, 1.0}, {1e8, 0.5}, {2e8, 0.0}};
  TopKFragileSitesResponse fragile;
  fragile.epoch = 3;
  fragile.members = 17;
  fragile.sites = 41;
  fragile.sites_ranked = {
      {7, {-121.5, 39.75}, 1200.0, 5.5e5, 0.9, 0.625},
      {2, {-120.0, 38.5}, 800.0, 3.5e5, 0.75, 0.5}};
  for (const Response& response : {Response{summary}, Response{fragile}}) {
    const std::string bytes = wire::encode(response);
    const fault::Result<Response> back = wire::decode_response(bytes);
    ASSERT_TRUE(back.ok()) << back.status().to_string();
    EXPECT_EQ(back.value(), response);
  }
}

TEST(EnsembleWire, DecodeRejectsHostileInputs) {
  // Truncated mid-field.
  const std::string bytes =
      wire::encode(Request{EnsembleSummaryQuery{8, 7}});
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const auto r = wire::decode_request(bytes.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "accepted a " << cut << "-byte prefix";
  }
  // Trailing garbage after a complete body.
  EXPECT_EQ(wire::decode_request(bytes + "x").status().code,
            fault::ErrCode::kSchema);
  // Zero members is meaningless; absurd members cap the compute a
  // request can demand.
  EXPECT_EQ(wire::decode_request(wire::encode(Request{
                                     EnsembleSummaryQuery{0, 7}}))
                .status()
                .code,
            fault::ErrCode::kOutOfRange);
  EXPECT_EQ(wire::decode_request(
                wire::encode(Request{EnsembleSummaryQuery{
                    wire::kMaxEnsembleMembers + 1, 7}}))
                .status()
                .code,
            fault::ErrCode::kOutOfRange);
  EXPECT_EQ(wire::decode_request(
                wire::encode(Request{TopKFragileSitesQuery{
                    8, 7, wire::kMaxTopK + 1}}))
                .status()
                .code,
            fault::ErrCode::kOutOfRange);
  // Response-side caps: a fabricated row count past the limit rejects
  // before any allocation.
  EnsembleSummaryResponse summary;
  summary.members = 4;
  std::string forged = wire::encode(Response{summary});
  // Row count is the last u32 of the fixed header; forge it huge.
  forged[forged.size() - 4] = '\xFF';
  forged[forged.size() - 3] = '\xFF';
  EXPECT_EQ(wire::decode_response(forged).status().code,
            fault::ErrCode::kOutOfRange);
}

TEST(EnsembleWire, FingerprintsSeparateShapesAndParameters) {
  const EnsembleSummaryQuery a{16, 7};
  const EnsembleSummaryQuery b{16, 8};
  const EnsembleSummaryQuery c{17, 7};
  const TopKFragileSitesQuery d{16, 7, 10};
  EXPECT_NE(fingerprint(a), fingerprint(b));
  EXPECT_NE(fingerprint(a), fingerprint(c));
  EXPECT_NE(fingerprint(a), fingerprint(d));
  EXPECT_EQ(fingerprint(a), fingerprint(EnsembleSummaryQuery{16, 7}));
  EXPECT_EQ(fingerprint(a), fingerprint(Request{a}));
}

TEST(EnsembleServe, HandleReturnsTheMatchingAlternative) {
  Server& server = shared_server();
  const Response summary =
      server.handle(Request{EnsembleSummaryQuery{kMembers, 7}});
  ASSERT_TRUE(std::holds_alternative<EnsembleSummaryResponse>(summary));
  const auto& s = std::get<EnsembleSummaryResponse>(summary);
  EXPECT_EQ(s.epoch, server.epoch());
  EXPECT_EQ(s.members, kMembers);
  EXPECT_GT(s.sites, 0u);

  const Response fragile =
      server.handle(Request{TopKFragileSitesQuery{kMembers, 7, 5}});
  ASSERT_TRUE(std::holds_alternative<TopKFragileSitesResponse>(fragile));
  const auto& f = std::get<TopKFragileSitesResponse>(fragile);
  EXPECT_EQ(f.sites, s.sites);
  EXPECT_LE(f.sites_ranked.size(), 5u);
  // Typed wrappers answer with the same bytes as handle().
  EXPECT_EQ(server.ensemble_summary(EnsembleSummaryQuery{kMembers, 7}), s);
  EXPECT_EQ(server.top_k_fragile_sites(TopKFragileSitesQuery{kMembers, 7, 5}),
            f);
}

TEST(EnsembleServe, CachedEqualsUncached) {
  Server& cached = shared_server();
  ServerOptions no_cache;
  no_cache.cache_enabled = false;
  Server uncached(tiny_config(), no_cache);
  const Request request{EnsembleSummaryQuery{kMembers, 7}};
  const std::string first = wire::encode(cached.handle(request));
  const std::string repeat = wire::encode(cached.handle(request));
  const std::string cold = wire::encode(uncached.handle(request));
  EXPECT_EQ(first, repeat);  // second answer is the cache hit
  EXPECT_EQ(first, cold);    // cache changes when, never what
}

TEST(EnsembleServe, HttpRoutesParse) {
  net::HttpRequest req;
  req.method = "GET";
  req.path = "/ensemble/summary";
  req.params["members"] = "12";
  req.params["seed"] = "99";
  net::HttpRoute route = net::route_http(req);
  ASSERT_EQ(route.kind, net::HttpRoute::Kind::kQuery);
  const Request expected_summary{EnsembleSummaryQuery{12, 99}};
  EXPECT_EQ(route.request, expected_summary);

  req.path = "/ensemble/fragile";
  req.params["k"] = "3";
  route = net::route_http(req);
  ASSERT_EQ(route.kind, net::HttpRoute::Kind::kQuery);
  const Request expected_fragile{TopKFragileSitesQuery{12, 99, 3}};
  EXPECT_EQ(route.request, expected_fragile);

  // Defaults apply when params are omitted.
  req.params.clear();
  req.path = "/ensemble/summary";
  route = net::route_http(req);
  ASSERT_EQ(route.kind, net::HttpRoute::Kind::kQuery);
  EXPECT_EQ(route.request, serve::Request{EnsembleSummaryQuery{}});

  // Hostile parameters reject at the route, before any simulation.
  for (const char* members : {"0", "4097", "abc", "-3", "1e3"}) {
    req.params["members"] = members;
    EXPECT_EQ(net::route_http(req).kind, net::HttpRoute::Kind::kBadRequest)
        << members;
  }
}

TEST(EnsembleServe, LiveSocketEndToEnd) {
  Server& backend = shared_server();
  net::NetServerOptions options;
  options.workers = 2;
  net::NetServer server(backend, options);
  auto client = net::Client::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().to_string();

  const TopKFragileSitesQuery query{kMembers, 7, 5};
  auto reply = client.value().call(Request{query});
  ASSERT_TRUE(reply.ok()) << reply.status().to_string();
  ASSERT_TRUE(reply.value().ok());
  const auto& over_wire =
      std::get<TopKFragileSitesResponse>(*reply.value().response);
  // The socket answer is byte-identical to the in-process answer.
  EXPECT_EQ(over_wire, backend.top_k_fragile_sites(query));
  EXPECT_GT(over_wire.sites, 0u);
  for (std::size_t i = 1; i < over_wire.sites_ranked.size(); ++i) {
    EXPECT_GE(over_wire.sites_ranked[i - 1].expected_user_hours,
              over_wire.sites_ranked[i].expected_user_hours);
  }

  auto summary = client.value().call(Request{EnsembleSummaryQuery{kMembers, 7}});
  ASSERT_TRUE(summary.ok()) << summary.status().to_string();
  ASSERT_TRUE(summary.value().ok());
  EXPECT_EQ(std::get<EnsembleSummaryResponse>(*summary.value().response),
            backend.ensemble_summary(EnsembleSummaryQuery{kMembers, 7}));
  server.shutdown(true);
}

}  // namespace
}  // namespace fa::serve

#include "firesim/dirs.hpp"

#include <gtest/gtest.h>

#include "synth/cells.hpp"

namespace fa::firesim {
namespace {

struct World {
  synth::ScenarioConfig cfg;
  synth::WhpModel whp;
  cellnet::CellCorpus corpus;
  synth::CountyMap counties;
  World() {
    cfg.whp_cell_m = 9000.0;
    cfg.corpus_scale = 120.0;
    whp = synth::generate_whp(synth::UsAtlas::get(), cfg);
    corpus = synth::generate_corpus(synth::UsAtlas::get(), cfg);
    counties = synth::CountyMap::build(synth::UsAtlas::get(), cfg);
  }
};

const World& world() {
  static const World w;
  return w;
}

const DirsActivation& activation() {
  static const DirsActivation a = run_dirs_activation(
      world().corpus, world().whp, synth::UsAtlas::get(), world().counties,
      2019);
  return a;
}

TEST(Dirs, ActivationCoversManyCountiesAndProviders) {
  // The 2019 activation covered 37 counties and every major provider.
  EXPECT_GT(activation().counties_covered, 10u);
  EXPECT_GE(activation().providers_reporting, 4u);
  EXPECT_FALSE(activation().filings.empty());
}

TEST(Dirs, FilingsInternallyConsistent) {
  for (const DirsFiling& filing : activation().filings) {
    EXPECT_EQ(filing.sites_out,
              filing.out_damage + filing.out_power + filing.out_transport);
    EXPECT_LE(filing.sites_out, filing.sites_served);
    EXPECT_GE(filing.county, 0);
    EXPECT_GE(filing.day_index, 0);
    EXPECT_LT(filing.day_index, 8);
  }
}

TEST(Dirs, DailySummaryTracksFigureFiveShape) {
  const std::vector<DayOutages> summary = activation().daily_summary();
  ASSERT_EQ(summary.size(), 8u);
  EXPECT_EQ(summary.front().label, "Oct 25");
  // Peak in the middle of the window, power dominant.
  std::size_t peak_total = 0;
  int peak_day = 0;
  std::size_t power = 0, other = 0;
  for (const DayOutages& day : summary) {
    if (day.total() > peak_total) {
      peak_total = day.total();
      peak_day = day.day_index;
    }
    power += day.power;
    other += day.damaged + day.transport;
  }
  EXPECT_GE(peak_day, 1);
  EXPECT_LE(peak_day, 5);
  EXPECT_GT(power, other);
}

TEST(Dirs, WorstCountiesAreRankedAndReal) {
  const auto worst = activation().worst_counties();
  ASSERT_FALSE(worst.empty());
  for (std::size_t i = 1; i < worst.size(); ++i) {
    EXPECT_GE(worst[i - 1].second, worst[i].second);
  }
  // The worst county is a real index into the county map, in California.
  const synth::County& top = world().counties.county(worst[0].first);
  EXPECT_EQ(synth::UsAtlas::get().states()[top.state].abbr, "CA");
}

TEST(Dirs, ProviderRollupCoversMajors) {
  const auto per_provider = activation().per_provider_site_days();
  std::size_t total = 0;
  for (const auto& [provider, site_days] : per_provider) total += site_days;
  EXPECT_GT(total, 0u);
}

TEST(Dirs, VoluntaryGapReducesFilings) {
  DirsConfig partial;
  partial.filing_rate = 0.5;
  const DirsActivation half = run_dirs_activation(
      world().corpus, world().whp, synth::UsAtlas::get(), world().counties,
      2019, OutageSimConfig{}, partial);
  EXPECT_LT(half.filings.size(), activation().filings.size());
  EXPECT_GT(half.filings.size(), activation().filings.size() / 4);
}

TEST(Dirs, DeterministicPerSeed) {
  const DirsActivation a = run_dirs_activation(
      world().corpus, world().whp, synth::UsAtlas::get(), world().counties, 7);
  const DirsActivation b = run_dirs_activation(
      world().corpus, world().whp, synth::UsAtlas::get(), world().counties, 7);
  ASSERT_EQ(a.filings.size(), b.filings.size());
  for (std::size_t i = 0; i < a.filings.size(); ++i) {
    EXPECT_EQ(a.filings[i].sites_out, b.filings[i].sites_out);
    EXPECT_EQ(a.filings[i].county, b.filings[i].county);
  }
}

}  // namespace
}  // namespace fa::firesim

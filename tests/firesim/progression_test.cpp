#include <gtest/gtest.h>

#include "firesim/fire.hpp"
#include "geo/projection.hpp"

namespace fa::firesim {
namespace {

const synth::WhpModel& shared_whp() {
  static const synth::WhpModel whp = [] {
    synth::ScenarioConfig cfg;
    cfg.whp_cell_m = 9000.0;
    return synth::generate_whp(synth::UsAtlas::get(), cfg);
  }();
  return whp;
}

FireSimulator::FireProgression sierra_fire(int days,
                                           std::uint64_t seed = 21) {
  FireSimulator sim(shared_whp(), synth::UsAtlas::get(), seed);
  return sim.spread_fire_staged({-120.6, 39.2}, 30000.0, days, 2018, 0);
}

TEST(Progression, OneSnapshotPerDay) {
  const auto prog = sierra_fire(6);
  ASSERT_EQ(prog.daily.size(), 6u);
  ASSERT_EQ(prog.daily_acres.size(), 6u);
}

TEST(Progression, CumulativeAcresMonotone) {
  const auto prog = sierra_fire(7);
  for (std::size_t d = 1; d < prog.daily_acres.size(); ++d) {
    EXPECT_GE(prog.daily_acres[d], prog.daily_acres[d - 1]) << d;
  }
  EXPECT_GT(prog.daily_acres.front(), 0.0);
}

TEST(Progression, FinalMatchesTarget) {
  const auto prog = sierra_fire(5);
  EXPECT_NEAR(prog.daily_acres.back(), 30000.0, 30000.0 * 0.25);
  EXPECT_DOUBLE_EQ(prog.final_perimeter.acres, prog.daily_acres.back());
  EXPECT_FALSE(prog.final_perimeter.perimeter.empty());
}

TEST(Progression, DailyPerimetersAreNested) {
  // Each day's perimeter must contain (almost) everything burned before:
  // sample points from day d must stay inside day d+1.
  const auto prog = sierra_fire(5);
  for (std::size_t d = 0; d + 1 < prog.daily.size(); ++d) {
    if (prog.daily[d].empty()) continue;
    // The earlier centroid stays covered.
    const geo::Vec2 c = prog.daily[d].parts()[0].outer().centroid();
    EXPECT_TRUE(prog.daily[d + 1].contains(c) ||
                prog.daily[d].parts()[0].contains(c) == false)
        << "day " << d;
  }
}

TEST(Progression, MiddleDaysGrowFastest) {
  // The logistic profile: growth on the middle days exceeds the first
  // day's establishment growth.
  const auto prog = sierra_fire(8);
  const double first = prog.daily_acres[0];
  double mid_growth = 0.0;
  for (std::size_t d = 2; d <= 4; ++d) {
    mid_growth =
        std::max(mid_growth, prog.daily_acres[d] - prog.daily_acres[d - 1]);
  }
  EXPECT_GT(mid_growth, first);
}

TEST(Progression, GeoJsonRoundTripOfDaily) {
  // Daily rings are valid geometry (area > 0, projectable).
  const auto prog = sierra_fire(4);
  for (const geo::MultiPolygon& mp : prog.daily) {
    if (mp.empty()) continue;
    EXPECT_GT(geo::multipolygon_area_acres(mp), 0.0);
  }
}

}  // namespace
}  // namespace fa::firesim

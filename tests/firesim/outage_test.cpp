#include "firesim/outage.hpp"

#include <gtest/gtest.h>

#include "synth/cells.hpp"

namespace fa::firesim {
namespace {

struct World {
  synth::ScenarioConfig cfg;
  synth::WhpModel whp;
  cellnet::CellCorpus corpus;
  World() {
    cfg.whp_cell_m = 9000.0;
    cfg.corpus_scale = 120.0;
    whp = synth::generate_whp(synth::UsAtlas::get(), cfg);
    corpus = synth::generate_corpus(synth::UsAtlas::get(), cfg);
  }
};

const World& world() {
  static const World w;
  return w;
}

TEST(OutageCauseNames, Stable) {
  EXPECT_EQ(outage_cause_name(OutageCause::kDamage), "damage");
  EXPECT_EQ(outage_cause_name(OutageCause::kPower), "power");
  EXPECT_EQ(outage_cause_name(OutageCause::kTransport), "transport");
}

TEST(DirsReport, PeakDayOfEmptyReport) {
  EXPECT_EQ(DirsReport{}.peak_day(), 0);
}

DirsReport run_case_study(std::uint64_t seed) {
  return simulate_california_2019(world().corpus, world().whp,
                                  synth::UsAtlas::get(), seed);
}

TEST(CaliforniaCaseStudy, EightReportingDays) {
  const DirsReport report = run_case_study(7);
  ASSERT_EQ(report.days.size(), 8u);
  EXPECT_EQ(report.days.front().label, "Oct 25");
  EXPECT_EQ(report.days.back().label, "Nov 1");
  EXPECT_GT(report.sites_monitored, 100u);
}

TEST(CaliforniaCaseStudy, PeakNearOct28) {
  // Figure 5: outages peak on Oct 28 (day 3); allow one day of slack for
  // simulator stochasticity.
  const DirsReport report = run_case_study(8);
  EXPECT_GE(report.peak_day(), 2);
  EXPECT_LE(report.peak_day(), 4);
}

TEST(CaliforniaCaseStudy, PowerIsTheDominantCause) {
  // Section 3.2: >80% of peak outages were loss of power.
  const DirsReport report = run_case_study(9);
  const DayOutages& peak =
      report.days[static_cast<std::size_t>(report.peak_day())];
  ASSERT_GT(peak.total(), 0u);
  EXPECT_GT(static_cast<double>(peak.power) / peak.total(), 0.7);
  EXPECT_GT(peak.power, peak.transport);
  EXPECT_GT(peak.power, peak.damaged);
}

TEST(CaliforniaCaseStudy, RampUpAndDecline) {
  const DirsReport report = run_case_study(10);
  const int peak = report.peak_day();
  EXPECT_LT(report.days.front().total(),
            report.days[static_cast<std::size_t>(peak)].total());
  EXPECT_LT(report.days.back().total(),
            report.days[static_cast<std::size_t>(peak)].total());
  // Residual outages persist on the final day (110 sites in the paper).
  EXPECT_GT(report.days.back().total(), 0u);
}

TEST(CaliforniaCaseStudy, OutagesAreAMinorityOfSites) {
  const DirsReport report = run_case_study(11);
  const DayOutages& peak =
      report.days[static_cast<std::size_t>(report.peak_day())];
  EXPECT_LT(static_cast<double>(peak.total()) / report.sites_monitored, 0.4);
}

TEST(OutageSimulator, NoWindNoFiresNoPowerOutages) {
  OutageSimConfig config;
  config.wind_severity = {0.0, 0.0, 0.0};
  config.transport_base = 0.0;
  const auto sites = world().corpus.infer_sites(120.0);
  OutageSimulator sim(world().whp, 5);
  const DirsReport report = sim.simulate(sites, {}, config);
  for (const DayOutages& d : report.days) {
    EXPECT_EQ(d.total(), 0u);
  }
}

TEST(OutageSimulator, FireDamagePersistsAcrossDays) {
  // A synthetic fire covering every site guarantees damage on day 0 that
  // must persist through the short window (repair takes >= 4 days).
  OutageSimConfig config;
  config.wind_severity = {0.0, 0.0, 0.0, 0.0};
  config.transport_base = 0.0;
  config.damage_prob = 1.0;
  std::vector<cellnet::CellSite> sites;
  for (std::uint32_t i = 0; i < 50; ++i) {
    cellnet::CellSite s;
    s.id = i;
    s.position = {-120.0 + 0.001 * i, 39.0};
    s.transceiver_count = 1;
    sites.push_back(s);
  }
  FirePerimeter fire;
  fire.perimeter =
      geo::MultiPolygon{{geo::Polygon{geo::make_rect(-121.0, 38.5, -119.0, 39.5)}}};
  fire.start_day = 0;
  fire.end_day = 0;
  OutageSimulator sim(world().whp, 6);
  const DirsReport report = sim.simulate(sites, {fire}, config);
  EXPECT_EQ(report.days[0].damaged, 50u);
  EXPECT_EQ(report.days[1].damaged, 50u);  // still being repaired
  EXPECT_EQ(report.days[3].damaged, 50u);
}

TEST(OutageSimulator, SeverityScalesOutages) {
  const auto sites = world().corpus.infer_sites(120.0);
  OutageSimConfig calm;
  calm.wind_severity = {0.1};
  OutageSimConfig storm;
  storm.wind_severity = {1.0};
  std::size_t calm_total = 0, storm_total = 0;
  // Average a few seeds to control stochastic noise.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    OutageSimulator a(world().whp, seed);
    OutageSimulator b(world().whp, seed);
    calm_total += a.simulate(sites, {}, calm).days[0].total();
    storm_total += b.simulate(sites, {}, storm).days[0].total();
  }
  EXPECT_GT(storm_total, calm_total * 2);
}

TEST(OutageSimulator, DeterministicPerSeed) {
  const DirsReport a = run_case_study(12);
  const DirsReport b = run_case_study(12);
  ASSERT_EQ(a.days.size(), b.days.size());
  for (std::size_t i = 0; i < a.days.size(); ++i) {
    EXPECT_EQ(a.days[i].power, b.days[i].power);
    EXPECT_EQ(a.days[i].damaged, b.days[i].damaged);
    EXPECT_EQ(a.days[i].transport, b.days[i].transport);
  }
}

}  // namespace
}  // namespace fa::firesim

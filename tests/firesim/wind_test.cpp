#include "firesim/wind.hpp"

#include "firesim/outage.hpp"

#include <gtest/gtest.h>

namespace fa::firesim {
namespace {

TEST(Wind, SeasonsAreDeterministic) {
  const auto a = generate_wind_season(42);
  const auto b = generate_wind_season(42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start_day, b[i].start_day);
    EXPECT_EQ(a[i].severity, b[i].severity);
  }
  const auto c = generate_wind_season(43);
  if (!a.empty() && !c.empty()) {
    EXPECT_TRUE(a[0].start_day != c[0].start_day ||
                a[0].severity != c[0].severity);
  }
}

TEST(Wind, EventsAreChronologicalAndDisjoint) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto events = generate_wind_season(seed);
    int last_end = -1;
    for (const WindEvent& e : events) {
      EXPECT_GT(e.start_day, last_end) << "seed " << seed;
      EXPECT_GE(e.duration(), 3);
      EXPECT_LE(e.duration(), 9);
      last_end = e.start_day + e.duration() - 1;
      EXPECT_LT(last_end, 120);
    }
  }
}

TEST(Wind, SeverityBounded) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    for (const WindEvent& e : generate_wind_season(seed)) {
      for (const double s : e.severity) {
        EXPECT_GE(s, 0.05);
        EXPECT_LE(s, 1.0);
      }
      EXPECT_GE(e.peak(), 0.3);  // peaks are meaningful events
    }
  }
}

TEST(Wind, OnsetFasterThanDecay) {
  // The asymmetric profile: the peak sits in the first half of the event
  // for long-enough events.
  int checked = 0;
  for (std::uint64_t seed = 0; seed < 40 && checked < 10; ++seed) {
    for (const WindEvent& e : generate_wind_season(seed)) {
      if (e.duration() < 6) continue;
      std::size_t argmax = 0;
      for (std::size_t d = 1; d < e.severity.size(); ++d) {
        if (e.severity[d] > e.severity[argmax]) argmax = d;
      }
      EXPECT_LT(argmax, e.severity.size() * 2 / 3) << "seed " << seed;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(Wind, SeriesCoversSeasonAndMatchesEvents) {
  const auto events = generate_wind_season(7);
  const auto series = wind_severity_series(events, 120);
  ASSERT_EQ(series.size(), 120u);
  double sum = 0.0;
  for (const double s : series) sum += s;
  if (!events.empty()) {
    EXPECT_GT(sum, 0.0);
  }
  for (const WindEvent& e : events) {
    for (int d = 0; d < e.duration(); ++d) {
      EXPECT_GE(series[static_cast<std::size_t>(e.start_day + d)],
                e.severity[static_cast<std::size_t>(d)] - 1e-12);
    }
  }
}

TEST(Wind, FeedsTheOutageSimulator) {
  // A generated event can replace the hard-coded 2019 curve.
  const auto events = generate_wind_season(99);
  if (events.empty()) GTEST_SKIP() << "quiet season drawn";
  OutageSimConfig config;
  config.wind_severity = events[0].severity;
  config.day_labels.clear();
  EXPECT_EQ(static_cast<int>(config.wind_severity.size()),
            events[0].duration());
}

}  // namespace
}  // namespace fa::firesim

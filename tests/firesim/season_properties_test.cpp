// Property suite over simulated fire seasons: invariants that must hold
// for any year and seed, parameterized across the Table 1 record.
#include <gtest/gtest.h>

#include "firesim/fire.hpp"
#include "geo/projection.hpp"

namespace fa::firesim {
namespace {

const synth::WhpModel& shared_whp() {
  static const synth::WhpModel whp = [] {
    synth::ScenarioConfig cfg;
    cfg.whp_cell_m = 9000.0;
    return synth::generate_whp(synth::UsAtlas::get(), cfg);
  }();
  return whp;
}

class SeasonSweep : public ::testing::TestWithParam<int> {};

TEST_P(SeasonSweep, Invariants) {
  const int index = GetParam();
  const synth::FireYearStats target =
      synth::historical_fire_years()[static_cast<std::size_t>(index)];
  // Shrink acreage 4x to keep the sweep fast; invariants are
  // scale-independent.
  synth::FireYearStats shrunk = target;
  shrunk.acres_millions /= 4.0;

  FireSimulator sim(shared_whp(), synth::UsAtlas::get(),
                    1000 + static_cast<std::uint64_t>(index));
  const FireSeason season = sim.simulate_year(shrunk);

  // (1) Acreage lands within tolerance of the calibration target.
  EXPECT_NEAR(season.simulated_acres, shrunk.acres_millions * 1e6 * 0.97,
              shrunk.acres_millions * 1e6 * 0.10)
      << target.year;

  // (2) Reported ignition count passes through unchanged.
  EXPECT_EQ(season.total_ignitions, target.fires);

  const geo::BBox conus =
      synth::UsAtlas::get().conus_bbox().inflated(0.5);
  double sum_acres = 0.0;
  for (const FirePerimeter& fire : season.fires) {
    // (3) Every fire is on the map and inside the season.
    EXPECT_TRUE(conus.contains(fire.ignition.as_vec())) << fire.name;
    EXPECT_TRUE(conus.intersects(fire.perimeter.bbox())) << fire.name;
    EXPECT_EQ(fire.year, target.year);
    EXPECT_GE(fire.start_day, 1);
    EXPECT_LE(fire.end_day, 365);
    // (4) Polygon area agrees with reported acreage (simplification slack).
    const double poly_acres = geo::multipolygon_area_acres(fire.perimeter);
    EXPECT_NEAR(poly_acres, fire.acres, fire.acres * 0.35 + 40.0)
        << fire.name;
    sum_acres += fire.acres;
  }
  // (5) Per-fire acres sum to the season total.
  EXPECT_NEAR(sum_acres, season.simulated_acres, 1.0);
}

INSTANTIATE_TEST_SUITE_P(TableOneYears, SeasonSweep,
                         ::testing::Values(0, 3, 7, 10, 15, 18));

TEST(SeasonProperties, DifferentSeedsDifferentSeasons) {
  synth::FireYearStats target{2013, 47579, 0.5, 517, 120};
  FireSimulator a(shared_whp(), synth::UsAtlas::get(), 1);
  FireSimulator b(shared_whp(), synth::UsAtlas::get(), 2);
  const FireSeason sa = a.simulate_year(target);
  const FireSeason sb = b.simulate_year(target);
  ASSERT_FALSE(sa.fires.empty());
  ASSERT_FALSE(sb.fires.empty());
  EXPECT_NE(sa.fires[0].ignition, sb.fires[0].ignition);
}

TEST(SeasonProperties, LargeFiresAreRare) {
  // The size distribution is heavy-tailed: most simulated fires are
  // small, a few carry most of the area (Section 2.1's containment
  // narrative).
  synth::FireYearStats target{2017, 71499, 2.5, 2726, 272};
  FireSimulator sim(shared_whp(), synth::UsAtlas::get(), 3);
  const FireSeason season = sim.simulate_year(target);
  std::size_t big = 0;
  double big_acres = 0.0;
  for (const FirePerimeter& fire : season.fires) {
    if (fire.acres > 10000.0) {
      ++big;
      big_acres += fire.acres;
    }
  }
  EXPECT_LT(big, season.fires.size() / 3);
  EXPECT_GT(big_acres, season.simulated_acres * 0.4);
}

}  // namespace
}  // namespace fa::firesim

#include "firesim/fire.hpp"

#include <gtest/gtest.h>

#include "geo/projection.hpp"

namespace fa::firesim {
namespace {

// Shared coarse world (hazard generation dominates test runtime).
struct World {
  synth::ScenarioConfig cfg;
  synth::WhpModel whp;
  World() {
    cfg.whp_cell_m = 9000.0;
    whp = synth::generate_whp(synth::UsAtlas::get(), cfg);
  }
};

const World& world() {
  static const World w;
  return w;
}

TEST(FuelFactor, MonotoneInHazardClass) {
  EXPECT_LT(fuel_factor(synth::WhpClass::kNonBurnable),
            fuel_factor(synth::WhpClass::kVeryLow));
  EXPECT_LT(fuel_factor(synth::WhpClass::kVeryLow),
            fuel_factor(synth::WhpClass::kLow));
  EXPECT_LT(fuel_factor(synth::WhpClass::kLow),
            fuel_factor(synth::WhpClass::kModerate));
  EXPECT_LT(fuel_factor(synth::WhpClass::kModerate),
            fuel_factor(synth::WhpClass::kHigh));
  EXPECT_LT(fuel_factor(synth::WhpClass::kHigh),
            fuel_factor(synth::WhpClass::kVeryHigh));
  EXPECT_DOUBLE_EQ(fuel_factor(synth::WhpClass::kVeryHigh), 1.0);
}

TEST(FireSimulator, IgnitionsAreBurnableAndOnshore) {
  FireSimulator sim(world().whp, synth::UsAtlas::get(), 42);
  const FireSimConfig cfg;
  for (int i = 0; i < 200; ++i) {
    const geo::LonLat p = sim.sample_ignition(cfg);
    ASSERT_TRUE(geo::in_conus_bounds(p)) << p.lon << "," << p.lat;
    ASSERT_GE(world().whp.state_at(p), -1);
  }
}

TEST(FireSimulator, IgnitionsFavorHighHazard) {
  FireSimulator sim(world().whp, synth::UsAtlas::get(), 43);
  FireSimConfig cfg;
  cfg.wui_ignition_frac = 0.0;
  std::size_t at_risk = 0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    const synth::WhpClass cls = world().whp.class_at(sim.sample_ignition(cfg));
    at_risk += synth::whp_at_risk(cls) ? 1 : 0;
  }
  // M+H+VH is a minority of CONUS area but must carry most ignitions.
  EXPECT_GT(at_risk, n / 2);
}

TEST(FireSimulator, SpreadReachesTargetSize) {
  FireSimulator sim(world().whp, synth::UsAtlas::get(), 44);
  const FireSimConfig cfg;
  // Ignite in the Sierra foothills (high fuel).
  const FirePerimeter fire =
      sim.spread_fire({-120.6, 39.2}, 20000.0, 2018, 1, cfg);
  EXPECT_NEAR(fire.acres, 20000.0, 20000.0 * 0.2);
  EXPECT_FALSE(fire.perimeter.empty());
  // Reported acreage matches the polygon's geodesic area (within the
  // simplification tolerance).
  const double poly_acres = geo::multipolygon_area_acres(fire.perimeter);
  EXPECT_NEAR(poly_acres, fire.acres, fire.acres * 0.25);
}

TEST(FireSimulator, PerimeterContainsIgnition) {
  FireSimulator sim(world().whp, synth::UsAtlas::get(), 45);
  const FireSimConfig cfg;
  const FirePerimeter fire =
      sim.spread_fire({-120.6, 39.2}, 5000.0, 2018, 2, cfg);
  EXPECT_TRUE(fire.perimeter.contains(fire.ignition.as_vec()));
}

TEST(FireSimulator, FiresStallOnUrbanFuel) {
  FireSimulator sim(world().whp, synth::UsAtlas::get(), 46);
  const FireSimConfig cfg;
  // Ignite in downtown Chicago: non-burnable, fire must stay tiny.
  const FirePerimeter fire =
      sim.spread_fire({-87.63, 41.88}, 50000.0, 2018, 3, cfg);
  EXPECT_LT(fire.acres, 2000.0);
}

TEST(FireSimulator, SeasonTimingWithinYear) {
  FireSimulator sim(world().whp, synth::UsAtlas::get(), 47);
  const FireSimConfig cfg;
  for (int i = 0; i < 10; ++i) {
    const FirePerimeter fire =
        sim.spread_fire(sim.sample_ignition(cfg), 2000.0, 2012, i, cfg);
    EXPECT_GE(fire.start_day, 1);
    EXPECT_LE(fire.end_day, 365);
    EXPECT_LE(fire.start_day, fire.end_day);
    EXPECT_EQ(fire.year, 2012);
  }
}

TEST(FireSimulator, SeasonMeetsAcreageTarget) {
  FireSimulator sim(world().whp, synth::UsAtlas::get(), 48);
  synth::FireYearStats target{2014, 63312, 3.595, 453, 126};
  const FireSeason season = sim.simulate_year(target);
  EXPECT_EQ(season.year, 2014);
  EXPECT_EQ(season.total_ignitions, 63312);
  EXPECT_NEAR(season.simulated_acres, 3.595e6 * 0.97, 3.595e6 * 0.08);
  EXPECT_GT(season.fires.size(), 50u);
  EXPECT_LT(season.fires.size(), 5000u);
  // Every fire carries a non-empty perimeter and plausible acreage.
  for (const FirePerimeter& fire : season.fires) {
    EXPECT_FALSE(fire.perimeter.empty());
    EXPECT_GT(fire.acres, 0.0);
    EXPECT_LE(fire.acres, 7e5);
  }
}

TEST(FireSimulator, SeasonsAreDeterministic) {
  synth::FireYearStats target{2010, 71971, 0.4, 181, 53};  // shrunk acreage
  FireSimulator a(world().whp, synth::UsAtlas::get(), 49);
  FireSimulator b(world().whp, synth::UsAtlas::get(), 49);
  const FireSeason sa = a.simulate_year(target);
  const FireSeason sb = b.simulate_year(target);
  ASSERT_EQ(sa.fires.size(), sb.fires.size());
  for (std::size_t i = 0; i < sa.fires.size(); ++i) {
    EXPECT_DOUBLE_EQ(sa.fires[i].acres, sb.fires[i].acres);
    EXPECT_EQ(sa.fires[i].ignition, sb.fires[i].ignition);
  }
}

TEST(FireSimulator, WesternStatesBurnMost) {
  FireSimulator sim(world().whp, synth::UsAtlas::get(), 50);
  synth::FireYearStats target{2017, 71499, 2.0, 2726, 272};  // shrunk
  const FireSeason season = sim.simulate_year(target);
  const auto& atlas = synth::UsAtlas::get();
  double west_acres = 0.0;
  for (const FirePerimeter& fire : season.fires) {
    const int s = atlas.state_of(fire.ignition);
    if (s < 0) continue;
    if (fire.ignition.lon < -100.0 ||
        atlas.states()[s].fire_propensity >= 0.55) {
      west_acres += fire.acres;
    }
  }
  EXPECT_GT(west_acres, season.simulated_acres * 0.6);
}

// Property sweep: requested size vs delivered size stays within tolerance
// across two orders of magnitude (in high-fuel terrain).
class FireSizeSweep : public ::testing::TestWithParam<double> {};

TEST_P(FireSizeSweep, SizeTracking) {
  FireSimulator sim(world().whp, synth::UsAtlas::get(), 51);
  const FireSimConfig cfg;
  const double target = GetParam();
  const FirePerimeter fire =
      sim.spread_fire({-120.6, 39.2}, target, 2018, 0, cfg);
  EXPECT_GE(fire.acres, target * 0.5);
  EXPECT_LE(fire.acres, target * 1.5 + 100.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FireSizeSweep,
                         ::testing::Values(500.0, 5000.0, 50000.0, 200000.0));

}  // namespace
}  // namespace fa::firesim

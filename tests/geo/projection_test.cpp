#include "geo/projection.hpp"

#include <gtest/gtest.h>

#include "geo/geodesy.hpp"

namespace fa::geo {
namespace {

TEST(AlbersConus, RoundTripAcrossConus) {
  const AlbersConus proj;
  const LonLat samples[] = {
      {-120.0, 38.0}, {-96.0, 23.0}, {-75.0, 40.0},
      {-110.0, 45.0}, {-81.0, 28.0}, {-122.4, 37.8},
  };
  for (const LonLat& p : samples) {
    const LonLat back = proj.inverse(proj.forward(p));
    EXPECT_NEAR(back.lon, p.lon, 1e-9) << p.lon << "," << p.lat;
    EXPECT_NEAR(back.lat, p.lat, 1e-9) << p.lon << "," << p.lat;
  }
}

TEST(AlbersConus, OriginMapsNearZero) {
  const AlbersConus proj;
  const Vec2 xy = proj.forward({-96.0, 23.0});
  EXPECT_NEAR(xy.x, 0.0, 1e-6);
  EXPECT_NEAR(xy.y, 0.0, 1e-6);
}

TEST(AlbersConus, DistancesApproximateGreatCircle) {
  const AlbersConus proj;
  const LonLat a{-120.0, 38.0};
  const LonLat b{-119.0, 38.5};
  const double planar = distance(proj.forward(a), proj.forward(b));
  const double sphere = haversine_m(a, b);
  EXPECT_NEAR(planar, sphere, sphere * 0.01);
}

TEST(AlbersConus, EqualAreaProperty) {
  // Identically-sized lon/lat boxes at different latitudes must project
  // to (nearly) identical areas only after cos(lat) correction — an
  // equal-area projection preserves *true* area, which shrinks with
  // latitude. Compare against the spherical area instead.
  const AlbersConus proj;
  for (double lat : {28.0, 35.0, 42.0, 48.0}) {
    const Polygon box{make_rect(-100.0, lat, -99.0, lat + 1.0)};
    const double albers = proj.project(box).area();
    const double sphere = spherical_ring_area_m2(box.outer());
    EXPECT_NEAR(albers, sphere, sphere * 0.005) << "lat=" << lat;
  }
}

TEST(LocalEquirect, RoundTripAndScale) {
  const LonLat origin{-118.0, 34.0};
  const LocalEquirect proj(origin);
  EXPECT_EQ(proj.forward(origin), (Vec2{0.0, 0.0}));
  const LonLat p{-117.5, 34.25};
  const LonLat back = proj.inverse(proj.forward(p));
  EXPECT_NEAR(back.lon, p.lon, 1e-12);
  EXPECT_NEAR(back.lat, p.lat, 1e-12);
  // One degree of latitude ~ 111.2 km in projected y.
  EXPECT_NEAR(proj.forward({-118.0, 35.0}).y, 111.2e3, 400.0);
}

TEST(SphericalArea, MatchesKnownMagnitudes) {
  // 1x1 degree box at ~40N is about 9,500 km^2.
  const Ring box = make_rect(-100.0, 40.0, -99.0, 41.0);
  const double km2 = spherical_ring_area_m2(box) / 1e6;
  EXPECT_NEAR(km2, 9500.0, 200.0);
}

TEST(AreaHelpers, AcresConversion) {
  // A 640-acre section is one square mile.
  const LonLat sw{-100.0, 40.0};
  const double mile_deg_lon = kMetersPerMile / meters_per_deg_lon(40.0);
  const double mile_deg_lat = kMetersPerMile / meters_per_deg_lat();
  const Polygon section{make_rect(sw.lon, sw.lat, sw.lon + mile_deg_lon,
                                  sw.lat + mile_deg_lat)};
  EXPECT_NEAR(polygon_area_acres(section), 640.0, 6.0);
}

TEST(AreaHelpers, MultiPolygonSums) {
  const double d = 0.01;
  MultiPolygon mp;
  mp.push_back(Polygon{make_rect(-100.0, 40.0, -100.0 + d, 40.0 + d)});
  mp.push_back(Polygon{make_rect(-101.0, 40.0, -101.0 + d, 40.0 + d)});
  const double one = polygon_area_acres(mp.parts()[0]);
  EXPECT_NEAR(multipolygon_area_acres(mp), 2.0 * one, one * 0.01);
}

}  // namespace
}  // namespace fa::geo

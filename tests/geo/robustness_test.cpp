// Adversarial and degenerate-input robustness for the geometry kernel:
// the crowd-sourced corpus and machine-generated perimeters feed this
// code millions of near-degenerate cases per run.
#include <gtest/gtest.h>

#include <random>

#include "geo/algorithms.hpp"
#include "geo/buffer.hpp"
#include "geo/polygon.hpp"
#include "geo/projection.hpp"

namespace fa::geo {
namespace {

TEST(Robustness, PointExactlyOnEveryVertex) {
  const Ring ring{{{0, 0}, {4, 0}, {4, 3}, {2, 5}, {0, 3}}};
  for (const Vec2& v : ring.points()) {
    EXPECT_TRUE(ring.contains(v)) << v.x << "," << v.y;
  }
}

TEST(Robustness, PointOnHorizontalEdge) {
  // Horizontal edges are the classic ray-casting trap.
  const Ring ring{{{0, 0}, {10, 0}, {10, 10}, {0, 10}}};
  EXPECT_TRUE(ring.contains({5, 0}));
  EXPECT_TRUE(ring.contains({5, 10}));
  // Collinear with the bottom edge but outside the segment.
  EXPECT_FALSE(ring.contains({11, 0}));
  EXPECT_FALSE(ring.contains({-1, 10}));
}

TEST(Robustness, RayThroughVertexCountsOnce) {
  // A diamond: a horizontal ray through the apex vertex must not double
  // count the two edges meeting there.
  const Ring diamond{{{0, -2}, {2, 0}, {0, 2}, {-2, 0}}};
  EXPECT_TRUE(diamond.contains({0.0, 0.0}));
  EXPECT_FALSE(diamond.contains({3.0, 0.0}));
  EXPECT_FALSE(diamond.contains({-3.0, 0.0}));
  EXPECT_TRUE(diamond.contains({0.5, 0.0}));
}

TEST(Robustness, NeedleThinTriangle) {
  const Ring needle{{{0, 0}, {100, 1e-9}, {100, 2e-9}}};
  EXPECT_GT(needle.area(), 0.0);
  EXPECT_FALSE(needle.contains({50, 1.0}));
}

TEST(Robustness, DuplicateConsecutiveVertices) {
  const Ring ring{{{0, 0}, {0, 0}, {4, 0}, {4, 4}, {4, 4}, {0, 4}}};
  EXPECT_DOUBLE_EQ(ring.area(), 16.0);
  EXPECT_TRUE(ring.contains({2, 2}));
  EXPECT_FALSE(ring.contains({5, 2}));
}

TEST(Robustness, HugeCoordinates) {
  const Ring ring = make_rect(1e8, 1e8, 1e8 + 10, 1e8 + 10);
  EXPECT_TRUE(ring.contains({1e8 + 5, 1e8 + 5}));
  EXPECT_DOUBLE_EQ(ring.area(), 100.0);
}

TEST(Robustness, SimplifyNeverInflatesArea) {
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> jitter(-0.2, 0.2);
  std::vector<Vec2> pts;
  for (int i = 0; i < 100; ++i) {
    const double t = 2.0 * std::numbers::pi * i / 100.0;
    pts.push_back({3.0 * std::cos(t) + jitter(rng),
                   3.0 * std::sin(t) + jitter(rng)});
  }
  const Ring noisy{pts};
  for (const double tol : {0.05, 0.2, 0.8}) {
    const Ring simp = simplify_ring(noisy, tol);
    EXPECT_GE(simp.size(), 3u);
    // Douglas-Peucker can locally add/remove area but stays near.
    EXPECT_NEAR(simp.area(), noisy.area(), noisy.area() * 0.35) << tol;
  }
}

TEST(Robustness, ConvexHullOfDuplicates) {
  const std::vector<Vec2> pts(17, Vec2{1.0, 2.0});
  const Ring hull = convex_hull(pts);
  EXPECT_LE(hull.size(), 1u);
}

TEST(Robustness, ClipDegenerateRectangle) {
  const Ring r = make_rect(0, 0, 4, 4);
  // Zero-area clip window on the ring edge.
  const Ring clipped = clip_ring_to_rect(r, BBox{2, 0, 2, 4});
  EXPECT_DOUBLE_EQ(clipped.area(), 0.0);
}

TEST(Robustness, BufferOfDegenerateRing) {
  EXPECT_NO_THROW(buffer_hull(Ring{}, 1.0));
  const Ring point_ring{{{1, 1}, {1, 1}, {1, 1}}};
  EXPECT_NO_THROW(buffer_hull(point_ring, 1.0));
}

// Projection sweep: round trip must hold everywhere over the CONUS at
// sub-metre accuracy.
class AlbersGridSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(AlbersGridSweep, RoundTripSubMetre) {
  const auto [lon, lat] = GetParam();
  const AlbersConus proj;
  const LonLat p{lon, lat};
  const LonLat back = proj.inverse(proj.forward(p));
  EXPECT_NEAR(back.lon, p.lon, 1e-8);
  EXPECT_NEAR(back.lat, p.lat, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Conus, AlbersGridSweep,
    ::testing::Combine(::testing::Values(-124.0, -110.0, -96.0, -82.0, -67.0),
                       ::testing::Values(25.0, 33.0, 41.0, 49.0)));

// Containment consistency: for random polygons, rasterized membership of
// the centroid always matches contains().
TEST(Robustness, CentroidOfConvexHullIsInside) {
  std::mt19937_64 rng(77);
  std::uniform_real_distribution<double> coord(-10.0, 10.0);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Vec2> pts;
    for (int i = 0; i < 12; ++i) pts.push_back({coord(rng), coord(rng)});
    const Ring hull = convex_hull(pts);
    if (hull.size() < 3) continue;
    EXPECT_TRUE(hull.contains(hull.centroid())) << trial;
  }
}

}  // namespace
}  // namespace fa::geo

// Property suite pinning the prepared-geometry kernels to the scalar
// predicates: PreparedRing/PreparedPolygon/PreparedMultiPolygon must
// agree with Ring/Polygon/MultiPolygon::contains bit for bit on every
// probe — including boundary, collinear, and zero-area degeneracies —
// because the overlay pipeline's golden values ride on that equality.
#include "geo/prepared.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "geo/polygon.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace fa::geo {
namespace {

// Deterministic star-shaped ring: vertices at sorted angles with random
// radii are always a simple polygon, and snapping coordinates to a
// lattice manufactures the collinear runs and probe-on-vertex collisions
// the crossing-number rule has to survive.
Ring random_ring(std::mt19937_64& rng, int min_v = 3, int max_v = 40,
                 bool snap = false) {
  std::uniform_int_distribution<int> nv(min_v, max_v);
  std::uniform_real_distribution<double> angle(0.0, 2.0 * 3.14159265358979);
  std::uniform_real_distribution<double> radius(0.2, 1.0);
  std::uniform_real_distribution<double> center(-5.0, 5.0);
  const double cx = center(rng);
  const double cy = center(rng);
  const int n = nv(rng);
  std::vector<double> angles(static_cast<std::size_t>(n));
  for (double& a : angles) a = angle(rng);
  std::sort(angles.begin(), angles.end());
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (const double a : angles) {
    double x = cx + radius(rng) * std::cos(a);
    double y = cy + radius(rng) * std::sin(a);
    if (snap) {
      x = std::round(x * 4.0) / 4.0;
      y = std::round(y * 4.0) / 4.0;
    }
    pts.push_back({x, y});
  }
  return Ring(std::move(pts));
}

// Probe set biased toward the hard cases: vertices, edge midpoints,
// horizontal lines through vertices (slab boundaries), plus uniform
// scatter over the inflated bbox.
std::vector<Vec2> probe_points(std::mt19937_64& rng, const Ring& ring) {
  std::vector<Vec2> probes;
  const auto pts = ring.points();
  const std::size_t n = pts.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a = pts[i];
    const Vec2 b = pts[(i + 1) % n];
    probes.push_back(a);                                  // on vertex
    probes.push_back({(a.x + b.x) / 2, (a.y + b.y) / 2});  // on edge
    probes.push_back({a.x + 0.1, a.y});  // same y as a vertex
  }
  const BBox box = ring.bbox().inflated(0.3);
  std::uniform_real_distribution<double> ux(box.min_x, box.max_x);
  std::uniform_real_distribution<double> uy(box.min_y, box.max_y);
  for (int i = 0; i < 16; ++i) probes.push_back({ux(rng), uy(rng)});
  return probes;
}

void expect_ring_agreement(const Ring& ring, const std::vector<Vec2>& probes) {
  const PreparedRing prepared(ring);
  std::vector<double> xs(probes.size());
  std::vector<double> ys(probes.size());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    xs[i] = probes[i].x;
    ys[i] = probes[i].y;
  }
  std::vector<std::uint8_t> mask(probes.size(), 0xCC);  // junk pre-fill
  prepared.contains_batch(xs, ys, mask);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const bool expected = ring.contains(probes[i]);
    EXPECT_EQ(prepared.contains(probes[i]), expected)
        << "scalar probe (" << probes[i].x << ", " << probes[i].y << ")";
    EXPECT_EQ(mask[i] != 0, expected)
        << "batch probe (" << probes[i].x << ", " << probes[i].y << ")";
    EXPECT_LE(mask[i], 1);  // outputs are exactly 0 or 1
  }
}

TEST(PreparedRingProperty, AgreesWithNaiveOnRandomPolygons) {
  std::mt19937_64 rng(0xF1A5A123ULL);
  for (int iter = 0; iter < 1000; ++iter) {
    const Ring ring = random_ring(rng, 3, 40, /*snap=*/(iter % 3 == 0));
    expect_ring_agreement(ring, probe_points(rng, ring));
  }
}

TEST(PreparedRingProperty, DegenerateRings) {
  std::mt19937_64 rng(0xDE9E2EULL);
  // Zero-area: every vertex collinear. Collinear runs: repeated and
  // midpoint vertices on a rectangle. Tiny: the minimum 3-vertex ring.
  const std::vector<Ring> rings = {
      Ring({{0, 0}, {1, 0}, {2, 0}}),                      // zero area
      Ring({{0, 0}, {1, 1}, {2, 2}, {1, 1}}),              // spike, zero area
      Ring({{0, 0}, {1, 0}, {2, 0}, {2, 1}, {0, 1}}),      // collinear run
      Ring({{0, 0}, {1, 0}, {1, 0}, {1, 1}}),              // duplicate vertex
      Ring({{0, 0}, {1, 0}, {0, 1}}),                      // minimal
      Ring({{0, 0}, {4, 0}, {4, 4}, {0, 4}}),              // axis-aligned box
      Ring({{0, 0}, {1, 0}}),                              // not a ring
      Ring(),                                              // empty
  };
  for (const Ring& ring : rings) {
    std::vector<Vec2> probes = {{0, 0},     {1, 0},   {0.5, 0}, {1, 1},
                                {0.5, 0.5}, {2, 2},   {-1, -1}, {2, 0},
                                {3, 0},     {2, 0.5}, {0.5, 1}, {4, 4}};
    const BBox box = ring.bbox();
    if (box.valid()) {
      std::uniform_real_distribution<double> ux(box.min_x - 0.5,
                                                box.max_x + 0.5);
      std::uniform_real_distribution<double> uy(box.min_y - 0.5,
                                                box.max_y + 0.5);
      for (int i = 0; i < 32; ++i) probes.push_back({ux(rng), uy(rng)});
    }
    expect_ring_agreement(ring, probes);
  }
}

TEST(PreparedPolygonProperty, AgreesWithNaiveIncludingHoles) {
  std::mt19937_64 rng(0x90198123ULL);
  for (int iter = 0; iter < 300; ++iter) {
    Ring outer = random_ring(rng, 8, 48);
    // Carve a hole around the centroid, well inside a star polygon.
    const Vec2 c = outer.centroid();
    std::vector<Ring> holes;
    if (iter % 2 == 0) {
      holes.push_back(make_circle(c, 0.08, 12));
    }
    const Polygon poly(std::move(outer), std::move(holes));
    const PreparedPolygon prepared(poly);
    std::vector<Vec2> probes = probe_points(rng, poly.outer());
    probes.push_back(c);  // inside the hole when there is one
    std::vector<double> xs(probes.size());
    std::vector<double> ys(probes.size());
    for (std::size_t i = 0; i < probes.size(); ++i) {
      xs[i] = probes[i].x;
      ys[i] = probes[i].y;
    }
    std::vector<std::uint8_t> mask(probes.size(), 0xCC);
    prepared.contains_batch(xs, ys, mask);
    for (std::size_t i = 0; i < probes.size(); ++i) {
      const bool expected = poly.contains(probes[i]);
      ASSERT_EQ(prepared.contains(probes[i]), expected)
          << "iter " << iter << " probe (" << probes[i].x << ", "
          << probes[i].y << ")";
      ASSERT_EQ(mask[i] != 0, expected) << "iter " << iter << " batch";
    }
    // The interior-box fast path must never overrule the predicate.
    const BBox ib = prepared.interior_box();
    if (ib.valid()) {
      const std::vector<Vec2> corners = {{ib.min_x, ib.min_y},
                                         {ib.max_x, ib.max_y},
                                         ib.center()};
      for (const Vec2 p : corners) ASSERT_TRUE(poly.contains(p));
    }
  }
}

TEST(PreparedMultiPolygonProperty, BatchMatchesScalarAcrossParts) {
  std::mt19937_64 rng(0x3117A0ULL);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<Polygon> parts;
    const int num_parts = 1 + iter % 3;
    for (int p = 0; p < num_parts; ++p) {
      parts.emplace_back(random_ring(rng, 5, 24));
    }
    const MultiPolygon mp(std::move(parts));
    const PreparedMultiPolygon prepared(mp);
    std::vector<double> xs;
    std::vector<double> ys;
    const BBox box = mp.bbox().inflated(0.4);
    std::uniform_real_distribution<double> ux(box.min_x, box.max_x);
    std::uniform_real_distribution<double> uy(box.min_y, box.max_y);
    for (int i = 0; i < 64; ++i) {
      xs.push_back(ux(rng));
      ys.push_back(uy(rng));
    }
    std::vector<std::uint8_t> mask(xs.size(), 0xCC);
    prepared.contains_batch(xs, ys, mask);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const Vec2 p{xs[i], ys[i]};
      ASSERT_EQ(prepared.contains(p), mp.contains(p));
      ASSERT_EQ(mask[i] != 0, mp.contains(p));
    }
  }
}

TEST(PreparedRing, CollectCrossingsMatchesEdgeSweep) {
  std::mt19937_64 rng(0xC2055ULL);
  for (int iter = 0; iter < 200; ++iter) {
    const Ring ring = random_ring(rng, 3, 32, /*snap=*/(iter % 2 == 0));
    const PreparedRing prepared(ring);
    const BBox box = ring.bbox();
    std::uniform_real_distribution<double> uy(box.min_y - 0.1,
                                              box.max_y + 0.1);
    for (int s = 0; s < 8; ++s) {
      const double y = s == 0 ? box.min_y : (s == 1 ? box.max_y : uy(rng));
      std::vector<double> naive;
      const auto pts = ring.points();
      for (std::size_t i = 0, n = pts.size(); i < n; ++i) {
        const Vec2 a = pts[i];
        const Vec2 b = pts[(i + 1) % n];
        if ((a.y > y) != (b.y > y)) {
          naive.push_back(a.x + (y - a.y) * (b.x - a.x) / (b.y - a.y));
        }
      }
      std::vector<double> slab;
      prepared.collect_crossings(y, slab);
      std::sort(naive.begin(), naive.end());
      std::sort(slab.begin(), slab.end());
      ASSERT_EQ(slab, naive) << "scanline y=" << y;
    }
  }
}

TEST(PreparedRing, SlabIndexShape) {
  const Ring ring = make_circle({0, 0}, 1.0, 64);
  const PreparedRing prepared(ring);
  EXPECT_FALSE(prepared.empty());
  EXPECT_EQ(prepared.slabs(), 64);
  // Every edge lands in at least one slab; duplication is bounded.
  EXPECT_GE(prepared.edge_refs(), ring.size());
  EXPECT_LE(prepared.edge_refs(), 4 * ring.size());
  // slab_of is monotone and clamped to [0, slabs).
  EXPECT_EQ(prepared.slab_of(-2.0), 0);
  EXPECT_EQ(prepared.slab_of(2.0), prepared.slabs() - 1);
  int last = 0;
  for (double y = -1.0; y <= 1.0; y += 0.01) {
    const int s = prepared.slab_of(y);
    EXPECT_GE(s, last);
    last = s;
  }
}

TEST(PreparedObs, CountersFollowScopedRegistrySwaps) {
  // Regression: the per-thread kernel counter cache used to key on the
  // registry address alone, so two consecutive ScopedRegistry instances
  // at the same stack address kept the stale Counter* — batch probes
  // from the second scope landed in the first (destroyed) registry's
  // reused heap nodes. Each scope must observe exactly its own probes.
  const Polygon poly(make_circle({0, 0}, 1.0, 16));
  const std::vector<double> xs{0.0, 0.5, 2.0, -0.3};
  const std::vector<double> ys{0.0, -0.2, 2.0, 0.4};
  const auto probes_seen_in_fresh_scope = [&] {
    obs::ScopedRegistry scoped;
    const PreparedPolygon prep(poly);
    std::vector<std::uint8_t> mask(xs.size());
    prep.contains_batch(xs, ys, mask);
    return scoped.registry()
        .counter(obs::metrics::kGeoPreparedBatchProbes)
        .value();
  };
  EXPECT_EQ(probes_seen_in_fresh_scope(), xs.size());
  EXPECT_EQ(probes_seen_in_fresh_scope(), xs.size());
}

}  // namespace
}  // namespace fa::geo

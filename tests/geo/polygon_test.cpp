#include "geo/polygon.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace fa::geo {
namespace {

Ring unit_square() { return make_rect(0.0, 0.0, 1.0, 1.0); }

TEST(Ring, StripsClosingPoint) {
  const Ring r{{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0, 0}}};
  EXPECT_EQ(r.size(), 4u);
}

TEST(Ring, SignedAreaWinding) {
  Ring ccw = unit_square();
  EXPECT_DOUBLE_EQ(ccw.signed_area(), 1.0);
  EXPECT_TRUE(ccw.is_ccw());
  ccw.reverse();
  EXPECT_DOUBLE_EQ(ccw.signed_area(), -1.0);
  EXPECT_FALSE(ccw.is_ccw());
  EXPECT_DOUBLE_EQ(ccw.area(), 1.0);  // unsigned area unaffected
}

TEST(Ring, PerimeterAndCentroid) {
  const Ring r = make_rect(2.0, 3.0, 6.0, 5.0);
  EXPECT_DOUBLE_EQ(r.perimeter(), 12.0);
  EXPECT_EQ(r.centroid(), (Vec2{4.0, 4.0}));
}

TEST(Ring, BBoxTracksPoints) {
  Ring r;
  r.push_back({1.0, 2.0});
  r.push_back({-1.0, 5.0});
  r.push_back({3.0, 0.0});
  EXPECT_EQ(r.bbox(), (BBox{-1.0, 0.0, 3.0, 5.0}));
}

TEST(Ring, ContainsInteriorExteriorBoundary) {
  const Ring r = unit_square();
  EXPECT_TRUE(r.contains({0.5, 0.5}));
  EXPECT_FALSE(r.contains({1.5, 0.5}));
  EXPECT_FALSE(r.contains({-0.1, 0.5}));
  // Boundary counts as inside (paper counts perimeter assets as at risk).
  EXPECT_TRUE(r.contains({0.0, 0.5}));
  EXPECT_TRUE(r.contains({0.5, 1.0}));
  EXPECT_TRUE(r.contains({0.0, 0.0}));  // vertex
}

TEST(Ring, ContainsConcave) {
  // L-shaped ring.
  const Ring r{{{0, 0}, {4, 0}, {4, 1}, {1, 1}, {1, 4}, {0, 4}}};
  EXPECT_TRUE(r.contains({0.5, 3.0}));
  EXPECT_TRUE(r.contains({3.0, 0.5}));
  EXPECT_FALSE(r.contains({3.0, 3.0}));  // inside the notch
}

TEST(Ring, DegenerateIsEmpty) {
  EXPECT_TRUE(Ring{}.empty());
  EXPECT_TRUE((Ring{{{0, 0}, {1, 1}}}).empty());
  EXPECT_FALSE(Ring{}.contains({0.0, 0.0}));
  EXPECT_DOUBLE_EQ(Ring{}.area(), 0.0);
}

TEST(Polygon, NormalizesWinding) {
  Ring cw = unit_square();
  cw.reverse();
  Ring hole_ccw = make_rect(0.25, 0.25, 0.75, 0.75);
  const Polygon p{cw, {hole_ccw}};
  EXPECT_TRUE(p.outer().is_ccw());
  EXPECT_FALSE(p.holes()[0].is_ccw());
}

TEST(Polygon, AreaSubtractsHoles) {
  const Polygon p{unit_square(), {make_rect(0.25, 0.25, 0.75, 0.75)}};
  EXPECT_DOUBLE_EQ(p.area(), 1.0 - 0.25);
}

TEST(Polygon, ContainsRespectsHoles) {
  const Polygon p{unit_square(), {make_rect(0.4, 0.4, 0.6, 0.6)}};
  EXPECT_TRUE(p.contains({0.1, 0.1}));
  EXPECT_FALSE(p.contains({0.5, 0.5}));  // in the hole
  EXPECT_FALSE(p.contains({1.5, 0.5}));
}

TEST(MultiPolygon, AggregatesParts) {
  MultiPolygon mp;
  mp.push_back(Polygon{make_rect(0, 0, 1, 1)});
  mp.push_back(Polygon{make_rect(2, 0, 4, 1)});
  EXPECT_EQ(mp.size(), 2u);
  EXPECT_DOUBLE_EQ(mp.area(), 3.0);
  EXPECT_TRUE(mp.contains({0.5, 0.5}));
  EXPECT_TRUE(mp.contains({3.0, 0.5}));
  EXPECT_FALSE(mp.contains({1.5, 0.5}));  // gap between parts
  EXPECT_EQ(mp.bbox(), (BBox{0, 0, 4, 1}));
}

TEST(MakeCircle, AreaConvergesToPiR2) {
  const double r = 3.0;
  const Ring c = make_circle({1.0, 2.0}, r, 256);
  EXPECT_NEAR(c.area(), std::numbers::pi * r * r, 0.01 * r * r);
  EXPECT_TRUE(c.is_ccw());
  EXPECT_TRUE(c.contains({1.0, 2.0}));
}

// Property sweep: point-in-polygon must agree with the winding of a
// regular polygon for points on concentric circles.
class RingContainsSweep : public ::testing::TestWithParam<int> {};

TEST_P(RingContainsSweep, CircleMembership) {
  const int segments = GetParam();
  const Vec2 center{5.0, -3.0};
  const double radius = 2.0;
  const Ring ring = make_circle(center, radius, segments);
  // Inner circle points: inside; outer circle points: outside.
  for (int k = 0; k < 24; ++k) {
    const double t = 2.0 * std::numbers::pi * k / 24.0;
    const Vec2 dir{std::cos(t), std::sin(t)};
    EXPECT_TRUE(ring.contains(center + dir * (radius * 0.8)))
        << "segments=" << segments << " k=" << k;
    EXPECT_FALSE(ring.contains(center + dir * (radius * 1.05)))
        << "segments=" << segments << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Polygons, RingContainsSweep,
                         ::testing::Values(8, 16, 64, 256));

}  // namespace
}  // namespace fa::geo

#include "geo/vec2.hpp"

#include <gtest/gtest.h>

namespace fa::geo {
namespace {

TEST(Vec2, ArithmeticOps) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(a / 2.0, (Vec2{0.5, 1.0}));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += Vec2{2.0, 3.0};
  EXPECT_EQ(v, (Vec2{3.0, 4.0}));
  v -= Vec2{1.0, 1.0};
  EXPECT_EQ(v, (Vec2{2.0, 3.0}));
  v *= 2.0;
  EXPECT_EQ(v, (Vec2{4.0, 6.0}));
}

TEST(Vec2, DotAndCross) {
  const Vec2 x{1.0, 0.0};
  const Vec2 y{0.0, 1.0};
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  EXPECT_DOUBLE_EQ(x.cross(y), 1.0);   // y is CCW from x
  EXPECT_DOUBLE_EQ(y.cross(x), -1.0);  // x is CW from y
  EXPECT_DOUBLE_EQ(x.dot(x), 1.0);
}

TEST(Vec2, NormAndNormalize) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  const Vec2 u = v.normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-15);
  EXPECT_DOUBLE_EQ(Vec2{}.normalized().norm(), 0.0);  // zero stays zero
}

TEST(Vec2, PerpIsCcwRotation) {
  const Vec2 v{1.0, 0.0};
  EXPECT_EQ(v.perp(), (Vec2{0.0, 1.0}));
  EXPECT_DOUBLE_EQ(v.dot(v.perp()), 0.0);
}

TEST(Vec2, DistanceAndLerp) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{6.0, 8.0};
  EXPECT_DOUBLE_EQ(distance(a, b), 10.0);
  EXPECT_DOUBLE_EQ(distance2(a, b), 100.0);
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), (Vec2{3.0, 4.0}));
}

TEST(Vec2, Orient2d) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{1.0, 0.0};
  EXPECT_GT(orient2d(a, b, Vec2{0.5, 1.0}), 0.0);   // left turn
  EXPECT_LT(orient2d(a, b, Vec2{0.5, -1.0}), 0.0);  // right turn
  EXPECT_DOUBLE_EQ(orient2d(a, b, Vec2{2.0, 0.0}), 0.0);  // collinear
}

}  // namespace
}  // namespace fa::geo

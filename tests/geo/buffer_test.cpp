#include "geo/buffer.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "geo/algorithms.hpp"

namespace fa::geo {
namespace {

TEST(BufferConvex, GrowsSquareByRadius) {
  const Ring square = make_rect(0, 0, 10, 10);
  const double r = 2.0;
  const Ring buf = buffer_convex(square, r, 32);
  // Minkowski sum area = A + P*r + pi*r^2.
  const double expected = 100.0 + 40.0 * r + std::numbers::pi * r * r;
  EXPECT_NEAR(buf.area(), expected, expected * 0.02);
  // Contains the original and a point offset outward by < r.
  for (const Vec2& p : square.points()) EXPECT_TRUE(buf.contains(p));
  EXPECT_TRUE(buf.contains({-1.9, 5.0}));
  EXPECT_FALSE(buf.contains({-2.5, 5.0}));
}

TEST(BufferConvex, ZeroOrNegativeRadiusIsIdentity) {
  const Ring square = make_rect(0, 0, 1, 1);
  EXPECT_DOUBLE_EQ(buffer_convex(square, 0.0).area(), 1.0);
  EXPECT_DOUBLE_EQ(buffer_convex(square, -1.0).area(), 1.0);
}

TEST(BufferHull, CoversOriginal) {
  const Ring shape{{{0, 0}, {8, 0}, {8, 3}, {4, 3}, {4, 6}, {0, 6}}};
  const Ring buf = buffer_hull(shape, 1.0);
  for (const Vec2& p : shape.points()) {
    EXPECT_TRUE(buf.contains(p));
  }
  EXPECT_GE(buf.area(), shape.area());
}

// Property: buffering by r then testing a point at distance < r from the
// boundary must succeed, for a range of radii.
class BufferSweep : public ::testing::TestWithParam<double> {};

TEST_P(BufferSweep, BoundaryMargin) {
  const double r = GetParam();
  const Ring square = make_rect(0, 0, 4, 4);
  const Ring buf = buffer_convex(square, r, 64);
  EXPECT_TRUE(buf.contains({4.0 + 0.9 * r, 2.0}));
  EXPECT_FALSE(buf.contains({4.0 + 1.1 * r, 2.0}));
  // Area is monotone in r.
  const Ring buf2 = buffer_convex(square, r * 1.5, 64);
  EXPECT_GT(buf2.area(), buf.area());
}

INSTANTIATE_TEST_SUITE_P(Buffering, BufferSweep,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 5.0));

}  // namespace
}  // namespace fa::geo

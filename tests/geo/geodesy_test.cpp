#include "geo/geodesy.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fa::geo {
namespace {

// Reference distances checked against published great-circle values.
TEST(Geodesy, HaversineKnownPairs) {
  const LonLat la{-118.2437, 34.0522};   // Los Angeles
  const LonLat sf{-122.4194, 37.7749};   // San Francisco
  const LonLat nyc{-74.0060, 40.7128};   // New York
  // LA–SF is ~559 km, LA–NYC ~3936 km (spherical model, ±0.5%).
  EXPECT_NEAR(haversine_m(la, sf), 559e3, 6e3);
  EXPECT_NEAR(haversine_m(la, nyc), 3936e3, 25e3);
}

TEST(Geodesy, HaversineProperties) {
  const LonLat a{-100.0, 40.0};
  const LonLat b{-99.0, 41.0};
  EXPECT_DOUBLE_EQ(haversine_m(a, a), 0.0);
  EXPECT_DOUBLE_EQ(haversine_m(a, b), haversine_m(b, a));  // symmetry
  EXPECT_GT(haversine_m(a, b), 0.0);
}

TEST(Geodesy, OneDegreeLatitudeIsAbout111Km) {
  const LonLat a{-100.0, 40.0};
  const LonLat b{-100.0, 41.0};
  EXPECT_NEAR(haversine_m(a, b), 111.2e3, 0.4e3);
  EXPECT_NEAR(meters_per_deg_lat(), 111.2e3, 0.4e3);
}

TEST(Geodesy, LongitudeShrinksWithLatitude) {
  EXPECT_NEAR(meters_per_deg_lon(0.0), meters_per_deg_lat(), 1.0);
  EXPECT_NEAR(meters_per_deg_lon(60.0), meters_per_deg_lat() / 2.0, 10.0);
  EXPECT_LT(meters_per_deg_lon(45.0), meters_per_deg_lon(30.0));
}

TEST(Geodesy, BearingCardinalDirections) {
  const LonLat origin{-100.0, 40.0};
  EXPECT_NEAR(bearing_deg(origin, LonLat{-100.0, 41.0}), 0.0, 1e-9);
  EXPECT_NEAR(bearing_deg(origin, LonLat{-99.0, 40.0}), 90.0, 0.5);
  EXPECT_NEAR(bearing_deg(origin, LonLat{-100.0, 39.0}), 180.0, 1e-9);
  EXPECT_NEAR(bearing_deg(origin, LonLat{-101.0, 40.0}), 270.0, 0.5);
}

TEST(Geodesy, DestinationRoundTrip) {
  const LonLat origin{-120.5, 38.2};
  for (double bearing : {0.0, 45.0, 90.0, 135.0, 200.0, 315.0}) {
    for (double dist_m : {100.0, 5e3, 250e3}) {
      const LonLat dest = destination(origin, bearing, dist_m);
      EXPECT_NEAR(haversine_m(origin, dest), dist_m, dist_m * 1e-9 + 1e-6)
          << "bearing=" << bearing << " dist=" << dist_m;
    }
  }
}

TEST(Geodesy, DestinationZeroDistanceIsIdentity) {
  const LonLat origin{-80.0, 27.5};
  const LonLat dest = destination(origin, 123.0, 0.0);
  EXPECT_NEAR(dest.lon, origin.lon, 1e-12);
  EXPECT_NEAR(dest.lat, origin.lat, 1e-12);
}

TEST(Geodesy, HalfMileInMeters) {
  // The Section 3.8 extension radius: 0.5 mi = 804.672 m.
  EXPECT_NEAR(0.5 * kMetersPerMile, 804.672, 1e-9);
}

TEST(LonLatTest, ValidityChecks) {
  EXPECT_TRUE(is_valid(LonLat{-100.0, 40.0}));
  EXPECT_FALSE(is_valid(LonLat{-200.0, 40.0}));
  EXPECT_FALSE(is_valid(LonLat{-100.0, 95.0}));
  EXPECT_TRUE(in_conus_bounds(LonLat{-100.0, 40.0}));
  EXPECT_FALSE(in_conus_bounds(LonLat{-150.0, 61.0}));  // Alaska
  EXPECT_FALSE(in_conus_bounds(LonLat{-66.1, 18.4}));   // Puerto Rico
}

}  // namespace
}  // namespace fa::geo

#include "geo/algorithms.hpp"

#include <gtest/gtest.h>

#include <random>

namespace fa::geo {
namespace {

TEST(SegmentIntersection, CrossingSegments) {
  const auto p = segment_intersection({0, 0}, {2, 2}, {0, 2}, {2, 0});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 1.0, 1e-12);
  EXPECT_NEAR(p->y, 1.0, 1e-12);
}

TEST(SegmentIntersection, DisjointSegments) {
  EXPECT_FALSE(segment_intersection({0, 0}, {1, 0}, {0, 1}, {1, 1}));
  EXPECT_FALSE(segment_intersection({0, 0}, {1, 1}, {2, 2.5}, {3, 4}));
}

TEST(SegmentIntersection, TouchingEndpoint) {
  const auto p = segment_intersection({0, 0}, {1, 1}, {1, 1}, {2, 0});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (Vec2{1, 1}));
}

TEST(SegmentIntersection, CollinearOverlap) {
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 0}, {1, 0}, {3, 0}));
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {2, 0}, {3, 0}));
  // Parallel, offset.
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {0, 1}, {1, 1}));
}

TEST(PointSegmentDistance, Cases) {
  EXPECT_DOUBLE_EQ(point_segment_distance({0, 1}, {-1, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({2, 0}, {-1, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({0, 0}, {-1, 0}, {1, 0}), 0.0);
  // Degenerate segment = point distance.
  EXPECT_DOUBLE_EQ(point_segment_distance({3, 4}, {0, 0}, {0, 0}), 5.0);
}

TEST(PointRingDistance, SquareBoundary) {
  const Ring r = make_rect(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(point_ring_distance({1, 1}, r), 1.0);   // center
  EXPECT_DOUBLE_EQ(point_ring_distance({3, 1}, r), 1.0);   // outside right
  EXPECT_DOUBLE_EQ(point_ring_distance({0, 1}, r), 0.0);   // on boundary
}

TEST(ConvexHull, SquareWithInteriorPoints) {
  const std::vector<Vec2> pts{{0, 0}, {2, 0}, {2, 2}, {0, 2},
                              {1, 1}, {0.5, 0.5}, {1.5, 0.2}};
  const Ring hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_DOUBLE_EQ(hull.area(), 4.0);
  EXPECT_TRUE(hull.is_ccw());
}

TEST(ConvexHull, CollinearInput) {
  const std::vector<Vec2> pts{{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  const Ring hull = convex_hull(pts);
  EXPECT_LE(hull.size(), 2u);  // degenerate, no area
}

TEST(ConvexHull, HullContainsAllInputPoints) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> dist(-10.0, 10.0);
  std::vector<Vec2> pts;
  for (int i = 0; i < 200; ++i) pts.push_back({dist(rng), dist(rng)});
  const Ring hull = convex_hull(pts);
  for (const Vec2& p : pts) {
    EXPECT_TRUE(hull.contains(p));
  }
}

TEST(Simplify, StraightLineCollapses) {
  const std::vector<Vec2> line{{0, 0}, {1, 0.001}, {2, -0.001}, {3, 0}};
  const auto simp = simplify_polyline(line, 0.01);
  EXPECT_EQ(simp.size(), 2u);
  EXPECT_EQ(simp.front(), (Vec2{0, 0}));
  EXPECT_EQ(simp.back(), (Vec2{3, 0}));
}

TEST(Simplify, PreservesLargeDeviations) {
  const std::vector<Vec2> line{{0, 0}, {1, 5}, {2, 0}};
  const auto simp = simplify_polyline(line, 0.5);
  EXPECT_EQ(simp.size(), 3u);
}

TEST(Simplify, RingNeverDegenerates) {
  const Ring square = make_rect(0, 0, 1, 1);
  const Ring simp = simplify_ring(square, 100.0);  // huge tolerance
  EXPECT_GE(simp.size(), 3u);
}

TEST(ClipRingToRect, FullyInsideUnchanged) {
  const Ring r = make_rect(1, 1, 2, 2);
  const Ring clipped = clip_ring_to_rect(r, BBox{0, 0, 5, 5});
  EXPECT_DOUBLE_EQ(clipped.area(), 1.0);
}

TEST(ClipRingToRect, HalfOverlap) {
  const Ring r = make_rect(0, 0, 2, 2);
  const Ring clipped = clip_ring_to_rect(r, BBox{1, 0, 5, 5});
  EXPECT_DOUBLE_EQ(clipped.area(), 2.0);  // right half
}

TEST(ClipRingToRect, Disjoint) {
  const Ring r = make_rect(0, 0, 1, 1);
  const Ring clipped = clip_ring_to_rect(r, BBox{5, 5, 6, 6});
  EXPECT_TRUE(clipped.empty());
}

TEST(IsSimple, DetectsBowtie) {
  EXPECT_TRUE(is_simple(make_rect(0, 0, 1, 1)));
  const Ring bowtie{{{0, 0}, {1, 1}, {1, 0}, {0, 1}}};
  EXPECT_FALSE(is_simple(bowtie));
}

TEST(Polyline, LengthAndInterpolation) {
  const std::vector<Vec2> line{{0, 0}, {3, 0}, {3, 4}};
  EXPECT_DOUBLE_EQ(polyline_length(line), 7.0);
  EXPECT_EQ(point_along_polyline(line, 0.0), (Vec2{0, 0}));
  EXPECT_EQ(point_along_polyline(line, 1.0), (Vec2{3, 4}));
  // 3/7 of the way = end of the first segment.
  const Vec2 mid = point_along_polyline(line, 3.0 / 7.0);
  EXPECT_NEAR(mid.x, 3.0, 1e-12);
  EXPECT_NEAR(mid.y, 0.0, 1e-12);
}

// Property: clipping can only shrink area, and the result stays inside
// the clip rectangle.
class ClipSweep : public ::testing::TestWithParam<double> {};

TEST_P(ClipSweep, AreaMonotoneAndBounded) {
  const double offset = GetParam();
  const Ring r{{{0, 0}, {4, 1}, {5, 4}, {2, 6}, {-1, 3}}};
  const BBox rect{offset, offset, offset + 3.0, offset + 3.0};
  const Ring clipped = clip_ring_to_rect(r, rect);
  EXPECT_LE(clipped.area(), r.area() + 1e-9);
  for (const Vec2& p : clipped.points()) {
    EXPECT_TRUE(rect.inflated(1e-9).contains(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Clipping, ClipSweep,
                         ::testing::Values(-2.0, -1.0, 0.0, 1.0, 2.5, 4.0));

}  // namespace
}  // namespace fa::geo

#include "io/wkt.hpp"

#include <gtest/gtest.h>

namespace fa::io {
namespace {

using geo::MultiPolygon;
using geo::Polygon;
using geo::Ring;
using geo::Vec2;

TEST(Wkt, PointRoundTrip) {
  const Vec2 p{-118.25, 34.05};
  const Vec2 back = parse_wkt_point(to_wkt(p));
  EXPECT_NEAR(back.x, p.x, 1e-6);
  EXPECT_NEAR(back.y, p.y, 1e-6);
}

TEST(Wkt, PointFormat) {
  EXPECT_EQ(to_wkt(Vec2{1.5, -2.0}), "POINT (1.5 -2)");
}

TEST(Wkt, ParsePointVariants) {
  EXPECT_EQ(parse_wkt_point("POINT(1 2)"), (Vec2{1, 2}));
  EXPECT_EQ(parse_wkt_point("point ( 1  2 )"), (Vec2{1, 2}));  // lax case/ws
}

TEST(Wkt, PolygonRoundTrip) {
  const Polygon poly{geo::make_rect(0, 0, 4, 3),
                     {geo::make_rect(1, 1, 2, 2)}};
  const Polygon back = parse_wkt_polygon(to_wkt(poly));
  EXPECT_DOUBLE_EQ(back.area(), poly.area());
  EXPECT_EQ(back.holes().size(), 1u);
  EXPECT_TRUE(back.contains({3.5, 0.5}));
  EXPECT_FALSE(back.contains({1.5, 1.5}));
}

TEST(Wkt, ParsePolygonClosedRing) {
  const Polygon p =
      parse_wkt_polygon("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))");
  EXPECT_EQ(p.outer().size(), 4u);  // closing duplicate stripped
  EXPECT_DOUBLE_EQ(p.area(), 1.0);
}

TEST(Wkt, MultiPolygonRoundTrip) {
  MultiPolygon mp;
  mp.push_back(Polygon{geo::make_rect(0, 0, 1, 1)});
  mp.push_back(Polygon{geo::make_rect(5, 5, 7, 6), {}});
  const MultiPolygon back = parse_wkt_multipolygon(to_wkt(mp));
  EXPECT_EQ(back.size(), 2u);
  EXPECT_DOUBLE_EQ(back.area(), mp.area());
}

TEST(Wkt, NegativeAndScientificCoordinates) {
  const Polygon p = parse_wkt_polygon(
      "POLYGON ((-1.5e1 0, 0 0, 0 -2.5, -1.5e1 -2.5))");
  EXPECT_DOUBLE_EQ(p.area(), 15.0 * 2.5);
}

TEST(Wkt, MalformedInputsThrow) {
  EXPECT_THROW(parse_wkt_point("POINT 1 2"), fault::IoError);
  EXPECT_THROW(parse_wkt_point("LINESTRING (0 0, 1 1)"), fault::IoError);
  EXPECT_THROW(parse_wkt_polygon("POLYGON (0 0, 1 1)"), fault::IoError);
  EXPECT_THROW(parse_wkt_polygon("POLYGON ((0 0, 1 x))"), fault::IoError);
  EXPECT_THROW(parse_wkt_multipolygon("MULTIPOLYGON ()"), fault::IoError);
}

TEST(Wkt, TryParseReportsOffsetAndSource) {
  const auto bad = try_parse_wkt_polygon("POLYGON ((0 0, 1 x))");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code, fault::ErrCode::kParse);
  EXPECT_EQ(bad.status().source, "wkt");
  EXPECT_EQ(bad.status().offset, 17u);  // the 'x'

  const auto cut = try_parse_wkt_polygon("POLYGON ((0 0, 1");
  ASSERT_FALSE(cut.ok());
  EXPECT_EQ(cut.status().code, fault::ErrCode::kTruncated);

  const auto ok = try_parse_wkt_point("POINT (1 2)");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), (Vec2{1, 2}));
}

}  // namespace
}  // namespace fa::io

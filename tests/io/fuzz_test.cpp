// Deterministic mutation fuzzing of the parsers: every mutated input
// must either parse or throw the module's documented exception — never
// crash, hang, or corrupt memory (run under ASan in CI for full value).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "cellnet/corpus.hpp"
#include "io/fagrid.hpp"
#include "io/json.hpp"
#include "io/wkt.hpp"
#include "synth/rng.hpp"

namespace fa::io {
namespace {

// Applies `n` random byte mutations (overwrite / delete / duplicate).
std::string mutate(std::string input, synth::Rng& rng, int n) {
  for (int i = 0; i < n && !input.empty(); ++i) {
    const std::size_t pos = rng.below(input.size());
    switch (rng.below(3)) {
      case 0:
        input[pos] = static_cast<char>(rng.below(256));
        break;
      case 1:
        input.erase(pos, 1);
        break;
      default:
        input.insert(pos, 1, input[pos]);
        break;
    }
  }
  return input;
}

TEST(FuzzJson, MutatedDocumentsNeverCrash) {
  const std::string seed_doc =
      R"({"fires":[{"name":"Kincade","acres":77000,"days":[1,2,3]},null,true],)"
      R"("year":2019,"note":"escaped \"quotes\" and é"})";
  synth::Rng rng(2024);
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string doc = mutate(seed_doc, rng, 1 + trial % 8);
    try {
      const JsonValue v = parse_json(doc);
      // Whatever parsed must re-serialize and re-parse stably.
      const JsonValue again = parse_json(to_json(v));
      (void)again;
      ++parsed;
    } catch (const JsonError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 500);  // mutations usually break JSON
  EXPECT_EQ(parsed + rejected, 2000);
}

TEST(FuzzWkt, MutatedGeometryNeverCrashes) {
  const std::string seed_wkt =
      "MULTIPOLYGON (((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 2 1, 2 2, 1 2, 1 1)),"
      " ((10 10, 12 10, 12 12, 10 12, 10 10)))";
  synth::Rng rng(99);
  int ok = 0, rejected = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string wkt = mutate(seed_wkt, rng, 1 + trial % 6);
    try {
      const geo::MultiPolygon mp = parse_wkt_multipolygon(wkt);
      EXPECT_GE(mp.area(), 0.0);
      ++ok;
    } catch (const fault::IoError&) {
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, 2000);
  EXPECT_GT(rejected, 200);
}

TEST(FuzzCsv, MutatedCorpusRowsAreSkippedNotFatal) {
  std::ostringstream seed;
  {
    cellnet::Transceiver t;
    t.position = {-118.0, 34.0};
    t.mcc = 310;
    t.mnc = 410;
    cellnet::CellCorpus corpus{{t, t, t, t}};
    write_opencellid_csv(seed, corpus);
  }
  synth::Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    std::istringstream in(mutate(seed.str(), rng, 1 + trial % 10));
    cellnet::CsvLoadStats stats;
    const cellnet::CellCorpus corpus =
        cellnet::read_opencellid_csv(in, &stats);
    // Loader never throws: bad records are counted, good ones returned.
    EXPECT_LE(corpus.size(), 6u);
    EXPECT_EQ(corpus.size(), stats.parsed);
  }
}

TEST(FuzzFagrid, MutatedRastersThrowCleanly) {
  std::stringstream seed;
  {
    raster::GridGeometry g;
    g.cell_w = g.cell_h = 270.0;
    g.cols = 6;
    g.rows = 5;
    write_fagrid(seed, raster::ClassRaster(g, 3));
  }
  synth::Rng rng(13);
  int ok = 0, rejected = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::stringstream in(mutate(seed.str(), rng, 1 + trial % 4));
    try {
      const raster::ClassRaster grid = read_fagrid(in);
      EXPECT_GT(grid.size(), 0u);
      ++ok;
    } catch (const std::runtime_error&) {
      ++rejected;
    } catch (const std::bad_alloc&) {
      // A mutated dimension can request a huge-but-valid allocation.
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, 500);
}

}  // namespace
}  // namespace fa::io

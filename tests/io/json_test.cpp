#include "io/json.hpp"

#include <gtest/gtest.h>

namespace fa::io {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_json("3.5").as_number(), 3.5);
  EXPECT_DOUBLE_EQ(parse_json("-17").as_number(), -17.0);
  EXPECT_DOUBLE_EQ(parse_json("1e3").as_number(), 1000.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\nb")").as_string(), "a\nb");
  EXPECT_EQ(parse_json(R"("q\"q")").as_string(), "q\"q");
  EXPECT_EQ(parse_json(R"("back\\slash")").as_string(), "back\\slash");
  EXPECT_EQ(parse_json(R"("A")").as_string(), "A");
  EXPECT_EQ(parse_json(R"("é")").as_string(), "\xc3\xa9");  // é
}

TEST(JsonParse, NestedStructure) {
  const JsonValue v = parse_json(
      R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "e": "x"})");
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("a").at(std::size_t{1}).as_number(), 2.0);
  EXPECT_TRUE(v.at("a").at(std::size_t{2}).at("b").as_bool());
  EXPECT_TRUE(v.at("c").at("d").is_null());
  EXPECT_TRUE(v.has("e"));
  EXPECT_FALSE(v.has("zzz"));
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_EQ(parse_json("[]").size(), 0u);
  EXPECT_EQ(parse_json("{}").size(), 0u);
  EXPECT_EQ(parse_json("[ ]").size(), 0u);
}

TEST(JsonParse, WhitespaceTolerant) {
  const JsonValue v = parse_json("  {\n\t\"k\" :\r [ 1 , 2 ]\n} ");
  EXPECT_EQ(v.at("k").size(), 2u);
}

TEST(JsonParse, Malformed) {
  EXPECT_THROW(parse_json(""), JsonError);
  EXPECT_THROW(parse_json("{"), JsonError);
  EXPECT_THROW(parse_json("[1,]"), JsonError);
  EXPECT_THROW(parse_json("{\"a\":}"), JsonError);
  EXPECT_THROW(parse_json("tru"), JsonError);
  EXPECT_THROW(parse_json("\"unterminated"), JsonError);
  EXPECT_THROW(parse_json("1 2"), JsonError);  // trailing garbage
  EXPECT_THROW(parse_json("{\"a\":1} x"), JsonError);
}

TEST(JsonAccess, TypeErrors) {
  const JsonValue v = parse_json("[1]");
  EXPECT_THROW(v.at("key"), std::exception);
  EXPECT_THROW(v.at(std::size_t{5}), JsonError);
  EXPECT_THROW(parse_json("3").size(), JsonError);
}

TEST(JsonSerialize, Compact) {
  JsonObject obj;
  obj["b"] = JsonArray{1, 2};
  obj["a"] = "x";
  obj["n"] = nullptr;
  // std::map orders keys, so output is deterministic.
  EXPECT_EQ(to_json(JsonValue{obj}), R"({"a":"x","b":[1,2],"n":null})");
}

TEST(JsonSerialize, NumbersIntegralAndReal) {
  EXPECT_EQ(to_json(JsonValue{42.0}), "42");
  EXPECT_EQ(to_json(JsonValue{-5.0}), "-5");
  EXPECT_EQ(to_json(JsonValue{0.5}), "0.5");
}

TEST(JsonSerialize, EscapesControlCharacters) {
  EXPECT_EQ(to_json(JsonValue{std::string{"a\nb"}}), R"("a\nb")");
  EXPECT_EQ(to_json(JsonValue{std::string{"tab\t"}}), R"("tab\t")");
  EXPECT_EQ(to_json(JsonValue{std::string{"\x01"}}), "\"\\u0001\"");
}

TEST(JsonRoundTrip, ParseSerializeParse) {
  const std::string doc =
      R"({"fires":[{"acres":1234.5,"name":"Kincade"},{"acres":745,"name":"Getty"}],"year":2019})";
  const JsonValue v = parse_json(doc);
  EXPECT_EQ(to_json(v), doc);
  const JsonValue v2 = parse_json(to_json(v, 2));  // pretty output reparses
  EXPECT_EQ(to_json(v2), doc);
}

}  // namespace
}  // namespace fa::io

#include "io/fagrid.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace fa::io {
namespace {

raster::ClassRaster sample_grid() {
  raster::GridGeometry g;
  g.origin_x = -2000000.0;
  g.origin_y = 300000.0;
  g.cell_w = 270.0;
  g.cell_h = 270.0;
  g.cols = 12;
  g.rows = 7;
  raster::ClassRaster grid(g, 0);
  grid.at(0, 0) = 5;
  grid.at(11, 6) = 3;
  grid.at(4, 2) = 1;
  return grid;
}

TEST(FaGrid, RoundTripPreservesEverything) {
  const raster::ClassRaster grid = sample_grid();
  std::stringstream buf;
  write_fagrid(buf, grid);
  const raster::ClassRaster back = read_fagrid(buf);
  EXPECT_EQ(back.geom(), grid.geom());
  EXPECT_EQ(back.data(), grid.data());
}

TEST(FaGrid, HeaderSizeIsStable) {
  std::stringstream buf;
  write_fagrid(buf, sample_grid());
  // 8 magic + 32 geometry + 8 dims + 84 cells.
  EXPECT_EQ(buf.str().size(), 8u + 32u + 8u + 84u);
}

TEST(FaGrid, RejectsBadMagic) {
  std::stringstream buf;
  buf << "NOTAGRID garbage";
  EXPECT_THROW(read_fagrid(buf), std::runtime_error);
}

TEST(FaGrid, RejectsTruncatedData) {
  std::stringstream buf;
  write_fagrid(buf, sample_grid());
  std::string bytes = buf.str();
  bytes.resize(bytes.size() - 10);
  std::stringstream cut(bytes);
  EXPECT_THROW(read_fagrid(cut), std::runtime_error);
}

TEST(FaGrid, RejectsInvalidGeometry) {
  // Corrupt the cols field (offset 40..44) to zero.
  std::stringstream buf;
  write_fagrid(buf, sample_grid());
  std::string bytes = buf.str();
  bytes[40] = bytes[41] = bytes[42] = bytes[43] = 0;
  std::stringstream cut(bytes);
  EXPECT_THROW(read_fagrid(cut), std::runtime_error);
}

TEST(FaGrid, FileHelpers) {
  const std::string path = ::testing::TempDir() + "/test_grid.fagrid";
  const raster::ClassRaster grid = sample_grid();
  save_fagrid(path, grid);
  const raster::ClassRaster back = load_fagrid(path);
  EXPECT_EQ(back.data(), grid.data());
  EXPECT_THROW(load_fagrid("/nonexistent/dir/x.fagrid"), std::runtime_error);
}

}  // namespace
}  // namespace fa::io

#include "io/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace fa::io {
namespace {

TEST(ParseCsvLine, SimpleFields) {
  EXPECT_EQ(parse_csv_line("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(parse_csv_line(""), (std::vector<std::string>{""}));
  EXPECT_EQ(parse_csv_line("a,,c"),
            (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(parse_csv_line("a,b,"),
            (std::vector<std::string>{"a", "b", ""}));
}

TEST(ParseCsvLine, QuotedFields) {
  EXPECT_EQ(parse_csv_line(R"("a,b",c)"),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(parse_csv_line(R"("he said ""hi""",x)"),
            (std::vector<std::string>{"he said \"hi\"", "x"}));
  EXPECT_EQ(parse_csv_line(R"("")"), (std::vector<std::string>{""}));
}

TEST(ParseCsvLine, TrailingCarriageReturn) {
  EXPECT_EQ(parse_csv_line("a,b\r"), (std::vector<std::string>{"a", "b"}));
}

TEST(ParseCsvLine, AlternateSeparator) {
  EXPECT_EQ(parse_csv_line("a;b;c", ';'),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(EscapeCsvField, OnlyWhenNeeded) {
  EXPECT_EQ(escape_csv_field("plain"), "plain");
  EXPECT_EQ(escape_csv_field("a,b"), "\"a,b\"");
  EXPECT_EQ(escape_csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(escape_csv_field(" padded "), "\" padded \"");
}

TEST(CsvReader, HeaderAndRecords) {
  std::istringstream in("lat,lon,radio\n34.0,-118.2,LTE\n37.7,-122.4,UMTS\n");
  CsvReader reader(in);
  EXPECT_EQ(reader.header(),
            (std::vector<std::string>{"lat", "lon", "radio"}));
  EXPECT_EQ(reader.column("lon"), 1);
  EXPECT_EQ(reader.column("missing"), -1);
  const auto r1 = reader.next();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ((*r1)[2], "LTE");
  const auto r2 = reader.next();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ((*r2)[0], "37.7");
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.records_read(), 2u);
}

TEST(CsvReader, SkipsBlankLines) {
  std::istringstream in("a\n\n1\n\r\n2\n");
  CsvReader reader(in);
  EXPECT_EQ((*reader.next())[0], "1");
  EXPECT_EQ((*reader.next())[0], "2");
  EXPECT_FALSE(reader.next().has_value());
}

TEST(CsvReader, NoHeaderMode) {
  std::istringstream in("1,2\n3,4\n");
  CsvReader reader(in, /*has_header=*/false);
  EXPECT_TRUE(reader.header().empty());
  EXPECT_EQ((*reader.next())[0], "1");
}

TEST(CsvRoundTrip, WriterThenReader) {
  std::stringstream buf;
  CsvWriter writer(buf);
  writer.write_row({"name", "note"});
  writer.write_row({"alpha", "has,comma"});
  writer.write_row({"beta", "has \"quote\""});
  CsvReader reader(buf);
  EXPECT_EQ((*reader.next()), (std::vector<std::string>{"alpha", "has,comma"}));
  EXPECT_EQ((*reader.next()),
            (std::vector<std::string>{"beta", "has \"quote\""}));
}

}  // namespace
}  // namespace fa::io

#include "io/geojson.hpp"

#include <gtest/gtest.h>

namespace fa::io {
namespace {

using geo::MultiPolygon;
using geo::Polygon;
using geo::Vec2;

TEST(GeoJson, PointGeometry) {
  const JsonValue g = point_geometry({-120.5, 39.0});
  EXPECT_EQ(g.at("type").as_string(), "Point");
  EXPECT_EQ(to_json(g), R"({"coordinates":[-120.5,39],"type":"Point"})");
  EXPECT_EQ(parse_point_geometry(g), (Vec2{-120.5, 39.0}));
}

TEST(GeoJson, PolygonRingIsClosed) {
  const JsonValue g = polygon_geometry(Polygon{geo::make_rect(0, 0, 1, 1)});
  const JsonValue& ring = g.at("coordinates").at(std::size_t{0});
  EXPECT_EQ(ring.size(), 5u);  // 4 vertices + closing point
  EXPECT_EQ(to_json(ring.at(std::size_t{0})),
            to_json(ring.at(std::size_t{4})));
}

TEST(GeoJson, PolygonRoundTripWithHole) {
  const Polygon poly{geo::make_rect(0, 0, 10, 10),
                     {geo::make_rect(2, 2, 4, 4)}};
  const Polygon back = parse_polygon_geometry(polygon_geometry(poly));
  EXPECT_DOUBLE_EQ(back.area(), poly.area());
  EXPECT_FALSE(back.contains({3, 3}));
  EXPECT_TRUE(back.contains({1, 1}));
}

TEST(GeoJson, MultiPolygonRoundTrip) {
  MultiPolygon mp;
  mp.push_back(Polygon{geo::make_rect(0, 0, 1, 1)});
  mp.push_back(Polygon{geo::make_rect(3, 3, 5, 4)});
  const MultiPolygon back =
      parse_multipolygon_geometry(multipolygon_geometry(mp));
  EXPECT_EQ(back.size(), 2u);
  EXPECT_DOUBLE_EQ(back.area(), 3.0);
}

TEST(GeoJson, FeatureAndCollection) {
  JsonValue f = feature(point_geometry({1, 2}),
                        JsonObject{{"name", "tower-17"}, {"whp", 4}});
  JsonValue fc = feature_collection(JsonArray{f});
  EXPECT_EQ(fc.at("type").as_string(), "FeatureCollection");
  EXPECT_EQ(fc.at("features").size(), 1u);
  const JsonValue& feat = fc.at("features").at(std::size_t{0});
  EXPECT_EQ(feat.at("properties").at("name").as_string(), "tower-17");
  EXPECT_DOUBLE_EQ(feat.at("properties").at("whp").as_number(), 4.0);
}

TEST(GeoJson, ParseRejectsWrongType) {
  EXPECT_THROW(parse_point_geometry(polygon_geometry(
                   Polygon{geo::make_rect(0, 0, 1, 1)})),
               JsonError);
  EXPECT_THROW(parse_polygon_geometry(point_geometry({0, 0})), JsonError);
  EXPECT_THROW(parse_polygon_geometry(parse_json("{}")), JsonError);
}

TEST(GeoJson, ExternallyAuthoredDocument) {
  // A hand-written GeoJSON doc, as a GIS tool would emit it.
  const JsonValue doc = parse_json(R"({
    "type": "Polygon",
    "coordinates": [[[ -122.5, 38.4 ], [ -122.3, 38.4 ],
                     [ -122.3, 38.6 ], [ -122.5, 38.6 ], [ -122.5, 38.4 ]]]
  })");
  const Polygon p = parse_polygon_geometry(doc);
  EXPECT_TRUE(p.contains({-122.4, 38.5}));
  EXPECT_FALSE(p.contains({-122.6, 38.5}));
}

}  // namespace
}  // namespace fa::io

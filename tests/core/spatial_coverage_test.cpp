#include <gtest/gtest.h>

#include "core/coverage.hpp"
#include "test_world.hpp"

namespace fa::core {
namespace {

using testing::test_world;

const synth::PopulationSurface& population() {
  static const synth::PopulationSurface s = synth::PopulationSurface::build(
      test_world().atlas(), test_world().config(), 27000.0);
  return s;
}

TEST(SpatialCoverage, NoFiresNoLoss) {
  const SpatialCoverageResult r =
      run_spatial_coverage_loss(test_world(), {}, population());
  EXPECT_DOUBLE_EQ(r.population_analyzed, 0.0);
  EXPECT_DOUBLE_EQ(r.uncovered_by_fires, 0.0);
  EXPECT_EQ(r.sites_lost, 0u);
}

TEST(SpatialCoverage, UrbanFireRarelyDarkensAnyone) {
  // A fire box inside metro LA: sites are lost, but the surviving ones
  // keep the area covered (density = redundancy).
  firesim::FirePerimeter fire;
  fire.perimeter = geo::MultiPolygon{
      {geo::Polygon{geo::make_rect(-118.35, 33.95, -118.15, 34.15)}}};
  const SpatialCoverageResult r =
      run_spatial_coverage_loss(test_world(), {fire}, population());
  EXPECT_GT(r.sites_lost, 0u);
  EXPECT_GT(r.covered_before, 0.0);
  EXPECT_LT(r.loss_share(), 0.30);
}

TEST(SpatialCoverage, TotalWipeoutDarkensTheRegion) {
  // Losing every site in a broad box leaves its residents dark.
  firesim::FirePerimeter fire;
  fire.perimeter = geo::MultiPolygon{
      {geo::Polygon{geo::make_rect(-109.5, 31.4, -103.1, 36.9)}}};  // ~NM
  const SpatialCoverageResult r =
      run_spatial_coverage_loss(test_world(), {fire}, population());
  EXPECT_GT(r.sites_lost, 10u);
  EXPECT_GT(r.uncovered_by_fires, 0.0);
  // Interior cells (more than a service radius from the box edge) lose
  // everything, so the loss share is substantial.
  EXPECT_GT(r.loss_share(), 0.5);
}

TEST(SpatialCoverage, LossNeverExceedsCoveredPopulation) {
  firesim::FirePerimeter fire;
  fire.perimeter = geo::MultiPolygon{
      {geo::Polygon{geo::make_rect(-121.0, 38.0, -119.5, 39.5)}}};
  const SpatialCoverageResult r =
      run_spatial_coverage_loss(test_world(), {fire}, population());
  EXPECT_LE(r.uncovered_by_fires, r.covered_before);
  EXPECT_LE(r.covered_before, r.population_analyzed);
}

TEST(SpatialCoverage, LargerServiceRadiusCoversMore) {
  firesim::FirePerimeter fire;
  fire.perimeter = geo::MultiPolygon{
      {geo::Polygon{geo::make_rect(-121.0, 38.0, -119.5, 39.5)}}};
  SpatialCoverageConfig narrow;
  narrow.service_radius_m = 4000.0;
  SpatialCoverageConfig wide;
  wide.service_radius_m = 16000.0;
  const SpatialCoverageResult a =
      run_spatial_coverage_loss(test_world(), {fire}, population(), narrow);
  const SpatialCoverageResult b =
      run_spatial_coverage_loss(test_world(), {fire}, population(), wide);
  EXPECT_GE(b.covered_before, a.covered_before);
}

}  // namespace
}  // namespace fa::core

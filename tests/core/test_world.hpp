// Shared test fixture: one coarse, small world reused by every core test
// (world generation dominates runtime).
#pragma once

#include "core/world.hpp"

namespace fa::core::testing {

inline const World& test_world() {
  static const World world = [] {
    synth::ScenarioConfig cfg;
    cfg.seed = 20191022;
    cfg.whp_cell_m = 9000.0;
    cfg.corpus_scale = 100.0;
    cfg.counties_per_state = 16;
    return World::build(cfg);
  }();
  return world;
}

}  // namespace fa::core::testing

// Shared test fixture: one coarse, small world reused by every core test
// (world generation dominates runtime). Held by an AnalysisContext so the
// tests exercise the same entry point the benches and examples use.
#pragma once

#include "core/analysis_context.hpp"
#include "core/world.hpp"

namespace fa::core::testing {

inline AnalysisContext& test_context() {
  static AnalysisContext ctx = [] {
    synth::ScenarioConfig cfg;
    cfg.seed = 20191022;
    cfg.whp_cell_m = 9000.0;
    cfg.corpus_scale = 100.0;
    cfg.counties_per_state = 16;
    return AnalysisContext(cfg);
  }();
  return ctx;
}

inline const World& test_world() { return test_context().world(); }

}  // namespace fa::core::testing

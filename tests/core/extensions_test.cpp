// Tests for the Section 3.11 / 3.5 extension modules: HOT escape-
// probability weighting, service-coverage loss, and IAB resilience.
#include <gtest/gtest.h>

#include "core/case_study.hpp"
#include "core/coverage.hpp"
#include "core/climate.hpp"
#include "core/escape.hpp"
#include "core/site_risk.hpp"
#include "test_world.hpp"

namespace fa::core {
namespace {

using testing::test_world;

// --- Escape-probability model ----------------------------------------------

TEST(EscapeRisk, ScoreIsNonNegativeAndBounded) {
  const World& w = test_world();
  for (const geo::LonLat p : {geo::LonLat{-120.6, 39.2},   // Sierra foothills
                              geo::LonLat{-87.63, 41.88},  // Chicago
                              geo::LonLat{-105.5, 39.5}}) {
    const double s = escape_risk_score(w, p);
    EXPECT_GE(s, 0.0);
    EXPECT_LT(s, 40.0);
  }
}

TEST(EscapeRisk, HazardousTerrainScoresHigher) {
  const World& w = test_world();
  // Sierra foothills vs downtown Chicago (non-burnable farmland belt).
  const double sierra = escape_risk_score(w, {-120.6, 39.2});
  const double chicago = escape_risk_score(w, {-87.63, 41.88});
  EXPECT_GT(sierra, chicago * 2.0);
}

TEST(EscapeRisk, TailExponentControlsReach) {
  // Smaller alpha (heavier tail) means distant ignitions matter more, so
  // scores can only grow when alpha shrinks.
  const World& w = test_world();
  EscapeConfig heavy;
  heavy.alpha = 0.3;
  EscapeConfig light;
  light.alpha = 1.2;
  const geo::LonLat p{-120.6, 39.2};
  EXPECT_GE(escape_risk_score(w, p, heavy),
            escape_risk_score(w, p, light));
}

TEST(EscapeRisk, RunPopulatesStates) {
  const EscapeResult r = run_escape_risk(test_world(), 64);
  EXPECT_FALSE(r.scores.empty());
  EXPECT_EQ(r.stride, 64u);
  std::size_t scored = 0;
  for (const EscapeStateRow& row : r.states) scored += row.transceivers;
  EXPECT_EQ(scored, r.scores.size());
}

TEST(EscapeRisk, WesternStatesLeadTheRanking) {
  const EscapeResult r = run_escape_risk(test_world(), 64);
  const auto rank = r.rank();
  const auto& atlas = test_world().atlas();
  // Every top-5 escape-weighted state is a high-propensity state.
  for (int i = 0; i < 5; ++i) {
    EXPECT_GE(atlas.states()[rank[i]].fire_propensity, 0.55)
        << atlas.states()[rank[i]].abbr;
  }
}

TEST(EscapeRisk, RankCorrelationWithWhpIsStrongButImperfect) {
  const EscapeResult r = run_escape_risk(test_world(), 64);
  const double rho = escape_vs_whp_rank_correlation(test_world(), r);
  EXPECT_GT(rho, 0.4);   // same broad geography
  EXPECT_LT(rho, 0.999); // but not identical — the model adds information
}

// --- Coverage loss -----------------------------------------------------------

TEST(CoverageCurve, ZeroBelowRedundancyKnee) {
  const CoverageConfig cfg;
  EXPECT_DOUBLE_EQ(coverage_loss_share(0.0, cfg), 0.0);
  EXPECT_DOUBLE_EQ(coverage_loss_share(cfg.redundancy, cfg), 0.0);
  EXPECT_DOUBLE_EQ(coverage_loss_share(cfg.redundancy - 0.05, cfg), 0.0);
}

TEST(CoverageCurve, FullLossAtTotalDestruction) {
  EXPECT_DOUBLE_EQ(coverage_loss_share(1.0, CoverageConfig{}), 1.0);
  EXPECT_DOUBLE_EQ(coverage_loss_share(1.5, CoverageConfig{}), 1.0);  // clamp
}

TEST(CoverageCurve, MonotoneAboveKnee) {
  const CoverageConfig cfg;
  double prev = 0.0;
  for (double share = cfg.redundancy; share <= 1.0; share += 0.05) {
    const double loss = coverage_loss_share(share, cfg);
    EXPECT_GE(loss, prev);
    prev = loss;
  }
}

TEST(CoverageLoss, EmptyFiresNoImpact) {
  const CoverageResult r = run_coverage_loss(test_world(), {});
  EXPECT_TRUE(r.counties.empty());
  EXPECT_DOUBLE_EQ(r.total_users_affected, 0.0);
  EXPECT_EQ(r.transceivers_lost, 0u);
}

TEST(CoverageLoss, CountyWipeoutAffectsItsPopulation) {
  // A perimeter covering all of Florida wipes every FL county.
  firesim::FirePerimeter fire;
  fire.perimeter = geo::MultiPolygon{
      {geo::Polygon{geo::make_rect(-88.0, 24.5, -79.5, 31.2)}}};
  const CoverageResult r = run_coverage_loss(test_world(), {fire});
  EXPECT_GT(r.transceivers_lost, 100u);
  EXPECT_GT(r.total_users_affected, 1e6);
  ASSERT_FALSE(r.counties.empty());
  // Sorted by users affected, and losses never exceed county totals.
  for (std::size_t i = 0; i < r.counties.size(); ++i) {
    EXPECT_LE(r.counties[i].lost, r.counties[i].transceivers);
    if (i > 0) {
      EXPECT_GE(r.counties[i - 1].users_affected,
                r.counties[i].users_affected);
    }
  }
}

TEST(CoverageLoss, RedundancyAbsorbsSmallLosses) {
  // A tiny box loses few transceivers per county => zero user impact.
  firesim::FirePerimeter fire;
  fire.perimeter = geo::MultiPolygon{
      {geo::Polygon{geo::make_rect(-120.65, 39.15, -120.55, 39.25)}}};
  const CoverageResult r = run_coverage_loss(test_world(), {fire});
  for (const CountyCoverageRow& row : r.counties) {
    if (row.lost_share() <= CoverageConfig{}.redundancy) {
      EXPECT_DOUBLE_EQ(row.users_affected, 0.0) << row.name;
    }
  }
}

// --- Future exposure (western ecoregion projection) -------------------------

TEST(FutureExposure, AggregateGrowsWestDriven) {
  const FutureExposureResult r = run_future_exposure(test_world());
  EXPECT_GT(r.at_risk_now, 0u);
  // The west dominates at-risk infrastructure and its deltas are mostly
  // positive, so the aggregate index must grow.
  EXPECT_GT(r.at_risk_2040, static_cast<double>(r.at_risk_now));
}

TEST(FutureExposure, EasternStatesHoldCurrentExposure) {
  const FutureExposureResult r = run_future_exposure(test_world());
  const int fl = test_world().atlas().state_index("FL");
  const auto& row = r.states[static_cast<std::size_t>(fl)];
  // Florida sits outside the Littell-covered west: growth factor 1.0.
  EXPECT_NEAR(row.growth(), 1.0, 1e-9);
}

TEST(FutureExposure, WesternStatesGrow) {
  const FutureExposureResult r = run_future_exposure(test_world());
  for (const char* abbr : {"CA", "ID", "MT", "NV"}) {
    const int s = test_world().atlas().state_index(abbr);
    const auto& row = r.states[static_cast<std::size_t>(s)];
    if (row.at_risk_now == 0) continue;
    EXPECT_GT(row.growth(), 1.0) << abbr;
  }
}

TEST(FutureExposure, RankingIsDescending) {
  const FutureExposureResult r = run_future_exposure(test_world());
  const auto rank = r.rank();
  for (std::size_t i = 1; i < rank.size(); ++i) {
    EXPECT_GE(r.states[static_cast<std::size_t>(rank[i - 1])].at_risk_2040,
              r.states[static_cast<std::size_t>(rank[i])].at_risk_2040);
  }
}

// --- IAB resilience -----------------------------------------------------------

TEST(IabResilience, FullDeploymentRemovesTransportOutages) {
  firesim::OutageSimConfig config;
  config.iab_fraction = 1.0;
  const firesim::DirsReport report =
      run_california_case_study(test_world(), config);
  for (const firesim::DayOutages& day : report.days) {
    EXPECT_EQ(day.transport, 0u) << day.label;
  }
}

TEST(IabResilience, PowerOutagesAreUntouched) {
  firesim::OutageSimConfig base;
  firesim::OutageSimConfig full;
  full.iab_fraction = 1.0;
  const firesim::DirsReport a = run_california_case_study(test_world(), base);
  const firesim::DirsReport b = run_california_case_study(test_world(), full);
  // IAB only changes the transport category; damage + power categories
  // stay in the same regime (not exactly equal: the per-site IAB draws
  // shift the RNG stream).
  std::size_t power_a = 0, power_b = 0;
  for (std::size_t d = 0; d < a.days.size(); ++d) {
    power_a += a.days[d].power;
    power_b += b.days[d].power;
  }
  EXPECT_GT(power_b, power_a / 2);
  EXPECT_LT(power_b, power_a * 2);
}

TEST(IabResilience, PartialDeploymentPartialBenefit) {
  firesim::OutageSimConfig none, half;
  half.iab_fraction = 0.5;
  std::size_t t_none = 0, t_half = 0;
  const firesim::DirsReport a = run_california_case_study(test_world(), none);
  const firesim::DirsReport b = run_california_case_study(test_world(), half);
  for (std::size_t d = 0; d < a.days.size(); ++d) {
    t_none += a.days[d].transport;
    t_half += b.days[d].transport;
  }
  EXPECT_LT(t_half, t_none);
  EXPECT_GT(t_half, 0u);
}

// --- Site-level ablation ------------------------------------------------------

TEST(SiteRisk, SitesFewerThanTransceivers) {
  const SiteRiskResult r = run_site_risk(test_world());
  EXPECT_GT(r.sites, 0u);
  EXPECT_LT(r.sites, r.transceivers);
  EXPECT_GT(r.radios_per_site, 2.0);
  // Class counts partition both populations.
  std::size_t site_total = 0, txr_total = 0;
  for (int cls = 0; cls < synth::kNumWhpClasses; ++cls) {
    site_total += r.sites_by_class[static_cast<std::size_t>(cls)];
    txr_total += r.txr_by_class[static_cast<std::size_t>(cls)];
  }
  EXPECT_EQ(site_total, r.sites);
  EXPECT_EQ(txr_total, r.transceivers);
}

TEST(SiteRisk, AtRiskSitesAreThinnerThanSafeOnes) {
  // Rural at-risk sites host fewer radios: the transceiver view
  // understates structural exposure.
  const SiteRiskResult r = run_site_risk(test_world());
  EXPECT_GT(r.radios_per_safe_site, r.radios_per_at_risk_site);
  const double site_share = static_cast<double>(r.sites_at_risk()) / r.sites;
  const double txr_share =
      static_cast<double>(r.txr_at_risk()) / r.transceivers;
  EXPECT_GT(site_share, txr_share);
}

TEST(SiteRisk, MergeDistanceShrinksSiteCount) {
  const SiteRiskResult fine = run_site_risk(test_world(), 50.0);
  const SiteRiskResult coarse = run_site_risk(test_world(), 500.0);
  EXPECT_GT(fine.sites, coarse.sites);
}

}  // namespace
}  // namespace fa::core

// End-to-end integration: the full data-exchange loop. A world's corpus
// is serialized to OpenCelliD CSV and its hazard grid to a .fagrid file;
// both are re-ingested cold (as external data would be) and the overlay
// must reproduce the in-memory analysis exactly.
#include <gtest/gtest.h>

#include <sstream>

#include "core/whp_overlay.hpp"
#include "geo/projection.hpp"
#include "io/fagrid.hpp"
#include "test_world.hpp"

namespace fa::core {
namespace {

using testing::test_world;

TEST(Pipeline, CsvPlusFagridRoundTripMatchesInMemoryOverlay) {
  const World& world = test_world();

  // Export.
  std::stringstream csv;
  cellnet::write_opencellid_csv(csv, world.corpus());
  std::stringstream grid_bytes;
  io::write_fagrid(grid_bytes, world.whp().grid());

  // Cold re-ingest.
  cellnet::CsvLoadStats stats;
  const cellnet::CellCorpus corpus = cellnet::read_opencellid_csv(csv, &stats);
  ASSERT_EQ(stats.skipped, 0u);
  ASSERT_EQ(corpus.size(), world.corpus().size());
  const raster::ClassRaster grid = io::read_fagrid(grid_bytes);
  ASSERT_EQ(grid.geom(), world.whp().grid().geom());

  // Recompute the per-class counts from the re-ingested artifacts.
  const geo::AlbersConus proj;
  std::array<std::size_t, synth::kNumWhpClasses> by_class{};
  for (const cellnet::Transceiver& t : corpus.transceivers()) {
    ++by_class[grid.sample(proj.forward(t.position), 0)];
  }
  const WhpOverlayResult reference = run_whp_overlay(world);
  for (int cls = 0; cls < synth::kNumWhpClasses; ++cls) {
    EXPECT_EQ(by_class[static_cast<std::size_t>(cls)],
              reference.txr_by_class[static_cast<std::size_t>(cls)])
        << synth::whp_class_name(static_cast<synth::WhpClass>(cls));
  }
}

TEST(Pipeline, ProviderResolutionSurvivesCsvRoundTrip) {
  const World& world = test_world();
  std::stringstream csv;
  cellnet::write_opencellid_csv(csv, world.corpus());
  const cellnet::CellCorpus corpus = cellnet::read_opencellid_csv(csv);
  const cellnet::ProviderRegistry registry;
  EXPECT_EQ(corpus.count_by_provider(registry),
            world.corpus().count_by_provider(registry));
  EXPECT_EQ(corpus.count_by_radio(), world.corpus().count_by_radio());
}

TEST(Pipeline, WorldRebuildIsByteStable) {
  // Same config => identical corpus and hazard grid (the determinism
  // guarantee the whole harness rests on).
  const World& a = test_world();
  const World b = World::build(a.config());
  ASSERT_EQ(a.corpus().size(), b.corpus().size());
  for (std::size_t i = 0; i < a.corpus().size(); i += 97) {
    EXPECT_EQ(a.corpus()[i].position, b.corpus()[i].position);
    EXPECT_EQ(a.corpus()[i].mnc, b.corpus()[i].mnc);
  }
  EXPECT_EQ(a.whp().grid().data(), b.whp().grid().data());
}

}  // namespace
}  // namespace fa::core

#include "core/world.hpp"

#include <gtest/gtest.h>

#include "test_world.hpp"

namespace fa::core {
namespace {

using testing::test_world;

TEST(World, BuildsAllLayers) {
  const World& w = test_world();
  EXPECT_EQ(w.corpus().size(), w.config().corpus_size());
  EXPECT_FALSE(w.whp().grid().empty());
  EXPECT_GT(w.counties().counties().size(), 500u);
  EXPECT_EQ(w.txr_index().size(), w.corpus().size());
}

TEST(World, CachedClassesMatchModel) {
  const World& w = test_world();
  for (std::uint32_t id = 0; id < 500; ++id) {
    const auto& t = w.corpus()[id];
    EXPECT_EQ(w.txr_class(id), w.whp().class_at(t.position)) << id;
  }
}

TEST(World, CachedCountiesMatchMap) {
  const World& w = test_world();
  for (std::uint32_t id = 0; id < 200; ++id) {
    const auto& t = w.corpus()[id];
    EXPECT_EQ(w.txr_county(id), w.counties().county_of(t.position)) << id;
  }
}

TEST(World, IndexFindsEveryTransceiver) {
  const World& w = test_world();
  // Count through the index over the whole CONUS box.
  EXPECT_EQ(w.txr_index().count(w.atlas().conus_bbox().inflated(0.5)),
            w.corpus().size());
}

TEST(World, MostTransceiversResolveToACounty) {
  const World& w = test_world();
  std::size_t unresolved = 0;
  for (std::uint32_t id = 0; id < w.corpus().size(); ++id) {
    if (w.txr_county(id) < 0) ++unresolved;
  }
  EXPECT_LT(unresolved, w.corpus().size() / 100);
}

}  // namespace
}  // namespace fa::core

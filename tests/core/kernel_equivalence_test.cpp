// Equivalence proof for the batch-geometry rewiring: the prepared/SoA
// kernel paths must reproduce the pre-kernel scalar callback paths byte
// for byte — same hit sets, same sequence order — on the seed world.
#include <gtest/gtest.h>

#include <vector>

#include "core/overlay.hpp"
#include "firesim/fire.hpp"
#include "geo/prepared.hpp"
#include "test_world.hpp"

namespace fa::core {
namespace {

const std::vector<firesim::FirePerimeter>& kernel_test_fires() {
  static const std::vector<firesim::FirePerimeter> fires = [] {
    const World& world = testing::test_world();
    firesim::FireSimulator sim(world.whp(), world.atlas(),
                               world.config().seed);
    return sim.simulate_year(synth::historical_fire_years().back(), {}).fires;
  }();
  return fires;
}

TEST(KernelEquivalenceTest, OverlayMatchesScalarCallbackPath) {
  const World& world = testing::test_world();
  const auto& fires = kernel_test_fires();
  ASSERT_FALSE(fires.empty());

  // Pre-kernel reference: per-point callback query with the scalar
  // MultiPolygon::contains, then the same first-containing-fire merge.
  std::vector<std::vector<std::uint32_t>> per_fire(fires.size());
  for (std::size_t f = 0; f < fires.size(); ++f) {
    const auto& perimeter = fires[f].perimeter;
    if (perimeter.empty()) continue;
    world.txr_index().query(perimeter.bbox(),
                            [&](std::uint32_t id, geo::Vec2 p) {
                              if (perimeter.contains(p)) {
                                per_fire[f].push_back(id);
                              }
                            });
  }
  PerimeterHits expected;
  std::vector<std::uint8_t> seen(world.corpus().size(), 0);
  for (std::uint32_t f = 0; f < fires.size(); ++f) {
    for (const std::uint32_t id : per_fire[f]) {
      if (seen[id] != 0) continue;
      seen[id] = 1;
      expected.txr_ids.push_back(id);
      expected.fire_idx.push_back(f);
    }
  }

  const PerimeterHits actual =
      transceivers_in_perimeters_attributed(world, fires);
  // Sequence equality, not just set equality: downstream consumers and
  // the golden suite depend on the exact hit order.
  EXPECT_EQ(actual.txr_ids, expected.txr_ids);
  EXPECT_EQ(actual.fire_idx, expected.fire_idx);
}

TEST(KernelEquivalenceTest, PreparedPerimeterMatchesScalarOnCorpus) {
  // Site-loss style sweep: for every fire, the batch mask over the whole
  // transceiver corpus must equal the scalar probe per point.
  const World& world = testing::test_world();
  const auto& fires = kernel_test_fires();
  const auto& transceivers = world.corpus().transceivers();
  std::vector<double> xs(transceivers.size());
  std::vector<double> ys(transceivers.size());
  for (std::size_t i = 0; i < transceivers.size(); ++i) {
    const geo::Vec2 p = transceivers[i].position.as_vec();
    xs[i] = p.x;
    ys[i] = p.y;
  }
  std::vector<std::uint8_t> mask(transceivers.size());
  for (const firesim::FirePerimeter& fire : fires) {
    const geo::PreparedMultiPolygon prepared(fire.perimeter);
    prepared.contains_batch(xs, ys, mask);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < transceivers.size(); ++i) {
      const bool scalar = fire.perimeter.contains({xs[i], ys[i]});
      ASSERT_EQ(mask[i] != 0, scalar)
          << fire.name << " txr " << transceivers[i].id;
      hits += mask[i];
    }
    // Interior-box fast path should be active for real perimeters but
    // is never required; when present it was already proven consistent.
    (void)hits;
  }
}

}  // namespace
}  // namespace fa::core

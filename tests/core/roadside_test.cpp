#include "core/roadside.hpp"

#include <gtest/gtest.h>

#include "test_world.hpp"

namespace fa::core {
namespace {

using testing::test_world;

const RoadsideResult& shared_result() {
  static const RoadsideResult r = run_roadside_shadow(test_world(), 8);
  return r;
}

TEST(Roadside, PartitionsTheSampledCorpus) {
  const RoadsideResult& r = shared_result();
  EXPECT_GT(r.roadside, 0u);
  EXPECT_GT(r.interior, 0u);
  // stride-8 sampling of the corpus.
  EXPECT_NEAR(static_cast<double>(r.roadside + r.interior),
              static_cast<double>(test_world().corpus().size()) / 8.0, 2.0);
}

TEST(Roadside, RoadsideFlagRateIsDepressed) {
  // The Section 3.4 mechanism: corridor cells are classified low, so
  // roadside towers are flagged far less often than interior ones.
  const RoadsideResult& r = shared_result();
  EXPECT_LT(r.roadside_flag_rate(), r.interior_flag_rate());
}

TEST(Roadside, ShadowIsSubsetOfUnflagged) {
  const RoadsideResult& r = shared_result();
  EXPECT_LE(r.roadside_shadowed, r.roadside - r.roadside_flagged);
  EXPECT_GE(r.shadow_share(), 0.0);
  EXPECT_LE(r.shadow_share(), 1.0);
}

TEST(Roadside, WiderReachShadowsMore) {
  RoadsideConfig narrow;
  narrow.shadow_reach_m = 1000.0;
  RoadsideConfig wide;
  wide.shadow_reach_m = 9000.0;
  const RoadsideResult a = run_roadside_shadow(test_world(), 16, narrow);
  const RoadsideResult b = run_roadside_shadow(test_world(), 16, wide);
  EXPECT_GE(b.roadside_shadowed, a.roadside_shadowed);
}

TEST(Roadside, RoadsideDefinitionControlsSplit) {
  RoadsideConfig tight;
  tight.roadside_m = 500.0;
  RoadsideConfig loose;
  loose.roadside_m = 10000.0;
  const RoadsideResult a = run_roadside_shadow(test_world(), 16, tight);
  const RoadsideResult b = run_roadside_shadow(test_world(), 16, loose);
  EXPECT_LT(a.roadside, b.roadside);
  EXPECT_EQ(a.roadside + a.interior, b.roadside + b.interior);
}

}  // namespace
}  // namespace fa::core

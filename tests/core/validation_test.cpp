// Tests for Section 3.4 validation, Section 3.8 extension, Section 3.9
// climate projection and the Section 3.2 case study wrapper.
#include <gtest/gtest.h>

#include "core/case_study.hpp"
#include "core/climate.hpp"
#include "core/validation.hpp"
#include "test_world.hpp"

namespace fa::core {
namespace {

using testing::test_world;

// Validation statistics need a finer world than the shared fixture: the
// paper's 656 in-perimeter transceivers shrink with corpus scale, and at
// the coarse fixture scale the expected count is ~6 (too noisy to test).
const core::World& validation_world() {
  static const core::World world = [] {
    synth::ScenarioConfig cfg;
    cfg.seed = 20191022;
    cfg.whp_cell_m = 3600.0;
    cfg.corpus_scale = 30.0;
    return core::World::build(cfg);
  }();
  return world;
}

const ValidationResult& shared_validation() {
  static const ValidationResult v =
      run_whp_validation(validation_world(), 3);
  return v;
}

TEST(Validation, SeasonIs2019Calibrated) {
  const ValidationResult& v = shared_validation();
  EXPECT_EQ(v.season.year, 2019);
  EXPECT_NEAR(v.season.simulated_acres, 4.664e6 * 0.97, 4.664e6 * 0.1);
  EXPECT_GT(v.in_perimeter, 0u);
}

TEST(Validation, AccuracyIsPartial) {
  // Paper: 46% of in-perimeter transceivers were flagged by WHP — the
  // flag is informative but far from perfect. The exact rate is strongly
  // resolution- and seed-dependent (the misses come from road/urban-edge
  // cells, which dominate at the coarse test resolution), so this only
  // pins the regime: not everything in a perimeter was flagged.
  const ValidationResult& v = shared_validation();
  ASSERT_GT(v.in_perimeter, 0u);
  EXPECT_LT(v.accuracy(), 0.99);
  EXPECT_LE(v.predicted, v.in_perimeter);
}

TEST(Validation, MissesConcentrateInFewFires) {
  // Paper: 288 of 354 misses sat inside just two fires.
  const ValidationResult& v = shared_validation();
  const std::size_t misses = v.in_perimeter - v.predicted;
  if (misses < 10) GTEST_SKIP() << "too few misses at this scale";
  EXPECT_GT(static_cast<double>(v.misses_in_top2) / misses, 0.25);
  EXPECT_GE(v.accuracy_excluding_top2(), v.accuracy());
}

TEST(Validation, HitArraysConsistent) {
  const ValidationResult& v = shared_validation();
  ASSERT_EQ(v.hit_ids.size(), v.hit_fire.size());
  ASSERT_EQ(v.hit_ids.size(), v.in_perimeter);
  for (std::size_t i = 0; i < v.hit_ids.size(); ++i) {
    ASSERT_LT(v.hit_ids[i], validation_world().corpus().size());
  }
}

TEST(Extension, HalfMileGrowsVeryHighSubstantially) {
  // Paper: 26,307 -> 176,275 (a ~6.7x growth of the VH class).
  const ExtensionResult e =
      run_perimeter_extension(validation_world(), shared_validation());
  EXPECT_GT(e.vh_after, e.vh_before + e.vh_before / 2);  // >= 1.5x
  EXPECT_GT(e.vh_before, 0u);
}

TEST(Extension, TotalAtRiskGrowsModestly) {
  // Paper: 430,844 -> 509,693 (+18%): the extension adds risk coverage
  // without exploding the flagged set.
  const ExtensionResult e =
      run_perimeter_extension(validation_world(), shared_validation());
  EXPECT_GE(e.at_risk_after, e.at_risk_before);
  EXPECT_LT(e.at_risk_after, e.at_risk_before * 2);
}

TEST(Extension, AccuracyImproves) {
  // Paper: 46% -> 62%.
  const ExtensionResult e =
      run_perimeter_extension(validation_world(), shared_validation());
  EXPECT_EQ(e.in_perimeter, shared_validation().in_perimeter);
  EXPECT_GE(e.predicted_after, e.predicted_before);
  EXPECT_GE(e.accuracy_after(), e.accuracy_before());
}

TEST(Extension, RadiusSweepIsMonotone) {
  const ValidationResult& v = shared_validation();
  std::size_t prev_vh = 0;
  std::size_t prev_total = 0;
  for (const double miles : {0.25, 0.5, 1.0}) {
    const ExtensionResult e =
        run_perimeter_extension(validation_world(), v, miles * 1609.344);
    EXPECT_GE(e.vh_after, prev_vh);
    EXPECT_GE(e.at_risk_after, prev_total);
    prev_vh = e.vh_after;
    prev_total = e.at_risk_after;
  }
}

TEST(Climate, CorridorRowsCoverEcoregions) {
  const ClimateResult c = run_climate_projection(test_world());
  EXPECT_EQ(c.rows.size(), test_world().atlas().ecoregions().size());
  EXPECT_GT(c.corridor_transceivers, 0u);
  std::size_t assigned = 0;
  for (const EcoregionRiskRow& row : c.rows) assigned += row.transceivers;
  EXPECT_LE(assigned, c.corridor_transceivers);
  EXPECT_GT(assigned, 0u);
}

TEST(Climate, MetroEcoregionsHoldTheInfrastructure) {
  // Figure 14: infrastructure concentrates in SLC and Denver with thin
  // strings along I-70/I-80.
  const ClimateResult c = run_climate_projection(test_world());
  std::size_t slc_denver = 0, rest = 0;
  for (const EcoregionRiskRow& row : c.rows) {
    if (row.name.find("Wasatch") != std::string::npos ||
        row.name.find("Front Range") != std::string::npos ||
        row.name.find("Great Basin") != std::string::npos ||
        row.name.find("High Plains") != std::string::npos) {
      slc_denver += row.transceivers;
    } else {
      rest += row.transceivers;
    }
  }
  EXPECT_GT(slc_denver, rest);
}

TEST(Climate, ExposureIndexScalesWithDelta) {
  const ClimateResult c = run_climate_projection(test_world());
  for (const EcoregionRiskRow& row : c.rows) {
    if (row.delta_burn_pct_2040 > 0.0) {
      EXPECT_GE(row.projected_exposure(), static_cast<double>(row.at_risk));
    } else {
      EXPECT_LE(row.projected_exposure(), static_cast<double>(row.at_risk));
    }
  }
}

TEST(CaseStudy, WrapperProducesEightDays) {
  const firesim::DirsReport report = run_california_case_study(test_world());
  EXPECT_EQ(report.days.size(), 8u);
  EXPECT_GT(report.sites_monitored, 50u);
}

}  // namespace
}  // namespace fa::core

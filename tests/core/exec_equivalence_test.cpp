// Parallel/serial equivalence on the seed scenario: the fa::exec-backed
// overlay paths must produce byte-identical output at every thread count
// (exec::ConcurrencyLimit(1) forces the serial inline path), and the
// attributed overlay must agree with a brute-force reference join.
#include <gtest/gtest.h>

#include <map>

#include "core/overlay.hpp"
#include "core/whp_overlay.hpp"
#include "exec/exec.hpp"
#include "firesim/fire.hpp"
#include "test_world.hpp"

namespace fa::core {
namespace {

const std::vector<firesim::FirePerimeter>& test_season_fires() {
  static const std::vector<firesim::FirePerimeter> fires = [] {
    const World& world = testing::test_world();
    firesim::FireSimulator sim(world.whp(), world.atlas(),
                               world.config().seed);
    return sim.simulate_year(synth::historical_fire_years().back(), {}).fires;
  }();
  return fires;
}

TEST(ExecEquivalenceTest, AttributedOverlayIsIdenticalAcrossThreadCounts) {
  const World& world = testing::test_world();
  const auto& fires = test_season_fires();
  ASSERT_FALSE(fires.empty());

  PerimeterHits serial;
  {
    exec::ConcurrencyLimit limit(1);
    serial = transceivers_in_perimeters_attributed(world, fires);
  }
  for (const int threads : {2, 8}) {
    exec::ConcurrencyLimit limit(threads);
    const PerimeterHits parallel =
        transceivers_in_perimeters_attributed(world, fires);
    EXPECT_EQ(serial.txr_ids, parallel.txr_ids) << threads << " threads";
    EXPECT_EQ(serial.fire_idx, parallel.fire_idx) << threads << " threads";
  }
}

TEST(ExecEquivalenceTest, AttributedOverlayMatchesBruteForceJoin) {
  const World& world = testing::test_world();
  const auto& fires = test_season_fires();
  const PerimeterHits hits = transceivers_in_perimeters_attributed(world, fires);

  // Reference: each transceiver is attributed to the first fire (in fire
  // order) whose perimeter contains it. Order within a fire is index-
  // traversal-dependent, so compare the id -> fire mapping, not the
  // sequence.
  std::map<std::uint32_t, std::uint32_t> expected;
  for (std::uint32_t f = 0; f < fires.size(); ++f) {
    const auto& perimeter = fires[f].perimeter;
    if (perimeter.empty()) continue;
    for (const cellnet::Transceiver& t : world.corpus().transceivers()) {
      if (!expected.contains(t.id) && perimeter.contains(t.position.as_vec())) {
        expected[t.id] = f;
      }
    }
  }

  ASSERT_EQ(hits.txr_ids.size(), expected.size());
  for (std::size_t i = 0; i < hits.txr_ids.size(); ++i) {
    const auto it = expected.find(hits.txr_ids[i]);
    ASSERT_NE(it, expected.end()) << "unexpected hit id " << hits.txr_ids[i];
    EXPECT_EQ(it->second, hits.fire_idx[i])
        << "wrong fire for id " << hits.txr_ids[i];
  }
}

TEST(ExecEquivalenceTest, WhpOverlayIsIdenticalAcrossThreadCounts) {
  const World& world = testing::test_world();
  WhpOverlayResult serial;
  {
    exec::ConcurrencyLimit limit(1);
    serial = run_whp_overlay(world);
  }
  for (const int threads : {2, 8}) {
    exec::ConcurrencyLimit limit(threads);
    const WhpOverlayResult parallel = run_whp_overlay(world);
    EXPECT_EQ(serial.txr_by_class, parallel.txr_by_class);
    ASSERT_EQ(serial.states.size(), parallel.states.size());
    for (std::size_t s = 0; s < serial.states.size(); ++s) {
      EXPECT_EQ(serial.states[s].state, parallel.states[s].state);
      EXPECT_EQ(serial.states[s].moderate, parallel.states[s].moderate);
      EXPECT_EQ(serial.states[s].high, parallel.states[s].high);
      EXPECT_EQ(serial.states[s].very_high, parallel.states[s].very_high);
      // Bitwise: the per-capita rates derive from the same integers.
      EXPECT_EQ(serial.states[s].per_thousand_m, parallel.states[s].per_thousand_m);
      EXPECT_EQ(serial.states[s].per_thousand_h, parallel.states[s].per_thousand_h);
      EXPECT_EQ(serial.states[s].per_thousand_vh,
                parallel.states[s].per_thousand_vh);
    }
  }
}

TEST(ExecEquivalenceTest, WorldBuildIsIdenticalAcrossThreadCounts) {
  // World::build classifies transceivers in parallel; rebuilding the seed
  // scenario under different caps must give the same classification.
  synth::ScenarioConfig cfg = testing::test_context().config();
  std::vector<synth::WhpClass> serial_classes;
  {
    exec::ConcurrencyLimit limit(1);
    const World world = World::build(cfg);
    for (const cellnet::Transceiver& t : world.corpus().transceivers()) {
      serial_classes.push_back(world.txr_class(t.id));
    }
  }
  exec::ConcurrencyLimit limit(8);
  const World world = World::build(cfg);
  std::vector<synth::WhpClass> parallel_classes;
  for (const cellnet::Transceiver& t : world.corpus().transceivers()) {
    parallel_classes.push_back(world.txr_class(t.id));
  }
  EXPECT_EQ(serial_classes, parallel_classes);
}

}  // namespace
}  // namespace fa::core

#include "core/report.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "core/maps.hpp"

namespace fa::core {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"Name", "Count"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12,345"});
  const std::string s = t.str();
  // Header + underline + 2 rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  // Numeric column is right-aligned: "1" ends where "12,345" ends.
  const auto lines_end = [&](int line) {
    std::size_t pos = 0;
    for (int i = 0; i < line; ++i) pos = s.find('\n', pos) + 1;
    return s.find('\n', pos);
  };
  EXPECT_EQ(s[lines_end(2) - 1], '1');
  EXPECT_EQ(s[lines_end(3) - 1], '5');
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"A", "B", "C"});
  t.add_row({"only-one"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NO_THROW(t.str());
}

TEST(FmtCount, InsertsThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(5364949), "5,364,949");
  EXPECT_EQ(fmt_count(430844), "430,844");
}

TEST(FmtDouble, FixedPrecision) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(10.0, 3), "10.000");
  EXPECT_EQ(fmt_double(-0.5, 1), "-0.5");
}

TEST(FmtPct, FractionToPercent) {
  EXPECT_EQ(fmt_pct(0.46), "46.0%");
  EXPECT_EQ(fmt_pct(0.055, 2), "5.50%");
}

TEST(AsciiDensity, RendersPeaksDarker) {
  std::vector<geo::Vec2> pts;
  for (int i = 0; i < 500; ++i) pts.push_back({5.0, 5.0});  // one hot spot
  pts.push_back({1.0, 1.0});
  const std::string map =
      render_ascii_density(pts, geo::BBox{0, 0, 10, 10}, 20, 10);
  EXPECT_NE(map.find('@'), std::string::npos);  // peak glyph present
  EXPECT_EQ(std::count(map.begin(), map.end(), '\n'), 10);
}

TEST(AsciiDensity, EmptyInputIsAllBlank) {
  const std::string map =
      render_ascii_density({}, geo::BBox{0, 0, 1, 1}, 8, 4);
  for (const char ch : map) {
    EXPECT_TRUE(ch == ' ' || ch == '\n');
  }
}

TEST(AsciiClasses, UsesGlyphPerClass) {
  raster::GridGeometry g;
  g.cols = 16;
  g.rows = 16;
  g.cell_w = g.cell_h = 1.0;
  raster::ClassRaster grid(g, 0);
  for (int r = 8; r < 16; ++r) {
    for (int c = 0; c < 16; ++c) grid.at(c, r) = 2;
  }
  const std::string map = render_ascii_classes(grid, " .X", 16, 8);
  // Northern half (rendered first) uses 'X', southern half blanks.
  const std::size_t first_newline = map.find('\n');
  EXPECT_NE(map.substr(0, first_newline).find('X'), std::string::npos);
  EXPECT_EQ(map.substr(map.size() - first_newline - 1).find('X'),
            std::string::npos);
}

TEST(DensityPgm, WritesValidHeader) {
  const std::string path = ::testing::TempDir() + "/density.pgm";
  std::vector<geo::Vec2> pts{{0.5, 0.5}, {0.2, 0.8}};
  save_density_pgm(path, pts, geo::BBox{0, 0, 1, 1}, 16, 8);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  int w = 0, h = 0, maxv = 0;
  in >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 16);
  EXPECT_EQ(h, 8);
  EXPECT_EQ(maxv, 255);
}

}  // namespace
}  // namespace fa::core

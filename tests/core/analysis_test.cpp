// Integration tests over the analysis pipeline: each checks the *shape*
// claims of the corresponding paper section against the shared world.
#include <gtest/gtest.h>

#include "core/historical.hpp"
#include "core/metro.hpp"
#include "core/overlay.hpp"
#include "core/population.hpp"
#include "core/provider_risk.hpp"
#include "core/whp_overlay.hpp"
#include "test_world.hpp"

namespace fa::core {
namespace {

using testing::test_world;

// --- Overlay primitive ----------------------------------------------------

TEST(Overlay, EmptyFireListFindsNothing) {
  EXPECT_TRUE(transceivers_in_perimeters(test_world(), {}).empty());
}

TEST(Overlay, ConusSizedPerimeterFindsEverything) {
  firesim::FirePerimeter everything;
  const geo::BBox box = test_world().atlas().conus_bbox().inflated(1.0);
  everything.perimeter = geo::MultiPolygon{{geo::Polygon{
      geo::make_rect(box.min_x, box.min_y, box.max_x, box.max_y)}}};
  const auto hits = transceivers_in_perimeters(test_world(), {everything});
  EXPECT_EQ(hits.size(), test_world().corpus().size());
}

TEST(Overlay, NoDuplicateIdsAcrossOverlappingFires) {
  firesim::FirePerimeter a, b;
  a.perimeter = geo::MultiPolygon{{geo::Polygon{
      geo::make_rect(-119.0, 33.5, -117.0, 34.8)}}};  // LA box
  b.perimeter = geo::MultiPolygon{{geo::Polygon{
      geo::make_rect(-118.5, 33.8, -117.5, 34.5)}}};  // inside a
  const auto hits = transceivers_in_perimeters(test_world(), {a, b});
  std::vector<std::uint32_t> sorted = hits;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  EXPECT_GT(hits.size(), 0u);
}

TEST(Overlay, AttributionPointsAtContainingFire) {
  firesim::FirePerimeter a;
  a.name = "box";
  a.perimeter = geo::MultiPolygon{{geo::Polygon{
      geo::make_rect(-123.0, 37.0, -121.5, 38.5)}}};  // Bay Area box
  const auto hits = transceivers_in_perimeters_attributed(test_world(), {a});
  ASSERT_GT(hits.txr_ids.size(), 0u);
  for (std::size_t i = 0; i < hits.txr_ids.size(); ++i) {
    EXPECT_EQ(hits.fire_idx[i], 0u);
    EXPECT_TRUE(a.perimeter.contains(
        test_world().corpus()[hits.txr_ids[i]].position.as_vec()));
  }
}

// --- Section 3.3 / Figures 7-9 ---------------------------------------------

TEST(WhpOverlay, ClassCountsCoverCorpus) {
  const WhpOverlayResult r = run_whp_overlay(test_world());
  std::size_t total = 0;
  for (const std::size_t n : r.txr_by_class) total += n;
  EXPECT_EQ(total, test_world().corpus().size());
}

TEST(WhpOverlay, AtRiskShareMatchesPaperBallpark) {
  // Paper: 430,844 of 5,364,949 => 8.0% of the corpus is at risk.
  const WhpOverlayResult r = run_whp_overlay(test_world());
  const double share = static_cast<double>(r.total_at_risk()) /
                       test_world().corpus().size();
  EXPECT_GT(share, 0.04);
  EXPECT_LT(share, 0.16);
}

TEST(WhpOverlay, ModerateExceedsHighExceedsVeryHigh) {
  const WhpOverlayResult r = run_whp_overlay(test_world());
  EXPECT_GT(r.txr_by_class[3], r.txr_by_class[4]);
  EXPECT_GT(r.txr_by_class[4], r.txr_by_class[5]);
  EXPECT_GT(r.txr_by_class[5], 0u);
}

TEST(WhpOverlay, CaliforniaLeadsAndTopStatesMatch) {
  // Paper: CA, FL, TX are the top three at-risk states.
  const WhpOverlayResult r = run_whp_overlay(test_world());
  const auto rank = r.rank_by_at_risk();
  const auto& atlas = test_world().atlas();
  EXPECT_EQ(atlas.states()[rank[0]].abbr, "CA");
  // FL and TX in the top four (exact order is scale-sensitive).
  std::vector<std::string_view> top4;
  for (int i = 0; i < 4; ++i) top4.push_back(atlas.states()[rank[i]].abbr);
  EXPECT_NE(std::find(top4.begin(), top4.end(), "FL"), top4.end());
  EXPECT_NE(std::find(top4.begin(), top4.end(), "TX"), top4.end());
}

TEST(WhpOverlay, PerCapitaReshufflesRanking) {
  // Paper Figure 9: small western states (UT, NV, NM) rise on a
  // per-capita basis; the per-capita leader differs from the absolute one.
  const WhpOverlayResult r = run_whp_overlay(test_world());
  const auto by_count = r.rank_by_at_risk();
  const auto by_capita = r.rank_by_per_capita();
  EXPECT_NE(by_count, by_capita);
  // Some mountain-west state appears in the per-capita top 6.
  const auto& atlas = test_world().atlas();
  bool west_present = false;
  for (int i = 0; i < 6; ++i) {
    const auto abbr = atlas.states()[by_capita[i]].abbr;
    if (abbr == "UT" || abbr == "NV" || abbr == "NM" || abbr == "ID" ||
        abbr == "MT" || abbr == "WY") {
      west_present = true;
    }
  }
  EXPECT_TRUE(west_present);
}

// --- Section 3.5 / Tables 2-3 ----------------------------------------------

TEST(ProviderRisk, AttHasTheMostAtRiskInfrastructure) {
  const ProviderRiskResult r = run_provider_risk(test_world());
  const auto at_risk = [&](cellnet::Provider p) {
    const auto& row = r.rows[static_cast<std::size_t>(p)];
    return row.moderate + row.high + row.very_high;
  };
  EXPECT_GT(at_risk(cellnet::Provider::kAtt),
            at_risk(cellnet::Provider::kTMobile));
  EXPECT_GT(at_risk(cellnet::Provider::kTMobile),
            at_risk(cellnet::Provider::kSprint));
}

TEST(ProviderRisk, ModeratePctHighestVeryHighPctLowest) {
  // Table 2: for every provider, % in moderate > % in high > % in VH.
  const ProviderRiskResult r = run_provider_risk(test_world());
  for (const ProviderRiskRow& row : r.rows) {
    ASSERT_GT(row.fleet, 0u);
    EXPECT_GT(row.pct_moderate(), row.pct_high())
        << provider_name(row.provider);
    EXPECT_GT(row.pct_high(), row.pct_very_high())
        << provider_name(row.provider);
  }
}

TEST(ProviderRisk, SprintLeastExposedOfNationals) {
  // Table 2: Sprint's metro-heavy footprint gives it the lowest share of
  // fleet at risk among the four national carriers.
  const ProviderRiskResult r = run_provider_risk(test_world());
  const auto pct_m = [&](cellnet::Provider p) {
    return r.rows[static_cast<std::size_t>(p)].pct_moderate();
  };
  EXPECT_LT(pct_m(cellnet::Provider::kSprint), pct_m(cellnet::Provider::kAtt));
  EXPECT_LT(pct_m(cellnet::Provider::kSprint),
            pct_m(cellnet::Provider::kVerizon));
}

TEST(ProviderRisk, ManyRegionalBrandsExposed) {
  const ProviderRiskResult r = run_provider_risk(test_world());
  EXPECT_GE(r.regional_brands_at_risk, 20u);  // paper footnotes 46
}

TEST(RadioRisk, LteLeadsEveryClass) {
  // Table 3: LTE has the most at-risk transceivers in each WHP class.
  const RadioRiskResult r = run_radio_risk(test_world());
  const auto& lte = r.rows[static_cast<std::size_t>(cellnet::RadioType::kLte)];
  for (const RadioRiskRow& row : r.rows) {
    if (row.radio == cellnet::RadioType::kLte) continue;
    EXPECT_GE(lte.moderate, row.moderate);
    EXPECT_GE(lte.high, row.high);
    EXPECT_GE(lte.very_high, row.very_high);
  }
  EXPECT_GT(lte.total(), 0u);
  // No 5G in the 2019 snapshot.
  EXPECT_EQ(r.rows[static_cast<std::size_t>(cellnet::RadioType::kNr)].total(),
            0u);
}

TEST(RadioRisk, UmtsSecond) {
  const RadioRiskResult r = run_radio_risk(test_world());
  const auto total = [&](cellnet::RadioType t) {
    return r.rows[static_cast<std::size_t>(t)].total();
  };
  EXPECT_GT(total(cellnet::RadioType::kUmts), total(cellnet::RadioType::kCdma));
  EXPECT_GT(total(cellnet::RadioType::kUmts), total(cellnet::RadioType::kGsm));
}

// --- Section 3.6 / Figures 10-11 -------------------------------------------

TEST(PopulationImpact, MatrixSumsToAtRiskTotal) {
  const PopulationImpactResult r = run_population_impact(test_world());
  const WhpOverlayResult overlay = run_whp_overlay(test_world());
  // County resolution can drop a handful of transceivers.
  EXPECT_NEAR(static_cast<double>(r.at_risk_total()),
              static_cast<double>(overlay.total_at_risk()),
              static_cast<double>(overlay.total_at_risk()) * 0.02);
}

TEST(PopulationImpact, ServedPopulationIsLarge) {
  // Paper: the counties served by at-risk transceivers hold > 85M people.
  const PopulationImpactResult r = run_population_impact(test_world());
  EXPECT_GT(r.population_served, 50e6);
  EXPECT_LT(r.population_served, 330e6);
}

TEST(PopulationImpact, VeryDenseCountiesHoldSubstantialRisk) {
  // Paper: 57,504 of ~431k at-risk transceivers (13%) sit in counties
  // over 1.5M people.
  const PopulationImpactResult r = run_population_impact(test_world());
  const double share = static_cast<double>(r.at_risk_pop_vh()) /
                       std::max<std::size_t>(1, r.at_risk_total());
  EXPECT_GT(share, 0.03);
  EXPECT_LT(share, 0.55);
}

TEST(PopulationImpact, VhMapIsDominatedByKnownMetros) {
  // Fig 11 right: LA + San Diego dominate; Miami and the Bay Area appear.
  const auto rows = very_high_by_major_county(test_world());
  ASSERT_FALSE(rows.empty());
  bool la_top3 = false;
  for (std::size_t i = 0; i < rows.size() && i < 3; ++i) {
    if (rows[i].county == "Los Angeles County" ||
        rows[i].county == "San Diego County" ||
        rows[i].county == "Riverside County" ||
        rows[i].county == "San Bernardino County") {
      la_top3 = true;
    }
  }
  EXPECT_TRUE(la_top3);
}

// --- Section 3.7 / Figures 12-13 -------------------------------------------

TEST(MetroRisk, RowsSortedAndNonEmpty) {
  const auto rows = run_metro_risk(test_world());
  ASSERT_GT(rows.size(), 10u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1].total(), rows[i].total());
  }
}

TEST(MetroRisk, CaliforniaMetrosNearTheTop) {
  // Paper: LA, SD, SF/San Jose, Sacramento and the Florida metros carry
  // the most at-risk infrastructure.
  const auto rows = run_metro_risk(test_world());
  bool ca_or_fl_first = rows[0].state_abbr == "CA" ||
                        rows[0].state_abbr == "FL";
  EXPECT_TRUE(ca_or_fl_first) << rows[0].metro;
  std::size_t ca_in_top8 = 0;
  for (std::size_t i = 0; i < rows.size() && i < 8; ++i) {
    if (rows[i].state_abbr == "CA") ++ca_in_top8;
  }
  EXPECT_GE(ca_in_top8, 2u);
}

TEST(MetroRisk, GradientRisesAwayFromCenter) {
  // Figure 13: risk share increases with distance from the metro core.
  const auto rings = metro_risk_gradient(test_world(),
                                         {-118.244, 34.052});  // LA
  ASSERT_GE(rings.size(), 6u);
  const double inner = rings[0].at_risk_share();
  double outer_max = 0.0;
  for (std::size_t i = 3; i < rings.size(); ++i) {
    outer_max = std::max(outer_max, rings[i].at_risk_share());
  }
  EXPECT_GT(outer_max, inner + 0.05);
  EXPECT_LT(rings[0].at_risk_share(), 0.2);  // core is non-burnable
}

// --- Figure 3 geography ------------------------------------------------------

TEST(BurnedByState, WestDominatesAndRowsSorted) {
  // One shrunk season is enough for the geographic claim.
  synth::FireYearStats year{2018, 58083, 2.0, 3099, 353};
  const BurnedByStateResult r =
      burned_by_state(test_world(), std::span{&year, 1});
  ASSERT_FALSE(r.rows.empty());
  EXPECT_GT(r.total_acres, 1e6);
  // Figure 3: fires concentrated in the west.
  EXPECT_GT(r.west_share, 0.6);
  for (std::size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_GE(r.rows[i - 1].acres, r.rows[i].acres);
  }
  // The top state is a high-propensity one.
  EXPECT_GE(test_world()
                .atlas()
                .states()[static_cast<std::size_t>(r.rows[0].state)]
                .fire_propensity,
            0.55);
}

}  // namespace
}  // namespace fa::core

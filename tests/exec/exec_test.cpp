// fa::exec contract tests: deterministic chunking, thread-count-invariant
// results (including float reductions), exception propagation, nested
// regions, and the scratch/limit utilities.
#include "exec/exec.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace fa::exec {
namespace {

TEST(ChunkPlanTest, CoversRangeExactlyOnce) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{1000}, std::size_t{1 << 20}}) {
    for (const std::size_t grain : {std::size_t{1}, std::size_t{64},
                                    std::size_t{1024}}) {
      const ChunkPlan plan = ChunkPlan::make(n, grain);
      std::size_t covered = 0;
      std::size_t expected_begin = 0;
      for (std::size_t c = 0; c < plan.chunks; ++c) {
        const auto [begin, end] = plan.bounds(c);
        EXPECT_EQ(begin, expected_begin);
        EXPECT_LE(begin, end);
        covered += end - begin;
        expected_begin = end;
      }
      EXPECT_EQ(covered, n) << "n=" << n << " grain=" << grain;
      if (n > 0) EXPECT_GE(plan.chunks, 1u);
    }
  }
}

TEST(ChunkPlanTest, ChunkCountIsCapped) {
  const ChunkPlan plan = ChunkPlan::make(std::size_t{1} << 30, 1);
  EXPECT_EQ(plan.chunks, kMaxChunks);
}

TEST(ChunkPlanTest, RespectsGrain) {
  const ChunkPlan plan = ChunkPlan::make(10000, 1000);
  EXPECT_EQ(plan.chunks, 10u);
}

TEST(ConcurrencyLimitTest, NestsAndRestores) {
  EXPECT_EQ(ConcurrencyLimit::current(), 0);
  {
    ConcurrencyLimit outer(4);
    EXPECT_EQ(ConcurrencyLimit::current(), 4);
    {
      ConcurrencyLimit inner(1);
      EXPECT_EQ(ConcurrencyLimit::current(), 1);
    }
    EXPECT_EQ(ConcurrencyLimit::current(), 4);
  }
  EXPECT_EQ(ConcurrencyLimit::current(), 0);
}

TEST(ParallelForTest, VisitsEveryIndexOnce) {
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> visits(n);
  parallel_for(n, [&visits](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, IdenticalResultsAcrossThreadCounts) {
  const std::size_t n = 50000;
  const auto run = [n](int threads) {
    ConcurrencyLimit limit(threads);
    std::vector<double> out(n);
    parallel_for(
        n, [&out](std::size_t i) { out[i] = std::sqrt(static_cast<double>(i)); },
        {.grain = 128});
    return out;
  };
  const std::vector<double> serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(0, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForChunksTest, ChunksMatchThePlan) {
  const std::size_t n = 10000;
  const ExecOptions opt{.grain = 256};
  const ChunkPlan plan = ChunkPlan::make(n, opt.grain);
  std::vector<std::atomic<int>> seen(plan.chunks);
  parallel_for_chunks(
      n,
      [&](std::size_t begin, std::size_t end, ChunkContext ctx) {
        const auto [eb, ee] = plan.bounds(ctx.chunk);
        EXPECT_EQ(begin, eb);
        EXPECT_EQ(end, ee);
        seen[ctx.chunk].fetch_add(1, std::memory_order_relaxed);
      },
      opt);
  for (std::size_t c = 0; c < plan.chunks; ++c) {
    EXPECT_EQ(seen[c].load(), 1) << "chunk " << c;
  }
}

TEST(ParallelReduceTest, IntegerSumMatchesSerial) {
  const std::size_t n = 123457;
  const auto total = parallel_reduce(
      n, std::uint64_t{0},
      [](std::size_t begin, std::size_t end, std::uint64_t& acc) {
        for (std::size_t i = begin; i < end; ++i) acc += i;
      },
      [](std::uint64_t& into, std::uint64_t&& part) { into += part; });
  EXPECT_EQ(total, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(ParallelReduceTest, FloatReductionBitIdenticalAcrossThreadCounts) {
  // Floating-point addition is not associative; the contract holds anyway
  // because partials are combined serially in chunk order.
  const std::size_t n = 200000;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = std::sin(static_cast<double>(i)) * 1e-3 + 1.0 / (i + 1.0);
  }
  const auto run = [&values](int threads) {
    ConcurrencyLimit limit(threads);
    return parallel_reduce(
        values.size(), 0.0,
        [&values](std::size_t begin, std::size_t end, double& acc) {
          for (std::size_t i = begin; i < end; ++i) acc += values[i];
        },
        [](double& into, double&& part) { into += part; }, {.grain = 512});
  };
  const double serial = run(1);
  EXPECT_EQ(serial, run(2));  // bitwise, not EXPECT_DOUBLE_EQ
  EXPECT_EQ(serial, run(8));
}

TEST(ParallelReduceTest, VectorPartialsCombineInChunkOrder) {
  const std::size_t n = 10000;
  const ExecOptions opt{.grain = 64};
  const auto out = parallel_reduce(
      n, std::vector<std::size_t>{},
      [](std::size_t begin, std::size_t end, std::vector<std::size_t>& acc) {
        for (std::size_t i = begin; i < end; ++i) acc.push_back(i);
      },
      [](std::vector<std::size_t>& into, std::vector<std::size_t>&& part) {
        into.insert(into.end(), part.begin(), part.end());
      },
      opt);
  ASSERT_EQ(out.size(), n);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], i);  // sorted order
}

TEST(ExceptionTest, PropagatesToCaller) {
  EXPECT_THROW(
      parallel_for(
          10000,
          [](std::size_t i) {
            if (i == 4242) throw std::runtime_error("chunk failure");
          },
          {.grain = 16}),
      std::runtime_error);
}

TEST(ExceptionTest, PoolIsUsableAfterAFailedRegion) {
  try {
    parallel_for(1000, [](std::size_t) { throw std::runtime_error("boom"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<std::size_t> count{0};
  parallel_for(1000, [&count](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 1000u);
}

TEST(ExceptionTest, SerialInlinePathPropagatesToo) {
  ConcurrencyLimit limit(1);
  EXPECT_THROW(parallel_for(100,
                            [](std::size_t i) {
                              if (i == 50) throw std::logic_error("serial");
                            }),
               std::logic_error);
}

TEST(NestedTest, InnerRegionRunsInlineAndCorrectly) {
  const std::size_t outer_n = 64;
  const std::size_t inner_n = 1000;
  std::vector<std::uint64_t> sums(outer_n, 0);
  parallel_for(
      outer_n,
      [&sums, inner_n](std::size_t o) {
        // Nested region: must not deadlock or re-enter the pool.
        sums[o] = parallel_reduce(
            inner_n, std::uint64_t{0},
            [o](std::size_t begin, std::size_t end, std::uint64_t& acc) {
              for (std::size_t i = begin; i < end; ++i) acc += i + o;
            },
            [](std::uint64_t& into, std::uint64_t&& part) { into += part; });
      },
      {.grain = 1});
  const std::uint64_t base = inner_n * (inner_n - 1) / 2;
  for (std::size_t o = 0; o < outer_n; ++o) {
    EXPECT_EQ(sums[o], base + o * inner_n) << "outer " << o;
  }
}

TEST(WorkerScratchTest, OneSlotPerWorkerBuffersAreReused) {
  WorkerScratch<std::vector<int>> scratch;
  EXPECT_EQ(scratch.size(),
            static_cast<std::size_t>(ThreadPool::global().max_workers()));
  std::atomic<std::size_t> total{0};
  parallel_for_chunks(
      100000,
      [&](std::size_t begin, std::size_t end, ChunkContext ctx) {
        std::vector<int>& buf = scratch.at(ctx.worker);
        buf.clear();
        for (std::size_t i = begin; i < end; ++i) {
          buf.push_back(static_cast<int>(i & 7));
        }
        total.fetch_add(buf.size(), std::memory_order_relaxed);
      },
      {.grain = 512});
  EXPECT_EQ(total.load(), 100000u);
}

TEST(ThreadPoolTest, DefaultPoolHasSweepHeadroom) {
  // The default pool keeps >= kMinDefaultWorkers workers so thread-count
  // sweeps exercise real multi-worker scheduling even on 1-CPU hosts.
  EXPECT_GE(ThreadPool::global().max_workers(), ThreadPool::kMinDefaultWorkers);
}

TEST(ParallelForTest, MinParallelKeepsTinyRegionsOnCallingThread) {
  // The serve batcher's latency hook: below the threshold the region
  // runs serially on the caller (no worker wakeup), above it the pool
  // dispatches as usual. Results are identical either way.
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(8);
  parallel_for(
      ids.size(),
      [&ids](std::size_t i) { ids[i] = std::this_thread::get_id(); },
      {.grain = 1, .min_parallel = 16});
  for (const std::thread::id& id : ids) EXPECT_EQ(id, caller);

  std::vector<int> with(1000);
  std::vector<int> without(1000);
  const auto fill = [](std::vector<int>& out) {
    return [&out](std::size_t i) { out[i] = static_cast<int>(i * 7 % 13); };
  };
  parallel_for(with.size(), fill(with), {.grain = 16, .min_parallel = 64});
  parallel_for(without.size(), fill(without), {.grain = 16});
  EXPECT_EQ(with, without);
}

TEST(ThreadPoolTest, OffWorkerThreadByDefault) {
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  bool inside = false;
  parallel_for(1, [&inside](std::size_t) {
    inside = ThreadPool::on_worker_thread();
  });
  EXPECT_TRUE(inside);
  EXPECT_FALSE(ThreadPool::on_worker_thread());
}

}  // namespace
}  // namespace fa::exec

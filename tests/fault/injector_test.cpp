#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

namespace fa::fault {
namespace {

Injector make(const std::string& spec) {
  return Injector::parse(spec).take();
}

TEST(InjectorParse, AcceptsSeedAndRules) {
  const Injector inj = make("seed=42,ingest.txr=0.01, exec.*=0.5 ");
  EXPECT_TRUE(inj.armed());
  EXPECT_EQ(inj.seed(), 42u);
  ASSERT_EQ(inj.rules().size(), 2u);
  EXPECT_EQ(inj.rules()[0].site, "ingest.txr");
  EXPECT_DOUBLE_EQ(inj.rules()[0].probability, 0.01);
  EXPECT_EQ(inj.rules()[1].site, "exec.*");
}

TEST(InjectorParse, EmptySpecIsDisarmed) {
  EXPECT_FALSE(make("").armed());
  EXPECT_FALSE(make("seed=9").armed());  // a seed alone arms nothing
}

TEST(InjectorParse, RejectsMalformedTokens) {
  const auto no_eq = Injector::parse("seed=1,bogus");
  ASSERT_FALSE(no_eq.ok());
  EXPECT_EQ(no_eq.status().code, ErrCode::kParse);
  EXPECT_EQ(no_eq.status().offset, 2u);  // 1-based token index
  EXPECT_EQ(no_eq.status().source, "fa_faults");

  const auto bad_seed = Injector::parse("seed=banana");
  ASSERT_FALSE(bad_seed.ok());
  EXPECT_EQ(bad_seed.status().code, ErrCode::kParse);

  const auto bad_prob = Injector::parse("ingest.txr=1.5");
  ASSERT_FALSE(bad_prob.ok());
  EXPECT_EQ(bad_prob.status().code, ErrCode::kOutOfRange);

  const auto neg_prob = Injector::parse("ingest.txr=-0.1");
  ASSERT_FALSE(neg_prob.ok());
  EXPECT_EQ(neg_prob.status().code, ErrCode::kOutOfRange);
}

TEST(InjectorMatch, ExactBeatsPrefixAndLongestPrefixWins) {
  const Injector inj =
      make("seed=1,exec.*=0.5,exec.chunk=1,synth.*=0.25,synth.c*=0.75");
  EXPECT_DOUBLE_EQ(inj.probability("exec.chunk"), 1.0);
  EXPECT_DOUBLE_EQ(inj.probability("exec.other"), 0.5);
  EXPECT_DOUBLE_EQ(inj.probability("synth.whp"), 0.25);
  EXPECT_DOUBLE_EQ(inj.probability("synth.corpus"), 0.75);
  EXPECT_DOUBLE_EQ(inj.probability("ingest.txr"), 0.0);
}

TEST(InjectorFires, DeterministicAndSeedSensitive) {
  const Injector a = make("seed=7,site=0.25");
  const Injector b = make("seed=7,site=0.25");
  const Injector c = make("seed=8,site=0.25");
  std::size_t fires_a = 0, agree_ab = 0, agree_ac = 0;
  const std::size_t n = 10000;
  for (std::size_t k = 0; k < n; ++k) {
    const bool fa_ = a.fires("site", k);
    fires_a += fa_ ? 1u : 0u;
    agree_ab += (fa_ == b.fires("site", k)) ? 1u : 0u;
    agree_ac += (fa_ == c.fires("site", k)) ? 1u : 0u;
  }
  EXPECT_EQ(agree_ab, n);  // identical specs decide identically
  EXPECT_LT(agree_ac, n);  // a different seed decides differently somewhere
  // The empirical rate tracks the configured probability.
  EXPECT_NEAR(static_cast<double>(fires_a) / static_cast<double>(n), 0.25,
              0.03);
}

TEST(InjectorFires, ProbabilityEndpoints) {
  const Injector always = make("seed=3,site=1");
  const Injector never = make("seed=3,site=0");
  for (std::size_t k = 0; k < 100; ++k) {
    EXPECT_TRUE(always.fires("site", k));
    EXPECT_FALSE(never.fires("site", k));
  }
  EXPECT_FALSE(Injector{}.fires("site", 0));  // disarmed
}

TEST(InjectorFailPoint, ThrowsInjectedFaultWithSiteAndKey) {
  const Injector inj = make("seed=1,seam=1");
  try {
    inj.fail_point("seam", 17);
    FAIL() << "armed fail_point must throw";
  } catch (const InjectedFault& e) {
    EXPECT_EQ(e.code(), ErrCode::kInjected);
    EXPECT_EQ(e.status().source, "seam");
    EXPECT_EQ(e.status().offset, 17u);
  }
  EXPECT_NO_THROW(inj.fail_point("other.site", 17));
}

TEST(InjectorCorruptBytes, DeterministicAndActuallyCorrupts) {
  const Injector inj = make("seed=11,doc=0.02");
  const std::string doc(500, 'a');
  const std::string once = inj.corrupt_bytes(doc, "doc", 1);
  const std::string again = inj.corrupt_bytes(doc, "doc", 1);
  const std::string other_key = inj.corrupt_bytes(doc, "doc", 2);
  EXPECT_EQ(once, again);
  EXPECT_NE(once, doc);
  EXPECT_NE(once, other_key);
  // Unarmed site: untouched.
  EXPECT_EQ(inj.corrupt_bytes(doc, "elsewhere", 1), doc);
}

TEST(InjectorTruncate, KeepsAStrictPrefix) {
  const Injector inj = make("seed=11,doc=1");
  const std::string doc = "0123456789";
  const std::string cut = inj.truncate(doc, "doc", 3);
  EXPECT_LT(cut.size(), doc.size());
  EXPECT_EQ(doc.substr(0, cut.size()), cut);
  EXPECT_EQ(inj.truncate(doc, "doc", 3), cut);  // deterministic
}

TEST(InjectorCorruptFields, ReplacesExactlyOneField) {
  const Injector inj = make("seed=2,row=1");
  const std::vector<std::string> row = {"LTE", "310", "410", "-118.0", "34.0"};
  std::vector<std::string> mutated = row;
  inj.corrupt_fields(mutated, "row", 5);
  ASSERT_EQ(mutated.size(), row.size());
  std::size_t changed = 0;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (mutated[i] != row[i]) ++changed;
  }
  EXPECT_EQ(changed, 1u);
}

TEST(ScopedInjector, InstallsAndRestoresTheGlobal) {
  const double before = Injector::global().probability("scoped.site");
  {
    const ScopedInjector scope(make("seed=5,scoped.site=1"));
    EXPECT_DOUBLE_EQ(Injector::global().probability("scoped.site"), 1.0);
    EXPECT_TRUE(Injector::global().fires("scoped.site", 0));
  }
  EXPECT_DOUBLE_EQ(Injector::global().probability("scoped.site"), before);
}

}  // namespace
}  // namespace fa::fault

// The exec.chunk seam: an armed injector forces task failures inside
// fa::exec regions; the pool must propagate them as InjectedFault on the
// calling thread, never hang, and stay fully usable afterwards.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "exec/exec.hpp"
#include "fault/injector.hpp"

namespace fa::exec {
namespace {

using fault::Injector;
using fault::InjectedFault;
using fault::ScopedInjector;

TEST(ExecFault, ArmedChunkSeamPropagatesInjectedFault) {
  const ScopedInjector scope(Injector::parse("seed=1,exec.chunk=1").take());
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(
      parallel_for(
          10000, [&executed](std::size_t) { executed.fetch_add(1); },
          {.grain = 64}),
      InjectedFault);
  // Cancellation is best-effort, but with p=1 every chunk's fail point
  // fires before its body, so no iteration may have run.
  EXPECT_EQ(executed.load(), 0u);
}

TEST(ExecFault, SerialInlinePathHitsTheSameSeam) {
  const ScopedInjector scope(Injector::parse("seed=1,exec.chunk=1").take());
  const ConcurrencyLimit serial(1);
  EXPECT_THROW(parallel_for(100, [](std::size_t) {}, {.grain = 10}),
               InjectedFault);
}

TEST(ExecFault, PartialProbabilityFailsDeterministically) {
  // Which chunks fire is a pure function of (seed, site, chunk): the
  // thrown fault's offset must be one of the predicted chunks, at any
  // thread count.
  const Injector inj = Injector::parse("seed=77,exec.chunk=0.05").take();
  std::vector<std::uint64_t> firing;
  for (std::uint64_t chunk = 0; chunk < 100; ++chunk) {
    if (inj.fires("exec.chunk", chunk)) firing.push_back(chunk);
  }
  ASSERT_FALSE(firing.empty()) << "pick a seed that fires at least once";

  const ScopedInjector scope(Injector::parse("seed=77,exec.chunk=0.05").take());
  for (const int threads : {1, 4}) {
    try {
      parallel_for(
          100 * 64, [](std::size_t) {},
          {.grain = 64, .max_threads = threads});
      FAIL() << "expected an injected fault";
    } catch (const InjectedFault& e) {
      EXPECT_EQ(e.status().source, "exec.chunk");
      EXPECT_NE(std::find(firing.begin(), firing.end(), e.status().offset),
                firing.end())
          << "fault fired at unpredicted chunk " << e.status().offset;
    }
  }
}

TEST(ExecFault, PoolStaysUsableAfterInjectedFailure) {
  {
    const ScopedInjector scope(Injector::parse("seed=3,exec.chunk=1").take());
    EXPECT_THROW(parallel_for(1000, [](std::size_t) {}, {.grain = 16}),
                 InjectedFault);
  }
  // Injector restored: the same region now completes and is correct.
  std::vector<int> hits(1000, 0);
  parallel_for(hits.size(), [&hits](std::size_t i) { hits[i] = 1; },
               {.grain = 16});
  for (const int h : hits) ASSERT_EQ(h, 1);
}

TEST(ExecFault, ReduceSurvivesAndRecovers) {
  {
    const ScopedInjector scope(Injector::parse("seed=9,exec.chunk=1").take());
    EXPECT_THROW(
        parallel_reduce(
            512, std::size_t{0},
            [](std::size_t b, std::size_t e, std::size_t& acc) {
              acc += e - b;
            },
            [](std::size_t& into, std::size_t&& part) { into += part; },
            {.grain = 32}),
        InjectedFault);
  }
  const std::size_t total = parallel_reduce(
      512, std::size_t{0},
      [](std::size_t b, std::size_t e, std::size_t& acc) { acc += e - b; },
      [](std::size_t& into, std::size_t&& part) { into += part; },
      {.grain = 32});
  EXPECT_EQ(total, 512u);
}

}  // namespace
}  // namespace fa::exec

#include "fault/status.hpp"

#include <gtest/gtest.h>

#include <string>

#include "fault/diagnostics.hpp"

namespace fa::fault {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code, ErrCode::kOk);
}

TEST(Status, ToStringPinpointsTheFailure) {
  const Status s =
      Status::error(ErrCode::kParse, 42, "wkt", "bad number");
  EXPECT_FALSE(s.ok());
  const std::string text = s.to_string();
  EXPECT_NE(text.find("wkt"), std::string::npos);
  EXPECT_NE(text.find("bad number"), std::string::npos);
  EXPECT_NE(text.find("parse"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(Status, CodeNamesRoundTrip) {
  const ErrCode codes[] = {ErrCode::kOk,        ErrCode::kParse,
                           ErrCode::kTruncated, ErrCode::kBadMagic,
                           ErrCode::kSchema,    ErrCode::kOutOfRange,
                           ErrCode::kLimit,     ErrCode::kIoFailure,
                           ErrCode::kInjected};
  for (const ErrCode code : codes) {
    const auto back = err_code_from_name(err_code_name(code));
    ASSERT_TRUE(back.has_value()) << err_code_name(code);
    EXPECT_EQ(*back, code);
  }
  EXPECT_FALSE(err_code_from_name("definitely_not_a_code").has_value());
}

TEST(Result, ValueAccessAndTake) {
  Result<int> r{7};
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 7);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(std::move(r).take(), 7);
}

TEST(Result, ErrorAccessThrowsIoErrorWithStatus) {
  Result<int> r{Status::error(ErrCode::kSchema, 3, "csv", "short row")};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code, ErrCode::kSchema);
  EXPECT_EQ(r.status().offset, 3u);
  try {
    (void)r.value();
    FAIL() << "value() on an error Result must throw";
  } catch (const IoError& e) {
    EXPECT_EQ(e.code(), ErrCode::kSchema);
    EXPECT_EQ(e.status().source, "csv");
    EXPECT_NE(std::string(e.what()).find("short row"), std::string::npos);
  }
}

TEST(Result, ValueOrFallsBack) {
  EXPECT_EQ((Result<int>{Status::error(ErrCode::kParse, 0, "x", "y")})
                .value_or(-1),
            -1);
  EXPECT_EQ((Result<int>{5}).value_or(-1), 5);
}

TEST(IoError, IsARuntimeErrorAndInjectedFaultIsAnIoError) {
  const IoError e(ErrCode::kBadMagic, "fagrid", "bad magic");
  EXPECT_NE(dynamic_cast<const std::runtime_error*>(&e), nullptr);
  const InjectedFault f(ErrCode::kInjected, "exec.chunk", "injected");
  EXPECT_NE(dynamic_cast<const IoError*>(&f), nullptr);
}

TEST(RecoveryPolicy, NamesRoundTrip) {
  const RecoveryPolicy policies[] = {RecoveryPolicy::kStrict,
                                     RecoveryPolicy::kQuarantine,
                                     RecoveryPolicy::kBestEffort};
  for (const RecoveryPolicy p : policies) {
    const auto back = recovery_policy_from_name(recovery_policy_name(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
  EXPECT_EQ(recovery_policy_from_name("besteffort"),
            RecoveryPolicy::kBestEffort);
  EXPECT_FALSE(recovery_policy_from_name("lenient").has_value());
}

TEST(Diagnostics, CountsPerSourceExactly) {
  Diagnostics d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.summary(), "clean");
  d.dropped(Status::error(ErrCode::kOutOfRange, 1, "ingest.txr", "bad"));
  d.dropped(Status::error(ErrCode::kOutOfRange, 2, "ingest.txr", "bad"));
  d.dropped(Status::error(ErrCode::kSchema, 5, "opencellid", "short"));
  d.repaired(Status::error(ErrCode::kOutOfRange, 9, "opencellid", "clamp"));
  EXPECT_EQ(d.total_dropped(), 3u);
  EXPECT_EQ(d.total_repaired(), 1u);
  EXPECT_EQ(d.dropped_in("ingest.txr"), 2u);
  EXPECT_EQ(d.dropped_in("opencellid"), 1u);
  EXPECT_EQ(d.repaired_in("opencellid"), 1u);
  EXPECT_EQ(d.dropped_in("nowhere"), 0u);
  EXPECT_EQ(d.count(Severity::kWarning), 3u);
  EXPECT_EQ(d.count(Severity::kInfo), 1u);
  const std::string sum = d.summary();
  EXPECT_NE(sum.find("3 dropped"), std::string::npos);
  EXPECT_NE(sum.find("1 repaired"), std::string::npos);
  EXPECT_NE(sum.find("ingest.txr"), std::string::npos);
  d.clear();
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.total_dropped(), 0u);
}

TEST(Diagnostics, RecordStorageIsCappedButCountsAreNot) {
  Diagnostics d;
  const std::size_t n = Diagnostics::kMaxStoredRecords + 100;
  for (std::size_t i = 0; i < n; ++i) {
    d.dropped(Status::error(ErrCode::kParse, i, "csv", "bad"));
  }
  EXPECT_EQ(d.total_dropped(), n);
  EXPECT_EQ(d.records().size(), Diagnostics::kMaxStoredRecords);
  EXPECT_EQ(d.records().front().status.offset, 0u);
}

}  // namespace
}  // namespace fa::fault

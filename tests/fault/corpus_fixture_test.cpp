// The corrupt-fixture corpus: every file under tests/fault/corpus is a
// deliberately malformed input with a manifest entry naming the exact
// Status code the matching parser must produce. Catches error-model
// regressions (wrong code, wrong exception, crash) format by format.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "cellnet/corpus.hpp"
#include "fault/status.hpp"
#include "io/csv.hpp"
#include "io/fagrid.hpp"
#include "io/geojson.hpp"
#include "io/json.hpp"
#include "io/wkt.hpp"

namespace fa {
namespace {

std::string corpus_path(const std::string& file) {
  return std::string(FA_FAULT_CORPUS_DIR) + "/" + file;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Runs the parser named by `format` over the fixture, reducing every
// outcome to a Status. GeoJSON fixtures must be valid JSON — the schema
// failure has to come from the geometry layer, not the JSON one.
fault::Status parse_fixture(const std::string& format,
                            const std::string& file) {
  const std::string path = corpus_path(file);
  if (format == "fagrid") {
    return io::try_load_fagrid(path).status();
  }
  if (format == "opencellid") {
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << path;
    cellnet::CorpusLoadOptions opts;
    opts.policy = fault::RecoveryPolicy::kStrict;
    return cellnet::load_opencellid_csv(in, opts).status();
  }
  const std::string text = slurp(path);
  if (format == "wkt_point") return io::try_parse_wkt_point(text).status();
  if (format == "wkt_poly") return io::try_parse_wkt_polygon(text).status();
  if (format == "wkt_mp") {
    return io::try_parse_wkt_multipolygon(text).status();
  }
  if (format == "json") return io::try_parse_json(text).status();
  if (format.rfind("geojson_", 0) == 0) {
    fault::Result<io::JsonValue> doc = io::try_parse_json(text);
    EXPECT_TRUE(doc.ok()) << file << ": geojson fixtures must be valid JSON";
    if (!doc.ok()) return doc.status();
    if (format == "geojson_point") {
      return io::try_parse_point_geometry(doc.value()).status();
    }
    if (format == "geojson_poly") {
      return io::try_parse_polygon_geometry(doc.value()).status();
    }
    return io::try_parse_multipolygon_geometry(doc.value()).status();
  }
  ADD_FAILURE() << "unknown fixture format: " << format;
  return {};
}

TEST(FaultCorpus, EveryFixtureFailsWithItsManifestCode) {
  std::ifstream manifest(corpus_path("manifest.csv"));
  ASSERT_TRUE(manifest.is_open()) << "missing manifest.csv";
  io::CsvReader reader(manifest);
  const int c_file = reader.column("file");
  const int c_format = reader.column("format");
  const int c_code = reader.column("expected_code");
  ASSERT_GE(c_file, 0);
  ASSERT_GE(c_format, 0);
  ASSERT_GE(c_code, 0);

  std::size_t fixtures = 0;
  while (auto row = reader.next()) {
    const std::string& file = (*row)[static_cast<std::size_t>(c_file)];
    const std::string& format = (*row)[static_cast<std::size_t>(c_format)];
    const std::string& code = (*row)[static_cast<std::size_t>(c_code)];
    SCOPED_TRACE(file);
    ++fixtures;

    const auto expected = fault::err_code_from_name(code);
    ASSERT_TRUE(expected.has_value()) << "manifest names unknown code " << code;

    const fault::Status status = parse_fixture(format, file);
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code, *expected)
        << "got " << fault::err_code_name(status.code) << " ("
        << status.to_string() << ")";
    EXPECT_FALSE(status.source.empty());
  }
  EXPECT_GE(fixtures, 30u) << "fixture corpus shrank";
}

}  // namespace
}  // namespace fa

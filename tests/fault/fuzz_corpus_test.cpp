// Deterministic mini-fuzzer driven by the fault injector's own byte
// mutators: N=1000 mutated documents per format, every one of which must
// produce either a value or an error Status — never a crash, hang, or
// foreign exception. (Run the fault suite under FA_SANITIZE=address for
// full value; see .claude/skills/verify/SKILL.md.)
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "cellnet/corpus.hpp"
#include "fault/injector.hpp"
#include "io/fagrid.hpp"
#include "io/json.hpp"
#include "io/wkt.hpp"
#include "raster/raster.hpp"

namespace fa {
namespace {

constexpr int kIterations = 1000;

// One injector per format so mutation streams are independent; the
// higher-probability truncation pass exercises the kTruncated paths.
fault::Injector fuzzer(std::uint64_t seed) {
  return fault::Injector::parse("seed=" + std::to_string(seed) +
                                ",fuzz.bytes=0.03,fuzz.cut=1")
      .take();
}

// Mutates `doc` for trial `i`: always a byte-level pass, and every 4th
// trial a truncation on top.
std::string mutate(const fault::Injector& inj, const std::string& doc,
                   int i) {
  std::string out =
      inj.corrupt_bytes(doc, "fuzz.bytes", static_cast<std::uint64_t>(i));
  if (i % 4 == 0) {
    out = inj.truncate(std::move(out), "fuzz.cut",
                       static_cast<std::uint64_t>(i));
  }
  return out;
}

TEST(FuzzCorpusWkt, ErrorOrValueNeverCrash) {
  const fault::Injector inj = fuzzer(101);
  const std::string seed_doc =
      "MULTIPOLYGON (((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 2 1, 2 2, 1 2, 1 1)),"
      " ((10 10, 12 10, 12 12, 10 12, 10 10)))";
  int ok = 0, rejected = 0;
  for (int i = 0; i < kIterations; ++i) {
    const auto result = io::try_parse_wkt_multipolygon(mutate(inj, seed_doc, i));
    if (result.ok()) {
      EXPECT_GE(result.value().area(), 0.0);
      ++ok;
    } else {
      EXPECT_FALSE(result.status().ok());
      EXPECT_EQ(result.status().source, "wkt");
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, kIterations);
  EXPECT_GT(rejected, 0);
}

TEST(FuzzCorpusJson, ErrorOrValueNeverCrash) {
  const fault::Injector inj = fuzzer(202);
  const std::string seed_doc =
      R"({"fires":[{"name":"Kincade","acres":77000,"days":[1,2,3]},null,true],)"
      R"("year":2019,"note":"escaped \"quotes\" and é"})";
  int ok = 0, rejected = 0;
  for (int i = 0; i < kIterations; ++i) {
    const auto result = io::try_parse_json(mutate(inj, seed_doc, i));
    if (result.ok()) {
      // Whatever parsed must re-serialize and re-parse stably.
      EXPECT_TRUE(io::try_parse_json(io::to_json(result.value())).ok());
      ++ok;
    } else {
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, kIterations);
  EXPECT_GT(rejected, 0);
}

TEST(FuzzCorpusFagrid, ErrorOrValueNeverCrash) {
  const fault::Injector inj = fuzzer(303);
  std::string seed_doc;
  {
    raster::GridGeometry g;
    g.cell_w = g.cell_h = 270.0;
    g.cols = 6;
    g.rows = 5;
    std::ostringstream out;
    io::write_fagrid(out, raster::ClassRaster(g, 3));
    seed_doc = out.str();
  }
  int ok = 0, rejected = 0;
  for (int i = 0; i < kIterations; ++i) {
    std::istringstream in(mutate(inj, seed_doc, i));
    const auto result = io::try_read_fagrid(in);
    if (result.ok()) {
      EXPECT_GT(result.value().size(), 0u);
      ++ok;
    } else {
      EXPECT_NE(result.status().code, fault::ErrCode::kOk);
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, kIterations);
  EXPECT_GT(rejected, 0);
}

TEST(FuzzCorpusOpenCellId, EveryPolicyIsTotal) {
  const fault::Injector inj = fuzzer(404);
  std::string seed_doc;
  {
    cellnet::Transceiver t;
    t.position = {-118.0, 34.0};
    t.mcc = 310;
    t.mnc = 410;
    std::ostringstream out;
    write_opencellid_csv(out, cellnet::CellCorpus{{t, t, t, t}});
    seed_doc = out.str();
  }
  const fault::RecoveryPolicy policies[] = {
      fault::RecoveryPolicy::kStrict, fault::RecoveryPolicy::kQuarantine,
      fault::RecoveryPolicy::kBestEffort};
  for (int i = 0; i < kIterations; ++i) {
    const std::string doc = mutate(inj, seed_doc, i);
    for (const fault::RecoveryPolicy policy : policies) {
      std::istringstream in(doc);
      fault::Diagnostics diags;
      cellnet::CorpusLoadOptions opts;
      opts.policy = policy;
      opts.diagnostics = &diags;
      const auto result = cellnet::load_opencellid_csv(in, opts);
      if (result.ok()) {
        EXPECT_LE(result.value().size(), 6u);
      } else {
        EXPECT_NE(result.status().code, fault::ErrCode::kOk);
      }
    }
  }
}

}  // namespace
}  // namespace fa

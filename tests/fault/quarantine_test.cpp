// Degraded-mode ingestion end to end: Strict fails cleanly with the
// right code and offset, Quarantine converges to the pre-filtered clean
// run byte for byte with exact drop counts, BestEffort repairs the
// repairable subset, and no fault spec can take a build down.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "cellnet/corpus.hpp"
#include "core/analysis_context.hpp"
#include "core/provider_risk.hpp"
#include "core/report.hpp"
#include "core/world.hpp"
#include "fault/injector.hpp"
#include "synth/cells.hpp"

namespace fa::core {
namespace {

using fault::Diagnostics;
using fault::ErrCode;
using fault::Injector;
using fault::RecoveryPolicy;
using fault::ScopedInjector;

constexpr char kSpec[] = "seed=5,ingest.txr=0.01";

synth::ScenarioConfig small_config() {
  synth::ScenarioConfig cfg;
  cfg.seed = 20191022;
  cfg.whp_cell_m = 18000.0;
  cfg.corpus_scale = 400.0;
  cfg.counties_per_state = 8;
  return cfg;
}

// The record ids the spec's injector corrupts, predicted from the pure
// (seed, site, key) decision function over the clean corpus.
std::vector<std::uint32_t> predicted_fired(std::size_t corpus_size) {
  const Injector inj = Injector::parse(kSpec).take();
  std::vector<std::uint32_t> fired;
  for (std::uint32_t id = 0; id < corpus_size; ++id) {
    if (inj.fires("ingest.txr", id)) fired.push_back(id);
  }
  return fired;
}

TEST(QuarantineIngest, StrictFailsWithCodeAndOffsetOfFirstFiredRecord) {
  const synth::ScenarioConfig cfg = small_config();
  const std::size_t n =
      synth::generate_corpus(synth::UsAtlas::get(), cfg).size();
  const std::vector<std::uint32_t> fired = predicted_fired(n);
  ASSERT_FALSE(fired.empty()) << "spec must corrupt at least one record";

  const ScopedInjector scope(Injector::parse(kSpec).take());
  Diagnostics diags;
  World::BuildOptions options;
  options.policy = RecoveryPolicy::kStrict;
  options.diagnostics = &diags;
  const fault::Result<World> world = World::build(cfg, options);
  ASSERT_FALSE(world.ok());
  EXPECT_EQ(world.status().code, ErrCode::kOutOfRange);
  EXPECT_EQ(world.status().source, "ingest.txr");
  EXPECT_EQ(world.status().offset, fired.front());
}

TEST(QuarantineIngest, ConvergesToPreFilteredCleanRunByteForByte) {
  const synth::ScenarioConfig cfg = small_config();

  // Clean corpus, generated with no injection armed.
  cellnet::CellCorpus clean =
      synth::generate_corpus(synth::UsAtlas::get(), cfg);
  const std::size_t n = clean.size();
  const std::vector<std::uint32_t> fired = predicted_fired(n);
  ASSERT_FALSE(fired.empty());
  ASSERT_LT(fired.size(), n / 10);  // faults are sparse, not the norm

  // World A: fault-injected build under Quarantine.
  Diagnostics diags;
  fault::Result<World> world_a{fault::Status{}};
  {
    const ScopedInjector scope(Injector::parse(kSpec).take());
    World::BuildOptions options;
    options.policy = RecoveryPolicy::kQuarantine;
    options.diagnostics = &diags;
    world_a = World::build(cfg, options);
  }
  ASSERT_TRUE(world_a.ok()) << world_a.status().to_string();

  // Exact accounting: dropped == fired, in count and in diagnostics.
  EXPECT_EQ(world_a.value().ingest_dropped(), fired.size());
  EXPECT_EQ(diags.dropped_in("ingest.txr"), fired.size());
  EXPECT_EQ(diags.total_dropped(), fired.size());
  EXPECT_EQ(world_a.value().corpus().size(), n - fired.size());

  // World B: the same records removed up front, built Strict and clean.
  std::vector<cellnet::Transceiver> filtered;
  filtered.reserve(n - fired.size());
  std::size_t next_fired = 0;
  for (const cellnet::Transceiver& t : clean.transceivers()) {
    if (next_fired < fired.size() && t.id == fired[next_fired]) {
      ++next_fired;
      continue;
    }
    filtered.push_back(t);
  }
  World::BuildOptions strict;
  strict.policy = RecoveryPolicy::kStrict;
  fault::Result<World> world_b = World::from_corpus(
      cellnet::CellCorpus{std::move(filtered)}, cfg, strict);
  ASSERT_TRUE(world_b.ok()) << world_b.status().to_string();

  // Identical corpora, byte for byte, through the CSV serializer.
  std::ostringstream csv_a, csv_b;
  write_opencellid_csv(csv_a, world_a.value().corpus());
  write_opencellid_csv(csv_b, world_b.value().corpus());
  ASSERT_EQ(csv_a.str(), csv_b.str());

  // Identical derived caches for every surviving transceiver.
  const std::size_t kept = world_a.value().corpus().size();
  for (std::uint32_t id = 0; id < kept; ++id) {
    ASSERT_EQ(world_a.value().txr_class(id), world_b.value().txr_class(id));
    ASSERT_EQ(world_a.value().txr_county(id), world_b.value().txr_county(id));
  }

  // Identical analysis output, byte for byte, through a real table.
  const auto render = [](const World& world) {
    const RadioRiskResult r = run_radio_risk(world);
    TextTable table({"Type", "VH", "H", "M"});
    for (const RadioRiskRow& row : r.rows) {
      table.add_row({std::string{cellnet::radio_type_name(row.radio)},
                     fmt_count(row.very_high), fmt_count(row.high),
                     fmt_count(row.moderate)});
    }
    return table.str();
  };
  EXPECT_EQ(render(world_a.value()), render(world_b.value()));
}

TEST(QuarantineIngest, BestEffortRepairsTheFiniteSubset) {
  const synth::ScenarioConfig cfg = small_config();
  const std::size_t n =
      synth::generate_corpus(synth::UsAtlas::get(), cfg).size();

  // Corruption kinds 2 and 3 (finite out-of-range) are repairable by
  // clamping; kinds 0 and 1 (NaN/inf) are not. Predict both counts.
  const Injector inj = Injector::parse(kSpec).take();
  std::size_t repairable = 0, fatal = 0;
  for (std::uint32_t id = 0; id < n; ++id) {
    if (!inj.fires("ingest.txr", id)) continue;
    ((inj.draw("ingest.txr", id) & 3u) >= 2 ? repairable : fatal) += 1;
  }
  ASSERT_GT(repairable + fatal, 0u);

  const ScopedInjector scope(Injector::parse(kSpec).take());
  Diagnostics diags;
  World::BuildOptions options;
  options.policy = RecoveryPolicy::kBestEffort;
  options.diagnostics = &diags;
  const fault::Result<World> world = World::build(cfg, options);
  ASSERT_TRUE(world.ok()) << world.status().to_string();
  EXPECT_EQ(world.value().ingest_repaired(), repairable);
  EXPECT_EQ(world.value().ingest_dropped(), fatal);
  EXPECT_EQ(diags.repaired_in("ingest.txr"), repairable);
  EXPECT_EQ(diags.dropped_in("ingest.txr"), fatal);
  EXPECT_EQ(world.value().corpus().size(), n - fatal);
}

TEST(QuarantineIngest, AnalysisContextThreadsPolicyAndDiagnostics) {
  const ScopedInjector scope(Injector::parse(kSpec).take());
  AnalysisContext ctx(small_config());
  ctx.recovery_policy = RecoveryPolicy::kQuarantine;
  const World& world = ctx.world();
  EXPECT_GT(world.corpus().size(), 0u);
  EXPECT_GT(world.ingest_dropped(), 0u);
  EXPECT_EQ(ctx.diagnostics().dropped_in("ingest.txr"),
            world.ingest_dropped());
  const std::string line =
      coverage_line(world.corpus().size(), ctx.diagnostics());
  EXPECT_NE(line.find("dropped"), std::string::npos);
  EXPECT_NE(line.find("ingest.txr"), std::string::npos);
}

TEST(QuarantineIngest, NoFaultSpecTakesABuildDown) {
  // Whole-layer and scheduler faults surface as error Statuses (never a
  // crash, hang, or foreign exception); record faults degrade.
  const synth::ScenarioConfig cfg = small_config();
  const char* specs[] = {
      "seed=1,ingest.txr=1",   // every record corrupted
      "seed=2,synth.whp=1",    // WHP layer lost
      "seed=3,synth.corpus=1", // corpus generator lost
      "seed=4,synth.counties=1",
      "seed=5,exec.chunk=0.2", // scheduler failures mid-classification
      "seed=6,exec.*=1",
  };
  for (const char* spec : specs) {
    SCOPED_TRACE(spec);
    const ScopedInjector scope(Injector::parse(spec).take());
    World::BuildOptions options;
    options.policy = RecoveryPolicy::kQuarantine;
    const fault::Result<World> world = World::build(cfg, options);
    if (world.ok()) {
      // ingest.txr=1 drops everything yet the build still stands.
      EXPECT_EQ(world.value().corpus().size() + world.value().ingest_dropped(),
                cfg.corpus_size() + world.value().ingest_repaired());
    } else {
      EXPECT_EQ(world.status().code, ErrCode::kInjected);
      EXPECT_FALSE(world.status().source.empty());
    }
  }
}

}  // namespace
}  // namespace fa::core

// Golden-value regression suite: the paper's headline aggregates,
// computed on the fixed-seed synthetic world (the shared test scenario),
// pinned to exact constants in tests/golden/expected/*.json. Any change
// to synthesis, ingestion, overlay, or simulation arithmetic — even a
// single record — shows up as a diff against these files.
//
//   ctest -L golden                      # verify against the pinned files
//   ./test_golden --update-golden        # regenerate after intended drift
//
// Regeneration rewrites the expected files in the source tree; review
// the diff like any other code change.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "core/historical.hpp"
#include "core/provider_risk.hpp"
#include "core/whp_overlay.hpp"
#include "io/json.hpp"
#include "test_world.hpp"

namespace fa::core::testing {
namespace {

bool g_update_golden = false;

std::string golden_path(const std::string& name) {
  return std::string(FA_GOLDEN_DIR) + "/" + name + ".json";
}

// Serialized form is the contract: pretty-printed via io::to_json with
// %.17g doubles, so equal strings mean bit-identical aggregates.
void check_golden(const std::string& name, const io::JsonValue& actual) {
  const std::string serialized = io::to_json(actual, 2) + "\n";
  const std::string path = golden_path(name);
  if (g_update_golden) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << serialized;
    std::printf("[golden] updated %s\n", path.c_str());
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << "; regenerate with: test_golden --update-golden";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), serialized)
      << "golden drift in '" << name << "' — if the change is intended, "
      << "regenerate with: test_golden --update-golden";
}

TEST(Golden, Table1Historical) {
  const World& world = test_world();
  const HistoricalResult result = run_historical_overlay(
      world, test_context().historical_years(), test_context().fire_config);
  io::JsonArray rows;
  for (const HistoricalYearRow& row : result.rows) {
    rows.push_back(io::JsonObject{{"year", row.year},
                                  {"fires", row.fires},
                                  {"acres_millions", row.acres_millions},
                                  {"txr_in_perimeters", row.txr_in_perimeters},
                                  {"txr_per_macre", row.txr_per_macre}});
  }
  io::JsonObject doc;
  doc["rows"] = io::JsonValue{std::move(rows)};
  doc["total_txr"] = result.total_txr;
  doc["corpus_scale"] = result.corpus_scale;
  check_golden("table1_historical", io::JsonValue{std::move(doc)});
}

TEST(Golden, Table2Providers) {
  const ProviderRiskResult result = run_provider_risk(test_world());
  io::JsonArray rows;
  for (const ProviderRiskRow& row : result.rows) {
    rows.push_back(
        io::JsonObject{{"provider", std::string{cellnet::provider_name(row.provider)}},
                       {"fleet", row.fleet},
                       {"moderate", row.moderate},
                       {"high", row.high},
                       {"very_high", row.very_high}});
  }
  io::JsonObject doc;
  doc["rows"] = io::JsonValue{std::move(rows)};
  doc["regional_brands_at_risk"] = result.regional_brands_at_risk;
  check_golden("table2_providers", io::JsonValue{std::move(doc)});
}

TEST(Golden, Table3RadioTypes) {
  const RadioRiskResult result = run_radio_risk(test_world());
  io::JsonArray rows;
  for (const RadioRiskRow& row : result.rows) {
    rows.push_back(
        io::JsonObject{{"radio", std::string{cellnet::radio_type_name(row.radio)}},
                       {"moderate", row.moderate},
                       {"high", row.high},
                       {"very_high", row.very_high}});
  }
  check_golden("table3_radio_types", io::JsonValue{std::move(rows)});
}

TEST(Golden, Fig6Fig7WhpOverlay) {
  const World& world = test_world();
  const WhpOverlayResult result = run_whp_overlay(world);
  io::JsonObject doc;
  io::JsonArray by_class;
  for (const std::size_t n : result.txr_by_class) by_class.push_back(n);
  doc["txr_by_class"] = io::JsonValue{std::move(by_class)};
  doc["total_at_risk"] = result.total_at_risk();
  io::JsonArray states;
  for (const StateWhpRow& row : result.states) {
    if (row.at_risk() == 0) continue;  // keep the file to states that matter
    states.push_back(io::JsonObject{
        {"state", std::string{world.atlas()
                                  .states()[static_cast<std::size_t>(row.state)]
                                  .abbr}},
        {"moderate", row.moderate},
        {"high", row.high},
        {"very_high", row.very_high},
        {"per_thousand_vh", row.per_thousand_vh}});
  }
  doc["states"] = io::JsonValue{std::move(states)};
  io::JsonArray rank;
  for (const int s : result.rank_by_at_risk()) {
    rank.push_back(std::string{
        world.atlas().states()[static_cast<std::size_t>(s)].abbr});
  }
  doc["rank_by_at_risk"] = io::JsonValue{std::move(rank)};
  check_golden("fig6_7_whp_overlay", io::JsonValue{std::move(doc)});
}

}  // namespace
}  // namespace fa::core::testing

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view{argv[i]} == "--update-golden") {
      fa::core::testing::g_update_golden = true;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}

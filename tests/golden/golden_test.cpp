// Golden-value regression suite: the paper's headline aggregates,
// computed on the fixed-seed synthetic world (the shared test scenario),
// pinned to exact constants in tests/golden/expected/*.json. Any change
// to synthesis, ingestion, overlay, or simulation arithmetic — even a
// single record — shows up as a diff against these files.
//
//   ctest -L golden                      # verify against the pinned files
//   ./test_golden --update-golden        # regenerate after intended drift
//
// Regeneration rewrites the expected files in the source tree; review
// the diff like any other code change.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "core/historical.hpp"
#include "core/provider_risk.hpp"
#include "core/whp_overlay.hpp"
#include "delta/apply.hpp"
#include "delta/feed.hpp"
#include "io/json.hpp"
#include "store/codec.hpp"
#include "store/format.hpp"
#include "test_world.hpp"

namespace fa::core::testing {
namespace {

bool g_update_golden = false;

std::string golden_path(const std::string& name) {
  return std::string(FA_GOLDEN_DIR) + "/" + name + ".json";
}

// Serialized form is the contract: pretty-printed via io::to_json with
// %.17g doubles, so equal strings mean bit-identical aggregates.
void check_golden(const std::string& name, const io::JsonValue& actual) {
  const std::string serialized = io::to_json(actual, 2) + "\n";
  const std::string path = golden_path(name);
  if (g_update_golden) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << serialized;
    std::printf("[golden] updated %s\n", path.c_str());
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << "; regenerate with: test_golden --update-golden";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), serialized)
      << "golden drift in '" << name << "' — if the change is intended, "
      << "regenerate with: test_golden --update-golden";
}

TEST(Golden, Table1Historical) {
  const World& world = test_world();
  const HistoricalResult result = run_historical_overlay(
      world, test_context().historical_years(), test_context().fire_config);
  io::JsonArray rows;
  for (const HistoricalYearRow& row : result.rows) {
    rows.push_back(io::JsonObject{{"year", row.year},
                                  {"fires", row.fires},
                                  {"acres_millions", row.acres_millions},
                                  {"txr_in_perimeters", row.txr_in_perimeters},
                                  {"txr_per_macre", row.txr_per_macre}});
  }
  io::JsonObject doc;
  doc["rows"] = io::JsonValue{std::move(rows)};
  doc["total_txr"] = result.total_txr;
  doc["corpus_scale"] = result.corpus_scale;
  check_golden("table1_historical", io::JsonValue{std::move(doc)});
}

TEST(Golden, Table2Providers) {
  const ProviderRiskResult result = run_provider_risk(test_world());
  io::JsonArray rows;
  for (const ProviderRiskRow& row : result.rows) {
    rows.push_back(
        io::JsonObject{{"provider", std::string{cellnet::provider_name(row.provider)}},
                       {"fleet", row.fleet},
                       {"moderate", row.moderate},
                       {"high", row.high},
                       {"very_high", row.very_high}});
  }
  io::JsonObject doc;
  doc["rows"] = io::JsonValue{std::move(rows)};
  doc["regional_brands_at_risk"] = result.regional_brands_at_risk;
  check_golden("table2_providers", io::JsonValue{std::move(doc)});
}

TEST(Golden, Table3RadioTypes) {
  const RadioRiskResult result = run_radio_risk(test_world());
  io::JsonArray rows;
  for (const RadioRiskRow& row : result.rows) {
    rows.push_back(
        io::JsonObject{{"radio", std::string{cellnet::radio_type_name(row.radio)}},
                       {"moderate", row.moderate},
                       {"high", row.high},
                       {"very_high", row.very_high}});
  }
  check_golden("table3_radio_types", io::JsonValue{std::move(rows)});
}

TEST(Golden, Fig6Fig7WhpOverlay) {
  const World& world = test_world();
  const WhpOverlayResult result = run_whp_overlay(world);
  io::JsonObject doc;
  io::JsonArray by_class;
  for (const std::size_t n : result.txr_by_class) by_class.push_back(n);
  doc["txr_by_class"] = io::JsonValue{std::move(by_class)};
  doc["total_at_risk"] = result.total_at_risk();
  io::JsonArray states;
  for (const StateWhpRow& row : result.states) {
    if (row.at_risk() == 0) continue;  // keep the file to states that matter
    states.push_back(io::JsonObject{
        {"state", std::string{world.atlas()
                                  .states()[static_cast<std::size_t>(row.state)]
                                  .abbr}},
        {"moderate", row.moderate},
        {"high", row.high},
        {"very_high", row.very_high},
        {"per_thousand_vh", row.per_thousand_vh}});
  }
  doc["states"] = io::JsonValue{std::move(states)};
  io::JsonArray rank;
  for (const int s : result.rank_by_at_risk()) {
    rank.push_back(std::string{
        world.atlas().states()[static_cast<std::size_t>(s)].abbr});
  }
  doc["rank_by_at_risk"] = io::JsonValue{std::move(rank)};
  check_golden("fig6_7_whp_overlay", io::JsonValue{std::move(doc)});
}

TEST(Golden, DeltaEpochBytes) {
  // Pins the whole incremental-update pipeline: a fixed-seed feed chain
  // over the shared test world, the snapshot bytes of the delta-built
  // epoch, and — the tentpole contract — the identical bytes of a
  // from-scratch rebuild of the same final state. A drift in either CRC
  // means the feed, applier, codec, or world synthesis changed; the two
  // CRCs diverging means incremental maintenance broke equivalence.
  const World& base = test_world();
  const ProviderRiskResult base_risk = run_provider_risk(base);
  fa::delta::FeedOptions feed_options;
  feed_options.seed = 909;
  fa::delta::FeedGenerator gen(base, feed_options);
  fa::delta::FeedIngestor ingestor;
  World world = base;
  ProviderRiskResult risk = base_risk;
  std::size_t events_applied = 0;
  for (int tick = 0; tick < 3; ++tick) {
    auto cleaned = ingestor.ingest(gen.tick());
    ASSERT_TRUE(cleaned.ok());
    auto applied =
        fa::delta::Applier::apply(world, risk, cleaned.value(), {});
    ASSERT_TRUE(applied.ok()) << applied.status().to_string();
    fa::delta::ApplyResult result = std::move(applied).take();
    events_applied += result.stats.events - result.stats.quarantined;
    world = std::move(result.world);
    risk = std::move(result.provider_risk);
  }
  const std::string delta_bytes = store::encode_world(world, risk);

  World::BuildOptions opts;
  auto rebuilt = World::from_parts(
      cellnet::CellCorpus(
          std::vector<cellnet::Transceiver>(world.corpus().transceivers())),
      world.whp_ptr(), world.counties_ptr(), world.config(), opts);
  ASSERT_TRUE(rebuilt.ok());
  const World reference = std::move(rebuilt).take();
  const ProviderRiskResult reference_risk = run_provider_risk(reference);
  const std::string rebuilt_bytes =
      store::encode_world(reference, reference_risk);
  ASSERT_EQ(delta_bytes, rebuilt_bytes)
      << "delta-built epoch no longer byte-identical to rebuild";

  io::JsonObject doc;
  doc["feed_seed"] = static_cast<std::size_t>(feed_options.seed);
  doc["ticks"] = 3;
  doc["events_applied"] = events_applied;
  doc["corpus_size"] = world.corpus().size();
  doc["snapshot_bytes"] = delta_bytes.size();
  doc["delta_crc"] = static_cast<std::size_t>(
      store::crc32(delta_bytes.data(), delta_bytes.size()));
  doc["rebuild_crc"] = static_cast<std::size_t>(
      store::crc32(rebuilt_bytes.data(), rebuilt_bytes.size()));
  check_golden("delta_epoch", io::JsonValue{std::move(doc)});
}

}  // namespace
}  // namespace fa::core::testing

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view{argv[i]} == "--update-golden") {
      fa::core::testing::g_update_golden = true;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}

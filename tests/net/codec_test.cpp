// Round-trip property suite for the canonical wire codec plus
// deterministic malformed-frame fuzzing through fa::fault. The codec is
// the single serializer behind both cache fingerprints and the network
// protocol, so these properties carry the serving determinism contract
// onto the wire: encode∘decode = id, fingerprint = FNV-1a(canonical
// bytes), and no byte string — however mangled — reaches UB.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <variant>
#include <vector>

#include "fault/injector.hpp"
#include "net/protocol.hpp"
#include "serve/types.hpp"
#include "serve/wire.hpp"

namespace fa::serve {
namespace {

using wire::Tag;

constexpr std::uint64_t kSeed = 0x5eedf00dULL;
constexpr int kRounds = 1200;  // >= 1000 per the suite contract

double random_coord(std::mt19937_64& rng) {
  // Mix plain uniforms with the awkward cases: zeros of both signs,
  // denormals, huge magnitudes, infinities. (NaNs are exercised
  // separately — NaN != NaN breaks field-equality assertions.)
  switch (rng() % 8) {
    case 0:
      return 0.0;
    case 1:
      return -0.0;
    case 2:
      return std::numeric_limits<double>::denorm_min();
    case 3:
      return -1.7e308;
    case 4:
      return std::numeric_limits<double>::infinity();
    default:
      return std::uniform_real_distribution<double>(-180.0, 180.0)(rng);
  }
}

Request random_request(std::mt19937_64& rng) {
  switch (rng() % 4) {
    case 0: {
      PointRiskQuery q;
      q.point = {random_coord(rng), random_coord(rng)};
      q.neighborhood_m = std::uniform_real_distribution<double>(0, 1e6)(rng);
      return Request{q};
    }
    case 1: {
      BBoxAggregateQuery q;
      q.bbox = {random_coord(rng), random_coord(rng), random_coord(rng),
                random_coord(rng)};
      return Request{q};
    }
    case 2: {
      ProviderExposureQuery q;
      q.provider =
          static_cast<cellnet::Provider>(rng() % cellnet::kNumProviders);
      return Request{q};
    }
    default: {
      TopKSitesQuery q;
      q.center = {random_coord(rng), random_coord(rng)};
      q.radius_m = std::uniform_real_distribution<double>(0, 5e6)(rng);
      q.k = static_cast<std::uint32_t>(rng() % (wire::kMaxTopK + 1));
      return Request{q};
    }
  }
}

Response random_response(std::mt19937_64& rng) {
  switch (rng() % 4) {
    case 0: {
      PointRiskResponse r;
      r.epoch = rng();
      r.whp = static_cast<synth::WhpClass>(rng() % synth::kNumWhpClasses);
      r.at_risk = rng() % 2;
      r.urban = rng() % 2;
      r.roadside = rng() % 2;
      r.state = static_cast<std::int32_t>(rng() % 60) - 1;
      r.county = static_cast<std::int32_t>(rng() % 4000) - 1;
      r.nearby_txr = static_cast<std::uint32_t>(rng());
      r.nearby_at_risk = static_cast<std::uint32_t>(rng());
      return Response{r};
    }
    case 1: {
      BBoxAggregateResponse r;
      r.epoch = rng();
      r.transceivers = rng();
      for (auto& v : r.by_class) v = rng() % 100000;
      r.at_risk = rng();
      for (auto& v : r.by_provider) v = rng() % 100000;
      return Response{r};
    }
    case 2: {
      ProviderExposureResponse r;
      r.epoch = rng();
      r.provider =
          static_cast<cellnet::Provider>(rng() % cellnet::kNumProviders);
      r.fleet = rng();
      r.moderate = rng() % 1000000;
      r.high = rng() % 1000000;
      r.very_high = rng() % 1000000;
      return Response{r};
    }
    default: {
      TopKSitesResponse r;
      r.epoch = rng();
      r.candidates = static_cast<std::uint32_t>(rng());
      const std::size_t n = rng() % 32;
      for (std::size_t i = 0; i < n; ++i) {
        RankedSite s;
        s.txr_id = static_cast<std::uint32_t>(rng());
        s.position = {random_coord(rng), random_coord(rng)};
        s.whp = static_cast<synth::WhpClass>(rng() % synth::kNumWhpClasses);
        s.distance_m = std::uniform_real_distribution<double>(0, 1e5)(rng);
        r.sites.push_back(s);
      }
      return Response{r};
    }
  }
}

// -0.0 inputs canonicalize, so field equality must be "same value after
// canonicalization": compare re-encodings, which this suite pins to be
// injective per round anyway.
TEST(WireCodec, RequestRoundTripProperty) {
  std::mt19937_64 rng(kSeed);
  for (int i = 0; i < kRounds; ++i) {
    const Request q = random_request(rng);
    const std::string bytes = wire::encode(q);
    fault::Result<Request> back = wire::decode_request(bytes);
    ASSERT_TRUE(back.ok()) << i << ": " << back.status().to_string();
    EXPECT_EQ(back.value().index(), q.index()) << i;
    // decode∘encode is the identity on canonical bytes.
    EXPECT_EQ(wire::encode(back.value()), bytes) << i;
    // And the fingerprint is FNV-1a over exactly those bytes.
    EXPECT_EQ(fingerprint(q), wire::detail::fnv1a(bytes)) << i;
    EXPECT_EQ(fingerprint(back.value()), fingerprint(q)) << i;
  }
}

TEST(WireCodec, ResponseRoundTripProperty) {
  std::mt19937_64 rng(kSeed ^ 0xabcdef);
  for (int i = 0; i < kRounds; ++i) {
    const Response r = random_response(rng);
    const std::string bytes = wire::encode(r);
    fault::Result<Response> back = wire::decode_response(bytes);
    ASSERT_TRUE(back.ok()) << i << ": " << back.status().to_string();
    EXPECT_EQ(back.value().index(), r.index()) << i;
    EXPECT_EQ(wire::encode(back.value()), bytes) << i;
  }
}

TEST(WireCodec, NegativeZeroNormalizes) {
  PointRiskQuery pos;
  pos.point = {0.0, 0.0};
  pos.neighborhood_m = 0.0;
  PointRiskQuery neg;
  neg.point = {-0.0, -0.0};
  neg.neighborhood_m = -0.0;
  EXPECT_EQ(wire::encode(Request{pos}), wire::encode(Request{neg}));
  EXPECT_EQ(fingerprint(pos), fingerprint(neg));

  // The canonical bytes hold the +0.0 bit pattern (all-zero u64).
  const std::string bytes = wire::encode(Request{neg});
  for (std::size_t i = 2; i < bytes.size(); ++i) {
    EXPECT_EQ(bytes[i], '\0') << "byte " << i;
  }
}

TEST(WireCodec, NaNPassesThroughBitExactly) {
  PointRiskQuery q;
  q.point = {std::nan(""), 1.0};
  q.neighborhood_m = 500.0;
  const std::string bytes = wire::encode(Request{q});
  fault::Result<Request> back = wire::decode_request(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(wire::encode(back.value()), bytes);
  EXPECT_TRUE(
      std::isnan(std::get<PointRiskQuery>(back.value()).point.lon));
}

TEST(WireCodec, FingerprintsDifferAcrossTypesSharingBodies) {
  // A point query and a top-k query can share all coordinate bits; the
  // type tag in the canonical payload keeps them apart.
  PointRiskQuery p;
  p.point = {-120.0, 40.0};
  p.neighborhood_m = 1000.0;
  TopKSitesQuery t;
  t.center = {-120.0, 40.0};
  t.radius_m = 1000.0;
  t.k = 10;
  EXPECT_NE(fingerprint(p), fingerprint(t));
  EXPECT_NE(fingerprint(Request{p}), fingerprint(Request{t}));
  EXPECT_EQ(fingerprint(Request{p}), fingerprint(p));
}

// -- malformed payloads ------------------------------------------------

TEST(WireCodecFuzz, TruncatedPayloadsNeverCrash) {
  std::mt19937_64 rng(kSeed ^ 0x7777);
  const fault::Injector inj =
      fault::Injector::parse("seed=99,net.frame.decode=1.0").value();
  for (int i = 0; i < kRounds; ++i) {
    const std::string bytes = wire::encode(random_request(rng));
    // Every strict prefix must decode to an error, not a crash.
    const std::string cut =
        inj.truncate(bytes, net::kFrameDecodeSite, static_cast<std::uint64_t>(i));
    if (cut.size() == bytes.size()) continue;
    fault::Result<Request> r = wire::decode_request(cut);
    EXPECT_FALSE(r.ok()) << i;
  }
  // And exhaustively for one payload of each shape.
  for (const Request& q :
       {Request{PointRiskQuery{{-120, 40}, 1000.0}},
        Request{BBoxAggregateQuery{{-121, 39, -120, 40}}},
        Request{ProviderExposureQuery{cellnet::Provider::kVerizon}},
        Request{TopKSitesQuery{{-120, 40}, 5e4, 10}}}) {
    const std::string bytes = wire::encode(q);
    for (std::size_t n = 0; n < bytes.size(); ++n) {
      fault::Result<Request> r =
          wire::decode_request(std::string_view(bytes).substr(0, n));
      EXPECT_FALSE(r.ok()) << "prefix " << n;
    }
  }
}

TEST(WireCodecFuzz, CorruptedBytesDecodeOrRoundTrip) {
  std::mt19937_64 rng(kSeed ^ 0x2222);
  const fault::Injector inj =
      fault::Injector::parse("seed=4242,net.frame.decode=0.5").value();
  int rejected = 0;
  for (int i = 0; i < kRounds; ++i) {
    const std::string bytes = wire::encode(random_request(rng));
    const std::string bad = inj.corrupt_bytes(
        bytes, net::kFrameDecodeSite, static_cast<std::uint64_t>(i));
    fault::Result<Request> r = wire::decode_request(bad);
    if (!r.ok()) {
      rejected++;
      continue;
    }
    // A corruption that stays in-domain must still decode canonically.
    EXPECT_EQ(wire::encode(r.value()), bad) << i;
  }
  // Most corruptions land in the version/tag/enum guards.
  EXPECT_GT(rejected, 0);
}

TEST(WireCodecFuzz, BadTagAndVersionRejected) {
  const std::string good =
      wire::encode(Request{PointRiskQuery{{-120, 40}, 1000.0}});
  for (int tag = 0; tag < 256; ++tag) {
    std::string bytes = good;
    bytes[1] = static_cast<char>(tag);
    fault::Result<Request> r = wire::decode_request(bytes);
    if (tag == static_cast<int>(Tag::kPointRiskQuery)) {
      EXPECT_TRUE(r.ok());
    } else {
      EXPECT_FALSE(r.ok()) << "tag " << tag;
      // Response tags presented as requests are a parse error too.
      if (r.status().code == fault::ErrCode::kOk) ADD_FAILURE();
    }
  }
  std::string bytes = good;
  bytes[0] = 2;  // unknown version
  EXPECT_FALSE(wire::decode_request(bytes).ok());
}

TEST(WireCodecFuzz, TrailingGarbageRejected) {
  std::string bytes = wire::encode(Request{ProviderExposureQuery{
      cellnet::Provider::kAtt}});
  bytes.push_back('\0');
  fault::Result<Request> r = wire::decode_request(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code, fault::ErrCode::kSchema);
}

TEST(WireCodecFuzz, OutOfDomainValuesRejected) {
  {
    std::string bytes = wire::encode(Request{ProviderExposureQuery{
        cellnet::Provider::kAtt}});
    bytes[2] = static_cast<char>(cellnet::kNumProviders);
    EXPECT_EQ(wire::decode_request(bytes).status().code,
              fault::ErrCode::kOutOfRange);
  }
  {
    TopKSitesQuery q;
    q.center = {-120, 40};
    q.k = wire::kMaxTopK + 1;
    const std::string bytes = wire::encode(Request{q});
    EXPECT_EQ(wire::decode_request(bytes).status().code,
              fault::ErrCode::kOutOfRange);
  }
}

// -- framing ----------------------------------------------------------

TEST(FrameAssembler, ReassemblesByteAtATime) {
  const std::string payload =
      wire::encode(Request{PointRiskQuery{{-121.437, 39.81}, 3e4}});
  const std::string framed = net::frame(payload);
  net::FrameAssembler fa;
  for (std::size_t i = 0; i + 1 < framed.size(); ++i) {
    fa.feed(std::string_view(framed).substr(i, 1));
    fault::Result<std::optional<std::string>> r = fa.next();
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.value().has_value()) << "byte " << i;
    EXPECT_TRUE(fa.mid_frame());
  }
  fa.feed(std::string_view(framed).substr(framed.size() - 1));
  fault::Result<std::optional<std::string>> r = fa.next();
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().has_value());
  EXPECT_EQ(*r.value(), payload);
  EXPECT_FALSE(fa.mid_frame());
}

TEST(FrameAssembler, MidFrameCloseLeavesPartialVisible) {
  // A peer that opens a frame and disappears: the assembler reports
  // mid_frame() so the server's read-timeout sweep can reap it.
  const std::string framed = net::frame(
      wire::encode(Request{ProviderExposureQuery{cellnet::Provider::kAtt}}));
  net::FrameAssembler fa;
  fa.feed(std::string_view(framed).substr(0, framed.size() / 2));
  fault::Result<std::optional<std::string>> r = fa.next();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().has_value());
  EXPECT_TRUE(fa.mid_frame());
  EXPECT_FALSE(fa.poisoned());
}

TEST(FrameAssembler, OversizedFramePoisons) {
  net::FrameAssembler fa;
  std::string prefix;
  wire::detail::put_u32(prefix,
                        static_cast<std::uint32_t>(net::kMaxFramePayload + 1));
  fa.feed(prefix);
  fault::Result<std::optional<std::string>> r = fa.next();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code, fault::ErrCode::kLimit);
  EXPECT_TRUE(fa.poisoned());
  // Poisoned streams stay poisoned.
  fa.feed("more");
  EXPECT_FALSE(fa.next().ok());
}

TEST(FrameAssembler, ZeroLengthFramePoisons) {
  net::FrameAssembler fa;
  fa.feed(std::string(4, '\0'));
  fault::Result<std::optional<std::string>> r = fa.next();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code, fault::ErrCode::kParse);
}

TEST(FrameAssembler, BackToBackFramesSplitArbitrarily) {
  std::mt19937_64 rng(kSeed ^ 0x3333);
  std::vector<std::string> payloads;
  std::string stream;
  for (int i = 0; i < 64; ++i) {
    payloads.push_back(wire::encode(random_request(rng)));
    stream += net::frame(payloads.back());
  }
  net::FrameAssembler fa;
  std::size_t off = 0;
  std::size_t got = 0;
  while (off < stream.size()) {
    const std::size_t n = 1 + rng() % 97;
    fa.feed(std::string_view(stream).substr(off, n));
    off += n;
    for (;;) {
      fault::Result<std::optional<std::string>> r = fa.next();
      ASSERT_TRUE(r.ok());
      if (!r.value().has_value()) break;
      ASSERT_LT(got, payloads.size());
      EXPECT_EQ(*r.value(), payloads[got]);
      got++;
    }
  }
  EXPECT_EQ(got, payloads.size());
}

TEST(WireError, RoundTrips) {
  const std::string payload =
      net::error_payload(net::ErrorCode::kBusy, "admission queue full");
  EXPECT_EQ(wire::peek_tag(payload), static_cast<std::uint8_t>(Tag::kError));
  fault::Result<net::WireError> e = net::decode_error(payload);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value().code, net::ErrorCode::kBusy);
  EXPECT_EQ(e.value().message, "admission queue full");
  // And the serve-layer decoder refuses it (not a response payload).
  EXPECT_FALSE(wire::decode_response(payload).ok());
}

}  // namespace
}  // namespace fa::serve

// Client reconnect backoff: the deterministic jitter schedule, the
// capped exponential envelope, retry-until-the-listener-shows-up
// against a real ephemeral port, and the fail-fast paths (bad address,
// exhausted attempts, a fixed port that is already taken).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "net/client.hpp"
#include "net/server.hpp"
#include "../serve/serve_test_util.hpp"

namespace fa::net {
namespace {

using serve::testing::tiny_config;

// A socket bound to an ephemeral port but NOT listening: connects are
// refused (ECONNREFUSED) until listen() is called on it — the exact
// shape of "server mid-restart" the backoff exists for.
class BoundPort {
 public:
  BoundPort() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    socklen_t len = sizeof addr;
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
  }
  ~BoundPort() {
    if (fd_ >= 0) ::close(fd_);
  }
  std::uint16_t port() const { return port_; }
  void start_listening() { ::listen(fd_, 16); }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

TEST(Backoff, ScheduleIsDeterministicAndBounded) {
  Client::BackoffPolicy policy;  // base 25ms, cap 1000ms
  for (int attempt = 0; attempt < 12; ++attempt) {
    const std::uint64_t cap =
        std::min<std::uint64_t>(policy.max_delay_ms,
                                attempt < 63 ? policy.base_delay_ms << attempt
                                             : policy.max_delay_ms);
    const std::uint64_t d = Client::backoff_delay_ms(policy, attempt);
    EXPECT_GE(d, cap / 2) << "attempt " << attempt;
    EXPECT_LE(d, cap) << "attempt " << attempt;
    EXPECT_EQ(d, Client::backoff_delay_ms(policy, attempt))
        << "same (seed, attempt) must give the same delay";
  }
}

TEST(Backoff, SeedsDecorrelateFleets) {
  Client::BackoffPolicy a;
  Client::BackoffPolicy b;
  b.seed = 2;
  bool differed = false;
  for (int attempt = 2; attempt < 8; ++attempt) {
    differed |= Client::backoff_delay_ms(a, attempt) !=
                Client::backoff_delay_ms(b, attempt);
  }
  EXPECT_TRUE(differed) << "different seeds never diverged";
}

TEST(Backoff, CapSaturatesAndShiftCannotOverflow) {
  Client::BackoffPolicy policy;
  policy.base_delay_ms = 1ull << 40;
  policy.max_delay_ms = 800;
  for (int attempt : {0, 1, 24, 40, 62, 63, 200}) {
    const std::uint64_t d = Client::backoff_delay_ms(policy, attempt);
    EXPECT_GE(d, 400u) << "attempt " << attempt;
    EXPECT_LE(d, 800u) << "attempt " << attempt;
  }
}

TEST(ConnectRetry, BadAddressNeverRetries) {
  Client::BackoffPolicy policy;
  policy.attempts = 5;
  fault::Result<Client> c =
      Client::connect_retry("not-an-address", 1, policy, 200);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code, fault::ErrCode::kParse);
  EXPECT_EQ(c.status().message.find("attempts"), std::string::npos)
      << "kParse must fail fast, not burn the retry budget";
}

TEST(ConnectRetry, ExhaustedAttemptsReportTheCount) {
  BoundPort refused;  // bound, never listening
  Client::BackoffPolicy policy;
  policy.attempts = 3;
  policy.base_delay_ms = 1;
  policy.max_delay_ms = 2;
  fault::Result<Client> c =
      Client::connect_retry("127.0.0.1", refused.port(), policy, 200);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code, fault::ErrCode::kIoFailure);
  EXPECT_NE(c.status().message.find("(after 3 attempts)"), std::string::npos)
      << c.status().message;
}

TEST(ConnectRetry, SucceedsOnceTheListenerAppears) {
  BoundPort srv;
  std::thread later([&srv] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    srv.start_listening();
  });
  Client::BackoffPolicy policy;
  policy.attempts = 10;
  policy.base_delay_ms = 15;
  policy.max_delay_ms = 120;
  fault::Result<Client> c =
      Client::connect_retry("127.0.0.1", srv.port(), policy, 500);
  later.join();
  ASSERT_TRUE(c.ok()) << c.status().to_string();
  EXPECT_TRUE(c.value().connected());
}

// The fa_served fail-fast satellite at the library layer: binding a
// fixed port that is already taken throws an IoError whose message
// names the port and the --port 0 escape hatch.
TEST(ConnectRetry, FixedPortAlreadyBoundFailsFastWithGuidance) {
  static serve::Server backend(tiny_config());
  NetServer first(backend);  // grabs an ephemeral port
  NetServerOptions clashing;
  clashing.port = first.port();
  try {
    NetServer second(backend, clashing);
    FAIL() << "second listener bound a taken port";
  } catch (const fault::IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("already in use"), std::string::npos) << what;
    EXPECT_NE(what.find("--port 0"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(first.port())), std::string::npos)
        << what;
  }
  first.shutdown(/*drain=*/false);
}

}  // namespace
}  // namespace fa::net

// End-to-end suite for the networked front door: a real NetServer on an
// ephemeral loopback port, driven by the binary Client and by raw
// sockets speaking HTTP. Covers the admission-control contract (shed,
// quota, drain), response/equivalence guarantees against the in-process
// Server::handle, epoch purity across a concurrent rebuild, and the
// malformed-input and slow-client fault seams.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "fault/injector.hpp"
#include "net/client.hpp"
#include "net/http.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "serve/wire.hpp"
#include "../serve/serve_test_util.hpp"

namespace fa::net {
namespace {

using serve::Request;
using serve::Response;
using serve::testing::small_config;
using serve::testing::tiny_config;

constexpr const char* kLoop = "127.0.0.1";

// Counter-asserting tests force instrumentation on (and restore, so the
// suite passes under any FA_OBS setting).
struct ObsOn {
  bool was = obs::enabled();
  ObsOn() { obs::set_enabled(true); }
  ~ObsOn() { obs::set_enabled(was); }
};

Request to_request(const serve::testing::AnyQuery& q) {
  return std::visit([](const auto& query) { return Request{query}; }, q);
}

// One shared backend per suite run; world builds dominate runtime.
serve::Server& shared_server() {
  static serve::Server* server = new serve::Server(small_config());
  return *server;
}

// Raw blocking socket for driving the HTTP shim (and for byte-level
// misbehavior the Client refuses to commit).
class RawSock {
 public:
  explicit RawSock(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
    timeval tv{5, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }
  ~RawSock() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }
  void send_all(std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return;
      off += static_cast<std::size_t>(n);
    }
  }
  // Reads until the peer closes or `stop_at` is seen (empty = until
  // close / timeout).
  std::string read_response(std::string_view stop_at = "") {
    std::string out;
    char buf[8192];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
      if (!stop_at.empty() && out.find(stop_at) != std::string::npos) break;
    }
    return out;
  }

  // Reads exactly `n` framed payloads through an assembler.
  std::vector<std::string> read_frames(std::size_t n) {
    std::vector<std::string> payloads;
    FrameAssembler fa;
    char buf[8192];
    while (payloads.size() < n) {
      const ssize_t r = ::recv(fd_, buf, sizeof buf, 0);
      if (r <= 0) break;
      fa.feed(std::string_view(buf, static_cast<std::size_t>(r)));
      for (;;) {
        auto next = fa.next();
        if (!next.ok() || !next.value().has_value()) break;
        payloads.push_back(std::move(*next.value()));
      }
    }
    return payloads;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

std::string http_get(std::uint16_t port, const std::string& target) {
  RawSock s(port);
  EXPECT_TRUE(s.connected());
  s.send_all("GET " + target + " HTTP/1.1\r\nConnection: close\r\n\r\n");
  return s.read_response();
}

TEST(NetServer, BinaryProtocolMatchesInProcessHandle) {
  serve::Server& backend = shared_server();
  NetServerOptions opts;
  opts.workers = 2;
  NetServer net(backend, opts);
  auto client = Client::connect(kLoop, net.port());
  ASSERT_TRUE(client.ok()) << client.status().to_string();
  Client c = std::move(client).take();

  for (const auto& any : serve::testing::make_stream(60, 3, 24)) {
    const Request req = to_request(any);
    auto reply = c.call(req);
    ASSERT_TRUE(reply.ok()) << reply.status().to_string();
    ASSERT_TRUE(reply.value().ok());
    // Byte-identical to the in-process unified surface.
    EXPECT_EQ(serve::wire::encode(*reply.value().response),
              serve::wire::encode(backend.handle(req)));
  }
  net.shutdown();
}

TEST(NetServer, PipelinedRequestsAnswerInOrder) {
  serve::Server& backend = shared_server();
  NetServerOptions opts;
  opts.workers = 4;  // several workers racing on one connection
  NetServer net(backend, opts);

  // Write a burst of frames before reading anything; replies must come
  // back in request order (the protocol's only correlation).
  const auto stream = serve::testing::make_stream(40, 9, 16);
  std::string burst;
  std::vector<Request> reqs;
  for (const auto& any : stream) {
    reqs.push_back(to_request(any));
    burst += frame(serve::wire::encode(reqs.back()));
  }
  RawSock s(net.port());
  ASSERT_TRUE(s.connected());
  s.send_all(burst);

  const std::vector<std::string> replies = s.read_frames(reqs.size());
  ASSERT_EQ(replies.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    // Reply i is the answer to request i, byte for byte.
    EXPECT_EQ(replies[i], serve::wire::encode(backend.handle(reqs[i])))
        << "position " << i;
  }
  net.shutdown();
}

TEST(NetServer, ShedsUnderSaturationWithBusyFrames) {
  serve::Server& backend = shared_server();
  ObsOn obs_on;
  obs::ScopedRegistry scoped;
  NetServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 2;  // tiny queue: saturation is easy
  opts.registry = &scoped.registry();
  NetServer net(backend, opts);

  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> busy{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::connect(kLoop, net.port());
      if (!client.ok()) return;
      Client c = std::move(client).take();
      const Request req{serve::TopKSitesQuery{{-120.0 - t * 0.1, 40.0}, 8e4,
                                              32}};
      for (int i = 0; i < 50; ++i) {
        auto reply = c.call(req);
        if (!reply.ok()) return;
        if (reply.value().ok()) {
          ok.fetch_add(1);
        } else if (reply.value().error->code == ErrorCode::kBusy) {
          busy.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // Under 8 hammering clients vs 1 worker and a 2-deep queue, both
  // outcomes must occur, and every reject was answered (cheaply), not
  // dropped.
  EXPECT_GT(ok.load(), 0u);
  EXPECT_GT(busy.load(), 0u);
  EXPECT_EQ(scoped.registry()
                .counter(obs::metrics::kNetSheds)
                .value(),
            busy.load());
  net.shutdown();
}

TEST(NetServer, PerConnectionQuotaRateLimits) {
  serve::Server& backend = shared_server();
  ObsOn obs_on;
  obs::ScopedRegistry scoped;
  NetServerOptions opts;
  opts.quota_qps = 1.0;  // ~1 request/second after the burst
  opts.quota_burst = 3.0;
  opts.registry = &scoped.registry();
  NetServer net(backend, opts);

  auto client = Client::connect(kLoop, net.port());
  ASSERT_TRUE(client.ok());
  Client c = std::move(client).take();
  const Request req{serve::ProviderExposureQuery{}};
  int limited = 0;
  for (int i = 0; i < 10; ++i) {
    auto reply = c.call(req);
    ASSERT_TRUE(reply.ok()) << reply.status().to_string();
    if (!reply.value().ok() &&
        reply.value().error->code == ErrorCode::kRateLimited) {
      limited++;
    }
  }
  EXPECT_GT(limited, 0);
  EXPECT_EQ(scoped.registry()
                .counter(obs::metrics::kNetRateLimited)
                .value(),
            static_cast<std::uint64_t>(limited));
  net.shutdown();
}

TEST(NetServer, MalformedFrameRejectedConnectionSurvives) {
  serve::Server& backend = shared_server();
  NetServer net(backend, {});
  RawSock s(net.port());
  ASSERT_TRUE(s.connected());

  // A well-framed payload with a garbage tag: BAD_REQUEST, then the
  // same connection keeps serving.
  std::string bad_payload = serve::wire::encode(
      Request{serve::ProviderExposureQuery{}});
  bad_payload[1] = 0x5A;
  const Request good{serve::ProviderExposureQuery{}};
  s.send_all(frame(bad_payload) + frame(serve::wire::encode(good)));

  const std::vector<std::string> replies = s.read_frames(2);
  ASSERT_EQ(replies.size(), 2u);
  fault::Result<WireError> err = decode_error(replies[0]);
  ASSERT_TRUE(err.ok()) << err.status().to_string();
  EXPECT_EQ(err.value().code, ErrorCode::kBadRequest);
  EXPECT_EQ(replies[1], serve::wire::encode(backend.handle(good)));
  net.shutdown();
}

TEST(NetServer, OversizedFrameClosesConnection) {
  serve::Server& backend = shared_server();
  NetServer net(backend, {});
  RawSock s(net.port());
  ASSERT_TRUE(s.connected());
  std::string prefix;
  serve::wire::detail::put_u32(
      prefix, static_cast<std::uint32_t>(kMaxFramePayload + 1));
  s.send_all(prefix);
  const std::string reply = s.read_response();  // until server closes
  // The last thing on the stream is a TOO_LARGE error frame.
  ASSERT_GE(reply.size(), 4u);
  fault::Result<WireError> err =
      decode_error(std::string_view(reply).substr(4));
  ASSERT_TRUE(err.ok()) << err.status().to_string();
  EXPECT_EQ(err.value().code, ErrorCode::kTooLarge);
  net.shutdown();
}

TEST(NetServer, HttpEndpointsAnswer) {
  serve::Server& backend = shared_server();
  NetServer net(backend, {});
  const std::uint16_t port = net.port();

  EXPECT_NE(http_get(port, "/health").find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(http_get(port, "/providers/verizon").find("\"provider\":\"verizon\""),
            std::string::npos);
  EXPECT_NE(http_get(port, "/fires?lon=-121.4&lat=39.8&k=5")
                .find("\"sites\""),
            std::string::npos);
  EXPECT_NE(http_get(port, "/assets?bbox=-125,32,-114,42")
                .find("\"transceivers\""),
            std::string::npos);
  EXPECT_NE(http_get(port, "/scenario/camp-fire-2018").find("Camp Fire"),
            std::string::npos);
  EXPECT_NE(http_get(port, "/nope").find("HTTP/1.1 404"), std::string::npos);
  EXPECT_NE(http_get(port, "/fires?lon=bogus").find("HTTP/1.1 400"),
            std::string::npos);

  // POST /risk equals the in-process point query.
  RawSock s(port);
  ASSERT_TRUE(s.connected());
  const std::string body = "{\"lon\":-121.437,\"lat\":39.810}";
  s.send_all("POST /risk HTTP/1.1\r\nContent-Length: " +
             std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" +
             body);
  const std::string reply = s.read_response();
  EXPECT_NE(reply.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(reply.find("\"whp\""), std::string::npos);
  net.shutdown();
}

TEST(NetServer, GracefulDrainRejectsNewFinishesAdmitted) {
  serve::Server& backend = shared_server();
  ObsOn obs_on;
  obs::ScopedRegistry scoped;
  NetServerOptions opts;
  opts.workers = 2;
  opts.registry = &scoped.registry();
  NetServer net(backend, opts);

  auto client = Client::connect(kLoop, net.port());
  ASSERT_TRUE(client.ok());
  Client c = std::move(client).take();
  // Prove the connection works, then drain.
  auto before = c.call(Request{serve::ProviderExposureQuery{}});
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before.value().ok());

  std::thread drainer([&] { net.shutdown(/*drain=*/true); });
  // Requests racing the drain get SHUTTING_DOWN (or a closed socket
  // once teardown completes) — never a hang, never a wrong answer.
  for (int i = 0; i < 20; ++i) {
    auto reply = c.call(Request{serve::ProviderExposureQuery{}});
    if (!reply.ok()) break;  // connection closed by teardown
    if (!reply.value().ok()) {
      EXPECT_EQ(reply.value().error->code, ErrorCode::kShuttingDown);
    }
  }
  drainer.join();
  EXPECT_TRUE(net.draining());
  // New connections are refused or immediately closed after shutdown.
  auto after = Client::connect(kLoop, net.port(), 500);
  if (after.ok()) {
    Client c2 = std::move(after).take();
    auto r = c2.call(Request{serve::ProviderExposureQuery{}});
    EXPECT_FALSE(r.ok() && r.value().ok());
  }
}

TEST(NetServer, EpochPureAcrossConcurrentRebuild) {
  // A dedicated backend: this test swaps snapshots underneath traffic.
  serve::Server backend(tiny_config());
  NetServerOptions opts;
  opts.workers = 2;
  NetServer net(backend, opts);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> clients;
  std::atomic<bool> epoch_ok{true};
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      auto client = Client::connect(kLoop, net.port());
      if (!client.ok()) return;
      Client c = std::move(client).take();
      const auto stream = serve::testing::make_stream(400, 100 + t, 20);
      for (const auto& any : stream) {
        if (done.load()) break;
        auto reply = c.call(to_request(any));
        if (!reply.ok() || !reply.value().ok()) continue;
        const std::uint64_t epoch = std::visit(
            [](const auto& r) { return r.epoch; }, *reply.value().response);
        if (epoch < 1 || epoch > 3) epoch_ok.store(false);
        answered.fetch_add(1);
      }
    });
  }
  // Two rebuilds while the clients hammer.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(backend.rebuild(tiny_config(500 + i)).ok());
  }
  done.store(true);
  for (auto& t : clients) t.join();
  EXPECT_TRUE(epoch_ok.load());
  EXPECT_GT(answered.load(), 0u);
  EXPECT_EQ(backend.epoch(), 3u);
  net.shutdown();
}

TEST(NetServer, SlowClientFaultTripsOutboxCap) {
  serve::Server& backend = shared_server();
  ObsOn obs_on;
  obs::ScopedRegistry scoped;
  // Every flush round stalls; the outbox can only grow until the cap
  // drops the connection.
  fault::ScopedInjector inject(
      fault::Injector::parse("seed=7,net.conn.slow=1.0")
          .value());
  NetServerOptions opts;
  opts.max_outbox_bytes = 256;  // a single top-k response overflows
  opts.registry = &scoped.registry();
  NetServer net(backend, opts);

  auto client = Client::connect(kLoop, net.port());
  ASSERT_TRUE(client.ok());
  Client c = std::move(client).take();
  auto reply = c.call(Request{serve::TopKSitesQuery{{-120, 40}, 8e4, 64}});
  // The reply never arrives: the server dropped us as a slow consumer.
  EXPECT_FALSE(reply.ok() && reply.value().ok());
  // Wait for the IO thread to record the drop.
  for (int i = 0; i < 100; ++i) {
    if (scoped.registry()
            .counter(obs::metrics::kNetConnectionsDroppedSlow)
            .value() > 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(scoped.registry()
                .counter(obs::metrics::kNetConnectionsDroppedSlow)
                .value(),
            0u);
  net.shutdown();
}

TEST(NetServer, ReadTimeoutReapsMidFrameStall) {
  serve::Server& backend = shared_server();
  ObsOn obs_on;
  obs::ScopedRegistry scoped;
  NetServerOptions opts;
  opts.read_timeout_ms = 150;
  opts.registry = &scoped.registry();
  NetServer net(backend, opts);

  RawSock s(net.port());
  ASSERT_TRUE(s.connected());
  // Open a frame and stall: length prefix says 100 bytes, send 4.
  std::string partial;
  serve::wire::detail::put_u32(partial, 100);
  partial += "abcd";
  s.send_all(partial);
  const std::string rest = s.read_response();  // until server closes us
  EXPECT_TRUE(rest.empty());
  EXPECT_GT(scoped.registry().counter(obs::metrics::kNetTimeouts).value(), 0u);
  net.shutdown();
}

TEST(NetServer, WriteStallTimeoutReapsStalledOutbox) {
  serve::Server& backend = shared_server();
  ObsOn obs_on;
  obs::ScopedRegistry scoped;
  // Every flush round stalls but the outbox stays far below the cap, so
  // the overflow guard never fires and EPOLLOUT never trips: only the
  // write-stall timeout can reap the connection.
  fault::ScopedInjector inject(
      fault::Injector::parse("seed=7,net.conn.slow=1.0").value());
  NetServerOptions opts;
  opts.write_timeout_ms = 150;
  opts.registry = &scoped.registry();
  NetServer net(backend, opts);

  auto client = Client::connect(kLoop, net.port());
  ASSERT_TRUE(client.ok());
  Client c = std::move(client).take();
  auto reply = c.call(Request{serve::TopKSitesQuery{{-120, 40}, 8e4, 4}});
  // The reply never arrives: the sweep closed the stalled connection.
  EXPECT_FALSE(reply.ok() && reply.value().ok());
  for (int i = 0; i < 100; ++i) {
    if (scoped.registry().counter(obs::metrics::kNetTimeouts).value() > 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(scoped.registry().counter(obs::metrics::kNetTimeouts).value(), 0u);
  net.shutdown();
}

TEST(NetServer, RejectsSignedOrPaddedContentLength) {
  serve::Server& backend = shared_server();
  NetServer net(backend, {});
  for (const char* bad : {"+5", "-5", "5x", "99999999999999999999"}) {
    RawSock s(net.port());
    ASSERT_TRUE(s.connected());
    s.send_all(std::string("POST /risk HTTP/1.1\r\nContent-Length: ") + bad +
               "\r\nConnection: close\r\n\r\n");
    EXPECT_NE(s.read_response().find("HTTP/1.1 400"), std::string::npos)
        << "Content-Length '" << bad << "' was not rejected";
  }
  net.shutdown();
}

}  // namespace
}  // namespace fa::net

#include "index/grid_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

namespace fa::index {
namespace {

using geo::BBox;
using geo::Vec2;

TEST(GridIndex, EmptyIndex) {
  const GridIndex idx;
  EXPECT_TRUE(idx.empty());
  EXPECT_EQ(idx.count(BBox{0, 0, 1, 1}), 0u);
}

TEST(GridIndex, SinglePoint) {
  const GridIndex idx({{5.0, 5.0}}, BBox{0, 0, 10, 10}, 4, 4);
  EXPECT_EQ(idx.count(BBox{4, 4, 6, 6}), 1u);
  EXPECT_EQ(idx.count(BBox{0, 0, 1, 1}), 0u);
  EXPECT_EQ(idx.point(0), (Vec2{5.0, 5.0}));
}

TEST(GridIndex, PointsOutsideBoundsAreClamped) {
  // Clamped into edge bins but still exactly filtered on query.
  const GridIndex idx({{-5.0, 5.0}, {15.0, 5.0}}, BBox{0, 0, 10, 10}, 4, 4);
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx.count(BBox{-10, 0, 20, 10}), 2u);
  EXPECT_EQ(idx.count(BBox{0, 0, 10, 10}), 0u);
}

TEST(GridIndex, MatchesBruteForce) {
  std::mt19937_64 rng(321);
  std::uniform_real_distribution<double> pos(0.0, 50.0);
  std::vector<Vec2> pts;
  for (int i = 0; i < 2000; ++i) pts.push_back({pos(rng), pos(rng)});
  const GridIndex idx(pts, BBox{0, 0, 50, 50}, 16, 16);
  for (int q = 0; q < 40; ++q) {
    const double x = pos(rng), y = pos(rng);
    const BBox query{x, y, x + 7.0, y + 4.0};
    std::set<std::uint32_t> expected;
    for (std::uint32_t i = 0; i < pts.size(); ++i) {
      if (query.contains(pts[i])) expected.insert(i);
    }
    auto got_v = idx.query_ids(query);
    const std::set<std::uint32_t> got(got_v.begin(), got_v.end());
    EXPECT_EQ(got, expected);
  }
}

TEST(GridIndex, CandidatesAreSuperset) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> pos(0.0, 50.0);
  std::vector<Vec2> pts;
  for (int i = 0; i < 500; ++i) pts.push_back({pos(rng), pos(rng)});
  const GridIndex idx(pts, BBox{0, 0, 50, 50}, 8, 8);
  const BBox query{10.3, 20.7, 18.9, 33.1};
  std::set<std::uint32_t> exact;
  idx.query(query, [&](std::uint32_t id, Vec2) { exact.insert(id); });
  std::set<std::uint32_t> cand;
  idx.query_candidates(query, [&](std::uint32_t id, Vec2) { cand.insert(id); });
  EXPECT_TRUE(std::includes(cand.begin(), cand.end(), exact.begin(),
                            exact.end()));
}

TEST(GridIndex, QuerySpansMatchCandidateVisitOrder) {
  // The span API must yield exactly the candidate sequence the callback
  // visitor produces — same ids, same order — and the SoA views must
  // carry the matching coordinates, since batch kernels consume both.
  std::mt19937_64 rng(77);
  std::uniform_real_distribution<double> pos(0.0, 50.0);
  std::vector<Vec2> pts;
  for (int i = 0; i < 1500; ++i) pts.push_back({pos(rng), pos(rng)});
  const GridIndex idx(pts, BBox{0, 0, 50, 50}, 16, 16);
  const auto ids = idx.binned_ids();
  const auto xs = idx.binned_xs();
  const auto ys = idx.binned_ys();
  ASSERT_EQ(ids.size(), pts.size());
  for (int q = 0; q < 25; ++q) {
    const double x = pos(rng), y = pos(rng);
    const BBox query{x, y, x + 9.0, y + 6.0};
    std::vector<std::uint32_t> callback_order;
    idx.query_candidates(
        query, [&](std::uint32_t id, Vec2) { callback_order.push_back(id); });
    std::vector<std::uint32_t> span_order;
    idx.query_spans(query, [&](std::uint32_t b, std::uint32_t e) {
      ASSERT_LT(b, e);  // empty ranges are suppressed
      for (std::uint32_t k = b; k < e; ++k) {
        span_order.push_back(ids[k]);
        EXPECT_EQ(Vec2(xs[k], ys[k]), pts[ids[k]]);
      }
    });
    EXPECT_EQ(span_order, callback_order);
  }
}

TEST(GridIndex, QueryIdsReservesExactCandidateCapacity) {
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> pos(0.0, 50.0);
  std::vector<Vec2> pts;
  for (int i = 0; i < 800; ++i) pts.push_back({pos(rng), pos(rng)});
  const GridIndex idx(pts, BBox{0, 0, 50, 50}, 8, 8);
  const BBox query{5.5, 7.5, 30.0, 22.0};
  std::size_t candidates = 0;
  idx.query_candidates(query, [&](std::uint32_t, Vec2) { ++candidates; });
  const std::vector<std::uint32_t> got = idx.query_ids(query);
  EXPECT_LE(got.size(), candidates);
  EXPECT_GE(got.capacity(), candidates);  // single up-front reserve
}

TEST(GridIndex, IdsMapToOriginalOrder) {
  const std::vector<Vec2> pts{{1, 1}, {9, 9}, {5, 5}};
  const GridIndex idx(pts, BBox{0, 0, 10, 10}, 2, 2);
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(idx.point(i), pts[i]);
  }
}

// Property: total count over a partition of the bounds equals size().
class GridResolutionSweep : public ::testing::TestWithParam<int> {};

TEST_P(GridResolutionSweep, PartitionCountsSum) {
  const int res = GetParam();
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> pos(0.0, 32.0);
  std::vector<Vec2> pts;
  for (int i = 0; i < 700; ++i) pts.push_back({pos(rng), pos(rng)});
  const GridIndex idx(pts, BBox{0, 0, 32, 32}, res, res);
  // Half-open quadrant partition (shrink top/right edges by epsilon to
  // avoid double counting boundary points).
  const double mid = 16.0, hi = 32.0, eps = 1e-9;
  const std::size_t total =
      idx.count(BBox{0, 0, mid - eps, mid - eps}) +
      idx.count(BBox{mid, 0, hi, mid - eps}) +
      idx.count(BBox{0, mid, mid - eps, hi}) +
      idx.count(BBox{mid, mid, hi, hi});
  EXPECT_EQ(total, pts.size());
}

INSTANTIATE_TEST_SUITE_P(Resolutions, GridResolutionSweep,
                         ::testing::Values(1, 2, 8, 32, 100));

TEST(GridIndexNearest, MatchesBruteForce) {
  std::mt19937_64 rng(55);
  std::uniform_real_distribution<double> pos(0.0, 40.0);
  std::vector<Vec2> pts;
  for (int i = 0; i < 800; ++i) pts.push_back({pos(rng), pos(rng)});
  const GridIndex idx(pts, BBox{0, 0, 40, 40}, 10, 10);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec2 q{pos(rng), pos(rng)};
    const auto got = idx.nearest(q, 5);
    ASSERT_EQ(got.size(), 5u);
    // Brute-force reference.
    std::vector<std::pair<double, std::uint32_t>> ref;
    for (std::uint32_t i = 0; i < pts.size(); ++i) {
      ref.push_back({geo::distance2(pts[i], q), i});
    }
    std::sort(ref.begin(), ref.end());
    for (std::size_t k = 0; k < 5; ++k) {
      EXPECT_EQ(got[k], ref[k].second) << "trial " << trial << " k " << k;
    }
  }
}

TEST(GridIndexNearest, EdgeCases) {
  const GridIndex empty;
  EXPECT_TRUE(empty.nearest({0, 0}, 3).empty());
  const GridIndex one({{5, 5}}, BBox{0, 0, 10, 10}, 4, 4);
  EXPECT_EQ(one.nearest({0, 0}, 3), std::vector<std::uint32_t>{0});
  EXPECT_TRUE(one.nearest({0, 0}, 0).empty());
  // Query far outside the bounds still resolves.
  EXPECT_EQ(one.nearest({100, 100}, 1), std::vector<std::uint32_t>{0});
}

TEST(GridIndexNearest, NearestFirstOrdering) {
  std::vector<Vec2> pts{{1, 1}, {2, 2}, {8, 8}, {9, 9}};
  const GridIndex idx(pts, BBox{0, 0, 10, 10}, 5, 5);
  const auto got = idx.nearest({0, 0}, 4);
  EXPECT_EQ(got, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace fa::index

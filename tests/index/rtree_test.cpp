#include "index/rtree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

namespace fa::index {
namespace {

using geo::BBox;
using geo::Vec2;

TEST(RTree, EmptyTree) {
  const RTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.query(BBox{0, 0, 1, 1}).empty());
}

TEST(RTree, SingleEntry) {
  const RTree tree({{BBox{0, 0, 1, 1}, 7}});
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.query(BBox{0.5, 0.5, 2, 2}), std::vector<std::uint32_t>{7});
  EXPECT_TRUE(tree.query(BBox{2, 2, 3, 3}).empty());
}

TEST(RTree, TouchingBoxesIntersect) {
  const RTree tree({{BBox{0, 0, 1, 1}, 1}});
  // Edge contact counts as intersection.
  EXPECT_EQ(tree.query(BBox{1, 0, 2, 1}).size(), 1u);
  EXPECT_EQ(tree.query(BBox{1, 1, 2, 2}).size(), 1u);  // corner contact
}

std::vector<RTree::Entry> random_entries(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> pos(0.0, 100.0);
  std::uniform_real_distribution<double> sz(0.01, 2.0);
  std::vector<RTree::Entry> entries;
  entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const double x = pos(rng), y = pos(rng);
    entries.push_back({BBox{x, y, x + sz(rng), y + sz(rng)}, i});
  }
  return entries;
}

TEST(RTree, MatchesBruteForce) {
  const auto entries = random_entries(500, 1234);
  const RTree tree(entries);
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> pos(0.0, 100.0);
  for (int q = 0; q < 50; ++q) {
    const double x = pos(rng), y = pos(rng);
    const BBox query{x, y, x + 8.0, y + 8.0};
    std::set<std::uint32_t> expected;
    for (const auto& e : entries) {
      if (e.box.intersects(query)) expected.insert(e.id);
    }
    auto got_v = tree.query(query);
    const std::set<std::uint32_t> got(got_v.begin(), got_v.end());
    EXPECT_EQ(got, expected) << "query " << q;
    EXPECT_EQ(got_v.size(), got.size()) << "duplicate results";
  }
}

TEST(RTree, QueryPoint) {
  const RTree tree({{BBox{0, 0, 2, 2}, 0}, {BBox{1, 1, 3, 3}, 1}});
  std::vector<std::uint32_t> hits;
  tree.query_point({1.5, 1.5}, [&](std::uint32_t id) { hits.push_back(id); });
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<std::uint32_t>{0, 1}));
  hits.clear();
  tree.query_point({0.5, 0.5}, [&](std::uint32_t id) { hits.push_back(id); });
  EXPECT_EQ(hits, std::vector<std::uint32_t>{0});
}

TEST(RTree, BoundsCoverAllEntries) {
  const auto entries = random_entries(200, 5);
  const RTree tree(entries);
  const BBox b = tree.bounds();
  for (const auto& e : entries) {
    EXPECT_TRUE(b.contains(e.box));
  }
}

TEST(RTree, HeightGrowsLogarithmically) {
  EXPECT_EQ(RTree(random_entries(10, 1), 16).height(), 1);
  EXPECT_EQ(RTree(random_entries(17, 1), 16).height(), 2);
  const RTree big(random_entries(5000, 1), 16);
  EXPECT_LE(big.height(), 4);  // 16^4 >> 5000
}

// Property sweep over fanouts: results must be identical regardless of
// the packing parameter.
class RTreeFanoutSweep : public ::testing::TestWithParam<int> {};

TEST_P(RTreeFanoutSweep, FanoutInvariance) {
  const auto entries = random_entries(300, 777);
  const RTree tree(entries, GetParam());
  const RTree reference(entries, 8);
  for (const BBox query :
       {BBox{10, 10, 30, 30}, BBox{0, 0, 100, 100}, BBox{50, 50, 50.5, 50.5}}) {
    auto a = tree.query(query);
    auto b = reference.query(query);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, RTreeFanoutSweep,
                         ::testing::Values(2, 4, 16, 64));

}  // namespace
}  // namespace fa::index

#include "synth/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fa::synth {
namespace {

TEST(ValueNoise, DeterministicPerSeed) {
  const ValueNoise a(99), b(99), c(100);
  EXPECT_DOUBLE_EQ(a.sample(1.5, 2.5), b.sample(1.5, 2.5));
  EXPECT_NE(a.sample(1.5, 2.5), c.sample(1.5, 2.5));
}

TEST(ValueNoise, BoundedZeroOne) {
  const ValueNoise noise(7);
  for (double x = -10.0; x < 10.0; x += 0.37) {
    for (double y = -10.0; y < 10.0; y += 0.41) {
      const double v = noise.sample(x, y);
      ASSERT_GE(v, 0.0);
      ASSERT_LE(v, 1.0);
    }
  }
}

TEST(ValueNoise, ContinuousAcrossLatticeLines) {
  const ValueNoise noise(5);
  // Values just left/right of an integer lattice line must be close.
  const double eps = 1e-6;
  for (double y : {0.3, 1.7, -2.2}) {
    const double left = noise.sample(3.0 - eps, y);
    const double right = noise.sample(3.0 + eps, y);
    EXPECT_NEAR(left, right, 1e-4);
  }
}

TEST(ValueNoise, SpatialCorrelation) {
  // Nearby points are more similar than far points on average.
  const ValueNoise noise(21);
  double near_diff = 0.0, far_diff = 0.0;
  int n = 0;
  for (double x = 0.0; x < 20.0; x += 0.5) {
    for (double y = 0.0; y < 20.0; y += 0.5) {
      near_diff += std::abs(noise.sample(x, y) - noise.sample(x + 0.05, y));
      far_diff += std::abs(noise.sample(x, y) - noise.sample(x + 7.3, y + 4.1));
      ++n;
    }
  }
  EXPECT_LT(near_diff / n, far_diff / n * 0.5);
}

TEST(ValueNoise, FbmBoundedAndDeterministic) {
  const ValueNoise noise(3);
  for (double x = -5.0; x < 5.0; x += 0.91) {
    const double v = noise.fbm(x, -x * 0.7, 4);
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 1.0);
  }
  EXPECT_DOUBLE_EQ(noise.fbm(1.0, 2.0, 4), noise.fbm(1.0, 2.0, 4));
}

TEST(ValueNoise, FbmAddsDetail) {
  // More octaves => higher-frequency content => larger local variation.
  const ValueNoise noise(17);
  double v1 = 0.0, v4 = 0.0;
  int n = 0;
  for (double x = 0.0; x < 10.0; x += 0.1) {
    v1 += std::abs(noise.fbm(x, 0.0, 1) - noise.fbm(x + 0.05, 0.0, 1));
    v4 += std::abs(noise.fbm(x, 0.0, 5) - noise.fbm(x + 0.05, 0.0, 5));
    ++n;
  }
  EXPECT_GT(v4, v1);
}

TEST(ValueNoise, MeanIsCentered) {
  const ValueNoise noise(123);
  double sum = 0.0;
  int n = 0;
  for (double x = 0.0; x < 40.0; x += 0.13) {
    for (double y = 0.0; y < 40.0; y += 0.17) {
      sum += noise.fbm(x, y, 4);
      ++n;
    }
  }
  EXPECT_NEAR(sum / n, 0.5, 0.05);
}

}  // namespace
}  // namespace fa::synth

#include "synth/roads.hpp"

#include <gtest/gtest.h>

#include <set>

#include "geo/geodesy.hpp"

namespace fa::synth {
namespace {

TEST(RoadNetwork, BuildsDedupedCorridors) {
  const RoadNetwork& roads = RoadNetwork::get();
  ASSERT_FALSE(roads.segments().empty());
  // Deduplication: every segment has city_a < city_b, no pair twice.
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (const RoadSegment& s : roads.segments()) {
    EXPECT_LT(s.city_a, s.city_b);
    EXPECT_TRUE(seen.insert({s.city_a, s.city_b}).second);
  }
}

TEST(RoadNetwork, SegmentsMatchCityPositions) {
  const RoadNetwork& roads = RoadNetwork::get();
  const auto cities = UsAtlas::get().cities();
  for (const RoadSegment& s : roads.segments()) {
    EXPECT_EQ(s.a, cities[s.city_a].position);
    EXPECT_EQ(s.b, cities[s.city_b].position);
    EXPECT_NEAR(s.length_m, geo::haversine_m(s.a, s.b), 1.0);
    EXPECT_GT(s.weight, 0.0);
  }
}

TEST(RoadNetwork, TotalLengthIsContinental) {
  // ~80 cities x 2 nearest: tens of thousands of km of corridor.
  const double km = RoadNetwork::get().total_length_m() / 1000.0;
  EXPECT_GT(km, 10000.0);
  EXPECT_LT(km, 80000.0);
}

TEST(RoadNetwork, NearestOnCorridorIsZero) {
  const RoadNetwork& roads = RoadNetwork::get();
  const RoadSegment& s = roads.segments()[0];
  const geo::LonLat mid{(s.a.lon + s.b.lon) / 2.0, (s.a.lat + s.b.lat) / 2.0};
  EXPECT_LT(roads.nearest(mid).distance_m, s.length_m * 0.01 + 500.0);
  EXPECT_LT(roads.nearest(s.a).distance_m, 1.0);
}

TEST(RoadNetwork, NearestFarFromAnyCorridor) {
  // Central Nevada outback: the nearest corridor is far away.
  const auto hit = RoadNetwork::get().nearest({-116.8, 39.8});
  EXPECT_GT(hit.distance_m, 20e3);
}

TEST(RoadNetwork, EveryCityTouchesTheNetwork) {
  const RoadNetwork& roads = RoadNetwork::get();
  std::set<std::size_t> connected;
  for (const RoadSegment& s : roads.segments()) {
    connected.insert(s.city_a);
    connected.insert(s.city_b);
  }
  // Nearest-2 with j<i dedup can drop a city only if it is nobody's
  // nearest neighbour AND its own links were deduped away; require
  // near-complete coverage.
  EXPECT_GE(connected.size(), UsAtlas::get().cities().size() * 9 / 10);
}

}  // namespace
}  // namespace fa::synth

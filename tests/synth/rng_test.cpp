#include "synth/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fa::synth {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIsIndependentButDeterministic) {
  Rng parent1(7), parent2(7);
  Rng child1 = parent1.split();
  Rng child2 = parent2.split();
  EXPECT_EQ(child1.next_u64(), child2.next_u64());
  // Child stream differs from what the parent produces next.
  EXPECT_NE(parent1.next_u64(), Rng(7).split().next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 7.0);
  }
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.range(2, 5);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 5);
    saw_lo |= (v == 2);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.08);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, ParetoBounds) {
  Rng rng(19);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.pareto(1.0, 100.0, 1.2);
    ASSERT_GE(v, 1.0 - 1e-9);
    ASSERT_LE(v, 100.0 + 1e-9);
  }
}

TEST(Rng, ParetoIsHeavyTailed) {
  Rng rng(23);
  int small = 0, large = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.pareto(1.0, 1000.0, 1.0);
    if (v < 10.0) ++small;
    if (v > 100.0) ++large;
  }
  EXPECT_GT(small, 8000);  // mass concentrates at the low end
  EXPECT_GT(large, 50);    // but the tail is populated
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(29);
  const std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.weighted(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.35);
}

TEST(Rng, PoissonMean) {
  Rng rng(31);
  for (const double lambda : {0.5, 4.0, 200.0}) {  // both code paths
    double sum = 0.0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(lambda));
    EXPECT_NEAR(sum / n, lambda, lambda * 0.1 + 0.1) << lambda;
  }
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(SplitMix, HashCoordsIsStable) {
  EXPECT_EQ(hash_coords(1, 2, 3), hash_coords(1, 2, 3));
  EXPECT_NE(hash_coords(1, 2, 3), hash_coords(1, 3, 2));
  EXPECT_NE(hash_coords(1, 2, 3), hash_coords(2, 2, 3));
}

}  // namespace
}  // namespace fa::synth

#include "synth/cells.hpp"

#include "synth/firecalib.hpp"

#include <gtest/gtest.h>

#include <map>

#include "geo/geodesy.hpp"

namespace fa::synth {
namespace {

using cellnet::Provider;
using cellnet::RadioType;

const cellnet::CellCorpus& test_corpus() {
  static const cellnet::CellCorpus corpus = [] {
    ScenarioConfig cfg;
    cfg.corpus_scale = 100.0;  // ~53.6k transceivers
    return generate_corpus(UsAtlas::get(), cfg);
  }();
  return corpus;
}

TEST(GenerateCorpus, TargetCount) {
  ScenarioConfig cfg;
  cfg.corpus_scale = 100.0;
  EXPECT_EQ(test_corpus().size(), cfg.corpus_size());
  EXPECT_EQ(cfg.corpus_size(), 53649u);
}

TEST(GenerateCorpus, AllWithinConusStates) {
  for (const auto& t : test_corpus().transceivers()) {
    ASSERT_GE(t.state, 0);
    ASSERT_LT(t.state, UsAtlas::get().num_states());
    ASSERT_TRUE(geo::is_valid(t.position));
  }
}

TEST(GenerateCorpus, SequentialIds) {
  const auto& txr = test_corpus().transceivers();
  for (std::size_t i = 0; i < txr.size(); ++i) {
    ASSERT_EQ(txr[i].id, i);
  }
}

TEST(GenerateCorpus, RadioMarginalsMatchTable3) {
  const auto counts = test_corpus().count_by_radio();
  const double n = static_cast<double>(test_corpus().size());
  EXPECT_NEAR(counts[static_cast<int>(RadioType::kLte)] / n, 0.53, 0.02);
  EXPECT_NEAR(counts[static_cast<int>(RadioType::kUmts)] / n, 0.305, 0.02);
  EXPECT_NEAR(counts[static_cast<int>(RadioType::kCdma)] / n, 0.095, 0.01);
  EXPECT_NEAR(counts[static_cast<int>(RadioType::kGsm)] / n, 0.07, 0.01);
  EXPECT_EQ(counts[static_cast<int>(RadioType::kNr)], 0u);  // no 5G in 2019
}

TEST(GenerateCorpus, ProviderMarginalsMatchTable2) {
  const cellnet::ProviderRegistry reg;
  const auto counts = test_corpus().count_by_provider(reg);
  const double n = static_cast<double>(test_corpus().size());
  EXPECT_NEAR(counts[static_cast<int>(Provider::kAtt)] / n, 0.345, 0.03);
  EXPECT_NEAR(counts[static_cast<int>(Provider::kTMobile)] / n, 0.30, 0.03);
  EXPECT_NEAR(counts[static_cast<int>(Provider::kSprint)] / n, 0.153, 0.02);
  EXPECT_NEAR(counts[static_cast<int>(Provider::kVerizon)] / n, 0.142, 0.02);
  // Ordering (Table 2): AT&T > T-Mobile > Sprint > Verizon > Others.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[3]);
  EXPECT_GT(counts[3], counts[4]);
}

TEST(GenerateCorpus, UrbanClustering) {
  // A 30 km disc around Los Angeles must hold far more than a uniform
  // share of the corpus (Figure 2's dense metro clusters).
  const geo::LonLat la{-118.244, 34.052};
  std::size_t near_la = 0;
  for (const auto& t : test_corpus().transceivers()) {
    if (geo::haversine_m(la, t.position) < 30e3) ++near_la;
  }
  const double share = static_cast<double>(near_la) / test_corpus().size();
  EXPECT_GT(share, 0.02);  // LA metro holds several % of US transceivers
  EXPECT_LT(share, 0.15);
}

TEST(GenerateCorpus, PopulousStatesLead) {
  std::map<int, std::size_t> by_state;
  for (const auto& t : test_corpus().transceivers()) ++by_state[t.state];
  const UsAtlas& atlas = UsAtlas::get();
  const auto count = [&](std::string_view abbr) {
    return by_state[atlas.state_index(abbr)];
  };
  EXPECT_GT(count("CA"), count("WY") * 20);
  EXPECT_GT(count("TX"), count("VT") * 20);
  EXPECT_GT(count("CA") + count("TX") + count("FL") + count("NY"),
            test_corpus().size() / 5);
}

TEST(GenerateCorpus, ValidMccMnc) {
  const cellnet::ProviderRegistry reg;
  for (const auto& t : test_corpus().transceivers()) {
    ASSERT_GE(t.mcc, 310);
    ASSERT_LE(t.mcc, 316);
  }
}

TEST(GenerateCorpus, DeterministicPerSeed) {
  ScenarioConfig cfg;
  cfg.corpus_scale = 2000.0;
  const auto a = generate_corpus(UsAtlas::get(), cfg);
  const auto b = generate_corpus(UsAtlas::get(), cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].position, b[i].position);
    ASSERT_EQ(a[i].mcc, b[i].mcc);
    ASSERT_EQ(a[i].mnc, b[i].mnc);
    ASSERT_EQ(a[i].radio, b[i].radio);
  }
  cfg.seed ^= 1;
  const auto c = generate_corpus(UsAtlas::get(), cfg);
  EXPECT_NE(a[0].position, c[0].position);
}

// Property sweep: corpus size scales inversely with corpus_scale.
class CorpusScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(CorpusScaleSweep, SizeFollowsScale) {
  ScenarioConfig cfg;
  cfg.corpus_scale = GetParam();
  const auto corpus = generate_corpus(UsAtlas::get(), cfg);
  EXPECT_EQ(corpus.size(),
            static_cast<std::size_t>(5364949.0 / GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Scales, CorpusScaleSweep,
                         ::testing::Values(500.0, 1000.0, 5000.0));

TEST(FireCalib, TableOneTargets) {
  const auto years = historical_fire_years();
  ASSERT_EQ(years.size(), 19u);
  EXPECT_EQ(years.front().year, 2000);
  EXPECT_EQ(years.back().year, 2018);
  // Spot-check against Table 1.
  EXPECT_EQ(years[7].year, 2007);
  EXPECT_EQ(years[7].paper_transceivers, 4978);
  EXPECT_EQ(years[10].year, 2010);
  EXPECT_EQ(years[10].paper_transceivers, 181);
  double total_acres = 0.0;
  for (const auto& y : years) total_acres += y.acres_millions;
  EXPECT_NEAR(total_acres, 133.1, 1.0);  // ~7M acres/yr over 19 years
  EXPECT_EQ(fire_year_2019().paper_transceivers, 656);
}

}  // namespace
}  // namespace fa::synth

#include "synth/counties.hpp"

#include <gtest/gtest.h>

namespace fa::synth {
namespace {

ScenarioConfig test_config() {
  ScenarioConfig cfg;
  cfg.seed = 77;
  cfg.counties_per_state = 12;
  return cfg;
}

TEST(PopCategory, PaperThresholds) {
  EXPECT_EQ(pop_category(50e3), PopCategory::kRural);
  EXPECT_EQ(pop_category(250e3), PopCategory::kModerate);
  EXPECT_EQ(pop_category(800e3), PopCategory::kDense);
  EXPECT_EQ(pop_category(2.0e6), PopCategory::kVeryDense);
  // Boundary conventions: strictly greater-than.
  EXPECT_EQ(pop_category(200e3), PopCategory::kRural);
  EXPECT_EQ(pop_category(1.5e6), PopCategory::kDense);
}

TEST(CountyMap, BuildsMajorsPlusSynthetics) {
  const UsAtlas& atlas = UsAtlas::get();
  const CountyMap map = CountyMap::build(atlas, test_config());
  std::size_t majors = 0;
  for (const County& c : map.counties()) majors += c.is_major ? 1 : 0;
  EXPECT_EQ(majors, atlas.major_counties().size());
  EXPECT_GE(map.counties().size(),
            majors + 12u * static_cast<std::size_t>(atlas.num_states()));
}

TEST(CountyMap, EveryStateHasCounties) {
  const UsAtlas& atlas = UsAtlas::get();
  const CountyMap map = CountyMap::build(atlas, test_config());
  for (int s = 0; s < atlas.num_states(); ++s) {
    EXPECT_FALSE(map.counties_in_state(s).empty())
        << atlas.states()[s].abbr;
  }
}

TEST(CountyMap, PopulationConservedPerState) {
  const UsAtlas& atlas = UsAtlas::get();
  const CountyMap map = CountyMap::build(atlas, test_config());
  for (int s = 0; s < atlas.num_states(); ++s) {
    double pop = 0.0;
    for (const int idx : map.counties_in_state(s)) {
      pop += map.county(idx).population;
    }
    EXPECT_NEAR(pop, atlas.states()[s].population,
                atlas.states()[s].population * 1e-6 + 1.0)
        << atlas.states()[s].abbr;
  }
}

TEST(CountyMap, MajorCountiesKeepRealPopulations) {
  const UsAtlas& atlas = UsAtlas::get();
  const CountyMap map = CountyMap::build(atlas, test_config());
  for (const County& c : map.counties()) {
    if (!c.is_major) continue;
    EXPECT_GT(c.population, 1.5e6) << c.name;  // the Pop VH threshold
    EXPECT_EQ(pop_category(c.population), PopCategory::kVeryDense);
  }
}

TEST(CountyMap, CountyOfRespectsStateBoundaries) {
  const UsAtlas& atlas = UsAtlas::get();
  const CountyMap map = CountyMap::build(atlas, test_config());
  // Los Angeles resolves to LA County (nearest anchor by construction).
  const int idx = map.county_of({-118.244, 34.052});
  ASSERT_GE(idx, 0);
  EXPECT_EQ(map.county(idx).name, "Los Angeles County");
  // A central-Texas point resolves to a Texas county.
  const int tx = map.county_of({-99.5, 31.5});
  ASSERT_GE(tx, 0);
  EXPECT_EQ(atlas.states()[map.county(tx).state].abbr, "TX");
  // Offshore resolves to nothing.
  EXPECT_EQ(map.county_of({-140.0, 40.0}), -1);
}

TEST(CountyMap, AnchorsLieInTheirState) {
  const UsAtlas& atlas = UsAtlas::get();
  const CountyMap map = CountyMap::build(atlas, test_config());
  std::size_t misplaced = 0;
  for (const County& c : map.counties()) {
    const int s = atlas.state_of(c.anchor);
    if (s != c.state) ++misplaced;
  }
  // Coarse boundaries allow a few edge cases, but the bulk must hold.
  EXPECT_LE(misplaced, map.counties().size() / 50);
}

TEST(CountyMap, DeterministicAcrossBuilds) {
  const UsAtlas& atlas = UsAtlas::get();
  const CountyMap a = CountyMap::build(atlas, test_config());
  const CountyMap b = CountyMap::build(atlas, test_config());
  ASSERT_EQ(a.counties().size(), b.counties().size());
  for (std::size_t i = 0; i < a.counties().size(); ++i) {
    EXPECT_EQ(a.counties()[i].name, b.counties()[i].name);
    EXPECT_DOUBLE_EQ(a.counties()[i].population, b.counties()[i].population);
    EXPECT_EQ(a.counties()[i].anchor, b.counties()[i].anchor);
  }
}

// Property sweep: category thresholds partition the population axis.
class PopCategorySweep : public ::testing::TestWithParam<double> {};

TEST_P(PopCategorySweep, MonotoneInPopulation) {
  const double pop = GetParam();
  EXPECT_GE(static_cast<int>(pop_category(pop * 1.5)),
            static_cast<int>(pop_category(pop)));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, PopCategorySweep,
                         ::testing::Values(1e3, 150e3, 300e3, 900e3, 2e6));

}  // namespace
}  // namespace fa::synth

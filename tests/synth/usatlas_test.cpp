#include "synth/usatlas.hpp"

#include <gtest/gtest.h>

#include "geo/projection.hpp"

namespace fa::synth {
namespace {

TEST(UsAtlas, HasConterminousStatesPlusDc) {
  const UsAtlas& atlas = UsAtlas::get();
  EXPECT_EQ(atlas.num_states(), 49);  // 48 states + DC
  EXPECT_NEAR(atlas.total_population(), 325e6, 8e6);
}

TEST(UsAtlas, StateIndexByAbbr) {
  const UsAtlas& atlas = UsAtlas::get();
  const int ca = atlas.state_index("CA");
  ASSERT_GE(ca, 0);
  EXPECT_EQ(atlas.states()[ca].name, "California");
  EXPECT_EQ(atlas.state_index("ZZ"), -1);
  EXPECT_EQ(atlas.state_index("AK"), -1);  // not conterminous
}

TEST(UsAtlas, EveryCityResolvesToItsState) {
  const UsAtlas& atlas = UsAtlas::get();
  for (const CityInfo& city : atlas.cities()) {
    const int s = atlas.state_of(city.position);
    ASSERT_GE(s, 0) << city.name;
    EXPECT_EQ(atlas.states()[s].abbr, city.state_abbr) << city.name;
  }
}

TEST(UsAtlas, EveryMajorCountyResolvesToItsState) {
  const UsAtlas& atlas = UsAtlas::get();
  for (const MajorCountyInfo& county : atlas.major_counties()) {
    const int s = atlas.state_of(county.anchor);
    ASSERT_GE(s, 0) << county.name;
    EXPECT_EQ(atlas.states()[s].abbr, county.state_abbr) << county.name;
  }
}

TEST(UsAtlas, KnownInteriorPoints) {
  const UsAtlas& atlas = UsAtlas::get();
  const auto expect_state = [&](double lon, double lat,
                                std::string_view abbr) {
    const int s = atlas.state_of({lon, lat});
    ASSERT_GE(s, 0) << abbr;
    EXPECT_EQ(atlas.states()[s].abbr, abbr);
  };
  expect_state(-120.5, 37.5, "CA");   // Central Valley
  expect_state(-99.5, 31.5, "TX");    // central Texas
  expect_state(-81.5, 28.0, "FL");    // central Florida
  expect_state(-108.0, 43.0, "WY");
  expect_state(-89.8, 44.5, "WI");
  expect_state(-116.5, 39.5, "NV");
}

TEST(UsAtlas, OffshorePointsAreUnassigned) {
  const UsAtlas& atlas = UsAtlas::get();
  EXPECT_EQ(atlas.state_of({-140.0, 40.0}), -1);  // Pacific
  EXPECT_EQ(atlas.state_of({-60.0, 35.0}), -1);   // Atlantic
  EXPECT_EQ(atlas.state_of({-95.0, 20.0}), -1);   // Gulf of Mexico
}

TEST(UsAtlas, BorderGapFallbackAssignsSlivers) {
  // Points straddling the coarse CA/NV diagonal still resolve somewhere.
  const UsAtlas& atlas = UsAtlas::get();
  for (double t = 0.0; t <= 1.0; t += 0.1) {
    const geo::LonLat p{-120.0 + t * (120.0 - 114.6) * 0 - 120.0 * 0 +
                            (-120.0 + t * 5.4),
                        42.0 - t * 7.0};
    // Any point along the (approximate) CA/NV border line lands in a state.
    const int s = atlas.state_of({-120.0 + t * 5.4, 42.0 - t * 7.0});
    EXPECT_GE(s, 0) << t;
  }
}

TEST(UsAtlas, StateAreasAreRoughlyRight) {
  // Sanity: projected polygon areas within 25% of real land areas for a
  // few anchor states (sq km).
  const UsAtlas& atlas = UsAtlas::get();
  const geo::AlbersConus proj;
  const auto area_km2 = [&](std::string_view abbr) {
    const int s = atlas.state_index(abbr);
    return proj.project(atlas.state_boundary(s)).area() / 1e6;
  };
  EXPECT_NEAR(area_km2("CA"), 424e3, 0.25 * 424e3);
  EXPECT_NEAR(area_km2("TX"), 696e3, 0.25 * 696e3);
  EXPECT_NEAR(area_km2("CO"), 269e3, 0.25 * 269e3);
  EXPECT_NEAR(area_km2("WY"), 253e3, 0.25 * 253e3);
  EXPECT_NEAR(area_km2("FL"), 170e3, 0.3 * 170e3);
}

TEST(UsAtlas, CaliforniaHasHighestFirePropensity) {
  const UsAtlas& atlas = UsAtlas::get();
  const auto prop = [&](std::string_view abbr) {
    return atlas.states()[atlas.state_index(abbr)].fire_propensity;
  };
  for (const char* abbr : {"TX", "IL", "NY", "FL", "OH", "GA"}) {
    EXPECT_GT(prop("CA"), prop(abbr)) << abbr;
  }
  // West + southeast above midwest (the paper's Figure 6 geography).
  EXPECT_GT(prop("ID"), prop("IA"));
  EXPECT_GT(prop("FL"), prop("OH"));
  EXPECT_GT(prop("SC"), prop("IN"));
}

TEST(UsAtlas, EcoregionsCoverSlcDenverCorridor) {
  const UsAtlas& atlas = UsAtlas::get();
  ASSERT_GE(atlas.ecoregions().size(), 5u);
  // Projections span the paper's +240% .. -119% range.
  double max_delta = -1e9, min_delta = 1e9;
  for (const EcoregionInfo& e : atlas.ecoregions()) {
    max_delta = std::max(max_delta, e.delta_burn_pct_2040);
    min_delta = std::min(min_delta, e.delta_burn_pct_2040);
  }
  EXPECT_DOUBLE_EQ(max_delta, 240.0);
  EXPECT_DOUBLE_EQ(min_delta, -119.0);
  // Salt Lake City and Denver fall inside some ecoregion band or border it.
  int covered = 0;
  for (const EcoregionInfo& e : atlas.ecoregions()) {
    if (e.boundary.contains(geo::Vec2{-111.0, 40.9})) ++covered;
  }
  EXPECT_GE(covered, 1);
}

TEST(UsAtlas, ConusBBoxIsSane) {
  const geo::BBox box = UsAtlas::get().conus_bbox();
  EXPECT_LT(box.min_x, -124.0);
  EXPECT_GT(box.max_x, -67.5);
  EXPECT_LT(box.min_y, 25.5);
  EXPECT_GT(box.max_y, 48.9);
}

}  // namespace
}  // namespace fa::synth

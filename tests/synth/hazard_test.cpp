#include "synth/hazard.hpp"

#include <gtest/gtest.h>

#include <map>

#include "raster/morphology.hpp"

namespace fa::synth {
namespace {

// One coarse WHP model shared by all tests in this file (generation is
// the expensive part).
const WhpModel& test_model() {
  static const WhpModel model = [] {
    ScenarioConfig cfg;
    cfg.seed = 20191022;
    cfg.whp_cell_m = 9000.0;
    return generate_whp(UsAtlas::get(), cfg);
  }();
  return model;
}

TEST(WhpClassNames, AllNamed) {
  EXPECT_EQ(whp_class_name(WhpClass::kNonBurnable), "Non-burnable");
  EXPECT_EQ(whp_class_name(WhpClass::kModerate), "Moderate");
  EXPECT_EQ(whp_class_name(WhpClass::kVeryHigh), "Very High");
}

TEST(WhpAtRisk, TopThreeClassesOnly) {
  EXPECT_FALSE(whp_at_risk(WhpClass::kNonBurnable));
  EXPECT_FALSE(whp_at_risk(WhpClass::kVeryLow));
  EXPECT_FALSE(whp_at_risk(WhpClass::kLow));
  EXPECT_TRUE(whp_at_risk(WhpClass::kModerate));
  EXPECT_TRUE(whp_at_risk(WhpClass::kHigh));
  EXPECT_TRUE(whp_at_risk(WhpClass::kVeryHigh));
}

TEST(WhpModel, ClassAreaOrdering) {
  // Paper Figure 6/7: moderate area > high area > very high area.
  const auto hist = raster::class_histogram(test_model().grid());
  const auto count = [&](WhpClass c) {
    const auto it = hist.find(static_cast<std::uint8_t>(c));
    return it == hist.end() ? std::size_t{0} : it->second;
  };
  EXPECT_GT(count(WhpClass::kModerate), count(WhpClass::kHigh));
  EXPECT_GT(count(WhpClass::kHigh), count(WhpClass::kVeryHigh));
  EXPECT_GT(count(WhpClass::kVeryHigh), 0u);
  // Burnable-but-low classes dominate, as in the real product.
  EXPECT_GT(count(WhpClass::kVeryLow) + count(WhpClass::kLow),
            count(WhpClass::kModerate) + count(WhpClass::kHigh) +
                count(WhpClass::kVeryHigh));
}

TEST(WhpModel, UrbanCoresAreNonBurnable) {
  const WhpModel& model = test_model();
  const UsAtlas& atlas = UsAtlas::get();
  for (const CityInfo& city : atlas.cities()) {
    if (city.metro_population < 2e6) continue;
    EXPECT_EQ(model.class_at(city.position), WhpClass::kNonBurnable)
        << city.name;
    EXPECT_TRUE(model.is_urban(city.position)) << city.name;
  }
}

TEST(WhpModel, OffshoreIsNonBurnableAndUnassigned) {
  const WhpModel& model = test_model();
  EXPECT_EQ(model.class_at({-130.0, 40.0}), WhpClass::kNonBurnable);
  EXPECT_EQ(model.state_at({-130.0, 40.0}), -1);
}

TEST(WhpModel, StateGridMatchesAtlas) {
  const WhpModel& model = test_model();
  const UsAtlas& atlas = UsAtlas::get();
  EXPECT_EQ(model.state_at({-120.5, 37.5}), atlas.state_index("CA"));
  EXPECT_EQ(model.state_at({-99.5, 31.5}), atlas.state_index("TX"));
  EXPECT_EQ(model.state_at({-81.5, 28.0}), atlas.state_index("FL"));
}

TEST(WhpModel, HighPropensityStatesCarryMoreRisk) {
  // Share of at-risk (M+) burnable cells must rank CA above the midwest.
  const WhpModel& model = test_model();
  const UsAtlas& atlas = UsAtlas::get();
  std::map<int, std::pair<std::size_t, std::size_t>> per_state;  // at-risk, total
  model.grid().for_each([&](int c, int r, std::uint8_t cls) {
    const int s = model.state_grid().at(c, r);
    if (s < 0 || cls == 0) return;
    auto& [risk, total] = per_state[s];
    total += 1;
    risk += whp_at_risk(static_cast<WhpClass>(cls)) ? 1 : 0;
  });
  const auto share = [&](std::string_view abbr) {
    const auto& [risk, total] = per_state[atlas.state_index(abbr)];
    return total == 0 ? 0.0 : static_cast<double>(risk) / total;
  };
  EXPECT_GT(share("CA"), share("IL") + 0.05);
  EXPECT_GT(share("CA"), share("OH") + 0.05);
  EXPECT_GT(share("ID"), share("IA"));
  EXPECT_GT(share("FL"), share("IN"));
}

TEST(WhpModel, RoadsAreLowOrBetter) {
  const WhpModel& model = test_model();
  const auto& roads = model.road_mask();
  const auto& grid = model.grid();
  std::size_t violations = 0, road_cells = 0;
  grid.for_each([&](int c, int r, std::uint8_t cls) {
    if (roads.at(c, r) == 0) return;
    ++road_cells;
    if (cls > static_cast<std::uint8_t>(WhpClass::kLow)) ++violations;
  });
  EXPECT_GT(road_cells, 100u);
  EXPECT_EQ(violations, 0u);
}

TEST(WhpModel, DeterministicPerSeed) {
  ScenarioConfig cfg;
  cfg.whp_cell_m = 30000.0;  // very coarse for speed
  const WhpModel a = generate_whp(UsAtlas::get(), cfg);
  const WhpModel b = generate_whp(UsAtlas::get(), cfg);
  EXPECT_EQ(a.grid().data(), b.grid().data());
  cfg.seed = 999;
  const WhpModel c = generate_whp(UsAtlas::get(), cfg);
  EXPECT_NE(a.grid().data(), c.grid().data());
}

TEST(WhpModel, ResolutionChangesCellCountNotGeography) {
  ScenarioConfig coarse;
  coarse.whp_cell_m = 30000.0;
  ScenarioConfig fine;
  fine.whp_cell_m = 15000.0;
  const WhpModel a = generate_whp(UsAtlas::get(), coarse);
  const WhpModel b = generate_whp(UsAtlas::get(), fine);
  EXPECT_NEAR(static_cast<double>(b.grid().size()),
              4.0 * static_cast<double>(a.grid().size()),
              0.1 * 4.0 * static_cast<double>(a.grid().size()));
  // Same CONUS coverage either way.
  EXPECT_EQ(a.state_at({-120.5, 37.5}), b.state_at({-120.5, 37.5}));
}

}  // namespace
}  // namespace fa::synth

#include "synth/population.hpp"

#include <gtest/gtest.h>

namespace fa::synth {
namespace {

const PopulationSurface& surface() {
  static const PopulationSurface s = [] {
    ScenarioConfig cfg;
    cfg.whp_cell_m = 9000.0;  // population cells default to 4x => 36 km
    return PopulationSurface::build(UsAtlas::get(), cfg);
  }();
  return s;
}

TEST(PopulationSurface, TotalMatchesConusPopulation) {
  EXPECT_NEAR(surface().total(), UsAtlas::get().total_population(),
              UsAtlas::get().total_population() * 0.05);
}

TEST(PopulationSurface, MetrosAreDenserThanWilderness) {
  const double la = surface().population_at({-118.244, 34.052});
  const double nyc = surface().population_at({-74.006, 40.713});
  const double nevada_outback = surface().population_at({-116.8, 39.8});
  EXPECT_GT(la, nevada_outback * 50.0);
  EXPECT_GT(nyc, nevada_outback * 50.0);
  EXPECT_GT(nevada_outback, 0.0);  // rural base exists
}

TEST(PopulationSurface, OffshoreIsEmpty) {
  EXPECT_DOUBLE_EQ(surface().population_at({-130.0, 40.0}), 0.0);
  EXPECT_DOUBLE_EQ(surface().population_at({-70.0, 30.0}), 0.0);
}

TEST(PopulationSurface, StateTotalsRoughlyConserved) {
  // Sum the raster by state membership; CA must carry ~its population.
  const UsAtlas& atlas = UsAtlas::get();
  const auto& grid = surface().grid();
  const auto& proj = surface().projection();
  double ca_pop = 0.0;
  const int ca = atlas.state_index("CA");
  grid.for_each([&](int c, int r, float v) {
    if (v <= 0.0f) return;
    if (atlas.state_of(proj.inverse(grid.geom().cell_center(c, r))) == ca) {
      ca_pop += v;
    }
  });
  EXPECT_NEAR(ca_pop, 39.56e6, 39.56e6 * 0.2);
}

TEST(PopulationSurface, CustomCellSize) {
  ScenarioConfig cfg;
  const PopulationSurface coarse =
      PopulationSurface::build(UsAtlas::get(), cfg, 72000.0);
  const PopulationSurface finer =
      PopulationSurface::build(UsAtlas::get(), cfg, 36000.0);
  EXPECT_GT(finer.grid().size(), coarse.grid().size() * 3);
  EXPECT_NEAR(coarse.total(), finer.total(), finer.total() * 0.03);
}

}  // namespace
}  // namespace fa::synth

#include "cellnet/corpus.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace fa::cellnet {
namespace {

Transceiver make_txr(std::uint32_t id, double lon, double lat,
                     RadioType radio = RadioType::kLte,
                     std::uint16_t mcc = 310, std::uint16_t mnc = 410) {
  Transceiver t;
  t.id = id;
  t.position = {lon, lat};
  t.radio = radio;
  t.mcc = mcc;
  t.mnc = mnc;
  t.cell_id = 1000 + id;
  return t;
}

TEST(CellCorpus, CountByRadio) {
  const CellCorpus corpus{{
      make_txr(0, -118.0, 34.0, RadioType::kLte),
      make_txr(1, -118.1, 34.1, RadioType::kLte),
      make_txr(2, -118.2, 34.2, RadioType::kUmts),
      make_txr(3, -118.3, 34.3, RadioType::kGsm),
  }};
  const auto counts = corpus.count_by_radio();
  EXPECT_EQ(counts[static_cast<int>(RadioType::kLte)], 2u);
  EXPECT_EQ(counts[static_cast<int>(RadioType::kUmts)], 1u);
  EXPECT_EQ(counts[static_cast<int>(RadioType::kGsm)], 1u);
  EXPECT_EQ(counts[static_cast<int>(RadioType::kCdma)], 0u);
}

TEST(CellCorpus, CountByProvider) {
  const ProviderRegistry reg;
  const CellCorpus corpus{{
      make_txr(0, -118.0, 34.0, RadioType::kLte, 310, 410),  // AT&T
      make_txr(1, -118.1, 34.1, RadioType::kLte, 310, 260),  // T-Mobile
      make_txr(2, -118.2, 34.2, RadioType::kLte, 310, 260),  // T-Mobile
      make_txr(3, -118.3, 34.3, RadioType::kLte, 399, 1),    // unknown
  }};
  const auto counts = corpus.count_by_provider(reg);
  EXPECT_EQ(counts[static_cast<int>(Provider::kAtt)], 1u);
  EXPECT_EQ(counts[static_cast<int>(Provider::kTMobile)], 2u);
  EXPECT_EQ(counts[static_cast<int>(Provider::kRegional)], 1u);
}

TEST(CellCorpus, InferSitesGroupsColocated) {
  // Three transceivers within metres of each other + one far away.
  const CellCorpus corpus{{
      make_txr(0, -118.0000, 34.0000),
      make_txr(1, -118.00005, 34.00003),
      make_txr(2, -118.00010, 34.00006),
      make_txr(3, -118.2, 34.2),
  }};
  const auto sites = corpus.infer_sites(100.0);
  ASSERT_EQ(sites.size(), 2u);
  std::size_t members = 0;
  for (const CellSite& s : sites) members += s.transceiver_count;
  EXPECT_EQ(members, corpus.size());
  EXPECT_EQ(std::max(sites[0].transceiver_count, sites[1].transceiver_count),
            3u);
}

TEST(CellCorpus, InferSitesGranularity) {
  // 200 m apart: one site at 500 m merge distance, two at 50 m.
  const CellCorpus corpus{{
      make_txr(0, -118.0, 34.0),
      make_txr(1, -118.0022, 34.0),
  }};
  EXPECT_EQ(corpus.infer_sites(500.0).size(), 1u);
  EXPECT_EQ(corpus.infer_sites(50.0).size(), 2u);
}

TEST(OpenCellIdCsv, RoundTrip) {
  const CellCorpus corpus{{
      make_txr(0, -118.0, 34.0, RadioType::kLte, 310, 410),
      make_txr(1, -80.2, 25.8, RadioType::kCdma, 311, 480),
  }};
  std::stringstream buf;
  write_opencellid_csv(buf, corpus);
  CsvLoadStats stats;
  const CellCorpus back = read_opencellid_csv(buf, &stats);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(stats.parsed, 2u);
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_EQ(back[0].radio, RadioType::kLte);
  EXPECT_EQ(back[0].mcc, 310);
  EXPECT_EQ(back[0].mnc, 410);
  EXPECT_NEAR(back[1].position.lon, -80.2, 1e-9);
  EXPECT_NEAR(back[1].position.lat, 25.8, 1e-9);
}

TEST(OpenCellIdCsv, SkipsCorruptRecords) {
  std::stringstream buf;
  buf << "radio,mcc,net,area,cell,unit,lon,lat,range,samples,changeable,"
         "created,updated,averageSignal\n"
      << "LTE,310,410,1,12345,0,-118.0,34.0,1000,1,1,0,0,0\n"
      << "LTE,310,410,1,12345,0,-300.0,34.0,1000,1,1,0,0,0\n"  // bad lon
      << "5G!,310,410,1,12345,0,-118.0,34.0,1000,1,1,0,0,0\n"  // bad radio
      << "LTE,banana,410,1,12345,0,-118.0,34.0,1000,1,1,0,0,0\n";
  CsvLoadStats stats;
  const CellCorpus corpus = read_opencellid_csv(buf, &stats);
  EXPECT_EQ(corpus.size(), 1u);
  EXPECT_EQ(stats.parsed, 1u);
  EXPECT_EQ(stats.skipped, 3u);
}

TEST(OpenCellIdCsv, AssignsSequentialIds) {
  std::stringstream buf;
  write_opencellid_csv(buf, CellCorpus{{make_txr(7, -118.0, 34.0),
                                        make_txr(9, -118.1, 34.1)}});
  const CellCorpus back = read_opencellid_csv(buf);
  EXPECT_EQ(back[0].id, 0u);  // ids are re-densified on load
  EXPECT_EQ(back[1].id, 1u);
}

}  // namespace
}  // namespace fa::cellnet

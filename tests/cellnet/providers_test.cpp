#include "cellnet/providers.hpp"

#include <gtest/gtest.h>

#include "cellnet/types.hpp"

namespace fa::cellnet {
namespace {

TEST(RadioTypeNames, RoundTrip) {
  for (int i = 0; i < kNumRadioTypes; ++i) {
    const auto t = static_cast<RadioType>(i);
    RadioType parsed;
    ASSERT_TRUE(parse_radio_type(radio_type_name(t), parsed));
    EXPECT_EQ(parsed, t);
  }
  RadioType out;
  EXPECT_FALSE(parse_radio_type("WIMAX", out));
  EXPECT_FALSE(parse_radio_type("", out));
  EXPECT_FALSE(parse_radio_type("lte", out));  // case-sensitive like the data
}

TEST(ProviderRegistry, ResolvesNationalCarriers) {
  const ProviderRegistry reg;
  EXPECT_EQ(reg.resolve(310, 410), Provider::kAtt);
  EXPECT_EQ(reg.resolve(310, 260), Provider::kTMobile);
  EXPECT_EQ(reg.resolve(310, 120), Provider::kSprint);
  EXPECT_EQ(reg.resolve(311, 480), Provider::kVerizon);
}

TEST(ProviderRegistry, AcquiredBlocksResolveToParent) {
  const ProviderRegistry reg;
  EXPECT_EQ(reg.resolve(310, 660), Provider::kTMobile);  // MetroPCS
  EXPECT_EQ(reg.resolve(316, 10), Provider::kSprint);    // Nextel
  EXPECT_EQ(reg.resolve(313, 100), Provider::kAtt);      // FirstNet
}

TEST(ProviderRegistry, UnknownPairsAreRegional) {
  const ProviderRegistry reg;
  EXPECT_EQ(reg.resolve(310, 999), Provider::kRegional);
  EXPECT_EQ(reg.resolve(311, 1), Provider::kRegional);
  EXPECT_EQ(reg.brand(310, 999), "Unknown regional");
}

TEST(ProviderRegistry, BrandsForKnownBlocks) {
  const ProviderRegistry reg;
  EXPECT_EQ(reg.brand(310, 410), "AT&T Mobility");
  EXPECT_EQ(reg.brand(311, 220), "US Cellular");
}

TEST(ProviderRegistry, BlocksOfPartitionRegistry) {
  const ProviderRegistry reg;
  std::size_t total = 0;
  for (int p = 0; p < kNumProviders; ++p) {
    const auto blocks = reg.blocks_of(static_cast<Provider>(p));
    EXPECT_FALSE(blocks.empty()) << provider_name(static_cast<Provider>(p));
    for (const MncRecord& r : blocks) {
      EXPECT_EQ(r.provider, static_cast<Provider>(p));
    }
    total += blocks.size();
  }
  EXPECT_EQ(total, reg.size());
}

TEST(ProviderRegistry, ManyRegionalBrands) {
  // The paper footnotes 46 smaller carriers with at-risk infrastructure.
  const ProviderRegistry reg;
  EXPECT_GE(reg.regional_brand_count(), 40u);
}

TEST(ProviderNames, Stable) {
  EXPECT_EQ(provider_name(Provider::kAtt), "AT&T");
  EXPECT_EQ(provider_name(Provider::kVerizon), "Verizon");
  EXPECT_EQ(provider_name(Provider::kRegional), "Others");
}

}  // namespace
}  // namespace fa::cellnet

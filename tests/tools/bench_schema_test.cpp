// Bench JSON schema validator: runs every bench_* binary on a tiny
// scenario, parses the machine-readable `JSON {...}` trailer, and fails
// if a key a downstream consumer greps for went missing or was renamed.
// The required-key table below IS the published schema — extend it when
// a bench grows a field, and expect this test to object when one drifts.
#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "io/json.hpp"

namespace fa {
namespace {

struct BenchSchema {
  // Binary name under the bench build dir.
  std::string_view binary;
  // Expected "bench" field of the trailer.
  std::string_view trailer;
  // Keys required at the top level of "result" ("" marker = result is
  // an array; remaining keys are then required of every row).
  std::vector<std::string_view> keys;
  // Extra argv appended to the command line.
  std::string_view extra_args = "";
  // Extra environment assignments prepended to the command (for benches
  // sized by env knobs rather than FA_SCALE).
  std::string_view extra_env = "";
};

const std::vector<BenchSchema>& schemas() {
  static const std::vector<BenchSchema> table = {
      {"bench_table1_historical", "table1_historical",
       {"", "year", "fires", "acres_millions", "txr", "paper_txr"}},
      {"bench_table2_providers", "table2_providers",
       {"", "provider", "fleet", "moderate", "high", "very_high"}},
      {"bench_table3_radio_types", "table3_radio_types",
       {"", "type", "moderate", "high", "very_high"}},
      {"bench_fig2_3_4_maps", "fig2_3_4_maps",
       {"transceivers", "large_fires", "txr_in_perimeters"}},
      {"bench_fig5_case_study", "fig5_case_study",
       {"days", "peak_day", "sites_monitored"}},
      {"bench_fig6_7_whp_overlay", "fig6_7_whp_overlay",
       {"moderate", "high", "very_high", "total_at_risk"}},
      {"bench_fig8_9_states", "fig8_9_states",
       {"", "state", "moderate", "high", "very_high"}},
      {"bench_fig10_11_population", "fig10_11_population",
       {"population_served", "at_risk_pop_vh", "very_high_pop_vh",
        "by_county"}},
      {"bench_fig12_13_metros", "fig12_13_metros",
       {"", "metro", "state", "total"}},
      {"bench_fig14_15_climate", "fig14_15_climate",
       {"", "name", "delta_pct", "transceivers", "at_risk"}},
      {"bench_validation_whp", "validation_whp",
       {"predicted", "in_perimeter", "accuracy", "accuracy_excluding_top2"}},
      {"bench_extension_halfmile", "extension_halfmile",
       {"at_risk_before", "at_risk_after", "accuracy_before",
        "accuracy_after", "sweep"}},
      {"bench_escape_ablation", "escape_ablation",
       {"rank_correlation", "top_state_whp", "top_state_escape"}},
      {"bench_iab_resilience", "iab_resilience",
       {"", "iab", "power_site_days", "transport_site_days"}},
      {"bench_scale_invariance", "scale_invariance",
       {"", "scale", "cell_m", "at_risk_share", "top1"}},
      {"bench_power_interdependence", "power_interdependence",
       {"feeders", "power_site_days", "sites_on_exposed_feeders"}},
      {"bench_coverage_models", "coverage_models",
       {"county_users_affected", "spatial_users_affected",
        "population_served_headline"}},
      {"bench_future_exposure", "future_exposure",
       {"at_risk_now", "index_2040", "by_state"}},
      {"bench_roadside_shadow", "roadside_shadow",
       {"dirs_filings", "roadside_flag_rate", "interior_flag_rate",
        "shadow_share"}},
      {"bench_site_vs_transceiver", "site_vs_transceiver",
       {"sites", "transceivers", "sites_at_risk", "txr_at_risk", "sweep"}},
      {"bench_fault_ingest", "fault_ingest", {"", "policy"}},
      {"bench_geo_kernels", "geo_kernels",
       {"points", "fires", "verts", "candidates", "hits", "identical",
        "scalar_ms", "prepared_ms", "batch_ms", "prepared_speedup",
        "batch_speedup"},
       "", "FA_GEO_POINTS=60000 FA_GEO_FIRES=8 FA_GEO_VERTS=128 FA_GEO_REPS=1"},
      {"bench_perf_substrate", "perf_substrate_scaling",
       {"pool_workers", "identical_across_threads", "scaling"},
       "--benchmark_filter=__none__"},
      {"bench_serve_qps", "serve_qps",
       {"pool_workers", "distinct_queries", "queries_per_thread",
        "cache_on_beats_off", "rows"}},
      {"bench_store", "store",
       {"transceivers", "image_bytes", "build_s", "save_s", "load_s",
        "recover_fallback_s", "fallback_to_older_generation",
        "load_speedup", "load_faster"}},
      {"bench_serve_net", "serve_net",
       {"workers", "per_thread", "distinct_queries", "shed_demonstrated",
        "rows", "saturation"},
       "",
       "FA_NET_PER_THREAD=40 FA_NET_SAT_CLIENTS=8 FA_NET_SAT_PER_THREAD=60"},
      {"bench_delta_ingest", "delta_ingest",
       {"transceivers", "ticks", "events_applied", "dirty_transceivers",
        "rebuild_s", "apply_mean_s", "apply_p99_s", "byte_identical",
        "delta_speedup", "delta_faster"},
       "", "FA_DELTA_TICKS=4"},
      {"bench_shard_scale", "shard_scale",
       {"transceivers", "shards", "mono_image_bytes", "shard_image_bytes",
        "build_s", "shard_s", "mono_cold_s", "shard_cold_s", "cold_speedup",
        "cold_faster", "threads", "mono_qps", "shard_qps", "qps_ratio",
        "qps_faster", "identity_ok"},
       "",
       "FA_SHARD_SCALE=400 FA_CELL_M=18000 FA_SHARD_THREADS=2 "
       "FA_SHARD_QUERIES=100"},
      {"bench_ensemble", "ensemble",
       {"members", "sites", "identical", "baseline_user_hours",
        "greedy_user_hours", "random_user_hours", "optimizer_beats_random",
        "optimizer_beats_baseline", "threads"},
       "", "FA_ENS_MEMBERS=24"},
  };
  return table;
}

// Runs one bench on the tiny scenario, returning its full stdout.
std::string run_bench(const BenchSchema& schema) {
  const std::string tmp = ::testing::TempDir();
  std::string cmd = "cd '" + tmp + "' && FA_SCALE=64 FA_CELL_M=5400 ";
  if (!schema.extra_env.empty()) {
    cmd += std::string{schema.extra_env} + " ";
  }
  cmd += "'" FA_BENCH_DIR "/" + std::string{schema.binary} + "'";
  if (!schema.extra_args.empty()) {
    cmd += " " + std::string{schema.extra_args};
  }
  cmd += " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return {};
  std::string out;
  std::array<char, 4096> buf;
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    out.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  EXPECT_EQ(status, 0) << schema.binary << " exited with status " << status;
  return out;
}

// The single `JSON {...}` trailer line, or empty.
std::string extract_trailer(const std::string& output) {
  std::size_t pos = 0;
  std::string found;
  while ((pos = output.find("JSON ", pos)) != std::string::npos) {
    if (pos == 0 || output[pos - 1] == '\n') {
      const std::size_t end = output.find('\n', pos);
      found = output.substr(pos + 5, end == std::string::npos
                                         ? std::string::npos
                                         : end - pos - 5);
    }
    ++pos;
  }
  return found;
}

TEST(BenchSchema, EveryBenchEmitsItsContract) {
  for (const BenchSchema& schema : schemas()) {
    SCOPED_TRACE(std::string{schema.binary});
    const std::string output = run_bench(schema);
    const std::string trailer = extract_trailer(output);
    ASSERT_FALSE(trailer.empty()) << "no JSON trailer in output";

    const fault::Result<io::JsonValue> parsed = io::try_parse_json(trailer);
    ASSERT_TRUE(parsed.ok()) << "unparseable trailer: "
                             << parsed.status().to_string();
    const io::JsonValue& doc = parsed.value();

    ASSERT_TRUE(doc.has("bench"));
    EXPECT_EQ(doc.at("bench").as_string(), schema.trailer);
    ASSERT_TRUE(doc.has("result")) << "trailer lost its result";
    ASSERT_TRUE(doc.has("timing")) << "trailer lost its timing block";
    EXPECT_TRUE(doc.at("timing").has("wall_s"));
    EXPECT_TRUE(doc.at("timing").has("cpu_s"));
    EXPECT_GE(doc.at("timing").at("cpu_s").as_number(), 0.0);

    const io::JsonValue& result = doc.at("result");
    const bool rows_schema = !schema.keys.empty() && schema.keys[0].empty();
    if (rows_schema) {
      ASSERT_GT(result.size(), 0u) << "result array is empty";
      for (std::size_t r = 0; r < result.size(); ++r) {
        for (std::size_t k = 1; k < schema.keys.size(); ++k) {
          EXPECT_TRUE(result.at(r).has(std::string{schema.keys[k]}))
              << "row " << r << " lost key '" << schema.keys[k] << "'";
        }
      }
    } else {
      for (const std::string_view key : schema.keys) {
        EXPECT_TRUE(result.has(std::string{key}))
            << "result lost key '" << key << "'";
      }
    }
  }
}

// The schema table itself stays in sync with the bench directory: a new
// bench binary must be added to the table (or this fails).
TEST(BenchSchema, TableCoversEveryBenchBinary) {
  for (const BenchSchema& schema : schemas()) {
    const std::string path = FA_BENCH_DIR "/" + std::string{schema.binary};
    FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << "bench binary missing: " << path;
    if (f != nullptr) std::fclose(f);
  }
}

}  // namespace
}  // namespace fa

// fa_store_inspect CLI contract: exit 0 on a clean store (monolithic or
// sharded), non-zero on corruption, and the sharded listing names the
// shard a cold start would quarantine. Runs the real binary — the
// health-check semantics ("is this store safe to boot from?") are the
// product here, so the test drives the same entry point an operator's
// cron job would.
#include <array>
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "shard/codec.hpp"
#include "store/codec.hpp"
#include "store/store.hpp"
#include "../shard/shard_test_util.hpp"

namespace fa {
namespace {

using shard::testing::small_image;
using shard::testing::small_risk;
using shard::testing::small_world;
using shard::testing::TempDir;

struct CliResult {
  int exit_code = -1;
  std::string output;
};

CliResult run_inspect(const std::string& args) {
  const std::string cmd =
      std::string{FA_TOOLS_DIR "/fa_store_inspect "} + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  CliResult r;
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf;
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    r.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Commits the canonical sharded image and returns the generation path.
std::string commit_sharded(const TempDir& dir) {
  auto store = store::StoreDir::open(dir.path);
  EXPECT_TRUE(store.ok());
  auto gen = store.value().commit(small_image());
  EXPECT_TRUE(gen.ok());
  return store.value().file_path(gen.value().filename);
}

// Flips one byte that lands in exactly one shard's payload (globals
// still verify), so the listing shows a single quarantine candidate.
void corrupt_one_shard(const std::string& gen_path) {
  const std::string clean = slurp(gen_path);
  for (std::size_t frac = 3; frac <= 7; ++frac) {
    std::string damaged = clean;
    damaged[damaged.size() * frac / 10] ^= 0x40;
    auto report =
        shard::inspect_sharded(damaged.data(), damaged.size(), gen_path);
    if (!report.ok() || !report.value().globals_ok) continue;
    std::size_t bad = 0;
    for (const auto& s : report.value().shards) bad += s.crc_ok ? 0 : 1;
    if (bad == 1) {
      spit(gen_path, damaged);
      return;
    }
  }
  FAIL() << "no probe byte hit exactly one shard payload";
}

TEST(StoreInspectCli, CleanShardedStoreExitsZero) {
  TempDir dir;
  commit_sharded(dir);
  const CliResult r = run_inspect(dir.path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("FASHRD01"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("sharded cold start would serve generation 1"),
            std::string::npos)
      << r.output;
  // Every shard row lists bounds and both verification verdicts.
  EXPECT_NE(r.output.find("shard 0"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("crc=ok"), std::string::npos) << r.output;
}

TEST(StoreInspectCli, CorruptShardIsFlaggedAndExitsNonZero) {
  TempDir dir;
  const std::string gen_path = commit_sharded(dir);
  corrupt_one_shard(gen_path);
  const CliResult r = run_inspect(dir.path);
  EXPECT_NE(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("crc=MISMATCH"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("would be quarantined"), std::string::npos)
      << r.output;
  // The bottom line still reports a servable (degraded) cold start —
  // shard-by-shard recovery is the whole point of the container.
  EXPECT_NE(r.output.find("DEGRADED"), std::string::npos) << r.output;
}

TEST(StoreInspectCli, ShardedImageModeVerifies) {
  TempDir dir;
  const std::string gen_path = commit_sharded(dir);
  EXPECT_EQ(run_inspect("--image " + gen_path).exit_code, 0);
  corrupt_one_shard(gen_path);
  EXPECT_NE(run_inspect("--image " + gen_path).exit_code, 0);
}

TEST(StoreInspectCli, MonolithicStoreStillVerifies) {
  TempDir dir;
  auto store = store::StoreDir::open(dir.path);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(
      store.value().commit(store::encode_world(small_world(), small_risk()))
          .ok());
  const CliResult r = run_inspect(dir.path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("cold start would serve generation 1"),
            std::string::npos)
      << r.output;
}

}  // namespace
}  // namespace fa

// Epoch purity while incremental deltas swap snapshots underneath live
// network traffic: concurrent clients over real sockets must only ever
// see whole epochs — monotonically bounded epoch tags, every response
// self-consistent — while the main thread applies feed batch after
// feed batch. The interesting checking happens under FA_SANITIZE=thread
// (readers race the publish, the structure-shared layers race the
// retire path); the test itself must merely never observe a torn epoch.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <variant>
#include <vector>

#include "delta/feed.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "serve/wire.hpp"
#include "serve_test_util.hpp"

namespace fa::net {
namespace {

using serve::Request;

constexpr const char* kLoop = "127.0.0.1";

Request to_request(const serve::testing::AnyQuery& q) {
  return std::visit([](const auto& query) { return Request{query}; }, q);
}

TEST(DeltaSwapRace, EpochPureAcrossConcurrentDeltaApplies) {
  serve::Server backend(serve::testing::tiny_config());
  NetServerOptions opts;
  opts.workers = 2;
  NetServer net(backend, opts);

  constexpr std::uint64_t kBatches = 4;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> answered{0};
  std::atomic<bool> epoch_ok{true};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      auto client = Client::connect(kLoop, net.port());
      if (!client.ok()) return;
      Client c = std::move(client).take();
      std::uint64_t last_seen = 0;
      const auto stream = serve::testing::make_stream(400, 700 + t, 20);
      for (const auto& any : stream) {
        if (done.load()) break;
        auto reply = c.call(to_request(any));
        if (!reply.ok() || !reply.value().ok()) continue;
        const std::uint64_t epoch = std::visit(
            [](const auto& r) { return r.epoch; }, *reply.value().response);
        // Whole epochs only, never regressing within one connection.
        if (epoch < 1 || epoch > 1 + kBatches || epoch < last_seen) {
          epoch_ok.store(false);
        }
        last_seen = epoch;
        answered.fetch_add(1);
      }
    });
  }

  // Incremental publishes while the clients hammer: each batch derives
  // from the epoch it lands on, exactly like the fa_served feed loop.
  const auto feed_root = backend.snapshots().acquire();
  delta::FeedGenerator gen(feed_root->world(), {});
  delta::FeedIngestor ingestor;
  for (std::uint64_t i = 0; i < kBatches; ++i) {
    auto cleaned = ingestor.ingest(gen.tick());
    ASSERT_TRUE(cleaned.ok());
    ASSERT_TRUE(backend.apply_delta(cleaned.value()).ok()) << "batch " << i;
  }
  done.store(true);
  for (auto& t : clients) t.join();
  EXPECT_TRUE(epoch_ok.load());
  EXPECT_GT(answered.load(), 0u);
  EXPECT_EQ(backend.epoch(), 1 + kBatches);
  net.shutdown();
}

}  // namespace
}  // namespace fa::net

// Shared scaffolding for the serve suite: small scenarios (world builds
// dominate test runtime, and the swap tests rebuild repeatedly), a
// deterministic mixed-type query stream, and type-erased dispatch so
// streams can be replayed against any Server or raw Snapshot.
#pragma once

#include <cstdint>
#include <random>
#include <variant>
#include <vector>

#include "serve/server.hpp"
#include "serve/snapshot.hpp"
#include "serve/types.hpp"

namespace fa::serve::testing {

// Same shape as the core test world; coarse enough to build in well
// under a second so each test binary can afford a handful of epochs.
inline synth::ScenarioConfig small_config(std::uint64_t seed = 20191022) {
  synth::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.whp_cell_m = 9000.0;
  cfg.corpus_scale = 100.0;
  cfg.counties_per_state = 16;
  return cfg;
}

// Coarser still, for tests that rebuild in a loop (the swap race).
inline synth::ScenarioConfig tiny_config(std::uint64_t seed = 20191022) {
  synth::ScenarioConfig cfg = small_config(seed);
  cfg.whp_cell_m = 18000.0;
  cfg.corpus_scale = 400.0;
  return cfg;
}

using AnyQuery = std::variant<PointRiskQuery, BBoxAggregateQuery,
                              ProviderExposureQuery, TopKSitesQuery>;

// A deterministic stream of `n` queries drawn (with repetition, so
// caches have something to hit) from `distinct` generated candidates.
// CONUS-ish coordinates keep the answers non-trivial.
inline std::vector<AnyQuery> make_stream(std::size_t n, std::uint64_t seed,
                                         std::size_t distinct = 48) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> lon(-122.0, -70.0);
  std::uniform_real_distribution<double> lat(26.0, 48.0);
  std::vector<AnyQuery> pool;
  pool.reserve(distinct);
  for (std::size_t i = 0; i < distinct; ++i) {
    switch (i % 4) {
      case 0:
        pool.push_back(PointRiskQuery{{lon(rng), lat(rng)},
                                      (i % 8 == 0) ? 30e3 : 0.0});
        break;
      case 1: {
        const double x = lon(rng);
        const double y = lat(rng);
        pool.push_back(BBoxAggregateQuery{{x, y, x + 2.0, y + 1.5}});
        break;
      }
      case 2:
        pool.push_back(ProviderExposureQuery{
            static_cast<cellnet::Provider>(i % cellnet::kNumProviders)});
        break;
      default:
        pool.push_back(TopKSitesQuery{{lon(rng), lat(rng)}, 60e3, 8});
        break;
    }
  }
  std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
  std::vector<AnyQuery> stream;
  stream.reserve(n);
  for (std::size_t i = 0; i < n; ++i) stream.push_back(pool[pick(rng)]);
  return stream;
}

using AnyResponse = std::variant<PointRiskResponse, BBoxAggregateResponse,
                                 ProviderExposureResponse, TopKSitesResponse>;

// Routes a type-erased query through the Server front door.
inline AnyResponse ask(Server& server, const AnyQuery& q) {
  return std::visit(
      [&server](const auto& query) -> AnyResponse {
        using Q = std::decay_t<decltype(query)>;
        if constexpr (std::is_same_v<Q, PointRiskQuery>) {
          return server.point_risk(query);
        } else if constexpr (std::is_same_v<Q, BBoxAggregateQuery>) {
          return server.bbox_aggregate(query);
        } else if constexpr (std::is_same_v<Q, ProviderExposureQuery>) {
          return server.provider_exposure(query);
        } else {
          return server.top_k_sites(query);
        }
      },
      q);
}

// Recomputes the answer directly against one pinned snapshot.
inline AnyResponse ask_snapshot(const Snapshot& snap, const AnyQuery& q) {
  return std::visit(
      [&snap](const auto& query) -> AnyResponse {
        return evaluate(snap, query);
      },
      q);
}

inline Epoch epoch_of(const AnyResponse& r) {
  return std::visit([](const auto& response) { return response.epoch; }, r);
}

}  // namespace fa::serve::testing

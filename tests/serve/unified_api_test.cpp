// The unified Server::handle(Request) surface is THE entry point; the
// legacy typed methods are thin wrappers over it. This suite pins the
// contract the front door depends on: handle() is byte-identical (under
// the canonical wire encoding) to the typed methods on all four query
// shapes, and the cached / uncached / batched paths all agree through
// the unified surface.
#include <gtest/gtest.h>

#include <variant>

#include "serve/server.hpp"
#include "serve/types.hpp"
#include "serve/wire.hpp"
#include "serve_test_util.hpp"

namespace fa::serve {
namespace {

using testing::make_stream;
using testing::small_config;

Request to_request(const testing::AnyQuery& q) {
  return std::visit([](const auto& query) { return Request{query}; }, q);
}

TEST(UnifiedApi, HandleMatchesTypedMethodsByteForByte) {
  Server server(small_config());
  const auto stream = make_stream(200, 7, 40);
  for (const auto& any : stream) {
    const Request req = to_request(any);
    const Response via_handle = server.handle(req);
    ASSERT_EQ(via_handle.index(), req.index());
    const Response via_typed = std::visit(
        [&](const auto& q) -> Response {
          using Q = std::decay_t<decltype(q)>;
          if constexpr (std::is_same_v<Q, PointRiskQuery>) {
            return Response{server.point_risk(q)};
          } else if constexpr (std::is_same_v<Q, BBoxAggregateQuery>) {
            return Response{server.bbox_aggregate(q)};
          } else if constexpr (std::is_same_v<Q, ProviderExposureQuery>) {
            return Response{server.provider_exposure(q)};
          } else if constexpr (std::is_same_v<Q, TopKSitesQuery>) {
            return Response{server.top_k_sites(q)};
          } else if constexpr (std::is_same_v<Q, EnsembleSummaryQuery>) {
            return Response{server.ensemble_summary(q)};
          } else {
            return Response{server.top_k_fragile_sites(q)};
          }
        },
        req);
    // Equal as values and as canonical bytes — the same bytes a network
    // client would receive.
    EXPECT_EQ(via_handle, via_typed);
    EXPECT_EQ(wire::encode(via_handle), wire::encode(via_typed));
  }
}

TEST(UnifiedApi, BatchedDispatchAgreesWithDirect) {
  Server server(small_config());
  const auto stream = make_stream(120, 11, 30);
  for (const auto& any : stream) {
    const Request req = to_request(any);
    if (!std::holds_alternative<PointRiskQuery>(req)) continue;
    const Response direct = server.handle(req, Dispatch::kDirect);
    const Response batched = server.handle(req, Dispatch::kBatched);
    EXPECT_EQ(direct, batched);
    // And the legacy batched wrapper is the same path.
    EXPECT_EQ(std::get<PointRiskResponse>(batched),
              server.point_risk_batched(std::get<PointRiskQuery>(req)));
  }
}

TEST(UnifiedApi, BatchedDispatchFallsBackForNonPointShapes) {
  // Dispatch::kBatched on non-point queries is not an error — they take
  // the direct path (only point queries coalesce).
  Server server(small_config());
  const Request req{ProviderExposureQuery{cellnet::Provider::kTMobile}};
  EXPECT_EQ(server.handle(req, Dispatch::kBatched),
            server.handle(req, Dispatch::kDirect));
}

TEST(UnifiedApi, CachedAndUncachedAgreeThroughHandle) {
  ServerOptions cached_opts;
  ServerOptions uncached_opts;
  // Capacity clamps to one entry per shard, so nearly every lookup
  // misses and re-evaluates — the effectively-uncached path.
  uncached_opts.cache.capacity = 0;
  uncached_opts.cache.shards = 1;
  Server cached(small_config(), cached_opts);
  Server uncached(small_config(), uncached_opts);
  const auto stream = make_stream(150, 13, 25);  // repeats => cache hits
  for (const auto& any : stream) {
    const Request req = to_request(any);
    // Ask twice so the second cached answer is a hit; all four ways
    // must produce identical canonical bytes.
    const Response a1 = cached.handle(req);
    const Response a2 = cached.handle(req);
    const Response b = uncached.handle(req);
    EXPECT_EQ(a1, a2);
    EXPECT_EQ(a1, b);
    EXPECT_EQ(wire::encode(a1), wire::encode(b));
  }
}

TEST(UnifiedApi, ResponseAlternativeAlwaysMatchesRequest) {
  Server server(small_config());
  EXPECT_TRUE(std::holds_alternative<PointRiskResponse>(
      server.handle(Request{PointRiskQuery{{-120, 40}, 0.0}})));
  EXPECT_TRUE(std::holds_alternative<BBoxAggregateResponse>(
      server.handle(Request{BBoxAggregateQuery{{-125, 32, -114, 42}}})));
  EXPECT_TRUE(std::holds_alternative<ProviderExposureResponse>(
      server.handle(Request{ProviderExposureQuery{}})));
  EXPECT_TRUE(std::holds_alternative<TopKSitesResponse>(
      server.handle(Request{TopKSitesQuery{{-120, 40}, 5e4, 5}})));
}

}  // namespace
}  // namespace fa::serve

// The serving layer's determinism contract: the cache and the batcher
// may change *when* an answer is computed, never what it contains, and
// a hot-swap mid-stream partitions responses cleanly by epoch — every
// answer matches a from-scratch evaluation against the snapshot whose
// epoch it carries.
#include <gtest/gtest.h>

#include <vector>

#include "serve/server.hpp"
#include "serve_test_util.hpp"

namespace fa::serve {
namespace {

using testing::AnyQuery;
using testing::AnyResponse;
using testing::ask;
using testing::ask_snapshot;
using testing::epoch_of;
using testing::make_stream;
using testing::small_config;

TEST(ServeEquivalence, CachedAndUncachedResponsesAreIdentical) {
  Server cached(small_config());
  ServerOptions no_cache;
  no_cache.cache_enabled = false;
  Server uncached(small_config(), no_cache);

  // The stream repeats queries, so the cached server answers a growing
  // share of it from the cache — including the whole second pass.
  const std::vector<AnyQuery> stream = make_stream(400, 7);
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const AnyResponse a = ask(cached, stream[i]);
      const AnyResponse b = ask(uncached, stream[i]);
      EXPECT_TRUE(a == b) << "pass " << pass << ", query " << i
                          << ": cached and uncached answers diverged";
    }
  }
}

TEST(ServeEquivalence, MidStreamSwapNeverMixesEpochs) {
  Server server(small_config(1));
  const std::shared_ptr<const Snapshot> snap1 = server.snapshots().acquire();
  ASSERT_EQ(snap1->epoch(), 1u);

  const std::vector<AnyQuery> stream = make_stream(300, 13);
  std::vector<AnyResponse> responses;
  responses.reserve(stream.size());
  std::shared_ptr<const Snapshot> snap2;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (i == stream.size() / 2) {
      ASSERT_TRUE(server.rebuild(small_config(2)).ok());
      snap2 = server.snapshots().acquire();
      ASSERT_EQ(snap2->epoch(), 2u);
    }
    responses.push_back(ask(server, stream[i]));
  }

  // Single-threaded stream: everything before the swap answered from
  // epoch 1, everything after from epoch 2 — and each answer is byte-
  // for-byte the recomputation against the snapshot it claims.
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const Epoch epoch = epoch_of(responses[i]);
    ASSERT_TRUE(epoch == 1 || epoch == 2)
        << "query " << i << " served from unknown epoch " << epoch;
    EXPECT_EQ(epoch, i < stream.size() / 2 ? 1u : 2u) << "query " << i;
    const Snapshot& snap = epoch == 1 ? *snap1 : *snap2;
    EXPECT_TRUE(responses[i] == ask_snapshot(snap, stream[i]))
        << "query " << i << " does not match epoch " << epoch
        << " recomputation — mixed-epoch answer";
  }
}

}  // namespace
}  // namespace fa::serve

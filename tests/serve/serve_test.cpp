// Unit tests for the fa::serve building blocks: query fingerprints, the
// sharded LRU cache (counters, epoch keying, the corruption seam), the
// snapshot store's retire/reclaim accounting, and the Server front door
// (per-shape answers, batching, rebuild success and failure).
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "serve_test_util.hpp"

namespace fa::serve {
namespace {

using testing::AnyQuery;
using testing::ask;
using testing::make_stream;
using testing::small_config;
using testing::tiny_config;

// Counters only record while obs is enabled; force it on per test and
// restore, so the suite passes under any FA_OBS setting.
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = obs::enabled();
    obs::set_enabled(true);
  }
  void TearDown() override { obs::set_enabled(was_enabled_); }

  // One small server shared across tests (world builds dominate).
  static Server& shared_server() {
    static Server server(small_config());
    return server;
  }

 private:
  bool was_enabled_ = false;
};

TEST_F(ServeTest, FingerprintsSeparateQueriesAndTypes) {
  const PointRiskQuery p1{{-100.0, 40.0}, 0.0};
  const PointRiskQuery p2{{-100.0, 40.5}, 0.0};
  const PointRiskQuery p3{{-100.0, 40.0}, 10e3};
  EXPECT_EQ(fingerprint(p1), fingerprint(PointRiskQuery{{-100.0, 40.0}, 0.0}));
  EXPECT_NE(fingerprint(p1), fingerprint(p2));
  EXPECT_NE(fingerprint(p1), fingerprint(p3));
  // Same leading bytes, different type tag.
  const TopKSitesQuery t{{-100.0, 40.0}, 0.0, 0};
  EXPECT_NE(fingerprint(p1), fingerprint(t));
  EXPECT_NE(fingerprint(ProviderExposureQuery{cellnet::Provider::kAtt}),
            fingerprint(ProviderExposureQuery{cellnet::Provider::kVerizon}));
}

PointRiskResponse point_response(Epoch epoch, int county) {
  PointRiskResponse r;
  r.epoch = epoch;
  r.county = county;
  return r;
}

TEST_F(ServeTest, CacheCountsHitsMissesAndEvictsLru) {
  obs::Registry reg;
  ShardedCache cache({.capacity = 3, .shards = 1}, reg);
  EXPECT_FALSE(cache.get(1, 10).has_value());
  cache.put(1, 10, point_response(1, 10));
  cache.put(1, 20, point_response(1, 20));
  cache.put(1, 30, point_response(1, 30));
  EXPECT_EQ(cache.size(), 3u);
  // Touch 10 so 20 becomes the LRU tail, then overflow.
  EXPECT_TRUE(cache.get(1, 10).has_value());
  cache.put(1, 40, point_response(1, 40));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.get(1, 20).has_value()) << "LRU tail should be evicted";
  EXPECT_TRUE(cache.get(1, 30).has_value());
  EXPECT_TRUE(cache.get(1, 40).has_value());
  const std::optional<CachedResponse> refreshed = cache.get(1, 40);
  ASSERT_TRUE(refreshed.has_value());
  const auto* hit = std::get_if<PointRiskResponse>(&*refreshed);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->county, 40);
  EXPECT_EQ(reg.counter(obs::metrics::kServeCacheHits).value(), 4u);
  EXPECT_EQ(reg.counter(obs::metrics::kServeCacheMisses).value(), 2u);
  EXPECT_EQ(reg.counter(obs::metrics::kServeCacheEvictions).value(), 1u);
}

TEST_F(ServeTest, CacheKeyIncludesEpoch) {
  obs::Registry reg;
  ShardedCache cache({.capacity = 8, .shards = 2}, reg);
  cache.put(1, 99, point_response(1, 1));
  EXPECT_FALSE(cache.get(2, 99).has_value())
      << "an entry from epoch 1 must be invisible to epoch 2";
  EXPECT_TRUE(cache.get(1, 99).has_value());
  cache.invalidate_all();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(1, 99).has_value());
  EXPECT_EQ(reg.counter(obs::metrics::kServeCacheInvalidations).value(), 1u);
}

TEST_F(ServeTest, CorruptionSeamDropsHitAndRecomputes) {
  obs::Registry reg;
  ShardedCache cache({.capacity = 8, .shards = 1}, reg);
  cache.put(1, 7, point_response(1, 7));
  {
    fault::ScopedInjector guard(
        fault::Injector::parse("serve.cache=1").take());
    EXPECT_FALSE(cache.get(1, 7).has_value())
        << "a corrupt hit must fall through to recomputation";
    EXPECT_EQ(cache.size(), 0u) << "the corrupt entry is dropped";
  }
  EXPECT_EQ(reg.counter(obs::metrics::kServeCacheCorruptDropped).value(), 1u);
  EXPECT_EQ(reg.counter(obs::metrics::kServeCacheHits).value(), 0u);
  // Refill with the seam disarmed: served normally again.
  cache.put(1, 7, point_response(1, 7));
  EXPECT_TRUE(cache.get(1, 7).has_value());
}

TEST_F(ServeTest, SnapshotStoreRetiresAndReclaims) {
  SnapshotStore store;
  EXPECT_EQ(store.current_epoch(), 0u);
  EXPECT_EQ(store.acquire(), nullptr);
  auto s1 = Snapshot::build(tiny_config(1), 1).take();
  auto s2 = Snapshot::build(tiny_config(2), 2).take();
  EXPECT_EQ(store.publish(std::move(s1)), 0u) << "nothing displaced yet";
  EXPECT_EQ(store.current_epoch(), 1u);
  std::shared_ptr<const Snapshot> pinned = store.acquire();
  EXPECT_EQ(store.publish(std::move(s2)), 1u);
  EXPECT_EQ(store.current_epoch(), 2u);
  EXPECT_EQ(store.retired(), 1u);
  EXPECT_EQ(store.reclaimed(), 0u) << "a pinned epoch must stay alive";
  EXPECT_EQ(pinned->epoch(), 1u) << "the in-flight reader still sees epoch 1";
  pinned.reset();
  EXPECT_EQ(store.reclaimed(), 1u) << "releasing the last reader reclaims";
}

TEST_F(ServeTest, ServerAnswersEveryQueryShape) {
  Server& server = shared_server();
  EXPECT_EQ(server.epoch(), 1u);
  const std::shared_ptr<const Snapshot> snap = server.snapshots().acquire();
  const core::World& world = snap->world();

  // Point risk agrees with the underlying surfaces at the query point.
  const geo::LonLat la{-118.24, 34.05};
  const PointRiskResponse point =
      server.point_risk({.point = la, .neighborhood_m = 50e3});
  EXPECT_EQ(point.epoch, 1u);
  EXPECT_EQ(point.whp, world.whp().class_at(la));
  EXPECT_EQ(point.at_risk, synth::whp_at_risk(point.whp));
  EXPECT_EQ(point.county, world.counties().county_of(la));
  EXPECT_GT(point.nearby_txr, 0u) << "downtown LA has transceivers in 50km";
  EXPECT_LE(point.nearby_at_risk, point.nearby_txr);

  // BBox aggregate: class counts partition the transceiver count.
  const BBoxAggregateResponse box =
      server.bbox_aggregate({{-125.0, 32.0, -114.0, 42.0}});
  EXPECT_EQ(box.epoch, 1u);
  EXPECT_GT(box.transceivers, 0u);
  std::uint64_t by_class = 0;
  for (const std::uint64_t c : box.by_class) by_class += c;
  std::uint64_t by_provider = 0;
  for (const std::uint64_t c : box.by_provider) by_provider += c;
  EXPECT_EQ(by_class, box.transceivers);
  EXPECT_EQ(by_provider, box.transceivers);
  EXPECT_LE(box.at_risk, box.transceivers);

  // Provider exposure is the snapshot's Table 2 row, O(1).
  std::uint64_t fleet = 0;
  for (int p = 0; p < cellnet::kNumProviders; ++p) {
    const ProviderExposureResponse row =
        server.provider_exposure({static_cast<cellnet::Provider>(p)});
    EXPECT_EQ(row.epoch, 1u);
    EXPECT_EQ(row.provider, static_cast<cellnet::Provider>(p));
    EXPECT_LE(row.at_risk(), row.fleet);
    fleet += row.fleet;
  }
  EXPECT_EQ(fleet, world.corpus().size());

  // Top-K: best-first by (class desc, distance asc, id), k-bounded.
  const TopKSitesQuery topk{la, 80e3, 12};
  const TopKSitesResponse ranked = server.top_k_sites(topk);
  EXPECT_EQ(ranked.epoch, 1u);
  ASSERT_GT(ranked.sites.size(), 0u);
  EXPECT_LE(ranked.sites.size(), topk.k);
  EXPECT_GE(ranked.candidates, ranked.sites.size());
  for (std::size_t i = 1; i < ranked.sites.size(); ++i) {
    const RankedSite& a = ranked.sites[i - 1];
    const RankedSite& b = ranked.sites[i];
    EXPECT_TRUE(a.whp > b.whp ||
                (a.whp == b.whp && a.distance_m <= b.distance_m))
        << "ranking must be class-major, distance-minor at " << i;
    EXPECT_LE(b.distance_m, topk.radius_m);
  }
}

TEST_F(ServeTest, BatchedPointPathMatchesDirect) {
  Server& server = shared_server();
  std::vector<PointRiskQuery> queries;
  for (const AnyQuery& q : make_stream(96, 11)) {
    if (const auto* p = std::get_if<PointRiskQuery>(&q)) queries.push_back(*p);
  }
  ASSERT_GT(queries.size(), 8u);
  std::vector<PointRiskResponse> direct(queries.size());
  std::vector<PointRiskResponse> batched(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    direct[i] = server.point_risk(queries[i]);
  }
  // Concurrent submitters force real coalescing rounds.
  std::vector<std::thread> clients;
  constexpr std::size_t kClients = 6;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = c; i < queries.size(); i += kClients) {
        batched[i] = server.point_risk_batched(queries[i]);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(batched[i] == direct[i]) << "batched diverged at " << i;
  }
}

TEST_F(ServeTest, ScopedRegistryIsolatesServeCounters) {
  // The scoped registry keeps this test's counts exact even though the
  // shared server has been recording serve.* metrics into the default
  // global registry for the whole binary.
  obs::ScopedRegistry scoped;
  Server server(tiny_config());
  const PointRiskQuery q{{-98.0, 39.0}, 0.0};
  const PointRiskResponse first = server.point_risk(q);
  const PointRiskResponse again = server.point_risk(q);
  EXPECT_TRUE(first == again);
  obs::Registry& reg = scoped.registry();
  EXPECT_EQ(&server.registry(), &reg)
      << "a server built under a ScopedRegistry must record into it";
  EXPECT_EQ(reg.counter(obs::metrics::kServeQueries).value(), 2u);
  EXPECT_EQ(reg.counter(obs::metrics::kServeCacheMisses).value(), 1u);
  EXPECT_EQ(reg.counter(obs::metrics::kServeCacheHits).value(), 1u);
}

TEST_F(ServeTest, RebuildPublishesAndFailedRebuildKeepsServing) {
  obs::ScopedRegistry scoped;
  Server server(tiny_config(1));
  EXPECT_EQ(server.epoch(), 1u);
  const PointRiskQuery q{{-105.0, 40.0}, 0.0};
  (void)server.point_risk(q);  // seed the cache at epoch 1

  ASSERT_TRUE(server.rebuild(tiny_config(2)).ok());
  EXPECT_EQ(server.epoch(), 2u);
  EXPECT_EQ(server.config().seed, 2u);
  obs::Registry& reg = scoped.registry();
  EXPECT_EQ(reg.counter(obs::metrics::kServeSwapsPublished).value(), 1u);
  EXPECT_EQ(reg.counter(obs::metrics::kServeCacheInvalidations).value(), 1u);
  // Nothing read epoch 1 after the swap, so it reclaims immediately.
  EXPECT_EQ(server.snapshots().retired(), 1u);
  EXPECT_EQ(server.snapshots().reclaimed(), 1u);

  {
    fault::ScopedInjector guard(
        fault::Injector::parse("serve.snapshot.build=1").take());
    const fault::Status failed = server.rebuild(tiny_config(3));
    EXPECT_FALSE(failed.ok());
    EXPECT_EQ(failed.code, fault::ErrCode::kInjected);
  }
  EXPECT_EQ(server.epoch(), 2u) << "a failed swap must leave epoch 2 serving";
  EXPECT_EQ(server.config().seed, 2u);
  EXPECT_EQ(reg.counter(obs::metrics::kServeSwapsFailed).value(), 1u);
  EXPECT_EQ(reg.counter(obs::metrics::kServeSwapsPublished).value(), 1u);
  const PointRiskResponse after = server.point_risk(q);
  EXPECT_EQ(after.epoch, 2u);
}

TEST_F(ServeTest, UnbuildableInitialSnapshotThrows) {
  fault::ScopedInjector guard(
      fault::Injector::parse("serve.snapshot.build=1").take());
  EXPECT_THROW(Server{tiny_config()}, fault::IoError)
      << "a server with nothing to serve should fail loudly";
}

}  // namespace
}  // namespace fa::serve

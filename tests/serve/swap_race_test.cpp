// Snapshot hot-swap under fire: writer threads republishing epochs
// while reader threads query through every path (direct, batched,
// cached). Run under FA_SANITIZE=thread this is the serving layer's
// data-race proof; the assertions here pin the memory-lifetime story —
// every response carries a live, monotonically advancing epoch, and
// every retired snapshot is reclaimed once its readers drain.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "fault/injector.hpp"
#include "serve/server.hpp"
#include "serve_test_util.hpp"

namespace fa::serve {
namespace {

using testing::AnyQuery;
using testing::AnyResponse;
using testing::ask;
using testing::epoch_of;
using testing::make_stream;
using testing::tiny_config;

// Readers hammer a server while writers swap snapshots; `rebuild_spec`
// optionally arms the snapshot-build fault seam so some swaps fail
// mid-traffic (a failed swap must be invisible to readers).
void run_swap_race(const char* rebuild_spec) {
  constexpr int kReaders = 4;
  constexpr int kWriters = 2;
  constexpr int kSwapsPerWriter = 3;
  constexpr std::size_t kQueriesPerReader = 160;

  Server server(tiny_config(1));
  // Armed only after the initial snapshot exists: the seam is meant to
  // fail *rebuilds*, and no query threads are running yet.
  std::optional<fault::ScopedInjector> guard;
  if (rebuild_spec != nullptr) {
    guard.emplace(fault::Injector::parse(rebuild_spec).take());
  }

  std::atomic<std::uint64_t> published{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<bool> start{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      const std::vector<AnyQuery> stream =
          make_stream(kQueriesPerReader, 1000 + static_cast<std::uint64_t>(r));
      Epoch last = 0;
      for (std::size_t i = 0; i < stream.size(); ++i) {
        Epoch epoch = 0;
        // Alternate the batched path in so rounds race the swaps too.
        if (const auto* p = std::get_if<PointRiskQuery>(&stream[i]);
            p != nullptr && i % 2 == 0) {
          epoch = server.point_risk_batched(*p).epoch;
        } else {
          epoch = epoch_of(ask(server, stream[i]));
        }
        // 0 never serves, and each acquire() sees the current snapshot,
        // so the epochs one thread observes can only move forward.
        if (epoch == 0 || epoch < last) violations.fetch_add(1);
        last = epoch;
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int s = 0; s < kSwapsPerWriter; ++s) {
        const std::uint64_t seed =
            2 + static_cast<std::uint64_t>(w * kSwapsPerWriter + s);
        if (server.rebuild(tiny_config(seed)).ok()) {
          published.fetch_add(1);
        } else {
          failed.fetch_add(1);
        }
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(violations.load(), 0)
      << "readers observed a dead or regressed epoch";
  EXPECT_EQ(published.load() + failed.load(),
            static_cast<std::uint64_t>(kWriters * kSwapsPerWriter));
  // Epochs are only burned by successful publishes.
  EXPECT_EQ(server.epoch(), 1u + published.load());
  // All readers drained: every displaced snapshot's storage is free.
  EXPECT_EQ(server.snapshots().retired(), published.load());
  EXPECT_EQ(server.snapshots().reclaimed(), published.load())
      << "a retired snapshot outlived its last reader";
  // One last query against the surviving epoch still answers.
  EXPECT_EQ(server.point_risk({{-98.0, 39.0}, 0.0}).epoch, server.epoch());
}

TEST(ServeSwapRace, ReadersSurviveConcurrentSwaps) {
  run_swap_race(nullptr);
}

TEST(ServeSwapRace, FailedSwapsAreInvisibleToReaders) {
  // ~half the builds fail at the serve.snapshot.build seam
  // (deterministically in the epoch number); readers must not notice.
  run_swap_race("serve.snapshot.build=0.5");
}

}  // namespace
}  // namespace fa::serve

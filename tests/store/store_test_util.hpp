// Shared scaffolding for the store suite: a throwaway store directory
// and one lazily built tiny world whose encoded image every test
// reuses (world builds dominate runtime; the image is immutable).
#pragma once

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/provider_risk.hpp"
#include "core/world.hpp"
#include "store/codec.hpp"
#include "../serve/serve_test_util.hpp"

namespace fa::store::testing {

// mkdtemp-backed directory, recursively removed on destruction.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/fastore-test-XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
};

// One world per test binary; every caller shares the same build.
inline const core::World& tiny_world() {
  static const core::World* world = new core::World(
      core::World::build(serve::testing::tiny_config()));
  return *world;
}

inline const core::ProviderRiskResult& tiny_risk() {
  static const core::ProviderRiskResult* risk =
      new core::ProviderRiskResult(core::run_provider_risk(tiny_world()));
  return *risk;
}

// The canonical encoded image of tiny_world().
inline const std::string& tiny_image() {
  static const std::string* image =
      new std::string(encode_world(tiny_world(), tiny_risk()));
  return *image;
}

}  // namespace fa::store::testing

// Store x serve x net integration (`ctest -L store`, `-L net`): cold
// start from a persisted generation, the disk-sourced hot-swap
// (rebuild_from_store — the SIGHUP path of `fa_served --store`) under
// live network load, and byte-identity between a rebuild-from-disk and
// the equivalent in-memory rebuild.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "store_test_util.hpp"

namespace fa::store {
namespace {

using serve::testing::AnyQuery;
using serve::testing::ask;
using serve::testing::epoch_of;
using serve::testing::make_stream;
using serve::testing::tiny_config;
using testing::TempDir;

constexpr const char* kLoop = "127.0.0.1";

serve::Request to_request(const AnyQuery& q) {
  return std::visit([](const auto& query) { return serve::Request{query}; },
                    q);
}

serve::Response to_response(const serve::testing::AnyResponse& r) {
  return std::visit([](const auto& resp) { return serve::Response{resp}; }, r);
}

TEST(StoreServe, ColdStartFromStoreServesIdenticalBytes) {
  TempDir tmp;
  serve::ServerOptions opts;
  opts.store_dir = tmp.path;

  // First boot: the store is empty, so this is a fresh build.
  serve::Server built(tiny_config(), opts);
  EXPECT_FALSE(built.loaded_from_store());
  ASSERT_TRUE(built.save_snapshot().ok());

  // Second boot: same config, warm store — no world build at all.
  serve::Server loaded(tiny_config(), opts);
  EXPECT_TRUE(loaded.loaded_from_store());
  EXPECT_EQ(loaded.epoch(), 1u);

  for (const auto& q : make_stream(150, /*seed=*/41)) {
    EXPECT_EQ(serve::wire::encode(to_response(ask(built, q))),
              serve::wire::encode(to_response(ask(loaded, q))));
  }
}

TEST(StoreServe, ConfigMismatchFallsBackToFreshBuild) {
  TempDir tmp;
  serve::ServerOptions opts;
  opts.store_dir = tmp.path;
  {
    serve::Server seeded(tiny_config(/*seed=*/1), opts);
    ASSERT_TRUE(seeded.save_snapshot().ok());
  }
  // A different seed is a different scenario: the stored generation
  // must not be adopted silently.
  serve::Server other(tiny_config(/*seed=*/2), opts);
  EXPECT_FALSE(other.loaded_from_store());
  EXPECT_TRUE(other.config() == tiny_config(2));
}

TEST(StoreServe, SaveWithoutStoreIsAnError) {
  serve::Server server(tiny_config());
  const fault::Status s = server.save_snapshot();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code, fault::ErrCode::kIoFailure);
}

// The satellite contract: rebuilding from disk publishes a new epoch
// whose bytes match an in-memory rebuild of the same scenario exactly.
TEST(StoreServe, RebuildFromStoreMatchesInMemoryRebuild) {
  TempDir tmp;
  serve::ServerOptions opts;
  opts.store_dir = tmp.path;

  serve::Server disk(tiny_config(), opts);
  ASSERT_TRUE(disk.save_snapshot().ok());
  ASSERT_TRUE(disk.rebuild_from_store().ok());
  EXPECT_EQ(disk.epoch(), 2u);

  serve::Server mem(tiny_config());
  ASSERT_TRUE(mem.rebuild(tiny_config()).ok());
  EXPECT_EQ(mem.epoch(), 2u);

  for (const auto& q : make_stream(150, /*seed=*/43)) {
    EXPECT_EQ(serve::wire::encode(to_response(ask(mem, q))),
              serve::wire::encode(to_response(ask(disk, q))));
  }
}

TEST(StoreServe, RebuildFromEmptyStoreKeepsServing) {
  TempDir tmp;
  serve::ServerOptions opts;
  opts.store_dir = tmp.path;
  serve::Server server(tiny_config(), opts);  // fresh build, nothing saved
  const serve::Epoch before = server.epoch();
  const fault::Status s = server.rebuild_from_store();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(server.epoch(), before) << "failed swap must not move the epoch";
  serve::PointRiskResponse r = server.point_risk({{-120.0, 38.0}, 0.0});
  EXPECT_EQ(r.epoch, before);
}

// Disk-sourced hot-swap under concurrent network load: clients hammer a
// live NetServer while the main thread swaps in store-recovered epochs.
// Every reply must be whole-epoch (epoch purity is per-response by
// construction; here we assert the observed sequence per connection is
// monotone — a swap can never roll a client backwards).
TEST(StoreServe, HotSwapFromStoreUnderNetworkLoad) {
  TempDir tmp;
  serve::ServerOptions opts;
  opts.store_dir = tmp.path;
  serve::Server server(tiny_config(), opts);
  ASSERT_TRUE(server.save_snapshot().ok());

  net::NetServer net_server(server);  // ephemeral port
  const std::uint16_t port = net_server.port();

  constexpr int kThreads = 3;
  constexpr int kPerThread = 120;
  std::atomic<int> failures{0};
  std::atomic<int> answered{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      net::Client::BackoffPolicy policy;
      policy.seed = 100 + static_cast<std::uint64_t>(t);
      fault::Result<net::Client> c =
          net::Client::connect_retry(kLoop, port, policy);
      if (!c.ok()) {
        failures.fetch_add(1);
        return;
      }
      serve::Epoch last_seen = 0;
      const auto stream = make_stream(kPerThread, 1000 + t);
      for (const auto& q : stream) {
        fault::Result<net::Client::Reply> reply =
            c.value().call(to_request(q));
        if (!reply.ok() || !reply.value().ok()) {
          failures.fetch_add(1);
          return;
        }
        const serve::Epoch e = std::visit(
            [](const auto& resp) { return resp.epoch; },
            *reply.value().response);
        if (e < last_seen) {
          failures.fetch_add(1);
          return;
        }
        last_seen = e;
        answered.fetch_add(1);
      }
    });
  }

  // Two disk-sourced swaps while the clients run.
  ASSERT_TRUE(server.rebuild_from_store().ok());
  ASSERT_TRUE(server.rebuild_from_store().ok());
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(answered.load(), kThreads * kPerThread);
  EXPECT_EQ(server.epoch(), 3u);

  // The final epoch still answers byte-identically to a fresh build of
  // the same scenario (the store round-tripped it twice by now).
  serve::Server reference(tiny_config());
  for (const auto& q : make_stream(60, /*seed=*/77)) {
    serve::Response want = to_response(ask(reference, q));
    serve::Response got = to_response(ask(server, q));
    // Epochs differ (1 vs 3); compare through the wire encoding after
    // pinning both to the same epoch value.
    std::visit([](auto& r) { r.epoch = 0; }, want);
    std::visit([](auto& r) { r.epoch = 0; }, got);
    EXPECT_EQ(serve::wire::encode(want), serve::wire::encode(got));
  }

  net_server.shutdown(/*drain=*/true);
}

}  // namespace
}  // namespace fa::store

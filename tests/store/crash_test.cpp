// Crash-injection harness for the commit protocol. A forked child runs
// StoreDir::commit() with a CommitHooks crash step armed — _exit(2) at
// a deterministic instruction boundary, exactly like kill -9 at that
// point — and the parent then runs the recovery ladder and asserts the
// invariant the store exists to provide: recovery NEVER surfaces a
// half-written world. Every recovered image must re-encode to the
// canonical bytes; when nothing was ever durable, recovery must say so
// with an error, not garbage.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "store/codec.hpp"
#include "store/recovery.hpp"
#include "store/store.hpp"
#include "store_test_util.hpp"

namespace fa::store {
namespace {

using CrashStep = CommitHooks::CrashStep;
using testing::TempDir;
using testing::tiny_image;

// Forks, commits `image` with `hooks` in the child, and reaps it.
// Returns the child's exit code (2 = the armed crash fired).
int crash_commit(const std::string& dir_path, const std::string& image,
                 const CommitHooks& hooks) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Child: no gtest machinery, no stdio cleanup — commit and fall
    // through to _exit(0) only if the armed crash step never fired.
    fault::Result<StoreDir> dir = StoreDir::open(dir_path);
    if (!dir.ok()) ::_exit(3);
    (void)dir.value().commit(image, hooks);
    ::_exit(0);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

struct CrashCase {
  const char* name;
  CommitHooks hooks;
};

std::vector<CrashCase> crash_matrix(std::size_t image_size) {
  return {
      {"partial_write_0_bytes", {CrashStep::kAfterPartialWrite, 0}},
      {"partial_write_1_byte", {CrashStep::kAfterPartialWrite, 1}},
      {"partial_write_half", {CrashStep::kAfterPartialWrite, image_size / 2}},
      {"partial_write_all_but_one",
       {CrashStep::kAfterPartialWrite, image_size - 1}},
      {"after_tmp_write", {CrashStep::kAfterTmpWrite}},
      {"after_rename", {CrashStep::kAfterRename}},
      {"mid_manifest", {CrashStep::kMidManifest}},
  };
}

// The core matrix: one good generation exists, then a second commit
// crashes at every interesting point. Recovery must always produce a
// world whose re-encoding is byte-identical to the canonical image —
// whichever generation it came from.
TEST(CrashMatrix, RecoveryNeverServesAHalfWrittenWorld) {
  const std::string& image = tiny_image();
  for (const CrashCase& c : crash_matrix(image.size())) {
    SCOPED_TRACE(c.name);
    TempDir tmp;
    {
      StoreDir dir = StoreDir::open(tmp.path).take();
      ASSERT_TRUE(dir.commit(image).ok());
    }
    ASSERT_EQ(crash_commit(tmp.path, image, c.hooks), 2)
        << "armed crash step did not fire";

    RecoveryReport report;
    fault::Result<RecoveredWorld> rec = recover_from(tmp.path, &report);
    ASSERT_TRUE(rec.ok()) << rec.status().to_string();
    // Crashes before the rename leave only gen 1; after it, either
    // generation is a legitimate (identical-content) winner.
    if (c.hooks.crash_at == CrashStep::kAfterPartialWrite ||
        c.hooks.crash_at == CrashStep::kAfterTmpWrite) {
      EXPECT_EQ(rec.value().generation.number, 1u);
    } else {
      EXPECT_GE(rec.value().generation.number, 1u);
      EXPECT_LE(rec.value().generation.number, 2u);
    }
    const std::string reencoded = encode_world(
        rec.value().loaded.world, rec.value().loaded.provider_risk);
    EXPECT_EQ(reencoded, image) << "recovered world diverged from canonical";
  }
}

// First-ever commit crashing: there is nothing durable to fall back to,
// so recovery must degrade to an explicit error (the caller's cue to do
// a full rebuild) — except after the rename, where the orphaned but
// complete generation is recoverable via the scan fallback.
TEST(CrashMatrix, CrashOnEmptyStoreDegradesCleanly) {
  const std::string& image = tiny_image();
  for (const CrashCase& c : crash_matrix(image.size())) {
    SCOPED_TRACE(c.name);
    TempDir tmp;
    ASSERT_TRUE(StoreDir::open(tmp.path).ok());  // create the directory
    ASSERT_EQ(crash_commit(tmp.path, image, c.hooks), 2);

    RecoveryReport report;
    fault::Result<RecoveredWorld> rec = recover_from(tmp.path, &report);
    const bool generation_durable =
        c.hooks.crash_at == CrashStep::kAfterRename ||
        c.hooks.crash_at == CrashStep::kMidManifest;
    if (generation_durable) {
      ASSERT_TRUE(rec.ok()) << rec.status().to_string();
      EXPECT_EQ(rec.value().generation.number, 1u);
      const std::string reencoded = encode_world(
          rec.value().loaded.world, rec.value().loaded.provider_risk);
      EXPECT_EQ(reencoded, image);
    } else {
      ASSERT_FALSE(rec.ok()) << "recovered a world that was never durable";
      EXPECT_EQ(rec.status().code, fault::ErrCode::kIoFailure);
    }
  }
}

// After a crash the store must stay writable: the next commit picks a
// fresh number (orphans are never overwritten) and recovery then
// prefers it.
TEST(CrashMatrix, StoreStaysWritableAfterEveryCrash) {
  const std::string& image = tiny_image();
  for (const CrashCase& c : crash_matrix(image.size())) {
    SCOPED_TRACE(c.name);
    TempDir tmp;
    {
      StoreDir dir = StoreDir::open(tmp.path).take();
      ASSERT_TRUE(dir.commit(image).ok());
    }
    ASSERT_EQ(crash_commit(tmp.path, image, c.hooks), 2);

    StoreDir dir = StoreDir::open(tmp.path).take();
    const std::uint64_t next = dir.next_generation();
    fault::Result<Generation> g = dir.commit(image);
    ASSERT_TRUE(g.ok()) << g.status().to_string();
    EXPECT_EQ(g.value().number, next);

    fault::Result<RecoveredWorld> rec = recover_from(tmp.path);
    ASSERT_TRUE(rec.ok()) << rec.status().to_string();
    EXPECT_EQ(rec.value().generation.number, g.value().number);
  }
}

}  // namespace
}  // namespace fa::store

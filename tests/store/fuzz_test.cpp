// Seeded format fuzzer: N=1000 deterministic mutations of a clean
// snapshot image — single-byte flips anywhere in the file, truncations,
// extensions, and zeroed runs. The acceptance bar is absolute: every
// mutant must be *detected* (error Status from decode_world, no crash,
// no silent acceptance), because the CRC ladder covers every byte of
// the file. Runs clean under ASan/TSan (the verify recipe).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>

#include "store/codec.hpp"
#include "store/format.hpp"
#include "store_test_util.hpp"

namespace fa::store {
namespace {

using testing::tiny_image;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Deterministic mutant for `seed`; always differs from the original.
std::string mutate(const std::string& image, std::uint64_t seed) {
  const std::uint64_t r0 = splitmix64(seed);
  const std::uint64_t r1 = splitmix64(r0);
  const std::uint64_t r2 = splitmix64(r1);
  std::string m = image;
  switch (r0 % 8) {
    case 0: {  // truncate (possibly to empty)
      m.resize(r1 % image.size());
      break;
    }
    case 1: {  // extend with junk
      m.append(1 + r1 % 64, static_cast<char>(0xAB));
      break;
    }
    case 2: {  // zero a short run
      const std::size_t at = r1 % image.size();
      const std::size_t len = std::min<std::size_t>(1 + r2 % 32,
                                                    image.size() - at);
      bool changed = false;
      for (std::size_t i = 0; i < len; ++i) {
        changed |= m[at + i] != 0;
        m[at + i] = 0;
      }
      if (!changed) m[at] = 1;  // run was already zero: force a delta
      break;
    }
    default: {  // single-byte XOR with a non-zero mask (the bulk)
      const std::size_t at = r1 % image.size();
      m[at] = static_cast<char>(m[at] ^ (1 + r2 % 255));
      break;
    }
  }
  return m;
}

TEST(FormatFuzz, AllThousandMutantsDetected) {
  const std::string& image = tiny_image();
  ASSERT_TRUE(decode_world(image.data(), image.size()).ok())
      << "the unmutated image must decode clean";

  int detected = 0;
  constexpr int kSeeds = 1000;
  for (int seed = 0; seed < kSeeds; ++seed) {
    const std::string m = mutate(image, static_cast<std::uint64_t>(seed));
    ASSERT_NE(m, image) << "mutation " << seed << " was a no-op";
    fault::Result<LoadedWorld> r = decode_world(m.data(), m.size());
    if (!r.ok()) ++detected;
    EXPECT_FALSE(r.ok()) << "seed " << seed << " silently accepted";

    // The inspector must agree (and, above all, must not crash).
    fault::Result<FileReport> report = inspect_image(m.data(), m.size());
    EXPECT_TRUE(!report.ok() || !report.value().ok())
        << "seed " << seed << " inspected clean";
  }
  EXPECT_EQ(detected, kSeeds);
}

// Finds the section-table entry for `kind`; returns its entry offset.
std::size_t find_entry(const std::string& image, SectionKind kind) {
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    const std::size_t e = kHeaderSize + i * kSectionEntrySize;
    std::uint32_t k = 0;
    std::memcpy(&k, image.data() + e, 4);
    if (k == static_cast<std::uint32_t>(kind)) return e;
  }
  ADD_FAILURE() << "section " << static_cast<std::uint32_t>(kind)
                << " not found";
  return 0;
}

// Recomputes the patched section's CRC plus the body and footer
// checksums, producing a CRC-consistent *hostile* image: every checksum
// matches, so only semantic validation stands between the decoder and
// the payload.
std::string reseal(std::string image, std::size_t entry) {
  std::uint64_t off = 0, len = 0;
  std::memcpy(&off, image.data() + entry + 8, 8);
  std::memcpy(&len, image.data() + entry + 16, 8);
  const std::uint32_t scrc =
      crc32(image.data() + off, static_cast<std::size_t>(len));
  std::memcpy(image.data() + entry + 24, &scrc, 4);
  const std::size_t data_end = image.size() - kFooterSize;
  const std::uint32_t body = crc32(image.data(), data_end);
  std::memcpy(image.data() + data_end + 8, &body, 4);
  const std::uint32_t fcrc = crc32(image.data() + data_end, 24);
  std::memcpy(image.data() + data_end + 24, &fcrc, 4);
  return image;
}

// Regression: a CRC-consistent image whose county-name offset array is
// [0, HUGE, ...] must be rejected before any name is copied — copying
// as we validate would read ~1 GiB past the blob (OOB read / SIGSEGV
// under ASan) before the monotonicity check at the next index fires.
TEST(FormatFuzz, HostileCountyNameOffsetsRejectedWithoutOobRead) {
  std::string m = tiny_image();
  const std::size_t entry = find_entry(m, SectionKind::kCountyNames);
  ASSERT_NE(entry, 0u);
  std::uint64_t off = 0;
  std::memcpy(&off, m.data() + entry + 8, 8);
  std::uint32_t count = 0;
  std::memcpy(&count, m.data() + off, 4);
  // Need offs[1] to be an interior offset (not offs.back(), which the
  // blob-size check pins) for the hostile value to reach the copy loop.
  ASSERT_GE(count, 2u);
  // offs[1] lives right after the u32 count and offs[0].
  const std::uint32_t huge = 0x40000000u;  // 1 GiB, far past the mmap
  std::memcpy(m.data() + off + 8, &huge, 4);
  m = reseal(std::move(m), entry);

  fault::Result<LoadedWorld> r = decode_world(m.data(), m.size());
  ASSERT_FALSE(r.ok()) << "hostile offsets silently accepted";
  EXPECT_EQ(r.status().code, fault::ErrCode::kOutOfRange)
      << r.status().to_string();
}

}  // namespace
}  // namespace fa::store

// Codec round-trip properties: deterministic encode, re-encode byte
// identity, clean inspection, and — the contract that matters to the
// serving layer — a snapshot adopted from a decoded world answers every
// query byte-identically to one built in memory.
#include <gtest/gtest.h>

#include <string>

#include "serve/snapshot.hpp"
#include "serve/wire.hpp"
#include "store/codec.hpp"
#include "store/format.hpp"
#include "store_test_util.hpp"

namespace fa::store {
namespace {

using serve::testing::ask_snapshot;
using serve::testing::make_stream;
using serve::testing::tiny_config;
using testing::tiny_image;
using testing::tiny_risk;
using testing::tiny_world;

serve::Response to_response(const serve::testing::AnyResponse& r) {
  return std::visit([](const auto& resp) { return serve::Response{resp}; }, r);
}

TEST(Roundtrip, EncodeIsDeterministic) {
  const std::string again = encode_world(tiny_world(), tiny_risk());
  ASSERT_EQ(tiny_image().size(), again.size());
  EXPECT_EQ(tiny_image(), again);
}

TEST(Roundtrip, ImageIsAlignedAndInspectsClean) {
  const std::string& image = tiny_image();
  fault::Result<FileReport> report =
      inspect_image(image.data(), image.size());
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().ok());
  EXPECT_TRUE(report.value().header_ok);
  EXPECT_TRUE(report.value().footer_ok);
  EXPECT_TRUE(report.value().body_crc_ok);
  EXPECT_EQ(report.value().version, kFormatVersion);
  EXPECT_EQ(report.value().file_size, image.size());
  EXPECT_EQ(report.value().sections.size(), kSectionCount);
  for (const SectionReport& s : report.value().sections) {
    EXPECT_TRUE(s.crc_ok) << section_kind_name(s.info.kind);
    EXPECT_EQ(s.info.offset % kSectionAlign, 0u)
        << section_kind_name(s.info.kind) << " payload is misaligned";
  }
}

TEST(Roundtrip, DecodeThenReencodeIsByteIdentical) {
  const std::string& image = tiny_image();
  fault::Result<LoadedWorld> loaded = decode_world(image.data(), image.size());
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  const std::string again =
      encode_world(loaded.value().world, loaded.value().provider_risk);
  EXPECT_EQ(image, again) << "decode -> encode must be the identity";
}

TEST(Roundtrip, DecodedConfigAndCountsMatch) {
  const std::string& image = tiny_image();
  fault::Result<LoadedWorld> loaded = decode_world(image.data(), image.size());
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_TRUE(loaded.value().world.config() == tiny_config());
  EXPECT_EQ(loaded.value().world.corpus().size(), tiny_world().corpus().size());
  EXPECT_EQ(loaded.value().provider_risk.regional_brands_at_risk,
            tiny_risk().regional_brands_at_risk);
}

// The tentpole's golden byte-identity: a loaded snapshot's wire bytes
// equal a freshly built snapshot's wire bytes for every query shape.
TEST(Roundtrip, LoadedSnapshotAnswersByteIdentically) {
  const std::string& image = tiny_image();
  fault::Result<LoadedWorld> loaded = decode_world(image.data(), image.size());
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();

  constexpr serve::Epoch kEpoch = 7;
  auto built = serve::Snapshot::adopt(
      core::World::build(tiny_config()), kEpoch);
  auto restored =
      serve::Snapshot::adopt(std::move(loaded.value().world), kEpoch);

  for (const auto& q : make_stream(200, /*seed=*/97)) {
    const std::string want =
        serve::wire::encode(to_response(ask_snapshot(*built, q)));
    const std::string got =
        serve::wire::encode(to_response(ask_snapshot(*restored, q)));
    ASSERT_EQ(want, got) << "loaded snapshot diverged from built snapshot";
  }
}

TEST(Roundtrip, TruncationsNeverDecode) {
  const std::string& image = tiny_image();
  // Sweep short prefixes plus every boundary the format cares about.
  for (std::size_t len :
       {std::size_t{0}, std::size_t{1}, std::size_t{63}, std::size_t{64},
        std::size_t{95}, std::size_t{96}, image.size() / 2,
        image.size() - 33, image.size() - 32, image.size() - 1}) {
    fault::Result<LoadedWorld> r = decode_world(image.data(), len);
    EXPECT_FALSE(r.ok()) << "truncated to " << len << " bytes decoded";
  }
  fault::Result<LoadedWorld> full = decode_world(image.data(), image.size());
  EXPECT_TRUE(full.ok());
}

}  // namespace
}  // namespace fa::store

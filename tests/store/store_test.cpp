// StoreDir unit suite: manifest syntax/checksum/hash-chain, the commit
// + prune protocol, scan fallback, both fault seams, and the recovery
// ladder's degrade order (newest good generation wins, older ones are
// the fallback, a full rebuild is the floor).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "store/codec.hpp"
#include "store/format.hpp"
#include "store/recovery.hpp"
#include "store/store.hpp"
#include "store_test_util.hpp"

namespace fa::store {
namespace {

using testing::TempDir;
using testing::tiny_image;

struct ObsOn {
  bool was = obs::enabled();
  ObsOn() { obs::set_enabled(true); }
  ~ObsOn() { obs::set_enabled(was); }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

bool file_exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

Manifest sample_manifest() {
  Manifest m;
  m.generations.push_back({1, generation_filename(1), 123, 0xDEADBEEFu});
  m.generations.push_back({2, generation_filename(2), 456, 0x01020304u});
  m.generations.push_back({7, generation_filename(7), 789, 0xCAFEF00Du});
  return m;
}

// Golden vectors for the on-disk polynomial (reflected 0x04C11DB7, the
// zlib/PNG CRC-32): "123456789" -> 0xCBF43926 is the standard check
// value. Pins the checksum across implementation changes (table width,
// slicing factor) — a faster kernel that alters one output bit would
// silently orphan every existing store.
TEST(Crc32, MatchesPublishedCheckValues) {
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0x00000000u);
  EXPECT_EQ(crc32("a", 1), 0xE8B7BE43u);
  // One flat pass takes the wide kernel (PCLMUL folding where the CPU
  // has it); chaining the same bytes through sub-128-byte pieces pins
  // every piece to the table loop. Agreement at every split point
  // cross-checks the two kernels against each other, plus the seed-
  // chaining identity crc32(a+b) == crc32(b, crc32(a)).
  std::string long_input;
  for (int i = 0; i < 1000; ++i) long_input += "The quick brown fox ";
  const std::uint32_t flat = crc32(long_input.data(), long_input.size());
  std::uint32_t pieced = 0;
  for (std::size_t at = 0; at < long_input.size();) {
    const std::size_t n = std::min<std::size_t>(
        127 - (at % 63), long_input.size() - at);
    pieced = crc32(long_input.data() + at, n, pieced);
    at += n;
  }
  EXPECT_EQ(pieced, flat);
  const std::uint32_t head = crc32(long_input.data(), 4321);
  const std::uint32_t chained =
      crc32(long_input.data() + 4321, long_input.size() - 4321, head);
  EXPECT_EQ(chained, flat);
}

TEST(Manifest, FilenameFormat) {
  EXPECT_EQ(generation_filename(1), "gen-000001.fa");
  EXPECT_EQ(generation_filename(123456), "gen-123456.fa");
}

TEST(Manifest, RoundTrip) {
  const Manifest m = sample_manifest();
  fault::Result<Manifest> parsed = parse_manifest(encode_manifest(m), "test");
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed.value().generations.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(parsed.value().generations[i].number, m.generations[i].number);
    EXPECT_EQ(parsed.value().generations[i].filename,
              m.generations[i].filename);
    EXPECT_EQ(parsed.value().generations[i].size, m.generations[i].size);
    EXPECT_EQ(parsed.value().generations[i].crc, m.generations[i].crc);
  }
}

TEST(Manifest, EveryByteFlipIsDetected) {
  const std::string text = encode_manifest(sample_manifest());
  for (std::size_t i = 0; i < text.size(); ++i) {
    std::string bad = text;
    bad[i] ^= 0x01;
    fault::Result<Manifest> parsed = parse_manifest(bad, "test");
    EXPECT_FALSE(parsed.ok()) << "flip at byte " << i << " parsed clean";
  }
}

TEST(Manifest, MissingChecksumLineIsTorn) {
  std::string text = encode_manifest(sample_manifest());
  // Drop the final "crc <hex>" line (a torn manifest write).
  const std::size_t cut = text.rfind("crc ");
  ASSERT_NE(cut, std::string::npos);
  fault::Result<Manifest> parsed = parse_manifest(text.substr(0, cut), "test");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code, fault::ErrCode::kTruncated);
}

// A forged manifest whose overall checksum is valid but whose entries
// skip a link must still fail: the per-entry hash chain seeds each link
// with the previous one, so deleting the middle line breaks gen 7.
TEST(Manifest, HashChainCatchesDroppedEntry) {
  const std::string text = encode_manifest(sample_manifest());
  std::string forged;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    const std::string line = text.substr(start, end - start);
    if (line.find(generation_filename(2)) == std::string::npos &&
        line.rfind("crc ", 0) != 0) {
      forged += line + "\n";
    }
    start = end + 1;
  }
  char hex[16];
  std::snprintf(hex, sizeof hex, "%08x",
                crc32(forged.data(), forged.size()));
  forged += std::string("crc ") + hex + "\n";
  fault::Result<Manifest> parsed = parse_manifest(forged, "test");
  ASSERT_FALSE(parsed.ok()) << "chain-skipping manifest parsed clean";
}

TEST(Manifest, RejectsNonAscendingNumbers) {
  Manifest m;
  m.generations.push_back({5, generation_filename(5), 10, 1});
  m.generations.push_back({5, generation_filename(5), 10, 1});
  fault::Result<Manifest> parsed = parse_manifest(encode_manifest(m), "test");
  EXPECT_FALSE(parsed.ok());
}

TEST(StoreDir, CommitReadBackAndNextGeneration) {
  TempDir tmp;
  fault::Result<StoreDir> dir = StoreDir::open(tmp.path);
  ASSERT_TRUE(dir.ok()) << dir.status().to_string();
  EXPECT_EQ(dir.value().next_generation(), 1u);

  fault::Result<Generation> g1 = dir.value().commit("first image");
  ASSERT_TRUE(g1.ok()) << g1.status().to_string();
  EXPECT_EQ(g1.value().number, 1u);
  EXPECT_EQ(g1.value().size, std::string("first image").size());

  fault::Result<Generation> g2 = dir.value().commit("second image");
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2.value().number, 2u);
  EXPECT_EQ(dir.value().next_generation(), 3u);

  fault::Result<Manifest> m = dir.value().read_manifest();
  ASSERT_TRUE(m.ok()) << m.status().to_string();
  ASSERT_EQ(m.value().generations.size(), 2u);
  EXPECT_EQ(m.value().generations[1].crc,
            crc32("second image", std::string("second image").size()));
  EXPECT_EQ(slurp(dir.value().file_path(g2.value().filename)), "second image");
}

TEST(StoreDir, PrunesBeyondKeepWindow) {
  ObsOn obs_on;
  TempDir tmp;
  StoreDir dir = StoreDir::open(tmp.path).take();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(dir.commit("image " + std::to_string(i)).ok());
  }
  fault::Result<Manifest> m = dir.read_manifest();
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m.value().generations.size(), StoreDir::kKeepGenerations);
  EXPECT_EQ(m.value().generations.front().number, 3u);
  EXPECT_EQ(m.value().generations.back().number, 6u);
  EXPECT_FALSE(file_exists(dir.file_path(generation_filename(1))));
  EXPECT_FALSE(file_exists(dir.file_path(generation_filename(2))));
  EXPECT_TRUE(file_exists(dir.file_path(generation_filename(3))));
}

TEST(StoreDir, ScanIgnoresTmpDebrisAndStrangers) {
  TempDir tmp;
  StoreDir dir = StoreDir::open(tmp.path).take();
  ASSERT_TRUE(dir.commit("image").ok());
  spit(dir.file_path("gen-000099.fa.tmp"), "torn debris");
  spit(dir.file_path("notes.txt"), "not a generation");
  const Manifest scanned = dir.scan();
  ASSERT_EQ(scanned.generations.size(), 1u);
  EXPECT_EQ(scanned.generations[0].number, 1u);
  // Orphan tmp debris must not advance the generation counter either.
  EXPECT_EQ(dir.next_generation(), 2u);
}

TEST(StoreDir, TornWriteSeamFailsCommitAndKeepsManifest) {
  ObsOn obs_on;
  TempDir tmp;
  StoreDir dir = StoreDir::open(tmp.path).take();
  ASSERT_TRUE(dir.commit(tiny_image()).ok());

  {
    fault::ScopedInjector torn(
        fault::Injector::parse("seed=11,store.write.torn=1").take());
    fault::Result<Generation> g = dir.commit(tiny_image());
    ASSERT_FALSE(g.ok());
    EXPECT_EQ(g.status().code, fault::ErrCode::kInjected);
  }

  // The manifest still lists exactly the one good generation, and the
  // ladder still recovers it despite the torn .tmp debris.
  fault::Result<Manifest> m = dir.read_manifest();
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m.value().generations.size(), 1u);
  fault::Result<RecoveredWorld> rec = RecoveryManager(std::move(dir)).recover();
  ASSERT_TRUE(rec.ok()) << rec.status().to_string();
  EXPECT_EQ(rec.value().generation.number, 1u);
}

TEST(Recovery, ReadCorruptSeamRejectsButNeverDamagesDisk) {
  TempDir tmp;
  StoreDir dir = StoreDir::open(tmp.path).take();
  ASSERT_TRUE(dir.commit(tiny_image()).ok());
  RecoveryManager mgr(std::move(dir));
  const Generation gen = mgr.dir().read_manifest().take().generations[0];

  {
    fault::ScopedInjector corrupt(
        fault::Injector::parse("seed=3,store.read.corrupt=1").take());
    fault::Result<LoadedWorld> r = mgr.load_generation(gen);
    EXPECT_FALSE(r.ok()) << "seeded bit flips must not decode";
  }
  // MAP_PRIVATE: the flips never reached the file.
  fault::Result<LoadedWorld> clean = mgr.load_generation(gen);
  EXPECT_TRUE(clean.ok()) << clean.status().to_string();
}

TEST(Recovery, LadderFallsBackToOlderGeneration) {
  ObsOn obs_on;
  obs::ScopedRegistry scope;
  obs::Registry& reg = scope.registry();
  TempDir tmp;
  StoreDir dir = StoreDir::open(tmp.path).take();
  ASSERT_TRUE(dir.commit(tiny_image()).ok());
  // Generation 2 is corrupt-at-rest: its manifest CRC matches the bytes
  // we committed, but the image's own checksum ladder rejects it.
  std::string bad = tiny_image();
  bad[bad.size() / 2] ^= 0x40;
  ASSERT_TRUE(dir.commit(bad).ok());

  RecoveryReport report;
  fault::Result<RecoveredWorld> rec =
      RecoveryManager(std::move(dir)).recover(&report);
  ASSERT_TRUE(rec.ok()) << rec.status().to_string();
  EXPECT_EQ(rec.value().generation.number, 1u);
  ASSERT_EQ(report.steps.size(), 2u);
  EXPECT_FALSE(report.steps[0].ok());
  EXPECT_TRUE(report.steps[1].ok());
  EXPECT_FALSE(report.manifest_fallback);
  EXPECT_EQ(reg.counter(obs::metrics::kStoreRecoverAttempts).value(), 2u);
  EXPECT_EQ(reg.counter(obs::metrics::kStoreRecoverRejected).value(), 1u);
  EXPECT_EQ(reg.counter(obs::metrics::kStoreRecoverLoaded).value(), 1u);
}

TEST(Recovery, ManifestCrcCatchesAtRestTamper) {
  TempDir tmp;
  StoreDir dir = StoreDir::open(tmp.path).take();
  ASSERT_TRUE(dir.commit(tiny_image()).ok());
  // Flip one bit of the committed file behind the manifest's back.
  const std::string path = dir.file_path(generation_filename(1));
  std::string bytes = slurp(path);
  bytes[bytes.size() / 3] ^= 0x10;
  spit(path, bytes);

  fault::Result<RecoveredWorld> rec = RecoveryManager(std::move(dir)).recover();
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code, fault::ErrCode::kParse);
}

TEST(Recovery, CorruptManifestFallsBackToScan) {
  ObsOn obs_on;
  obs::ScopedRegistry scope;
  obs::Registry& reg = scope.registry();
  TempDir tmp;
  StoreDir dir = StoreDir::open(tmp.path).take();
  ASSERT_TRUE(dir.commit("not a decodable image").ok());
  ASSERT_TRUE(dir.commit(tiny_image()).ok());
  spit(dir.file_path("MANIFEST"), "fastore-manifest 1\ngarbage\n");

  RecoveryReport report;
  fault::Result<RecoveredWorld> rec =
      RecoveryManager(std::move(dir)).recover(&report);
  ASSERT_TRUE(rec.ok()) << rec.status().to_string();
  EXPECT_EQ(rec.value().generation.number, 2u);
  EXPECT_TRUE(report.manifest_fallback);
  EXPECT_GE(report.steps.size(), 2u);  // fallback note + load step(s)
  EXPECT_EQ(reg.counter(obs::metrics::kStoreManifestFallbacks).value(), 1u);
}

TEST(Recovery, OverflowingGenerationFilenameIsIgnoredNotWrapped) {
  TempDir tmp;
  StoreDir dir = StoreDir::open(tmp.path).take();
  ASSERT_TRUE(dir.commit(tiny_image()).ok());
  // 2*2^64 + 3 wraps to 3 modulo 2^64: without an overflow guard the
  // scan would alias this junk file to "generation 3" and try it before
  // the real newest generation.
  spit(dir.file_path("gen-36893488147419103235.fa"), "junk");
  spit(dir.file_path("MANIFEST"), "fastore-manifest 1\ngarbage\n");

  RecoveryReport report;
  fault::Result<RecoveredWorld> rec =
      RecoveryManager(std::move(dir)).recover(&report);
  ASSERT_TRUE(rec.ok()) << rec.status().to_string();
  EXPECT_EQ(rec.value().generation.number, 1u);
  for (const fault::Status& step : report.steps) {
    EXPECT_EQ(step.message.find("36893488147419103235"), std::string::npos)
        << step.to_string();
  }
}

TEST(Recovery, EmptyStoreIsAnErrorNotACrash) {
  TempDir tmp;
  RecoveryReport report;
  fault::Result<RecoveredWorld> rec = recover_from(tmp.path, &report);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code, fault::ErrCode::kIoFailure);
}

TEST(Recovery, EveryGenerationRejectedSummarizesNewestFailure) {
  TempDir tmp;
  StoreDir dir = StoreDir::open(tmp.path).take();
  ASSERT_TRUE(dir.commit("junk one").ok());
  ASSERT_TRUE(dir.commit("junk two").ok());
  RecoveryReport report;
  fault::Result<RecoveredWorld> rec =
      RecoveryManager(std::move(dir)).recover(&report);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(report.steps.size(), 2u);
  EXPECT_NE(rec.status().message.find("every generation rejected"),
            std::string::npos)
      << rec.status().message;
}

TEST(MappedFileTest, MissingAndEmptyFiles) {
  TempDir tmp;
  EXPECT_FALSE(MappedFile::open(tmp.path + "/absent").ok());
  spit(tmp.path + "/empty", "");
  fault::Result<MappedFile> empty = MappedFile::open(tmp.path + "/empty");
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code, fault::ErrCode::kTruncated);
}

}  // namespace
}  // namespace fa::store

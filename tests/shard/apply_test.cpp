// Selective re-shard equivalence: apply_update() must be byte-identical
// (encode_sharded included) to re-sharding the successor world from
// scratch over the same layout, while actually sharing the untouched
// shards with the base by refcount.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "delta/apply.hpp"
#include "delta/feed.hpp"
#include "shard/apply.hpp"
#include "shard/codec.hpp"
#include "shard_test_util.hpp"

namespace fa::shard {
namespace {

using testing::small_risk;
using testing::small_sharded;
using testing::small_world;

TEST(ShardApply, ChainMatchesFromScratchReshardEveryTick) {
  ShardedWorld view(small_sharded());
  core::World world(small_world());
  core::ProviderRiskResult risk(small_risk());

  delta::FeedOptions feed_options;
  feed_options.seed = 97;
  // Retires force a full reshard by design; keep them out of this chain
  // so the selective path (and its sharing) is what gets exercised. A
  // sparse feed keeps some of the 6 shards untouched each tick — the
  // default ~32 CONUS-wide events reliably dirty all of them.
  feed_options.w_retire = 0.0;
  feed_options.events_per_tick_mean = 4.0;
  delta::FeedGenerator gen(world, feed_options);
  delta::FeedIngestor ingestor;

  std::size_t applied = 0;
  std::size_t shared_total = 0;
  for (int tick = 0; tick < 6; ++tick) {
    auto cleaned = ingestor.ingest(gen.tick());
    ASSERT_TRUE(cleaned.ok());
    if (cleaned.value().empty()) continue;
    auto result = delta::Applier::apply(world, risk, cleaned.value(), {});
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    delta::ApplyResult update = std::move(result).take();

    ShardApplyStats stats;
    ShardedWorld next = apply_update(view, update, &stats);
    const ShardedWorld reference = ShardedWorld::from_world(
        update.world, update.provider_risk, view.layout());
    ASSERT_EQ(encode_sharded(next), encode_sharded(reference))
        << "tick " << tick << ": selective re-shard diverged from scratch";
    EXPECT_FALSE(stats.full_reshard) << "retire-free batch full-resharded";
    EXPECT_EQ(stats.rebuilt + stats.shared, view.shard_count());
    shared_total += stats.shared;

    view = std::move(next);
    world = std::move(update.world);
    risk = std::move(update.provider_risk);
    ++applied;
  }
  ASSERT_GT(applied, 0u) << "feed produced no applicable batches";
  // The whole point of routing dirty boxes: most shards ride along.
  EXPECT_GT(shared_total, 0u) << "no shard was ever shared with its base";
}

TEST(ShardApply, RetiringBatchFullReshardsAndStillMatches) {
  // A batch with retires re-densifies ids; apply_update must fall back
  // to the reference derivation and say so in the stats.
  ShardedWorld view(small_sharded());
  delta::FeedOptions feed_options;
  feed_options.seed = 11;
  feed_options.w_add = 0.0;
  feed_options.w_move = 0.0;
  delta::FeedGenerator gen(small_world(), feed_options);
  delta::FeedIngestor ingestor;
  std::optional<delta::ApplyResult> update;
  for (int tick = 0; tick < 8 && !update; ++tick) {
    auto cleaned = ingestor.ingest(gen.tick());
    ASSERT_TRUE(cleaned.ok());
    if (cleaned.value().empty()) continue;
    auto result = delta::Applier::apply(small_world(), small_risk(),
                                        cleaned.value(), {});
    ASSERT_TRUE(result.ok());
    if (result.value().stats.retires == 0) continue;
    update = std::move(result).take();
  }
  ASSERT_TRUE(update.has_value()) << "feed never emitted a retire";

  ShardApplyStats stats;
  const ShardedWorld next = apply_update(view, *update, &stats);
  EXPECT_TRUE(stats.full_reshard);
  EXPECT_EQ(stats.shared, 0u);
  EXPECT_EQ(encode_sharded(next),
            encode_sharded(ShardedWorld::from_world(
                update->world, update->provider_risk, view.layout())));
}

TEST(ShardApply, UntouchedShardsShareColumnStorage) {
  ShardedWorld view(small_sharded());
  delta::FeedOptions feed_options;
  feed_options.seed = 201;
  feed_options.w_retire = 0.0;
  feed_options.events_per_tick_mean = 4.0;
  delta::FeedGenerator gen(small_world(), feed_options);
  delta::FeedIngestor ingestor;
  auto cleaned = ingestor.ingest(gen.tick());
  ASSERT_TRUE(cleaned.ok());
  ASSERT_FALSE(cleaned.value().empty());
  auto result = delta::Applier::apply(small_world(), small_risk(),
                                      cleaned.value(), {});
  ASSERT_TRUE(result.ok());
  delta::ApplyResult update = std::move(result).take();

  ShardApplyStats stats;
  const ShardedWorld next = apply_update(view, update, &stats);
  ASSERT_FALSE(stats.full_reshard);
  ASSERT_GT(stats.shared, 0u) << "sparse batch still dirtied every shard";
  std::size_t pointer_shared = 0;
  for (std::size_t s = 0; s < next.shard_count(); ++s) {
    if (next.shard(s).n() > 0 && view.shard(s).n() > 0 &&
        next.shard(s).ids.data() == view.shard(s).ids.data()) {
      ++pointer_shared;
    }
  }
  EXPECT_EQ(pointer_shared, stats.shared)
      << "stats.shared must mean actual storage reuse, not a recount";
}

TEST(ShardApply, ApplyOverOpenedContainerSharesTheMapping) {
  // A delta landing on a zero-copy cold-started view: untouched shards
  // must keep pointing into the original container bytes.
  auto owned = std::make_shared<std::string>(testing::small_image());
  auto opened = open_sharded(owned->data(), owned->size(), owned,
                             "apply-over-mmap");
  ASSERT_TRUE(opened.ok());
  const ShardedWorld base = std::move(opened).take();

  delta::FeedOptions feed_options;
  feed_options.seed = 57;
  feed_options.w_retire = 0.0;
  feed_options.events_per_tick_mean = 4.0;
  delta::FeedGenerator gen(small_world(), feed_options);
  delta::FeedIngestor ingestor;
  auto cleaned = ingestor.ingest(gen.tick());
  ASSERT_TRUE(cleaned.ok());
  auto result = delta::Applier::apply(small_world(), small_risk(),
                                      cleaned.value(), {});
  ASSERT_TRUE(result.ok());
  delta::ApplyResult update = std::move(result).take();

  ShardApplyStats stats;
  const ShardedWorld next = apply_update(base, update, &stats);
  const ShardedWorld reference = ShardedWorld::from_world(
      update.world, update.provider_risk, base.layout());
  EXPECT_EQ(encode_sharded(next), encode_sharded(reference));
  if (!stats.full_reshard && stats.shared > 0) {
    bool any_in_container = false;
    const char* begin = owned->data();
    const char* end = begin + owned->size();
    for (std::size_t s = 0; s < next.shard_count(); ++s) {
      const char* p =
          reinterpret_cast<const char*>(next.shard(s).ids.data());
      if (p >= begin && p < end) any_in_container = true;
    }
    EXPECT_TRUE(any_in_container)
        << "shared shards should still view the container bytes";
  }
}

}  // namespace
}  // namespace fa::shard

// ShardLayout invariants: the tile grid partitions, routing is total
// and deterministic, and overlap listing never misses a contained
// point — the properties the planner's correctness rests on.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "index/grid_index.hpp"
#include "shard/layout.hpp"
#include "shard_test_util.hpp"

namespace fa::shard {
namespace {

using testing::small_layout;
using testing::small_risk;
using testing::small_world;

std::vector<geo::Vec2> world_points() {
  const index::GridIndex& idx = small_world().txr_index();
  std::vector<geo::Vec2> pts(idx.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    pts[i] = idx.point(static_cast<std::uint32_t>(i));
  }
  return pts;
}

ShardLayout build_layout() {
  return ShardLayout::build(small_world().txr_index().bounds(), world_points(),
                            small_layout());
}

TEST(ShardLayout, BuildIsDeterministic) {
  const ShardLayout a = build_layout();
  const ShardLayout b = build_layout();
  ASSERT_EQ(a.shard_count(), b.shard_count());
  EXPECT_EQ(a.tile_table(), b.tile_table());
  for (std::size_t s = 0; s < a.shard_count(); ++s) {
    EXPECT_EQ(a.extent(s).first_tile, b.extent(s).first_tile);
    EXPECT_EQ(a.extent(s).tile_count, b.extent(s).tile_count);
    EXPECT_EQ(a.extent(s).n_points, b.extent(s).n_points);
  }
}

TEST(ShardLayout, TileRangesPartitionTheGrid) {
  const ShardLayout layout = build_layout();
  const std::uint64_t tiles =
      static_cast<std::uint64_t>(layout.tiles_x()) * layout.tiles_y();
  std::uint64_t next = 0;
  for (std::size_t s = 0; s < layout.shard_count(); ++s) {
    const ShardExtent& e = layout.extent(s);
    EXPECT_EQ(e.first_tile, next) << "gap or overlap before shard " << s;
    EXPECT_GT(e.tile_count, 0u);
    next = e.first_tile + e.tile_count;
  }
  EXPECT_EQ(next, tiles);
  // And the tile table agrees with the ranges.
  for (std::uint64_t t = 0; t < tiles; ++t) {
    const std::uint32_t s = layout.tile_table()[t];
    ASSERT_LT(s, layout.shard_count());
    EXPECT_GE(t, layout.extent(s).first_tile);
    EXPECT_LT(t, layout.extent(s).first_tile + layout.extent(s).tile_count);
  }
}

TEST(ShardLayout, EveryPointRoutesIncludingOutOfDomain) {
  const ShardLayout layout = build_layout();
  const geo::BBox& d = layout.domain();
  // In-domain, on-boundary, and far-out positions all route (clamped).
  const geo::Vec2 probes[] = {
      {(d.min_x + d.max_x) / 2, (d.min_y + d.max_y) / 2},
      {d.min_x, d.min_y},
      {d.max_x, d.max_y},
      {d.min_x - 40.0, d.min_y - 40.0},
      {d.max_x + 40.0, d.max_y + 40.0},
  };
  for (const geo::Vec2 p : probes) {
    EXPECT_LT(layout.shard_of(p), layout.shard_count());
  }
}

TEST(ShardLayout, OverlapListingNeverMissesAContainedPoint) {
  const ShardLayout layout = build_layout();
  const geo::BBox& d = layout.domain();
  std::mt19937_64 rng(4257);
  std::uniform_real_distribution<double> ux(d.min_x, d.max_x);
  std::uniform_real_distribution<double> uy(d.min_y, d.max_y);
  for (int trial = 0; trial < 200; ++trial) {
    const double x0 = ux(rng), x1 = ux(rng);
    const double y0 = uy(rng), y1 = uy(rng);
    const geo::BBox box{std::min(x0, x1), std::min(y0, y1), std::max(x0, x1),
                        std::max(y0, y1)};
    const std::vector<std::uint32_t> touched = layout.shards_overlapping(box);
    // Ascending, deduplicated.
    for (std::size_t i = 1; i < touched.size(); ++i) {
      EXPECT_LT(touched[i - 1], touched[i]);
    }
    const std::set<std::uint32_t> listed(touched.begin(), touched.end());
    for (int probe = 0; probe < 32; ++probe) {
      std::uniform_real_distribution<double> px(box.min_x, box.max_x);
      std::uniform_real_distribution<double> py(box.min_y, box.max_y);
      const geo::Vec2 p{px(rng), py(rng)};
      EXPECT_TRUE(listed.count(layout.shard_of(p)))
          << "contained point routes to unlisted shard";
    }
  }
}

TEST(ShardLayout, InvalidBoxOverlapsNothing) {
  const ShardLayout layout = build_layout();
  const geo::BBox backwards{10.0, 10.0, -10.0, -10.0};
  EXPECT_TRUE(layout.shards_overlapping(backwards).empty());
}

TEST(ShardLayout, AssembleRejectsStructuralLies) {
  const ShardLayout layout = build_layout();
  std::vector<std::uint32_t> table = layout.tile_table();
  std::vector<ShardExtent> extents = layout.extents();
  ShardLayout out;
  ASSERT_TRUE(ShardLayout::assemble(layout.domain(), layout.tiles_x(),
                                    layout.tiles_y(), table, extents, out));
  // A tile claiming the wrong owner contradicts the ranges.
  std::vector<std::uint32_t> bad_table = table;
  bad_table[0] = static_cast<std::uint32_t>(layout.shard_count() - 1);
  EXPECT_FALSE(ShardLayout::assemble(layout.domain(), layout.tiles_x(),
                                     layout.tiles_y(), bad_table, extents,
                                     out));
  // Ranges that no longer partition the grid.
  std::vector<ShardExtent> bad_extents = extents;
  bad_extents[0].tile_count += 1;
  EXPECT_FALSE(ShardLayout::assemble(layout.domain(), layout.tiles_x(),
                                     layout.tiles_y(), table, bad_extents,
                                     out));
  // Non-positive grid dims.
  EXPECT_FALSE(ShardLayout::assemble(layout.domain(), 0, layout.tiles_y(),
                                     table, extents, out));
}

TEST(ShardLayout, BalancerTracksAdaptiveTarget) {
  const ShardedWorld& sw = testing::small_sharded();
  // No shard hoards the corpus: with the adaptive target, the largest
  // shard stays within a small multiple of the ideal share.
  const std::uint64_t total = sw.total_points();
  const std::uint64_t ideal = total / sw.shard_count();
  for (std::size_t s = 0; s < sw.shard_count(); ++s) {
    EXPECT_LE(sw.shard(s).n(), 4 * ideal + 1)
        << "shard " << s << " absorbed a disproportionate share";
  }
}

TEST(ShardLayout, LocalGridDimsAreClampedAndDeterministic) {
  int cols = 0, rows = 0;
  local_grid_dims(0, {0, 0, 1, 1}, cols, rows);
  EXPECT_GE(cols, 1);
  EXPECT_GE(rows, 1);
  local_grid_dims(50'000'000, {-125, 24, -66, 50}, cols, rows);
  EXPECT_LE(cols, 4096);
  EXPECT_LE(rows, 4096);
  int cols2 = 0, rows2 = 0;
  local_grid_dims(50'000'000, {-125, 24, -66, 50}, cols2, rows2);
  EXPECT_EQ(cols, cols2);
  EXPECT_EQ(rows, rows2);
}

}  // namespace
}  // namespace fa::shard

// Shard-by-shard cold-start recovery: a flipped bit costs one shard,
// not a generation; monolithic FASNAP01 stores migrate in place; only
// an unservable container falls back down the ladder.
#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "shard/codec.hpp"
#include "shard/recovery.hpp"
#include "shard_test_util.hpp"
#include "store/codec.hpp"

namespace fa::shard {
namespace {

using testing::small_image;
using testing::small_layout;
using testing::small_risk;
using testing::small_sharded;
using testing::small_world;
using testing::TempDir;

store::StoreDir open_store(const std::string& path) {
  auto dir = store::StoreDir::open(path);
  EXPECT_TRUE(dir.ok());
  return std::move(dir).take();
}

void rewrite_generation(const store::StoreDir& dir,
                        const store::Generation& gen,
                        const std::string& bytes) {
  std::ofstream out(dir.file_path(gen.filename), std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(ShardRecovery, CleanShardedGenerationRecoversZeroCopy) {
  TempDir tmp;
  store::StoreDir dir = open_store(tmp.path);
  ASSERT_TRUE(dir.commit(small_image()).ok());

  ShardRecoveryManager manager(open_store(tmp.path), small_layout());
  auto recovered = manager.recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_FALSE(recovered.value().migrated);
  EXPECT_EQ(recovered.value().world.quarantined_count(), 0u);
  EXPECT_EQ(encode_sharded(recovered.value().world), small_image());
}

TEST(ShardRecovery, MonolithicGenerationMigratesInMemory) {
  TempDir tmp;
  store::StoreDir dir = open_store(tmp.path);
  ASSERT_TRUE(
      dir.commit(store::encode_world(small_world(), small_risk())).ok());

  ShardRecoveryManager manager(open_store(tmp.path), small_layout());
  auto recovered = manager.recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_TRUE(recovered.value().migrated);
  // The migrated view is the same function of the world the sharded
  // writer computes.
  EXPECT_EQ(encode_sharded(recovered.value().world), small_image());
}

TEST(ShardRecovery, FlippedBitQuarantinesOneShardNotTheGeneration) {
  // Find damage that hits exactly one shard payload (same probe the
  // codec test uses), then serve the rest of the geography from it.
  const std::string& clean = small_image();
  std::string dirty;
  for (std::size_t frac = 3; frac <= 7; ++frac) {
    std::string candidate = clean;
    const std::size_t at = clean.size() * frac / 10;
    candidate[at] = static_cast<char>(candidate[at] ^ 0x40);
    auto report = inspect_sharded(candidate.data(), candidate.size(), "probe");
    if (!report.ok() || !report.value().globals_ok) continue;
    std::size_t bad = 0;
    for (const ShardReport& sh : report.value().shards) {
      if (!sh.crc_ok) ++bad;
    }
    if (bad == 1) {
      dirty = std::move(candidate);
      break;
    }
  }
  ASSERT_FALSE(dirty.empty()) << "no single-shard damage offset found";

  TempDir tmp;
  store::StoreDir dir = open_store(tmp.path);
  auto gen = dir.commit(clean);
  ASSERT_TRUE(gen.ok());
  // Corrupt after commit: the manifest CRC now disagrees, which demotes
  // the open to deep verification instead of rejecting the generation.
  rewrite_generation(dir, gen.value(), dirty);

  store::RecoveryReport report;
  ShardRecoveryManager manager(open_store(tmp.path), small_layout());
  auto recovered = manager.recover(&report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_EQ(recovered.value().world.quarantined_count(), 1u);
  std::uint64_t servable = 0;
  for (const Shard& sh : recovered.value().world.shards()) {
    if (!sh.quarantined) servable += sh.n();
  }
  EXPECT_GT(servable, 0u);
  EXPECT_LT(servable, small_sharded().total_points());
}

TEST(ShardRecovery, UnwalkableNewestFallsBackToOlderGeneration) {
  TempDir tmp;
  store::StoreDir dir = open_store(tmp.path);
  ASSERT_TRUE(dir.commit(small_image()).ok());
  auto gen2 = dir.commit(small_image());
  ASSERT_TRUE(gen2.ok());
  // Destroy generation 2's frame entirely; the ladder must land on 1.
  rewrite_generation(dir, gen2.value(), std::string(64, '\0'));

  ShardRecoveryManager manager(open_store(tmp.path), small_layout());
  auto recovered = manager.recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_EQ(recovered.value().generation.number, 1u);
  EXPECT_EQ(encode_sharded(recovered.value().world), small_image());
}

TEST(ShardRecovery, EmptyStoreErrors) {
  TempDir tmp;
  ShardRecoveryManager manager(open_store(tmp.path), small_layout());
  EXPECT_FALSE(manager.recover().ok());
}

TEST(ShardRecovery, ConvenienceEntryPointMatchesManager) {
  TempDir tmp;
  store::StoreDir dir = open_store(tmp.path);
  ASSERT_TRUE(dir.commit(small_image()).ok());
  auto recovered = recover_sharded(tmp.path, small_layout());
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(encode_sharded(recovered.value().world), small_image());
}

}  // namespace
}  // namespace fa::shard

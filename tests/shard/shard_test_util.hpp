// Shared scaffolding for the shard suite: one small world per binary
// (builds dominate runtime), its canonical sharded view, and helpers to
// compare sharded and monolithic serving byte-for-byte.
#pragma once

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/provider_risk.hpp"
#include "core/world.hpp"
#include "serve/snapshot.hpp"
#include "shard/codec.hpp"
#include "shard/world.hpp"
#include "../serve/serve_test_util.hpp"

namespace fa::shard::testing {

// A layout fine enough that the small test world actually straddles
// shards (the default 32x16/16 would too, but a smaller tile grid keeps
// per-shard populations comfortably non-trivial at corpus_scale 100).
inline LayoutOptions small_layout() {
  LayoutOptions options;
  options.tiles_x = 8;
  options.tiles_y = 4;
  options.target_shards = 6;
  return options;
}

inline const core::World& small_world() {
  static const core::World* world = new core::World(
      core::World::build(serve::testing::small_config()));
  return *world;
}

inline const core::ProviderRiskResult& small_risk() {
  static const core::ProviderRiskResult* risk =
      new core::ProviderRiskResult(core::run_provider_risk(small_world()));
  return *risk;
}

// The canonical sharded view of small_world(); shards share columns by
// value semantics, so tests copy freely.
inline const ShardedWorld& small_sharded() {
  static const ShardedWorld* sharded = new ShardedWorld(
      ShardedWorld::from_world(small_world(), small_risk(), small_layout()));
  return *sharded;
}

// The canonical FASHRD01 image of small_sharded().
inline const std::string& small_image() {
  static const std::string* image =
      new std::string(encode_sharded(small_sharded()));
  return *image;
}

// mkdtemp-backed directory, recursively removed on destruction.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/fashard-test-XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
};

// Snapshot pair over identical content: the monolithic baseline and the
// sharded view under test (both at the same epoch, so responses can be
// compared as whole values).
inline std::shared_ptr<const serve::Snapshot> monolithic_snapshot() {
  static const std::shared_ptr<const serve::Snapshot> snap =
      serve::Snapshot::adopt(small_world(), 1);
  return snap;
}

inline std::shared_ptr<const serve::Snapshot> sharded_snapshot() {
  static const std::shared_ptr<const serve::Snapshot> snap =
      serve::Snapshot::adopt_sharded(ShardedWorld(small_sharded()), 1);
  return snap;
}

}  // namespace fa::shard::testing

// FASHRD01 codec: deterministic encode, zero-copy open fidelity,
// shard-level quarantine on damage (never generation-level failure for
// a single flipped bit), and the inspection report tooling reads.
#include <gtest/gtest.h>

#include <string>

#include "shard/codec.hpp"
#include "shard_test_util.hpp"
#include "store/codec.hpp"

namespace fa::shard {
namespace {

using testing::small_image;
using testing::small_risk;
using testing::small_sharded;
using testing::small_world;

fault::Result<ShardedWorld> open_image(const std::string& image,
                                       const OpenOptions& options = {}) {
  // Tests keep the bytes alive via a shared copy, the way the mmap path
  // keeps the MappedFile alive.
  auto owned = std::make_shared<std::string>(image);
  return open_sharded(owned->data(), owned->size(), owned, "test-image",
                      options);
}

TEST(ShardCodec, EncodeIsDeterministic) {
  EXPECT_EQ(encode_sharded(small_sharded()), small_image());
}

TEST(ShardCodec, OpenedViewMatchesBuiltView) {
  OpenOptions deep;
  deep.deep_verify = true;
  auto opened = open_image(small_image(), deep);
  ASSERT_TRUE(opened.ok()) << opened.status().to_string();
  const ShardedWorld& view = opened.value();
  const ShardedWorld& built = small_sharded();
  ASSERT_EQ(view.shard_count(), built.shard_count());
  EXPECT_EQ(view.quarantined_count(), 0u);
  EXPECT_EQ(view.total_points(), built.total_points());
  EXPECT_TRUE(view.config() == built.config());
  for (std::size_t s = 0; s < view.shard_count(); ++s) {
    ASSERT_EQ(view.shard(s).n(), built.shard(s).n()) << "shard " << s;
    for (std::size_t k = 0; k < view.shard(s).n(); ++k) {
      ASSERT_EQ(view.shard(s).ids[k], built.shard(s).ids[k]);
      ASSERT_EQ(view.shard(s).xs[k], built.shard(s).xs[k]);
      ASSERT_EQ(view.shard(s).cls[k], built.shard(s).cls[k]);
    }
  }
  // And the opened view re-encodes to the same bytes: open is lossless.
  EXPECT_EQ(encode_sharded(view), small_image());
}

TEST(ShardCodec, MaterializedWorldEncodesIdenticallyToSource) {
  auto opened = open_image(small_image());
  ASSERT_TRUE(opened.ok());
  auto world = opened.value().materialize();
  ASSERT_TRUE(world.ok()) << world.status().to_string();
  EXPECT_EQ(store::encode_world(world.value(), small_risk()),
            store::encode_world(small_world(), small_risk()));
}

TEST(ShardCodec, FlippedShardByteQuarantinesOnlyThatShard) {
  const std::string& clean = small_image();
  // Find an offset whose damage hits exactly one shard payload: the
  // inspect report says which (and proves the globals stayed clean).
  bool exercised = false;
  for (std::size_t frac = 3; frac <= 7 && !exercised; ++frac) {
    std::string dirty = clean;
    const std::size_t at = clean.size() * frac / 10;
    dirty[at] = static_cast<char>(dirty[at] ^ 0x40);
    auto report = inspect_sharded(dirty.data(), dirty.size(), "dirty");
    if (!report.ok() || !report.value().globals_ok) continue;
    std::size_t bad = 0;
    for (const ShardReport& sh : report.value().shards) {
      if (!sh.crc_ok) ++bad;
    }
    if (bad != 1) continue;
    exercised = true;
    OpenOptions deep;
    deep.deep_verify = true;
    auto opened = open_image(dirty, deep);
    ASSERT_TRUE(opened.ok())
        << "one damaged shard must not reject the container: "
        << opened.status().to_string();
    EXPECT_EQ(opened.value().quarantined_count(), 1u);
    // Undamaged shards still carry their points.
    std::uint64_t servable = 0;
    for (const Shard& sh : opened.value().shards()) {
      if (!sh.quarantined) servable += sh.n();
    }
    EXPECT_GT(servable, 0u);
    EXPECT_LT(servable, opened.value().total_points());
  }
  EXPECT_TRUE(exercised)
      << "no probe offset landed in a single shard payload; widen probes";
}

TEST(ShardCodec, TruncationRejectsTheContainer) {
  const std::string& clean = small_image();
  const std::string truncated = clean.substr(0, clean.size() / 2);
  auto opened = open_image(truncated);
  EXPECT_FALSE(opened.ok());
}

TEST(ShardCodec, GarbageMagicRejectsTheContainer) {
  std::string dirty = small_image();
  dirty[0] = 'X';
  auto opened = open_image(dirty);
  EXPECT_FALSE(opened.ok());
}

TEST(ShardCodec, InspectEnumeratesEveryShard) {
  const std::string& image = small_image();
  auto report = inspect_sharded(image.data(), image.size(), "clean");
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  const ContainerReport& r = report.value();
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.globals_ok);
  EXPECT_EQ(r.file_size, image.size());
  ASSERT_EQ(r.shards.size(), small_sharded().shard_count());
  std::uint64_t points = 0;
  for (const ShardReport& sh : r.shards) {
    EXPECT_TRUE(sh.structural_ok);
    EXPECT_TRUE(sh.crc_ok);
    EXPECT_TRUE(sh.bounds.valid());
    points += sh.n_points;
  }
  EXPECT_EQ(points, small_sharded().total_points());
}

}  // namespace
}  // namespace fa::shard

// The tentpole contract: scatter/gather over shards answers every query
// family byte-identically to the monolithic path — randomized streams,
// tile-edge points, boxes straddling several shards, empty ocean tiles,
// and any thread count (the exec cap cannot leak into response bytes).
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "exec/exec.hpp"
#include "serve/planner.hpp"
#include "serve/snapshot.hpp"
#include "shard_test_util.hpp"

namespace fa::shard {
namespace {

namespace st = fa::serve::testing;
using st::AnyQuery;
using st::AnyResponse;
using st::ask_snapshot;
using testing::monolithic_snapshot;
using testing::sharded_snapshot;
using testing::small_sharded;

void expect_stream_identical(const std::vector<AnyQuery>& stream) {
  const serve::Snapshot& mono = *monolithic_snapshot();
  const serve::Snapshot& shrd = *sharded_snapshot();
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const AnyResponse a = ask_snapshot(mono, stream[i]);
    const AnyResponse b = ask_snapshot(shrd, stream[i]);
    ASSERT_TRUE(a == b) << "query " << i
                        << ": sharded answer diverged from monolithic";
  }
}

TEST(ShardEquivalence, RandomizedStreamMatchesMonolithic) {
  expect_stream_identical(st::make_stream(600, 11, 96));
}

// The trig-free disc prefilter may never disagree with the exact
// haversine test it short-circuits: a "provably inside" verdict must
// mean d <= r and "provably outside" must mean d > r, for points thrown
// across the disc bbox (dense near the boundary annulus, where the
// bounds are tightest) at several radii and latitudes.
TEST(ShardEquivalence, DiscFilterNeverContradictsHaversine) {
  std::mt19937_64 rng(20191022);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const double radii_m[] = {250.0, 5e3, 30e3, 400e3};
  const double center_lats[] = {0.0, 26.0, 44.5, 71.0};
  std::size_t decided = 0, total = 0;
  for (const double r : radii_m) {
    for (const double clat : center_lats) {
      const geo::LonLat c{-100.25, clat};
      const geo::BBox box = serve::detail::disc_bbox(c, r);
      const serve::detail::DiscFilter filter(c, r, box);
      for (int i = 0; i < 4000; ++i) {
        // Half uniform over the box, half pinned to a thin band around
        // the disc edge where misclassification would actually bite.
        geo::LonLat p;
        if (i % 2 == 0) {
          p = {box.min_x + unit(rng) * (box.max_x - box.min_x),
               box.min_y + unit(rng) * (box.max_y - box.min_y)};
        } else {
          const double bearing = unit(rng) * 360.0;
          const double d = r * (0.999 + 0.002 * unit(rng));
          p = geo::destination(c, bearing, d);
        }
        if (!box.contains(p.as_vec())) continue;
        const bool inside = geo::haversine_m(c, p) <= r;
        const int side = filter.classify(p.lon, p.lat);
        ++total;
        if (side != 0) {
          ++decided;
          ASSERT_EQ(side > 0, inside)
              << "filter contradicted haversine at r=" << r
              << " lat=" << clat << " point (" << p.lon << ", " << p.lat
              << ")";
        }
      }
    }
  }
  // The fast path must actually fire — most candidates, not a sliver.
  EXPECT_GT(decided, total * 3 / 4);
}

TEST(ShardEquivalence, SerialAndParallelFanoutsAreIdentical) {
  const std::vector<AnyQuery> stream = st::make_stream(250, 29, 64);
  const serve::Snapshot& shrd = *sharded_snapshot();
  std::vector<AnyResponse> serial, parallel;
  {
    exec::ConcurrencyLimit one(1);
    for (const AnyQuery& q : stream) serial.push_back(ask_snapshot(shrd, q));
  }
  {
    exec::ConcurrencyLimit eight(8);
    for (const AnyQuery& q : stream) {
      parallel.push_back(ask_snapshot(shrd, q));
    }
  }
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(serial[i] == parallel[i])
        << "query " << i << ": thread count leaked into response bytes";
  }
  // And both match the monolithic baseline under the same caps.
  {
    exec::ConcurrencyLimit one(1);
    expect_stream_identical(stream);
  }
  {
    exec::ConcurrencyLimit eight(8);
    expect_stream_identical(stream);
  }
}

TEST(ShardEquivalence, TileEdgePointsRouteAndMatch) {
  const ShardLayout& layout = small_sharded().layout();
  // Probe every shard's bounds corners and edge midpoints: positions
  // that sit exactly on tile boundaries, where a clamping mismatch
  // between planner and index would double-count or drop neighbors.
  std::vector<AnyQuery> stream;
  for (std::size_t s = 0; s < layout.shard_count(); ++s) {
    const geo::BBox& b = layout.extent(s).bounds;
    const double xs[] = {b.min_x, (b.min_x + b.max_x) / 2, b.max_x};
    const double ys[] = {b.min_y, (b.min_y + b.max_y) / 2, b.max_y};
    for (const double x : xs) {
      for (const double y : ys) {
        stream.push_back(serve::PointRiskQuery{{x, y}, 40e3});
        stream.push_back(serve::TopKSitesQuery{{x, y}, 50e3, 6});
      }
    }
  }
  expect_stream_identical(stream);
}

TEST(ShardEquivalence, BoxesStraddlingShardsFanOutAndMatch) {
  const ShardLayout& layout = small_sharded().layout();
  const geo::BBox& d = layout.domain();
  // Domain-height slabs crossing every vertical cut, plus the whole
  // domain: each must fan out across >= 2 shards and still merge to the
  // monolithic bytes.
  std::vector<AnyQuery> stream;
  std::size_t straddling = 0;
  for (int i = 1; i < 8; ++i) {
    const double x = d.min_x + (d.max_x - d.min_x) * i / 8.0;
    const geo::BBox slab{x - 1.0, d.min_y, x + 1.0, d.max_y};
    if (layout.shards_overlapping(slab).size() >= 2) ++straddling;
    stream.push_back(serve::BBoxAggregateQuery{slab});
  }
  stream.push_back(serve::BBoxAggregateQuery{d});
  ASSERT_EQ(layout.shards_overlapping(d).size(), layout.shard_count());
  ASSERT_GT(straddling, 0u) << "no slab straddled a shard boundary";
  expect_stream_identical(stream);
}

TEST(ShardEquivalence, EmptyOceanTileAnswersEmptyAndIdentical) {
  const geo::BBox& d = small_sharded().layout().domain();
  const double w = (d.max_x - d.min_x) * 0.05;
  const double h = (d.max_y - d.min_y) * 0.05;
  const geo::BBox corners[] = {
      {d.min_x, d.min_y, d.min_x + w, d.min_y + h},
      {d.max_x - w, d.min_y, d.max_x, d.min_y + h},
      {d.min_x, d.max_y - h, d.min_x + w, d.max_y},
      {d.max_x - w, d.max_y - h, d.max_x, d.max_y},
  };
  const serve::Snapshot& mono = *monolithic_snapshot();
  const serve::Snapshot& shrd = *sharded_snapshot();
  bool found_empty = false;
  for (const geo::BBox& corner : corners) {
    const serve::BBoxAggregateQuery q{corner};
    const serve::BBoxAggregateResponse a = serve::evaluate(mono, q);
    const serve::BBoxAggregateResponse b = serve::evaluate(shrd, q);
    ASSERT_TRUE(a == b);
    if (a.transceivers == 0) found_empty = true;
  }
  // The synthetic CONUS domain corners reach into ocean; at least one
  // corner box must be genuinely empty for this test to mean anything.
  EXPECT_TRUE(found_empty) << "no empty corner tile found in the domain";
}

TEST(ShardEquivalence, ProviderExposureReadsTheSameAggregate) {
  const serve::Snapshot& mono = *monolithic_snapshot();
  const serve::Snapshot& shrd = *sharded_snapshot();
  for (int p = 0; p < static_cast<int>(cellnet::kNumProviders); ++p) {
    const serve::ProviderExposureQuery q{static_cast<cellnet::Provider>(p)};
    ASSERT_TRUE(serve::evaluate(mono, q) == serve::evaluate(shrd, q));
  }
}

TEST(ShardEquivalence, MaterializedShardedSnapshotStillPlansSharded) {
  // A sharded snapshot that has materialized its world (ensemble query,
  // delta apply) must keep answering interactive queries through the
  // planner — same bytes either way, but the dispatch is pinned here.
  const serve::Snapshot& shrd = *sharded_snapshot();
  (void)shrd.world();  // force materialization
  ASSERT_NE(shrd.sharded(), nullptr);
  expect_stream_identical(st::make_stream(120, 43));
}

}  // namespace
}  // namespace fa::shard

// Server integration for sharded serving: byte-identity with the
// monolithic server through the public front door, FASHRD01 persistence
// and zero-copy cold start, incremental deltas that rebuild only the
// touched shards, degraded serving over a damaged store, and epoch
// purity under concurrent queries while swaps land (the TSan target).
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <thread>
#include <vector>

#include "delta/feed.hpp"
#include "serve/server.hpp"
#include "shard/codec.hpp"
#include "shard_test_util.hpp"

namespace fa::shard {
namespace {

namespace st = fa::serve::testing;
using st::AnyQuery;
using st::AnyResponse;
using st::ask;
using st::epoch_of;
using testing::small_layout;
using testing::TempDir;

serve::ServerOptions sharded_options(const std::string& store_dir = "") {
  serve::ServerOptions options;
  options.sharded = true;
  options.shard_layout = small_layout();
  options.store_dir = store_dir;
  return options;
}

TEST(ServeSharded, FrontDoorMatchesMonolithicServer) {
  serve::Server mono(st::small_config());
  serve::Server shrd(st::small_config(), sharded_options());
  ASSERT_NE(shrd.snapshots().acquire()->sharded(), nullptr);
  const std::vector<AnyQuery> stream = st::make_stream(300, 17);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(ask(mono, stream[i]) == ask(shrd, stream[i]))
        << "query " << i << " diverged through the server front door";
  }
}

TEST(ServeSharded, SaveThenColdStartServesIdenticalAnswers) {
  TempDir tmp;
  const std::vector<AnyQuery> stream = st::make_stream(150, 23);
  std::vector<AnyResponse> before;
  {
    serve::Server server(st::small_config(), sharded_options(tmp.path));
    EXPECT_FALSE(server.loaded_from_store());
    ASSERT_TRUE(server.save_snapshot().ok());
    for (const AnyQuery& q : stream) before.push_back(ask(server, q));
  }
  serve::Server reborn(st::small_config(), sharded_options(tmp.path));
  EXPECT_TRUE(reborn.loaded_from_store());
  ASSERT_NE(reborn.snapshots().acquire()->sharded(), nullptr);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(before[i] == ask(reborn, stream[i]))
        << "query " << i << " changed across the cold start";
  }
}

TEST(ServeSharded, MonolithicStoreMigratesOnColdStart) {
  TempDir tmp;
  {
    serve::ServerOptions mono_options;
    mono_options.store_dir = tmp.path;
    serve::Server mono(st::small_config(), mono_options);
    ASSERT_TRUE(mono.save_snapshot().ok());
  }
  serve::Server shrd(st::small_config(), sharded_options(tmp.path));
  EXPECT_TRUE(shrd.loaded_from_store());
  ASSERT_NE(shrd.snapshots().acquire()->sharded(), nullptr);
  serve::Server fresh(st::small_config(), sharded_options());
  const std::vector<AnyQuery> stream = st::make_stream(120, 31);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(ask(shrd, stream[i]) == ask(fresh, stream[i]))
        << "query " << i << " diverged after FASNAP01 migration";
  }
}

TEST(ServeSharded, ApplyDeltaPublishesShardedEpochMatchingMonolithic) {
  serve::Server mono(st::small_config());
  serve::Server shrd(st::small_config(), sharded_options());

  delta::FeedOptions feed_options;
  feed_options.seed = 7;
  // The generator keeps a pointer to the world; pin the snapshot for
  // the generator's whole lifetime.
  const auto base = shrd.snapshots().acquire();
  delta::FeedGenerator gen(base->world(), feed_options);
  delta::FeedIngestor ingest_a, ingest_b;
  for (int tick = 0; tick < 3; ++tick) {
    const std::vector<delta::FeedEvent> events = gen.tick();
    auto a = ingest_a.ingest(events);
    auto b = ingest_b.ingest(events);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(mono.apply_delta(a.value()).ok());
    ASSERT_TRUE(shrd.apply_delta(b.value()).ok());
  }
  ASSERT_EQ(mono.epoch(), shrd.epoch());
  ASSERT_NE(shrd.snapshots().acquire()->sharded(), nullptr);
  const std::vector<AnyQuery> stream = st::make_stream(200, 41);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(ask(mono, stream[i]) == ask(shrd, stream[i]))
        << "query " << i << " diverged after incremental epochs";
  }
}

TEST(ServeSharded, DamagedStoreServesDegradedAndRefusesPersist) {
  TempDir tmp;
  {
    serve::Server server(st::small_config(), sharded_options(tmp.path));
    ASSERT_TRUE(server.save_snapshot().ok());
  }
  // Damage exactly one shard payload in the committed generation.
  auto dir = store::StoreDir::open(tmp.path);
  ASSERT_TRUE(dir.ok());
  auto manifest = dir.value().read_manifest();
  ASSERT_TRUE(manifest.ok());
  ASSERT_FALSE(manifest.value().generations.empty());
  const std::string path =
      dir.value().file_path(manifest.value().generations.back().filename);
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  std::string dirty;
  for (std::size_t frac = 3; frac <= 7; ++frac) {
    std::string candidate = bytes;
    const std::size_t at = bytes.size() * frac / 10;
    candidate[at] = static_cast<char>(candidate[at] ^ 0x40);
    auto report = inspect_sharded(candidate.data(), candidate.size(), "probe");
    if (!report.ok() || !report.value().globals_ok) continue;
    std::size_t bad = 0;
    for (const ShardReport& sh : report.value().shards) {
      if (!sh.crc_ok) ++bad;
    }
    if (bad == 1) {
      dirty = std::move(candidate);
      break;
    }
  }
  ASSERT_FALSE(dirty.empty());
  {
    std::ofstream out(path, std::ios::binary);
    out.write(dirty.data(), static_cast<std::streamsize>(dirty.size()));
  }

  serve::Server degraded(st::small_config(), sharded_options(tmp.path));
  EXPECT_TRUE(degraded.loaded_from_store());
  const serve::Snapshot& snap = *degraded.snapshots().acquire();
  ASSERT_NE(snap.sharded(), nullptr);
  EXPECT_EQ(snap.sharded()->quarantined_count(), 1u);
  // The surviving geography answers; a whole-domain aggregate sees a
  // subset, never a failure.
  const serve::BBoxAggregateResponse r = degraded.bbox_aggregate(
      serve::BBoxAggregateQuery{snap.sharded()->layout().domain()});
  EXPECT_GT(r.transceivers, 0u);
  EXPECT_LT(r.transceivers, snap.sharded()->total_points());
  // And the degraded view must not overwrite the store as the newest
  // generation.
  EXPECT_FALSE(degraded.save_snapshot().ok());
}

TEST(ServeSharded, ConcurrentQueriesStayEpochPureAcrossSwaps) {
  serve::Server server(st::tiny_config(1), sharded_options());
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> asked{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&server, &stop, &asked, t] {
      const std::vector<AnyQuery> stream = st::make_stream(64, 100 + t);
      std::size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const AnyResponse r = ask(server, stream[i % stream.size()]);
        const serve::Epoch epoch = epoch_of(r);
        if (epoch < 1 || epoch > 4) {
          ADD_FAILURE() << "response from unknown epoch " << epoch;
          break;
        }
        ++i;
        asked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Swaps while the readers hammer: a rebuild and two incremental
  // epochs, all publishing sharded snapshots.
  ASSERT_TRUE(server.rebuild(st::tiny_config(2)).ok());
  delta::FeedOptions feed_options;
  feed_options.seed = 3;
  const auto base = server.snapshots().acquire();
  delta::FeedGenerator gen(base->world(), feed_options);
  delta::FeedIngestor ingestor;
  for (int tick = 0; tick < 2; ++tick) {
    auto cleaned = ingestor.ingest(gen.tick());
    ASSERT_TRUE(cleaned.ok());
    ASSERT_TRUE(server.apply_delta(cleaned.value()).ok());
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(asked.load(), 0u);
  ASSERT_NE(server.snapshots().acquire()->sharded(), nullptr);
}

}  // namespace
}  // namespace fa::shard

#include "raster/rasterize.hpp"

#include <gtest/gtest.h>

namespace fa::raster {
namespace {

using geo::BBox;
using geo::Polygon;
using geo::Ring;
using geo::Vec2;

GridGeometry unit_grid(int n) {
  GridGeometry g;
  g.cell_w = 1.0;
  g.cell_h = 1.0;
  g.cols = n;
  g.rows = n;
  return g;
}

TEST(Rasterize, FullCoverSquare) {
  MaskRaster r(unit_grid(10), 0);
  rasterize_polygon(r, Polygon{geo::make_rect(2.0, 3.0, 7.0, 8.0)}, 1);
  EXPECT_EQ(r.count(1), 25u);  // 5x5 cells whose centers are inside
  EXPECT_EQ(r.at(2, 3), 1);
  EXPECT_EQ(r.at(6, 7), 1);
  EXPECT_EQ(r.at(7, 8), 0);  // centers at 7.5 are outside
  EXPECT_EQ(r.at(1, 3), 0);
}

TEST(Rasterize, RespectsHoles) {
  MaskRaster r(unit_grid(10), 0);
  const Polygon donut{geo::make_rect(0.0, 0.0, 10.0, 10.0),
                      {geo::make_rect(3.0, 3.0, 7.0, 7.0)}};
  rasterize_polygon(r, donut, 1);
  EXPECT_EQ(r.count(1), 100u - 16u);
  EXPECT_EQ(r.at(5, 5), 0);  // in the hole
  EXPECT_EQ(r.at(0, 0), 1);
}

TEST(Rasterize, TriangleHalfCoverage) {
  MaskRaster r(unit_grid(10), 0);
  const Polygon tri{Ring{{{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}}}};
  rasterize_polygon(r, tri, 1);
  // Half the grid, up to the diagonal's center-sampling discretization.
  EXPECT_NEAR(static_cast<double>(r.count(1)), 50.0, 6.0);
  EXPECT_EQ(r.at(0, 0), 1);
  EXPECT_EQ(r.at(9, 9), 0);
}

TEST(Rasterize, AgreesWithPolygonContains) {
  MaskRaster r(unit_grid(20), 0);
  const Polygon poly{
      Ring{{{2.2, 1.1}, {17.8, 3.4}, {15.2, 16.9}, {8.7, 18.2}, {1.4, 9.8}}}};
  rasterize_polygon(r, poly, 1);
  r.for_each([&](int c, int row, std::uint8_t v) {
    const Vec2 center = r.geom().cell_center(c, row);
    EXPECT_EQ(v != 0, poly.contains(center))
        << "cell " << c << "," << row;
  });
}

TEST(Rasterize, OutsideGridIsIgnored) {
  MaskRaster r(unit_grid(4), 0);
  rasterize_polygon(r, Polygon{geo::make_rect(10.0, 10.0, 20.0, 20.0)}, 1);
  EXPECT_EQ(r.count(1), 0u);
  // Partially overlapping clips cleanly.
  rasterize_polygon(r, Polygon{geo::make_rect(2.0, 2.0, 20.0, 20.0)}, 1);
  EXPECT_EQ(r.count(1), 4u);
}

TEST(Rasterize, MultiPolygon) {
  MaskRaster r(unit_grid(10), 0);
  geo::MultiPolygon mp;
  mp.push_back(Polygon{geo::make_rect(0.0, 0.0, 2.0, 2.0)});
  mp.push_back(Polygon{geo::make_rect(5.0, 5.0, 8.0, 8.0)});
  rasterize_multipolygon(r, mp, 3);
  EXPECT_EQ(r.count(3), 4u + 9u);
}

TEST(RasterizePolyline, ZeroWidthTracesCells) {
  MaskRaster r(unit_grid(10), 0);
  const std::vector<Vec2> line{{0.5, 0.5}, {9.5, 0.5}};
  rasterize_polyline(r, line, 0.0, 1);
  EXPECT_EQ(r.count(1), 10u);  // bottom row
  for (int c = 0; c < 10; ++c) EXPECT_EQ(r.at(c, 0), 1);
}

TEST(RasterizePolyline, WidthStampsDisc) {
  MaskRaster r(unit_grid(11), 0);
  const std::vector<Vec2> line{{5.5, 5.5}, {5.5, 5.5001}};
  rasterize_polyline(r, line, 2.0, 1);
  // A radius-2 disc around (5.5,5.5) covers cells whose centers are within
  // distance 2: the 3x3 block plus 4 edge cells = 13.
  EXPECT_EQ(r.count(1), 13u);
}

TEST(RasterizePolyline, DiagonalIsConnected) {
  MaskRaster r(unit_grid(10), 0);
  const std::vector<Vec2> line{{0.5, 0.5}, {9.5, 9.5}};
  rasterize_polyline(r, line, 0.75, 1);
  // Every diagonal cell must be stamped.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.at(i, i), 1) << i;
}

}  // namespace
}  // namespace fa::raster

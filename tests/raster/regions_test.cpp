#include "raster/regions.hpp"

#include <gtest/gtest.h>

#include "raster/rasterize.hpp"

namespace fa::raster {
namespace {

using geo::Polygon;
using geo::Vec2;

GridGeometry unit_grid(int n) {
  GridGeometry g;
  g.cell_w = 1.0;
  g.cell_h = 1.0;
  g.cols = n;
  g.rows = n;
  return g;
}

TEST(LabelComponents, TwoSeparateBlobs) {
  MaskRaster m(unit_grid(10), 0);
  m.at(1, 1) = 1;
  m.at(1, 2) = 1;
  m.at(8, 8) = 1;
  const Labeling lab = label_components(m);
  EXPECT_EQ(lab.count, 2u);
  EXPECT_EQ(lab.labels.at(1, 1), lab.labels.at(1, 2));
  EXPECT_NE(lab.labels.at(1, 1), lab.labels.at(8, 8));
  EXPECT_EQ(lab.labels.at(0, 0), 0u);
  // Sizes recorded per component.
  std::vector<std::size_t> sizes = lab.sizes;
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 2}));
}

TEST(LabelComponents, DiagonalCellsAreSeparate) {
  MaskRaster m(unit_grid(4), 0);
  m.at(1, 1) = 1;
  m.at(2, 2) = 1;  // touches only diagonally
  EXPECT_EQ(label_components(m).count, 2u);
}

TEST(LabelComponents, EmptyMask) {
  const MaskRaster m(unit_grid(4), 0);
  const Labeling lab = label_components(m);
  EXPECT_EQ(lab.count, 0u);
  EXPECT_TRUE(lab.sizes.empty());
}

TEST(ExtractRegions, SingleSquare) {
  MaskRaster m(unit_grid(10), 0);
  for (int r = 2; r < 6; ++r) {
    for (int c = 3; c < 8; ++c) m.at(c, r) = 1;
  }
  const auto regions = extract_regions(m);
  ASSERT_EQ(regions.size(), 1u);
  const Polygon& p = regions[0];
  EXPECT_DOUBLE_EQ(p.area(), 20.0);  // 5x4 cells
  EXPECT_TRUE(p.outer().is_ccw());
  EXPECT_EQ(p.outer().size(), 4u);  // collinear points collapsed
  EXPECT_TRUE(p.contains({5.5, 4.5}));
  EXPECT_FALSE(p.contains({1.0, 1.0}));
}

TEST(ExtractRegions, RegionWithHole) {
  MaskRaster m(unit_grid(10), 0);
  for (int r = 1; r < 9; ++r) {
    for (int c = 1; c < 9; ++c) m.at(c, r) = 1;
  }
  for (int r = 4; r < 6; ++r) {
    for (int c = 4; c < 6; ++c) m.at(c, r) = 0;  // carve a hole
  }
  const auto regions = extract_regions(m);
  ASSERT_EQ(regions.size(), 1u);
  const Polygon& p = regions[0];
  EXPECT_EQ(p.holes().size(), 1u);
  EXPECT_DOUBLE_EQ(p.area(), 64.0 - 4.0);
  EXPECT_FALSE(p.contains({5.0, 5.0}));   // inside the hole
  EXPECT_TRUE(p.contains({2.0, 2.0}));
}

TEST(ExtractRegions, SortedBySizeDescending) {
  MaskRaster m(unit_grid(12), 0);
  m.at(0, 0) = 1;  // size 1
  for (int c = 4; c < 10; ++c) {
    for (int r = 4; r < 10; ++r) m.at(c, r) = 1;  // size 36
  }
  const auto regions = extract_regions(m);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_GT(regions[0].area(), regions[1].area());
}

TEST(ExtractRegions, RoundTripThroughRasterize) {
  // Rasterize a polygon, extract it back, and compare membership for
  // every cell center: the vector->raster->vector loop must be stable.
  MaskRaster m(unit_grid(20), 0);
  const Polygon poly{
      geo::Ring{{{2.0, 2.0}, {15.0, 4.0}, {17.0, 14.0}, {6.0, 17.0}}}};
  rasterize_polygon(m, poly, 1);
  const auto regions = extract_regions(m);
  ASSERT_EQ(regions.size(), 1u);
  m.for_each([&](int c, int r, std::uint8_t v) {
    const Vec2 center = m.geom().cell_center(c, r);
    EXPECT_EQ(v != 0, regions[0].contains(center))
        << "cell " << c << "," << r;
  });
}

TEST(ExtractRegions, WorldCoordinatesRespectGeometry) {
  GridGeometry g;
  g.origin_x = 1000.0;
  g.origin_y = 2000.0;
  g.cell_w = 270.0;
  g.cell_h = 270.0;
  g.cols = 10;
  g.rows = 10;
  MaskRaster m(g, 0);
  m.at(2, 3) = 1;
  const auto regions = extract_regions(m);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_DOUBLE_EQ(regions[0].area(), 270.0 * 270.0);
  EXPECT_TRUE(regions[0].contains(g.cell_center(2, 3)));
}

TEST(TraceComponent, ProducesClosedLoops) {
  MaskRaster m(unit_grid(8), 0);
  // U-shape (concave).
  for (int c = 1; c < 7; ++c) m.at(c, 1) = 1;
  for (int r = 1; r < 6; ++r) {
    m.at(1, r) = 1;
    m.at(6, r) = 1;
  }
  const Labeling lab = label_components(m);
  ASSERT_EQ(lab.count, 1u);
  const auto loops = trace_component(lab.labels, 1);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_GE(loops[0].size(), 8u);  // concave outline has many corners
  EXPECT_DOUBLE_EQ(loops[0].area(), static_cast<double>(m.count(1)));
}

}  // namespace
}  // namespace fa::raster

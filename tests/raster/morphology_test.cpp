#include "raster/morphology.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fa::raster {
namespace {

GridGeometry meter_grid(int n, double cell = 1.0) {
  GridGeometry g;
  g.cell_w = cell;
  g.cell_h = cell;
  g.cols = n;
  g.rows = n;
  return g;
}

TEST(DistanceTransform, ZeroInsideMask) {
  MaskRaster m(meter_grid(9), 0);
  m.at(4, 4) = 1;
  const FloatRaster d = distance_transform(m);
  EXPECT_FLOAT_EQ(d.at(4, 4), 0.0f);
  EXPECT_FLOAT_EQ(d.at(5, 4), 1.0f);
  EXPECT_FLOAT_EQ(d.at(4, 6), 2.0f);
  // Diagonal neighbour: chamfer 4/3 vs exact sqrt(2)=1.414 (<6% error).
  EXPECT_NEAR(d.at(5, 5), std::sqrt(2.0), 0.09);
}

TEST(DistanceTransform, ChamferErrorBounded) {
  const int n = 41;
  MaskRaster m(meter_grid(n), 0);
  m.at(20, 20) = 1;
  const FloatRaster d = distance_transform(m);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      const double exact = std::hypot(c - 20, r - 20);
      if (exact == 0.0) continue;
      EXPECT_NEAR(d.at(c, r) / exact, 1.0, 0.08)
          << "cell " << c << "," << r;
    }
  }
}

TEST(DistanceTransform, ScalesWithCellSize) {
  MaskRaster m(meter_grid(9, 270.0), 0);  // WHP-like 270 m cells
  m.at(4, 4) = 1;
  const FloatRaster d = distance_transform(m);
  EXPECT_FLOAT_EQ(d.at(6, 4), 540.0f);
}

TEST(DistanceTransform, EmptyMaskIsInfinite) {
  const MaskRaster m(meter_grid(4), 0);
  const FloatRaster d = distance_transform(m);
  EXPECT_GT(d.at(0, 0), 1e30f);
}

TEST(Dilate, GrowsByRadius) {
  MaskRaster m(meter_grid(21), 0);
  m.at(10, 10) = 1;
  const MaskRaster grown = dilate_mask(m, 3.0);
  EXPECT_EQ(grown.at(10, 10), 1);
  EXPECT_EQ(grown.at(13, 10), 1);
  EXPECT_EQ(grown.at(14, 10), 0);
  EXPECT_EQ(grown.at(10, 13), 1);
  // Area close to a disc of radius 3 (chamfer disc, pi*9 ~ 28).
  EXPECT_NEAR(static_cast<double>(grown.count(1)), 28.0, 6.0);
}

TEST(Dilate, ZeroRadiusIsIdentity) {
  MaskRaster m(meter_grid(9), 0);
  m.at(2, 7) = 1;
  m.at(3, 3) = 1;
  const MaskRaster same = dilate_mask(m, 0.0);
  EXPECT_EQ(same.data(), m.data());
}

TEST(Dilate, MonotoneInRadius) {
  MaskRaster m(meter_grid(31), 0);
  m.at(15, 15) = 1;
  m.at(5, 25) = 1;
  std::size_t prev = 0;
  for (double radius : {1.0, 2.0, 4.0, 8.0}) {
    const std::size_t n = dilate_mask(m, radius).count(1);
    EXPECT_GT(n, prev);
    prev = n;
  }
}

TEST(ClassMask, SelectsSingleClass) {
  ClassRaster c(meter_grid(4), 0);
  c.at(0, 0) = 2;
  c.at(1, 1) = 2;
  c.at(2, 2) = 3;
  const MaskRaster m = class_mask(c, 2);
  EXPECT_EQ(m.count(1), 2u);
  EXPECT_EQ(m.at(2, 2), 0);
}

TEST(ClassHistogram, CountsAllClasses) {
  ClassRaster c(meter_grid(4), 0);  // 16 cells
  c.at(0, 0) = 1;
  c.at(1, 0) = 1;
  c.at(2, 0) = 5;
  const auto hist = class_histogram(c);
  EXPECT_EQ(hist.at(0), 13u);
  EXPECT_EQ(hist.at(1), 2u);
  EXPECT_EQ(hist.at(5), 1u);
}

TEST(ClassArea, UsesCellArea) {
  ClassRaster c(meter_grid(2, 270.0), 1);  // 4 cells of 270x270 m
  const auto area = class_area(c);
  EXPECT_DOUBLE_EQ(area.at(1), 4.0 * 270.0 * 270.0);
}

// The paper's Section 3.8 operator: dilating by half a mile on a 270 m
// grid must reach exactly floor(804.67/270) ~ 2-3 cells outward.
TEST(Dilate, HalfMileOnWhpGrid) {
  MaskRaster m(meter_grid(21, 270.0), 0);
  m.at(10, 10) = 1;
  const MaskRaster grown = dilate_mask(m, 804.672);
  EXPECT_EQ(grown.at(12, 10), 1);  // 540 m away
  EXPECT_EQ(grown.at(10, 12), 1);
  EXPECT_EQ(grown.at(13, 10), 0);  // 810 m away, just outside
}

}  // namespace
}  // namespace fa::raster

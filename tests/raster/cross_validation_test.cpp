// Cross-validation between independent implementations of the same
// geometric operation: the raster morphology path (used by the §3.8
// extension) against the vector buffering path, and scanline membership
// against analytic areas. Disagreement between two independent routes is
// the strongest bug signal this substrate can generate.
#include <gtest/gtest.h>

#include <numbers>

#include "geo/buffer.hpp"
#include "raster/morphology.hpp"
#include "raster/rasterize.hpp"
#include "raster/regions.hpp"

namespace fa::raster {
namespace {

GridGeometry fine_grid(int n, double cell) {
  GridGeometry g;
  g.origin_x = g.origin_y = 0.0;
  g.cell_w = g.cell_h = cell;
  g.cols = g.rows = n;
  return g;
}

TEST(CrossValidation, RasterDilationMatchesVectorBuffer) {
  // Dilate a rasterized convex polygon by r on the grid; the result must
  // agree cell-by-cell (within one cell of boundary slack) with the
  // rasterization of the vector buffer of the same polygon.
  const GridGeometry geom = fine_grid(120, 1.0);
  const geo::Ring convex{{{35, 40}, {70, 35}, {85, 60}, {60, 85}, {38, 72}}};
  const double radius = 7.0;

  MaskRaster base(geom, 0);
  rasterize_polygon(base, geo::Polygon{convex}, 1);
  const MaskRaster dilated = dilate_mask(base, radius);

  MaskRaster buffered(geom, 0);
  rasterize_polygon(buffered, geo::Polygon{geo::buffer_convex(convex, radius, 64)},
                    1);

  std::size_t disagreements = 0;
  std::size_t boundary_cells = 0;
  const FloatRaster dist = distance_transform(base);
  for (int r = 0; r < geom.rows; ++r) {
    for (int c = 0; c < geom.cols; ++c) {
      // Skip the ±1.5-cell annulus around the exact radius where the two
      // discretizations legitimately disagree (chamfer vs polygon edge).
      if (std::abs(dist.at(c, r) - radius) < 1.5) {
        ++boundary_cells;
        continue;
      }
      if (dilated.at(c, r) != buffered.at(c, r)) ++disagreements;
    }
  }
  EXPECT_EQ(disagreements, 0u);
  EXPECT_GT(boundary_cells, 0u);  // the annulus exists (sanity)
}

TEST(CrossValidation, DilatedAreaMatchesMinkowskiFormula) {
  // Area(dilate(P, r)) ~ A + P*r + pi r^2 for convex P.
  const GridGeometry geom = fine_grid(200, 1.0);
  const geo::Ring square = geo::make_rect(60, 60, 140, 140);
  MaskRaster base(geom, 0);
  rasterize_polygon(base, geo::Polygon{square}, 1);
  for (const double radius : {4.0, 8.0, 16.0}) {
    const double measured =
        static_cast<double>(dilate_mask(base, radius).count(1));
    const double expected = 80.0 * 80.0 + 4.0 * 80.0 * radius +
                            std::numbers::pi * radius * radius;
    EXPECT_NEAR(measured, expected, expected * 0.06) << radius;
  }
}

TEST(CrossValidation, ExtractedRegionAreaMatchesCellCount) {
  // Region extraction must conserve area exactly (cells -> polygon).
  const GridGeometry geom = fine_grid(60, 270.0);
  MaskRaster mask(geom, 0);
  std::size_t cells = 0;
  for (int r = 10; r < 40; ++r) {
    for (int c = 15; c < 45; ++c) {
      if ((c + r) % 7 != 0) {  // holes and ragged edges
        mask.at(c, r) = 1;
        ++cells;
      }
    }
  }
  double polygon_area = 0.0;
  for (const geo::Polygon& region : extract_regions(mask)) {
    polygon_area += region.area();
  }
  EXPECT_NEAR(polygon_area, static_cast<double>(cells) * 270.0 * 270.0, 1.0);
}

TEST(CrossValidation, ScanlineMatchesAnalyticCircleArea) {
  const GridGeometry geom = fine_grid(256, 1.0);
  const double radius = 90.0;
  MaskRaster mask(geom, 0);
  rasterize_polygon(
      mask, geo::Polygon{geo::make_circle({128, 128}, radius, 256)}, 1);
  const double analytic = std::numbers::pi * radius * radius;
  EXPECT_NEAR(static_cast<double>(mask.count(1)), analytic, analytic * 0.01);
}

}  // namespace
}  // namespace fa::raster

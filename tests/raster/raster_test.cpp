#include "raster/raster.hpp"

#include <gtest/gtest.h>

namespace fa::raster {
namespace {

using geo::BBox;
using geo::Vec2;

GridGeometry simple_geom() {
  GridGeometry g;
  g.origin_x = 100.0;
  g.origin_y = 200.0;
  g.cell_w = 10.0;
  g.cell_h = 5.0;
  g.cols = 8;
  g.rows = 4;
  return g;
}

TEST(GridGeometry, ExtentAndCellCount) {
  const GridGeometry g = simple_geom();
  EXPECT_EQ(g.cell_count(), 32u);
  EXPECT_EQ(g.extent(), (BBox{100.0, 200.0, 180.0, 220.0}));
  EXPECT_DOUBLE_EQ(g.cell_area(), 50.0);
}

TEST(GridGeometry, WorldToCellMapping) {
  const GridGeometry g = simple_geom();
  EXPECT_EQ(g.col_of(100.0), 0);
  EXPECT_EQ(g.col_of(109.999), 0);
  EXPECT_EQ(g.col_of(110.0), 1);
  EXPECT_EQ(g.row_of(200.0), 0);
  EXPECT_EQ(g.row_of(219.999), 3);
  EXPECT_EQ(g.col_of(99.0), -1);  // out of range, not clamped
  EXPECT_FALSE(g.in_bounds(-1, 0));
  EXPECT_TRUE(g.in_bounds(7, 3));
  EXPECT_FALSE(g.in_bounds(8, 3));
}

TEST(GridGeometry, CellCenterRoundTrip) {
  const GridGeometry g = simple_geom();
  for (int r = 0; r < g.rows; ++r) {
    for (int c = 0; c < g.cols; ++c) {
      const Vec2 center = g.cell_center(c, r);
      EXPECT_EQ(g.col_of(center.x), c);
      EXPECT_EQ(g.row_of(center.y), r);
      EXPECT_TRUE(g.cell_box(c, r).contains(center));
    }
  }
}

TEST(GridGeometry, CoveringExpandsToWholeCells) {
  const GridGeometry g =
      GridGeometry::covering(BBox{0.0, 0.0, 25.0, 9.0}, 10.0, 10.0);
  EXPECT_EQ(g.cols, 3);
  EXPECT_EQ(g.rows, 1);
  EXPECT_TRUE(g.extent().contains(BBox{0.0, 0.0, 25.0, 9.0}));
}

TEST(Raster, FillAndAt) {
  Raster<int> r(simple_geom(), 3);
  EXPECT_EQ(r.at(0, 0), 3);
  r.at(2, 1) = 9;
  EXPECT_EQ(r.at(2, 1), 9);
  EXPECT_EQ(r.count(9), 1u);
  EXPECT_EQ(r.count(3), 31u);
  r.fill(0);
  EXPECT_EQ(r.count(0), 32u);
}

TEST(Raster, SampleInsideAndOutside) {
  Raster<int> r(simple_geom(), 0);
  r.at(3, 2) = 42;
  const Vec2 inside = r.geom().cell_center(3, 2);
  EXPECT_EQ(r.sample(inside), 42);
  EXPECT_EQ(r.sample({0.0, 0.0}, -1), -1);  // outside -> fallback
}

TEST(Raster, ForEachVisitsEveryCellOnce) {
  Raster<int> r(simple_geom(), 1);
  int visits = 0;
  r.for_each([&](int, int, int v) {
    visits += v;
  });
  EXPECT_EQ(visits, 32);
}

TEST(Raster, EmptyRasterIsSafe) {
  const Raster<int> r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.sample({0, 0}, -7), -7);
}

}  // namespace
}  // namespace fa::raster

#include "powergrid/grid_model.hpp"

#include <gtest/gtest.h>

#include <set>

#include "powergrid/psps.hpp"
#include "synth/cells.hpp"

namespace fa::powergrid {
namespace {

struct World {
  synth::ScenarioConfig cfg;
  synth::WhpModel whp;
  cellnet::CellCorpus corpus;
  std::vector<cellnet::CellSite> ca_sites;
  World() {
    cfg.whp_cell_m = 9000.0;
    cfg.corpus_scale = 120.0;
    whp = synth::generate_whp(synth::UsAtlas::get(), cfg);
    corpus = synth::generate_corpus(synth::UsAtlas::get(), cfg);
    const int ca = synth::UsAtlas::get().state_index("CA");
    std::vector<cellnet::Transceiver> txr;
    for (const auto& t : corpus.transceivers()) {
      if (t.state == ca) txr.push_back(t);
    }
    ca_sites = cellnet::CellCorpus{std::move(txr)}.infer_sites(120.0);
  }
};

const World& world() {
  static const World w;
  return w;
}

const GridModel& ca_grid() {
  static const GridModel g = GridModel::build(
      world().ca_sites, world().whp, synth::UsAtlas::get(), 42);
  return g;
}

TEST(GridModel, EverySiteIsServed) {
  const GridModel& grid = ca_grid();
  ASSERT_EQ(grid.feeder_of_site().size(), world().ca_sites.size());
  std::size_t served = 0;
  std::set<std::uint32_t> seen;
  for (const Feeder& feeder : grid.feeders()) {
    for (const std::uint32_t site : feeder.sites) {
      EXPECT_TRUE(seen.insert(site).second) << "site on two feeders";
      EXPECT_EQ(grid.feeder_of_site()[site], feeder.id);
      ++served;
    }
  }
  EXPECT_EQ(served, world().ca_sites.size());
}

TEST(GridModel, FeederCapacityRespected) {
  const GridModelConfig cfg;
  for (const Feeder& feeder : ca_grid().feeders()) {
    EXPECT_LE(static_cast<int>(feeder.sites.size()), cfg.sites_per_feeder);
    EXPECT_FALSE(feeder.sites.empty());
  }
}

TEST(GridModel, SubstationsComeFromCities) {
  EXPECT_EQ(ca_grid().substations().size(),
            synth::UsAtlas::get().cities().size());
}

TEST(GridModel, ExposureBoundsAreSane) {
  for (const Feeder& feeder : ca_grid().feeders()) {
    EXPECT_GE(feeder.max_exposure, 0.0);
    EXPECT_LE(feeder.max_exposure, 1.0);
    EXPECT_GE(feeder.max_exposure, feeder.mean_exposure * 0.99);
    EXPECT_GE(feeder.length_m, 0.0);
  }
}

TEST(GridModel, ShutoffProbabilityBehaviour) {
  const GridModel& grid = ca_grid();
  const Feeder* exposed = nullptr;
  const Feeder* hardened = nullptr;
  for (const Feeder& feeder : grid.feeders()) {
    if (!feeder.hardened && feeder.max_exposure > 0.8) exposed = &feeder;
    if (feeder.hardened) hardened = &feeder;
  }
  ASSERT_NE(exposed, nullptr);
  ASSERT_NE(hardened, nullptr);
  // Monotone in wind severity; zero at calm.
  EXPECT_DOUBLE_EQ(grid.shutoff_probability(*exposed, 0.0, 0.05), 0.0);
  EXPECT_GT(grid.shutoff_probability(*exposed, 1.0, 0.05),
            grid.shutoff_probability(*exposed, 0.4, 0.05));
  // Hardened feeders exempt below extreme wind.
  EXPECT_DOUBLE_EQ(grid.shutoff_probability(*hardened, 0.8, 0.05), 0.0);
  EXPECT_GE(grid.shutoff_probability(*hardened, 0.95, 0.05), 0.0);
}

TEST(GridModel, DeterministicPerSeed) {
  const GridModel a = GridModel::build(world().ca_sites, world().whp,
                                       synth::UsAtlas::get(), 7);
  const GridModel b = GridModel::build(world().ca_sites, world().whp,
                                       synth::UsAtlas::get(), 7);
  ASSERT_EQ(a.feeders().size(), b.feeders().size());
  for (std::size_t i = 0; i < a.feeders().size(); ++i) {
    EXPECT_EQ(a.feeders()[i].sites, b.feeders()[i].sites);
    EXPECT_EQ(a.feeders()[i].hardened, b.feeders()[i].hardened);
  }
}

TEST(Psps, FeederPlanMirrorsModel) {
  const firesim::FeederPlan plan = to_feeder_plan(ca_grid());
  EXPECT_EQ(plan.feeder_of.size(), world().ca_sites.size());
  EXPECT_EQ(plan.risk.size(), ca_grid().feeders().size());
  EXPECT_EQ(plan.hardened.size(), ca_grid().feeders().size());
  for (const double r : plan.risk) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(Psps, GridDrivenCaseStudyRuns) {
  const firesim::DirsReport report = simulate_california_2019_with_grid(
      world().corpus, world().whp, synth::UsAtlas::get(), 99);
  ASSERT_EQ(report.days.size(), 8u);
  std::size_t total = 0;
  for (const auto& day : report.days) total += day.total();
  EXPECT_GT(total, 0u);
  // Interdependence visible: some power outages land outside perimeters.
  std::size_t outside = 0, power = 0;
  for (const auto& day : report.days) {
    outside += day.power_outside_fire;
    power += day.power;
  }
  EXPECT_LE(outside, power);
  EXPECT_GT(outside, power / 4);  // PSPS reaches far beyond the burns
}

TEST(Psps, AnalyzeGridReportsOverhang) {
  const GridStats stats =
      analyze_grid(ca_grid(), world().ca_sites, world().whp);
  EXPECT_GT(stats.substations, 0u);
  EXPECT_GT(stats.feeders, 10u);
  EXPECT_GT(stats.mean_sites_per_feeder, 1.0);
  EXPECT_GE(stats.sites_on_exposed_feeders, 0.0);
  EXPECT_LE(stats.sites_on_exposed_feeders, 1.0);
  // The pure interdependence overhang exists: some not-at-risk sites draw
  // power through at-risk terrain.
  EXPECT_GT(stats.clean_sites_dirty_feeders, 0.0);
}

TEST(Psps, HardeningReducesShutoffs) {
  GridModelConfig none;
  none.hardened_fraction = 0.0;
  GridModelConfig all;
  all.hardened_fraction = 1.0;
  firesim::OutageSimConfig sim_cfg;
  const firesim::DirsReport soft = simulate_california_2019_with_grid(
      world().corpus, world().whp, synth::UsAtlas::get(), 5, sim_cfg, none);
  const firesim::DirsReport hard = simulate_california_2019_with_grid(
      world().corpus, world().whp, synth::UsAtlas::get(), 5, sim_cfg, all);
  std::size_t soft_power = 0, hard_power = 0;
  for (const auto& day : soft.days) soft_power += day.power;
  for (const auto& day : hard.days) hard_power += day.power;
  // Hardened circuits are only exempt below extreme wind, so the peak
  // days still shut off; require a clear but not total reduction.
  EXPECT_LT(hard_power * 10, soft_power * 9);
}

}  // namespace
}  // namespace fa::powergrid

// Property test for the obs additivity contract: deterministic record/
// drop/coverage counters are *identical* at any thread count, because
// the exec chunk plan depends only on (n, grain) and per-chunk counter
// deltas are additive. Only timings (histograms, spans) may differ.
// Scheduling-dependent counters are the documented exceptions:
// "exec.steals" and "exec.inline_regions" (see obs/obs.hpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "core/analysis_context.hpp"
#include "core/historical.hpp"
#include "core/overlay.hpp"
#include "core/climate.hpp"
#include "core/whp_overlay.hpp"
#include "exec/exec.hpp"
#include "firesim/fire.hpp"
#include "obs/obs.hpp"

namespace fa::core::testing {
namespace {

using CounterMap = std::map<std::string, std::uint64_t>;

// The full deterministic pipeline: world build (synth + ingest), the
// Fig 6/7 overlay, the exec-parallel future-exposure reduction, and a
// simulated season overlaid on the corpus (the pooled exec path).
CounterMap run_pipeline_counters(int threads) {
  obs::Registry& reg = obs::Registry::global();
  reg.reset();
  const exec::ConcurrencyLimit limit(threads);

  synth::ScenarioConfig cfg;
  cfg.seed = 20191022;
  cfg.whp_cell_m = 9000.0;
  cfg.corpus_scale = 200.0;
  cfg.counties_per_state = 8;
  AnalysisContext ctx(cfg);
  const World& world = ctx.world();

  run_whp_overlay(world);
  run_future_exposure(world);
  firesim::FireSimulator sim(world.whp(), world.atlas(), world.config().seed);
  const firesim::FireSeason season =
      sim.simulate_year(ctx.historical_years().back(), ctx.fire_config);
  transceivers_in_perimeters(world, season.fires);

  CounterMap counters = reg.counters();
  counters.erase("exec.steals");
  counters.erase("exec.inline_regions");
  return counters;
}

TEST(ObsAdditivity, CountersIdenticalAcrossThreadCounts) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);

  const CounterMap serial = run_pipeline_counters(1);
  const CounterMap parallel = run_pipeline_counters(8);

  obs::Registry::global().reset();
  obs::set_enabled(was_enabled);

  // The pipeline actually recorded something at every layer.
  ASSERT_GT(serial.at("world.ingest.kept"), 0u);
  ASSERT_GT(serial.at("synth.corpus.transceivers"), 0u);
  ASSERT_GT(serial.at("exec.chunks"), 0u);
  ASSERT_GT(serial.at("firesim.fires"), 0u);

  // Same counter set, same values — byte-for-byte. A failure names the
  // first divergent counter.
  ASSERT_EQ(serial.size(), parallel.size());
  for (const auto& [name, value] : serial) {
    const auto it = parallel.find(name);
    ASSERT_NE(it, parallel.end()) << "counter missing at 8 threads: " << name;
    EXPECT_EQ(value, it->second) << "counter diverged across thread counts: "
                                 << name;
  }
}

}  // namespace
}  // namespace fa::core::testing

// Unit tests for the fa::obs substrate: counters, histograms, spans,
// registry snapshots, the FA_OBS kill switch, and both exporters
// (validated by round-tripping through io::parse_json).
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "io/json.hpp"

namespace fa::obs {
namespace {

// Every test runs with obs forced on and restores the prior state, so
// the suite passes under any FA_OBS setting.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = enabled();
    set_enabled(true);
  }
  void TearDown() override { set_enabled(was_enabled_); }

 private:
  bool was_enabled_ = false;
};

TEST_F(ObsTest, CounterAddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, CounterIsNoOpWhenDisabled) {
  Counter c;
  set_enabled(false);
  c.add(100);
  EXPECT_EQ(c.value(), 0u);
  set_enabled(true);
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST_F(ObsTest, HistogramBucketIndexing) {
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  EXPECT_EQ(Histogram::bucket_index(1), 1);
  EXPECT_EQ(Histogram::bucket_index(2), 2);
  EXPECT_EQ(Histogram::bucket_index(3), 2);
  EXPECT_EQ(Histogram::bucket_index(4), 3);
  // Values beyond the range clamp into the last bucket.
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}), Histogram::kBuckets - 1);
  // Floors invert the mapping: bucket i holds [floor(i), 2*floor(i)).
  EXPECT_EQ(Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(Histogram::bucket_floor(1), 1u);
  EXPECT_EQ(Histogram::bucket_floor(10), 512u);
  for (std::uint64_t v : {std::uint64_t{1}, std::uint64_t{100},
                          std::uint64_t{65536}, std::uint64_t{1} << 39}) {
    const int i = Histogram::bucket_index(v);
    EXPECT_GE(v, Histogram::bucket_floor(i)) << v;
    if (i + 1 < Histogram::kBuckets) {
      EXPECT_LT(v, Histogram::bucket_floor(i + 1)) << v;
    }
  }
}

TEST_F(ObsTest, HistogramAggregates) {
  Histogram h;
  h.record(0);
  h.record(10);
  h.record(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1010u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 1010.0 / 3.0);
  EXPECT_EQ(h.bucket(0), 1u);  // the zero
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.bucket(0), 0u);
}

TEST_F(ObsTest, RegistryReturnsStableReferences) {
  Registry reg;
  Counter& a = reg.counter("a");
  Counter& again = reg.counter("a");
  EXPECT_EQ(&a, &again);
  a.add(7);
  reg.reset();  // zeroes, never removes
  EXPECT_EQ(&reg.counter("a"), &a);
  EXPECT_EQ(a.value(), 0u);
}

TEST_F(ObsTest, SpanRecordsHistogramAndEvent) {
  Registry reg;
  {
    Span outer("outer", reg);
    Span inner("inner", reg);
  }
  const auto hists = reg.histograms();
  ASSERT_EQ(hists.size(), 2u);
  for (const HistogramSnapshot& h : hists) EXPECT_EQ(h.count, 1u);
  const auto events = reg.events();
  ASSERT_EQ(events.size(), 2u);
  // Outer starts first and contains inner.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_GE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
}

TEST_F(ObsTest, SpanStopIsIdempotent) {
  Registry reg;
  Span s("once", reg);
  s.stop();
  s.stop();
  EXPECT_EQ(reg.events().size(), 1u);
}

TEST_F(ObsTest, DisabledSpanRecordsNothing) {
  Registry reg;
  set_enabled(false);
  { Span s("ghost", reg); }
  set_enabled(true);
  EXPECT_TRUE(reg.events().empty());
  EXPECT_TRUE(reg.histograms().empty());
}

TEST_F(ObsTest, EventBufferOverflowCountsDrops) {
  Registry reg;
  for (std::size_t i = 0; i < Registry::kMaxEventsPerThread + 25; ++i) {
    reg.record_span("e", 0, 1);
  }
  EXPECT_EQ(reg.events().size(), Registry::kMaxEventsPerThread);
  EXPECT_EQ(reg.events_dropped(), 25u);
  reg.reset();
  EXPECT_EQ(reg.events_dropped(), 0u);
  EXPECT_TRUE(reg.events().empty());
}

TEST_F(ObsTest, ConcurrentCountersAreExact) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      Counter& c = reg.counter("shared");
      for (int i = 0; i < kIters; ++i) {
        c.add();
        reg.histogram("h").record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(reg.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  const auto hists = reg.histograms();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].count, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST_F(ObsTest, EventsMergeAcrossThreads) {
  Registry reg;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&reg] { Span s("worker", reg); });
  }
  for (std::thread& w : workers) w.join();
  const auto events = reg.events();
  EXPECT_EQ(events.size(), 4u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_ns, events[i - 1].start_ns);
  }
}

TEST_F(ObsTest, JsonExportRoundTrips) {
  Registry reg;
  reg.counter("records \"kept\"\n").add(3);  // name needing escapes
  reg.counter("plain").add(1);
  reg.record_span("stage", 100, 2500);
  const std::string json = to_json(reg);
  const io::JsonValue doc = io::parse_json(json);
  EXPECT_TRUE(doc.at("enabled").as_bool());
  EXPECT_EQ(doc.at("counters").at("plain").as_number(), 1.0);
  EXPECT_EQ(doc.at("counters").at("records \"kept\"\n").as_number(), 3.0);
  const io::JsonValue& stage = doc.at("histograms").at("stage");
  EXPECT_EQ(stage.at("count").as_number(), 1.0);
  EXPECT_EQ(stage.at("sum_ns").as_number(), 2500.0);
  EXPECT_EQ(stage.at("max_ns").as_number(), 2500.0);
  ASSERT_GE(stage.at("buckets").size(), 1u);
  EXPECT_EQ(doc.at("events").at("recorded").as_number(), 1.0);
  EXPECT_EQ(doc.at("events").at("dropped").as_number(), 0.0);
}

TEST_F(ObsTest, ChromeTraceRoundTrips) {
  Registry reg;
  reg.record_span("build", 1500, 1'234'567);  // 1.5 us start, ~1.23 ms
  reg.record_span("query", 2'000'000, 999);   // sub-microsecond duration
  const std::string trace = to_chrome_trace(reg);
  const io::JsonValue doc = io::parse_json(trace);
  const io::JsonValue& events = doc.at("traceEvents");
  ASSERT_EQ(events.size(), 2u);
  const io::JsonValue& build = events.at(std::size_t{0});
  EXPECT_EQ(build.at("name").as_string(), "build");
  EXPECT_EQ(build.at("ph").as_string(), "X");
  EXPECT_EQ(build.at("cat").as_string(), "fa");
  // Timestamps are microseconds with nanosecond precision preserved.
  EXPECT_DOUBLE_EQ(build.at("ts").as_number(), 1.5);
  EXPECT_DOUBLE_EQ(build.at("dur").as_number(), 1234.567);
  EXPECT_DOUBLE_EQ(events.at(std::size_t{1}).at("dur").as_number(), 0.999);
}

TEST_F(ObsTest, ScopedRegistrySwapsGlobalForItsScope) {
  Registry& default_reg = Registry::global();
  default_reg.counter("bleed").add(5);
  {
    ScopedRegistry scoped;
    EXPECT_EQ(&Registry::global(), &scoped.registry());
    count("bleed");  // records into the scoped registry only
    EXPECT_EQ(scoped.registry().counter("bleed").value(), 1u);
    {
      ScopedRegistry nested;  // scopes stack
      EXPECT_EQ(&Registry::global(), &nested.registry());
      count("bleed", 3);
      EXPECT_EQ(nested.registry().counter("bleed").value(), 3u);
    }
    EXPECT_EQ(&Registry::global(), &scoped.registry());
    EXPECT_EQ(scoped.registry().counter("bleed").value(), 1u);
  }
  EXPECT_EQ(&Registry::global(), &default_reg);
  EXPECT_EQ(default_reg.counter("bleed").value(), 5u)
      << "scoped recording must not leak into the default registry";
  default_reg.reset();
}

TEST_F(ObsTest, GlobalCountHelper) {
  Registry::global().reset();
  count("helper.test", 5);
  count("helper.test");
  EXPECT_EQ(Registry::global().counter("helper.test").value(), 6u);
  Registry::global().reset();
}

}  // namespace
}  // namespace fa::obs

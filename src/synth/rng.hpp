// Deterministic random number generation for the synthetic-data layer.
//
// Everything downstream of a `ScenarioConfig` seed must be reproducible
// byte-for-byte, so generators receive explicit Rng instances (no global
// state) and derive child seeds with split() rather than sharing streams.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>

namespace fa::synth {

// splitmix64: used for seeding and cheap hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Stateless position hash used by the noise field.
constexpr std::uint64_t hash_coords(std::uint64_t seed, std::int64_t x,
                                    std::int64_t y) {
  std::uint64_t s = seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(x)) ^
                    (0xC2B2AE3D27D4EB4FULL * static_cast<std::uint64_t>(y));
  return splitmix64(s);
}

// xoshiro256++: fast, high-quality, 2^256 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (std::uint64_t& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Independent child generator; deterministic function of current state.
  Rng split() { return Rng{next_u64() ^ 0xD1B54A32D192ED03ULL}; }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) { return next_u64() % n; }
  int range(int lo, int hi) {  // inclusive bounds
    return lo + static_cast<int>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool chance(double p) { return uniform() < p; }

  // Standard normal via Box-Muller (one value per call; simple > fast).
  double normal() {
    const double u1 = 1.0 - uniform();  // avoid log(0)
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }
  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  double exponential(double mean) {
    return -mean * std::log(1.0 - uniform());
  }

  // Log-normal parameterized by the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  // Bounded Pareto (power law) on [lo, hi] with shape alpha > 0.
  double pareto(double lo, double hi, double alpha) {
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    const double u = uniform();
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  }

  // Index drawn proportionally to non-negative weights (sum > 0).
  std::size_t weighted(std::span<const double> weights) {
    double total = 0.0;
    for (const double w : weights) total += w;
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      target -= weights[i];
      if (target < 0.0) return i;
    }
    return weights.size() - 1;
  }

  // Poisson (Knuth for small lambda, normal approximation for large).
  std::uint64_t poisson(double lambda) {
    if (lambda <= 0.0) return 0;
    if (lambda > 64.0) {
      const double v = normal(lambda, std::sqrt(lambda));
      return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
    }
    const double limit = std::exp(-lambda);
    double prod = uniform();
    std::uint64_t n = 0;
    while (prod > limit) {
      prod *= uniform();
      ++n;
    }
    return n;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

}  // namespace fa::synth

// Inter-city road network: the corridor graph shared by the hazard
// generator (managed, low-fuel strips), the corpus generator (roadside
// tower strings) and the road-exposure analysis. Built once per atlas:
// each city connects to its two nearest neighbours, deduplicated.
#pragma once

#include <span>
#include <vector>

#include "geo/lonlat.hpp"
#include "synth/usatlas.hpp"

namespace fa::synth {

struct RoadSegment {
  std::size_t city_a = 0;  // indices into UsAtlas::cities()
  std::size_t city_b = 0;
  geo::LonLat a;
  geo::LonLat b;
  double length_m = 0.0;
  // Placement weight used by the corpus generator: longer corridors
  // between bigger metros carry more roadside sites.
  double weight = 0.0;
};

class RoadNetwork {
 public:
  static const RoadNetwork& get();  // built over UsAtlas::get(), cached

  std::span<const RoadSegment> segments() const { return segments_; }
  double total_length_m() const { return total_length_m_; }

  // Distance from `p` to the nearest corridor centreline (great-circle
  // approximated on a local plane), and that segment's index.
  struct Nearest {
    std::size_t segment = 0;
    double distance_m = 0.0;
  };
  Nearest nearest(geo::LonLat p) const;

 private:
  explicit RoadNetwork(const UsAtlas& atlas);
  std::vector<RoadSegment> segments_;
  double total_length_m_ = 0.0;
};

}  // namespace fa::synth

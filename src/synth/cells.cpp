#include "synth/cells.hpp"

#include <array>
#include <cmath>
#include <vector>

#include "fault/injector.hpp"
#include "geo/geodesy.hpp"
#include "obs/obs.hpp"
#include "synth/rng.hpp"
#include "synth/roads.hpp"

namespace fa::synth {

namespace {

using cellnet::Provider;
using cellnet::RadioType;
using cellnet::Transceiver;

// Radio-type marginals implied by the paper's Table 3 at-risk breakdown
// (LTE 53%, UMTS 30.5%, CDMA 9.5%, GSM 7%). No NR: the 2019 snapshot
// pre-dates 5G deployment (Section 3.5).
constexpr std::array<double, 4> kRadioShare = {0.53, 0.305, 0.095, 0.07};
constexpr std::array<RadioType, 4> kRadioOf = {
    RadioType::kLte, RadioType::kUmts, RadioType::kCdma, RadioType::kGsm};

// Provider fleet shares backed out of Table 2 (counts / percentages).
constexpr std::array<double, 5> kProviderShare = {
    0.345,  // AT&T      (~1.87M transceivers)
    0.300,  // T-Mobile  (~1.63M)
    0.153,  // Sprint    (~0.83M)
    0.142,  // Verizon   (~0.77M)
    0.060,  // regional carriers
};

enum class Source { kUrban, kRoad, kRural };

// Footprint biases: Sprint skews metro-heavy, Verizon and the regionals
// skew rural/highway-heavy. These are what make each provider's share of
// *at-risk* fleet differ in Table 2 (Verizon 5.50% vs Sprint 3.90% in
// WHP-moderate) even though at-risk areas are fixed geography.
double source_multiplier(Provider p, Source s) {
  switch (p) {
    case Provider::kSprint:
      return s == Source::kUrban ? 1.08 : 0.50;
    case Provider::kVerizon:
      return s == Source::kUrban ? 0.92 : 1.35;
    case Provider::kAtt:
      return s == Source::kUrban ? 0.98 : 1.10;
    case Provider::kRegional:
      return s == Source::kUrban ? 0.55 : 2.20;
    case Provider::kTMobile:
      return 1.0;
  }
  return 1.0;
}

}  // namespace

cellnet::CellCorpus generate_corpus(const UsAtlas& atlas,
                                    const ScenarioConfig& config,
                                    const CorpusMixture& mix) {
  fault::Injector::global().fail_point("synth.corpus", config.seed);
  const obs::Span span("synth.corpus");
  Rng rng(config.seed ^ 0xCE11C0DEULL);
  Rng radio_rng = rng.split();
  Rng provider_rng = rng.split();

  const cellnet::ProviderRegistry registry;
  std::array<std::vector<cellnet::MncRecord>, cellnet::kNumProviders> blocks;
  for (int p = 0; p < cellnet::kNumProviders; ++p) {
    blocks[static_cast<std::size_t>(p)] =
        registry.blocks_of(static_cast<Provider>(p));
  }

  // City choice weighted by metro population.
  const auto cities = atlas.cities();
  std::vector<double> city_weight;
  city_weight.reserve(cities.size());
  for (const CityInfo& c : cities) city_weight.push_back(c.metro_population);

  // Road corridors from the shared network.
  const RoadNetwork& roads = RoadNetwork::get();
  std::vector<double> road_weight;
  road_weight.reserve(roads.segments().size());
  for (const RoadSegment& segment : roads.segments()) {
    road_weight.push_back(segment.weight);
  }

  // Rural scatter weighted by state population (people pull coverage).
  std::vector<double> state_weight;
  for (const StateInfo& s : atlas.states()) {
    state_weight.push_back(s.population);
  }

  const std::size_t target = config.corpus_size();
  std::vector<Transceiver> out;
  out.reserve(target);

  // Transceivers are emitted in co-located groups: one cell site hosts
  // several radios (bands x tenants; Figure 1 of the paper). Urban sites
  // are denser than rural ones. The OpenCelliD position noise is modelled
  // as a small per-radio jitter around the site.
  while (out.size() < target) {
    // --- position ---
    Source source;
    geo::LonLat pos;
    const double u = rng.uniform();
    if (u < mix.urban_fraction) {
      source = Source::kUrban;
      const CityInfo& city = cities[rng.weighted(city_weight)];
      // Two-component radial mixture: tight core + sprawling suburbs.
      const double sigma_km =
          (rng.chance(0.6) ? 4.0 : 14.0) *
          (0.5 + std::sqrt(city.metro_population / 1e6) / 2.2);
      const double bearing = rng.uniform(0.0, 360.0);
      const double dist_m = std::abs(rng.normal(0.0, sigma_km * 1000.0));
      pos = geo::destination(city.position, bearing, dist_m);
    } else if (u < mix.urban_fraction + mix.road_fraction) {
      source = Source::kRoad;
      const RoadSegment& road =
          roads.segments()[rng.weighted(road_weight)];
      // Corridor density is endpoint-biased: towers thin out in the
      // empty middle stretches between metros.
      double t = rng.uniform();
      if (rng.chance(0.5)) t = t < 0.5 ? t * t * 2.0 : 1.0 - (1.0 - t) * (1.0 - t) * 2.0;
      pos = {road.a.lon + t * (road.b.lon - road.a.lon),
             road.a.lat + t * (road.b.lat - road.a.lat)};
      // Sites sit within a couple of km of the roadway.
      pos = geo::destination(pos, rng.uniform(0.0, 360.0),
                             std::abs(rng.normal(0.0, 1800.0)));
    } else {
      source = Source::kRural;
      const std::size_t s = rng.weighted(state_weight);
      // Half of rural coverage hugs the exurban fringe of a city in the
      // same state; the rest scatters across open land. Deep wildland is
      // almost empty of infrastructure, as in the OpenCelliD map.
      const geo::BBox box = atlas.state_boundary(static_cast<int>(s)).bbox();
      bool near_city = rng.chance(0.5);
      if (near_city) {
        const CityInfo* pick = nullptr;
        for (int attempt = 0; attempt < 8 && pick == nullptr; ++attempt) {
          const CityInfo& cand = cities[rng.weighted(city_weight)];
          if (atlas.state_index(cand.state_abbr) == static_cast<int>(s)) {
            pick = &cand;
          }
        }
        if (pick != nullptr) {
          pos = {pick->position.lon + rng.normal(0.0, 1.0),
                 pick->position.lat + rng.normal(0.0, 0.8)};
        } else {
          near_city = false;
        }
      }
      if (!near_city) {
        pos = {rng.uniform(box.min_x, box.max_x),
               rng.uniform(box.min_y, box.max_y)};
      }
    }

    const int state = atlas.state_of(pos);
    if (state < 0) continue;  // offshore sample; redraw

    // Radios on this site: urban towers serve more tenants and bands.
    const std::uint64_t site_radios =
        1 + rng.poisson(source == Source::kUrban ? 11.0 : 4.0);
    for (std::uint64_t k = 0; k < site_radios && out.size() < target; ++k) {
      Transceiver t;
      t.id = static_cast<std::uint32_t>(out.size());
      // ~30 m crowd-sourcing jitter per radio.
      t.position = {pos.lon + rng.normal(0.0, 0.0003),
                    pos.lat + rng.normal(0.0, 0.0002)};
      t.state = static_cast<std::int16_t>(state);
      t.radio = kRadioOf[radio_rng.weighted(kRadioShare)];

      std::array<double, cellnet::kNumProviders> pw;
      for (int p = 0; p < cellnet::kNumProviders; ++p) {
        pw[static_cast<std::size_t>(p)] =
            kProviderShare[static_cast<std::size_t>(p)] *
            source_multiplier(static_cast<Provider>(p), source);
      }
      const auto provider = static_cast<std::size_t>(provider_rng.weighted(pw));
      const auto& provider_blocks = blocks[provider];
      const cellnet::MncRecord& block =
          provider_blocks[provider_rng.below(provider_blocks.size())];
      t.mcc = block.mcc;
      t.mnc = block.mnc;
      t.cell_id = static_cast<std::uint32_t>(provider_rng.next_u64());
      out.push_back(t);
    }
  }
  obs::count("synth.corpus.transceivers", out.size());
  return cellnet::CellCorpus{std::move(out)};
}

}  // namespace fa::synth

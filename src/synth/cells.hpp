// Synthetic transceiver-corpus generator.
//
// Reproduces the spatial statistics of the OpenCelliD snapshot (Figure 2):
// dense urban clusters, strings along inter-city road corridors, and a
// sparse rural scatter; provider and radio-type marginals match the
// paper's Tables 2-3. Deterministic in (seed, scale).
#pragma once

#include "cellnet/corpus.hpp"
#include "synth/scenario.hpp"
#include "synth/usatlas.hpp"

namespace fa::synth {

struct CorpusMixture {
  double urban_fraction = 0.76;  // clustered around metro centers
  double road_fraction = 0.16;   // along inter-city corridors
  double rural_fraction = 0.08;  // population-weighted scatter
};

cellnet::CellCorpus generate_corpus(const UsAtlas& atlas,
                                    const ScenarioConfig& config,
                                    const CorpusMixture& mix = {});

}  // namespace fa::synth

#include "synth/population.hpp"

#include <cmath>
#include <vector>

#include "obs/obs.hpp"

namespace fa::synth {

PopulationSurface PopulationSurface::build(const UsAtlas& atlas,
                                           const ScenarioConfig& config,
                                           double cell_m) {
  const obs::Span span("synth.population");
  PopulationSurface surface;
  if (cell_m <= 0.0) cell_m = config.whp_cell_m * 4.0;

  geo::BBox albers_box;
  for (int s = 0; s < atlas.num_states(); ++s) {
    for (const geo::Vec2& v : atlas.state_boundary(s).outer().points()) {
      albers_box.expand(surface.proj_.forward(geo::LonLat::from_vec(v)));
    }
  }
  const raster::GridGeometry geom = raster::GridGeometry::covering(
      albers_box.inflated(cell_m), cell_m, cell_m);
  surface.grid_ = raster::Raster<float>(geom, 0.0f);

  // Pass 1: state membership per cell and per-state land-cell counts.
  raster::Raster<std::int16_t> state_of(geom, -1);
  std::vector<std::size_t> cells_in_state(
      static_cast<std::size_t>(atlas.num_states()), 0);
  for (int r = 0; r < geom.rows; ++r) {
    for (int c = 0; c < geom.cols; ++c) {
      const geo::LonLat ll = surface.proj_.inverse(geom.cell_center(c, r));
      const int s = atlas.state_of(ll);
      state_of.at(c, r) = static_cast<std::int16_t>(s);
      if (s >= 0) ++cells_in_state[static_cast<std::size_t>(s)];
    }
  }

  // Pass 2: metro gaussians. 70% of each state's population lives in the
  // gaussian footprints of its cities (allocated proportionally to metro
  // population), the rest is rural base.
  std::vector<double> metro_pop_in_state(
      static_cast<std::size_t>(atlas.num_states()), 0.0);
  for (const CityInfo& city : atlas.cities()) {
    const int s = atlas.state_index(city.state_abbr);
    if (s >= 0) {
      metro_pop_in_state[static_cast<std::size_t>(s)] += city.metro_population;
    }
  }
  for (const CityInfo& city : atlas.cities()) {
    const int s = atlas.state_index(city.state_abbr);
    if (s < 0) continue;
    const StateInfo& info = atlas.states()[static_cast<std::size_t>(s)];
    const double metro_total = metro_pop_in_state[static_cast<std::size_t>(s)];
    if (metro_total <= 0.0) continue;
    // This city's share of the state's urban 70%.
    const double persons = 0.70 * info.population *
                           (city.metro_population / metro_total);
    const geo::Vec2 center = surface.proj_.forward(city.position);
    const double sigma_m =
        (4.0 + 9.0 * std::sqrt(city.metro_population / 1e6)) * 1000.0;
    // Stamp within 3 sigma; accumulate weights, then scale to `persons`.
    const int reach = static_cast<int>(3.0 * sigma_m / cell_m) + 1;
    const int c0 = geom.col_of(center.x);
    const int r0 = geom.row_of(center.y);
    double weight_sum = 0.0;
    std::vector<std::pair<std::pair<int, int>, double>> stamped;
    for (int r = r0 - reach; r <= r0 + reach; ++r) {
      for (int c = c0 - reach; c <= c0 + reach; ++c) {
        if (!geom.in_bounds(c, r) || state_of.at(c, r) < 0) continue;
        const geo::Vec2 p = geom.cell_center(c, r);
        const double d2 = geo::distance2(p, center);
        const double w = std::exp(-0.5 * d2 / (sigma_m * sigma_m));
        if (w < 1e-4) continue;
        weight_sum += w;
        stamped.push_back({{c, r}, w});
      }
    }
    if (weight_sum <= 0.0) continue;
    for (const auto& [cell, w] : stamped) {
      surface.grid_.at(cell.first, cell.second) +=
          static_cast<float>(persons * w / weight_sum);
    }
  }

  // Pass 3: rural base — each state's remaining 30% spread uniformly.
  for (int r = 0; r < geom.rows; ++r) {
    for (int c = 0; c < geom.cols; ++c) {
      const int s = state_of.at(c, r);
      if (s < 0) continue;
      const StateInfo& info = atlas.states()[static_cast<std::size_t>(s)];
      const double rural = 0.30 * info.population /
                           static_cast<double>(std::max<std::size_t>(
                               1, cells_in_state[static_cast<std::size_t>(s)]));
      surface.grid_.at(c, r) += static_cast<float>(rural);
    }
  }
  return surface;
}

double PopulationSurface::total() const {
  double acc = 0.0;
  for (const float v : grid_.data()) acc += v;
  return acc;
}

}  // namespace fa::synth

#include "synth/roads.hpp"

#include <cmath>
#include <limits>

#include "geo/geodesy.hpp"

namespace fa::synth {

RoadNetwork::RoadNetwork(const UsAtlas& atlas) {
  const auto cities = atlas.cities();
  for (std::size_t i = 0; i < cities.size(); ++i) {
    // Two nearest other cities (kept identical to the original generator
    // logic so existing seeds reproduce the same corridors).
    std::size_t best[2] = {i, i};
    double best_d[2] = {1e30, 1e30};
    for (std::size_t j = 0; j < cities.size(); ++j) {
      if (j == i) continue;
      const double d =
          geo::haversine_m(cities[i].position, cities[j].position);
      if (d < best_d[0]) {
        best_d[1] = best_d[0];
        best[1] = best[0];
        best_d[0] = d;
        best[0] = j;
      } else if (d < best_d[1]) {
        best_d[1] = d;
        best[1] = j;
      }
    }
    for (const std::size_t j : best) {
      if (j == i || j < i) continue;  // each corridor once
      RoadSegment segment;
      segment.city_a = i;
      segment.city_b = j;
      segment.a = cities[i].position;
      segment.b = cities[j].position;
      segment.length_m = geo::haversine_m(segment.a, segment.b);
      segment.weight =
          std::sqrt(best_d[j == best[0] ? 0 : 1]) *
          std::sqrt((cities[i].metro_population +
                     cities[j].metro_population) / 1e6);
      total_length_m_ += segment.length_m;
      segments_.push_back(segment);
    }
  }
}

const RoadNetwork& RoadNetwork::get() {
  static const RoadNetwork network(UsAtlas::get());
  return network;
}

RoadNetwork::Nearest RoadNetwork::nearest(geo::LonLat p) const {
  Nearest out;
  out.distance_m = std::numeric_limits<double>::infinity();
  const double coslat = std::cos(p.lat * geo::kDegToRad);
  const geo::Vec2 q{p.lon * coslat, p.lat};
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    // Local-plane point-to-segment distance in degree units, converted
    // to metres at this latitude — accurate to ~1% at corridor scales.
    const geo::Vec2 a{segments_[s].a.lon * coslat, segments_[s].a.lat};
    const geo::Vec2 b{segments_[s].b.lon * coslat, segments_[s].b.lat};
    const geo::Vec2 ab = b - a;
    const double len2 = ab.norm2();
    double t = len2 > 0.0 ? (q - a).dot(ab) / len2 : 0.0;
    t = std::clamp(t, 0.0, 1.0);
    const double d_deg = geo::distance(q, a + ab * t);
    const double d_m = d_deg * geo::meters_per_deg_lat();
    if (d_m < out.distance_m) {
      out.distance_m = d_m;
      out.segment = s;
    }
  }
  return out;
}

}  // namespace fa::synth

// Synthetic population-density surface for the conterminous US.
//
// Census block data is the paper's population source; this raster stands
// in for it with the same moments the analyses consume: metro gaussians
// carrying each city's metro population plus a uniform rural base per
// state, normalized so every state's raster total matches its 2018
// population. Used by the spatial coverage-loss model and available to
// any analysis that needs people-per-cell.
#pragma once

#include "geo/projection.hpp"
#include "raster/raster.hpp"
#include "synth/scenario.hpp"
#include "synth/usatlas.hpp"

namespace fa::synth {

class PopulationSurface {
 public:
  // Persons per cell on an Albers grid with `cell_m` spacing (defaults to
  // 4x the scenario's WHP cell to keep memory modest).
  static PopulationSurface build(const UsAtlas& atlas,
                                 const ScenarioConfig& config,
                                 double cell_m = 0.0);

  const raster::Raster<float>& grid() const { return grid_; }
  const geo::AlbersConus& projection() const { return proj_; }

  // Persons in the cell containing `p` (0 offshore).
  double population_at(geo::LonLat p) const {
    return grid_.sample(proj_.forward(p), 0.0f);
  }
  // Total persons over all cells (approximately the CONUS population).
  double total() const;

 private:
  raster::Raster<float> grid_;
  geo::AlbersConus proj_;
};

}  // namespace fa::synth

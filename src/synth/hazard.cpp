#include "synth/hazard.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "exec/exec.hpp"
#include "fault/injector.hpp"
#include "obs/obs.hpp"
#include "geo/geodesy.hpp"
#include "raster/morphology.hpp"
#include "raster/rasterize.hpp"
#include "synth/noise.hpp"
#include "synth/roads.hpp"

namespace fa::synth {

std::string_view whp_class_name(WhpClass c) {
  switch (c) {
    case WhpClass::kNonBurnable: return "Non-burnable";
    case WhpClass::kVeryLow: return "Very Low";
    case WhpClass::kLow: return "Low";
    case WhpClass::kModerate: return "Moderate";
    case WhpClass::kHigh: return "High";
    case WhpClass::kVeryHigh: return "Very High";
  }
  return "?";
}

namespace {

// Urban-core radius for a metro of `pop` persons, in metres. LA (13.3M)
// gets ~19 km, a 200k metro ~5 km.
double urban_radius_m(double pop) {
  return (3.0 + 4.4 * std::sqrt(pop / 1e6)) * 1000.0;
}

}  // namespace

WhpModel generate_whp(const UsAtlas& atlas, const ScenarioConfig& config) {
  fault::Injector::global().fail_point("synth.whp", config.seed);
  const obs::Span span("synth.whp");
  WhpModel model;

  // Albers-space bounds of the CONUS from the state outlines.
  geo::BBox albers_box;
  for (int s = 0; s < atlas.num_states(); ++s) {
    for (const geo::Vec2& v : atlas.state_boundary(s).outer().points()) {
      albers_box.expand(model.proj_.forward(geo::LonLat::from_vec(v)));
    }
  }
  const raster::GridGeometry geom = raster::GridGeometry::covering(
      albers_box.inflated(config.whp_cell_m), config.whp_cell_m,
      config.whp_cell_m);

  model.grid_ = raster::ClassRaster(
      geom, static_cast<std::uint8_t>(WhpClass::kNonBurnable));
  model.states_ = raster::Raster<std::int16_t>(geom, -1);
  model.urban_ = raster::MaskRaster(geom, 0);
  model.roads_ = raster::MaskRaster(geom, 0);

  // --- Urban cores -------------------------------------------------------
  for (const CityInfo& city : atlas.cities()) {
    const geo::Vec2 center = model.proj_.forward(city.position);
    const double r = urban_radius_m(city.metro_population);
    const geo::Polygon disc{geo::make_circle(center, r, 24)};
    raster::rasterize_polygon(model.urban_, disc, 1);
  }

  // --- Road corridors from the shared network ------------------------------
  for (const RoadSegment& segment : RoadNetwork::get().segments()) {
    const std::vector<geo::Vec2> line{model.proj_.forward(segment.a),
                                      model.proj_.forward(segment.b)};
    raster::rasterize_polyline(model.roads_, line, config.whp_cell_m * 0.6,
                               1);
  }

  // --- Hazard classification ---------------------------------------------
  // score = fbm^1.35 + 0.55*(propensity - 0.5), suppressed near urban
  // cores; classified by fixed cuts. Constants are calibrated so that per
  // state: area(M) > area(H) > area(VH) and the paper's high-risk states
  // carry the most at-risk area.
  const ValueNoise noise(config.seed ^ 0x9D2C5680ULL);
  const double wavelength_m = 42000.0;  // hazard blob scale
  const raster::FloatRaster urban_dist = raster::distance_transform(model.urban_);

  // Row-parallel: every cell's score is a pure function of its own
  // coordinates (value noise, not sequential RNG), so rows classify
  // independently and the surface is identical at any thread count.
  exec::parallel_for(static_cast<std::size_t>(geom.rows), [&](std::size_t row) {
    const int r = static_cast<int>(row);
    for (int c = 0; c < geom.cols; ++c) {
      const geo::Vec2 center = geom.cell_center(c, r);
      const geo::LonLat ll = model.proj_.inverse(center);
      const int state = atlas.state_of(ll);
      if (state < 0) continue;  // offshore / outside CONUS
      model.states_.at(c, r) = static_cast<std::int16_t>(state);

      if (model.urban_.at(c, r) != 0) {
        // Urban cores hold no wildfire fuel.
        model.grid_.at(c, r) =
            static_cast<std::uint8_t>(WhpClass::kNonBurnable);
        continue;
      }

      const double p =
          atlas.states()[static_cast<std::size_t>(state)].fire_propensity;
      const double n =
          noise.fbm(center.x / wavelength_m, center.y / wavelength_m, 4);
      double score = std::pow(n, 1.35) + 0.55 * (p - 0.5);

      // Taper toward urban edges: vegetation (fuel) builds with distance
      // from the developed core, the WUI gradient of Section 3.7.
      const double d_urban = urban_dist.at(c, r);
      score *= std::clamp(0.38 + d_urban / 9000.0, 0.38, 1.0);

      WhpClass cls;
      if (score < 0.28) cls = WhpClass::kVeryLow;
      else if (score < 0.44) cls = WhpClass::kLow;
      else if (score < 0.60) cls = WhpClass::kModerate;
      else if (score < 0.74) cls = WhpClass::kHigh;
      else cls = WhpClass::kVeryHigh;

      // Managed road corridors carry little fuel regardless of terrain.
      if (model.roads_.at(c, r) != 0) {
        cls = std::min(cls, WhpClass::kLow);
      }
      model.grid_.at(c, r) = static_cast<std::uint8_t>(cls);
    }
  }, {.grain = 4});
  return model;
}

}  // namespace fa::synth

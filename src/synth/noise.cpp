#include "synth/noise.hpp"

#include <cmath>

#include "synth/rng.hpp"

namespace fa::synth {

double ValueNoise::lattice(std::int64_t ix, std::int64_t iy) const {
  return static_cast<double>(hash_coords(seed_, ix, iy) >> 11) * 0x1.0p-53;
}

double ValueNoise::sample(double x, double y) const {
  const double fx = std::floor(x);
  const double fy = std::floor(y);
  const auto ix = static_cast<std::int64_t>(fx);
  const auto iy = static_cast<std::int64_t>(fy);
  double tx = x - fx;
  double ty = y - fy;
  // Smoothstep for C1 continuity at lattice lines.
  tx = tx * tx * (3.0 - 2.0 * tx);
  ty = ty * ty * (3.0 - 2.0 * ty);
  const double v00 = lattice(ix, iy);
  const double v10 = lattice(ix + 1, iy);
  const double v01 = lattice(ix, iy + 1);
  const double v11 = lattice(ix + 1, iy + 1);
  const double a = v00 + (v10 - v00) * tx;
  const double b = v01 + (v11 - v01) * tx;
  return a + (b - a) * ty;
}

double ValueNoise::fbm(double x, double y, int octaves, double lacunarity,
                       double gain) const {
  double amp = 1.0;
  double freq = 1.0;
  double total = 0.0;
  double norm = 0.0;
  for (int i = 0; i < octaves; ++i) {
    // Offset each octave so lattice artifacts do not align.
    total += amp * sample(x * freq + 31.7 * i, y * freq - 17.3 * i);
    norm += amp;
    amp *= gain;
    freq *= lacunarity;
  }
  return norm > 0.0 ? total / norm : 0.0;
}

}  // namespace fa::synth

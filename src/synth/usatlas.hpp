// Coarse built-in geography of the conterminous US: state boundaries
// (5-20 vertex approximations), 2018 state populations, per-state wildfire
// propensity priors, major cities with metro populations, the >1.5M-person
// counties the paper's Figures 10-12 key on, and the Littell et al.
// ecoregion projections for the Salt Lake City-Denver corridor.
//
// This is the stand-in for Census TIGER + the paper's basemap layers. The
// boundaries are deliberately coarse (this is synthetic-data scaffolding,
// not cartography) but areas, adjacency and the containment of the listed
// cities are correct, which is what the overlay analysis depends on.
#pragma once

#include <span>
#include <string_view>

#include "geo/bbox.hpp"
#include "geo/lonlat.hpp"
#include "geo/polygon.hpp"

namespace fa::synth {

struct StateInfo {
  std::string_view name;
  std::string_view abbr;
  double population;        // 2018 estimate
  double fire_propensity;   // [0,1] prior for the WHP generator
};

struct CityInfo {
  std::string_view name;
  std::string_view state_abbr;
  geo::LonLat position;
  double metro_population;  // persons in the metro area
};

// Counties with more than 1.5M people (the paper's "very dense" Pop VH
// category), anchored at their principal city.
struct MajorCountyInfo {
  std::string_view name;
  std::string_view state_abbr;
  geo::LonLat anchor;
  double population;
};

// Littell et al. ecoregion burn-area projections for the SLC-Denver
// corridor (paper Section 3.9, Figures 14-15).
struct EcoregionInfo {
  std::string_view name;
  double delta_burn_pct_2040;  // projected % change in area burned
  geo::Polygon boundary;       // lon/lat
};

class UsAtlas {
 public:
  // The atlas is immutable, built once.
  static const UsAtlas& get();

  std::span<const StateInfo> states() const { return states_; }
  const geo::Polygon& state_boundary(int state_idx) const {
    return boundaries_[static_cast<std::size_t>(state_idx)];
  }
  int num_states() const { return static_cast<int>(states_.size()); }

  // State containing `p`; falls back to the nearest state centroid within
  // ~150 km for points in boundary-approximation gaps; -1 when offshore.
  int state_of(geo::LonLat p) const;
  // Index by postal abbreviation, -1 if unknown.
  int state_index(std::string_view abbr) const;

  std::span<const CityInfo> cities() const { return cities_; }
  std::span<const MajorCountyInfo> major_counties() const {
    return major_counties_;
  }
  std::span<const EcoregionInfo> ecoregions() const { return ecoregions_; }
  // Western-US-wide ecoregion projections (Littell et al. cover the
  // western states); used by the future-exposure extension. Coarser bands
  // than ecoregions(), which stays faithful to the paper's Figures 14-15
  // corridor.
  std::span<const EcoregionInfo> western_ecoregions() const {
    return western_ecoregions_;
  }

  // Total population over all conterminous states.
  double total_population() const { return total_population_; }
  geo::BBox conus_bbox() const { return conus_bbox_; }

 private:
  UsAtlas();
  std::span<const StateInfo> states_;
  std::vector<geo::Polygon> boundaries_;
  std::vector<geo::Vec2> centroids_;
  std::span<const CityInfo> cities_;
  std::span<const MajorCountyInfo> major_counties_;
  std::vector<EcoregionInfo> ecoregions_;
  std::vector<EcoregionInfo> western_ecoregions_;
  double total_population_ = 0.0;
  geo::BBox conus_bbox_;
};

}  // namespace fa::synth

// Synthetic Wildfire Hazard Potential (WHP) surface.
//
// Mirrors the USFS product the paper overlays (Section 2.2.2): a CONUS-
// wide Albers raster whose cells carry one of five hazard classes plus
// non-burnable. The synthetic surface is built from
//   * per-state fire-propensity priors (west + southeast high),
//   * a multi-octave value-noise field for spatial autocorrelation,
//   * urban-core and road-corridor masks stamped to non-burnable/very-low
//     (the exact artifact behind the paper's Section 3.4 finding that
//     roadside cell infrastructure evades WHP-based risk flags).
#pragma once

#include <cstdint>
#include <span>

#include "geo/projection.hpp"
#include "raster/raster.hpp"
#include "synth/scenario.hpp"
#include "synth/usatlas.hpp"

namespace fa::store {
struct Access;  // snapshot codec (store/codec.cpp)
}
namespace fa::delta {
struct Applier;  // patches hazard cells in a copied surface (delta/apply.cpp)
}

namespace fa::synth {

enum class WhpClass : std::uint8_t {
  kNonBurnable = 0,  // water, urban core, outside CONUS
  kVeryLow = 1,
  kLow = 2,
  kModerate = 3,
  kHigh = 4,
  kVeryHigh = 5,
};

inline constexpr int kNumWhpClasses = 6;

std::string_view whp_class_name(WhpClass c);

// True for the classes the paper treats as "at risk" (Section 3.3).
constexpr bool whp_at_risk(WhpClass c) {
  return c == WhpClass::kModerate || c == WhpClass::kHigh ||
         c == WhpClass::kVeryHigh;
}

class WhpModel {
 public:
  const raster::ClassRaster& grid() const { return grid_; }
  const raster::Raster<std::int16_t>& state_grid() const { return states_; }
  const raster::MaskRaster& urban_mask() const { return urban_; }
  const raster::MaskRaster& road_mask() const { return roads_; }
  const geo::AlbersConus& projection() const { return proj_; }

  WhpClass class_at(geo::LonLat p) const {
    return static_cast<WhpClass>(grid_.sample(proj_.forward(p), 0));
  }
  // Batch form: out[i] = class_at(pts[i]) — the same projection and
  // sample per element, hoisted out of per-point callbacks so consumers
  // can hand whole spans to the site-risk tally.
  void class_at_batch(std::span<const geo::LonLat> pts,
                      std::span<WhpClass> out) const {
    for (std::size_t i = 0; i < pts.size(); ++i) out[i] = class_at(pts[i]);
  }
  bool is_urban(geo::LonLat p) const {
    return urban_.sample(proj_.forward(p), 0) != 0;
  }
  bool is_road(geo::LonLat p) const {
    return roads_.sample(proj_.forward(p), 0) != 0;
  }
  // State index at a point as baked into the raster (-1 offshore).
  int state_at(geo::LonLat p) const {
    return states_.sample(proj_.forward(p), -1);
  }

 private:
  friend WhpModel generate_whp(const UsAtlas&, const ScenarioConfig&);
  friend struct fa::store::Access;  // snapshot restore sets the rasters
  friend struct fa::delta::Applier;  // cell patches on a private copy
  raster::ClassRaster grid_;
  raster::Raster<std::int16_t> states_;
  raster::MaskRaster urban_;
  raster::MaskRaster roads_;
  geo::AlbersConus proj_;
};

WhpModel generate_whp(const UsAtlas& atlas, const ScenarioConfig& config);

}  // namespace fa::synth

// Spatially-correlated random fields: bilinear value noise + fractal
// Brownian motion. Drives the synthetic Wildfire Hazard Potential surface
// so hazard classes form contiguous blobs like the USFS product rather
// than salt-and-pepper noise.
#pragma once

#include <cstdint>

namespace fa::synth {

class ValueNoise {
 public:
  explicit ValueNoise(std::uint64_t seed) : seed_(seed) {}

  // Smooth noise in [0, 1] at continuous coordinates (period-free lattice
  // with smoothstep interpolation).
  double sample(double x, double y) const;

  // `octaves` layers of sample() at doubling frequency / halving gain;
  // normalized back to [0, 1].
  double fbm(double x, double y, int octaves, double lacunarity = 2.0,
             double gain = 0.5) const;

 private:
  double lattice(std::int64_t ix, std::int64_t iy) const;
  std::uint64_t seed_;
};

}  // namespace fa::synth

// Scenario configuration: the single knob set that controls every
// synthetic generator. Same config + same seed => byte-identical world.
#pragma once

#include <cstdint>

namespace fa::synth {

struct ScenarioConfig {
  // Master seed. Default is the paper's OpenCelliD snapshot date.
  std::uint64_t seed = 20191022;

  // The real corpus has 5,364,949 transceivers; we generate that count
  // divided by `corpus_scale`. Counts in reproduced tables scale by
  // ~1/corpus_scale; shape metrics (orderings, percentages) do not.
  double corpus_scale = 16.0;

  // WHP raster cell edge in Albers metres. The USFS product is 270 m;
  // the default trades 10x resolution for a ~100x smaller grid. Tests
  // use coarser cells still.
  double whp_cell_m = 2700.0;

  // Synthetic county seeds per state, in addition to the hard-coded
  // >1.5M-person counties.
  int counties_per_state = 24;

  // Snapshot recovery compares the config baked into a stored
  // generation against the one requested at boot.
  bool operator==(const ScenarioConfig&) const = default;

  // Number of transceivers in the full (unscaled) corpus.
  static constexpr std::size_t kFullCorpusSize = 5364949;

  // Continental scale-out preset: the full 5,364,949-transceiver corpus
  // with a WHP grid coarse enough that the hazard rasters stay a small
  // fraction of the image (the transceiver columns dominate, which is
  // what the sharded container is built to serve).
  static ScenarioConfig continental() {
    ScenarioConfig c;
    c.corpus_scale = 1.0;
    c.whp_cell_m = 5400.0;
    return c;
  }

  std::size_t corpus_size() const {
    return static_cast<std::size_t>(
        static_cast<double>(kFullCorpusSize) / corpus_scale);
  }
};

}  // namespace fa::synth

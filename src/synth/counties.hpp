// Synthetic county layer: the paper's population-impact analysis
// (Figures 10-12) buckets transceivers by the population of their county.
// We keep the real >1.5M-person counties (hard-coded in UsAtlas) and fill
// each state with synthetic counties whose populations follow a power law,
// anchored partly near cities (suburban counties) and partly in open land.
// County assignment is nearest-anchor within the containing state — a
// discrete Voronoi partition, which is all the bucketing needs.
#pragma once

#include <string>
#include <vector>

#include "geo/lonlat.hpp"
#include "synth/scenario.hpp"
#include "synth/usatlas.hpp"

namespace fa::store {
struct Access;  // snapshot codec (store/codec.cpp)
}

namespace fa::synth {

struct County {
  std::string name;
  int state = -1;          // index into UsAtlas::states()
  geo::LonLat anchor;
  double population = 0.0;
  bool is_major = false;   // one of the hard-coded >1.5M counties
};

// Population-density categories from paper Section 3.6.
enum class PopCategory : std::uint8_t {
  kRural = 0,     // < 200k
  kModerate = 1,  // 200k .. 500k   (paper "Pop M")
  kDense = 2,     // 500k .. 1.5M   (paper "Pop H")
  kVeryDense = 3, // > 1.5M         (paper "Pop VH")
};

PopCategory pop_category(double county_population);
std::string_view pop_category_name(PopCategory c);

class CountyMap {
 public:
  // An empty map (no counties); populate via build().
  CountyMap() = default;

  static CountyMap build(const UsAtlas& atlas, const ScenarioConfig& config);

  const std::vector<County>& counties() const { return counties_; }
  // Index of the county containing `p`, or -1 when `p` is outside every
  // state.
  int county_of(geo::LonLat p) const;
  const County& county(int idx) const {
    return counties_[static_cast<std::size_t>(idx)];
  }

  // Counties of one state.
  const std::vector<int>& counties_in_state(int state_idx) const {
    return by_state_[static_cast<std::size_t>(state_idx)];
  }

 private:
  friend struct fa::store::Access;  // snapshot restore rebuilds by_state_

  const UsAtlas* atlas_ = nullptr;
  std::vector<County> counties_;
  std::vector<std::vector<int>> by_state_;
};

}  // namespace fa::synth

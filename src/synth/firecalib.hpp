// Historical fire-season calibration targets, straight from the paper's
// Table 1 (fires and acres burned per year; NIFC statistics). The fire
// simulator consumes fires/acres as generation targets; the paper's
// transceiver counts are carried along for EXPERIMENTS.md comparison only
// and are never fed back into the generator.
#pragma once

#include <span>

namespace fa::synth {

struct FireYearStats {
  int year;
  int fires;                 // ignitions nationwide
  double acres_millions;     // total burned area
  int paper_transceivers;    // Table 1: transceivers inside perimeters
  int paper_txr_per_macre;   // Table 1: transceivers per million acres
};

// 2000..2018 in ascending year order.
std::span<const FireYearStats> historical_fire_years();

// 2019: the validation season of Section 3.4 (acreage from NIFC; the
// paper reports 656 transceivers inside 2019 perimeters).
FireYearStats fire_year_2019();

}  // namespace fa::synth

#include "synth/counties.hpp"

#include <algorithm>
#include <cmath>

#include "fault/injector.hpp"
#include "obs/obs.hpp"
#include "synth/rng.hpp"

namespace fa::synth {

PopCategory pop_category(double county_population) {
  if (county_population > 1.5e6) return PopCategory::kVeryDense;
  if (county_population > 0.5e6) return PopCategory::kDense;
  if (county_population > 0.2e6) return PopCategory::kModerate;
  return PopCategory::kRural;
}

std::string_view pop_category_name(PopCategory c) {
  switch (c) {
    case PopCategory::kRural: return "Rural";
    case PopCategory::kModerate: return "Pop M";
    case PopCategory::kDense: return "Pop H";
    case PopCategory::kVeryDense: return "Pop VH";
  }
  return "?";
}

CountyMap CountyMap::build(const UsAtlas& atlas,
                           const ScenarioConfig& config) {
  fault::Injector::global().fail_point("synth.counties", config.seed);
  const obs::Span span("synth.counties");
  CountyMap map;
  map.atlas_ = &atlas;
  map.by_state_.resize(static_cast<std::size_t>(atlas.num_states()));
  Rng rng(config.seed ^ 0xC0117117ULL);

  // 1. Hard-coded major counties keep their real populations.
  std::vector<double> major_pop_in_state(
      static_cast<std::size_t>(atlas.num_states()), 0.0);
  for (const MajorCountyInfo& mc : atlas.major_counties()) {
    const int state = atlas.state_index(mc.state_abbr);
    if (state < 0) continue;
    County county;
    county.name = std::string{mc.name};
    county.state = state;
    county.anchor = mc.anchor;
    county.population = mc.population;
    county.is_major = true;
    map.by_state_[static_cast<std::size_t>(state)].push_back(
        static_cast<int>(map.counties_.size()));
    map.counties_.push_back(std::move(county));
    major_pop_in_state[static_cast<std::size_t>(state)] += mc.population;
  }

  // 2. Synthetic counties fill out each state. Anchors: 55% suburban
  // (near a city of the state), 45% open land (uniform in the state
  // bbox, rejected into the boundary).
  for (int s = 0; s < atlas.num_states(); ++s) {
    const StateInfo& info = atlas.states()[static_cast<std::size_t>(s)];
    const geo::Polygon& boundary = atlas.state_boundary(s);
    const geo::BBox box = boundary.bbox();

    std::vector<const CityInfo*> state_cities;
    for (const CityInfo& c : atlas.cities()) {
      if (atlas.state_index(c.state_abbr) == s) state_cities.push_back(&c);
    }

    const int n = std::max(4, config.counties_per_state);
    std::vector<double> weights(static_cast<std::size_t>(n));
    double weight_sum = 0.0;
    for (double& w : weights) {
      // Power-law county sizes (alpha ~ 1.1 gives a realistic skew).
      w = rng.pareto(1.0, 120.0, 1.1);
      weight_sum += w;
    }
    const double remaining = std::max(
        0.0, info.population - major_pop_in_state[static_cast<std::size_t>(s)]);

    for (int k = 0; k < n; ++k) {
      County county;
      county.state = s;
      county.name = std::string{info.abbr} + " County " + std::to_string(k + 1);
      county.population =
          remaining * weights[static_cast<std::size_t>(k)] / weight_sum;
      // Anchor placement.
      geo::LonLat anchor;
      bool placed = false;
      if (!state_cities.empty() && rng.chance(0.55)) {
        const CityInfo& city =
            *state_cities[rng.below(state_cities.size())];
        for (int attempt = 0; attempt < 32 && !placed; ++attempt) {
          anchor = {city.position.lon + rng.normal(0.0, 0.6),
                    city.position.lat + rng.normal(0.0, 0.5)};
          placed = boundary.contains(anchor.as_vec());
        }
      }
      for (int attempt = 0; attempt < 64 && !placed; ++attempt) {
        anchor = {rng.uniform(box.min_x, box.max_x),
                  rng.uniform(box.min_y, box.max_y)};
        placed = boundary.contains(anchor.as_vec());
      }
      if (!placed) anchor = geo::LonLat::from_vec(boundary.outer().centroid());
      county.anchor = anchor;
      map.by_state_[static_cast<std::size_t>(s)].push_back(
          static_cast<int>(map.counties_.size()));
      map.counties_.push_back(std::move(county));
    }
  }
  return map;
}

int CountyMap::county_of(geo::LonLat p) const {
  const int state = atlas_->state_of(p);
  if (state < 0) return -1;
  const std::vector<int>& candidates =
      by_state_[static_cast<std::size_t>(state)];
  int best = -1;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (const int idx : candidates) {
    const County& c = counties_[static_cast<std::size_t>(idx)];
    // Longitude compressed by cos(lat) so "nearest" is roughly metric.
    const double dx =
        (p.lon - c.anchor.lon) * std::cos(p.lat * geo::kDegToRad);
    const double dy = p.lat - c.anchor.lat;
    const double d2 = dx * dx + dy * dy;
    if (d2 < best_d2) {
      best_d2 = d2;
      best = idx;
    }
  }
  return best;
}

}  // namespace fa::synth

#include "synth/usatlas.hpp"

#include <algorithm>
#include <cmath>

#include "geo/algorithms.hpp"
#include "geo/geodesy.hpp"

namespace fa::synth {

namespace {

// --- States --------------------------------------------------------------
// Populations: 2018 Census estimates. Fire propensity: [0,1] prior derived
// from the USFS WHP geography (Figure 6 of the paper): high across the
// west and the southeastern coastal plain, low in the agricultural midwest
// and urban northeast.
constexpr StateInfo kStates[] = {
    {"Alabama", "AL", 4.89e6, 0.40},
    {"Arizona", "AZ", 7.17e6, 0.80},
    {"Arkansas", "AR", 3.01e6, 0.35},
    {"California", "CA", 39.56e6, 0.95},
    {"Colorado", "CO", 5.70e6, 0.70},
    {"Connecticut", "CT", 3.57e6, 0.12},
    {"Delaware", "DE", 0.97e6, 0.20},
    {"District of Columbia", "DC", 0.70e6, 0.02},
    {"Florida", "FL", 21.30e6, 0.80},
    {"Georgia", "GA", 10.52e6, 0.55},
    {"Idaho", "ID", 1.75e6, 0.90},
    {"Illinois", "IL", 12.74e6, 0.12},
    {"Indiana", "IN", 6.69e6, 0.12},
    {"Iowa", "IA", 3.16e6, 0.15},
    {"Kansas", "KS", 2.91e6, 0.25},
    {"Kentucky", "KY", 4.47e6, 0.25},
    {"Louisiana", "LA", 4.66e6, 0.35},
    {"Maine", "ME", 1.34e6, 0.25},
    {"Maryland", "MD", 6.04e6, 0.15},
    {"Massachusetts", "MA", 6.90e6, 0.15},
    {"Michigan", "MI", 9.99e6, 0.20},
    {"Minnesota", "MN", 5.61e6, 0.30},
    {"Mississippi", "MS", 2.99e6, 0.40},
    {"Missouri", "MO", 6.13e6, 0.25},
    {"Montana", "MT", 1.06e6, 0.85},
    {"Nebraska", "NE", 1.93e6, 0.25},
    {"Nevada", "NV", 3.03e6, 0.70},
    {"New Hampshire", "NH", 1.36e6, 0.18},
    {"New Jersey", "NJ", 8.91e6, 0.25},
    {"New Mexico", "NM", 2.10e6, 0.75},
    {"New York", "NY", 19.54e6, 0.15},
    {"North Carolina", "NC", 10.38e6, 0.50},
    {"North Dakota", "ND", 0.76e6, 0.30},
    {"Ohio", "OH", 11.69e6, 0.12},
    {"Oklahoma", "OK", 3.94e6, 0.40},
    {"Oregon", "OR", 4.19e6, 0.75},
    {"Pennsylvania", "PA", 12.81e6, 0.18},
    {"Rhode Island", "RI", 1.06e6, 0.12},
    {"South Carolina", "SC", 5.08e6, 0.60},
    {"South Dakota", "SD", 0.88e6, 0.40},
    {"Tennessee", "TN", 6.77e6, 0.30},
    {"Texas", "TX", 28.70e6, 0.45},
    {"Utah", "UT", 3.16e6, 0.80},
    {"Vermont", "VT", 0.63e6, 0.15},
    {"Virginia", "VA", 8.52e6, 0.30},
    {"Washington", "WA", 7.54e6, 0.60},
    {"West Virginia", "WV", 1.81e6, 0.30},
    {"Wisconsin", "WI", 5.81e6, 0.20},
    {"Wyoming", "WY", 0.58e6, 0.65},
};

using P = geo::Vec2;  // (lon, lat) vertex shorthand for the tables below

// Coarse boundary outlines, one per kStates entry (same order). Vertices
// hand-digitized at ~0.1-0.5 degree fidelity; straight-line state borders
// (41N, 37N, -109.05W, ...) are exact.
const std::vector<P> kBoundaries[] = {
    // Alabama
    {{-88.4, 30.2}, {-87.5, 30.3}, {-85.0, 31.0}, {-85.6, 35.0},
     {-88.2, 35.0}, {-88.1, 30.5}},
    // Arizona
    {{-114.8, 32.5}, {-111.1, 31.33}, {-109.05, 31.33}, {-109.05, 37.0},
     {-114.05, 37.0}, {-114.05, 36.1}, {-114.6, 35.1}, {-114.5, 34.3},
     {-114.7, 33.4}},
    // Arkansas
    {{-94.6, 33.0}, {-91.2, 33.0}, {-91.1, 34.9}, {-90.3, 35.0},
     {-90.1, 36.5}, {-94.62, 36.5}},
    // California
    {{-124.3, 42.0}, {-120.0, 42.0}, {-120.0, 39.0}, {-114.6, 35.0},
     {-114.7, 34.3}, {-114.5, 32.7}, {-117.1, 32.5}, {-118.4, 33.7},
     {-120.6, 34.55}, {-121.9, 36.3}, {-122.4, 37.2}, {-123.7, 38.9},
     {-124.4, 40.4}},
    // Colorado
    {{-109.05, 37.0}, {-102.05, 37.0}, {-102.05, 41.0}, {-109.05, 41.0}},
    // Connecticut
    {{-73.7, 41.0}, {-71.8, 41.3}, {-71.8, 42.05}, {-73.5, 42.05}},
    // Delaware
    {{-75.8, 38.45}, {-75.05, 38.45}, {-75.4, 39.8}, {-75.8, 39.7}},
    // District of Columbia
    {{-77.12, 38.80}, {-76.90, 38.80}, {-76.90, 39.00}, {-77.12, 39.00}},
    // Florida
    {{-87.6, 30.25}, {-85.5, 29.7}, {-84.0, 30.0}, {-82.7, 29.0},
     {-82.8, 27.8}, {-81.9, 26.4}, {-81.2, 25.1}, {-80.1, 25.2},
     {-80.0, 26.8}, {-80.5, 28.5}, {-81.3, 29.7}, {-81.5, 30.7},
     {-82.2, 30.55}, {-84.9, 30.7}, {-85.0, 31.0}, {-87.6, 31.0}},
    // Georgia
    {{-85.6, 35.0}, {-85.0, 31.0}, {-84.9, 30.7}, {-82.2, 30.55},
     {-81.1, 31.5}, {-81.0, 32.0}, {-81.4, 32.6}, {-83.35, 34.7},
     {-83.1, 35.0}},
    // Idaho
    {{-117.25, 42.0}, {-111.05, 42.0}, {-111.05, 44.5}, {-112.9, 45.2},
     {-113.9, 45.7}, {-116.0, 46.3}, {-116.05, 49.0}, {-117.05, 49.0},
     {-117.05, 46.4}, {-116.9, 45.9}, {-117.25, 44.3}},
    // Illinois
    {{-91.5, 40.2}, {-91.0, 39.4}, {-90.1, 38.6}, {-89.5, 37.1}, {-88.0, 37.2},
     {-87.5, 39.0}, {-87.5, 41.7}, {-87.0, 42.5}, {-90.6, 42.5},
     {-91.1, 41.4}},
    // Indiana
    {{-88.0, 37.8}, {-86.3, 38.0}, {-84.8, 38.8}, {-84.8, 41.7},
     {-87.5, 41.7}, {-87.5, 39.0}},
    // Iowa
    {{-96.6, 42.5}, {-96.1, 41.8}, {-95.85, 41.1}, {-95.8, 40.6},
     {-91.7, 40.6}, {-90.1, 41.4}, {-91.1, 42.5}, {-91.2, 43.5},
     {-96.45, 43.5}},
    // Kansas
    {{-102.05, 37.0}, {-94.62, 37.0}, {-94.62, 40.0}, {-102.05, 40.0}},
    // Kentucky
    {{-89.5, 36.5}, {-88.0, 36.5}, {-86.0, 36.6}, {-83.7, 36.6},
     {-82.0, 37.5}, {-82.6, 38.4}, {-83.7, 38.6}, {-85.0, 38.8},
     {-86.3, 38.0}, {-88.0, 37.8}, {-89.4, 37.1}},
    // Louisiana
    {{-94.05, 29.7}, {-89.0, 29.0}, {-89.2, 30.5}, {-90.0, 30.6},
     {-91.6, 31.0}, {-91.5, 33.0}, {-94.05, 33.0}},
    // Maine
    {{-71.1, 45.3}, {-70.7, 43.1}, {-70.0, 43.7}, {-68.0, 44.4},
     {-67.0, 44.8}, {-67.8, 45.7}, {-69.2, 47.45}, {-70.3, 46.6},
     {-71.0, 46.0}},
    // Maryland
    {{-79.5, 39.2}, {-79.5, 39.72}, {-75.8, 39.72}, {-75.05, 38.45},
     {-75.2, 38.0}, {-76.0, 37.9}, {-76.3, 38.7}, {-77.2, 38.6},
     {-77.5, 39.2}},
    // Massachusetts
    {{-73.5, 42.05}, {-71.8, 42.05}, {-71.8, 42.0}, {-71.1, 42.0},
     {-71.1, 41.7}, {-70.6, 41.6}, {-70.0, 41.5}, {-69.9, 42.0},
     {-70.5, 42.7}, {-72.5, 42.73}, {-73.3, 42.75}},
    // Michigan (lower peninsula; the sparsely-built UP is omitted)
    {{-87.0, 41.7}, {-84.8, 41.7}, {-82.4, 42.9}, {-82.5, 43.9},
     {-83.5, 43.6}, {-83.9, 43.8}, {-82.8, 44.6}, {-83.3, 45.1},
     {-84.7, 45.8}, {-85.6, 45.2}, {-86.2, 44.7}, {-86.5, 43.7},
     {-86.2, 42.5}, {-86.6, 41.9}},
    // Minnesota
    {{-96.45, 43.5}, {-91.2, 43.5}, {-91.6, 44.8}, {-92.8, 45.6},
     {-92.3, 46.7}, {-90.0, 46.6}, {-89.97, 47.8}, {-95.2, 49.0},
     {-97.2, 49.0}, {-96.75, 46.9}, {-96.6, 45.4}, {-96.45, 45.3}},
    // Mississippi
    {{-91.5, 33.0}, {-91.6, 31.0}, {-90.0, 30.6}, {-89.8, 30.2},
     {-88.4, 30.2}, {-88.1, 30.5}, {-88.2, 35.0}, {-90.3, 35.0},
     {-91.1, 34.9}, {-91.2, 33.0}},
    // Missouri
    {{-95.77, 40.6}, {-94.62, 40.0}, {-94.62, 36.5}, {-89.5, 36.5},
     {-89.4, 37.1}, {-90.1, 38.6}, {-91.0, 39.4}, {-91.4, 40.2},
     {-91.7, 40.6}},
    // Montana
    {{-116.05, 49.0}, {-116.05, 48.0}, {-114.4, 46.7}, {-114.4, 45.6},
     {-113.9, 45.7}, {-112.9, 45.2}, {-111.05, 44.5}, {-111.05, 45.0},
     {-104.05, 45.0}, {-104.05, 49.0}},
    // Nebraska
    {{-104.05, 40.0}, {-95.3, 40.0}, {-95.8, 40.6}, {-95.85, 41.1},
     {-96.1, 41.8}, {-96.6, 42.5}, {-98.0, 42.8}, {-104.05, 43.0}},
    // Nevada
    {{-120.0, 42.0}, {-114.05, 42.0}, {-114.05, 37.0}, {-114.6, 35.0},
     {-120.0, 39.0}},
    // New Hampshire
    {{-72.55, 42.7}, {-70.7, 42.9}, {-70.7, 43.1}, {-71.1, 45.3},
     {-72.3, 45.0}},
    // New Jersey
    {{-75.4, 39.6}, {-75.05, 38.9}, {-74.0, 39.7}, {-73.9, 40.5},
     {-74.7, 41.35}, {-75.1, 40.4}, {-74.95, 40.05}},
    // New Mexico
    {{-109.05, 31.33}, {-108.2, 31.33}, {-108.2, 31.8}, {-106.5, 31.8},
     {-106.6, 32.0}, {-103.0, 32.0}, {-103.0, 37.0}, {-109.05, 37.0}},
    // New York
    {{-79.76, 42.0}, {-75.35, 42.0}, {-74.7, 41.35}, {-73.9, 40.5},
     {-72.0, 40.8}, {-72.0, 41.15}, {-73.6, 41.1}, {-73.5, 41.2},
     {-73.5, 42.05}, {-73.35, 42.05}, {-73.35, 45.0}, {-74.7, 45.0},
     {-76.2, 44.2}, {-76.8, 43.6}, {-79.0, 43.3}, {-78.9, 42.8}},
    // North Carolina
    {{-84.3, 35.0}, {-83.1, 35.0}, {-80.9, 35.1}, {-80.8, 34.8},
     {-79.7, 34.8}, {-78.5, 33.9}, {-77.9, 34.0}, {-75.5, 35.2},
     {-75.8, 36.55}, {-81.7, 36.55}},
    // North Dakota
    {{-104.05, 45.95}, {-96.55, 45.95}, {-96.75, 46.9}, {-97.2, 49.0},
     {-104.05, 49.0}},
    // Ohio
    {{-84.8, 39.1}, {-83.0, 38.7}, {-82.2, 38.6}, {-80.6, 40.6},
     {-80.52, 41.98}, {-83.45, 41.73}, {-84.8, 41.7}},
    // Oklahoma
    {{-103.0, 36.5}, {-103.0, 37.0}, {-94.62, 37.0}, {-94.62, 33.9},
     {-97.15, 33.74}, {-99.2, 34.2}, {-100.0, 34.56}, {-100.0, 36.5}},
    // Oregon
    {{-124.5, 42.0}, {-117.0, 42.0}, {-116.9, 45.95}, {-119.0, 45.95},
     {-123.2, 46.15}, {-124.7, 46.3}},
    // Pennsylvania
    {{-80.52, 39.72}, {-75.4, 39.8}, {-74.95, 40.05}, {-75.1, 40.4},
     {-74.7, 41.35}, {-75.35, 42.0}, {-79.76, 42.0}, {-79.76, 42.27},
     {-80.52, 42.33}},
    // Rhode Island
    {{-71.8, 41.3}, {-71.1, 41.4}, {-71.1, 42.0}, {-71.8, 42.0}},
    // South Carolina
    {{-83.35, 34.7}, {-81.4, 32.6}, {-81.0, 32.0}, {-80.8, 32.5},
     {-79.2, 33.2}, {-78.5, 33.9}, {-79.7, 34.8}, {-80.8, 34.8},
     {-80.9, 35.1}, {-83.1, 35.0}},
    // South Dakota
    {{-104.05, 43.0}, {-98.0, 42.8}, {-96.6, 42.5}, {-96.45, 43.5},
     {-96.45, 45.3}, {-96.55, 45.95}, {-104.05, 45.95}},
    // Tennessee
    {{-90.1, 35.0}, {-88.2, 35.0}, {-85.6, 35.0}, {-84.3, 35.0},
     {-81.7, 36.6}, {-83.7, 36.6}, {-86.0, 36.6}, {-88.0, 36.5},
     {-89.5, 36.5}, {-89.7, 36.0}},
    // Texas
    {{-106.6, 32.0}, {-103.0, 32.0}, {-103.0, 36.5}, {-100.0, 36.5},
     {-100.0, 34.56}, {-99.2, 34.2}, {-97.15, 33.74}, {-94.43, 33.64},
     {-94.05, 33.0}, {-94.05, 29.7}, {-93.8, 29.7}, {-95.4, 29.0},
     {-96.9, 28.0}, {-97.15, 25.95}, {-99.2, 26.9}, {-100.0, 28.0},
     {-101.4, 29.8}, {-103.1, 29.0}, {-104.0, 30.6}, {-106.5, 31.8}},
    // Utah
    {{-114.05, 37.0}, {-109.05, 37.0}, {-109.05, 41.0}, {-111.05, 41.0},
     {-111.05, 42.0}, {-114.05, 42.0}},
    // Vermont
    {{-73.35, 42.75}, {-72.5, 42.73}, {-72.3, 45.0}, {-73.35, 45.0}},
    // Virginia
    {{-83.7, 36.6}, {-81.7, 36.6}, {-75.8, 36.55}, {-76.0, 37.2},
     {-76.3, 38.0}, {-77.2, 38.6}, {-77.5, 39.2}, {-78.3, 39.4},
     {-79.5, 39.2}, {-80.3, 37.5}, {-81.9, 37.5}, {-83.0, 36.85}},
    // Washington
    {{-124.7, 46.3}, {-123.2, 46.15}, {-119.0, 45.95}, {-116.9, 45.95},
     {-117.05, 49.0}, {-124.7, 49.0}},
    // West Virginia
    {{-82.6, 38.4}, {-82.2, 38.6}, {-80.6, 40.6}, {-80.52, 39.72},
     {-79.5, 39.2}, {-78.3, 39.4}, {-80.3, 37.5}, {-81.9, 37.5}},
    // Wisconsin
    {{-92.8, 45.6}, {-91.6, 44.8}, {-91.2, 43.5}, {-91.1, 42.5},
     {-87.0, 42.5}, {-87.1, 43.4}, {-87.4, 44.7}, {-88.0, 44.6},
     {-87.8, 45.3}, {-89.0, 45.8}, {-90.1, 46.3}, {-92.3, 46.7}},
    // Wyoming
    {{-111.05, 41.0}, {-104.05, 41.0}, {-104.05, 45.0}, {-111.05, 45.0}},
};

static_assert(std::size(kStates) == std::size(kBoundaries));

// --- Cities ---------------------------------------------------------------
constexpr CityInfo kCities[] = {
    {"New York", "NY", {-74.006, 40.713}, 20.0e6},
    {"Los Angeles", "CA", {-118.244, 34.052}, 13.3e6},
    {"Chicago", "IL", {-87.630, 41.878}, 9.5e6},
    {"Dallas", "TX", {-96.797, 32.777}, 7.5e6},
    {"Houston", "TX", {-95.369, 29.760}, 7.0e6},
    {"Washington", "DC", {-77.037, 38.907}, 6.2e6},
    {"Miami", "FL", {-80.192, 25.762}, 6.1e6},
    {"Philadelphia", "PA", {-75.165, 39.953}, 6.1e6},
    {"Atlanta", "GA", {-84.388, 33.749}, 5.9e6},
    {"Phoenix", "AZ", {-112.074, 33.448}, 4.9e6},
    {"Boston", "MA", {-71.059, 42.360}, 4.8e6},
    {"San Francisco", "CA", {-122.419, 37.775}, 4.7e6},
    {"Riverside", "CA", {-117.396, 33.953}, 4.6e6},
    {"Detroit", "MI", {-83.046, 42.331}, 4.3e6},
    {"Seattle", "WA", {-122.330, 47.606}, 3.9e6},
    {"Minneapolis", "MN", {-93.265, 44.978}, 3.6e6},
    {"San Diego", "CA", {-117.161, 32.716}, 3.3e6},
    {"Tampa", "FL", {-82.457, 27.951}, 3.1e6},
    {"Denver", "CO", {-104.990, 39.739}, 2.9e6},
    {"St. Louis", "MO", {-90.199, 38.627}, 2.8e6},
    {"Baltimore", "MD", {-76.612, 39.290}, 2.8e6},
    {"Charlotte", "NC", {-80.843, 35.227}, 2.6e6},
    {"Orlando", "FL", {-81.379, 28.538}, 2.5e6},
    {"San Antonio", "TX", {-98.494, 29.425}, 2.5e6},
    {"Portland", "OR", {-122.676, 45.523}, 2.5e6},
    {"Sacramento", "CA", {-121.494, 38.582}, 2.3e6},
    {"Pittsburgh", "PA", {-79.995, 40.441}, 2.3e6},
    {"Las Vegas", "NV", {-115.140, 36.170}, 2.2e6},
    {"Austin", "TX", {-97.743, 30.267}, 2.2e6},
    {"Cincinnati", "OH", {-84.512, 39.104}, 2.2e6},
    {"Kansas City", "MO", {-94.579, 39.100}, 2.1e6},
    {"Columbus", "OH", {-82.999, 39.961}, 2.1e6},
    {"Indianapolis", "IN", {-86.158, 39.768}, 2.0e6},
    {"Cleveland", "OH", {-81.694, 41.500}, 2.0e6},
    {"San Jose", "CA", {-121.886, 37.338}, 2.0e6},
    {"Nashville", "TN", {-86.781, 36.163}, 1.9e6},
    {"Virginia Beach", "VA", {-75.978, 36.853}, 1.7e6},
    {"Providence", "RI", {-71.413, 41.824}, 1.6e6},
    {"Milwaukee", "WI", {-87.906, 43.039}, 1.6e6},
    {"Jacksonville", "FL", {-81.656, 30.332}, 1.5e6},
    {"Oklahoma City", "OK", {-97.516, 35.468}, 1.4e6},
    {"Raleigh", "NC", {-78.638, 35.772}, 1.4e6},
    {"Memphis", "TN", {-90.049, 35.150}, 1.3e6},
    {"Richmond", "VA", {-77.460, 37.541}, 1.3e6},
    {"New Orleans", "LA", {-90.072, 29.951}, 1.3e6},
    {"Louisville", "KY", {-85.758, 38.253}, 1.3e6},
    {"Salt Lake City", "UT", {-111.891, 40.761}, 1.2e6},
    {"Hartford", "CT", {-72.685, 41.764}, 1.2e6},
    {"Buffalo", "NY", {-78.878, 42.886}, 1.1e6},
    {"Birmingham", "AL", {-86.802, 33.521}, 1.1e6},
    {"Tucson", "AZ", {-110.975, 32.222}, 1.0e6},
    {"Fresno", "CA", {-119.785, 36.739}, 1.0e6},
    {"Omaha", "NE", {-95.934, 41.257}, 0.94e6},
    {"Albuquerque", "NM", {-106.650, 35.084}, 0.92e6},
    {"Greenville", "SC", {-82.394, 34.852}, 0.90e6},
    {"Knoxville", "TN", {-83.921, 35.961}, 0.87e6},
    {"El Paso", "TX", {-106.486, 31.759}, 0.84e6},
    {"Columbia", "SC", {-81.035, 34.001}, 0.83e6},
    {"Charleston", "SC", {-79.932, 32.776}, 0.80e6},
    {"Boise", "ID", {-116.202, 43.615}, 0.75e6},
    {"Colorado Springs", "CO", {-104.821, 38.834}, 0.74e6},
    {"Little Rock", "AR", {-92.289, 34.746}, 0.74e6},
    {"Des Moines", "IA", {-93.609, 41.587}, 0.70e6},
    {"Wichita", "KS", {-97.336, 37.686}, 0.64e6},
    {"Jackson", "MS", {-90.185, 32.299}, 0.60e6},
    {"Spokane", "WA", {-117.426, 47.659}, 0.57e6},
    {"Chattanooga", "TN", {-85.310, 35.046}, 0.56e6},
    {"Portland", "ME", {-70.257, 43.661}, 0.54e6},
    {"Reno", "NV", {-119.814, 39.530}, 0.47e6},
    {"Manchester", "NH", {-71.463, 42.991}, 0.42e6},
    {"Savannah", "GA", {-81.100, 32.081}, 0.39e6},
    {"Shreveport", "LA", {-93.750, 32.525}, 0.39e6},
    {"Fargo", "ND", {-96.790, 46.877}, 0.25e6},
    {"Sioux Falls", "SD", {-96.731, 43.550}, 0.27e6},
    {"Burlington", "VT", {-73.212, 44.476}, 0.22e6},
    {"Billings", "MT", {-108.501, 45.783}, 0.18e6},
    {"Charleston", "WV", {-81.633, 38.350}, 0.21e6},
    {"Wilmington", "DE", {-75.547, 39.746}, 0.72e6},
    {"Cheyenne", "WY", {-104.820, 41.140}, 0.10e6},
};

// --- Counties over 1.5M people (paper Figure 10's Pop VH category) --------
constexpr MajorCountyInfo kMajorCounties[] = {
    {"Los Angeles County", "CA", {-118.244, 34.052}, 10.04e6},
    {"Cook County", "IL", {-87.630, 41.878}, 5.15e6},
    {"Harris County", "TX", {-95.369, 29.760}, 4.70e6},
    {"Maricopa County", "AZ", {-112.074, 33.448}, 4.49e6},
    {"San Diego County", "CA", {-117.161, 32.716}, 3.34e6},
    {"Orange County", "CA", {-117.87, 33.71}, 3.19e6},
    {"Miami-Dade County", "FL", {-80.192, 25.762}, 2.72e6},
    {"Dallas County", "TX", {-96.797, 32.777}, 2.64e6},
    {"Kings County", "NY", {-73.95, 40.65}, 2.56e6},
    {"Riverside County", "CA", {-117.396, 33.953}, 2.47e6},
    {"Clark County", "NV", {-115.140, 36.170}, 2.27e6},
    {"King County", "WA", {-122.330, 47.606}, 2.25e6},
    {"Queens County", "NY", {-73.80, 40.72}, 2.25e6},
    {"San Bernardino County", "CA", {-117.29, 34.11}, 2.18e6},
    {"Tarrant County", "TX", {-97.32, 32.76}, 2.10e6},
    {"Bexar County", "TX", {-98.494, 29.425}, 2.00e6},
    {"Broward County", "FL", {-80.14, 26.12}, 1.95e6},
    {"Santa Clara County", "CA", {-121.886, 37.338}, 1.93e6},
    {"Wayne County", "MI", {-83.046, 42.331}, 1.75e6},
    {"Alameda County", "CA", {-122.27, 37.80}, 1.67e6},
    {"New York County", "NY", {-73.97, 40.78}, 1.63e6},
    {"Middlesex County", "MA", {-71.25, 42.46}, 1.61e6},
    {"Philadelphia County", "PA", {-75.165, 39.953}, 1.58e6},
    {"Sacramento County", "CA", {-121.494, 38.582}, 1.55e6},
};

}  // namespace

UsAtlas::UsAtlas() : states_(kStates), cities_(kCities),
                     major_counties_(kMajorCounties) {
  boundaries_.reserve(std::size(kBoundaries));
  for (const auto& outline : kBoundaries) {
    boundaries_.emplace_back(geo::Ring{outline});
    conus_bbox_.expand(boundaries_.back().bbox());
  }
  centroids_.reserve(boundaries_.size());
  for (const geo::Polygon& b : boundaries_) {
    centroids_.push_back(b.outer().centroid());
  }
  for (const StateInfo& s : states_) total_population_ += s.population;

  // Ecoregions for the SLC-Denver corridor (Figures 14-15): bands running
  // west->east with the Littell et al. projected change in burned area.
  const auto band = [](double lon0, double lon1, double lat0, double lat1) {
    return geo::Polygon{geo::make_rect(lon0, lat0, lon1, lat1)};
  };
  ecoregions_ = {
      {"Great Basin (W of SLC)", +43.0, band(-114.0, -112.2, 39.0, 42.0)},
      {"Wasatch / Uinta Mtns", +240.0, band(-112.2, -109.8, 39.2, 41.8)},
      {"Colorado Plateau", +132.0, band(-109.8, -107.6, 38.8, 41.5)},
      {"Wyoming Basin (Hwy 80)", +240.0, band(-109.8, -106.0, 41.0, 42.5)},
      {"Southern Rockies", +132.0, band(-107.6, -105.2, 38.5, 41.2)},
      {"Front Range foothills", +43.0, band(-105.6, -104.6, 38.6, 40.9)},
      {"High Plains (E of Denver)", -119.0, band(-104.6, -102.0, 38.5, 41.0)},
  };

  // Western-US bands for the future-exposure extension. Deltas follow the
  // Littell et al. pattern: largest increases in the interior mountain
  // west and the Great Basin margins, moderate on the Pacific slope,
  // decreases on the wetter plains fringe.
  western_ecoregions_ = {
      {"Pacific Northwest maritime", +55.0, band(-125.0, -120.5, 42.0, 49.2)},
      {"Cascades / E Oregon", +130.0, band(-120.5, -116.5, 42.0, 49.2)},
      {"Northern Rockies", +180.0, band(-116.5, -109.0, 44.0, 49.2)},
      {"California coast + Sierra", +85.0, band(-125.0, -117.5, 32.3, 42.0)},
      {"Great Basin", +160.0, band(-117.5, -112.0, 36.0, 42.0)},
      {"Mojave / Sonoran", +40.0, band(-117.5, -109.0, 31.2, 36.0)},
      {"Colorado Plateau / S Rockies", +140.0, band(-112.0, -104.5, 36.0, 42.0)},
      {"Wyoming / Montana basins", +240.0, band(-112.0, -104.0, 42.0, 44.0)},
      {"Southern plains fringe", -60.0, band(-104.5, -98.0, 31.2, 41.0)},
      {"Northern plains fringe", -119.0, band(-104.0, -98.0, 41.0, 49.2)},
  };
}

const UsAtlas& UsAtlas::get() {
  static const UsAtlas atlas;
  return atlas;
}

int UsAtlas::state_of(geo::LonLat p) const {
  const geo::Vec2 v = p.as_vec();
  for (std::size_t i = 0; i < boundaries_.size(); ++i) {
    if (boundaries_[i].bbox().contains(v) && boundaries_[i].contains(v)) {
      return static_cast<int>(i);
    }
  }
  // Gap fallback: the coarse outlines leave slivers along real borders
  // and coastlines; assign those to the state with the nearest boundary
  // within ~0.25 degrees. Kept tight so the fallback heals interior
  // slivers without annexing open water or Canada/Mexico.
  int best = -1;
  double best_d = 0.25;
  for (std::size_t i = 0; i < boundaries_.size(); ++i) {
    if (!boundaries_[i].bbox().inflated(best_d).contains(v)) continue;
    const double d = geo::point_ring_distance(v, boundaries_[i].outer());
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

int UsAtlas::state_index(std::string_view abbr) const {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].abbr == abbr) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace fa::synth

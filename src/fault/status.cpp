#include "fault/status.hpp"

#include <array>

namespace fa::fault {

namespace {

constexpr std::array<std::string_view, 9> kCodeNames = {
    "ok",           "parse",  "truncated", "bad_magic", "schema",
    "out_of_range", "limit",  "io_failure", "injected"};

}  // namespace

std::string_view err_code_name(ErrCode code) {
  const auto i = static_cast<std::size_t>(code);
  return i < kCodeNames.size() ? kCodeNames[i] : "unknown";
}

std::optional<ErrCode> err_code_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kCodeNames.size(); ++i) {
    if (kCodeNames[i] == name) return static_cast<ErrCode>(i);
  }
  return std::nullopt;
}

std::string Status::to_string() const {
  std::string out;
  out.reserve(source.size() + message.size() + 32);
  out += source.empty() ? std::string{"<unknown>"} : source;
  out += ": ";
  out += message;
  out += " [";
  out += err_code_name(code);
  out += " @";
  out += std::to_string(offset);
  out += ']';
  return out;
}

IoError::IoError(Status status)
    : std::runtime_error(status.to_string()), status_(std::move(status)) {}

IoError::IoError(ErrCode code, std::string source, std::string message,
                 std::uint64_t offset)
    : IoError(Status::error(code, offset, std::move(source),
                            std::move(message))) {}

}  // namespace fa::fault

// fa::fault — the structured error model for the ingest/IO layer.
//
// The pipeline runs on inherently dirty inputs (crowd-sourced OpenCelliD
// records, hand-digitized perimeters, incomplete DIRS filings), so parse
// failures are data, not exceptions: every failure is a `Status` carrying
// a machine-readable code, the byte/record offset where the input went
// wrong, and a source tag (format name or file path). Parsers expose a
// non-throwing `try_*` API returning `Result<T>`; thin throwing wrappers
// convert the same `Status` into one exception type, `IoError`, so
// callers never have to catch a grab-bag of std exceptions.
//
// Dependency-free: this header pulls in nothing from the rest of the
// library so every layer (exec included) can use it.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace fa::fault {

enum class ErrCode : std::uint8_t {
  kOk = 0,
  kParse,       // syntax error in a text format
  kTruncated,   // input ended in the middle of a token/record
  kBadMagic,    // binary container signature mismatch
  kSchema,      // well-formed but the wrong shape (missing key, arity)
  kOutOfRange,  // parsed but outside the value's domain (lon=999, NaN)
  kLimit,       // resource guard tripped (nesting depth, allocation cap)
  kIoFailure,   // the underlying stream/file failed
  kInjected,    // deterministic fault injection fired at a seam
};

std::string_view err_code_name(ErrCode code);
// Inverse of err_code_name (fixture manifests); nullopt on unknown names.
std::optional<ErrCode> err_code_from_name(std::string_view name);

struct Status {
  ErrCode code = ErrCode::kOk;
  // Byte offset for byte-oriented sources (wkt/json/fagrid), 1-based
  // record index for record-oriented ones (CSV rows, corpus records).
  std::uint64_t offset = 0;
  std::string source;   // producer tag: "wkt", "json", a file path, a seam
  std::string message;  // human-readable detail

  bool ok() const { return code == ErrCode::kOk; }
  // "source: message [code @offset]" — offset and source always present
  // so an exception message alone pinpoints the failing byte/record.
  std::string to_string() const;

  static Status error(ErrCode code, std::uint64_t offset, std::string source,
                      std::string message) {
    Status s;
    s.code = code;
    s.offset = offset;
    s.source = std::move(source);
    s.message = std::move(message);
    return s;
  }
};

// The one exception type of the IO layer. Derives from std::runtime_error
// so legacy catch sites keep working; what() is status().to_string().
class IoError : public std::runtime_error {
 public:
  explicit IoError(Status status);
  IoError(ErrCode code, std::string source, std::string message,
          std::uint64_t offset = 0);
  const Status& status() const { return status_; }
  ErrCode code() const { return status_.code; }

 private:
  Status status_;
};

// Thrown by Injector::fail_point at an armed seam. A distinct type so
// tests can tell an injected failure from an organic one.
class InjectedFault : public IoError {
 public:
  using IoError::IoError;
};

// Value-or-Status. Accessing the value of an error Result throws the
// corresponding IoError, which is exactly what the thin throwing parser
// wrappers do: `return try_parse_x(text).take();`.
template <class T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  // Ok status when ok(); the failure otherwise.
  const Status& status() const { return status_; }

  const T& value() const& {
    require();
    return *value_;
  }
  T& value() & {
    require();
    return *value_;
  }
  T&& take() && {
    require();
    return std::move(*value_);
  }
  T value_or(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  void require() const {
    if (!ok()) throw IoError(status_);
  }

  std::optional<T> value_;
  Status status_;  // kOk when value_ holds
};

}  // namespace fa::fault

#include "fault/diagnostics.hpp"

#include "obs/obs.hpp"

namespace fa::fault {

std::string_view recovery_policy_name(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kStrict: return "strict";
    case RecoveryPolicy::kQuarantine: return "quarantine";
    case RecoveryPolicy::kBestEffort: return "best_effort";
  }
  return "unknown";
}

std::optional<RecoveryPolicy> recovery_policy_from_name(
    std::string_view name) {
  if (name == "strict") return RecoveryPolicy::kStrict;
  if (name == "quarantine") return RecoveryPolicy::kQuarantine;
  if (name == "best_effort" || name == "besteffort") {
    return RecoveryPolicy::kBestEffort;
  }
  return std::nullopt;
}

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

void Diagnostics::report(Severity severity, Status status) {
  obs::count("fault.reported");
  ++sources_[status.source].reported;
  ++severity_counts_[static_cast<std::size_t>(severity)];
  ++total_reported_;
  if (records_.size() < kMaxStoredRecords) {
    records_.push_back({severity, std::move(status)});
  }
}

void Diagnostics::dropped(Status why) {
  obs::count("fault.dropped");
  ++sources_[why.source].dropped;
  ++total_dropped_;
  report(Severity::kWarning, std::move(why));
}

void Diagnostics::repaired(Status what) {
  obs::count("fault.repaired");
  ++sources_[what.source].repaired;
  ++total_repaired_;
  report(Severity::kInfo, std::move(what));
}

std::size_t Diagnostics::dropped_in(std::string_view source) const {
  const auto it = sources_.find(source);
  return it == sources_.end() ? 0 : it->second.dropped;
}

std::size_t Diagnostics::repaired_in(std::string_view source) const {
  const auto it = sources_.find(source);
  return it == sources_.end() ? 0 : it->second.repaired;
}

void Diagnostics::clear() {
  sources_.clear();
  records_.clear();
  for (std::size_t& c : severity_counts_) c = 0;
  total_reported_ = 0;
  total_dropped_ = 0;
  total_repaired_ = 0;
}

std::string Diagnostics::summary() const {
  if (empty()) return "clean";
  std::string out = std::to_string(total_dropped_) + " dropped, " +
                    std::to_string(total_repaired_) + " repaired (";
  bool first = true;
  for (const auto& [source, counts] : sources_) {
    if (counts.dropped == 0 && counts.repaired == 0) continue;
    if (!first) out += "; ";
    first = false;
    out += source + ": ";
    if (counts.dropped > 0) {
      out += std::to_string(counts.dropped) + " dropped";
      if (counts.repaired > 0) out += ", ";
    }
    if (counts.repaired > 0) {
      out += std::to_string(counts.repaired) + " repaired";
    }
  }
  if (first) out += std::to_string(total_reported_) + " notes";
  out += ')';
  return out;
}

}  // namespace fa::fault

#include "fault/injector.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace fa::fault {

namespace {

// Local splitmix64 (fa::fault is dependency-free by design; this is the
// same mixer the synth layer uses).
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char ch : text) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001B3ULL;
  }
  return h;
}

// Tiny deterministic generator for multi-draw mutations.
class MutRng {
 public:
  explicit MutRng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() { return splitmix64(state_); }
  std::size_t below(std::size_t n) {
    return n == 0 ? 0 : static_cast<std::size_t>(next() % n);
  }

 private:
  std::uint64_t state_;
};

bool matches(std::string_view rule_site, std::string_view site) {
  if (!rule_site.empty() && rule_site.back() == '*') {
    return site.substr(0, rule_site.size() - 1) ==
           rule_site.substr(0, rule_site.size() - 1);
  }
  return rule_site == site;
}

// Out-of-range / garbage replacements for CSV field flips. All of them
// either fail to parse or fail domain validation downstream.
constexpr std::string_view kFieldPoison[] = {
    "nan", "inf", "-inf", "999", "-999", "", "bogus",
    "99999999999999999999", "1e400"};

// Magic-static only: a plain pointer cache around it would be written by
// whichever thread first calls global() and read unsynchronized by every
// other worker — a data race TSan flags under fa::exec.
Injector& mutable_global() {
  static Injector from_env = [] {
    const char* spec = std::getenv("FA_FAULTS");
    if (spec == nullptr || *spec == '\0') return Injector{};
    Result<Injector> parsed = Injector::parse(spec);
    if (!parsed.ok()) {
      std::fprintf(stderr, "FA_FAULTS ignored: %s\n",
                   parsed.status().to_string().c_str());
      return Injector{};
    }
    return std::move(parsed).take();
  }();
  return from_env;
}

}  // namespace

Result<Injector> Injector::parse(std::string_view spec) {
  Injector out;
  std::uint64_t token_index = 0;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    std::string_view token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    ++token_index;
    // Trim surrounding whitespace.
    while (!token.empty() && token.front() == ' ') token.remove_prefix(1);
    while (!token.empty() && token.back() == ' ') token.remove_suffix(1);
    if (token.empty()) {
      if (pos > spec.size()) break;
      continue;
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::error(ErrCode::kParse, token_index, "fa_faults",
                           "expected site=value in '" + std::string(token) +
                               "'");
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "seed") {
      std::uint64_t seed = 0;
      const auto res =
          std::from_chars(value.data(), value.data() + value.size(), seed);
      if (res.ec != std::errc{} || res.ptr != value.data() + value.size()) {
        return Status::error(ErrCode::kParse, token_index, "fa_faults",
                             "bad seed '" + std::string(value) + "'");
      }
      out.seed_ = seed;
      continue;
    }
    double prob = 0.0;
    const auto res =
        std::from_chars(value.data(), value.data() + value.size(), prob);
    if (res.ec != std::errc{} || res.ptr != value.data() + value.size() ||
        !(prob >= 0.0 && prob <= 1.0)) {
      return Status::error(ErrCode::kOutOfRange, token_index, "fa_faults",
                           "probability for '" + std::string(key) +
                               "' must be in [0,1], got '" +
                               std::string(value) + "'");
    }
    out.rules_.push_back({std::string(key), prob});
  }
  return out;
}

const Injector& Injector::global() { return mutable_global(); }

double Injector::probability(std::string_view site) const {
  // Exact match beats prefix; among prefixes, the longest wins.
  const FaultRule* best = nullptr;
  for (const FaultRule& rule : rules_) {
    if (!matches(rule.site, site)) continue;
    if (rule.site.back() != '*') return rule.probability;
    if (best == nullptr || rule.site.size() > best->site.size()) best = &rule;
  }
  return best != nullptr ? best->probability : 0.0;
}

std::uint64_t Injector::mix(std::string_view site, std::uint64_t key) const {
  std::uint64_t state = seed_ ^ (fnv1a(site) * 0xD1B54A32D192ED03ULL) ^
                        (key * 0x9E3779B97F4A7C15ULL);
  return splitmix64(state);
}

bool Injector::fires(std::string_view site, std::uint64_t key) const {
  if (!armed()) return false;
  const double p = probability(site);
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  const double u =
      static_cast<double>(mix(site, key) >> 11) * 0x1.0p-53;  // [0, 1)
  return u < p;
}

void Injector::fail_point(std::string_view site, std::uint64_t key) const {
  if (fires(site, key)) {
    throw InjectedFault(Status::error(ErrCode::kInjected, key,
                                      std::string(site), "injected fault"));
  }
}

std::uint64_t Injector::draw(std::string_view site, std::uint64_t key) const {
  std::uint64_t state = mix(site, key);
  return splitmix64(state);
}

std::string Injector::corrupt_bytes(std::string bytes, std::string_view site,
                                    std::uint64_t key) const {
  const double p = probability(site);
  if (p <= 0.0 || bytes.empty()) return bytes;
  MutRng rng(mix(site, key));
  const auto target =
      static_cast<std::size_t>(p * static_cast<double>(bytes.size()));
  const std::size_t mutations = std::clamp<std::size_t>(target, 1, 64);
  for (std::size_t i = 0; i < mutations && !bytes.empty(); ++i) {
    const std::size_t at = rng.below(bytes.size());
    switch (rng.below(3)) {
      case 0:  // overwrite with an arbitrary byte
        bytes[at] = static_cast<char>(rng.below(256));
        break;
      case 1:  // delete
        bytes.erase(at, 1);
        break;
      default:  // duplicate
        bytes.insert(at, 1, bytes[at]);
        break;
    }
  }
  return bytes;
}

std::string Injector::truncate(std::string bytes, std::string_view site,
                               std::uint64_t key) const {
  if (probability(site) <= 0.0 || bytes.empty()) return bytes;
  MutRng rng(mix(site, key) ^ 0xA5A5A5A5A5A5A5A5ULL);
  bytes.resize(rng.below(bytes.size()));  // keep a strict prefix
  return bytes;
}

void Injector::corrupt_fields(std::vector<std::string>& fields,
                              std::string_view site,
                              std::uint64_t key) const {
  if (probability(site) <= 0.0 || fields.empty()) return;
  MutRng rng(mix(site, key) ^ 0x5BD1E995ULL);
  const std::size_t at = rng.below(fields.size());
  const std::size_t pick =
      rng.below(sizeof(kFieldPoison) / sizeof(kFieldPoison[0]));
  fields[at] = std::string(kFieldPoison[pick]);
}

ScopedInjector::ScopedInjector(Injector injector)
    : previous_(std::move(mutable_global())) {
  mutable_global() = std::move(injector);
}

ScopedInjector::~ScopedInjector() {
  mutable_global() = std::move(previous_);
}

}  // namespace fa::fault

// Degraded-mode ingestion: a RecoveryPolicy selects how loaders react to
// malformed records, and a Diagnostics sink keeps exact per-source counts
// of everything that was dropped or repaired — so every downstream table
// or figure can report coverage ("N of M records") next to its results.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fault/status.hpp"

namespace fa::fault {

enum class RecoveryPolicy : std::uint8_t {
  kStrict,      // first malformed record is the load's error
  kQuarantine,  // skip malformed records, count them in Diagnostics
  kBestEffort,  // like Quarantine, but repair what is repairable first
};

std::string_view recovery_policy_name(RecoveryPolicy policy);
// Accepts "strict" / "quarantine" / "best_effort" (also "besteffort");
// nullopt on anything else. Used for the FA_POLICY env toggle.
std::optional<RecoveryPolicy> recovery_policy_from_name(std::string_view name);

enum class Severity : std::uint8_t { kInfo, kWarning, kError };

std::string_view severity_name(Severity severity);

struct DiagnosticRecord {
  Severity severity = Severity::kWarning;
  Status status;
};

// Collects ingestion warnings with severity and per-source counts. Counts
// are exact for every event; full records are retained only up to
// kMaxStoredRecords so a pathological input cannot balloon memory.
// Not thread-safe: feed it from the (serial) validation stages, never
// from inside a parallel region.
class Diagnostics {
 public:
  static constexpr std::size_t kMaxStoredRecords = 256;

  struct SourceCounts {
    std::size_t reported = 0;  // every report()/dropped()/repaired() event
    std::size_t dropped = 0;   // records quarantined
    std::size_t repaired = 0;  // records fixed by BestEffort
  };

  // General event sink; counts per status.source and severity.
  void report(Severity severity, Status status);
  // A malformed record skipped by Quarantine/BestEffort ingestion.
  void dropped(Status why);
  // A record BestEffort mutated into validity (clamped coordinate, ...).
  void repaired(Status what);

  std::size_t total_reported() const { return total_reported_; }
  std::size_t total_dropped() const { return total_dropped_; }
  std::size_t total_repaired() const { return total_repaired_; }
  std::size_t count(Severity severity) const {
    return severity_counts_[static_cast<std::size_t>(severity)];
  }
  std::size_t dropped_in(std::string_view source) const;
  std::size_t repaired_in(std::string_view source) const;

  const std::map<std::string, SourceCounts, std::less<>>& sources() const {
    return sources_;
  }
  // First kMaxStoredRecords events, in arrival order.
  const std::vector<DiagnosticRecord>& records() const { return records_; }

  bool empty() const { return total_reported_ == 0; }
  void clear();

  // One line, e.g. "13 dropped, 2 repaired (ingest.txr: 13 dropped;
  // opencellid: 2 repaired)"; "clean" when nothing was reported.
  std::string summary() const;

 private:
  std::map<std::string, SourceCounts, std::less<>> sources_;
  std::vector<DiagnosticRecord> records_;
  std::size_t severity_counts_[3] = {};
  std::size_t total_reported_ = 0;
  std::size_t total_dropped_ = 0;
  std::size_t total_repaired_ = 0;
};

}  // namespace fa::fault

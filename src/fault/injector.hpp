// Deterministic fault injection. An Injector is a set of
// site=probability rules plus a seed; every decision is a pure function
// of (seed, site, key), so a failing run replays exactly and a test can
// predict which records a given spec will corrupt.
//
// The process-wide injector is configured from the FA_FAULTS environment
// variable and consulted at named seams:
//   exec.chunk      every fa::exec chunk body (forces task failures)
//   synth.whp / synth.corpus / synth.counties   the synth loaders
//   ingest.txr      per-transceiver record corruption in World::build
//   net.frame.decode  inbound wire frames at the serving front door
//                     (payload corrupted before decode, keyed by the
//                     connection's request sequence)
//   net.conn.slow   the front door's per-connection flush (one round
//                     skipped, keyed by flush sequence — a client that
//                     stops draining its socket)
//   store.write.torn  snapshot commit persists only a seeded prefix of
//                     the image (keyed by generation number) — a torn
//                     write / mid-commit power cut
//   store.read.corrupt  snapshot load flips seeded bytes of the mmap'd
//                     image before validation (keyed by generation
//                     number; MAP_PRIVATE, so the disk stays clean)
// plus whatever additional sites tests install via ScopedInjector.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fault/status.hpp"

namespace fa::fault {

// One rule; `site` may end in '*' to prefix-match (e.g. "exec.*").
struct FaultRule {
  std::string site;
  double probability = 0.0;
};

class Injector {
 public:
  Injector() = default;  // disarmed: every query is a cheap no-op

  // Spec grammar (the FA_FAULTS format): comma-separated tokens, each
  //   seed=<u64>       decision-stream seed (default 1)
  //   <site>=<prob>    arm `site` with fault probability in [0, 1]
  // e.g. "seed=42,ingest.txr=0.01,exec.*=0.001".
  static Result<Injector> parse(std::string_view spec);

  // Process-wide injector, parsed from FA_FAULTS once on first use. A
  // malformed spec warns on stderr and stays disarmed — a bad FA_FAULTS
  // value must never take the process down.
  static const Injector& global();

  bool armed() const { return !rules_.empty(); }
  std::uint64_t seed() const { return seed_; }
  const std::vector<FaultRule>& rules() const { return rules_; }

  // Probability of the best-matching rule (exact beats prefix, longer
  // prefix beats shorter); 0 when no rule matches.
  double probability(std::string_view site) const;

  // Deterministic decision: fires iff hash(seed, site, key) < p(site).
  bool fires(std::string_view site, std::uint64_t key = 0) const;

  // Throws InjectedFault (code kInjected, source=site, offset=key) when
  // fires(site, key). The cheap call to sprinkle at seams.
  void fail_point(std::string_view site, std::uint64_t key = 0) const;

  // Deterministic u64 for callers keying their own mutation choices.
  std::uint64_t draw(std::string_view site, std::uint64_t key = 0) const;

  // Byte-level mutations, deterministic in (seed, site, key). The
  // mutation count scales with probability(site) (at least 1 when the
  // site is armed); an unarmed site returns the input unchanged.
  std::string corrupt_bytes(std::string bytes, std::string_view site,
                            std::uint64_t key = 0) const;
  // Drops a deterministic suffix (possibly all) of `bytes`.
  std::string truncate(std::string bytes, std::string_view site,
                       std::uint64_t key = 0) const;
  // Flips one CSV field to an out-of-range/garbage value in place.
  void corrupt_fields(std::vector<std::string>& fields, std::string_view site,
                      std::uint64_t key = 0) const;

 private:
  std::uint64_t mix(std::string_view site, std::uint64_t key) const;

  std::vector<FaultRule> rules_;
  std::uint64_t seed_ = 1;
};

// Swaps the process-wide injector for a scope (tests). The swap is not
// synchronized with running parallel regions — install/restore only
// between them, from the main thread.
class ScopedInjector {
 public:
  explicit ScopedInjector(Injector injector);
  ~ScopedInjector();
  ScopedInjector(const ScopedInjector&) = delete;
  ScopedInjector& operator=(const ScopedInjector&) = delete;

 private:
  Injector previous_;
};

}  // namespace fa::fault

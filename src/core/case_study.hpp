// Section 3.2 / Figure 5: the fall-2019 California PSPS case study,
// bridged through the outage simulator.
#pragma once

#include "core/world.hpp"
#include "firesim/outage.hpp"

namespace fa::core {

// Runs the 2019 California event against this world's corpus and WHP.
firesim::DirsReport run_california_case_study(
    const World& world, const firesim::OutageSimConfig& config = {});

}  // namespace fa::core

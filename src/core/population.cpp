#include "core/population.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "obs/obs.hpp"

namespace fa::core {

namespace {

// Matrix row for an at-risk WHP class, or -1.
int whp_row(synth::WhpClass cls) {
  switch (cls) {
    case synth::WhpClass::kModerate: return 0;
    case synth::WhpClass::kHigh: return 1;
    case synth::WhpClass::kVeryHigh: return 2;
    default: return -1;
  }
}

}  // namespace

std::size_t PopulationImpactResult::at_risk_total() const {
  std::size_t n = 0;
  for (const auto& row : matrix) {
    for (const std::size_t v : row) n += v;
  }
  return n;
}

std::size_t PopulationImpactResult::at_risk_pop_m_plus() const {
  std::size_t n = 0;
  for (const auto& row : matrix) {
    n += row[1] + row[2] + row[3];
  }
  return n;
}

std::size_t PopulationImpactResult::at_risk_pop_vh() const {
  return matrix[0][3] + matrix[1][3] + matrix[2][3];
}

PopulationImpactResult run_population_impact(const World& world) {
  const obs::Span span("core.population_impact");
  obs::count("core.population_impact.records", world.corpus().size());
  PopulationImpactResult result;
  std::set<int> counties_at_risk;
  for (const cellnet::Transceiver& t : world.corpus().transceivers()) {
    const int w = whp_row(world.txr_class(t.id));
    if (w < 0) continue;
    const int county = world.txr_county(t.id);
    if (county < 0) continue;
    const synth::County& c = world.counties().county(county);
    const auto pop =
        static_cast<std::size_t>(synth::pop_category(c.population));
    ++result.matrix[static_cast<std::size_t>(w)][pop];
    counties_at_risk.insert(county);
  }
  for (const int county : counties_at_risk) {
    result.population_served += world.counties().county(county).population;
  }
  return result;
}

std::vector<CityVhRow> very_high_by_major_county(const World& world) {
  const obs::Span span("core.vh_by_major_county");
  std::map<int, std::size_t> counts;
  for (const cellnet::Transceiver& t : world.corpus().transceivers()) {
    if (world.txr_class(t.id) != synth::WhpClass::kVeryHigh) continue;
    const int county = world.txr_county(t.id);
    if (county < 0) continue;
    const synth::County& c = world.counties().county(county);
    if (synth::pop_category(c.population) != synth::PopCategory::kVeryDense) {
      continue;
    }
    ++counts[county];
  }
  std::vector<CityVhRow> rows;
  for (const auto& [county, count] : counts) {
    const synth::County& c = world.counties().county(county);
    rows.push_back(
        {c.name,
         std::string{world.atlas().states()[static_cast<std::size_t>(c.state)].abbr},
         count});
  }
  std::sort(rows.begin(), rows.end(), [](const CityVhRow& a, const CityVhRow& b) {
    return a.count > b.count;
  });
  return rows;
}

}  // namespace fa::core

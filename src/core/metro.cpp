#include "core/metro.hpp"

#include <algorithm>

#include "geo/geodesy.hpp"
#include "obs/obs.hpp"

namespace fa::core {

std::vector<MetroRiskRow> run_metro_risk(const World& world,
                                         const MetroConfig& config) {
  const obs::Span span("core.metro_risk");
  std::vector<MetroRiskRow> rows;
  for (const synth::CityInfo& city : world.atlas().cities()) {
    if (city.metro_population < config.min_metro_population) continue;
    MetroRiskRow row;
    row.metro = std::string{city.name};
    row.state_abbr = std::string{city.state_abbr};
    // Query the index by bbox around the metro, refine by haversine.
    const double dlat = config.radius_m / geo::meters_per_deg_lat();
    const double dlon =
        config.radius_m / geo::meters_per_deg_lon(city.position.lat);
    const geo::BBox box{city.position.lon - dlon, city.position.lat - dlat,
                        city.position.lon + dlon, city.position.lat + dlat};
    world.txr_index().query(box, [&](std::uint32_t id, geo::Vec2 p) {
      if (geo::haversine_m(city.position, geo::LonLat::from_vec(p)) >
          config.radius_m) {
        return;
      }
      switch (world.txr_class(id)) {
        case synth::WhpClass::kModerate: ++row.moderate; break;
        case synth::WhpClass::kHigh: ++row.high; break;
        case synth::WhpClass::kVeryHigh: ++row.very_high; break;
        default: break;
      }
    });
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const MetroRiskRow& a, const MetroRiskRow& b) {
              return a.total() > b.total();
            });
  return rows;
}

std::vector<MetroRing> metro_risk_gradient(const World& world,
                                           geo::LonLat center,
                                           double radius_m,
                                           double ring_width_m) {
  const int rings = static_cast<int>(std::ceil(radius_m / ring_width_m));
  std::vector<MetroRing> out(static_cast<std::size_t>(rings));
  for (int i = 0; i < rings; ++i) {
    out[static_cast<std::size_t>(i)].inner_m = i * ring_width_m;
    out[static_cast<std::size_t>(i)].outer_m = (i + 1) * ring_width_m;
  }
  const double dlat = radius_m / geo::meters_per_deg_lat();
  const double dlon = radius_m / geo::meters_per_deg_lon(center.lat);
  const geo::BBox box{center.lon - dlon, center.lat - dlat,
                      center.lon + dlon, center.lat + dlat};
  world.txr_index().query(box, [&](std::uint32_t id, geo::Vec2 p) {
    const double d = geo::haversine_m(center, geo::LonLat::from_vec(p));
    if (d >= radius_m) return;
    MetroRing& ring = out[static_cast<std::size_t>(d / ring_width_m)];
    ++ring.transceivers;
    if (synth::whp_at_risk(world.txr_class(id))) ++ring.at_risk;
  });
  return out;
}

}  // namespace fa::core

#include "core/analysis_context.hpp"

#include <memory>

namespace fa::core {

namespace {

bool same_scenario(const synth::ScenarioConfig& a,
                   const synth::ScenarioConfig& b) {
  return a.seed == b.seed && a.corpus_scale == b.corpus_scale &&
         a.whp_cell_m == b.whp_cell_m &&
         a.counties_per_state == b.counties_per_state;
}

}  // namespace

AnalysisContext& AnalysisContext::shared(const synth::ScenarioConfig& config) {
  static std::unique_ptr<AnalysisContext> instance;
  if (!instance || !same_scenario(instance->config(), config)) {
    instance = std::make_unique<AnalysisContext>(config);
  }
  return *instance;
}

}  // namespace fa::core

#include "core/provider_risk.hpp"

#include <set>
#include <string_view>

#include "obs/obs.hpp"

namespace fa::core {

ProviderRiskResult run_provider_risk(const World& world) {
  const obs::Span span("core.provider_risk");
  obs::count("core.provider_risk.records", world.corpus().size());
  ProviderRiskResult result;
  const cellnet::ProviderRegistry& registry = world.provider_registry();
  for (int p = 0; p < cellnet::kNumProviders; ++p) {
    result.rows[static_cast<std::size_t>(p)].provider =
        static_cast<cellnet::Provider>(p);
  }
  std::set<std::string_view> regional_brands;
  for (const cellnet::Transceiver& t : world.corpus().transceivers()) {
    const cellnet::Provider p = world.txr_provider(t.id);
    ProviderRiskRow& row = result.rows[static_cast<std::size_t>(p)];
    ++row.fleet;
    switch (world.txr_class(t.id)) {
      case synth::WhpClass::kModerate:
        ++row.moderate;
        break;
      case synth::WhpClass::kHigh:
        ++row.high;
        break;
      case synth::WhpClass::kVeryHigh:
        ++row.very_high;
        break;
      default:
        continue;  // not at risk: skip the brand bookkeeping below
    }
    if (p == cellnet::Provider::kRegional) {
      regional_brands.insert(registry.brand(t.mcc, t.mnc));
    }
  }
  result.regional_brands_at_risk = regional_brands.size();
  return result;
}

RadioRiskResult run_radio_risk(const World& world) {
  const obs::Span span("core.radio_risk");
  obs::count("core.radio_risk.records", world.corpus().size());
  RadioRiskResult result;
  for (int r = 0; r < cellnet::kNumRadioTypes; ++r) {
    result.rows[static_cast<std::size_t>(r)].radio =
        static_cast<cellnet::RadioType>(r);
  }
  for (const cellnet::Transceiver& t : world.corpus().transceivers()) {
    RadioRiskRow& row = result.rows[static_cast<std::size_t>(t.radio)];
    switch (world.txr_class(t.id)) {
      case synth::WhpClass::kModerate: ++row.moderate; break;
      case synth::WhpClass::kHigh: ++row.high; break;
      case synth::WhpClass::kVeryHigh: ++row.very_high; break;
      default: break;
    }
  }
  return result;
}

}  // namespace fa::core

#include "core/overlay.hpp"

#include <algorithm>
#include <utility>

#include "exec/exec.hpp"
#include "geo/prepared.hpp"
#include "obs/obs.hpp"

namespace fa::core {

PerimeterHits transceivers_in_perimeters_attributed(
    const World& world, const std::vector<firesim::FirePerimeter>& fires) {
  const obs::Span span("core.overlay.perimeters");
  obs::count("core.overlay.fires", fires.size());
  PerimeterHits hits;
  // Query the transceiver grid index by fire bbox, then run the exact
  // polygon test — fires are few and small relative to the corpus, so
  // this direction of the join is the cheap one.
  //
  // Parallel shape: each fire prepares its perimeter once, pulls whole
  // candidate spans out of the grid's SoA storage, and runs the batch
  // containment kernel over them (reads only); then a serial merge in
  // fire order applies the first-containing-fire dedup — byte-identical
  // to the scalar per-point sweep (the kernel evaluates the same
  // predicate, and span order equals candidate visit order).
  const index::GridIndex& idx = world.txr_index();
  const std::span<const std::uint32_t> ids = idx.binned_ids();
  const std::span<const double> xs = idx.binned_xs();
  const std::span<const double> ys = idx.binned_ys();
  std::vector<std::vector<std::uint32_t>> per_fire(fires.size());
  exec::parallel_for(
      fires.size(),
      [&fires, &per_fire, &idx, ids, xs, ys](std::size_t f) {
        const auto& perimeter = fires[f].perimeter;
        if (perimeter.empty()) return;
        const geo::PreparedMultiPolygon prepared(perimeter);
        // Worker-local scratch: candidate ranges and their containment
        // mask survive across fires, so the hot loop never reallocates.
        thread_local std::vector<std::pair<std::uint32_t, std::uint32_t>>
            spans;
        thread_local std::vector<std::uint8_t> mask;
        spans.clear();
        std::size_t candidates = 0;
        idx.query_spans(perimeter.bbox(),
                        [&](std::uint32_t b, std::uint32_t e) {
                          spans.emplace_back(b, e);
                          candidates += e - b;
                        });
        if (candidates == 0) return;
        mask.resize(candidates);
        std::size_t off = 0;
        for (const auto& [b, e] : spans) {
          const std::size_t n = e - b;
          prepared.contains_batch(xs.subspan(b, n), ys.subspan(b, n),
                                  std::span(mask).subspan(off, n));
          off += n;
        }
        std::size_t in_fire = 0;
        for (std::size_t i = 0; i < candidates; ++i) in_fire += mask[i];
        auto& out = per_fire[f];
        out.reserve(in_fire);
        off = 0;
        for (const auto& [b, e] : spans) {
          for (std::uint32_t k = b; k < e; ++k) {
            if (mask[off++] != 0) out.push_back(ids[k]);
          }
        }
      },
      {.grain = 4});

  std::vector<std::uint8_t> seen(world.corpus().size(), 0);
  for (std::uint32_t f = 0; f < fires.size(); ++f) {
    for (const std::uint32_t id : per_fire[f]) {
      if (seen[id] != 0) continue;
      seen[id] = 1;
      hits.txr_ids.push_back(id);
      hits.fire_idx.push_back(f);
    }
  }
  obs::count("core.overlay.hits", hits.txr_ids.size());
  return hits;
}

std::vector<std::uint32_t> transceivers_in_perimeters(
    const World& world, const std::vector<firesim::FirePerimeter>& fires) {
  return transceivers_in_perimeters_attributed(world, fires).txr_ids;
}

}  // namespace fa::core

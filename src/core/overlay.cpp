#include "core/overlay.hpp"

#include <algorithm>

#include "exec/exec.hpp"
#include "obs/obs.hpp"

namespace fa::core {

PerimeterHits transceivers_in_perimeters_attributed(
    const World& world, const std::vector<firesim::FirePerimeter>& fires) {
  const obs::Span span("core.overlay.perimeters");
  obs::count("core.overlay.fires", fires.size());
  PerimeterHits hits;
  // Query the transceiver grid index by fire bbox, then run the exact
  // polygon test — fires are few and small relative to the corpus, so
  // this direction of the join is the cheap one.
  //
  // Parallel shape: each fire collects its own candidate list (reads
  // only), then a serial merge in fire order applies the first-
  // containing-fire dedup — byte-identical to the serial sweep.
  std::vector<std::vector<std::uint32_t>> per_fire(fires.size());
  exec::parallel_for(
      fires.size(),
      [&world, &fires, &per_fire](std::size_t f) {
        const auto& perimeter = fires[f].perimeter;
        if (perimeter.empty()) return;
        world.txr_index().query(
            perimeter.bbox(), [&](std::uint32_t id, geo::Vec2 p) {
              if (perimeter.contains(p)) per_fire[f].push_back(id);
            });
      },
      {.grain = 4});

  std::vector<std::uint8_t> seen(world.corpus().size(), 0);
  for (std::uint32_t f = 0; f < fires.size(); ++f) {
    for (const std::uint32_t id : per_fire[f]) {
      if (seen[id] != 0) continue;
      seen[id] = 1;
      hits.txr_ids.push_back(id);
      hits.fire_idx.push_back(f);
    }
  }
  obs::count("core.overlay.hits", hits.txr_ids.size());
  return hits;
}

std::vector<std::uint32_t> transceivers_in_perimeters(
    const World& world, const std::vector<firesim::FirePerimeter>& fires) {
  return transceivers_in_perimeters_attributed(world, fires).txr_ids;
}

}  // namespace fa::core

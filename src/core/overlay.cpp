#include "core/overlay.hpp"

#include <algorithm>

namespace fa::core {

PerimeterHits transceivers_in_perimeters_attributed(
    const World& world, const std::vector<firesim::FirePerimeter>& fires) {
  PerimeterHits hits;
  std::vector<std::uint8_t> seen(world.corpus().size(), 0);
  // Query the transceiver grid index by fire bbox, then run the exact
  // polygon test — fires are few and small relative to the corpus, so
  // this direction of the join is the cheap one.
  for (std::uint32_t f = 0; f < fires.size(); ++f) {
    const auto& perimeter = fires[f].perimeter;
    if (perimeter.empty()) continue;
    world.txr_index().query(
        perimeter.bbox(), [&](std::uint32_t id, geo::Vec2 p) {
          if (seen[id] != 0 || !perimeter.contains(p)) return;
          seen[id] = 1;
          hits.txr_ids.push_back(id);
          hits.fire_idx.push_back(f);
        });
  }
  return hits;
}

std::vector<std::uint32_t> transceivers_in_perimeters(
    const World& world, const std::vector<firesim::FirePerimeter>& fires) {
  return transceivers_in_perimeters_attributed(world, fires).txr_ids;
}

}  // namespace fa::core

// Section 3.6 / Figures 10-11: cross-tabulation of at-risk transceivers
// by WHP class and county population density, plus the aggregate
// population of the counties served by at-risk infrastructure.
#pragma once

#include <array>
#include <vector>

#include "core/world.hpp"

namespace fa::core {

struct PopulationImpactResult {
  // matrix[whp][pop]: whp in {0=Moderate, 1=High, 2=VeryHigh},
  // pop in {0=Rural, 1=Pop M, 2=Pop H, 3=Pop VH}.
  std::array<std::array<std::size_t, 4>, 3> matrix{};

  // Aggregate population of counties holding at least one at-risk
  // transceiver (the paper's "over 85 million" claim).
  double population_served = 0.0;

  std::size_t at_risk_total() const;
  // At-risk transceivers in counties above 200k people (Fig 11 left).
  std::size_t at_risk_pop_m_plus() const;
  // At-risk transceivers in counties above 1.5M people (Fig 11 center;
  // the paper reports 57,504 at full scale).
  std::size_t at_risk_pop_vh() const;
  // Very-high WHP transceivers in >1.5M counties (Fig 11 right; paper
  // reports just over 7,000).
  std::size_t very_high_pop_vh() const { return matrix[2][3]; }
};

PopulationImpactResult run_population_impact(const World& world);

// Fig 11 right-panel city attribution: very-high-WHP transceivers in
// very dense counties, grouped by the county's anchor metro.
struct CityVhRow {
  std::string county;
  std::string metro_state;
  std::size_t count = 0;
};
std::vector<CityVhRow> very_high_by_major_county(const World& world);

}  // namespace fa::core

#include "core/climate.hpp"

#include <algorithm>

namespace fa::core {

ClimateResult run_climate_projection(const World& world) {
  ClimateResult result;
  const auto ecoregions = world.atlas().ecoregions();
  result.rows.reserve(ecoregions.size());
  for (const synth::EcoregionInfo& eco : ecoregions) {
    result.corridor.expand(eco.boundary.bbox());
    result.rows.push_back({std::string{eco.name}, eco.delta_burn_pct_2040,
                           0, 0});
  }

  world.txr_index().query(result.corridor, [&](std::uint32_t id, geo::Vec2 p) {
    ++result.corridor_transceivers;
    for (std::size_t e = 0; e < ecoregions.size(); ++e) {
      if (!ecoregions[e].boundary.contains(p)) continue;
      ++result.rows[e].transceivers;
      if (synth::whp_at_risk(world.txr_class(id))) ++result.rows[e].at_risk;
      break;  // bands are disjoint; first containing region wins
    }
  });
  return result;
}

std::vector<int> FutureExposureResult::rank() const {
  std::vector<int> order(states.size());
  for (std::size_t i = 0; i < states.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [this](int a, int b) {
    return states[static_cast<std::size_t>(a)].at_risk_2040 >
           states[static_cast<std::size_t>(b)].at_risk_2040;
  });
  return order;
}

FutureExposureResult run_future_exposure(const World& world) {
  FutureExposureResult result;
  result.states.resize(static_cast<std::size_t>(world.atlas().num_states()));
  for (std::size_t s = 0; s < result.states.size(); ++s) {
    result.states[s].state = static_cast<int>(s);
  }
  const auto west = world.atlas().western_ecoregions();
  for (const cellnet::Transceiver& t : world.corpus().transceivers()) {
    if (!synth::whp_at_risk(world.txr_class(t.id)) || t.state < 0) continue;
    double multiplier = 1.0;  // eastern default: no Littell projection
    for (const synth::EcoregionInfo& eco : west) {
      if (eco.boundary.contains(t.position.as_vec())) {
        multiplier = std::max(0.0, 1.0 + eco.delta_burn_pct_2040 / 100.0);
        break;
      }
    }
    FutureStateRow& row = result.states[static_cast<std::size_t>(t.state)];
    ++row.at_risk_now;
    row.at_risk_2040 += multiplier;
    ++result.at_risk_now;
    result.at_risk_2040 += multiplier;
  }
  return result;
}

}  // namespace fa::core

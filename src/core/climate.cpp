#include "core/climate.hpp"

#include <algorithm>

#include "exec/exec.hpp"
#include "obs/obs.hpp"

namespace fa::core {

ClimateResult run_climate_projection(const World& world) {
  const obs::Span span("core.climate_projection");
  ClimateResult result;
  const auto ecoregions = world.atlas().ecoregions();
  result.rows.reserve(ecoregions.size());
  for (const synth::EcoregionInfo& eco : ecoregions) {
    result.corridor.expand(eco.boundary.bbox());
    result.rows.push_back({std::string{eco.name}, eco.delta_burn_pct_2040,
                           0, 0});
  }

  world.txr_index().query(result.corridor, [&](std::uint32_t id, geo::Vec2 p) {
    ++result.corridor_transceivers;
    for (std::size_t e = 0; e < ecoregions.size(); ++e) {
      if (!ecoregions[e].boundary.contains(p)) continue;
      ++result.rows[e].transceivers;
      if (synth::whp_at_risk(world.txr_class(id))) ++result.rows[e].at_risk;
      break;  // bands are disjoint; first containing region wins
    }
  });
  return result;
}

std::vector<int> FutureExposureResult::rank() const {
  std::vector<int> order(states.size());
  for (std::size_t i = 0; i < states.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [this](int a, int b) {
    return states[static_cast<std::size_t>(a)].at_risk_2040 >
           states[static_cast<std::size_t>(b)].at_risk_2040;
  });
  return order;
}

FutureExposureResult run_future_exposure(const World& world) {
  const obs::Span span("core.future_exposure");
  obs::count("core.future_exposure.records", world.corpus().size());
  FutureExposureResult result;
  result.states.resize(static_cast<std::size_t>(world.atlas().num_states()));
  for (std::size_t s = 0; s < result.states.size(); ++s) {
    result.states[s].state = static_cast<int>(s);
  }
  const auto west = world.atlas().western_ecoregions();
  // Point-in-ecoregion sweep over the corpus. Partials carry the same
  // per-state rows as the result; the double accumulators are combined
  // in chunk order, so totals are identical at any thread count.
  struct Partial {
    std::vector<FutureStateRow> states;
    std::size_t at_risk_now = 0;
    double at_risk_2040 = 0.0;
  };
  Partial identity;
  identity.states.resize(result.states.size());
  const std::vector<cellnet::Transceiver>& transceivers =
      world.corpus().transceivers();
  Partial tally = exec::parallel_reduce(
      transceivers.size(), std::move(identity),
      [&world, &west, &transceivers](std::size_t begin, std::size_t end,
                                     Partial& acc) {
        for (std::size_t i = begin; i < end; ++i) {
          const cellnet::Transceiver& t = transceivers[i];
          if (!synth::whp_at_risk(world.txr_class(t.id)) || t.state < 0) {
            continue;
          }
          double multiplier = 1.0;  // eastern default: no Littell projection
          for (const synth::EcoregionInfo& eco : west) {
            if (eco.boundary.contains(t.position.as_vec())) {
              multiplier = std::max(0.0, 1.0 + eco.delta_burn_pct_2040 / 100.0);
              break;
            }
          }
          FutureStateRow& row = acc.states[static_cast<std::size_t>(t.state)];
          ++row.at_risk_now;
          row.at_risk_2040 += multiplier;
          ++acc.at_risk_now;
          acc.at_risk_2040 += multiplier;
        }
      },
      [](Partial& into, Partial&& part) {
        for (std::size_t s = 0; s < into.states.size(); ++s) {
          into.states[s].at_risk_now += part.states[s].at_risk_now;
          into.states[s].at_risk_2040 += part.states[s].at_risk_2040;
        }
        into.at_risk_now += part.at_risk_now;
        into.at_risk_2040 += part.at_risk_2040;
      },
      {.grain = 4096});
  for (std::size_t s = 0; s < result.states.size(); ++s) {
    result.states[s].at_risk_now = tally.states[s].at_risk_now;
    result.states[s].at_risk_2040 = tally.states[s].at_risk_2040;
  }
  result.at_risk_now = tally.at_risk_now;
  result.at_risk_2040 = tally.at_risk_2040;
  return result;
}

}  // namespace fa::core

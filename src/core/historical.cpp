#include "core/historical.hpp"

#include <algorithm>
#include <map>

#include "core/overlay.hpp"
#include "obs/obs.hpp"

namespace fa::core {

HistoricalResult run_historical_overlay(
    const World& world, std::span<const synth::FireYearStats> years,
    const firesim::FireSimConfig& fire_config) {
  const obs::Span span("core.historical");
  obs::count("core.historical.years", years.size());
  HistoricalResult result;
  result.corpus_scale = world.config().corpus_scale;
  firesim::FireSimulator sim(world.whp(), world.atlas(),
                             world.config().seed);
  for (const synth::FireYearStats& target : years) {
    const firesim::FireSeason season = sim.simulate_year(target, fire_config);
    const auto hits = transceivers_in_perimeters(world, season.fires);

    HistoricalYearRow row;
    row.year = target.year;
    row.fires = season.total_ignitions;
    row.acres_millions = season.simulated_acres / 1e6;
    row.txr_in_perimeters = hits.size();
    row.txr_per_macre =
        row.acres_millions > 0.0
            ? static_cast<double>(hits.size()) / row.acres_millions
            : 0.0;
    row.paper_txr = target.paper_transceivers;
    result.total_txr += hits.size();
    result.rows.push_back(row);
  }
  obs::count("core.historical.hits", result.total_txr);
  return result;
}

BurnedByStateResult burned_by_state(
    const World& world, std::span<const synth::FireYearStats> years,
    const firesim::FireSimConfig& config) {
  const obs::Span span("core.burned_by_state");
  BurnedByStateResult result;
  std::map<int, BurnedByStateRow> by_state;
  double west_acres = 0.0;
  firesim::FireSimulator sim(world.whp(), world.atlas(),
                             world.config().seed ^ 0xB125ULL);
  for (const synth::FireYearStats& target : years) {
    const firesim::FireSeason season = sim.simulate_year(target, config);
    for (const firesim::FirePerimeter& fire : season.fires) {
      const int state = world.atlas().state_of(fire.ignition);
      if (state < 0) continue;
      BurnedByStateRow& row = by_state[state];
      row.state = state;
      row.acres += fire.acres;
      ++row.fires;
      result.total_acres += fire.acres;
      if (fire.ignition.lon < -100.0) west_acres += fire.acres;
    }
  }
  for (const auto& [_, row] : by_state) result.rows.push_back(row);
  std::sort(result.rows.begin(), result.rows.end(),
            [](const BurnedByStateRow& a, const BurnedByStateRow& b) {
              return a.acres > b.acres;
            });
  result.west_share =
      result.total_acres > 0.0 ? west_acres / result.total_acres : 0.0;
  return result;
}

}  // namespace fa::core

#include "core/whp_overlay.hpp"

#include <algorithm>
#include <numeric>

namespace fa::core {

WhpOverlayResult run_whp_overlay(const World& world) {
  WhpOverlayResult result;
  result.states.resize(static_cast<std::size_t>(world.atlas().num_states()));
  for (std::size_t s = 0; s < result.states.size(); ++s) {
    result.states[s].state = static_cast<int>(s);
  }
  for (const cellnet::Transceiver& t : world.corpus().transceivers()) {
    const synth::WhpClass cls = world.txr_class(t.id);
    ++result.txr_by_class[static_cast<std::size_t>(cls)];
    if (t.state < 0) continue;
    StateWhpRow& row = result.states[static_cast<std::size_t>(t.state)];
    switch (cls) {
      case synth::WhpClass::kModerate: ++row.moderate; break;
      case synth::WhpClass::kHigh: ++row.high; break;
      case synth::WhpClass::kVeryHigh: ++row.very_high; break;
      default: break;
    }
  }
  for (StateWhpRow& row : result.states) {
    const double pop_k =
        world.atlas().states()[static_cast<std::size_t>(row.state)].population /
        1000.0;
    if (pop_k <= 0.0) continue;
    row.per_thousand_m = static_cast<double>(row.moderate) / pop_k;
    row.per_thousand_h = static_cast<double>(row.high) / pop_k;
    row.per_thousand_vh = static_cast<double>(row.very_high) / pop_k;
  }
  return result;
}

std::vector<int> WhpOverlayResult::rank_by_at_risk() const {
  std::vector<int> order(states.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](int a, int b) {
    return states[static_cast<std::size_t>(a)].at_risk() >
           states[static_cast<std::size_t>(b)].at_risk();
  });
  return order;
}

std::vector<int> WhpOverlayResult::rank_by_per_capita() const {
  std::vector<int> order(states.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](int a, int b) {
    const StateWhpRow& ra = states[static_cast<std::size_t>(a)];
    const StateWhpRow& rb = states[static_cast<std::size_t>(b)];
    const double pa = ra.per_thousand_m + ra.per_thousand_h + ra.per_thousand_vh;
    const double pb = rb.per_thousand_m + rb.per_thousand_h + rb.per_thousand_vh;
    return pa > pb;
  });
  return order;
}

}  // namespace fa::core

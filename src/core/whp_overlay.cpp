#include "core/whp_overlay.hpp"

#include <algorithm>
#include <numeric>

#include "exec/exec.hpp"
#include "obs/obs.hpp"

namespace fa::core {

WhpOverlayResult run_whp_overlay(const World& world) {
  const obs::Span span("core.whp_overlay");
  obs::count("core.whp_overlay.records", world.corpus().size());
  WhpOverlayResult result;
  result.states.resize(static_cast<std::size_t>(world.atlas().num_states()));
  for (std::size_t s = 0; s < result.states.size(); ++s) {
    result.states[s].state = static_cast<int>(s);
  }
  // Pure counting: chunk partials are integer histograms, so the chunked
  // reduction is exactly the serial tally.
  struct Partial {
    std::array<std::size_t, synth::kNumWhpClasses> by_class{};
    std::vector<std::array<std::size_t, 3>> by_state;  // M/H/VH
  };
  Partial identity;
  identity.by_state.resize(result.states.size());
  const std::vector<cellnet::Transceiver>& transceivers =
      world.corpus().transceivers();
  const Partial tally = exec::parallel_reduce(
      transceivers.size(), std::move(identity),
      [&world, &transceivers](std::size_t begin, std::size_t end,
                              Partial& acc) {
        for (std::size_t i = begin; i < end; ++i) {
          const cellnet::Transceiver& t = transceivers[i];
          const synth::WhpClass cls = world.txr_class(t.id);
          ++acc.by_class[static_cast<std::size_t>(cls)];
          if (t.state < 0) continue;
          auto& row = acc.by_state[static_cast<std::size_t>(t.state)];
          switch (cls) {
            case synth::WhpClass::kModerate: ++row[0]; break;
            case synth::WhpClass::kHigh: ++row[1]; break;
            case synth::WhpClass::kVeryHigh: ++row[2]; break;
            default: break;
          }
        }
      },
      [](Partial& into, Partial&& part) {
        for (std::size_t c = 0; c < into.by_class.size(); ++c) {
          into.by_class[c] += part.by_class[c];
        }
        for (std::size_t s = 0; s < into.by_state.size(); ++s) {
          for (int k = 0; k < 3; ++k) into.by_state[s][k] += part.by_state[s][k];
        }
      },
      {.grain = 8192});
  result.txr_by_class = tally.by_class;
  for (std::size_t s = 0; s < result.states.size(); ++s) {
    result.states[s].moderate = tally.by_state[s][0];
    result.states[s].high = tally.by_state[s][1];
    result.states[s].very_high = tally.by_state[s][2];
  }
  for (StateWhpRow& row : result.states) {
    const double pop_k =
        world.atlas().states()[static_cast<std::size_t>(row.state)].population /
        1000.0;
    if (pop_k <= 0.0) continue;
    row.per_thousand_m = static_cast<double>(row.moderate) / pop_k;
    row.per_thousand_h = static_cast<double>(row.high) / pop_k;
    row.per_thousand_vh = static_cast<double>(row.very_high) / pop_k;
  }
  return result;
}

std::vector<int> WhpOverlayResult::rank_by_at_risk() const {
  std::vector<int> order(states.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](int a, int b) {
    return states[static_cast<std::size_t>(a)].at_risk() >
           states[static_cast<std::size_t>(b)].at_risk();
  });
  return order;
}

std::vector<int> WhpOverlayResult::rank_by_per_capita() const {
  std::vector<int> order(states.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](int a, int b) {
    const StateWhpRow& ra = states[static_cast<std::size_t>(a)];
    const StateWhpRow& rb = states[static_cast<std::size_t>(b)];
    const double pa = ra.per_thousand_m + ra.per_thousand_h + ra.per_thousand_vh;
    const double pb = rb.per_thousand_m + rb.per_thousand_h + rb.per_thousand_vh;
    return pa > pb;
  });
  return order;
}

}  // namespace fa::core

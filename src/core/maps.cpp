#include "core/maps.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "obs/obs.hpp"

namespace fa::core {

namespace {

std::vector<std::uint32_t> bin_points(std::span<const geo::Vec2> points,
                                      const geo::BBox& box, int cols,
                                      int rows) {
  std::vector<std::uint32_t> bins(
      static_cast<std::size_t>(cols) * static_cast<std::size_t>(rows), 0);
  const double inv_w = cols / std::max(1e-12, box.width());
  const double inv_h = rows / std::max(1e-12, box.height());
  for (const geo::Vec2& p : points) {
    if (!box.contains(p)) continue;
    const int c = std::min(cols - 1, static_cast<int>((p.x - box.min_x) * inv_w));
    const int r = std::min(rows - 1, static_cast<int>((p.y - box.min_y) * inv_h));
    ++bins[static_cast<std::size_t>(r) * cols + c];
  }
  return bins;
}

}  // namespace

std::string render_ascii_density(std::span<const geo::Vec2> points,
                                 const geo::BBox& box, int cols, int rows) {
  const obs::Span span("core.render_density");
  const auto bins = bin_points(points, box, cols, rows);
  const std::uint32_t peak =
      *std::max_element(bins.begin(), bins.end());
  constexpr std::string_view ramp = " .:-=+*#%@";
  std::string out;
  out.reserve(static_cast<std::size_t>((cols + 1) * rows));
  for (int r = rows - 1; r >= 0; --r) {  // north-up
    for (int c = 0; c < cols; ++c) {
      const std::uint32_t v = bins[static_cast<std::size_t>(r) * cols + c];
      if (v == 0 || peak == 0) {
        out.push_back(' ');
        continue;
      }
      // Log scale: urban peaks would otherwise wash out everything else.
      const double t = std::log1p(static_cast<double>(v)) /
                       std::log1p(static_cast<double>(peak));
      const std::size_t idx = std::min(
          ramp.size() - 1,
          static_cast<std::size_t>(t * static_cast<double>(ramp.size() - 1) + 0.5));
      out.push_back(ramp[idx]);
    }
    out.push_back('\n');
  }
  return out;
}

std::string render_ascii_classes(const raster::ClassRaster& grid,
                                 std::string_view glyphs, int cols,
                                 int rows) {
  const obs::Span span("core.render_classes");
  std::string out;
  out.reserve(static_cast<std::size_t>((cols + 1) * rows));
  const auto& g = grid.geom();
  for (int r = rows - 1; r >= 0; --r) {
    for (int c = 0; c < cols; ++c) {
      // Sample the dominant class in the covered block (mode of a sparse
      // subsample keeps this cheap).
      const int gc0 = g.cols * c / cols;
      const int gc1 = std::max(gc0 + 1, g.cols * (c + 1) / cols);
      const int gr0 = g.rows * r / rows;
      const int gr1 = std::max(gr0 + 1, g.rows * (r + 1) / rows);
      std::array<int, 16> votes{};
      for (int gr = gr0; gr < gr1; gr += std::max(1, (gr1 - gr0) / 4)) {
        for (int gc = gc0; gc < gc1; gc += std::max(1, (gc1 - gc0) / 4)) {
          ++votes[std::min<std::uint8_t>(15, grid.at(gc, gr))];
        }
      }
      int best = 0;
      for (int k = 1; k < 16; ++k) {
        if (votes[static_cast<std::size_t>(k)] >
            votes[static_cast<std::size_t>(best)]) {
          best = k;
        }
      }
      const auto idx = std::min<std::size_t>(glyphs.size() - 1,
                                             static_cast<std::size_t>(best));
      out.push_back(glyphs[idx]);
    }
    out.push_back('\n');
  }
  return out;
}

void save_density_pgm(const std::string& path,
                      std::span<const geo::Vec2> points, const geo::BBox& box,
                      int cols, int rows) {
  const auto bins = bin_points(points, box, cols, rows);
  const std::uint32_t peak = *std::max_element(bins.begin(), bins.end());
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << "P5\n" << cols << " " << rows << "\n255\n";
  for (int r = rows - 1; r >= 0; --r) {
    for (int c = 0; c < cols; ++c) {
      const std::uint32_t v = bins[static_cast<std::size_t>(r) * cols + c];
      const double t = peak == 0 ? 0.0
                                 : std::log1p(static_cast<double>(v)) /
                                       std::log1p(static_cast<double>(peak));
      out.put(static_cast<char>(static_cast<int>(t * 255.0)));
    }
  }
}

}  // namespace fa::core

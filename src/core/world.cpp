#include "core/world.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string_view>
#include <utility>

#include "exec/exec.hpp"
#include "fault/injector.hpp"
#include "geo/lonlat.hpp"
#include "obs/obs.hpp"

namespace fa::core {

namespace {

constexpr std::string_view kIngestSite = "ingest.txr";

// The ingest corruption stage: when the process-wide injector arms the
// ingest.txr seam, every selected record's position is overwritten with
// a value validation is guaranteed to reject, so under Quarantine the
// dropped count equals the fired count exactly (the property the
// equivalence tests pin down).
void corrupt_stage(std::vector<cellnet::Transceiver>& txr) {
  const fault::Injector& inj = fault::Injector::global();
  if (!inj.armed()) return;
  for (cellnet::Transceiver& t : txr) {
    if (!inj.fires(kIngestSite, t.id)) continue;
    switch (inj.draw(kIngestSite, t.id) & 3u) {
      case 0:
        t.position.lon = std::numeric_limits<double>::quiet_NaN();
        break;
      case 1:
        t.position.lat = std::numeric_limits<double>::infinity();
        break;
      case 2:
        t.position.lon = -999.0;
        break;
      default:
        t.position.lat = 999.0;
        break;
    }
  }
}

struct ValidateOutcome {
  std::vector<cellnet::Transceiver> kept;
  std::size_t dropped = 0;
  std::size_t repaired = 0;
};

// Validation/quarantine: rejects records with out-of-domain positions
// per the policy and re-densifies ids so every downstream cache indexed
// by transceiver id stays dense. Status offsets carry the *pre*-
// densification id — the record the input actually lost.
fault::Result<ValidateOutcome> validate_stage(
    std::vector<cellnet::Transceiver> txr, const World::BuildOptions& opts) {
  using fault::ErrCode;
  using fault::RecoveryPolicy;
  using fault::Status;
  const obs::Span span("world.validate");
  ValidateOutcome out;
  out.kept.reserve(txr.size());
  for (cellnet::Transceiver& t : txr) {
    if (!geo::is_valid(t.position)) {
      const bool finite =
          std::isfinite(t.position.lon) && std::isfinite(t.position.lat);
      if (opts.policy == RecoveryPolicy::kBestEffort && finite) {
        t.position.lon = std::clamp(t.position.lon, -180.0, 180.0);
        t.position.lat = std::clamp(t.position.lat, -90.0, 90.0);
        ++out.repaired;
        if (opts.diagnostics != nullptr) {
          opts.diagnostics->repaired(
              Status::error(ErrCode::kOutOfRange, t.id,
                            std::string(kIngestSite),
                            "clamped out-of-range position"));
        }
      } else {
        Status s = Status::error(ErrCode::kOutOfRange, t.id,
                                 std::string(kIngestSite),
                                 finite ? "position outside lon/lat domain"
                                        : "non-finite position");
        if (opts.policy == RecoveryPolicy::kStrict) return s;
        ++out.dropped;
        if (opts.diagnostics != nullptr) {
          opts.diagnostics->dropped(std::move(s));
        }
        continue;
      }
    }
    t.id = static_cast<std::uint32_t>(out.kept.size());
    out.kept.push_back(t);
  }
  obs::count("world.ingest.kept", out.kept.size());
  obs::count("world.ingest.dropped", out.dropped);
  obs::count("world.ingest.repaired", out.repaired);
  return out;
}

}  // namespace

void World::finalize() {
  // Per-transceiver classification and county resolution: every write is
  // indexed by transceiver id, so chunks touch disjoint slots and the
  // result is identical at any thread count.
  const obs::Span span("world.finalize");
  const std::vector<cellnet::Transceiver>& transceivers =
      corpus_.transceivers();
  const std::size_t n = corpus_.size();
  txr_class_.resize(n);
  txr_county_.resize(n);
  txr_provider_.resize(n);
  std::vector<geo::Vec2> positions(n);
  exec::parallel_for(
      n,
      [this, &transceivers, &positions](std::size_t i) {
        const cellnet::Transceiver& t = transceivers[i];
        txr_class_[t.id] =
            static_cast<std::uint8_t>(whp_->class_at(t.position));
        txr_county_[t.id] = counties_->county_of(t.position);
        txr_provider_[t.id] =
            static_cast<std::uint8_t>(providers_.resolve(t.mcc, t.mnc));
        positions[t.id] = t.position.as_vec();
      },
      {.grain = 256});
  txr_index_ = index::GridIndex(std::move(positions),
                                atlas_->conus_bbox().inflated(0.5), 512, 256);
}

fault::Result<World> World::build(const synth::ScenarioConfig& config,
                                  const BuildOptions& options) {
  const obs::Span span("world.build");
  obs::count("world.builds");
  World w;
  w.config_ = config;
  w.atlas_ = &synth::UsAtlas::get();
  try {
    w.whp_ = std::make_shared<const synth::WhpModel>(
        synth::generate_whp(*w.atlas_, config));
    std::vector<cellnet::Transceiver> txr =
        std::move(synth::generate_corpus(*w.atlas_, config))
            .take_transceivers();
    w.counties_ = std::make_shared<const synth::CountyMap>(
        synth::CountyMap::build(*w.atlas_, config));

    corrupt_stage(txr);
    fault::Result<ValidateOutcome> validated =
        validate_stage(std::move(txr), options);
    if (!validated.ok()) return validated.status();
    w.ingest_dropped_ = validated.value().dropped;
    w.ingest_repaired_ = validated.value().repaired;
    w.corpus_ = cellnet::CellCorpus{std::move(validated.value().kept)};

    w.finalize();
  } catch (const fault::IoError& e) {
    // A synth-layer or exec-seam fault is a whole-layer loss no policy
    // can degrade past; surface it as this build's status.
    return e.status();
  }
  return w;
}

fault::Result<World> World::from_corpus(cellnet::CellCorpus corpus,
                                        const synth::ScenarioConfig& config,
                                        const BuildOptions& options) {
  const obs::Span span("world.build");
  obs::count("world.builds");
  World w;
  w.config_ = config;
  w.atlas_ = &synth::UsAtlas::get();
  try {
    w.whp_ = std::make_shared<const synth::WhpModel>(
        synth::generate_whp(*w.atlas_, config));
    w.counties_ = std::make_shared<const synth::CountyMap>(
        synth::CountyMap::build(*w.atlas_, config));

    fault::Result<ValidateOutcome> validated =
        validate_stage(std::move(corpus).take_transceivers(), options);
    if (!validated.ok()) return validated.status();
    w.ingest_dropped_ = validated.value().dropped;
    w.ingest_repaired_ = validated.value().repaired;
    w.corpus_ = cellnet::CellCorpus{std::move(validated.value().kept)};

    w.finalize();
  } catch (const fault::IoError& e) {
    return e.status();
  }
  return w;
}

fault::Result<World> World::from_parts(
    cellnet::CellCorpus corpus, std::shared_ptr<const synth::WhpModel> whp,
    std::shared_ptr<const synth::CountyMap> counties,
    const synth::ScenarioConfig& config, const BuildOptions& options) {
  const obs::Span span("world.build");
  obs::count("world.builds");
  World w;
  w.config_ = config;
  w.atlas_ = &synth::UsAtlas::get();
  w.whp_ = std::move(whp);
  w.counties_ = std::move(counties);
  try {
    // The parts ARE the final state: validation is a pure sanity pass
    // (any drop/repair here means the caller handed over records that a
    // fresh build would never have kept) and the counters stay 0 so a
    // from_parts world of state S encodes byte-identically however S
    // was reached.
    fault::Result<ValidateOutcome> validated =
        validate_stage(std::move(corpus).take_transceivers(), options);
    if (!validated.ok()) return validated.status();
    if (validated.value().dropped != 0 || validated.value().repaired != 0) {
      return fault::Status::error(fault::ErrCode::kOutOfRange,
                                  validated.value().dropped, "world.parts",
                                  "final-state corpus contains records a "
                                  "fresh build would reject");
    }
    w.corpus_ = cellnet::CellCorpus{std::move(validated.value().kept)};
    w.finalize();
  } catch (const fault::IoError& e) {
    return e.status();
  }
  return w;
}

World World::build(const synth::ScenarioConfig& config) {
  return build(config, BuildOptions{}).take();
}

}  // namespace fa::core

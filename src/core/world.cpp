#include "core/world.hpp"

#include "exec/exec.hpp"

namespace fa::core {

World World::build(const synth::ScenarioConfig& config) {
  World w;
  w.config_ = config;
  w.atlas_ = &synth::UsAtlas::get();
  w.whp_ = synth::generate_whp(*w.atlas_, config);
  w.corpus_ = synth::generate_corpus(*w.atlas_, config);
  w.counties_ = synth::CountyMap::build(*w.atlas_, config);

  // Per-transceiver classification and county resolution: every write is
  // indexed by transceiver id, so chunks touch disjoint slots and the
  // result is identical at any thread count.
  const std::vector<cellnet::Transceiver>& transceivers =
      w.corpus_.transceivers();
  const std::size_t n = w.corpus_.size();
  w.txr_class_.resize(n);
  w.txr_county_.resize(n);
  std::vector<geo::Vec2> positions(n);
  exec::parallel_for(
      n,
      [&w, &transceivers, &positions](std::size_t i) {
        const cellnet::Transceiver& t = transceivers[i];
        w.txr_class_[t.id] =
            static_cast<std::uint8_t>(w.whp_.class_at(t.position));
        w.txr_county_[t.id] = w.counties_.county_of(t.position);
        positions[t.id] = t.position.as_vec();
      },
      {.grain = 256});
  w.txr_index_ = index::GridIndex(std::move(positions),
                                  w.atlas_->conus_bbox().inflated(0.5),
                                  512, 256);
  return w;
}

}  // namespace fa::core

#include "core/world.hpp"

namespace fa::core {

World World::build(const synth::ScenarioConfig& config) {
  World w;
  w.config_ = config;
  w.atlas_ = &synth::UsAtlas::get();
  w.whp_ = synth::generate_whp(*w.atlas_, config);
  w.corpus_ = synth::generate_corpus(*w.atlas_, config);
  w.counties_ = synth::CountyMap::build(*w.atlas_, config);

  const std::size_t n = w.corpus_.size();
  w.txr_class_.resize(n);
  w.txr_county_.resize(n);
  std::vector<geo::Vec2> positions;
  positions.reserve(n);
  for (const cellnet::Transceiver& t : w.corpus_.transceivers()) {
    w.txr_class_[t.id] =
        static_cast<std::uint8_t>(w.whp_.class_at(t.position));
    w.txr_county_[t.id] = w.counties_.county_of(t.position);
    positions.push_back(t.position.as_vec());
  }
  w.txr_index_ = index::GridIndex(std::move(positions),
                                  w.atlas_->conus_bbox().inflated(0.5),
                                  512, 256);
  return w;
}

}  // namespace fa::core

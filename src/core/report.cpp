#include "core/report.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace fa::core {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (const char ch : s) {
    if (!std::isdigit(static_cast<unsigned char>(ch)) && ch != '.' &&
        ch != ',' && ch != '-' && ch != '+' && ch != '%' && ch != 'x') {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string TextTable::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << "  ";
      const bool right = looks_numeric(cells[c]);
      const std::size_t pad = width[c] - cells[c].size();
      if (right) out << std::string(pad, ' ') << cells[c];
      else out << cells[c] << std::string(pad, ' ');
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  out << std::string(total >= 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt_count(std::size_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fmt_double(double v, int precision) {
  std::array<char, 64> buf;
  std::snprintf(buf.data(), buf.size(), "%.*f", precision, v);
  return buf.data();
}

std::string fmt_pct(double fraction, int precision) {
  return fmt_double(fraction * 100.0, precision) + "%";
}

std::string coverage_line(std::size_t kept,
                          const fault::Diagnostics& diags) {
  if (diags.empty()) {
    return "coverage: " + fmt_count(kept) + " records (complete)";
  }
  const std::size_t seen = kept + diags.total_dropped();
  return "coverage: " + fmt_count(kept) + " of " + fmt_count(seen) +
         " records (" + diags.summary() + ")";
}

}  // namespace fa::core

// Section 3.11 alternate approach: wildfire threat to cellular *service
// coverage* rather than to the hardware itself.
//
// Each county's residents are served by the county's transceivers; when a
// fire season knocks out a share of them, remaining capacity absorbs some
// load (redundancy) and the rest is a service gap. The model is a
// county-granularity approximation — the paper notes exact usage maps are
// provider-proprietary — but it turns "N transceivers burned" into the
// quantity decision-makers ask about: how many people lose service.
#pragma once

#include <string>
#include <vector>

#include "core/world.hpp"
#include "firesim/fire.hpp"
#include "synth/population.hpp"

namespace fa::core {

struct CoverageConfig {
  // Fraction of a county's transceivers that can be lost before service
  // degrades at all (co-sited radios + overlapping cells are redundant).
  double redundancy = 0.30;
  // Above the redundancy knee, lost-user share grows with this exponent
  // (>1: the last sites serve the hardest-to-cover users).
  double degradation_exponent = 1.4;
};

struct CountyCoverageRow {
  int county = -1;
  std::string name;
  std::string state_abbr;
  double population = 0.0;
  std::size_t transceivers = 0;  // county total
  std::size_t lost = 0;          // inside fire perimeters
  double lost_share() const {
    return transceivers ? static_cast<double>(lost) / transceivers : 0.0;
  }
  double users_affected = 0.0;   // model output
};

struct CoverageResult {
  std::vector<CountyCoverageRow> counties;  // only counties with losses,
                                            // descending users_affected
  double total_users_affected = 0.0;
  std::size_t transceivers_lost = 0;
};

// Service-coverage impact of one fire set (e.g. a simulated season).
CoverageResult run_coverage_loss(const World& world,
                                 const std::vector<firesim::FirePerimeter>& fires,
                                 const CoverageConfig& config = {});

// The degradation curve itself (exposed for tests/ablation): maps the
// lost-transceiver share of a county to the lost-user share.
double coverage_loss_share(double lost_txr_share, const CoverageConfig& config);

// ---------------------------------------------------------------------------
// Spatial coverage model: instead of county buckets, each site covers a
// service disc and residents are covered when any functioning site's disc
// reaches them. Finer than the county model and independent of county
// shapes — the ablation pair for the population-served statistic.

struct SpatialCoverageConfig {
  double service_radius_m = 8000.0;  // macro-cell service reach
  double analysis_cell_m = 0.0;      // population raster cell (0 = default)
};

struct SpatialCoverageResult {
  double population_analyzed = 0.0;   // residents near the fires
  double covered_before = 0.0;        // of those, covered pre-fire
  double uncovered_by_fires = 0.0;    // covered before, dark after
  std::size_t sites_lost = 0;
  double loss_share() const {
    return covered_before > 0.0 ? uncovered_by_fires / covered_before : 0.0;
  }
};

// Evaluates coverage over the population cells within `margin_m` of any
// fire perimeter (the rest of the CONUS cannot change).
SpatialCoverageResult run_spatial_coverage_loss(
    const World& world, const std::vector<firesim::FirePerimeter>& fires,
    const synth::PopulationSurface& population,
    const SpatialCoverageConfig& config = {});

}  // namespace fa::core

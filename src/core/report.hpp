// Plain-text table rendering for the reproduction harness: every bench
// prints paper-style rows through this, so the output format is uniform.
#pragma once

#include <string>
#include <vector>

#include "fault/diagnostics.hpp"

namespace fa::core {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  // Renders with padded columns, a header underline, and right-aligned
  // numeric-looking cells.
  std::string str() const;
  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Number formatting used across the benches.
std::string fmt_count(std::size_t n);            // 12,345
std::string fmt_double(double v, int precision); // fixed precision
std::string fmt_pct(double fraction, int precision = 1);  // 12.3%

// The coverage footer every bench prints under its tables: how many
// records the analysis actually saw, and what degraded-mode ingestion
// did to the rest. "coverage: 12,345 records (complete)" on a clean run;
// "coverage: 12,332 of 12,345 records (13 dropped (ingest.txr: 13
// dropped))" otherwise.
std::string coverage_line(std::size_t kept, const fault::Diagnostics& diags);

}  // namespace fa::core

#include "core/site_risk.hpp"

namespace fa::core {

SiteRiskResult run_site_risk(const World& world, double merge_dist_m) {
  SiteRiskResult result;
  result.transceivers = world.corpus().size();
  const std::vector<cellnet::CellSite> sites =
      world.corpus().infer_sites(merge_dist_m);
  result.sites = sites.size();
  result.radios_per_site =
      result.sites ? static_cast<double>(result.transceivers) / result.sites
                   : 0.0;

  std::size_t at_risk_radios = 0;
  std::size_t safe_radios = 0;
  std::size_t at_risk_sites = 0;
  std::size_t safe_sites = 0;
  for (const cellnet::CellSite& site : sites) {
    const synth::WhpClass cls = world.whp().class_at(site.position);
    ++result.sites_by_class[static_cast<std::size_t>(cls)];
    if (synth::whp_at_risk(cls)) {
      ++at_risk_sites;
      at_risk_radios += site.transceiver_count;
    } else {
      ++safe_sites;
      safe_radios += site.transceiver_count;
    }
  }
  for (const cellnet::Transceiver& t : world.corpus().transceivers()) {
    ++result.txr_by_class[static_cast<std::size_t>(world.txr_class(t.id))];
  }
  result.radios_per_at_risk_site =
      at_risk_sites ? static_cast<double>(at_risk_radios) / at_risk_sites
                    : 0.0;
  result.radios_per_safe_site =
      safe_sites ? static_cast<double>(safe_radios) / safe_sites : 0.0;
  return result;
}

}  // namespace fa::core

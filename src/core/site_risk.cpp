#include "core/site_risk.hpp"

#include <array>
#include <span>
#include <vector>

#include "exec/exec.hpp"
#include "obs/obs.hpp"

namespace fa::core {

SiteRiskResult run_site_risk(const World& world, double merge_dist_m) {
  const obs::Span span("core.site_risk");
  obs::count("core.site_risk.records", world.corpus().size());
  SiteRiskResult result;
  result.transceivers = world.corpus().size();
  const std::vector<cellnet::CellSite> sites =
      world.corpus().infer_sites(merge_dist_m);
  result.sites = sites.size();
  result.radios_per_site =
      result.sites ? static_cast<double>(result.transceivers) / result.sites
                   : 0.0;

  // Per-site WHP sampling: integer tallies, so the chunked reduction is
  // exactly the serial sweep. Positions are hoisted into a contiguous
  // array and each chunk samples its classes through the batch API
  // (same projection + sample per element, in element order).
  std::vector<geo::LonLat> site_pos(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    site_pos[i] = sites[i].position;
  }
  struct SitePartial {
    std::array<std::size_t, synth::kNumWhpClasses> by_class{};
    std::size_t at_risk_radios = 0;
    std::size_t safe_radios = 0;
    std::size_t at_risk_sites = 0;
    std::size_t safe_sites = 0;
  };
  const SitePartial tally = exec::parallel_reduce(
      sites.size(), SitePartial{},
      [&world, &sites, &site_pos](std::size_t begin, std::size_t end,
                                  SitePartial& acc) {
        thread_local std::vector<synth::WhpClass> classes;
        classes.resize(end - begin);
        world.whp().class_at_batch(
            std::span(site_pos).subspan(begin, end - begin), classes);
        for (std::size_t i = begin; i < end; ++i) {
          const cellnet::CellSite& site = sites[i];
          const synth::WhpClass cls = classes[i - begin];
          ++acc.by_class[static_cast<std::size_t>(cls)];
          if (synth::whp_at_risk(cls)) {
            ++acc.at_risk_sites;
            acc.at_risk_radios += site.transceiver_count;
          } else {
            ++acc.safe_sites;
            acc.safe_radios += site.transceiver_count;
          }
        }
      },
      [](SitePartial& into, SitePartial&& part) {
        for (std::size_t c = 0; c < into.by_class.size(); ++c) {
          into.by_class[c] += part.by_class[c];
        }
        into.at_risk_radios += part.at_risk_radios;
        into.safe_radios += part.safe_radios;
        into.at_risk_sites += part.at_risk_sites;
        into.safe_sites += part.safe_sites;
      },
      {.grain = 1024});
  result.sites_by_class = tally.by_class;

  const std::vector<cellnet::Transceiver>& transceivers =
      world.corpus().transceivers();
  using ClassCounts = std::array<std::size_t, synth::kNumWhpClasses>;
  result.txr_by_class = exec::parallel_reduce(
      transceivers.size(), ClassCounts{},
      [&world, &transceivers](std::size_t begin, std::size_t end,
                              ClassCounts& acc) {
        for (std::size_t i = begin; i < end; ++i) {
          ++acc[static_cast<std::size_t>(world.txr_class(transceivers[i].id))];
        }
      },
      [](ClassCounts& into, ClassCounts&& part) {
        for (std::size_t c = 0; c < into.size(); ++c) into[c] += part[c];
      },
      {.grain = 8192});

  result.radios_per_at_risk_site =
      tally.at_risk_sites
          ? static_cast<double>(tally.at_risk_radios) / tally.at_risk_sites
          : 0.0;
  result.radios_per_safe_site =
      tally.safe_sites
          ? static_cast<double>(tally.safe_radios) / tally.safe_sites
          : 0.0;
  return result;
}

}  // namespace fa::core

// Section 3.4: validate WHP-based risk flags against the (simulated)
// 2019 fire season, and Section 3.8: the half-mile very-high extension
// that lifts validation accuracy.
#pragma once

#include <string>
#include <vector>

#include "core/world.hpp"
#include "firesim/fire.hpp"

namespace fa::core {

struct MissFire {
  std::string name;
  std::size_t misses = 0;  // in-perimeter transceivers not flagged at risk
};

struct ValidationResult {
  std::size_t in_perimeter = 0;  // transceivers inside 2019 perimeters
  std::size_t predicted = 0;     // of those, inside M/H/VH WHP
  double accuracy() const {
    return in_perimeter ? static_cast<double>(predicted) / in_perimeter : 0.0;
  }
  // Fires ranked by how many unflagged transceivers they contained; the
  // paper found 288 of 354 misses inside just two LA-edge fires.
  std::vector<MissFire> top_miss_fires;
  std::size_t misses_in_top2 = 0;
  // Accuracy after discarding the two worst fires (the paper's 84%).
  double accuracy_excluding_top2() const;

  // Retained for the extension study.
  firesim::FireSeason season;
  std::vector<std::uint32_t> hit_ids;   // in-perimeter transceiver ids
  std::vector<std::uint32_t> hit_fire;  // containing fire index
};

// Simulates the 2019 season and scores the WHP flags against it.
// `replicas` > 1 pools several independently-seeded season realizations
// (the paper has exactly one real 2019; replicas stabilize the scaled
// corpus statistic). hit arrays then hold the union across replicas and
// `season` holds the last realization.
ValidationResult run_whp_validation(const World& world, int replicas = 1);

struct ExtensionResult {
  double radius_m = 0.0;
  // Transceiver counts before/after dilating the very-high class.
  std::size_t vh_before = 0;
  std::size_t vh_after = 0;
  std::size_t at_risk_before = 0;
  std::size_t at_risk_after = 0;
  // Re-validation against the same 2019 season.
  std::size_t in_perimeter = 0;
  std::size_t predicted_before = 0;
  std::size_t predicted_after = 0;
  double accuracy_before() const {
    return in_perimeter ? static_cast<double>(predicted_before) / in_perimeter
                        : 0.0;
  }
  double accuracy_after() const {
    return in_perimeter ? static_cast<double>(predicted_after) / in_perimeter
                        : 0.0;
  }
};

// Dilates the very-high WHP class by `radius_m` (paper: 0.5 mi) and
// recounts exposure + validation accuracy.
ExtensionResult run_perimeter_extension(const World& world,
                                        const ValidationResult& validation,
                                        double radius_m = 804.672);

}  // namespace fa::core

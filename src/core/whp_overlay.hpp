// Section 3.3 / Figures 6-9: transceivers per WHP class, overall and by
// state, in absolute counts and per capita.
#pragma once

#include <array>
#include <vector>

#include "core/world.hpp"

namespace fa::core {

struct StateWhpRow {
  int state = -1;
  std::size_t moderate = 0;
  std::size_t high = 0;
  std::size_t very_high = 0;
  std::size_t at_risk() const { return moderate + high + very_high; }
  // Per 1000 residents (computed against real state population, so it is
  // scale-dependent; multiply by corpus_scale for full-corpus rates).
  double per_thousand_m = 0.0;
  double per_thousand_h = 0.0;
  double per_thousand_vh = 0.0;
};

struct WhpOverlayResult {
  // Transceiver counts per WHP class (index = WhpClass).
  std::array<std::size_t, synth::kNumWhpClasses> txr_by_class{};
  std::vector<StateWhpRow> states;  // one row per state, atlas order
  std::size_t total_at_risk() const {
    return txr_by_class[3] + txr_by_class[4] + txr_by_class[5];
  }
  // States ordered by descending at-risk count / per-capita rate.
  std::vector<int> rank_by_at_risk() const;
  std::vector<int> rank_by_per_capita() const;
};

WhpOverlayResult run_whp_overlay(const World& world);

}  // namespace fa::core

// Section 3.7 / Figures 12-13: metro areas ranked by at-risk cell
// infrastructure within a fixed radius of the metro center, plus the
// WUI gradient (risk share as a function of distance from the center).
#pragma once

#include <string>
#include <vector>

#include "core/world.hpp"

namespace fa::core {

struct MetroRiskRow {
  std::string metro;
  std::string state_abbr;
  std::size_t moderate = 0;
  std::size_t high = 0;
  std::size_t very_high = 0;
  std::size_t total() const { return moderate + high + very_high; }
};

struct MetroConfig {
  double radius_m = 120e3;  // metro catchment radius
  double min_metro_population = 1.0e6;  // metros considered
};

// One row per qualifying metro, descending by total at-risk count.
std::vector<MetroRiskRow> run_metro_risk(const World& world,
                                         const MetroConfig& config = {});

// Figure 13's key observation: the share of transceivers at risk rises
// with distance from the metro center. Buckets of `ring_width_m` from 0
// to radius; each entry is {transceivers, at_risk} for that ring.
struct MetroRing {
  double inner_m = 0.0;
  double outer_m = 0.0;
  std::size_t transceivers = 0;
  std::size_t at_risk = 0;
  double at_risk_share() const {
    return transceivers ? static_cast<double>(at_risk) / transceivers : 0.0;
  }
};
std::vector<MetroRing> metro_risk_gradient(const World& world,
                                           geo::LonLat center,
                                           double radius_m = 120e3,
                                           double ring_width_m = 15e3);

}  // namespace fa::core

#include "core/case_study.hpp"

namespace fa::core {

firesim::DirsReport run_california_case_study(
    const World& world, const firesim::OutageSimConfig& config) {
  return firesim::simulate_california_2019(world.corpus(), world.whp(),
                                           world.atlas(),
                                           world.config().seed, config);
}

}  // namespace fa::core

#include "core/case_study.hpp"

#include "obs/obs.hpp"

namespace fa::core {

firesim::DirsReport run_california_case_study(
    const World& world, const firesim::OutageSimConfig& config) {
  const obs::Span span("core.case_study");
  return firesim::simulate_california_2019(world.corpus(), world.whp(),
                                           world.atlas(),
                                           world.config().seed, config);
}

}  // namespace fa::core

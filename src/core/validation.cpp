#include "core/validation.hpp"
#include <cmath>

#include <algorithm>
#include <map>

#include "core/overlay.hpp"
#include "obs/obs.hpp"
#include "raster/morphology.hpp"
#include "synth/firecalib.hpp"

namespace fa::core {

double ValidationResult::accuracy_excluding_top2() const {
  // The paper discards the misses attributable to the two worst fires
  // (Saddle Ridge + Tick) and rescores: predicted / (total - discarded).
  const std::size_t kept_total =
      in_perimeter >= misses_in_top2 ? in_perimeter - misses_in_top2 : 0;
  return kept_total ? static_cast<double>(predicted) / kept_total : 0.0;
}

ValidationResult run_whp_validation(const World& world, int replicas) {
  const obs::Span span("core.whp_validation");
  ValidationResult result;
  std::map<std::string, std::size_t> misses_by_fire;
  for (int rep = 0; rep < std::max(1, replicas); ++rep) {
    firesim::FireSimulator sim(
        world.whp(), world.atlas(),
        world.config().seed ^ (0x2019ULL + 0x9E37ULL * static_cast<std::uint64_t>(rep)));
    result.season = sim.simulate_year(synth::fire_year_2019());
    // The real 2019 record includes the Saddle Ridge and Tick fires at
    // the northern edge of Los Angeles — the two perimeters that held
    // 288 of the paper's 354 validation misses. Anchor their analogs
    // explicitly so the season reproduces that WUI structure.
    {
      firesim::FirePerimeter saddle = sim.spread_named_fire(
          "Saddle Ridge (sim)", {-118.49, 34.33}, 8800.0, 2019,
          static_cast<std::uint32_t>(result.season.fires.size()));
      result.season.simulated_acres += saddle.acres;
      result.season.fires.push_back(std::move(saddle));
      firesim::FirePerimeter tick = sim.spread_named_fire(
          "Tick (sim)", {-118.53, 34.44}, 4600.0, 2019,
          static_cast<std::uint32_t>(result.season.fires.size()));
      result.season.simulated_acres += tick.acres;
      result.season.fires.push_back(std::move(tick));
    }

    const PerimeterHits hits =
        transceivers_in_perimeters_attributed(world, result.season.fires);
    result.in_perimeter += hits.txr_ids.size();
    for (std::size_t i = 0; i < hits.txr_ids.size(); ++i) {
      result.hit_ids.push_back(hits.txr_ids[i]);
      result.hit_fire.push_back(hits.fire_idx[i]);
      if (synth::whp_at_risk(world.txr_class(hits.txr_ids[i]))) {
        ++result.predicted;
      } else {
        ++misses_by_fire[result.season.fires[hits.fire_idx[i]].name];
      }
    }
  }
  for (const auto& [fire, misses] : misses_by_fire) {
    result.top_miss_fires.push_back({fire, misses});
  }
  std::sort(result.top_miss_fires.begin(), result.top_miss_fires.end(),
            [](const MissFire& a, const MissFire& b) {
              return a.misses > b.misses;
            });
  for (std::size_t i = 0; i < result.top_miss_fires.size() && i < 2; ++i) {
    result.misses_in_top2 += result.top_miss_fires[i].misses;
  }
  return result;
}

ExtensionResult run_perimeter_extension(const World& world,
                                        const ValidationResult& validation,
                                        double radius_m) {
  const obs::Span span("core.perimeter_extension");
  ExtensionResult result;
  result.radius_m = radius_m;

  // Dilate the very-high class on the WHP grid. The operator is discrete:
  // a physical radius expands the class by ceil(radius / cell) whole
  // cells, so it stays meaningful on research grids coarser than the
  // 270 m USFS product (where 0.5 mi is exactly the paper's 3 cells).
  const raster::MaskRaster vh_mask = raster::class_mask(
      world.whp().grid(), static_cast<std::uint8_t>(synth::WhpClass::kVeryHigh));
  const double cell = world.whp().grid().geom().cell_w;
  const double effective_m =
      std::ceil(radius_m / cell) * cell + 0.01 * cell;
  const raster::MaskRaster vh_ext = raster::dilate_mask(vh_mask, effective_m);

  const auto& proj = world.whp().projection();
  const auto in_ext = [&](geo::LonLat p) {
    return vh_ext.sample(proj.forward(p), 0) != 0;
  };

  for (const cellnet::Transceiver& t : world.corpus().transceivers()) {
    const synth::WhpClass cls = world.txr_class(t.id);
    const bool risk_before = synth::whp_at_risk(cls);
    if (cls == synth::WhpClass::kVeryHigh) ++result.vh_before;
    if (risk_before) ++result.at_risk_before;
    if (in_ext(t.position)) {
      ++result.vh_after;
      if (!risk_before) ++result.at_risk_after;  // newly flagged
    }
  }
  result.at_risk_after += result.at_risk_before;

  // Re-validate against the cached 2019 hits.
  result.in_perimeter = validation.in_perimeter;
  for (const std::uint32_t id : validation.hit_ids) {
    const bool before = synth::whp_at_risk(world.txr_class(id));
    if (before) ++result.predicted_before;
    if (before || in_ext(world.corpus()[id].position)) {
      ++result.predicted_after;
    }
  }
  return result;
}

}  // namespace fa::core

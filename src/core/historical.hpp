// Section 3.1 / Table 1: per-year fires, acreage, and transceivers inside
// wildfire perimeters, 2000-2018.
#pragma once

#include <span>
#include <vector>

#include "core/world.hpp"
#include "firesim/fire.hpp"
#include "synth/firecalib.hpp"

namespace fa::core {

struct HistoricalYearRow {
  int year = 0;
  int fires = 0;                     // total ignitions (reported)
  double acres_millions = 0.0;       // simulated burned area
  std::size_t txr_in_perimeters = 0; // measured by overlay (scaled corpus)
  double txr_per_macre = 0.0;        // transceivers per million acres
  int paper_txr = 0;                 // Table 1 reference value (full corpus)
};

struct HistoricalResult {
  std::vector<HistoricalYearRow> rows;  // ascending year
  std::size_t total_txr = 0;
  // Scale factor to compare measured counts against the paper's full-
  // corpus numbers (== config.corpus_scale).
  double corpus_scale = 1.0;
};

// Simulates every season in `years` and overlays it on the corpus.
HistoricalResult run_historical_overlay(
    const World& world, std::span<const synth::FireYearStats> years,
    const firesim::FireSimConfig& fire_config = {});

// Figure 3's geography, quantified: burned acreage attributed to the
// ignition state, summed over a simulated multi-year record.
struct BurnedByStateRow {
  int state = -1;
  double acres = 0.0;
  std::size_t fires = 0;
};
// Rows ordered by descending acreage; `west_share` is the fraction of
// attributed acreage igniting west of -100 degrees longitude.
struct BurnedByStateResult {
  std::vector<BurnedByStateRow> rows;
  double total_acres = 0.0;
  double west_share = 0.0;
};
BurnedByStateResult burned_by_state(const World& world,
                                    std::span<const synth::FireYearStats> years,
                                    const firesim::FireSimConfig& config = {});

}  // namespace fa::core

// Section 3.9 / Figures 14-15: future wildfire activity in the Salt Lake
// City - Denver corridor under the Littell et al. ecoregion projections,
// overlaid with current cellular infrastructure and WHP risk.
#pragma once

#include <string>
#include <vector>

#include "core/world.hpp"

namespace fa::core {

struct EcoregionRiskRow {
  std::string name;
  double delta_burn_pct_2040 = 0.0;  // projected change in area burned
  std::size_t transceivers = 0;      // current infrastructure in region
  std::size_t at_risk = 0;           // of those, in M/H/VH WHP today
  // Simple exposure index: current at-risk count scaled by the projected
  // burn-area change (1 + delta/100, floored at 0).
  double projected_exposure() const {
    const double mult = std::max(0.0, 1.0 + delta_burn_pct_2040 / 100.0);
    return static_cast<double>(at_risk) * mult;
  }
};

struct ClimateResult {
  std::vector<EcoregionRiskRow> rows;   // atlas ecoregion order
  std::size_t corridor_transceivers = 0;
  geo::BBox corridor;                   // lon/lat extent of the analysis
};

ClimateResult run_climate_projection(const World& world);

// Extension: CONUS-wide 2040 exposure projection. Each at-risk western
// transceiver is scaled by its ecoregion's burn-area delta; eastern
// transceivers (outside the Littell coverage) keep today's exposure.
struct FutureStateRow {
  int state = -1;
  std::size_t at_risk_now = 0;
  double at_risk_2040 = 0.0;   // exposure index, comparable to at_risk_now
  double growth() const {
    return at_risk_now ? at_risk_2040 / static_cast<double>(at_risk_now)
                       : 1.0;
  }
};

struct FutureExposureResult {
  std::vector<FutureStateRow> states;  // atlas order
  std::size_t at_risk_now = 0;
  double at_risk_2040 = 0.0;
  // States ranked by projected 2040 exposure.
  std::vector<int> rank() const;
};

FutureExposureResult run_future_exposure(const World& world);

}  // namespace fa::core

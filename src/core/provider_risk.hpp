// Section 3.5 / Tables 2-3: at-risk infrastructure per service provider
// and per radio technology.
#pragma once

#include <array>

#include "core/world.hpp"

namespace fa::core {

struct ProviderRiskRow {
  cellnet::Provider provider{};
  std::size_t fleet = 0;      // total transceivers operated
  std::size_t moderate = 0;   // in WHP moderate
  std::size_t high = 0;
  std::size_t very_high = 0;
  double pct_moderate() const {
    return fleet ? 100.0 * static_cast<double>(moderate) / fleet : 0.0;
  }
  double pct_high() const {
    return fleet ? 100.0 * static_cast<double>(high) / fleet : 0.0;
  }
  double pct_very_high() const {
    return fleet ? 100.0 * static_cast<double>(very_high) / fleet : 0.0;
  }
};

struct ProviderRiskResult {
  std::array<ProviderRiskRow, cellnet::kNumProviders> rows{};
  // Distinct regional brands with at least one at-risk transceiver (the
  // paper footnotes 46).
  std::size_t regional_brands_at_risk = 0;
};

ProviderRiskResult run_provider_risk(const World& world);

struct RadioRiskRow {
  cellnet::RadioType radio{};
  std::size_t very_high = 0;
  std::size_t high = 0;
  std::size_t moderate = 0;
  std::size_t total() const { return very_high + high + moderate; }
};

struct RadioRiskResult {
  std::array<RadioRiskRow, cellnet::kNumRadioTypes> rows{};
};

RadioRiskResult run_radio_risk(const World& world);

}  // namespace fa::core

// The shared analysis entry point: one AnalysisContext owns one World
// plus the options every analysis consumes, so benches, examples, and
// embedding applications stop re-declaring the World::build +
// FireSimConfig boilerplate — and a scenario is built once per process.
#pragma once

#include <optional>
#include <span>

#include "core/world.hpp"
#include "firesim/fire.hpp"
#include "obs/obs.hpp"
#include "synth/firecalib.hpp"

namespace fa::core {

class AnalysisContext {
 public:
  explicit AnalysisContext(synth::ScenarioConfig config)
      : config_(config) {}

  const synth::ScenarioConfig& config() const { return config_; }

  // The world for this scenario, built on first use and cached for the
  // lifetime of the context. Ingestion runs under `recovery_policy` with
  // `diagnostics()` as the sink; an unbuildable scenario (Strict-mode
  // rejection, injected synth failure) raises fault::IoError.
  const World& world() const {
    if (!world_) {
      World::BuildOptions options;
      options.policy = recovery_policy;
      options.diagnostics = &diagnostics_;
      world_.emplace(World::build(config_, options).take());
    }
    return *world_;
  }
  bool built() const { return world_.has_value(); }

  // Ingestion diagnostics accumulated by the world build (empty until
  // built; reset if the world is rebuilt).
  const fault::Diagnostics& diagnostics() const { return diagnostics_; }

  // The observability registry every pipeline stage records into (the
  // process-wide one — world build, overlays, io, and exec all share
  // it). Exposed so tests and embedders can assert on instrumentation
  // or export a profile; see obs::to_json / obs::to_chrome_trace.
  obs::Registry& observability() const { return obs::Registry::global(); }

  // Options shared across analyses. Mutate before the relevant run_*
  // call; the world itself depends only on `config()` and, for degraded
  // ingestion, on `recovery_policy`.
  firesim::FireSimConfig fire_config;
  fault::RecoveryPolicy recovery_policy = fault::RecoveryPolicy::kQuarantine;

  // The paper's Table-1 fire seasons (2000-2018).
  std::span<const synth::FireYearStats> historical_years() const {
    return synth::historical_fire_years();
  }

  // Process-wide context: the first call builds, subsequent calls with
  // the same config reuse the cached world, and a different config
  // replaces it (one live scenario per process — the bench/example
  // pattern). Not thread-safe; call from the main thread.
  static AnalysisContext& shared(const synth::ScenarioConfig& config);

 private:
  synth::ScenarioConfig config_;
  mutable std::optional<World> world_;
  mutable fault::Diagnostics diagnostics_;
};

}  // namespace fa::core

#include "core/roadside.hpp"

#include "geo/geodesy.hpp"
#include "obs/obs.hpp"
#include "synth/roads.hpp"

namespace fa::core {

RoadsideResult run_roadside_shadow(const World& world, std::size_t stride,
                                   const RoadsideConfig& config) {
  const obs::Span span("core.roadside_shadow");
  RoadsideResult result;
  const synth::RoadNetwork& roads = synth::RoadNetwork::get();
  stride = std::max<std::size_t>(1, stride);

  const auto shadowed_by_neighborhood = [&](geo::LonLat p) {
    for (int k = 0; k < config.angular_samples; ++k) {
      const double bearing = 360.0 * k / config.angular_samples;
      const geo::LonLat sample =
          geo::destination(p, bearing, config.shadow_reach_m);
      if (synth::whp_at_risk(world.whp().class_at(sample))) return true;
    }
    return false;
  };

  for (std::size_t i = 0; i < world.corpus().size(); i += stride) {
    const cellnet::Transceiver& t = world.corpus()[i];
    const bool flagged =
        synth::whp_at_risk(world.txr_class(t.id));
    const bool near_road =
        roads.nearest(t.position).distance_m <= config.roadside_m;
    if (near_road) {
      ++result.roadside;
      if (flagged) {
        ++result.roadside_flagged;
      } else if (shadowed_by_neighborhood(t.position)) {
        ++result.roadside_shadowed;
      }
    } else {
      ++result.interior;
      if (flagged) ++result.interior_flagged;
    }
  }
  return result;
}

}  // namespace fa::core

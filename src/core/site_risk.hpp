// Section 2.2.3 ablation: transceivers vs towers.
//
// The paper analyses transceivers because tower identity can only be
// inferred from noisy crowd-sourced positions. This module runs the
// analysis at the inferred-site level anyway and quantifies how the two
// views differ — the robustness check the paper's methodology section
// implies but could not run against provider ground truth.
#pragma once

#include <array>

#include "core/world.hpp"

namespace fa::core {

struct SiteRiskResult {
  std::size_t sites = 0;                // inferred cell sites
  std::size_t transceivers = 0;         // corpus size
  double radios_per_site = 0.0;
  // Counts per WHP class, site-level and transceiver-level (index =
  // WhpClass).
  std::array<std::size_t, synth::kNumWhpClasses> sites_by_class{};
  std::array<std::size_t, synth::kNumWhpClasses> txr_by_class{};
  std::size_t sites_at_risk() const {
    return sites_by_class[3] + sites_by_class[4] + sites_by_class[5];
  }
  std::size_t txr_at_risk() const {
    return txr_by_class[3] + txr_by_class[4] + txr_by_class[5];
  }
  // Radios per at-risk site vs per safe site: at-risk sites are more
  // rural and carry fewer tenants, so the transceiver view *undercounts*
  // relative exposure of physical structures.
  double radios_per_at_risk_site = 0.0;
  double radios_per_safe_site = 0.0;
};

SiteRiskResult run_site_risk(const World& world, double merge_dist_m = 120.0);

}  // namespace fa::core

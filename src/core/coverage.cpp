#include "core/coverage.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/overlay.hpp"
#include "geo/geodesy.hpp"
#include "geo/prepared.hpp"
#include "index/grid_index.hpp"
#include "obs/obs.hpp"

namespace fa::core {

double coverage_loss_share(double lost_txr_share,
                           const CoverageConfig& config) {
  const double clamped = std::clamp(lost_txr_share, 0.0, 1.0);
  if (clamped <= config.redundancy) return 0.0;
  const double over =
      (clamped - config.redundancy) / (1.0 - config.redundancy);
  return std::pow(over, config.degradation_exponent);
}

CoverageResult run_coverage_loss(
    const World& world, const std::vector<firesim::FirePerimeter>& fires,
    const CoverageConfig& config) {
  const obs::Span span("core.coverage_loss");
  CoverageResult result;

  // County totals (denominator) and losses (numerator).
  std::map<int, std::size_t> total_by_county;
  for (std::uint32_t id = 0; id < world.corpus().size(); ++id) {
    const int county = world.txr_county(id);
    if (county >= 0) ++total_by_county[county];
  }
  std::map<int, std::size_t> lost_by_county;
  for (const std::uint32_t id : transceivers_in_perimeters(world, fires)) {
    const int county = world.txr_county(id);
    if (county >= 0) ++lost_by_county[county];
    ++result.transceivers_lost;
  }

  for (const auto& [county, lost] : lost_by_county) {
    CountyCoverageRow row;
    row.county = county;
    const synth::County& info = world.counties().county(county);
    row.name = info.name;
    row.state_abbr = std::string{
        world.atlas().states()[static_cast<std::size_t>(info.state)].abbr};
    row.population = info.population;
    row.transceivers = total_by_county[county];
    row.lost = lost;
    row.users_affected =
        info.population * coverage_loss_share(row.lost_share(), config);
    result.total_users_affected += row.users_affected;
    result.counties.push_back(std::move(row));
  }
  std::sort(result.counties.begin(), result.counties.end(),
            [](const CountyCoverageRow& a, const CountyCoverageRow& b) {
              return a.users_affected != b.users_affected
                         ? a.users_affected > b.users_affected
                         : a.lost > b.lost;
            });
  return result;
}

SpatialCoverageResult run_spatial_coverage_loss(
    const World& world, const std::vector<firesim::FirePerimeter>& fires,
    const synth::PopulationSurface& population,
    const SpatialCoverageConfig& config) {
  const obs::Span span("core.spatial_coverage");
  SpatialCoverageResult result;

  // Sites and their status after the fires: one batch containment pass
  // per fire over the site SoA arrays, OR-ed into the lost mask — the
  // same bit the scalar first-containing-fire loop would set.
  const std::vector<cellnet::CellSite> sites =
      world.corpus().infer_sites(120.0);
  std::vector<double> site_x(sites.size());
  std::vector<double> site_y(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const geo::Vec2 p = sites[i].position.as_vec();
    site_x[i] = p.x;
    site_y[i] = p.y;
  }
  std::vector<std::uint8_t> site_lost(sites.size(), 0);
  std::vector<std::uint8_t> in_fire(sites.size());
  for (const firesim::FirePerimeter& fire : fires) {
    if (fire.perimeter.empty()) continue;
    const geo::PreparedMultiPolygon prepared(fire.perimeter);
    prepared.contains_batch(site_x, site_y, in_fire);
    for (std::size_t i = 0; i < sites.size(); ++i) site_lost[i] |= in_fire[i];
  }
  for (const std::uint8_t lost : site_lost) {
    result.sites_lost += lost;
  }

  // Spatial index over site positions (lon/lat plane) for disc queries.
  std::vector<geo::Vec2> site_points;
  site_points.reserve(sites.size());
  for (const cellnet::CellSite& s : sites) {
    site_points.push_back(s.position.as_vec());
  }
  const index::GridIndex site_index(site_points,
                                    world.atlas().conus_bbox().inflated(0.5),
                                    256, 128);

  // Analysis region: population cells within service radius of a fire
  // (coverage can only change there).
  const auto& geom = population.grid().geom();
  const auto& proj = population.projection();
  const double margin = config.service_radius_m + geom.cell_w;
  std::vector<geo::BBox> fire_boxes;  // in Albers metres
  fire_boxes.reserve(fires.size());
  for (const firesim::FirePerimeter& fire : fires) {
    if (fire.perimeter.empty()) continue;
    geo::BBox box;  // project the perimeter bbox corners
    const geo::BBox ll = fire.perimeter.bbox();
    box.expand(proj.forward({ll.min_x, ll.min_y}));
    box.expand(proj.forward({ll.min_x, ll.max_y}));
    box.expand(proj.forward({ll.max_x, ll.min_y}));
    box.expand(proj.forward({ll.max_x, ll.max_y}));
    fire_boxes.push_back(box.inflated(margin));
  }

  const auto covered_by = [&](geo::LonLat p, bool after) {
    // Any functioning site within the service radius covers the cell.
    const double dlat = config.service_radius_m / geo::meters_per_deg_lat();
    const double dlon =
        config.service_radius_m / geo::meters_per_deg_lon(p.lat);
    bool covered = false;
    site_index.query(
        geo::BBox{p.lon - dlon, p.lat - dlat, p.lon + dlon, p.lat + dlat},
        [&](std::uint32_t id, geo::Vec2 q) {
          if (covered) return;
          if (after && site_lost[id] != 0) return;
          if (geo::haversine_m(p, geo::LonLat::from_vec(q)) <=
              config.service_radius_m) {
            covered = true;
          }
        });
    return covered;
  };

  for (int r = 0; r < geom.rows; ++r) {
    for (int c = 0; c < geom.cols; ++c) {
      const float persons = population.grid().at(c, r);
      if (persons <= 0.0f) continue;
      const geo::Vec2 center = geom.cell_center(c, r);
      bool near_fire = false;
      for (const geo::BBox& box : fire_boxes) {
        if (box.contains(center)) {
          near_fire = true;
          break;
        }
      }
      if (!near_fire) continue;
      result.population_analyzed += persons;
      const geo::LonLat ll = proj.inverse(center);
      if (!covered_by(ll, /*after=*/false)) continue;
      result.covered_before += persons;
      if (!covered_by(ll, /*after=*/true)) {
        result.uncovered_by_fires += persons;
      }
    }
  }
  return result;
}

}  // namespace fa::core

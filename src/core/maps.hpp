// Quick-look map rendering for the figure reproductions: ASCII density
// fields for the terminal and PGM/GeoJSON exports for GIS tools.
#pragma once

#include <span>
#include <string>

#include "core/world.hpp"
#include "raster/raster.hpp"

namespace fa::core {

// Point-density map over `box` rendered as ASCII (darker glyph = more
// points per cell). Rows are emitted north-up.
std::string render_ascii_density(std::span<const geo::Vec2> points,
                                 const geo::BBox& box, int cols = 100,
                                 int rows = 34);

// Class raster rendered with one glyph per class (index into `glyphs`,
// clamped). North-up.
std::string render_ascii_classes(const raster::ClassRaster& grid,
                                 std::string_view glyphs, int cols = 100,
                                 int rows = 34);

// Binary PGM (P5) export of a density field for external viewers.
void save_density_pgm(const std::string& path,
                      std::span<const geo::Vec2> points, const geo::BBox& box,
                      int cols, int rows);

}  // namespace fa::core

// Section 3.11 extension: wildfire escape probability.
//
// The WHP scores the chance that a fire *occurs* at a location; it does
// not model a fire starting in high-risk terrain and *spreading* into
// lower-risk terrain. The paper proposes closing that gap with the
// highly-optimized-tolerance (HOT) framework of Moritz et al., where the
// probability that a fire escapes initial containment and reaches burned
// area A follows a power law P(size >= A) ~ (A0 / A)^alpha.
//
// This module implements that extension: each transceiver's escape-
// weighted risk integrates, over rings of increasing radius, the chance
// that a fire ignites in the surrounding terrain (hazard-weighted) AND
// grows large enough to reach the transceiver.
#pragma once

#include <vector>

#include "core/world.hpp"

namespace fa::core {

struct EscapeConfig {
  double alpha = 0.62;        // HOT size-distribution exponent
  double a0_acres = 300.0;    // containment scale (escape threshold size)
  double max_radius_m = 24e3; // furthest ignition considered
  int radial_steps = 4;       // rings sampled between 0 and max_radius
  int angular_steps = 8;      // samples per ring
};

// Escape-weighted risk score for one location (dimensionless; only the
// ordering and ratios are meaningful).
double escape_risk_score(const World& world, geo::LonLat p,
                         const EscapeConfig& config = {});

struct EscapeStateRow {
  int state = -1;
  double mean_score = 0.0;   // over the state's transceivers
  std::size_t transceivers = 0;
};

struct EscapeResult {
  // Per-transceiver scores, parallel to the corpus (subsampled corpora
  // carry a stride: scores[i] belongs to corpus[i * stride]).
  std::vector<double> scores;
  std::size_t stride = 1;
  std::vector<EscapeStateRow> states;  // atlas order
  // State ranking by mean escape-weighted score (descending).
  std::vector<int> rank() const;
};

// Scores every stride-th transceiver (the score is a 32-sample terrain
// integral; stride keeps full-corpus runs cheap).
EscapeResult run_escape_risk(const World& world, std::size_t stride = 1,
                             const EscapeConfig& config = {});

// Agreement between the plain-WHP state ranking and the escape-weighted
// one: Spearman rank correlation over states with any transceivers.
double escape_vs_whp_rank_correlation(const World& world,
                                      const EscapeResult& escape);

}  // namespace fa::core

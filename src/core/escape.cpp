#include "core/escape.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/whp_overlay.hpp"
#include "geo/geodesy.hpp"
#include "obs/obs.hpp"

namespace fa::core {

namespace {

// Relative ignition intensity per hazard class (mirrors the fire
// simulator's weights; duplicated as a policy of this model rather than a
// shared constant because the two models may diverge independently).
double ignition_intensity(synth::WhpClass cls) {
  switch (cls) {
    case synth::WhpClass::kNonBurnable: return 0.0;
    case synth::WhpClass::kVeryLow: return 0.4;
    case synth::WhpClass::kLow: return 1.2;
    case synth::WhpClass::kModerate: return 4.0;
    case synth::WhpClass::kHigh: return 9.0;
    case synth::WhpClass::kVeryHigh: return 16.0;
  }
  return 0.0;
}

}  // namespace

double escape_risk_score(const World& world, geo::LonLat p,
                         const EscapeConfig& config) {
  // Ring integral: a fire igniting at distance r reaches p only if its
  // burned area exceeds ~pi r^2; under HOT that has probability
  // (A0 / A(r))^alpha (clamped at 1 inside the containment scale).
  double score = 0.0;
  const double ring_step = config.max_radius_m / config.radial_steps;
  for (int k = 0; k < config.radial_steps; ++k) {
    const double radius = (k + 0.5) * ring_step;
    const double area_acres =
        std::numbers::pi * radius * radius / geo::kSquareMetersPerAcre;
    const double p_escape =
        std::min(1.0, std::pow(config.a0_acres / area_acres, config.alpha));
    double ring_intensity = 0.0;
    for (int a = 0; a < config.angular_steps; ++a) {
      const double bearing = 360.0 * a / config.angular_steps +
                             15.0 * k;  // de-align rings
      const geo::LonLat sample = geo::destination(p, bearing, radius);
      ring_intensity += ignition_intensity(world.whp().class_at(sample));
    }
    // Ring area grows with radius: weight by annulus width x circumference.
    const double annulus_weight = radius * ring_step;
    score += p_escape * annulus_weight * ring_intensity / config.angular_steps;
  }
  // Normalize so scores are O(1) for a uniformly very-high neighborhood.
  const double norm = config.max_radius_m * config.max_radius_m * 16.0 / 2.0;
  return score / norm * 16.0;
}

EscapeResult run_escape_risk(const World& world, std::size_t stride,
                             const EscapeConfig& config) {
  const obs::Span span("core.escape_risk");
  EscapeResult result;
  result.stride = std::max<std::size_t>(1, stride);
  result.states.resize(static_cast<std::size_t>(world.atlas().num_states()));
  for (std::size_t s = 0; s < result.states.size(); ++s) {
    result.states[s].state = static_cast<int>(s);
  }
  for (std::size_t i = 0; i < world.corpus().size(); i += result.stride) {
    const cellnet::Transceiver& t = world.corpus()[i];
    const double score = escape_risk_score(world, t.position, config);
    result.scores.push_back(score);
    if (t.state >= 0) {
      EscapeStateRow& row = result.states[static_cast<std::size_t>(t.state)];
      row.mean_score += score;
      ++row.transceivers;
    }
  }
  for (EscapeStateRow& row : result.states) {
    if (row.transceivers > 0) {
      row.mean_score /= static_cast<double>(row.transceivers);
    }
  }
  return result;
}

std::vector<int> EscapeResult::rank() const {
  std::vector<int> order(states.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](int a, int b) {
    return states[static_cast<std::size_t>(a)].mean_score >
           states[static_cast<std::size_t>(b)].mean_score;
  });
  return order;
}

double escape_vs_whp_rank_correlation(const World& world,
                                      const EscapeResult& escape) {
  const WhpOverlayResult overlay = run_whp_overlay(world);
  // Ranks over states that hold transceivers in both views.
  std::vector<int> states;
  for (const EscapeStateRow& row : escape.states) {
    if (row.transceivers > 0) states.push_back(row.state);
  }
  const auto rank_of = [&states](const std::vector<int>& order) {
    std::vector<double> rank(states.size());
    for (std::size_t i = 0; i < states.size(); ++i) {
      const auto it = std::find(order.begin(), order.end(), states[i]);
      rank[i] = static_cast<double>(std::distance(order.begin(), it));
    }
    return rank;
  };
  const std::vector<double> a = rank_of(overlay.rank_by_at_risk());
  const std::vector<double> b = rank_of(escape.rank());
  // Spearman = Pearson over ranks.
  const double n = static_cast<double>(states.size());
  if (n < 2.0) return 1.0;
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < states.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < states.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  return va > 0.0 && vb > 0.0 ? cov / std::sqrt(va * vb) : 1.0;
}

}  // namespace fa::core

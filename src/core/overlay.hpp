// Shared overlay primitive: which transceivers fall inside a set of fire
// perimeters. Used by the historical analysis (Table 1), the WHP
// validation (Section 3.4) and the extension study (Section 3.8).
#pragma once

#include <vector>

#include "core/world.hpp"
#include "firesim/fire.hpp"

namespace fa::core {

// Ids of corpus transceivers inside any of `fires` (each id once).
std::vector<std::uint32_t> transceivers_in_perimeters(
    const World& world, const std::vector<firesim::FirePerimeter>& fires);

// For per-fire attribution: the fire index (into `fires`) containing each
// hit, parallel to the returned ids (first containing fire wins).
struct PerimeterHits {
  std::vector<std::uint32_t> txr_ids;
  std::vector<std::uint32_t> fire_idx;
};
PerimeterHits transceivers_in_perimeters_attributed(
    const World& world, const std::vector<firesim::FirePerimeter>& fires);

}  // namespace fa::core

// The analysis world: one bundle holding the synthetic data products the
// paper overlays (transceiver corpus, WHP surface, county layer) plus the
// derived caches every analysis reuses (per-transceiver hazard class and
// a spatial index over transceiver positions).
#pragma once

#include <memory>

#include "cellnet/corpus.hpp"
#include "fault/diagnostics.hpp"
#include "index/grid_index.hpp"
#include "synth/cells.hpp"
#include "synth/counties.hpp"
#include "synth/hazard.hpp"
#include "synth/scenario.hpp"
#include "synth/usatlas.hpp"

namespace fa::store {
struct Access;  // snapshot codec (store/codec.cpp)
}
namespace fa::delta {
struct Applier;  // incremental epoch builder (delta/apply.cpp)
}

namespace fa::core {

class World {
 public:
  // Degraded-mode build controls. Ingestion validates every transceiver
  // record (after the "ingest.txr" fault-injection seam has had its
  // chance to corrupt them); the policy decides what a malformed record
  // does to the build:
  //   Strict      first malformed record fails the build (Status code
  //               kOutOfRange, offset = record id, source "ingest.txr")
  //   Quarantine  malformed records are dropped and counted; ids are
  //               re-densified so downstream caches stay dense
  //   BestEffort  finite out-of-range positions are clamped into the
  //               lon/lat domain (counted as repaired); the rest drop
  struct BuildOptions {
    fault::RecoveryPolicy policy = fault::RecoveryPolicy::kQuarantine;
    fault::Diagnostics* diagnostics = nullptr;  // optional sink
  };

  // Generates every layer from `config` (deterministic). The throwing
  // form is the legacy entry point: Quarantine semantics, raises
  // fault::IoError on an unbuildable scenario (e.g. an injected synth
  // layer failure).
  static World build(const synth::ScenarioConfig& config);
  static fault::Result<World> build(const synth::ScenarioConfig& config,
                                    const BuildOptions& options);

  // Builds the derived layers around an externally supplied corpus (same
  // validation/quarantine pipeline, no generation and no ingest
  // corruption stage). This is how a pre-filtered corpus is replayed to
  // prove Quarantine equivalence.
  static fault::Result<World> from_corpus(cellnet::CellCorpus corpus,
                                          const synth::ScenarioConfig& config,
                                          const BuildOptions& options);

  // Builds the derived layers around explicitly supplied *final state*
  // (corpus + WHP surface + county layer), skipping synthesis entirely.
  // This is the from-scratch reference derivation the delta-epoch
  // equivalence harness compares against: every cache, the spatial
  // index and the aggregates are recomputed in full from the parts.
  // Ingest counters are 0 by definition (the parts are the final,
  // already-filtered state).
  static fault::Result<World> from_parts(
      cellnet::CellCorpus corpus,
      std::shared_ptr<const synth::WhpModel> whp,
      std::shared_ptr<const synth::CountyMap> counties,
      const synth::ScenarioConfig& config, const BuildOptions& options);

  const synth::ScenarioConfig& config() const { return config_; }
  const synth::UsAtlas& atlas() const { return *atlas_; }
  const synth::WhpModel& whp() const { return *whp_; }
  const cellnet::CellCorpus& corpus() const { return corpus_; }
  const synth::CountyMap& counties() const { return *counties_; }

  // Shared immutable layers. A delta-built successor epoch shares the
  // pointers for every layer the event batch left untouched (the
  // structure-sharing contract bench_delta_ingest relies on); tests
  // assert pointer equality to pin that sharing.
  const std::shared_ptr<const synth::WhpModel>& whp_ptr() const {
    return whp_;
  }
  const std::shared_ptr<const synth::CountyMap>& counties_ptr() const {
    return counties_;
  }

  // Records dropped (Strict/Quarantine) or repaired (BestEffort) by
  // ingestion validation for this build.
  std::size_t ingest_dropped() const { return ingest_dropped_; }
  std::size_t ingest_repaired() const { return ingest_repaired_; }

  // Cached WHP class of each transceiver (index = transceiver id).
  synth::WhpClass txr_class(std::uint32_t id) const {
    return static_cast<synth::WhpClass>(txr_class_[id]);
  }
  // Cached county of each transceiver (-1 if unresolved).
  int txr_county(std::uint32_t id) const { return txr_county_[id]; }
  // Cached service provider of each transceiver, resolved once at build
  // through provider_registry() (MCC/MNC lookups off the query path —
  // the serve layer answers provider queries against this cache).
  cellnet::Provider txr_provider(std::uint32_t id) const {
    return static_cast<cellnet::Provider>(txr_provider_[id]);
  }
  const cellnet::ProviderRegistry& provider_registry() const {
    return providers_;
  }

  // Lon/lat grid index over all transceiver positions.
  const index::GridIndex& txr_index() const { return txr_index_; }

 private:
  // The snapshot codec restores the private caches verbatim from disk
  // instead of re-deriving them (store/codec.cpp); the delta applier
  // writes incrementally maintained caches directly (delta/apply.cpp).
  friend struct fa::store::Access;
  friend struct fa::delta::Applier;

  // Shared tail of every build path: classification + spatial index.
  void finalize();

  synth::ScenarioConfig config_;
  const synth::UsAtlas* atlas_ = nullptr;
  std::shared_ptr<const synth::WhpModel> whp_;
  cellnet::CellCorpus corpus_;
  std::shared_ptr<const synth::CountyMap> counties_;
  std::size_t ingest_dropped_ = 0;
  std::size_t ingest_repaired_ = 0;
  cellnet::ProviderRegistry providers_;
  std::vector<std::uint8_t> txr_class_;
  std::vector<std::int32_t> txr_county_;
  std::vector<std::uint8_t> txr_provider_;
  index::GridIndex txr_index_;
};

}  // namespace fa::core

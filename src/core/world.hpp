// The analysis world: one bundle holding the synthetic data products the
// paper overlays (transceiver corpus, WHP surface, county layer) plus the
// derived caches every analysis reuses (per-transceiver hazard class and
// a spatial index over transceiver positions).
#pragma once

#include <memory>

#include "cellnet/corpus.hpp"
#include "index/grid_index.hpp"
#include "synth/cells.hpp"
#include "synth/counties.hpp"
#include "synth/hazard.hpp"
#include "synth/scenario.hpp"
#include "synth/usatlas.hpp"

namespace fa::core {

class World {
 public:
  // Generates every layer from `config` (deterministic).
  static World build(const synth::ScenarioConfig& config);

  const synth::ScenarioConfig& config() const { return config_; }
  const synth::UsAtlas& atlas() const { return *atlas_; }
  const synth::WhpModel& whp() const { return whp_; }
  const cellnet::CellCorpus& corpus() const { return corpus_; }
  const synth::CountyMap& counties() const { return counties_; }

  // Cached WHP class of each transceiver (index = transceiver id).
  synth::WhpClass txr_class(std::uint32_t id) const {
    return static_cast<synth::WhpClass>(txr_class_[id]);
  }
  // Cached county of each transceiver (-1 if unresolved).
  int txr_county(std::uint32_t id) const { return txr_county_[id]; }

  // Lon/lat grid index over all transceiver positions.
  const index::GridIndex& txr_index() const { return txr_index_; }

 private:
  synth::ScenarioConfig config_;
  const synth::UsAtlas* atlas_ = nullptr;
  synth::WhpModel whp_;
  cellnet::CellCorpus corpus_;
  synth::CountyMap counties_;
  std::vector<std::uint8_t> txr_class_;
  std::vector<std::int32_t> txr_county_;
  index::GridIndex txr_index_;
};

}  // namespace fa::core

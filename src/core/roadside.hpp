// Roadside shadow analysis — the mechanism behind the paper's Section 3.4
// validation gap, measured directly.
//
// WHP classifies managed road corridors as low/non-burnable, yet towers
// stand along those corridors and fires burning the surrounding terrain
// take them with it. A transceiver is "shadowed" when its own cell is
// below moderate but at-risk terrain sits within a given reach — exactly
// the infrastructure the plain WHP flag misses and the Section 3.8
// extension is designed to recover.
#pragma once

#include "core/world.hpp"

namespace fa::core {

struct RoadsideConfig {
  double roadside_m = 3000.0;   // "roadside" = within this of a corridor
  double shadow_reach_m = 2700.0;  // neighborhood scanned for at-risk cells
  int angular_samples = 8;
};

struct RoadsideResult {
  std::size_t roadside = 0;          // transceivers near a corridor
  std::size_t roadside_flagged = 0;  // of those, themselves in M/H/VH
  std::size_t roadside_shadowed = 0; // unflagged but at-risk terrain nearby
  std::size_t interior = 0;          // everyone else
  std::size_t interior_flagged = 0;

  double roadside_flag_rate() const {
    return roadside ? static_cast<double>(roadside_flagged) / roadside : 0.0;
  }
  double interior_flag_rate() const {
    return interior ? static_cast<double>(interior_flagged) / interior : 0.0;
  }
  // Share of unflagged roadside transceivers that the half-mile-style
  // neighborhood test would recover.
  double shadow_share() const {
    const std::size_t unflagged = roadside - roadside_flagged;
    return unflagged ? static_cast<double>(roadside_shadowed) / unflagged
                     : 0.0;
  }
};

// Scores every stride-th transceiver (neighborhood scans are per-point).
RoadsideResult run_roadside_shadow(const World& world, std::size_t stride = 1,
                                   const RoadsideConfig& config = {});

}  // namespace fa::core

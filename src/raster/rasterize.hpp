// Vector -> raster: polygon scanline fill and polyline stamping.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "geo/polygon.hpp"
#include "raster/raster.hpp"

namespace fa::raster {

// Invokes fn(col, row) for every cell whose CENTER lies inside `poly`
// (holes respected), restricted to the raster geometry.
void scan_polygon(const GridGeometry& geom, const geo::Polygon& poly,
                  const std::function<void(int, int)>& fn);

// Burns `value` into cells covered by the polygon.
void rasterize_polygon(MaskRaster& target, const geo::Polygon& poly,
                       std::uint8_t value);
void rasterize_multipolygon(MaskRaster& target, const geo::MultiPolygon& mp,
                            std::uint8_t value);

// Burns `value` along a polyline with the given half-width (world units;
// a width of 0 stamps only the traversed cells).
void rasterize_polyline(MaskRaster& target, std::span<const geo::Vec2> line,
                        double half_width, std::uint8_t value);

}  // namespace fa::raster

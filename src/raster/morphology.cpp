#include "raster/morphology.hpp"

#include <algorithm>
#include <limits>

#include "exec/exec.hpp"

namespace fa::raster {

FloatRaster distance_transform(const MaskRaster& mask) {
  const GridGeometry& g = mask.geom();
  FloatRaster dist(g, std::numeric_limits<float>::max());
  if (mask.empty()) return dist;

  // Chamfer weights in world units; assumes square-ish cells.
  const float straight = static_cast<float>(std::min(g.cell_w, g.cell_h));
  const float diagonal = straight * 4.0f / 3.0f;

  // Seeding is elementwise; the two chamfer relaxation passes below carry
  // a row-to-row dependency and stay serial.
  exec::parallel_for(
      mask.data().size(),
      [&mask, &dist](std::size_t i) {
        if (mask.data()[i] != 0) dist.data()[i] = 0.0f;
      },
      {.grain = 1 << 16});

  const auto relax = [&dist, &g](int c, int r, int dc, int dr, float w) {
    const int cc = c + dc;
    const int rr = r + dr;
    if (!g.in_bounds(cc, rr)) return;
    const float cand = dist.at(cc, rr) + w;
    if (cand < dist.at(c, r)) dist.at(c, r) = cand;
  };

  // Forward pass (scan south-west -> north-east).
  for (int r = 0; r < g.rows; ++r) {
    for (int c = 0; c < g.cols; ++c) {
      relax(c, r, -1, 0, straight);
      relax(c, r, 0, -1, straight);
      relax(c, r, -1, -1, diagonal);
      relax(c, r, 1, -1, diagonal);
    }
  }
  // Backward pass.
  for (int r = g.rows - 1; r >= 0; --r) {
    for (int c = g.cols - 1; c >= 0; --c) {
      relax(c, r, 1, 0, straight);
      relax(c, r, 0, 1, straight);
      relax(c, r, 1, 1, diagonal);
      relax(c, r, -1, 1, diagonal);
    }
  }
  return dist;
}

MaskRaster dilate_mask(const MaskRaster& mask, double radius) {
  const FloatRaster dist = distance_transform(mask);
  MaskRaster out(mask.geom(), 0);
  const float rad = static_cast<float>(radius);
  exec::parallel_for(
      dist.data().size(),
      [&dist, &out, rad](std::size_t i) {
        out.data()[i] = dist.data()[i] <= rad ? 1 : 0;
      },
      {.grain = 1 << 16});
  return out;
}

MaskRaster class_mask(const ClassRaster& classes, std::uint8_t cls) {
  MaskRaster out(classes.geom(), 0);
  exec::parallel_for(
      classes.data().size(),
      [&classes, &out, cls](std::size_t i) {
        out.data()[i] = classes.data()[i] == cls ? 1 : 0;
      },
      {.grain = 1 << 16});
  return out;
}

std::map<std::uint8_t, std::size_t> class_histogram(const ClassRaster& r) {
  std::map<std::uint8_t, std::size_t> hist;
  for (std::uint8_t v : r.data()) ++hist[v];
  return hist;
}

std::map<std::uint8_t, double> class_area(const ClassRaster& r) {
  std::map<std::uint8_t, double> area;
  const double cell = r.geom().cell_area();
  for (const auto& [cls, n] : class_histogram(r)) {
    area[cls] = static_cast<double>(n) * cell;
  }
  return area;
}

}  // namespace fa::raster

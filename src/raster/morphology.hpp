// Raster morphology: chamfer distance transform, dilation, zonal stats.
// The Section 3.8 "extend very-high WHP by half a mile" operator is
// `dilate_mask` with radius = 804.67 m on the 270 m Albers grid.
#pragma once

#include <cstdint>
#include <map>

#include "raster/raster.hpp"

namespace fa::raster {

// Two-pass 3-4 chamfer distance transform: distance (world units) from
// every cell center to the nearest cell where `mask != 0`. Cells inside
// the mask get distance 0. Error vs exact Euclidean is < 8%, far below a
// cell width at the radii used here.
FloatRaster distance_transform(const MaskRaster& mask);

// Mask grown by `radius` world units (chamfer metric).
MaskRaster dilate_mask(const MaskRaster& mask, double radius);

// Mask of cells where `classes` equals `cls`.
MaskRaster class_mask(const ClassRaster& classes, std::uint8_t cls);

// Histogram of class values.
std::map<std::uint8_t, std::size_t> class_histogram(const ClassRaster& r);

// Per-class area in world units squared.
std::map<std::uint8_t, double> class_area(const ClassRaster& r);

}  // namespace fa::raster

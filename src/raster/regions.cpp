#include "raster/regions.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>

namespace fa::raster {

Labeling label_components(const MaskRaster& mask) {
  const GridGeometry& g = mask.geom();
  Labeling out;
  out.labels = Raster<std::uint32_t>(g, 0);
  if (mask.empty()) return out;

  std::vector<std::pair<int, int>> stack;
  for (int r = 0; r < g.rows; ++r) {
    for (int c = 0; c < g.cols; ++c) {
      if (mask.at(c, r) == 0 || out.labels.at(c, r) != 0) continue;
      const std::uint32_t label = ++out.count;
      std::size_t cells = 0;
      stack.push_back({c, r});
      out.labels.at(c, r) = label;
      while (!stack.empty()) {
        const auto [cc, cr] = stack.back();
        stack.pop_back();
        ++cells;
        constexpr int dc[] = {1, -1, 0, 0};
        constexpr int dr[] = {0, 0, 1, -1};
        for (int k = 0; k < 4; ++k) {
          const int nc = cc + dc[k];
          const int nr = cr + dr[k];
          if (g.in_bounds(nc, nr) && mask.at(nc, nr) != 0 &&
              out.labels.at(nc, nr) == 0) {
            out.labels.at(nc, nr) = label;
            stack.push_back({nc, nr});
          }
        }
      }
      out.sizes.push_back(cells);
    }
  }
  return out;
}

namespace {

// Lattice corner (col, row) packed into one key.
std::uint64_t pack(int c, int r) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c)) << 32) |
         static_cast<std::uint32_t>(r);
}

struct Corner {
  int c;
  int r;
};

// Drops collinear intermediate vertices from a closed rectilinear loop.
std::vector<geo::Vec2> collapse_collinear(const std::vector<geo::Vec2>& pts) {
  const std::size_t n = pts.size();
  if (n < 4) return pts;
  std::vector<geo::Vec2> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const geo::Vec2 prev = pts[(i + n - 1) % n];
    const geo::Vec2 cur = pts[i];
    const geo::Vec2 next = pts[(i + 1) % n];
    if (geo::orient2d(prev, cur, next) != 0.0) out.push_back(cur);
  }
  return out.size() >= 3 ? out : pts;
}

}  // namespace

std::vector<geo::Ring> trace_component(const Raster<std::uint32_t>& labels,
                                       std::uint32_t label) {
  const GridGeometry& g = labels.geom();
  // Directed boundary edges with the component on the left; CCW cell walk
  // is bottom: (c,r)->(c+1,r), right: up, top: right->left, left: down.
  std::unordered_map<std::uint64_t, std::vector<Corner>> next_of;
  const auto is_label = [&](int c, int r) {
    return g.in_bounds(c, r) && labels.at(c, r) == label;
  };
  std::size_t num_edges = 0;
  for (int r = 0; r < g.rows; ++r) {
    for (int c = 0; c < g.cols; ++c) {
      if (labels.at(c, r) != label) continue;
      if (!is_label(c, r - 1)) {
        next_of[pack(c, r)].push_back({c + 1, r});
        ++num_edges;
      }
      if (!is_label(c + 1, r)) {
        next_of[pack(c + 1, r)].push_back({c + 1, r + 1});
        ++num_edges;
      }
      if (!is_label(c, r + 1)) {
        next_of[pack(c + 1, r + 1)].push_back({c, r + 1});
        ++num_edges;
      }
      if (!is_label(c - 1, r)) {
        next_of[pack(c, r + 1)].push_back({c, r});
        ++num_edges;
      }
    }
  }

  std::vector<geo::Ring> loops;
  std::size_t consumed = 0;
  while (consumed < num_edges) {
    // Find any vertex with an unconsumed outgoing edge.
    auto it = std::find_if(next_of.begin(), next_of.end(),
                           [](const auto& kv) { return !kv.second.empty(); });
    if (it == next_of.end()) break;
    const std::uint64_t start_key = it->first;
    Corner cur{static_cast<int>(start_key >> 32),
               static_cast<int>(start_key & 0xffffffffULL)};
    std::vector<geo::Vec2> pts;
    std::uint64_t cur_key = start_key;
    do {
      auto& outs = next_of[cur_key];
      if (outs.empty()) break;  // defensive: malformed boundary
      const Corner nxt = outs.back();
      outs.pop_back();
      ++consumed;
      pts.push_back({g.origin_x + cur.c * g.cell_w,
                     g.origin_y + cur.r * g.cell_h});
      cur = nxt;
      cur_key = pack(cur.c, cur.r);
    } while (cur_key != start_key);
    if (pts.size() >= 3) loops.emplace_back(collapse_collinear(pts));
  }
  return loops;
}

std::vector<geo::Polygon> extract_regions(const MaskRaster& mask) {
  const Labeling lab = label_components(mask);
  struct Region {
    geo::Polygon poly;
    std::size_t cells;
  };
  std::vector<Region> regions;
  regions.reserve(lab.count);
  for (std::uint32_t label = 1; label <= lab.count; ++label) {
    std::vector<geo::Ring> loops = trace_component(lab.labels, label);
    if (loops.empty()) continue;
    // The outer boundary is the CCW loop; all CW loops are holes.
    geo::Ring outer;
    std::vector<geo::Ring> holes;
    double best_area = -1.0;
    for (geo::Ring& loop : loops) {
      if (loop.is_ccw() && loop.area() > best_area) {
        if (!outer.empty()) holes.push_back(std::move(outer));
        best_area = loop.area();
        outer = std::move(loop);
      } else {
        holes.push_back(std::move(loop));
      }
    }
    regions.push_back(
        {geo::Polygon{std::move(outer), std::move(holes)},
         lab.sizes[label - 1]});
  }
  std::sort(regions.begin(), regions.end(),
            [](const Region& a, const Region& b) { return a.cells > b.cells; });
  std::vector<geo::Polygon> out;
  out.reserve(regions.size());
  for (Region& r : regions) out.push_back(std::move(r.poly));
  return out;
}

}  // namespace fa::raster

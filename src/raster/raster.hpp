// Regular-grid raster with an affine cell<->world mapping.
//
// Convention: row 0 is the SOUTHERN edge (south-up, i.e. world y grows with
// row index) and cell (0,0)'s lower-left corner sits at (origin_x,
// origin_y). This differs from GDAL's north-up default on purpose: it keeps
// the mapping monotone in both axes and removes a whole class of sign bugs.
//
// Rasters are used in two coordinate systems:
//   * Albers metres for the WHP hazard grid (270 m cells, like USFS WHP)
//   * lon/lat degrees for quick-look density maps
// The raster itself is CRS-agnostic; callers keep track.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "geo/bbox.hpp"

namespace fa::raster {

struct GridGeometry {
  double origin_x = 0.0;  // world x of the left edge of column 0
  double origin_y = 0.0;  // world y of the bottom edge of row 0
  double cell_w = 1.0;    // world units per column step (> 0)
  double cell_h = 1.0;    // world units per row step (> 0)
  int cols = 0;
  int rows = 0;

  bool operator==(const GridGeometry&) const = default;

  std::size_t cell_count() const {
    return static_cast<std::size_t>(cols) * static_cast<std::size_t>(rows);
  }
  geo::BBox extent() const {
    return {origin_x, origin_y, origin_x + cell_w * cols,
            origin_y + cell_h * rows};
  }
  // Cell indices of the world point; may be out of range.
  int col_of(double x) const {
    return static_cast<int>(std::floor((x - origin_x) / cell_w));
  }
  int row_of(double y) const {
    return static_cast<int>(std::floor((y - origin_y) / cell_h));
  }
  bool in_bounds(int c, int r) const {
    return c >= 0 && c < cols && r >= 0 && r < rows;
  }
  bool contains_world(geo::Vec2 p) const {
    return in_bounds(col_of(p.x), row_of(p.y));
  }
  // World coordinates of the center of cell (c, r).
  geo::Vec2 cell_center(int c, int r) const {
    return {origin_x + (c + 0.5) * cell_w, origin_y + (r + 0.5) * cell_h};
  }
  geo::BBox cell_box(int c, int r) const {
    return {origin_x + c * cell_w, origin_y + r * cell_h,
            origin_x + (c + 1) * cell_w, origin_y + (r + 1) * cell_h};
  }
  double cell_area() const { return cell_w * cell_h; }

  // Geometry covering `box` with the given cell size (box is expanded to a
  // whole number of cells).
  static GridGeometry covering(const geo::BBox& box, double cell_w,
                               double cell_h);
};

template <typename T>
class Raster {
 public:
  Raster() = default;
  Raster(GridGeometry geom, T fill = T{})
      : geom_(geom), data_(geom.cell_count(), fill) {}

  const GridGeometry& geom() const { return geom_; }
  int cols() const { return geom_.cols; }
  int rows() const { return geom_.rows; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& at(int c, int r) {
    assert(geom_.in_bounds(c, r));
    return data_[static_cast<std::size_t>(r) * geom_.cols + c];
  }
  const T& at(int c, int r) const {
    assert(geom_.in_bounds(c, r));
    return data_[static_cast<std::size_t>(r) * geom_.cols + c];
  }
  // Value at a world point, or `fallback` when outside the grid.
  T sample(geo::Vec2 world, T fallback = T{}) const {
    const int c = geom_.col_of(world.x);
    const int r = geom_.row_of(world.y);
    return geom_.in_bounds(c, r) ? at(c, r) : fallback;
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }
  std::vector<T>& data() { return data_; }
  const std::vector<T>& data() const { return data_; }

  // Number of cells equal to `value`.
  std::size_t count(T value) const {
    std::size_t n = 0;
    for (const T& v : data_) n += (v == value) ? 1 : 0;
    return n;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {  // fn(col, row, value)
    for (int r = 0; r < geom_.rows; ++r) {
      for (int c = 0; c < geom_.cols; ++c) fn(c, r, at(c, r));
    }
  }

 private:
  GridGeometry geom_;
  std::vector<T> data_;
};

using MaskRaster = Raster<std::uint8_t>;
using ClassRaster = Raster<std::uint8_t>;
using FloatRaster = Raster<float>;

}  // namespace fa::raster

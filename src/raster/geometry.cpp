#include "raster/raster.hpp"

#include <cmath>

namespace fa::raster {

GridGeometry GridGeometry::covering(const geo::BBox& box, double cell_w,
                                    double cell_h) {
  GridGeometry g;
  g.origin_x = box.min_x;
  g.origin_y = box.min_y;
  g.cell_w = cell_w;
  g.cell_h = cell_h;
  g.cols = std::max(1, static_cast<int>(std::ceil(box.width() / cell_w)));
  g.rows = std::max(1, static_cast<int>(std::ceil(box.height() / cell_h)));
  return g;
}

}  // namespace fa::raster

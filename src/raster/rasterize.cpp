#include "raster/rasterize.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "exec/exec.hpp"
#include "geo/prepared.hpp"

namespace fa::raster {

namespace {

// Per-polygon scanline acceleration: rings prepared once, so each row
// consults only the y-slab its scanline falls in instead of every edge.
// PreparedRing::collect_crossings applies the identical half-open rule
// and intercept expression the per-edge sweep used, and each edge shows
// up once per slab — after the sort the crossing list is byte-identical.
struct PreparedScan {
  geo::PreparedRing outer;
  std::vector<geo::PreparedRing> holes;

  explicit PreparedScan(const geo::Polygon& poly) : outer(poly.outer()) {
    holes.reserve(poly.holes().size());
    for (const geo::Ring& h : poly.holes()) holes.emplace_back(h);
  }
};

// One scanline of the polygon fill: invokes fn(c, r) for row r's inside
// cells, left to right. `xs` is caller-provided scratch.
template <class Fn>
void scan_row(const GridGeometry& geom, const PreparedScan& poly, int r,
              std::vector<double>& xs, Fn&& fn) {
  const double y = geom.origin_y + (r + 0.5) * geom.cell_h;
  xs.clear();
  poly.outer.collect_crossings(y, xs);
  for (const geo::PreparedRing& h : poly.holes) h.collect_crossings(y, xs);
  std::sort(xs.begin(), xs.end());
  // Crossings pair up into inside spans (even-odd rule; holes simply add
  // crossings, which carves them out).
  for (std::size_t k = 0; k + 1 < xs.size(); k += 2) {
    const int c0 = std::max(0, geom.col_of(xs[k] + geom.cell_w * 0.5));
    const int c1 =
        std::min(geom.cols - 1, geom.col_of(xs[k + 1] - geom.cell_w * 0.5));
    for (int c = c0; c <= c1; ++c) {
      // Cell-center test, consistent with Raster::sample semantics.
      const double cx = geom.origin_x + (c + 0.5) * geom.cell_w;
      if (cx >= xs[k] && cx <= xs[k + 1]) fn(c, r);
    }
  }
}

// Row range of the polygon's bbox clipped to the raster; {1, 0} when empty.
std::pair<int, int> row_span(const GridGeometry& geom,
                             const geo::Polygon& poly) {
  if (poly.empty() || geom.cell_count() == 0) return {1, 0};
  const geo::BBox box = poly.bbox().intersection(geom.extent());
  if (!box.valid()) return {1, 0};
  return {std::max(0, geom.row_of(box.min_y)),
          std::min(geom.rows - 1, geom.row_of(box.max_y))};
}

}  // namespace

void scan_polygon(const GridGeometry& geom, const geo::Polygon& poly,
                  const std::function<void(int, int)>& fn) {
  // Serial by contract: callers rely on row-major visit order.
  const auto [r0, r1] = row_span(geom, poly);
  if (r0 > r1) return;
  const PreparedScan prepared(poly);
  std::vector<double> xs;
  for (int r = r0; r <= r1; ++r) scan_row(geom, prepared, r, xs, fn);
}

void rasterize_polygon(MaskRaster& target, const geo::Polygon& poly,
                       std::uint8_t value) {
  // Row-parallel: each scanline writes only its own raster row, and the
  // stamp is a fixed value, so the result is order-independent.
  const auto [r0, r1] = row_span(target.geom(), poly);
  if (r0 > r1) return;
  const GridGeometry& geom = target.geom();
  const PreparedScan prepared(poly);  // shared read-only across workers
  exec::parallel_for_chunks(
      static_cast<std::size_t>(r1 - r0 + 1),
      [&](std::size_t begin, std::size_t end, exec::ChunkContext) {
        std::vector<double> xs;
        for (std::size_t i = begin; i < end; ++i) {
          const int r = r0 + static_cast<int>(i);
          scan_row(geom, prepared, r, xs,
                   [&target, value](int c, int row) {
                     target.at(c, row) = value;
                   });
        }
      },
      {.grain = 64});
}

void rasterize_multipolygon(MaskRaster& target, const geo::MultiPolygon& mp,
                            std::uint8_t value) {
  for (const geo::Polygon& p : mp.parts()) rasterize_polygon(target, p, value);
}

void rasterize_polyline(MaskRaster& target, std::span<const geo::Vec2> line,
                        double half_width, std::uint8_t value) {
  const GridGeometry& geom = target.geom();
  if (line.size() < 2 || geom.cell_count() == 0) return;
  const double step = std::min(geom.cell_w, geom.cell_h) * 0.5;
  for (std::size_t i = 0; i + 1 < line.size(); ++i) {
    const geo::Vec2 a = line[i];
    const geo::Vec2 b = line[i + 1];
    const double len = geo::distance(a, b);
    const int steps = std::max(1, static_cast<int>(len / step));
    for (int s = 0; s <= steps; ++s) {
      const geo::Vec2 p = geo::lerp(a, b, static_cast<double>(s) / steps);
      if (half_width <= 0.0) {
        const int c = geom.col_of(p.x);
        const int r = geom.row_of(p.y);
        if (geom.in_bounds(c, r)) target.at(c, r) = value;
        continue;
      }
      const int c0 = geom.col_of(p.x - half_width);
      const int c1 = geom.col_of(p.x + half_width);
      const int r0 = geom.row_of(p.y - half_width);
      const int r1 = geom.row_of(p.y + half_width);
      for (int r = std::max(0, r0); r <= std::min(geom.rows - 1, r1); ++r) {
        for (int c = std::max(0, c0); c <= std::min(geom.cols - 1, c1); ++c) {
          const geo::Vec2 cc = geom.cell_center(c, r);
          if (geo::distance(cc, p) <= half_width) target.at(c, r) = value;
        }
      }
    }
  }
}

}  // namespace fa::raster

// Binary-mask -> vector conversion: connected-component labelling and
// boundary tracing. This turns the fire simulator's burned-cell masks into
// the perimeter polygons the overlay pipeline consumes (the synthetic
// GeoMAC record).
#pragma once

#include <cstdint>
#include <vector>

#include "geo/polygon.hpp"
#include "raster/raster.hpp"

namespace fa::raster {

// 4-connected component labelling; label 0 = background, components are
// numbered from 1. Returns the label raster and the component count.
struct Labeling {
  Raster<std::uint32_t> labels;
  std::uint32_t count = 0;
  std::vector<std::size_t> sizes;  // sizes[i] = cells of component i+1
};
Labeling label_components(const MaskRaster& mask);

// Extracts every component of `mask` as a polygon in world coordinates:
// one CCW outer ring plus CW hole rings, vertices on cell corners with
// collinear points collapsed. Ordered by descending cell count.
std::vector<geo::Polygon> extract_regions(const MaskRaster& mask);

// Boundary loops of a single labelled component (exposed for tests).
std::vector<geo::Ring> trace_component(const Raster<std::uint32_t>& labels,
                                       std::uint32_t label);

}  // namespace fa::raster

// World <-> snapshot-image codec.
//
// encode_world() lays a built core::World (plus its provider-exposure
// aggregate) into one self-validating byte image in the format described
// in store/format.hpp; decode_world() is the exact inverse. The codec is
// deterministic — the same world always encodes to the same bytes — and
// decode(encode(w)) reproduces every query-visible array bit-for-bit
// (tests/store/roundtrip_test.cpp pins query responses byte-identical).
//
// decode_world() trusts nothing: the CRC ladder (header, section table,
// every payload, whole-body) runs first, then every structural claim
// (counts that must agree across sections, raster dims vs payload size,
// bin spans vs point count, enum domains) is checked before any copy.
// A corrupt image of any kind comes back as an error Status — never a
// crash, never a silently wrong world; the stored provider-exposure
// aggregate must match one recomputed from the restored arrays, which
// catches whole classes of "checksums fine, semantics drifted" bugs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/provider_risk.hpp"
#include "core/world.hpp"
#include "fault/status.hpp"
#include "store/format.hpp"
#include "store/image.hpp"

namespace fa::store {

// Everything a serving process needs back from disk.
struct LoadedWorld {
  core::World world;
  core::ProviderRiskResult provider_risk;
};

// Deterministic full-file image (header + sections + footer).
std::string encode_world(const core::World& world,
                         const core::ProviderRiskResult& provider_risk);

// Validates and restores. `source` tags error Statuses (a file path).
fault::Result<LoadedWorld> decode_world(const void* data, std::size_t size,
                                        std::string source = "fastore");

// -- inspection (fa_store_inspect, tests) ------------------------------

struct SectionReport {
  SectionInfo info;
  bool crc_ok = false;
};

struct FileReport {
  std::uint32_t version = 0;
  std::uint64_t file_size = 0;
  std::vector<SectionReport> sections;
  bool header_ok = false;
  bool footer_ok = false;
  bool body_crc_ok = false;
  bool ok() const;
};

// Structural walk without restoring a world: validates the CRC ladder
// and reports per-section status. Returns an error Status only when the
// image is too mangled to walk at all (short file, bad magic).
fault::Result<FileReport> inspect_image(const void* data, std::size_t size,
                                        std::string source = "fastore");

// -- shared section codecs ----------------------------------------------
// The global sections (scenario meta, county layer, provider-risk
// aggregate) have one byte layout used by both container flavors; the
// monolithic codec and the sharded one (fa::shard) encode and decode
// them through these.

struct MetaFields {
  synth::ScenarioConfig config;
  std::uint64_t ingest_dropped = 0;
  std::uint64_t ingest_repaired = 0;
  std::uint64_t transceivers = 0;
};

void encode_meta_section(ImageBuilder& b, const MetaFields& meta);
void encode_county_sections(ImageBuilder& b, const synth::CountyMap& counties);
void encode_provider_risk_section(ImageBuilder& b,
                                  const core::ProviderRiskResult& risk);

fault::Status decode_meta(const SectionLookup& img, MetaFields& out);
fault::Status decode_counties(const SectionLookup& img,
                              std::vector<synth::County>& out);
fault::Status decode_provider_risk(const SectionLookup& img,
                                   core::ProviderRiskResult& out);

}  // namespace fa::store

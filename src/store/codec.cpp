#include "store/codec.hpp"

#include <cmath>
#include <cstring>
#include <utility>

#include "cellnet/providers.hpp"
#include "cellnet/types.hpp"
#include "geo/bbox.hpp"
#include "store/access.hpp"
#include "store/image.hpp"
#include "synth/usatlas.hpp"

namespace fa::store {

namespace {

using fault::ErrCode;
using fault::Status;

}  // namespace

// ---------------------------------------------------------------------
// shared section codecs
// ---------------------------------------------------------------------

void encode_meta_section(ImageBuilder& b, const MetaFields& meta) {
  b.begin(SectionKind::kMeta);
  b.put<std::uint64_t>(meta.config.seed);
  b.put<double>(meta.config.corpus_scale);
  b.put<double>(meta.config.whp_cell_m);
  b.put<std::int32_t>(meta.config.counties_per_state);
  b.put<std::uint32_t>(0);
  b.put<std::uint64_t>(meta.ingest_dropped);
  b.put<std::uint64_t>(meta.ingest_repaired);
  b.put<std::uint64_t>(meta.transceivers);
  b.end();
}

void encode_county_sections(ImageBuilder& b, const synth::CountyMap& map) {
  const auto& counties = map.counties();
  b.begin(SectionKind::kCountyTable);
  for (const auto& c : counties) {
    b.put<std::int32_t>(c.state);
    b.put<std::uint32_t>(c.is_major ? 1u : 0u);
    b.put<double>(c.anchor.lon);
    b.put<double>(c.anchor.lat);
    b.put<double>(c.population);
  }
  b.end();
  b.begin(SectionKind::kCountyNames);
  b.put<std::uint32_t>(static_cast<std::uint32_t>(counties.size()));
  std::uint32_t off = 0;
  for (const auto& c : counties) {
    b.put<std::uint32_t>(off);
    off += static_cast<std::uint32_t>(c.name.size());
  }
  b.put<std::uint32_t>(off);
  for (const auto& c : counties) b.raw(c.name.data(), c.name.size());
  b.end();
}

void encode_provider_risk_section(ImageBuilder& b,
                                  const core::ProviderRiskResult& risk) {
  b.begin(SectionKind::kProviderRisk);
  for (const auto& row : risk.rows) {
    b.put<std::uint64_t>(row.fleet);
    b.put<std::uint64_t>(row.moderate);
    b.put<std::uint64_t>(row.high);
    b.put<std::uint64_t>(row.very_high);
  }
  b.put<std::uint64_t>(risk.regional_brands_at_risk);
  b.end();
}

fault::Status decode_meta(const SectionLookup& img, MetaFields& out) {
  Status status;
  const SectionInfo* meta = need(img, SectionKind::kMeta, status);
  if (!meta) return status;
  if (!check_len(img, *meta, 56, status)) return status;
  Cursor mc{img.base + meta->offset, static_cast<std::size_t>(meta->length)};
  out.config.seed = mc.get<std::uint64_t>();
  out.config.corpus_scale = mc.get<double>();
  out.config.whp_cell_m = mc.get<double>();
  out.config.counties_per_state = mc.get<std::int32_t>();
  (void)mc.get<std::uint32_t>();
  out.ingest_dropped = mc.get<std::uint64_t>();
  out.ingest_repaired = mc.get<std::uint64_t>();
  out.transceivers = mc.get<std::uint64_t>();
  if (!std::isfinite(out.config.corpus_scale) ||
      out.config.corpus_scale <= 0.0 ||
      !std::isfinite(out.config.whp_cell_m) || out.config.whp_cell_m <= 0.0 ||
      out.config.counties_per_state < 0) {
    return fail(ErrCode::kOutOfRange, meta->offset, img.source,
                "meta section carries an invalid scenario config");
  }
  if (out.transceivers > (1ull << 32)) {
    return fail(ErrCode::kOutOfRange, meta->offset, img.source,
                "implausible transceiver count");
  }
  return {};
}

fault::Status decode_counties(const SectionLookup& img,
                              std::vector<synth::County>& out) {
  Status status;
  const SectionInfo* ctab = need(img, SectionKind::kCountyTable, status);
  if (!ctab) return status;
  const SectionInfo* cnames = need(img, SectionKind::kCountyNames, status);
  if (!cnames) return status;
  if (ctab->length % 32 != 0) {
    return fail(ErrCode::kSchema, ctab->offset, img.source,
                "county table length is not a whole number of records");
  }
  const std::uint64_t county_count = ctab->length / 32;
  const int num_states = synth::UsAtlas::get().num_states();
  if (cnames->length < 4 + (county_count + 1) * 4) {
    return fail(ErrCode::kTruncated, cnames->offset, img.source,
                "county name table too short");
  }
  Cursor nc{img.base + cnames->offset,
            static_cast<std::size_t>(cnames->length)};
  if (nc.get<std::uint32_t>() != county_count) {
    return fail(ErrCode::kSchema, cnames->offset, img.source,
                "county name count disagrees with county table");
  }
  const std::uint64_t blob_bytes = cnames->length - 4 - (county_count + 1) * 4;
  std::vector<synth::County> counties(county_count);
  std::vector<std::uint32_t> offs(county_count + 1);
  for (auto& o : offs) o = nc.get<std::uint32_t>();
  if (offs.back() != blob_bytes) {
    return fail(ErrCode::kSchema, cnames->offset, img.source,
                "county name blob size disagrees with offsets");
  }
  // Validate the whole offset array before touching the blob: a
  // CRC-consistent but hostile image could pass the checks for early
  // indices while a later one is wild, and copying as we validate
  // would read past the section (and potentially the mmap) before the
  // bad index is reached. Monotone non-decreasing plus the pinned
  // offs.back() == blob_bytes bounds every slice inside the blob.
  for (std::uint64_t i = 0; i < county_count; ++i) {
    if (offs[i] > offs[i + 1]) {
      return fail(ErrCode::kOutOfRange, cnames->offset, img.source,
                  "county name offsets not monotonic");
    }
  }
  const char* blob = reinterpret_cast<const char*>(nc.p + nc.off);
  Cursor tc{img.base + ctab->offset, static_cast<std::size_t>(ctab->length)};
  for (std::uint64_t i = 0; i < county_count; ++i) {
    auto& c = counties[i];
    c.state = tc.get<std::int32_t>();
    c.is_major = tc.get<std::uint32_t>() != 0;
    c.anchor.lon = tc.get<double>();
    c.anchor.lat = tc.get<double>();
    c.population = tc.get<double>();
    if (c.state < 0 || c.state >= num_states) {
      return fail(ErrCode::kOutOfRange, ctab->offset + i * 32, img.source,
                  "county state index out of range");
    }
    c.name.assign(blob + offs[i], offs[i + 1] - offs[i]);
  }
  out = std::move(counties);
  return {};
}

fault::Status decode_provider_risk(const SectionLookup& img,
                                   core::ProviderRiskResult& out) {
  Status status;
  const SectionInfo* risk = need(img, SectionKind::kProviderRisk, status);
  if (!risk) return status;
  if (!check_len(img, *risk, cellnet::kNumProviders * 4 * 8 + 8, status)) {
    return status;
  }
  Cursor rc{img.base + risk->offset, static_cast<std::size_t>(risk->length)};
  for (int p = 0; p < cellnet::kNumProviders; ++p) {
    auto& row = out.rows[static_cast<std::size_t>(p)];
    row.provider = static_cast<cellnet::Provider>(p);
    row.fleet = rc.get<std::uint64_t>();
    row.moderate = rc.get<std::uint64_t>();
    row.high = rc.get<std::uint64_t>();
    row.very_high = rc.get<std::uint64_t>();
  }
  out.regional_brands_at_risk = rc.get<std::uint64_t>();
  return {};
}

// ---------------------------------------------------------------------
// encode_world
// ---------------------------------------------------------------------

std::string encode_world(const core::World& world,
                         const core::ProviderRiskResult& provider_risk) {
  const auto& txr = world.corpus().transceivers();
  const std::size_t n = txr.size();
  ImageBuilder b(kSectionCount);

  encode_meta_section(b, MetaFields{world.config(), world.ingest_dropped(),
                                    world.ingest_repaired(), n});

  // Transceiver SoA columns.
  {
    std::vector<double> lon(n), lat(n);
    std::vector<std::uint8_t> radio(n);
    std::vector<std::uint16_t> mcc(n), mnc(n);
    std::vector<std::uint32_t> cell_id(n);
    std::vector<std::int16_t> state(n);
    for (std::size_t i = 0; i < n; ++i) {
      lon[i] = txr[i].position.lon;
      lat[i] = txr[i].position.lat;
      radio[i] = static_cast<std::uint8_t>(txr[i].radio);
      mcc[i] = txr[i].mcc;
      mnc[i] = txr[i].mnc;
      cell_id[i] = txr[i].cell_id;
      state[i] = txr[i].state;
    }
    b.section_vec(SectionKind::kTxrLon, lon);
    b.section_vec(SectionKind::kTxrLat, lat);
    b.section_vec(SectionKind::kTxrRadio, radio);
    b.section_vec(SectionKind::kTxrMcc, mcc);
    b.section_vec(SectionKind::kTxrMnc, mnc);
    b.section_vec(SectionKind::kTxrCellId, cell_id);
    b.section_vec(SectionKind::kTxrState, state);
  }
  b.section_vec(SectionKind::kTxrClass, Access::txr_class(world));
  b.section_vec(SectionKind::kTxrCounty, Access::txr_county(world));
  b.section_vec(SectionKind::kTxrProvider, Access::txr_provider(world));

  b.section_raster_u8(SectionKind::kWhpGrid, world.whp().grid());
  {
    b.begin(SectionKind::kWhpStates);
    b.geometry(world.whp().state_grid().geom());
    b.vec(world.whp().state_grid().data());
    b.end();
  }
  b.section_raster_u8(SectionKind::kWhpUrban, world.whp().urban_mask());
  b.section_raster_u8(SectionKind::kWhpRoads, world.whp().road_mask());

  encode_county_sections(b, world.counties());

  {
    const auto& idx = world.txr_index();
    b.begin(SectionKind::kIndexMeta);
    b.put<double>(idx.bounds().min_x);
    b.put<double>(idx.bounds().min_y);
    b.put<double>(idx.bounds().max_x);
    b.put<double>(idx.bounds().max_y);
    b.put<std::int32_t>(Access::cols(idx));
    b.put<std::int32_t>(Access::rows(idx));
    b.put<double>(Access::inv_cw(idx));
    b.put<double>(Access::inv_ch(idx));
    b.put<std::uint64_t>(idx.size());
    b.put<std::uint64_t>(Access::binned(idx).size());
    b.end();
    b.section_vec(SectionKind::kIndexBinnedIds, Access::binned(idx));
    b.section_vec(SectionKind::kIndexBinnedX, Access::binned_x(idx));
    b.section_vec(SectionKind::kIndexBinnedY, Access::binned_y(idx));
    b.section_vec(SectionKind::kIndexCellStart, Access::cell_start(idx));
  }

  encode_provider_risk_section(b, provider_risk);

  return b.finish();
}

// ---------------------------------------------------------------------
// decode_world
// ---------------------------------------------------------------------

fault::Result<LoadedWorld> decode_world(const void* data, std::size_t size,
                                        std::string source) {
  SectionLookup img;
  if (Status s = validate_image(data, size, source, img, nullptr); !s.ok()) {
    return s;
  }
  Status status;

  // meta
  MetaFields meta;
  if (Status s = decode_meta(img, meta); !s.ok()) return s;
  const synth::ScenarioConfig config = meta.config;
  const std::uint64_t ingest_dropped = meta.ingest_dropped;
  const std::uint64_t ingest_repaired = meta.ingest_repaired;
  const std::uint64_t n = meta.transceivers;

  // Transceiver columns — every column must agree on n.
  struct Col {
    SectionKind kind;
    std::size_t elem;
    const SectionInfo* info = nullptr;
  };
  Col cols[] = {
      {SectionKind::kTxrLon, 8},    {SectionKind::kTxrLat, 8},
      {SectionKind::kTxrRadio, 1},  {SectionKind::kTxrMcc, 2},
      {SectionKind::kTxrMnc, 2},    {SectionKind::kTxrCellId, 4},
      {SectionKind::kTxrState, 2},  {SectionKind::kTxrClass, 1},
      {SectionKind::kTxrCounty, 4}, {SectionKind::kTxrProvider, 1},
  };
  for (auto& col : cols) {
    col.info = need(img, col.kind, status);
    if (!col.info) return status;
    if (!check_len(img, *col.info, n * col.elem, status)) return status;
  }
  const auto col_ptr = [&](SectionKind kind) -> const unsigned char* {
    for (const auto& col : cols) {
      if (col.kind == kind) return img.base + col.info->offset;
    }
    return nullptr;
  };
  const auto lon = copy_vec<double>(col_ptr(SectionKind::kTxrLon), n * 8);
  const auto lat = copy_vec<double>(col_ptr(SectionKind::kTxrLat), n * 8);
  const auto radio =
      copy_vec<std::uint8_t>(col_ptr(SectionKind::kTxrRadio), n);
  const auto mcc =
      copy_vec<std::uint16_t>(col_ptr(SectionKind::kTxrMcc), n * 2);
  const auto mnc =
      copy_vec<std::uint16_t>(col_ptr(SectionKind::kTxrMnc), n * 2);
  const auto cell_id =
      copy_vec<std::uint32_t>(col_ptr(SectionKind::kTxrCellId), n * 4);
  const auto state =
      copy_vec<std::int16_t>(col_ptr(SectionKind::kTxrState), n * 2);
  auto txr_class = copy_vec<std::uint8_t>(col_ptr(SectionKind::kTxrClass), n);
  auto txr_county =
      copy_vec<std::int32_t>(col_ptr(SectionKind::kTxrCounty), n * 4);
  auto txr_provider =
      copy_vec<std::uint8_t>(col_ptr(SectionKind::kTxrProvider), n);

  // counties (needed before txr_county domain check)
  std::vector<synth::County> counties;
  if (Status s = decode_counties(img, counties); !s.ok()) return s;
  const std::uint64_t county_count = counties.size();

  // Domain checks on the cached per-transceiver columns.
  for (std::uint64_t i = 0; i < n; ++i) {
    if (radio[i] >= cellnet::kNumRadioTypes) {
      return fail(ErrCode::kOutOfRange, i, source,
                  "transceiver radio type out of range");
    }
    if (txr_class[i] >= synth::kNumWhpClasses) {
      return fail(ErrCode::kOutOfRange, i, source,
                  "transceiver WHP class out of range");
    }
    if (txr_provider[i] >= cellnet::kNumProviders) {
      return fail(ErrCode::kOutOfRange, i, source,
                  "transceiver provider out of range");
    }
    if (txr_county[i] < -1 ||
        txr_county[i] >= static_cast<std::int64_t>(county_count)) {
      return fail(ErrCode::kOutOfRange, i, source,
                  "transceiver county index out of range");
    }
    if (!geo::is_valid(geo::LonLat{lon[i], lat[i]})) {
      return fail(ErrCode::kOutOfRange, i, source,
                  "transceiver position outside lon/lat domain");
    }
  }

  // rasters
  raster::ClassRaster whp_grid;
  raster::Raster<std::int16_t> whp_states;
  raster::MaskRaster whp_urban, whp_roads;
  if (Status s = decode_raster(img, SectionKind::kWhpGrid, whp_grid); !s.ok())
    return s;
  if (Status s = decode_raster(img, SectionKind::kWhpStates, whp_states);
      !s.ok())
    return s;
  if (Status s = decode_raster(img, SectionKind::kWhpUrban, whp_urban);
      !s.ok())
    return s;
  if (Status s = decode_raster(img, SectionKind::kWhpRoads, whp_roads);
      !s.ok())
    return s;

  // grid index
  const SectionInfo* imeta = need(img, SectionKind::kIndexMeta, status);
  if (!imeta) return status;
  if (!check_len(img, *imeta, 72, status)) return status;
  Cursor ic{img.base + imeta->offset, static_cast<std::size_t>(imeta->length)};
  geo::BBox bounds;
  bounds.min_x = ic.get<double>();
  bounds.min_y = ic.get<double>();
  bounds.max_x = ic.get<double>();
  bounds.max_y = ic.get<double>();
  const std::int32_t icols = ic.get<std::int32_t>();
  const std::int32_t irows = ic.get<std::int32_t>();
  const double inv_cw = ic.get<double>();
  const double inv_ch = ic.get<double>();
  const std::uint64_t n_points = ic.get<std::uint64_t>();
  const std::uint64_t n_binned = ic.get<std::uint64_t>();
  if (n_points != n || n_binned != n) {
    return fail(ErrCode::kSchema, imeta->offset, source,
                "index point count disagrees with transceiver count");
  }
  if (icols < 0 || irows < 0 || !std::isfinite(inv_cw) ||
      !std::isfinite(inv_ch)) {
    return fail(ErrCode::kOutOfRange, imeta->offset, source,
                "index grid dimensions invalid");
  }
  const std::uint64_t cell_count =
      static_cast<std::uint64_t>(icols) * static_cast<std::uint64_t>(irows);
  if (n > 0 && (icols == 0 || irows == 0)) {
    return fail(ErrCode::kSchema, imeta->offset, source,
                "index has points but zero cells");
  }

  const SectionInfo* sb = need(img, SectionKind::kIndexBinnedIds, status);
  if (!sb) return status;
  const SectionInfo* sbx = need(img, SectionKind::kIndexBinnedX, status);
  if (!sbx) return status;
  const SectionInfo* sby = need(img, SectionKind::kIndexBinnedY, status);
  if (!sby) return status;
  const SectionInfo* scs = need(img, SectionKind::kIndexCellStart, status);
  if (!scs) return status;
  if (!check_len(img, *sb, n * 4, status)) return status;
  if (!check_len(img, *sbx, n * 8, status)) return status;
  if (!check_len(img, *sby, n * 8, status)) return status;
  const std::uint64_t want_cells = n == 0 && cell_count == 0
                                       ? scs->length / 4
                                       : cell_count + 1;
  if (!check_len(img, *scs, want_cells * 4, status)) return status;

  auto binned = copy_vec<std::uint32_t>(img.base + sb->offset, n * 4);
  auto binned_x = copy_vec<double>(img.base + sbx->offset, n * 8);
  auto binned_y = copy_vec<double>(img.base + sby->offset, n * 8);
  auto cell_start =
      copy_vec<std::uint32_t>(img.base + scs->offset, scs->length);

  // cell_start must be a monotone prefix-sum ending at n, and every
  // binned entry must reference a real point with the matching
  // coordinates — this is what makes a loaded index memory-safe to
  // query without re-deriving anything.
  if (!cell_start.empty()) {
    if (cell_start.front() != 0 || cell_start.back() != n) {
      return fail(ErrCode::kOutOfRange, scs->offset, source,
                  "index cell spans do not cover the point set");
    }
    for (std::size_t i = 1; i < cell_start.size(); ++i) {
      if (cell_start[i] < cell_start[i - 1]) {
        return fail(ErrCode::kOutOfRange, scs->offset, source,
                    "index cell spans not monotone");
      }
    }
  } else if (n != 0) {
    return fail(ErrCode::kSchema, scs->offset, source,
                "index has points but no cell spans");
  }
  std::vector<geo::Vec2> points(n);
  for (std::uint64_t i = 0; i < n; ++i) points[i] = {lon[i], lat[i]};
  for (std::uint64_t k = 0; k < n; ++k) {
    const std::uint32_t id = binned[k];
    if (id >= n) {
      return fail(ErrCode::kOutOfRange, sb->offset + k * 4, source,
                  "index binned id out of range");
    }
    if (std::memcmp(&binned_x[k], &lon[id], 8) != 0 ||
        std::memcmp(&binned_y[k], &lat[id], 8) != 0) {
      return fail(ErrCode::kSchema, sbx->offset + k * 8, source,
                  "index SoA coordinates disagree with transceiver positions");
    }
  }

  // provider risk aggregate
  core::ProviderRiskResult stored_risk;
  if (Status s = decode_provider_risk(img, stored_risk); !s.ok()) return s;

  // assemble
  std::vector<cellnet::Transceiver> records(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    auto& t = records[i];
    t.id = static_cast<std::uint32_t>(i);
    t.position = {lon[i], lat[i]};
    t.radio = static_cast<cellnet::RadioType>(radio[i]);
    t.mcc = mcc[i];
    t.mnc = mnc[i];
    t.cell_id = cell_id[i];
    t.state = state[i];
  }
  LoadedWorld loaded{
      Access::make_world(
          config,
          Access::make_whp(std::move(whp_grid), std::move(whp_states),
                           std::move(whp_urban), std::move(whp_roads)),
          cellnet::CellCorpus(std::move(records)),
          Access::make_counties(std::move(counties)), ingest_dropped,
          ingest_repaired, std::move(txr_class), std::move(txr_county),
          std::move(txr_provider),
          Access::make_index(std::move(points), std::move(binned),
                             std::move(binned_x), std::move(binned_y),
                             std::move(cell_start), bounds, icols, irows,
                             inv_cw, inv_ch)),
      stored_risk};

  // Semantic cross-check: the stored aggregate must be re-derivable from
  // the restored arrays. Catches "checksums fine, writer was wrong".
  const SectionInfo* risk = img.find(SectionKind::kProviderRisk);
  const core::ProviderRiskResult fresh = core::run_provider_risk(loaded.world);
  for (int p = 0; p < cellnet::kNumProviders; ++p) {
    const auto& a = stored_risk.rows[static_cast<std::size_t>(p)];
    const auto& b = fresh.rows[static_cast<std::size_t>(p)];
    if (a.fleet != b.fleet || a.moderate != b.moderate || a.high != b.high ||
        a.very_high != b.very_high) {
      return fail(ErrCode::kSchema, risk->offset, source,
                  "stored provider-risk aggregate disagrees with restored "
                  "world");
    }
  }
  if (stored_risk.regional_brands_at_risk != fresh.regional_brands_at_risk) {
    return fail(ErrCode::kSchema, risk->offset, source,
                "stored regional-brand aggregate disagrees with restored "
                "world");
  }
  return loaded;
}

// ---------------------------------------------------------------------
// inspect_image
// ---------------------------------------------------------------------

bool FileReport::ok() const {
  if (!header_ok || !footer_ok || !body_crc_ok) return false;
  for (const auto& s : sections) {
    if (!s.crc_ok) return false;
  }
  return true;
}

fault::Result<FileReport> inspect_image(const void* data, std::size_t size,
                                        std::string source) {
  FileReport report;
  report.file_size = size;
  SectionLookup img;
  const Status s = validate_image(data, size, source, img, &report);
  // Walkable-but-corrupt files come back as a report with flags unset;
  // only structurally unwalkable images are an error.
  if (!s.ok() && !report.header_ok) return s;
  return report;
}

}  // namespace fa::store

#include "store/codec.hpp"

#include <cmath>
#include <cstring>
#include <utility>

#include "cellnet/providers.hpp"
#include "cellnet/types.hpp"
#include "geo/bbox.hpp"
#include "synth/usatlas.hpp"

namespace fa::store {

// The one piece of code allowed behind the private walls of the classes
// it rehydrates. Restoring a world is assignment of the exact arrays a
// build would have produced — no re-derivation — so the friend surface
// is "read the private SoA members, write them back".
struct Access {
  // --- readers (encode) -----------------------------------------------
  static const std::vector<std::uint8_t>& txr_class(const core::World& w) {
    return w.txr_class_;
  }
  static const std::vector<std::int32_t>& txr_county(const core::World& w) {
    return w.txr_county_;
  }
  static const std::vector<std::uint8_t>& txr_provider(const core::World& w) {
    return w.txr_provider_;
  }
  static const std::vector<std::uint32_t>& binned(const index::GridIndex& g) {
    return g.binned_;
  }
  static const std::vector<double>& binned_x(const index::GridIndex& g) {
    return g.binned_x_;
  }
  static const std::vector<double>& binned_y(const index::GridIndex& g) {
    return g.binned_y_;
  }
  static const std::vector<std::uint32_t>& cell_start(
      const index::GridIndex& g) {
    return g.cell_start_;
  }
  static int cols(const index::GridIndex& g) { return g.cols_; }
  static int rows(const index::GridIndex& g) { return g.rows_; }
  static double inv_cw(const index::GridIndex& g) { return g.inv_cw_; }
  static double inv_ch(const index::GridIndex& g) { return g.inv_ch_; }

  // --- writers (decode) -----------------------------------------------
  static index::GridIndex make_index(std::vector<geo::Vec2> points,
                                     std::vector<std::uint32_t> binned,
                                     std::vector<double> binned_x,
                                     std::vector<double> binned_y,
                                     std::vector<std::uint32_t> cell_start,
                                     geo::BBox bounds, int cols, int rows,
                                     double inv_cw, double inv_ch) {
    index::GridIndex g;
    g.points_ = std::move(points);
    g.binned_ = std::move(binned);
    g.binned_x_ = std::move(binned_x);
    g.binned_y_ = std::move(binned_y);
    g.cell_start_ = std::move(cell_start);
    g.bounds_ = bounds;
    g.cols_ = cols;
    g.rows_ = rows;
    g.inv_cw_ = inv_cw;
    g.inv_ch_ = inv_ch;
    return g;
  }

  static synth::WhpModel make_whp(raster::ClassRaster grid,
                                  raster::Raster<std::int16_t> states,
                                  raster::MaskRaster urban,
                                  raster::MaskRaster roads) {
    synth::WhpModel m;  // proj_ is parameter-free: default construction
    m.grid_ = std::move(grid);
    m.states_ = std::move(states);
    m.urban_ = std::move(urban);
    m.roads_ = std::move(roads);
    return m;
  }

  static synth::CountyMap make_counties(std::vector<synth::County> counties) {
    synth::CountyMap map;
    map.atlas_ = &synth::UsAtlas::get();
    map.by_state_.assign(
        static_cast<std::size_t>(map.atlas_->num_states()), {});
    for (std::size_t i = 0; i < counties.size(); ++i) {
      // build() appends in counties_ order too, so this reproduces
      // by_state_ exactly.
      map.by_state_[static_cast<std::size_t>(counties[i].state)].push_back(
          static_cast<int>(i));
    }
    map.counties_ = std::move(counties);
    return map;
  }

  static core::World make_world(synth::ScenarioConfig config,
                                synth::WhpModel whp,
                                cellnet::CellCorpus corpus,
                                synth::CountyMap counties,
                                std::size_t ingest_dropped,
                                std::size_t ingest_repaired,
                                std::vector<std::uint8_t> txr_class,
                                std::vector<std::int32_t> txr_county,
                                std::vector<std::uint8_t> txr_provider,
                                index::GridIndex txr_index) {
    core::World w;
    w.config_ = config;
    w.atlas_ = &synth::UsAtlas::get();
    w.whp_ = std::make_shared<const synth::WhpModel>(std::move(whp));
    w.corpus_ = std::move(corpus);
    w.counties_ =
        std::make_shared<const synth::CountyMap>(std::move(counties));
    w.ingest_dropped_ = ingest_dropped;
    w.ingest_repaired_ = ingest_repaired;
    // providers_ is the built-in deterministic registry, already
    // default-constructed.
    w.txr_class_ = std::move(txr_class);
    w.txr_county_ = std::move(txr_county);
    w.txr_provider_ = std::move(txr_provider);
    w.txr_index_ = std::move(txr_index);
    return w;
  }
};

namespace {

using fault::ErrCode;
using fault::Status;

// ---------------------------------------------------------------------
// encode
// ---------------------------------------------------------------------

class ImageBuilder {
 public:
  explicit ImageBuilder(std::size_t section_count) {
    buf_.resize(kHeaderSize + section_count * kSectionEntrySize, '\0');
    sections_.reserve(section_count);
  }

  void raw(const void* p, std::size_t n) {
    if (n) buf_.append(static_cast<const char*>(p), n);
  }
  template <class T>
  void put(T v) {
    raw(&v, sizeof v);
  }
  template <class T>
  void vec(const std::vector<T>& v) {
    raw(v.data(), v.size() * sizeof(T));
  }

  void begin(SectionKind kind) {
    buf_.resize(align_up(buf_.size()), '\0');
    cur_ = SectionInfo{kind, buf_.size(), 0, 0};
  }
  void end() {
    cur_.length = buf_.size() - cur_.offset;
    cur_.crc = crc32(buf_.data() + cur_.offset, cur_.length);
    sections_.push_back(cur_);
  }
  template <class T>
  void section_vec(SectionKind kind, const std::vector<T>& v) {
    begin(kind);
    vec(v);
    end();
  }
  void section_raster_u8(SectionKind kind, const raster::Raster<std::uint8_t>& r) {
    begin(kind);
    geometry(r.geom());
    vec(r.data());
    end();
  }

  void geometry(const raster::GridGeometry& g) {
    put<double>(g.origin_x);
    put<double>(g.origin_y);
    put<double>(g.cell_w);
    put<double>(g.cell_h);
    put<std::int32_t>(g.cols);
    put<std::int32_t>(g.rows);
  }

  // Patches header + table, computes the CRC ladder, appends the footer.
  std::string finish() {
    const std::uint64_t data_end = buf_.size();
    char* h = buf_.data();
    std::memcpy(h, kMagic, 8);
    patch_u32(8, kFormatVersion);
    patch_u32(12, kEndianTag);
    patch_u64(16, sections_.size());
    patch_u64(24, kHeaderSize);
    patch_u64(32, data_end);
    // [40, 60) stays zero (reserved).
    patch_u32(60, crc32(h, 60));
    for (std::size_t i = 0; i < sections_.size(); ++i) {
      const std::size_t off = kHeaderSize + i * kSectionEntrySize;
      patch_u32(off, static_cast<std::uint32_t>(sections_[i].kind));
      patch_u32(off + 4, 0);
      patch_u64(off + 8, sections_[i].offset);
      patch_u64(off + 16, sections_[i].length);
      patch_u32(off + 24, sections_[i].crc);
      patch_u32(off + 28, 0);
    }
    const std::uint32_t body_crc = crc32(buf_.data(), data_end);
    char footer[kFooterSize] = {};
    const std::uint64_t file_size = data_end + kFooterSize;
    std::memcpy(footer, &file_size, 8);
    std::memcpy(footer + 8, &body_crc, 4);
    std::memcpy(footer + 16, kFooterMagic, 8);
    const std::uint32_t footer_crc = crc32(footer, 24);
    std::memcpy(footer + 24, &footer_crc, 4);
    buf_.append(footer, kFooterSize);
    return std::move(buf_);
  }

 private:
  void patch_u32(std::size_t off, std::uint32_t v) {
    std::memcpy(buf_.data() + off, &v, 4);
  }
  void patch_u64(std::size_t off, std::uint64_t v) {
    std::memcpy(buf_.data() + off, &v, 8);
  }

  std::string buf_;
  std::vector<SectionInfo> sections_;
  SectionInfo cur_;
};

// ---------------------------------------------------------------------
// decode helpers
// ---------------------------------------------------------------------

std::uint32_t load_u32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint64_t load_u64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// Sequential reader over one validated section payload.
struct Cursor {
  const unsigned char* p;
  std::size_t n;
  std::size_t off = 0;

  template <class T>
  T get() {
    T v{};
    std::memcpy(&v, p + off, sizeof v);
    off += sizeof v;
    return v;
  }
};

template <class T>
std::vector<T> copy_vec(const unsigned char* p, std::size_t bytes) {
  std::vector<T> v(bytes / sizeof(T));
  if (bytes) std::memcpy(v.data(), p, bytes);
  return v;
}

Status fail(ErrCode code, std::uint64_t offset, const std::string& source,
            std::string message) {
  return Status::error(code, offset, source, std::move(message));
}

struct SectionLookup {
  const unsigned char* base = nullptr;
  std::vector<SectionInfo> sections;
  std::string source;

  const SectionInfo* find(SectionKind kind) const {
    for (const auto& s : sections) {
      if (s.kind == kind) return &s;
    }
    return nullptr;
  }
};

// Walks header/table/footer and validates the full CRC ladder. On
// success `out` holds every section with in-bounds, CRC-clean payloads.
Status validate_image(const void* data, std::size_t size,
                      const std::string& source, SectionLookup& out,
                      FileReport* report) {
  const auto* base = static_cast<const unsigned char*>(data);
  if (size < kHeaderSize + kFooterSize) {
    return fail(ErrCode::kTruncated, size, source,
                "file shorter than header + footer");
  }
  if (std::memcmp(base, kMagic, 8) != 0) {
    return fail(ErrCode::kBadMagic, 0, source, "bad snapshot magic");
  }
  const std::uint32_t version = load_u32(base + 8);
  if (report) report->version = version;
  if (version != kFormatVersion) {
    return fail(ErrCode::kSchema, 8, source,
                "unsupported format version " + std::to_string(version));
  }
  if (load_u32(base + 12) != kEndianTag) {
    return fail(ErrCode::kSchema, 12, source,
                "endianness mismatch (file written on foreign-endian host)");
  }
  if (load_u32(base + 60) != crc32(base, 60)) {
    return fail(ErrCode::kParse, 60, source, "header checksum mismatch");
  }
  if (report) report->header_ok = true;

  const std::uint64_t section_count = load_u64(base + 16);
  const std::uint64_t table_offset = load_u64(base + 24);
  const std::uint64_t data_end = load_u64(base + 32);
  if (table_offset != kHeaderSize) {
    return fail(ErrCode::kSchema, 24, source, "unexpected table offset");
  }
  if (section_count > (size / kSectionEntrySize) + 1) {
    return fail(ErrCode::kSchema, 16, source, "implausible section count");
  }
  const std::uint64_t table_end =
      table_offset + section_count * kSectionEntrySize;
  if (table_end > size || data_end > size || table_end > data_end) {
    return fail(ErrCode::kTruncated, 32, source,
                "section table or data extends past end of file");
  }

  // Footer first: it pins file_size and the whole-body CRC, so torn
  // tails and padding flips are caught even before section walks.
  const unsigned char* footer = base + size - kFooterSize;
  if (std::memcmp(footer + 16, kFooterMagic, 8) != 0) {
    return fail(ErrCode::kTruncated, size - kFooterSize + 16, source,
                "footer magic missing (torn write?)");
  }
  if (load_u32(footer + 24) != crc32(footer, 24)) {
    return fail(ErrCode::kParse, size - kFooterSize + 24, source,
                "footer checksum mismatch");
  }
  // The 4 pad bytes after footer_crc are the only ones no CRC covers;
  // requiring them zero keeps "every byte is validated" literally true.
  if (load_u32(footer + 28) != 0) {
    return fail(ErrCode::kParse, size - kFooterSize + 28, source,
                "footer padding is not zero");
  }
  if (load_u64(footer) != size) {
    return fail(ErrCode::kTruncated, size - kFooterSize, source,
                "footer file size disagrees with actual size");
  }
  if (data_end != size - kFooterSize) {
    return fail(ErrCode::kSchema, 32, source,
                "header data_end disagrees with footer position");
  }
  if (report) report->footer_ok = true;
  // The whole-body CRC duplicates the per-section CRCs over the
  // payloads; a second full pass would double cold-start checksum time.
  // The strict decode path instead proves the same total coverage in
  // one pass: per-section CRCs for payloads (below) plus explicit
  // zero checks for every byte they skip (reserved entry fields,
  // alignment padding, table slack). The inspector still verifies the
  // redundant whole-body CRC — it is the cross-check on the ladder
  // itself.
  const bool body_ok =
      report ? load_u32(footer + 8) == crc32(base, data_end) : true;
  if (report) report->body_crc_ok = body_ok;

  out.base = base;
  out.source = source;
  out.sections.reserve(section_count);
  Status first_bad;  // inspect mode records all, returns first failure
  for (std::uint64_t i = 0; i < section_count; ++i) {
    const unsigned char* e = base + table_offset + i * kSectionEntrySize;
    SectionInfo info;
    info.kind = static_cast<SectionKind>(load_u32(e));
    info.offset = load_u64(e + 8);
    info.length = load_u64(e + 16);
    info.crc = load_u32(e + 24);
    const std::uint64_t entry_off = table_offset + i * kSectionEntrySize;
    bool crc_ok = false;
    if (load_u32(e + 4) != 0 || load_u32(e + 28) != 0) {
      if (first_bad.ok()) {
        first_bad = fail(ErrCode::kParse, entry_off, source,
                         "section entry reserved bytes are not zero");
      }
    }
    if (info.offset < table_end || info.offset > data_end ||
        info.length > data_end - info.offset) {
      if (first_bad.ok()) {
        first_bad = fail(ErrCode::kOutOfRange, entry_off, source,
                         std::string("section ") +
                             std::string(section_kind_name(info.kind)) +
                             " payload out of bounds");
      }
    } else {
      crc_ok = crc32(base + info.offset, info.length) == info.crc;
      if (!crc_ok && first_bad.ok()) {
        first_bad = fail(ErrCode::kParse, info.offset, source,
                         std::string("section ") +
                             std::string(section_kind_name(info.kind)) +
                             " checksum mismatch");
      }
    }
    out.sections.push_back(info);
    if (report) report->sections.push_back(SectionReport{info, crc_ok});
  }
  if (!first_bad.ok()) return first_bad;
  if (!body_ok) {
    // Every section passed but a covered byte (padding, table slack)
    // flipped — still a corrupt file.
    return fail(ErrCode::kParse, size - kFooterSize + 8, source,
                "body checksum mismatch");
  }

  // Sections must tile [table_end, data_end) in ascending order with
  // zero-filled gaps: together with the per-section CRCs this covers
  // every body byte without the redundant second CRC pass.
  std::uint64_t cursor = table_end;
  for (const SectionInfo& s : out.sections) {
    if (s.offset < cursor) {
      return fail(ErrCode::kSchema, s.offset, source,
                  "section payloads overlap or are out of order");
    }
    for (std::uint64_t b = cursor; b < s.offset; ++b) {
      if (base[b] != 0) {
        return fail(ErrCode::kParse, b, source, "padding byte is not zero");
      }
    }
    cursor = s.offset + s.length;
  }
  for (std::uint64_t b = cursor; b < data_end; ++b) {
    if (base[b] != 0) {
      return fail(ErrCode::kParse, b, source, "padding byte is not zero");
    }
  }
  return Status{};
}

// Fetches a required section and checks an exact or element-size shape.
const SectionInfo* need(const SectionLookup& img, SectionKind kind,
                        Status& status) {
  const SectionInfo* s = img.find(kind);
  if (!s) {
    status = fail(ErrCode::kSchema, 0, img.source,
                  std::string("missing section ") +
                      std::string(section_kind_name(kind)));
  }
  return s;
}

bool check_len(const SectionLookup& img, const SectionInfo& s,
               std::uint64_t want, Status& status) {
  if (s.length == want) return true;
  status = fail(ErrCode::kSchema, s.offset, img.source,
                std::string("section ") +
                    std::string(section_kind_name(s.kind)) + " has length " +
                    std::to_string(s.length) + ", expected " +
                    std::to_string(want));
  return false;
}

constexpr std::size_t kGeomBytes = 40;

template <class T>
Status decode_raster(const SectionLookup& img, SectionKind kind,
                     raster::Raster<T>& out) {
  Status status;
  const SectionInfo* s = need(img, kind, status);
  if (!s) return status;
  if (s->length < kGeomBytes) {
    return fail(ErrCode::kTruncated, s->offset, img.source,
                std::string("raster section ") +
                    std::string(section_kind_name(kind)) + " too short");
  }
  Cursor c{img.base + s->offset, static_cast<std::size_t>(s->length)};
  raster::GridGeometry geom;
  geom.origin_x = c.get<double>();
  geom.origin_y = c.get<double>();
  geom.cell_w = c.get<double>();
  geom.cell_h = c.get<double>();
  geom.cols = c.get<std::int32_t>();
  geom.rows = c.get<std::int32_t>();
  if (!std::isfinite(geom.origin_x) || !std::isfinite(geom.origin_y) ||
      !std::isfinite(geom.cell_w) || !std::isfinite(geom.cell_h) ||
      geom.cell_w <= 0.0 || geom.cell_h <= 0.0 || geom.cols < 0 ||
      geom.rows < 0) {
    return fail(ErrCode::kOutOfRange, s->offset, img.source,
                std::string("raster section ") +
                    std::string(section_kind_name(kind)) +
                    " has invalid geometry");
  }
  const std::uint64_t cell_bytes = geom.cell_count() * sizeof(T);
  if (s->length - kGeomBytes != cell_bytes) {
    return fail(ErrCode::kSchema, s->offset, img.source,
                std::string("raster section ") +
                    std::string(section_kind_name(kind)) +
                    " cell payload disagrees with cols*rows");
  }
  out = raster::Raster<T>(geom);
  if (cell_bytes) std::memcpy(out.data().data(), c.p + c.off, cell_bytes);
  return Status{};
}

}  // namespace

// ---------------------------------------------------------------------
// encode_world
// ---------------------------------------------------------------------

std::string encode_world(const core::World& world,
                         const core::ProviderRiskResult& provider_risk) {
  const auto& txr = world.corpus().transceivers();
  const std::size_t n = txr.size();
  ImageBuilder b(kSectionCount);

  b.begin(SectionKind::kMeta);
  b.put<std::uint64_t>(world.config().seed);
  b.put<double>(world.config().corpus_scale);
  b.put<double>(world.config().whp_cell_m);
  b.put<std::int32_t>(world.config().counties_per_state);
  b.put<std::uint32_t>(0);
  b.put<std::uint64_t>(world.ingest_dropped());
  b.put<std::uint64_t>(world.ingest_repaired());
  b.put<std::uint64_t>(n);
  b.end();

  // Transceiver SoA columns.
  {
    std::vector<double> lon(n), lat(n);
    std::vector<std::uint8_t> radio(n);
    std::vector<std::uint16_t> mcc(n), mnc(n);
    std::vector<std::uint32_t> cell_id(n);
    std::vector<std::int16_t> state(n);
    for (std::size_t i = 0; i < n; ++i) {
      lon[i] = txr[i].position.lon;
      lat[i] = txr[i].position.lat;
      radio[i] = static_cast<std::uint8_t>(txr[i].radio);
      mcc[i] = txr[i].mcc;
      mnc[i] = txr[i].mnc;
      cell_id[i] = txr[i].cell_id;
      state[i] = txr[i].state;
    }
    b.section_vec(SectionKind::kTxrLon, lon);
    b.section_vec(SectionKind::kTxrLat, lat);
    b.section_vec(SectionKind::kTxrRadio, radio);
    b.section_vec(SectionKind::kTxrMcc, mcc);
    b.section_vec(SectionKind::kTxrMnc, mnc);
    b.section_vec(SectionKind::kTxrCellId, cell_id);
    b.section_vec(SectionKind::kTxrState, state);
  }
  b.section_vec(SectionKind::kTxrClass, Access::txr_class(world));
  b.section_vec(SectionKind::kTxrCounty, Access::txr_county(world));
  b.section_vec(SectionKind::kTxrProvider, Access::txr_provider(world));

  b.section_raster_u8(SectionKind::kWhpGrid, world.whp().grid());
  {
    b.begin(SectionKind::kWhpStates);
    b.geometry(world.whp().state_grid().geom());
    b.vec(world.whp().state_grid().data());
    b.end();
  }
  b.section_raster_u8(SectionKind::kWhpUrban, world.whp().urban_mask());
  b.section_raster_u8(SectionKind::kWhpRoads, world.whp().road_mask());

  {
    const auto& counties = world.counties().counties();
    b.begin(SectionKind::kCountyTable);
    for (const auto& c : counties) {
      b.put<std::int32_t>(c.state);
      b.put<std::uint32_t>(c.is_major ? 1u : 0u);
      b.put<double>(c.anchor.lon);
      b.put<double>(c.anchor.lat);
      b.put<double>(c.population);
    }
    b.end();
    b.begin(SectionKind::kCountyNames);
    b.put<std::uint32_t>(static_cast<std::uint32_t>(counties.size()));
    std::uint32_t off = 0;
    for (const auto& c : counties) {
      b.put<std::uint32_t>(off);
      off += static_cast<std::uint32_t>(c.name.size());
    }
    b.put<std::uint32_t>(off);
    for (const auto& c : counties) b.raw(c.name.data(), c.name.size());
    b.end();
  }

  {
    const auto& idx = world.txr_index();
    b.begin(SectionKind::kIndexMeta);
    b.put<double>(idx.bounds().min_x);
    b.put<double>(idx.bounds().min_y);
    b.put<double>(idx.bounds().max_x);
    b.put<double>(idx.bounds().max_y);
    b.put<std::int32_t>(Access::cols(idx));
    b.put<std::int32_t>(Access::rows(idx));
    b.put<double>(Access::inv_cw(idx));
    b.put<double>(Access::inv_ch(idx));
    b.put<std::uint64_t>(idx.size());
    b.put<std::uint64_t>(Access::binned(idx).size());
    b.end();
    b.section_vec(SectionKind::kIndexBinnedIds, Access::binned(idx));
    b.section_vec(SectionKind::kIndexBinnedX, Access::binned_x(idx));
    b.section_vec(SectionKind::kIndexBinnedY, Access::binned_y(idx));
    b.section_vec(SectionKind::kIndexCellStart, Access::cell_start(idx));
  }

  b.begin(SectionKind::kProviderRisk);
  for (const auto& row : provider_risk.rows) {
    b.put<std::uint64_t>(row.fleet);
    b.put<std::uint64_t>(row.moderate);
    b.put<std::uint64_t>(row.high);
    b.put<std::uint64_t>(row.very_high);
  }
  b.put<std::uint64_t>(provider_risk.regional_brands_at_risk);
  b.end();

  return b.finish();
}

// ---------------------------------------------------------------------
// decode_world
// ---------------------------------------------------------------------

fault::Result<LoadedWorld> decode_world(const void* data, std::size_t size,
                                        std::string source) {
  SectionLookup img;
  if (Status s = validate_image(data, size, source, img, nullptr); !s.ok()) {
    return s;
  }
  Status status;

  // meta
  const SectionInfo* meta = need(img, SectionKind::kMeta, status);
  if (!meta) return status;
  if (!check_len(img, *meta, 56, status)) return status;
  Cursor mc{img.base + meta->offset, static_cast<std::size_t>(meta->length)};
  synth::ScenarioConfig config;
  config.seed = mc.get<std::uint64_t>();
  config.corpus_scale = mc.get<double>();
  config.whp_cell_m = mc.get<double>();
  config.counties_per_state = mc.get<std::int32_t>();
  (void)mc.get<std::uint32_t>();
  const auto ingest_dropped = mc.get<std::uint64_t>();
  const auto ingest_repaired = mc.get<std::uint64_t>();
  const std::uint64_t n = mc.get<std::uint64_t>();
  if (!std::isfinite(config.corpus_scale) || config.corpus_scale <= 0.0 ||
      !std::isfinite(config.whp_cell_m) || config.whp_cell_m <= 0.0 ||
      config.counties_per_state < 0) {
    return fail(ErrCode::kOutOfRange, meta->offset, source,
                "meta section carries an invalid scenario config");
  }
  if (n > (1ull << 32)) {
    return fail(ErrCode::kOutOfRange, meta->offset, source,
                "implausible transceiver count");
  }

  // Transceiver columns — every column must agree on n.
  struct Col {
    SectionKind kind;
    std::size_t elem;
    const SectionInfo* info = nullptr;
  };
  Col cols[] = {
      {SectionKind::kTxrLon, 8},    {SectionKind::kTxrLat, 8},
      {SectionKind::kTxrRadio, 1},  {SectionKind::kTxrMcc, 2},
      {SectionKind::kTxrMnc, 2},    {SectionKind::kTxrCellId, 4},
      {SectionKind::kTxrState, 2},  {SectionKind::kTxrClass, 1},
      {SectionKind::kTxrCounty, 4}, {SectionKind::kTxrProvider, 1},
  };
  for (auto& col : cols) {
    col.info = need(img, col.kind, status);
    if (!col.info) return status;
    if (!check_len(img, *col.info, n * col.elem, status)) return status;
  }
  const auto col_ptr = [&](SectionKind kind) -> const unsigned char* {
    for (const auto& col : cols) {
      if (col.kind == kind) return img.base + col.info->offset;
    }
    return nullptr;
  };
  const auto lon = copy_vec<double>(col_ptr(SectionKind::kTxrLon), n * 8);
  const auto lat = copy_vec<double>(col_ptr(SectionKind::kTxrLat), n * 8);
  const auto radio =
      copy_vec<std::uint8_t>(col_ptr(SectionKind::kTxrRadio), n);
  const auto mcc =
      copy_vec<std::uint16_t>(col_ptr(SectionKind::kTxrMcc), n * 2);
  const auto mnc =
      copy_vec<std::uint16_t>(col_ptr(SectionKind::kTxrMnc), n * 2);
  const auto cell_id =
      copy_vec<std::uint32_t>(col_ptr(SectionKind::kTxrCellId), n * 4);
  const auto state =
      copy_vec<std::int16_t>(col_ptr(SectionKind::kTxrState), n * 2);
  auto txr_class = copy_vec<std::uint8_t>(col_ptr(SectionKind::kTxrClass), n);
  auto txr_county =
      copy_vec<std::int32_t>(col_ptr(SectionKind::kTxrCounty), n * 4);
  auto txr_provider =
      copy_vec<std::uint8_t>(col_ptr(SectionKind::kTxrProvider), n);

  // counties (needed before txr_county domain check)
  const SectionInfo* ctab = need(img, SectionKind::kCountyTable, status);
  if (!ctab) return status;
  const SectionInfo* cnames = need(img, SectionKind::kCountyNames, status);
  if (!cnames) return status;
  if (ctab->length % 32 != 0) {
    return fail(ErrCode::kSchema, ctab->offset, source,
                "county table length is not a whole number of records");
  }
  const std::uint64_t county_count = ctab->length / 32;
  const int num_states = synth::UsAtlas::get().num_states();
  if (cnames->length < 4 + (county_count + 1) * 4) {
    return fail(ErrCode::kTruncated, cnames->offset, source,
                "county name table too short");
  }
  Cursor nc{img.base + cnames->offset,
            static_cast<std::size_t>(cnames->length)};
  if (nc.get<std::uint32_t>() != county_count) {
    return fail(ErrCode::kSchema, cnames->offset, source,
                "county name count disagrees with county table");
  }
  const std::uint64_t blob_bytes = cnames->length - 4 - (county_count + 1) * 4;
  std::vector<synth::County> counties(county_count);
  {
    std::vector<std::uint32_t> offs(county_count + 1);
    for (auto& o : offs) o = nc.get<std::uint32_t>();
    if (offs.back() != blob_bytes) {
      return fail(ErrCode::kSchema, cnames->offset, source,
                  "county name blob size disagrees with offsets");
    }
    // Validate the whole offset array before touching the blob: a
    // CRC-consistent but hostile image could pass the checks for early
    // indices while a later one is wild, and copying as we validate
    // would read past the section (and potentially the mmap) before the
    // bad index is reached. Monotone non-decreasing plus the pinned
    // offs.back() == blob_bytes bounds every slice inside the blob.
    for (std::uint64_t i = 0; i < county_count; ++i) {
      if (offs[i] > offs[i + 1]) {
        return fail(ErrCode::kOutOfRange, cnames->offset, source,
                    "county name offsets not monotonic");
      }
    }
    const char* blob = reinterpret_cast<const char*>(nc.p + nc.off);
    Cursor tc{img.base + ctab->offset, static_cast<std::size_t>(ctab->length)};
    for (std::uint64_t i = 0; i < county_count; ++i) {
      auto& c = counties[i];
      c.state = tc.get<std::int32_t>();
      c.is_major = tc.get<std::uint32_t>() != 0;
      c.anchor.lon = tc.get<double>();
      c.anchor.lat = tc.get<double>();
      c.population = tc.get<double>();
      if (c.state < 0 || c.state >= num_states) {
        return fail(ErrCode::kOutOfRange, ctab->offset + i * 32, source,
                    "county state index out of range");
      }
      c.name.assign(blob + offs[i], offs[i + 1] - offs[i]);
    }
  }

  // Domain checks on the cached per-transceiver columns.
  for (std::uint64_t i = 0; i < n; ++i) {
    if (radio[i] >= cellnet::kNumRadioTypes) {
      return fail(ErrCode::kOutOfRange, i, source,
                  "transceiver radio type out of range");
    }
    if (txr_class[i] >= synth::kNumWhpClasses) {
      return fail(ErrCode::kOutOfRange, i, source,
                  "transceiver WHP class out of range");
    }
    if (txr_provider[i] >= cellnet::kNumProviders) {
      return fail(ErrCode::kOutOfRange, i, source,
                  "transceiver provider out of range");
    }
    if (txr_county[i] < -1 ||
        txr_county[i] >= static_cast<std::int64_t>(county_count)) {
      return fail(ErrCode::kOutOfRange, i, source,
                  "transceiver county index out of range");
    }
    if (!geo::is_valid(geo::LonLat{lon[i], lat[i]})) {
      return fail(ErrCode::kOutOfRange, i, source,
                  "transceiver position outside lon/lat domain");
    }
  }

  // rasters
  raster::ClassRaster whp_grid;
  raster::Raster<std::int16_t> whp_states;
  raster::MaskRaster whp_urban, whp_roads;
  if (Status s = decode_raster(img, SectionKind::kWhpGrid, whp_grid); !s.ok())
    return s;
  if (Status s = decode_raster(img, SectionKind::kWhpStates, whp_states);
      !s.ok())
    return s;
  if (Status s = decode_raster(img, SectionKind::kWhpUrban, whp_urban);
      !s.ok())
    return s;
  if (Status s = decode_raster(img, SectionKind::kWhpRoads, whp_roads);
      !s.ok())
    return s;

  // grid index
  const SectionInfo* imeta = need(img, SectionKind::kIndexMeta, status);
  if (!imeta) return status;
  if (!check_len(img, *imeta, 72, status)) return status;
  Cursor ic{img.base + imeta->offset, static_cast<std::size_t>(imeta->length)};
  geo::BBox bounds;
  bounds.min_x = ic.get<double>();
  bounds.min_y = ic.get<double>();
  bounds.max_x = ic.get<double>();
  bounds.max_y = ic.get<double>();
  const std::int32_t icols = ic.get<std::int32_t>();
  const std::int32_t irows = ic.get<std::int32_t>();
  const double inv_cw = ic.get<double>();
  const double inv_ch = ic.get<double>();
  const std::uint64_t n_points = ic.get<std::uint64_t>();
  const std::uint64_t n_binned = ic.get<std::uint64_t>();
  if (n_points != n || n_binned != n) {
    return fail(ErrCode::kSchema, imeta->offset, source,
                "index point count disagrees with transceiver count");
  }
  if (icols < 0 || irows < 0 || !std::isfinite(inv_cw) ||
      !std::isfinite(inv_ch)) {
    return fail(ErrCode::kOutOfRange, imeta->offset, source,
                "index grid dimensions invalid");
  }
  const std::uint64_t cell_count =
      static_cast<std::uint64_t>(icols) * static_cast<std::uint64_t>(irows);
  if (n > 0 && (icols == 0 || irows == 0)) {
    return fail(ErrCode::kSchema, imeta->offset, source,
                "index has points but zero cells");
  }

  const SectionInfo* sb = need(img, SectionKind::kIndexBinnedIds, status);
  if (!sb) return status;
  const SectionInfo* sbx = need(img, SectionKind::kIndexBinnedX, status);
  if (!sbx) return status;
  const SectionInfo* sby = need(img, SectionKind::kIndexBinnedY, status);
  if (!sby) return status;
  const SectionInfo* scs = need(img, SectionKind::kIndexCellStart, status);
  if (!scs) return status;
  if (!check_len(img, *sb, n * 4, status)) return status;
  if (!check_len(img, *sbx, n * 8, status)) return status;
  if (!check_len(img, *sby, n * 8, status)) return status;
  const std::uint64_t want_cells = n == 0 && cell_count == 0
                                       ? scs->length / 4
                                       : cell_count + 1;
  if (!check_len(img, *scs, want_cells * 4, status)) return status;

  auto binned = copy_vec<std::uint32_t>(img.base + sb->offset, n * 4);
  auto binned_x = copy_vec<double>(img.base + sbx->offset, n * 8);
  auto binned_y = copy_vec<double>(img.base + sby->offset, n * 8);
  auto cell_start =
      copy_vec<std::uint32_t>(img.base + scs->offset, scs->length);

  // cell_start must be a monotone prefix-sum ending at n, and every
  // binned entry must reference a real point with the matching
  // coordinates — this is what makes a loaded index memory-safe to
  // query without re-deriving anything.
  if (!cell_start.empty()) {
    if (cell_start.front() != 0 || cell_start.back() != n) {
      return fail(ErrCode::kOutOfRange, scs->offset, source,
                  "index cell spans do not cover the point set");
    }
    for (std::size_t i = 1; i < cell_start.size(); ++i) {
      if (cell_start[i] < cell_start[i - 1]) {
        return fail(ErrCode::kOutOfRange, scs->offset, source,
                    "index cell spans not monotone");
      }
    }
  } else if (n != 0) {
    return fail(ErrCode::kSchema, scs->offset, source,
                "index has points but no cell spans");
  }
  std::vector<geo::Vec2> points(n);
  for (std::uint64_t i = 0; i < n; ++i) points[i] = {lon[i], lat[i]};
  for (std::uint64_t k = 0; k < n; ++k) {
    const std::uint32_t id = binned[k];
    if (id >= n) {
      return fail(ErrCode::kOutOfRange, sb->offset + k * 4, source,
                  "index binned id out of range");
    }
    if (std::memcmp(&binned_x[k], &lon[id], 8) != 0 ||
        std::memcmp(&binned_y[k], &lat[id], 8) != 0) {
      return fail(ErrCode::kSchema, sbx->offset + k * 8, source,
                  "index SoA coordinates disagree with transceiver positions");
    }
  }

  // provider risk aggregate
  const SectionInfo* risk = need(img, SectionKind::kProviderRisk, status);
  if (!risk) return status;
  if (!check_len(img, *risk,
                 cellnet::kNumProviders * 4 * 8 + 8, status)) {
    return status;
  }
  core::ProviderRiskResult stored_risk;
  {
    Cursor rc{img.base + risk->offset, static_cast<std::size_t>(risk->length)};
    for (int p = 0; p < cellnet::kNumProviders; ++p) {
      auto& row = stored_risk.rows[static_cast<std::size_t>(p)];
      row.provider = static_cast<cellnet::Provider>(p);
      row.fleet = rc.get<std::uint64_t>();
      row.moderate = rc.get<std::uint64_t>();
      row.high = rc.get<std::uint64_t>();
      row.very_high = rc.get<std::uint64_t>();
    }
    stored_risk.regional_brands_at_risk = rc.get<std::uint64_t>();
  }

  // assemble
  std::vector<cellnet::Transceiver> records(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    auto& t = records[i];
    t.id = static_cast<std::uint32_t>(i);
    t.position = {lon[i], lat[i]};
    t.radio = static_cast<cellnet::RadioType>(radio[i]);
    t.mcc = mcc[i];
    t.mnc = mnc[i];
    t.cell_id = cell_id[i];
    t.state = state[i];
  }
  LoadedWorld loaded{
      Access::make_world(
          config,
          Access::make_whp(std::move(whp_grid), std::move(whp_states),
                           std::move(whp_urban), std::move(whp_roads)),
          cellnet::CellCorpus(std::move(records)),
          Access::make_counties(std::move(counties)), ingest_dropped,
          ingest_repaired, std::move(txr_class), std::move(txr_county),
          std::move(txr_provider),
          Access::make_index(std::move(points), std::move(binned),
                             std::move(binned_x), std::move(binned_y),
                             std::move(cell_start), bounds, icols, irows,
                             inv_cw, inv_ch)),
      stored_risk};

  // Semantic cross-check: the stored aggregate must be re-derivable from
  // the restored arrays. Catches "checksums fine, writer was wrong".
  const core::ProviderRiskResult fresh = core::run_provider_risk(loaded.world);
  for (int p = 0; p < cellnet::kNumProviders; ++p) {
    const auto& a = stored_risk.rows[static_cast<std::size_t>(p)];
    const auto& b = fresh.rows[static_cast<std::size_t>(p)];
    if (a.fleet != b.fleet || a.moderate != b.moderate || a.high != b.high ||
        a.very_high != b.very_high) {
      return fail(ErrCode::kSchema, risk->offset, source,
                  "stored provider-risk aggregate disagrees with restored "
                  "world");
    }
  }
  if (stored_risk.regional_brands_at_risk != fresh.regional_brands_at_risk) {
    return fail(ErrCode::kSchema, risk->offset, source,
                "stored regional-brand aggregate disagrees with restored "
                "world");
  }
  return loaded;
}

// ---------------------------------------------------------------------
// inspect_image
// ---------------------------------------------------------------------

bool FileReport::ok() const {
  if (!header_ok || !footer_ok || !body_crc_ok) return false;
  for (const auto& s : sections) {
    if (!s.crc_ok) return false;
  }
  return true;
}

fault::Result<FileReport> inspect_image(const void* data, std::size_t size,
                                        std::string source) {
  FileReport report;
  report.file_size = size;
  SectionLookup img;
  const Status s = validate_image(data, size, source, img, &report);
  // Walkable-but-corrupt files come back as a report with flags unset;
  // only structurally unwalkable images are an error.
  if (!s.ok() && !report.header_ok) return s;
  return report;
}

}  // namespace fa::store

// Section-container internals shared by the monolithic snapshot codec
// (store/codec.cpp) and the sharded container codec (fa::shard): the
// image builder, the container validators, and the small decode
// helpers (cursors, bulk copies, shape checks).
//
// Two container flavors share one byte layout — header, entry table,
// 64-byte-aligned payloads, footer:
//   * FASNAP01 (monolithic): one section per kind, entry bytes [4,8)
//     reserved-zero, validated strictly by validate_image() (full CRC
//     ladder, padding scan).
//   * FASHRD01 (sharded): per-shard sections repeat a kind once per
//     shard and carry the owning shard id in entry bytes [4,8).
//     validate_container() walks header/table/footer only; payload
//     verification is the caller's policy, which is what lets a shard
//     open serve straight off the mmap without a per-record decode.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "fault/status.hpp"
#include "raster/raster.hpp"
#include "store/format.hpp"

namespace fa::store {

// ---------------------------------------------------------------------
// encode
// ---------------------------------------------------------------------

class ImageBuilder {
 public:
  // `default_owner` is what begin(kind) stamps into the entry's owner
  // bytes: 0 for monolithic images (validated as reserved), kGlobalOwner
  // for whole-world sections of a sharded container. Shard-local
  // sections pass their shard id to begin(kind, owner) explicitly.
  explicit ImageBuilder(std::size_t section_count, const char* magic = kMagic,
                        std::uint32_t default_owner = 0)
      : magic_(magic), default_owner_(default_owner) {
    buf_.resize(kHeaderSize + section_count * kSectionEntrySize, '\0');
    sections_.reserve(section_count);
  }

  void raw(const void* p, std::size_t n) {
    if (n) buf_.append(static_cast<const char*>(p), n);
  }
  template <class T>
  void put(T v) {
    raw(&v, sizeof v);
  }
  template <class T>
  void vec(const std::vector<T>& v) {
    raw(v.data(), v.size() * sizeof(T));
  }
  template <class T>
  void span(const T* p, std::size_t count) {
    raw(p, count * sizeof(T));
  }

  void begin(SectionKind kind) { begin(kind, default_owner_); }
  void begin(SectionKind kind, std::uint32_t owner) {
    buf_.resize(align_up(buf_.size()), '\0');
    cur_ = SectionInfo{kind, buf_.size(), 0, 0, owner};
  }
  void end() {
    cur_.length = buf_.size() - cur_.offset;
    cur_.crc = crc32(buf_.data() + cur_.offset, cur_.length);
    sections_.push_back(cur_);
  }
  template <class T>
  void section_vec(SectionKind kind, const std::vector<T>& v) {
    begin(kind);
    vec(v);
    end();
  }
  template <class T>
  void section_span(SectionKind kind, std::uint32_t owner, const T* p,
                    std::size_t count) {
    begin(kind, owner);
    span(p, count);
    end();
  }
  void section_raster_u8(SectionKind kind,
                         const raster::Raster<std::uint8_t>& r) {
    begin(kind);
    geometry(r.geom());
    vec(r.data());
    end();
  }

  void geometry(const raster::GridGeometry& g) {
    put<double>(g.origin_x);
    put<double>(g.origin_y);
    put<double>(g.cell_w);
    put<double>(g.cell_h);
    put<std::int32_t>(g.cols);
    put<std::int32_t>(g.rows);
  }

  // Patches header + table, computes the CRC ladder, appends the footer.
  std::string finish() {
    const std::uint64_t data_end = buf_.size();
    char* h = buf_.data();
    std::memcpy(h, magic_, 8);
    patch_u32(8, kFormatVersion);
    patch_u32(12, kEndianTag);
    patch_u64(16, sections_.size());
    patch_u64(24, kHeaderSize);
    patch_u64(32, data_end);
    // [40, 60) stays zero (reserved).
    patch_u32(60, crc32(h, 60));
    for (std::size_t i = 0; i < sections_.size(); ++i) {
      const std::size_t off = kHeaderSize + i * kSectionEntrySize;
      patch_u32(off, static_cast<std::uint32_t>(sections_[i].kind));
      patch_u32(off + 4, sections_[i].owner);
      patch_u64(off + 8, sections_[i].offset);
      patch_u64(off + 16, sections_[i].length);
      patch_u32(off + 24, sections_[i].crc);
      patch_u32(off + 28, 0);
    }
    const std::uint32_t body_crc = crc32(buf_.data(), data_end);
    char footer[kFooterSize] = {};
    const std::uint64_t file_size = data_end + kFooterSize;
    std::memcpy(footer, &file_size, 8);
    std::memcpy(footer + 8, &body_crc, 4);
    std::memcpy(footer + 16, kFooterMagic, 8);
    const std::uint32_t footer_crc = crc32(footer, 24);
    std::memcpy(footer + 24, &footer_crc, 4);
    buf_.append(footer, kFooterSize);
    return std::move(buf_);
  }

 private:
  void patch_u32(std::size_t off, std::uint32_t v) {
    std::memcpy(buf_.data() + off, &v, 4);
  }
  void patch_u64(std::size_t off, std::uint64_t v) {
    std::memcpy(buf_.data() + off, &v, 8);
  }

  const char* magic_;
  std::uint32_t default_owner_ = 0;
  std::string buf_;
  std::vector<SectionInfo> sections_;
  SectionInfo cur_;
};

// ---------------------------------------------------------------------
// decode helpers
// ---------------------------------------------------------------------

inline std::uint32_t load_u32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
inline std::uint64_t load_u64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// Sequential reader over one validated section payload.
struct Cursor {
  const unsigned char* p;
  std::size_t n;
  std::size_t off = 0;

  template <class T>
  T get() {
    T v{};
    std::memcpy(&v, p + off, sizeof v);
    off += sizeof v;
    return v;
  }
};

template <class T>
std::vector<T> copy_vec(const unsigned char* p, std::size_t bytes) {
  std::vector<T> v(bytes / sizeof(T));
  if (bytes) std::memcpy(v.data(), p, bytes);
  return v;
}

inline fault::Status fail(fault::ErrCode code, std::uint64_t offset,
                          const std::string& source, std::string message) {
  return fault::Status::error(code, offset, source, std::move(message));
}

struct SectionLookup {
  const unsigned char* base = nullptr;
  std::vector<SectionInfo> sections;
  std::string source;

  const SectionInfo* find(SectionKind kind) const {
    for (const auto& s : sections) {
      if (s.kind == kind) return &s;
    }
    return nullptr;
  }
  // FASHRD01: sections repeat per shard, so lookups key on (kind, owner).
  const SectionInfo* find(SectionKind kind, std::uint32_t owner) const {
    for (const auto& s : sections) {
      if (s.kind == kind && s.owner == owner) return &s;
    }
    return nullptr;
  }
};

struct FileReport;  // codec.hpp

// Walks a FASNAP01 header/table/footer and validates the full CRC
// ladder (per-section payload CRCs, padding scan, reserved-zero entry
// bytes). On success `out` holds every section with in-bounds,
// CRC-clean payloads.
fault::Status validate_image(const void* data, std::size_t size,
                             const std::string& source, SectionLookup& out,
                             FileReport* report);

// Walks a FASHRD01 header/table/footer: header CRC, footer magic/CRC/
// size, and the structural section walk (in-bounds, ascending,
// non-overlapping payloads — the memory-safety floor for serving
// straight off the mmap). Deliberately does NOT checksum payloads or
// scan padding: per-section CRCs stay recorded in the table for the
// deep-verify path (inspector, recovery quarantine), and skipping them
// here is what makes a sharded open O(sections) instead of O(bytes).
fault::Status validate_container(const void* data, std::size_t size,
                                 const std::string& source,
                                 SectionLookup& out);

// Fetches a required section and reports a missing kind.
const SectionInfo* need(const SectionLookup& img, SectionKind kind,
                        fault::Status& status);

bool check_len(const SectionLookup& img, const SectionInfo& s,
               std::uint64_t want, fault::Status& status);

inline constexpr std::size_t kGeomBytes = 40;

template <class T>
fault::Status decode_raster_at(const SectionLookup& img, const SectionInfo& s,
                               raster::Raster<T>& out) {
  using fault::ErrCode;
  if (s.length < kGeomBytes) {
    return fail(ErrCode::kTruncated, s.offset, img.source,
                std::string("raster section ") +
                    std::string(section_kind_name(s.kind)) + " too short");
  }
  Cursor c{img.base + s.offset, static_cast<std::size_t>(s.length)};
  raster::GridGeometry geom;
  geom.origin_x = c.get<double>();
  geom.origin_y = c.get<double>();
  geom.cell_w = c.get<double>();
  geom.cell_h = c.get<double>();
  geom.cols = c.get<std::int32_t>();
  geom.rows = c.get<std::int32_t>();
  if (!std::isfinite(geom.origin_x) || !std::isfinite(geom.origin_y) ||
      !std::isfinite(geom.cell_w) || !std::isfinite(geom.cell_h) ||
      geom.cell_w <= 0.0 || geom.cell_h <= 0.0 || geom.cols < 0 ||
      geom.rows < 0) {
    return fail(ErrCode::kOutOfRange, s.offset, img.source,
                std::string("raster section ") +
                    std::string(section_kind_name(s.kind)) +
                    " has invalid geometry");
  }
  const std::uint64_t cell_bytes = geom.cell_count() * sizeof(T);
  if (s.length - kGeomBytes != cell_bytes) {
    return fail(ErrCode::kSchema, s.offset, img.source,
                std::string("raster section ") +
                    std::string(section_kind_name(s.kind)) +
                    " cell payload disagrees with cols*rows");
  }
  out = raster::Raster<T>(geom);
  if (cell_bytes) std::memcpy(out.data().data(), c.p + c.off, cell_bytes);
  return fault::Status{};
}

template <class T>
fault::Status decode_raster(const SectionLookup& img, SectionKind kind,
                            raster::Raster<T>& out) {
  fault::Status status;
  const SectionInfo* s = need(img, kind, status);
  if (!s) return status;
  return decode_raster_at(img, *s, out);
}

}  // namespace fa::store

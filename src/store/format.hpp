// fa::store — on-disk snapshot format primitives.
//
// A snapshot file is a relocatable section container:
//
//   [Header 64B] [SectionEntry x N] [pad to 64] [section payloads ...] [Footer 32B]
//
// Every payload offset is 64-byte aligned (mmap-friendly, cache-line
// clean), every section carries its own length + CRC32, and the footer
// carries a CRC over everything before it — so *every byte of the file*
// (headers, table, payloads, alignment padding) is covered by at least
// one checksum and a single flipped bit is always detected. Numbers are
// little-endian; the header's endianness tag rejects a file written on
// a foreign-endian machine instead of misreading it.
//
// Payloads are raw SoA arrays (no per-record encoding), so a load is
// validate-then-memcpy: the reader mmaps the file, checks the CRC
// ladder, and bulk-copies sections into place — no parsing, no
// per-element work, which is what makes cold start near-instant
// relative to a full synthesis rebuild (bench_store measures the gap).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fa::store {

// "FASNAP01": file magic, bumped with the format version.
inline constexpr char kMagic[8] = {'F', 'A', 'S', 'N', 'A', 'P', '0', '1'};
// "FASHRD01": the geo-sharded container (fa::shard). Same byte layout
// as FASNAP01 — header, entry table, aligned payloads, footer — but
// per-shard sections repeat a kind once per shard and carry the owning
// shard id in the entry bytes FASNAP01 keeps reserved-zero.
inline constexpr char kShardMagic[8] = {'F', 'A', 'S', 'H', 'R', 'D', '0', '1'};
inline constexpr char kFooterMagic[8] = {'F', 'A', 'E', 'N', 'D', '0', '0', '1'};
// Owner id marking a section as whole-world (not shard-local) inside a
// FASHRD01 container. Monolithic images write 0 in the owner bytes.
inline constexpr std::uint32_t kGlobalOwner = 0xFFFFFFFFu;
inline constexpr std::uint32_t kFormatVersion = 1;
// Written natively; a reader on a foreign-endian machine sees the bytes
// reversed and rejects with kSchema instead of silently transposing.
inline constexpr std::uint32_t kEndianTag = 0x01020304u;
inline constexpr std::size_t kSectionAlign = 64;
inline constexpr std::size_t kHeaderSize = 64;
inline constexpr std::size_t kSectionEntrySize = 32;
inline constexpr std::size_t kFooterSize = 32;

// Section identifiers. Values are stable on-disk ABI: never renumber,
// only append.
enum class SectionKind : std::uint32_t {
  kMeta = 1,          // scenario config + ingest counters + corpus size
  kTxrLon = 2,        // f64[n] transceiver longitudes
  kTxrLat = 3,        // f64[n] latitudes
  kTxrRadio = 4,      // u8[n] RadioType
  kTxrMcc = 5,        // u16[n]
  kTxrMnc = 6,        // u16[n]
  kTxrCellId = 7,     // u32[n]
  kTxrState = 8,      // i16[n]
  kTxrClass = 9,      // u8[n] cached WHP class
  kTxrCounty = 10,    // i32[n] cached county
  kTxrProvider = 11,  // u8[n] cached provider
  kWhpGrid = 12,      // GridGeometry header + u8 cells
  kWhpStates = 13,    // GridGeometry header + i16 cells
  kWhpUrban = 14,     // GridGeometry header + u8 cells
  kWhpRoads = 15,     // GridGeometry header + u8 cells
  kCountyTable = 16,  // 32B records: state, flags, anchor, population
  kCountyNames = 17,  // u32 count, u32 offsets[count+1], name blob
  kIndexMeta = 18,    // GridIndex bounds/dims/scale factors + counts
  kIndexBinnedIds = 19,   // u32[n] ids in counting-sorted bin order
  kIndexBinnedX = 20,     // f64[n] xs in bin order (SoA batch kernels)
  kIndexBinnedY = 21,     // f64[n] ys in bin order
  kIndexCellStart = 22,   // u32[cols*rows+1] bin span starts
  kProviderRisk = 23,     // per-provider exposure aggregate (cross-check)
  // --- FASHRD01 only (owner bytes carry the shard id) -----------------
  kShardLayout = 24,     // tile grid, tile->shard table, per-shard meta
  kShardIds = 25,        // u32[n_s] global txr ids in local bin order
  kShardX = 26,          // f64[n_s] lons in local bin order
  kShardY = 27,          // f64[n_s] lats in local bin order
  kShardCellStart = 28,  // u32[cols_s*rows_s+1] local bin span starts
  kShardClass = 29,      // u8[n_s] WHP class in bin order
  kShardProvider = 30,   // u8[n_s] provider in bin order
  kShardRadio = 31,      // u8[n_s] RadioType in bin order
  kShardMcc = 32,        // u16[n_s]
  kShardMnc = 33,        // u16[n_s]
  kShardCellId = 34,     // u32[n_s]
  kShardState = 35,      // i16[n_s]
  kShardCounty = 36,     // i32[n_s]
};
// The index's id-ordered point array is NOT a section on purpose: it is
// bit-identical to (txr.lon, txr.lat) and restored from them; the
// decoder cross-checks the binned SoA arrays against that source.

// Every monolithic image carries exactly this many sections (one per
// FASNAP01 kind above). Sharded containers are variable-count.
inline constexpr std::size_t kSectionCount = 23;
// Sections a FASHRD01 container carries per shard (kShardIds..kShardCounty).
inline constexpr std::size_t kShardSectionsPerShard = 12;

std::string_view section_kind_name(SectionKind kind);

// One parsed section-table entry. `owner` is the shard id for FASHRD01
// shard-local sections (kGlobalOwner for whole-world ones); monolithic
// images keep it 0 on disk and validate it as reserved.
struct SectionInfo {
  SectionKind kind{};
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint32_t crc = 0;
  std::uint32_t owner = 0;
};

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/PNG checksum).
// `seed` chains incremental computations: crc32(b, crc32(a)) ==
// crc32(a+b).
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

inline std::size_t align_up(std::size_t n) {
  return (n + (kSectionAlign - 1)) & ~(kSectionAlign - 1);
}

}  // namespace fa::store

#include "store/image.hpp"

#include "store/codec.hpp"

namespace fa::store {

using fault::ErrCode;
using fault::Status;

// Walks header/table/footer and validates the full CRC ladder. On
// success `out` holds every section with in-bounds, CRC-clean payloads.
Status validate_image(const void* data, std::size_t size,
                      const std::string& source, SectionLookup& out,
                      FileReport* report) {
  const auto* base = static_cast<const unsigned char*>(data);
  if (size < kHeaderSize + kFooterSize) {
    return fail(ErrCode::kTruncated, size, source,
                "file shorter than header + footer");
  }
  if (std::memcmp(base, kMagic, 8) != 0) {
    return fail(ErrCode::kBadMagic, 0, source, "bad snapshot magic");
  }
  const std::uint32_t version = load_u32(base + 8);
  if (report) report->version = version;
  if (version != kFormatVersion) {
    return fail(ErrCode::kSchema, 8, source,
                "unsupported format version " + std::to_string(version));
  }
  if (load_u32(base + 12) != kEndianTag) {
    return fail(ErrCode::kSchema, 12, source,
                "endianness mismatch (file written on foreign-endian host)");
  }
  if (load_u32(base + 60) != crc32(base, 60)) {
    return fail(ErrCode::kParse, 60, source, "header checksum mismatch");
  }
  if (report) report->header_ok = true;

  const std::uint64_t section_count = load_u64(base + 16);
  const std::uint64_t table_offset = load_u64(base + 24);
  const std::uint64_t data_end = load_u64(base + 32);
  if (table_offset != kHeaderSize) {
    return fail(ErrCode::kSchema, 24, source, "unexpected table offset");
  }
  if (section_count > (size / kSectionEntrySize) + 1) {
    return fail(ErrCode::kSchema, 16, source, "implausible section count");
  }
  const std::uint64_t table_end =
      table_offset + section_count * kSectionEntrySize;
  if (table_end > size || data_end > size || table_end > data_end) {
    return fail(ErrCode::kTruncated, 32, source,
                "section table or data extends past end of file");
  }

  // Footer first: it pins file_size and the whole-body CRC, so torn
  // tails and padding flips are caught even before section walks.
  const unsigned char* footer = base + size - kFooterSize;
  if (std::memcmp(footer + 16, kFooterMagic, 8) != 0) {
    return fail(ErrCode::kTruncated, size - kFooterSize + 16, source,
                "footer magic missing (torn write?)");
  }
  if (load_u32(footer + 24) != crc32(footer, 24)) {
    return fail(ErrCode::kParse, size - kFooterSize + 24, source,
                "footer checksum mismatch");
  }
  // The 4 pad bytes after footer_crc are the only ones no CRC covers;
  // requiring them zero keeps "every byte is validated" literally true.
  if (load_u32(footer + 28) != 0) {
    return fail(ErrCode::kParse, size - kFooterSize + 28, source,
                "footer padding is not zero");
  }
  if (load_u64(footer) != size) {
    return fail(ErrCode::kTruncated, size - kFooterSize, source,
                "footer file size disagrees with actual size");
  }
  if (data_end != size - kFooterSize) {
    return fail(ErrCode::kSchema, 32, source,
                "header data_end disagrees with footer position");
  }
  if (report) report->footer_ok = true;
  // The whole-body CRC duplicates the per-section CRCs over the
  // payloads; a second full pass would double cold-start checksum time.
  // The strict decode path instead proves the same total coverage in
  // one pass: per-section CRCs for payloads (below) plus explicit
  // zero checks for every byte they skip (reserved entry fields,
  // alignment padding, table slack). The inspector still verifies the
  // redundant whole-body CRC — it is the cross-check on the ladder
  // itself.
  const bool body_ok =
      report ? load_u32(footer + 8) == crc32(base, data_end) : true;
  if (report) report->body_crc_ok = body_ok;

  out.base = base;
  out.source = source;
  out.sections.reserve(section_count);
  Status first_bad;  // inspect mode records all, returns first failure
  for (std::uint64_t i = 0; i < section_count; ++i) {
    const unsigned char* e = base + table_offset + i * kSectionEntrySize;
    SectionInfo info;
    info.kind = static_cast<SectionKind>(load_u32(e));
    info.offset = load_u64(e + 8);
    info.length = load_u64(e + 16);
    info.crc = load_u32(e + 24);
    const std::uint64_t entry_off = table_offset + i * kSectionEntrySize;
    bool crc_ok = false;
    if (load_u32(e + 4) != 0 || load_u32(e + 28) != 0) {
      if (first_bad.ok()) {
        first_bad = fail(ErrCode::kParse, entry_off, source,
                         "section entry reserved bytes are not zero");
      }
    }
    if (info.offset < table_end || info.offset > data_end ||
        info.length > data_end - info.offset) {
      if (first_bad.ok()) {
        first_bad = fail(ErrCode::kOutOfRange, entry_off, source,
                         std::string("section ") +
                             std::string(section_kind_name(info.kind)) +
                             " payload out of bounds");
      }
    } else {
      crc_ok = crc32(base + info.offset, info.length) == info.crc;
      if (!crc_ok && first_bad.ok()) {
        first_bad = fail(ErrCode::kParse, info.offset, source,
                         std::string("section ") +
                             std::string(section_kind_name(info.kind)) +
                             " checksum mismatch");
      }
    }
    out.sections.push_back(info);
    if (report) report->sections.push_back(SectionReport{info, crc_ok});
  }
  if (!first_bad.ok()) return first_bad;
  if (!body_ok) {
    // Every section passed but a covered byte (padding, table slack)
    // flipped — still a corrupt file.
    return fail(ErrCode::kParse, size - kFooterSize + 8, source,
                "body checksum mismatch");
  }

  // Sections must tile [table_end, data_end) in ascending order with
  // zero-filled gaps: together with the per-section CRCs this covers
  // every body byte without the redundant second CRC pass.
  std::uint64_t cursor = table_end;
  for (const SectionInfo& s : out.sections) {
    if (s.offset < cursor) {
      return fail(ErrCode::kSchema, s.offset, source,
                  "section payloads overlap or are out of order");
    }
    for (std::uint64_t b = cursor; b < s.offset; ++b) {
      if (base[b] != 0) {
        return fail(ErrCode::kParse, b, source, "padding byte is not zero");
      }
    }
    cursor = s.offset + s.length;
  }
  for (std::uint64_t b = cursor; b < data_end; ++b) {
    if (base[b] != 0) {
      return fail(ErrCode::kParse, b, source, "padding byte is not zero");
    }
  }
  return Status{};
}

Status validate_container(const void* data, std::size_t size,
                          const std::string& source, SectionLookup& out) {
  const auto* base = static_cast<const unsigned char*>(data);
  if (size < kHeaderSize + kFooterSize) {
    return fail(ErrCode::kTruncated, size, source,
                "file shorter than header + footer");
  }
  if (std::memcmp(base, kShardMagic, 8) != 0) {
    return fail(ErrCode::kBadMagic, 0, source, "bad sharded container magic");
  }
  const std::uint32_t version = load_u32(base + 8);
  if (version != kFormatVersion) {
    return fail(ErrCode::kSchema, 8, source,
                "unsupported format version " + std::to_string(version));
  }
  if (load_u32(base + 12) != kEndianTag) {
    return fail(ErrCode::kSchema, 12, source,
                "endianness mismatch (file written on foreign-endian host)");
  }
  if (load_u32(base + 60) != crc32(base, 60)) {
    return fail(ErrCode::kParse, 60, source, "header checksum mismatch");
  }

  const std::uint64_t section_count = load_u64(base + 16);
  const std::uint64_t table_offset = load_u64(base + 24);
  const std::uint64_t data_end = load_u64(base + 32);
  if (table_offset != kHeaderSize) {
    return fail(ErrCode::kSchema, 24, source, "unexpected table offset");
  }
  if (section_count > (size / kSectionEntrySize) + 1) {
    return fail(ErrCode::kSchema, 16, source, "implausible section count");
  }
  const std::uint64_t table_end =
      table_offset + section_count * kSectionEntrySize;
  if (table_end > size || data_end > size || table_end > data_end) {
    return fail(ErrCode::kTruncated, 32, source,
                "section table or data extends past end of file");
  }

  const unsigned char* footer = base + size - kFooterSize;
  if (std::memcmp(footer + 16, kFooterMagic, 8) != 0) {
    return fail(ErrCode::kTruncated, size - kFooterSize + 16, source,
                "footer magic missing (torn write?)");
  }
  if (load_u32(footer + 24) != crc32(footer, 24)) {
    return fail(ErrCode::kParse, size - kFooterSize + 24, source,
                "footer checksum mismatch");
  }
  if (load_u64(footer) != size) {
    return fail(ErrCode::kTruncated, size - kFooterSize, source,
                "footer file size disagrees with actual size");
  }
  if (data_end != size - kFooterSize) {
    return fail(ErrCode::kSchema, 32, source,
                "header data_end disagrees with footer position");
  }

  out.base = base;
  out.source = source;
  out.sections.reserve(section_count);
  // Structural walk only: in-bounds, ascending, non-overlapping. This is
  // the memory-safety floor for spans served off the mmap; payload CRCs
  // are a caller policy (deep verify / quarantine), not an open cost.
  std::uint64_t cursor = table_end;
  for (std::uint64_t i = 0; i < section_count; ++i) {
    const unsigned char* e = base + table_offset + i * kSectionEntrySize;
    SectionInfo info;
    info.kind = static_cast<SectionKind>(load_u32(e));
    info.owner = load_u32(e + 4);
    info.offset = load_u64(e + 8);
    info.length = load_u64(e + 16);
    info.crc = load_u32(e + 24);
    const std::uint64_t entry_off = table_offset + i * kSectionEntrySize;
    if (info.offset < table_end || info.offset > data_end ||
        info.length > data_end - info.offset) {
      return fail(ErrCode::kOutOfRange, entry_off, source,
                  std::string("section ") +
                      std::string(section_kind_name(info.kind)) +
                      " payload out of bounds");
    }
    if (info.offset < cursor) {
      return fail(ErrCode::kSchema, info.offset, source,
                  "section payloads overlap or are out of order");
    }
    cursor = info.offset + info.length;
    out.sections.push_back(info);
  }
  return Status{};
}

const SectionInfo* need(const SectionLookup& img, SectionKind kind,
                        Status& status) {
  const SectionInfo* s = img.find(kind);
  if (!s) {
    status = fail(ErrCode::kSchema, 0, img.source,
                  std::string("missing section ") +
                      std::string(section_kind_name(kind)));
  }
  return s;
}

bool check_len(const SectionLookup& img, const SectionInfo& s,
               std::uint64_t want, Status& status) {
  if (s.length == want) return true;
  status = fail(ErrCode::kSchema, s.offset, img.source,
                std::string("section ") +
                    std::string(section_kind_name(s.kind)) + " has length " +
                    std::to_string(s.length) + ", expected " +
                    std::to_string(want));
  return false;
}

}  // namespace fa::store

#include "store/recovery.hpp"

#include <utility>

#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace fa::store {

namespace {

using fault::ErrCode;
using fault::Status;

// The read-corruption seam: flip a few seeded bytes of the mapped
// image. MAP_PRIVATE makes the flips process-local; the file on disk
// stays intact, modelling bad RAM / a bit-rotted read path rather than
// durable corruption.
void apply_read_corruption(MappedFile& file, std::uint64_t key) {
  const auto& injector = fault::Injector::global();
  if (!injector.fires("store.read.corrupt", key)) return;
  unsigned char* bytes = file.mutable_data();
  const std::uint64_t flips =
      1 + injector.draw("store.read.corrupt", key ^ 0x9E3779B97F4A7C15ull) % 4;
  for (std::uint64_t i = 0; i < flips; ++i) {
    const std::uint64_t r = injector.draw("store.read.corrupt", key + 1 + i);
    bytes[r % file.size()] ^= static_cast<unsigned char>(1u << (r % 8));
  }
}

}  // namespace

fault::Result<LoadedWorld> RecoveryManager::load_generation(
    const Generation& generation) {
  obs::Span span(obs::metrics::kStoreLoadNs);
  const std::string path = dir_.file_path(generation.filename);
  auto mapped = MappedFile::open(path);
  if (!mapped.ok()) return mapped.status();
  MappedFile file = std::move(mapped).take();
  apply_read_corruption(file, generation.number);
  // The manifest's whole-file CRC is the outermost rung: it catches
  // swaps of one valid image for another (both internally consistent).
  // Scan-derived entries carry crc 0 == "unknown", which skips the rung
  // but still runs the image's own ladder.
  if (generation.crc != 0) {
    if (file.size() != generation.size ||
        crc32(file.data(), file.size()) != generation.crc) {
      return Status::error(ErrCode::kParse, 0, path,
                           "image disagrees with manifest checksum");
    }
  }
  auto decoded = decode_world(file.data(), file.size(), path);
  if (decoded.ok()) {
    obs::count(obs::metrics::kStoreLoads);
    obs::count(obs::metrics::kStoreLoadBytes, file.size());
  }
  return decoded;
}

fault::Result<RecoveredWorld> RecoveryManager::recover(
    RecoveryReport* report) {
  obs::Span span(obs::metrics::kStoreRecoverNs);
  Manifest manifest;
  auto from_manifest = dir_.read_manifest();
  if (from_manifest.ok()) {
    manifest = std::move(from_manifest.value());
  } else {
    obs::count(obs::metrics::kStoreManifestFallbacks);
    if (report) {
      report->manifest_fallback = true;
      report->steps.push_back(from_manifest.status());
    }
    manifest = dir_.scan();
  }
  if (manifest.generations.empty()) {
    return Status::error(ErrCode::kIoFailure, 0, dir_.path(),
                         "store holds no generations");
  }
  Status last;
  for (auto it = manifest.generations.rbegin();
       it != manifest.generations.rend(); ++it) {
    obs::count(obs::metrics::kStoreRecoverAttempts);
    auto loaded = load_generation(*it);
    if (loaded.ok()) {
      obs::count(obs::metrics::kStoreRecoverLoaded);
      if (report) {
        Status okstep;
        okstep.source = dir_.file_path(it->filename);
        okstep.message = "loaded";
        report->steps.push_back(okstep);
      }
      return RecoveredWorld{std::move(loaded).take(), *it};
    }
    obs::count(obs::metrics::kStoreRecoverRejected);
    last = loaded.status();
    if (report) report->steps.push_back(last);
  }
  last.message = "every generation rejected; newest failure: " + last.message;
  return last;
}

fault::Result<RecoveredWorld> recover_from(const std::string& path,
                                           RecoveryReport* report) {
  auto dir = StoreDir::open(path, /*create=*/false);
  if (!dir.ok()) return dir.status();
  RecoveryManager manager(std::move(dir).take());
  return manager.recover(report);
}

}  // namespace fa::store

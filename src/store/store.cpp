#include "store/store.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "store/format.hpp"

namespace fa::store {

namespace {

using fault::ErrCode;
using fault::Status;

Status errno_status(const std::string& source, const std::string& what) {
  return Status::error(ErrCode::kIoFailure, 0, source,
                       what + ": " + std::strerror(errno));
}

// Writes all of `data`, tolerating short writes / EINTR. Stops after
// `limit` bytes (the torn-write choreography). Returns bytes written or
// -1 on error.
ssize_t write_all(int fd, const char* data, std::size_t size,
                  std::uint64_t limit) {
  std::size_t total = 0;
  const std::size_t goal = std::min<std::uint64_t>(size, limit);
  while (total < goal) {
    const ssize_t w = ::write(fd, data + total, goal - total);
    if (w < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    total += static_cast<std::size_t>(w);
  }
  return static_cast<ssize_t>(total);
}

Status fsync_path_fd(int fd, const std::string& source,
                     const std::string& what) {
  if (::fsync(fd) != 0) return errno_status(source, "fsync " + what);
  return Status{};
}

Status fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return errno_status(dir, "open directory for fsync");
  Status s = fsync_path_fd(fd, dir, "directory");
  ::close(fd);
  return s;
}

[[noreturn]] void crash_now() { ::_exit(2); }

bool parse_u64(std::string_view token, std::uint64_t& out) {
  if (token.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
    // Reject rather than wrap: a 20+-digit token in a corrupt manifest
    // or filename must not alias to a small generation number.
    if (v > (std::numeric_limits<std::uint64_t>::max() - d) / 10) {
      return false;
    }
    v = v * 10 + d;
  }
  out = v;
  return true;
}

bool parse_hex32(std::string_view token, std::uint32_t& out) {
  if (token.empty() || token.size() > 8) return false;
  std::uint32_t v = 0;
  for (const char c : token) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
    else return false;
  }
  out = v;
  return true;
}

std::string hex32(std::uint32_t v) {
  char buf[9];
  std::snprintf(buf, sizeof buf, "%08x", v);
  return buf;
}

constexpr std::string_view kManifestHeader = "fastore-manifest 1";
constexpr std::string_view kManifestName = "MANIFEST";

// Hash chain over the generation history: each entry's chain value
// commits to every entry before it, so a manifest whose middle was
// swapped out fails even if each line is individually well-formed.
std::uint32_t chain_value(std::uint32_t prev, const std::string& body) {
  std::uint32_t seeded = crc32(&prev, sizeof prev);
  return crc32(body.data(), body.size(), seeded);
}

std::string manifest_entry_body(const Generation& g) {
  std::ostringstream line;
  line << "gen " << g.number << ' ' << g.filename << ' ' << g.size << ' '
       << hex32(g.crc);
  return line.str();
}

}  // namespace

// ---------------------------------------------------------------------
// MappedFile
// ---------------------------------------------------------------------

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    this->~MappedFile();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

fault::Result<MappedFile> MappedFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return errno_status(path, "open");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    Status s = errno_status(path, "fstat");
    ::close(fd);
    return s;
  }
  if (st.st_size == 0) {
    ::close(fd);
    return Status::error(ErrCode::kTruncated, 0, path, "empty snapshot file");
  }
  void* p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                   PROT_READ | PROT_WRITE, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (p == MAP_FAILED) return errno_status(path, "mmap");
  MappedFile m;
  m.data_ = p;
  m.size_ = static_cast<std::size_t>(st.st_size);
  return m;
}

// ---------------------------------------------------------------------
// filenames / manifest text
// ---------------------------------------------------------------------

std::string generation_filename(std::uint64_t number) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "gen-%06llu.fa",
                static_cast<unsigned long long>(number));
  return buf;
}

std::string encode_manifest(const Manifest& manifest) {
  std::ostringstream out;
  out << kManifestHeader << '\n';
  std::uint32_t chain = 0;
  for (const auto& g : manifest.generations) {
    const std::string body = manifest_entry_body(g);
    chain = chain_value(chain, body);
    out << body << ' ' << hex32(chain) << '\n';
  }
  const std::string bodytext = out.str();
  out << "crc " << hex32(crc32(bodytext.data(), bodytext.size())) << '\n';
  return out.str();
}

fault::Result<Manifest> parse_manifest(std::string_view text,
                                       const std::string& source) {
  Manifest manifest;
  std::size_t pos = 0;
  std::uint64_t lineno = 0;
  std::uint32_t chain = 0;
  bool saw_header = false;
  bool saw_crc = false;
  std::size_t body_end = 0;  // byte offset where the crc line starts
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) {
      return Status::error(ErrCode::kTruncated, lineno + 1, source,
                           "manifest ends without newline");
    }
    const std::string_view line = text.substr(pos, eol - pos);
    const std::size_t line_start = pos;
    pos = eol + 1;
    ++lineno;
    if (saw_crc) {
      return Status::error(ErrCode::kSchema, lineno, source,
                           "manifest has content after its crc line");
    }
    if (!saw_header) {
      if (line != kManifestHeader) {
        return Status::error(ErrCode::kBadMagic, lineno, source,
                             "manifest header missing");
      }
      saw_header = true;
      continue;
    }
    std::istringstream fields{std::string(line)};
    std::string tag;
    fields >> tag;
    if (tag == "crc") {
      std::string hex;
      fields >> hex;
      std::uint32_t want = 0;
      if (!parse_hex32(hex, want)) {
        return Status::error(ErrCode::kParse, lineno, source,
                             "manifest crc line malformed");
      }
      body_end = line_start;
      const std::uint32_t got = crc32(text.data(), body_end);
      if (got != want) {
        return Status::error(ErrCode::kParse, lineno, source,
                             "manifest checksum mismatch");
      }
      saw_crc = true;
      continue;
    }
    if (tag != "gen") {
      return Status::error(ErrCode::kParse, lineno, source,
                           "unknown manifest line tag '" + tag + "'");
    }
    Generation g;
    std::string num_s, size_s, crc_s, chain_s;
    fields >> num_s >> g.filename >> size_s >> crc_s >> chain_s;
    std::uint32_t line_chain = 0;
    std::string extra;
    if (!parse_u64(num_s, g.number) || g.filename.empty() ||
        !parse_u64(size_s, g.size) || !parse_hex32(crc_s, g.crc) ||
        !parse_hex32(chain_s, line_chain) || (fields >> extra)) {
      return Status::error(ErrCode::kParse, lineno, source,
                           "manifest gen line malformed");
    }
    if (g.filename.find('/') != std::string::npos) {
      return Status::error(ErrCode::kOutOfRange, lineno, source,
                           "manifest filename escapes the store directory");
    }
    chain = chain_value(chain, manifest_entry_body(g));
    if (chain != line_chain) {
      return Status::error(ErrCode::kParse, lineno, source,
                           "manifest hash chain broken");
    }
    if (!manifest.generations.empty() &&
        g.number <= manifest.generations.back().number) {
      return Status::error(ErrCode::kSchema, lineno, source,
                           "manifest generations not strictly ascending");
    }
    manifest.generations.push_back(std::move(g));
  }
  if (!saw_header) {
    return Status::error(ErrCode::kTruncated, 0, source, "manifest is empty");
  }
  if (!saw_crc) {
    return Status::error(ErrCode::kTruncated, lineno, source,
                         "manifest missing its crc line (torn write?)");
  }
  return manifest;
}

// ---------------------------------------------------------------------
// StoreDir
// ---------------------------------------------------------------------

fault::Result<StoreDir> StoreDir::open(std::string path, bool create) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    if (!create) {
      return Status::error(ErrCode::kIoFailure, 0, path,
                           "store directory does not exist");
    }
    if (::mkdir(path.c_str(), 0777) != 0 && errno != EEXIST) {
      return errno_status(path, "mkdir");
    }
  } else if (!S_ISDIR(st.st_mode)) {
    return Status::error(ErrCode::kIoFailure, 0, path,
                         "store path exists but is not a directory");
  }
  return StoreDir(std::move(path));
}

fault::Result<Manifest> StoreDir::read_manifest() const {
  const std::string mpath = file_path(std::string(kManifestName));
  std::ifstream in(mpath, std::ios::binary);
  if (!in) {
    return Status::error(ErrCode::kIoFailure, 0, mpath,
                         "manifest not found");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_manifest(buf.str(), mpath);
}

Manifest StoreDir::scan() const {
  Manifest manifest;
  DIR* dir = ::opendir(path_.c_str());
  if (dir == nullptr) return manifest;
  while (dirent* e = ::readdir(dir)) {
    const std::string_view name = e->d_name;
    // gen-NNNNNN.fa, no .tmp debris.
    if (name.size() < 8 || name.substr(0, 4) != "gen-" ||
        name.substr(name.size() - 3) != ".fa") {
      continue;
    }
    std::uint64_t number = 0;
    if (!parse_u64(name.substr(4, name.size() - 7), number)) continue;
    Generation g;
    g.number = number;
    g.filename = std::string(name);
    struct stat st{};
    if (::stat(file_path(g.filename).c_str(), &st) == 0) {
      g.size = static_cast<std::uint64_t>(st.st_size);
    }
    manifest.generations.push_back(std::move(g));
  }
  ::closedir(dir);
  std::sort(manifest.generations.begin(), manifest.generations.end(),
            [](const Generation& a, const Generation& b) {
              return a.number < b.number;
            });
  return manifest;
}

std::uint64_t StoreDir::next_generation() const {
  const Manifest on_disk = scan();
  return on_disk.generations.empty() ? 1
                                     : on_disk.generations.back().number + 1;
}

fault::Status StoreDir::write_manifest(const Manifest& manifest) const {
  const std::string text = encode_manifest(manifest);
  const std::string final_path = file_path(std::string(kManifestName));
  const std::string tmp_path = final_path + ".tmp";
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  if (fd < 0) return errno_status(tmp_path, "open");
  if (write_all(fd, text.data(), text.size(), ~0ull) < 0) {
    Status s = errno_status(tmp_path, "write");
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return s;
  }
  if (Status s = fsync_path_fd(fd, tmp_path, "manifest"); !s.ok()) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return s;
  }
  ::close(fd);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    Status s = errno_status(final_path, "rename manifest");
    ::unlink(tmp_path.c_str());
    return s;
  }
  return fsync_dir(path_);
}

fault::Result<Generation> StoreDir::commit(const std::string& image,
                                           const CommitHooks& hooks) {
  obs::Span span(obs::metrics::kStoreSaveNs);
  const auto& injector = fault::Injector::global();
  const std::uint64_t number = next_generation();
  Generation gen;
  gen.number = number;
  gen.filename = generation_filename(number);
  gen.size = image.size();
  gen.crc = crc32(image.data(), image.size());
  const std::string final_path = file_path(gen.filename);
  const std::string tmp_path = final_path + ".tmp";

  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  if (fd < 0) {
    obs::count(obs::metrics::kStoreSaveFailures);
    return errno_status(tmp_path, "open");
  }

  // Torn-write seam: persist only a seeded prefix and report the commit
  // as failed, leaving .tmp debris exactly like a mid-write power cut.
  if (injector.fires("store.write.torn", number)) {
    const std::uint64_t keep =
        image.empty() ? 0 : injector.draw("store.write.torn", number) %
                                image.size();
    write_all(fd, image.data(), image.size(), keep);
    ::close(fd);
    obs::count(obs::metrics::kStoreSaveFailures);
    return Status::error(ErrCode::kInjected, keep, "store.write.torn",
                         "torn write injected at generation " +
                             std::to_string(number));
  }

  const std::uint64_t limit =
      hooks.crash_at == CommitHooks::CrashStep::kAfterPartialWrite
          ? hooks.write_byte_limit
          : ~0ull;
  if (write_all(fd, image.data(), image.size(), limit) < 0) {
    Status s = errno_status(tmp_path, "write");
    ::close(fd);
    ::unlink(tmp_path.c_str());
    obs::count(obs::metrics::kStoreSaveFailures);
    return s;
  }
  if (hooks.crash_at == CommitHooks::CrashStep::kAfterPartialWrite) {
    crash_now();
  }
  if (Status s = fsync_path_fd(fd, tmp_path, "image"); !s.ok()) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    obs::count(obs::metrics::kStoreSaveFailures);
    return s;
  }
  ::close(fd);
  if (hooks.crash_at == CommitHooks::CrashStep::kAfterTmpWrite) {
    crash_now();
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    Status s = errno_status(final_path, "rename image");
    ::unlink(tmp_path.c_str());
    obs::count(obs::metrics::kStoreSaveFailures);
    return s;
  }
  if (Status s = fsync_dir(path_); !s.ok()) {
    obs::count(obs::metrics::kStoreSaveFailures);
    return s;
  }
  if (hooks.crash_at == CommitHooks::CrashStep::kAfterRename) {
    crash_now();
  }

  // Manifest update: previous manifest entries (or, with no readable
  // manifest, entries recovered by scan) + the new generation, pruned
  // to the keep window.
  Manifest manifest;
  if (auto prior = read_manifest(); prior.ok()) {
    manifest = std::move(prior.value());
  } else {
    Manifest scanned = scan();
    // Exclude the just-renamed file; it is appended below. Scan crcs
    // are unknown (0), so recompute them for honest manifest entries.
    for (auto& g : scanned.generations) {
      if (g.number == number) continue;
      if (auto mapped = MappedFile::open(file_path(g.filename));
          mapped.ok()) {
        g.crc = crc32(mapped.value().data(), mapped.value().size());
        g.size = mapped.value().size();
      }
      manifest.generations.push_back(std::move(g));
    }
  }
  manifest.generations.push_back(gen);
  std::vector<Generation> pruned;
  while (manifest.generations.size() > kKeepGenerations) {
    pruned.push_back(manifest.generations.front());
    manifest.generations.erase(manifest.generations.begin());
  }

  if (hooks.crash_at == CommitHooks::CrashStep::kMidManifest) {
    // Simulate dying halfway through the manifest rewrite: the .tmp is
    // partially written, the real MANIFEST untouched.
    const std::string text = encode_manifest(manifest);
    const std::string mtmp =
        file_path(std::string(kManifestName)) + ".tmp";
    const int mfd = ::open(mtmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
    if (mfd >= 0) {
      write_all(mfd, text.data(), text.size(), text.size() / 2);
      ::close(mfd);
    }
    crash_now();
  }

  if (Status s = write_manifest(manifest); !s.ok()) {
    obs::count(obs::metrics::kStoreSaveFailures);
    return s;
  }
  for (const auto& g : pruned) {
    if (::unlink(file_path(g.filename).c_str()) == 0) {
      obs::count(obs::metrics::kStorePruned);
    }
  }
  obs::count(obs::metrics::kStoreSaves);
  obs::count(obs::metrics::kStoreSaveBytes, image.size());
  return gen;
}

}  // namespace fa::store

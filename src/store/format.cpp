#include "store/format.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace fa::store {

namespace {

// Slice-by-8 CRC-32 tables (8 KiB, generated once at static init).
// Table 0 is the classic byte-at-a-time table; table s advances a byte
// that is s positions deeper in the 8-byte block. The checksum ladder
// runs over every byte of every image twice (per-section + whole-body),
// so CRC throughput bounds mmap cold-start time — slicing moves it from
// ~350 MB/s to well over 1 GB/s without changing a single output bit.
struct CrcTables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  CrcTables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (std::size_t s = 1; s < 8; ++s) {
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xFFu];
      }
    }
  }
};

const CrcTables& crc_tables() {
  static const CrcTables tables;
  return tables;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto& t = crc_tables().t;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  if constexpr (std::endian::native == std::endian::little) {
    while (size >= 8) {
      std::uint32_t lo;
      std::uint32_t hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= c;
      c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
          t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
      p += 8;
      size -= 8;
    }
  }
  for (std::size_t i = 0; i < size; ++i) {
    c = t[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string_view section_kind_name(SectionKind kind) {
  switch (kind) {
    case SectionKind::kMeta: return "meta";
    case SectionKind::kTxrLon: return "txr.lon";
    case SectionKind::kTxrLat: return "txr.lat";
    case SectionKind::kTxrRadio: return "txr.radio";
    case SectionKind::kTxrMcc: return "txr.mcc";
    case SectionKind::kTxrMnc: return "txr.mnc";
    case SectionKind::kTxrCellId: return "txr.cell_id";
    case SectionKind::kTxrState: return "txr.state";
    case SectionKind::kTxrClass: return "txr.class";
    case SectionKind::kTxrCounty: return "txr.county";
    case SectionKind::kTxrProvider: return "txr.provider";
    case SectionKind::kWhpGrid: return "whp.grid";
    case SectionKind::kWhpStates: return "whp.states";
    case SectionKind::kWhpUrban: return "whp.urban";
    case SectionKind::kWhpRoads: return "whp.roads";
    case SectionKind::kCountyTable: return "county.table";
    case SectionKind::kCountyNames: return "county.names";
    case SectionKind::kIndexMeta: return "index.meta";
    case SectionKind::kIndexBinnedIds: return "index.binned_ids";
    case SectionKind::kIndexBinnedX: return "index.binned_x";
    case SectionKind::kIndexBinnedY: return "index.binned_y";
    case SectionKind::kIndexCellStart: return "index.cell_start";
    case SectionKind::kProviderRisk: return "provider.risk";
  }
  return "unknown";
}

}  // namespace fa::store

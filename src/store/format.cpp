#include "store/format.hpp"

#include <array>
#include <bit>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif

namespace fa::store {

namespace {

// Slice-by-16 CRC-32 tables (16 KiB, generated once at static init).
// Table 0 is the classic byte-at-a-time table; table s advances a byte
// that is s positions from the end of the 16-byte block. The checksum
// ladder runs over every byte of every image twice (per-section +
// whole-body), so CRC throughput bounds mmap cold-start time — and on a
// sharded container the per-shard CRC sweep IS the cold start, so the
// kernel's bytes-per-cycle sets time-to-first-query. Wider slicing
// shortens the loop-carried dependency per byte (the running crc folds
// into one 16-byte block instead of two 8-byte ones) without changing a
// single output bit.
struct CrcTables {
  std::array<std::array<std::uint32_t, 256>, 16> t{};
  CrcTables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (std::size_t s = 1; s < 16; ++s) {
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xFFu];
      }
    }
  }
};

const CrcTables& crc_tables() {
  static const CrcTables tables;
  return tables;
}

// Register-in, register-out byte loop (no pre/post conditioning); the
// tail step of every kernel below and the finisher for the folded
// PCLMUL state.
std::uint32_t crc_bytes(const unsigned char* p, std::size_t size,
                        std::uint32_t c) {
  const auto& t = crc_tables().t;
  for (std::size_t i = 0; i < size; ++i) {
    c = t[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c;
}

std::uint32_t crc32_table(const void* data, std::size_t size,
                          std::uint32_t seed);

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define FA_CRC32_CLMUL 1
// Carryless-multiply kernel: folds four independent 128-bit lanes over
// 64-byte strides, then collapses to one 16-byte state that is — by
// construction of the fold constants — CRC-equivalent to the entire
// prefix consumed, so the table loop finishes it in 16 steps (no
// Barrett reduction to get wrong). The constants are x^n mod P for the
// fold distances (512±32 and 128±32 bits) in the reflected domain, the
// same values published in Intel's PCLMULQDQ CRC paper and carried by
// zlib and the kernel. Outputs are bit-identical to the table path —
// the golden-vector test and every store roundtrip pin that.
__attribute__((target("pclmul,sse2"))) std::uint32_t crc32_clmul(
    const void* data, std::size_t size, std::uint32_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const __m128i k12 =
      _mm_set_epi64x(0x00000001c6e41596ll, 0x0000000154442bd4ll);
  const __m128i k34 =
      _mm_set_epi64x(0x00000000ccaa009ell, 0x00000001751997d0ll);
  __m128i x0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
  __m128i x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32));
  __m128i x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48));
  x0 = _mm_xor_si128(x0, _mm_cvtsi32_si128(static_cast<int>(c)));
  p += 64;
  size -= 64;
  while (size >= 64) {
    x0 = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)),
        _mm_xor_si128(_mm_clmulepi64_si128(x0, k12, 0x00),
                      _mm_clmulepi64_si128(x0, k12, 0x11)));
    x1 = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16)),
        _mm_xor_si128(_mm_clmulepi64_si128(x1, k12, 0x00),
                      _mm_clmulepi64_si128(x1, k12, 0x11)));
    x2 = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32)),
        _mm_xor_si128(_mm_clmulepi64_si128(x2, k12, 0x00),
                      _mm_clmulepi64_si128(x2, k12, 0x11)));
    x3 = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48)),
        _mm_xor_si128(_mm_clmulepi64_si128(x3, k12, 0x00),
                      _mm_clmulepi64_si128(x3, k12, 0x11)));
    p += 64;
    size -= 64;
  }
  x1 = _mm_xor_si128(x1,
                     _mm_xor_si128(_mm_clmulepi64_si128(x0, k34, 0x00),
                                   _mm_clmulepi64_si128(x0, k34, 0x11)));
  x2 = _mm_xor_si128(x2,
                     _mm_xor_si128(_mm_clmulepi64_si128(x1, k34, 0x00),
                                   _mm_clmulepi64_si128(x1, k34, 0x11)));
  x3 = _mm_xor_si128(x3,
                     _mm_xor_si128(_mm_clmulepi64_si128(x2, k34, 0x00),
                                   _mm_clmulepi64_si128(x2, k34, 0x11)));
  while (size >= 16) {
    x3 = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)),
        _mm_xor_si128(_mm_clmulepi64_si128(x3, k34, 0x00),
                      _mm_clmulepi64_si128(x3, k34, 0x11)));
    p += 16;
    size -= 16;
  }
  unsigned char state[16];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), x3);
  std::uint32_t mid = crc_bytes(state, 16, 0);
  mid = crc_bytes(p, size, mid);
  return mid ^ 0xFFFFFFFFu;
}
#endif  // FA_CRC32_CLMUL

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
#if defined(FA_CRC32_CLMUL)
  // The checksum ladder CRCs hundreds of megabytes on a sharded cold
  // start; the folding kernel runs ~2.5x the table kernel, so dispatch
  // on the CPU flag once and take it whenever the buffer amortizes the
  // lane setup.
  static const bool has_clmul = __builtin_cpu_supports("pclmul");
  if (has_clmul && size >= 128) return crc32_clmul(data, size, seed);
#endif
  return crc32_table(data, size, seed);
}

namespace {

std::uint32_t crc32_table(const void* data, std::size_t size,
                          std::uint32_t seed) {
  const auto& t = crc_tables().t;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  if constexpr (std::endian::native == std::endian::little) {
    while (size >= 16) {
      std::uint32_t w0, w1, w2, w3;
      std::memcpy(&w0, p, 4);
      std::memcpy(&w1, p + 4, 4);
      std::memcpy(&w2, p + 8, 4);
      std::memcpy(&w3, p + 12, 4);
      w0 ^= c;
      c = t[15][w0 & 0xFFu] ^ t[14][(w0 >> 8) & 0xFFu] ^
          t[13][(w0 >> 16) & 0xFFu] ^ t[12][w0 >> 24] ^ t[11][w1 & 0xFFu] ^
          t[10][(w1 >> 8) & 0xFFu] ^ t[9][(w1 >> 16) & 0xFFu] ^
          t[8][w1 >> 24] ^ t[7][w2 & 0xFFu] ^ t[6][(w2 >> 8) & 0xFFu] ^
          t[5][(w2 >> 16) & 0xFFu] ^ t[4][w2 >> 24] ^ t[3][w3 & 0xFFu] ^
          t[2][(w3 >> 8) & 0xFFu] ^ t[1][(w3 >> 16) & 0xFFu] ^
          t[0][w3 >> 24];
      p += 16;
      size -= 16;
    }
  }
  return crc_bytes(p, size, c) ^ 0xFFFFFFFFu;
}

}  // namespace

std::string_view section_kind_name(SectionKind kind) {
  switch (kind) {
    case SectionKind::kMeta: return "meta";
    case SectionKind::kTxrLon: return "txr.lon";
    case SectionKind::kTxrLat: return "txr.lat";
    case SectionKind::kTxrRadio: return "txr.radio";
    case SectionKind::kTxrMcc: return "txr.mcc";
    case SectionKind::kTxrMnc: return "txr.mnc";
    case SectionKind::kTxrCellId: return "txr.cell_id";
    case SectionKind::kTxrState: return "txr.state";
    case SectionKind::kTxrClass: return "txr.class";
    case SectionKind::kTxrCounty: return "txr.county";
    case SectionKind::kTxrProvider: return "txr.provider";
    case SectionKind::kWhpGrid: return "whp.grid";
    case SectionKind::kWhpStates: return "whp.states";
    case SectionKind::kWhpUrban: return "whp.urban";
    case SectionKind::kWhpRoads: return "whp.roads";
    case SectionKind::kCountyTable: return "county.table";
    case SectionKind::kCountyNames: return "county.names";
    case SectionKind::kIndexMeta: return "index.meta";
    case SectionKind::kIndexBinnedIds: return "index.binned_ids";
    case SectionKind::kIndexBinnedX: return "index.binned_x";
    case SectionKind::kIndexBinnedY: return "index.binned_y";
    case SectionKind::kIndexCellStart: return "index.cell_start";
    case SectionKind::kProviderRisk: return "provider.risk";
    case SectionKind::kShardLayout: return "shard.layout";
    case SectionKind::kShardIds: return "shard.ids";
    case SectionKind::kShardX: return "shard.x";
    case SectionKind::kShardY: return "shard.y";
    case SectionKind::kShardCellStart: return "shard.cell_start";
    case SectionKind::kShardClass: return "shard.class";
    case SectionKind::kShardProvider: return "shard.provider";
    case SectionKind::kShardRadio: return "shard.radio";
    case SectionKind::kShardMcc: return "shard.mcc";
    case SectionKind::kShardMnc: return "shard.mnc";
    case SectionKind::kShardCellId: return "shard.cell_id";
    case SectionKind::kShardState: return "shard.state";
    case SectionKind::kShardCounty: return "shard.county";
  }
  return "unknown";
}

}  // namespace fa::store

// Cold-start recovery ladder.
//
// RecoveryManager walks the store at boot and degrades gracefully:
//
//   1. read + validate MANIFEST; if unreadable/corrupt, fall back to a
//      directory scan (counted, diagnosed — never fatal on its own)
//   2. try generations newest -> oldest: mmap, run the full checksum
//      ladder and structural decode; first clean image wins
//   3. nothing loads -> error Status; the caller does a full rebuild
//
// Every attempted step leaves a Status in the RecoveryReport so an
// operator can see exactly why generation 42 was skipped, and the
// store.recover.* counters aggregate the same story for dashboards.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/status.hpp"
#include "store/codec.hpp"
#include "store/store.hpp"

namespace fa::store {

struct RecoveredWorld {
  LoadedWorld loaded;
  Generation generation;  // which image produced it
};

struct RecoveryReport {
  // One entry per attempted generation (ok => that one loaded) plus a
  // leading entry for a manifest fallback when it happened.
  std::vector<fault::Status> steps;
  bool manifest_fallback = false;
};

class RecoveryManager {
 public:
  explicit RecoveryManager(StoreDir dir) : dir_(std::move(dir)) {}

  const StoreDir& dir() const { return dir_; }

  // The ladder. On error every generation was rejected (or none exist);
  // the error Status summarizes the last failure.
  fault::Result<RecoveredWorld> recover(RecoveryReport* report = nullptr);

  // Validates and decodes one generation image (mmap + checksum ladder
  // + structural decode + aggregate cross-check). The read-corruption
  // seam ("store.read.corrupt", keyed by generation number) flips bytes
  // of the private mapping before validation.
  fault::Result<LoadedWorld> load_generation(const Generation& generation);

 private:
  StoreDir dir_;
};

// Convenience: open `path` (no create) and run the ladder.
fault::Result<RecoveredWorld> recover_from(const std::string& path,
                                           RecoveryReport* report = nullptr);

}  // namespace fa::store

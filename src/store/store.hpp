// fa::store — crash-safe snapshot persistence.
//
// A store directory holds numbered generations plus a manifest:
//
//   store/
//     MANIFEST        checksummed, hash-chained generation list
//     gen-000041.fa   snapshot images (store/format.hpp)
//     gen-000042.fa
//
// Commit protocol (all-or-nothing under kill -9 at any instruction):
//   1. write gen-NNNNNN.fa.tmp, fsync the file
//   2. rename onto gen-NNNNNN.fa, fsync the directory
//   3. write MANIFEST.tmp (new generation appended, old ones pruned to
//      the keep window), fsync, rename onto MANIFEST, fsync the
//      directory, then unlink pruned generation files
// A crash before step 2 leaves only .tmp debris (ignored); between 2
// and 3 leaves an orphan generation the manifest doesn't reference
// (recovery's directory-scan fallback can still use it); the manifest
// itself is replaced atomically, so readers always see either the old
// or the new list, never a torn one.
//
// Fault seams (deterministic, fault::Injector):
//   store.write.torn    commit writes only a seeded prefix of the image
//                       and reports kInjected (a torn write)
//   store.read.corrupt  load flips seeded bytes of the mapped image
//                       (MAP_PRIVATE: the flip never reaches the disk)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/status.hpp"

namespace fa::store {

// Read-write *private* mapping of a file: PROT_WRITE + MAP_PRIVATE so
// the read-corruption seam can flip bytes in-core without touching the
// file. Move-only; unmaps on destruction.
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  static fault::Result<MappedFile> open(const std::string& path);

  const void* data() const { return data_; }
  unsigned char* mutable_data() { return static_cast<unsigned char*>(data_); }
  std::size_t size() const { return size_; }
  bool mapped() const { return data_ != nullptr; }

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;
};

// One committed snapshot generation as the manifest records it.
struct Generation {
  std::uint64_t number = 0;
  std::string filename;     // basename within the store directory
  std::uint64_t size = 0;   // bytes
  std::uint32_t crc = 0;    // whole-file CRC32 at commit time
};

struct Manifest {
  std::vector<Generation> generations;  // ascending by number
};

// Crash choreography for the commit protocol, used by the fork-based
// crash harness: `_exit(2)` mid-commit at a chosen step, optionally
// after only `write_byte_limit` image bytes have reached the kernel.
struct CommitHooks {
  enum class CrashStep {
    kNone,
    kAfterPartialWrite,  // image partially written, no fsync, no rename
    kAfterTmpWrite,      // image durable as .tmp, not yet renamed
    kAfterRename,        // generation durable, manifest not yet updated
    kMidManifest,        // MANIFEST.tmp half-written
  };
  CrashStep crash_at = CrashStep::kNone;
  std::uint64_t write_byte_limit = ~0ull;  // with kAfterPartialWrite
};

class StoreDir {
 public:
  // Oldest generations beyond this count are pruned at commit.
  static constexpr std::size_t kKeepGenerations = 4;

  // Opens (optionally creating) a store directory.
  static fault::Result<StoreDir> open(std::string path, bool create = true);

  const std::string& path() const { return path_; }
  std::string file_path(const std::string& filename) const {
    return path_ + "/" + filename;
  }

  // Parses + validates MANIFEST (checksum, hash chain, entry syntax).
  // A missing or corrupt manifest is an error Status — callers decide
  // whether to fall back to scan().
  fault::Result<Manifest> read_manifest() const;

  // Lists gen-*.fa files by name, ignoring the manifest and any .tmp
  // debris. Sizes come from stat; crc fields are 0 (unknown) — the
  // image's own checksum ladder still guards the load.
  Manifest scan() const;

  // Next generation number: one past the highest on disk (scan-based so
  // orphans from a crashed commit are never overwritten).
  std::uint64_t next_generation() const;

  // Atomic commit of `image` as the next generation. On success the
  // returned Generation is durable and referenced by the manifest.
  fault::Result<Generation> commit(const std::string& image,
                                   const CommitHooks& hooks = {});

 private:
  explicit StoreDir(std::string path) : path_(std::move(path)) {}

  fault::Status write_manifest(const Manifest& manifest) const;

  std::string path_;
};

// Formats a generation filename ("gen-000042.fa").
std::string generation_filename(std::uint64_t number);

// Serialized manifest text (exposed for fa_store_inspect and tests).
std::string encode_manifest(const Manifest& manifest);
fault::Result<Manifest> parse_manifest(std::string_view text,
                                       const std::string& source);

}  // namespace fa::store

// The one piece of code allowed behind the private walls of the classes
// it rehydrates. Restoring a world is assignment of the exact arrays a
// build would have produced — no re-derivation — so the friend surface
// is "read the private SoA members, write them back". Shared by the
// monolithic codec (store/codec.cpp) and the sharded one (fa::shard).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/world.hpp"
#include "index/grid_index.hpp"
#include "synth/counties.hpp"
#include "synth/hazard.hpp"
#include "synth/usatlas.hpp"

namespace fa::store {

struct Access {
  // --- readers (encode) -----------------------------------------------
  static const std::vector<std::uint8_t>& txr_class(const core::World& w) {
    return w.txr_class_;
  }
  static const std::vector<std::int32_t>& txr_county(const core::World& w) {
    return w.txr_county_;
  }
  static const std::vector<std::uint8_t>& txr_provider(const core::World& w) {
    return w.txr_provider_;
  }
  static const std::vector<std::uint32_t>& binned(const index::GridIndex& g) {
    return g.binned_;
  }
  static const std::vector<double>& binned_x(const index::GridIndex& g) {
    return g.binned_x_;
  }
  static const std::vector<double>& binned_y(const index::GridIndex& g) {
    return g.binned_y_;
  }
  static const std::vector<std::uint32_t>& cell_start(
      const index::GridIndex& g) {
    return g.cell_start_;
  }
  static int cols(const index::GridIndex& g) { return g.cols_; }
  static int rows(const index::GridIndex& g) { return g.rows_; }
  static double inv_cw(const index::GridIndex& g) { return g.inv_cw_; }
  static double inv_ch(const index::GridIndex& g) { return g.inv_ch_; }

  // --- writers (decode) -----------------------------------------------
  static index::GridIndex make_index(std::vector<geo::Vec2> points,
                                     std::vector<std::uint32_t> binned,
                                     std::vector<double> binned_x,
                                     std::vector<double> binned_y,
                                     std::vector<std::uint32_t> cell_start,
                                     geo::BBox bounds, int cols, int rows,
                                     double inv_cw, double inv_ch) {
    index::GridIndex g;
    g.points_ = std::move(points);
    g.binned_ = std::move(binned);
    g.binned_x_ = std::move(binned_x);
    g.binned_y_ = std::move(binned_y);
    g.cell_start_ = std::move(cell_start);
    g.bounds_ = bounds;
    g.cols_ = cols;
    g.rows_ = rows;
    g.inv_cw_ = inv_cw;
    g.inv_ch_ = inv_ch;
    return g;
  }

  static synth::WhpModel make_whp(raster::ClassRaster grid,
                                  raster::Raster<std::int16_t> states,
                                  raster::MaskRaster urban,
                                  raster::MaskRaster roads) {
    synth::WhpModel m;  // proj_ is parameter-free: default construction
    m.grid_ = std::move(grid);
    m.states_ = std::move(states);
    m.urban_ = std::move(urban);
    m.roads_ = std::move(roads);
    return m;
  }

  static synth::CountyMap make_counties(std::vector<synth::County> counties) {
    synth::CountyMap map;
    map.atlas_ = &synth::UsAtlas::get();
    map.by_state_.assign(
        static_cast<std::size_t>(map.atlas_->num_states()), {});
    for (std::size_t i = 0; i < counties.size(); ++i) {
      // build() appends in counties_ order too, so this reproduces
      // by_state_ exactly.
      map.by_state_[static_cast<std::size_t>(counties[i].state)].push_back(
          static_cast<int>(i));
    }
    map.counties_ = std::move(counties);
    return map;
  }

  static core::World make_world(synth::ScenarioConfig config,
                                synth::WhpModel whp,
                                cellnet::CellCorpus corpus,
                                synth::CountyMap counties,
                                std::size_t ingest_dropped,
                                std::size_t ingest_repaired,
                                std::vector<std::uint8_t> txr_class,
                                std::vector<std::int32_t> txr_county,
                                std::vector<std::uint8_t> txr_provider,
                                index::GridIndex txr_index) {
    core::World w;
    w.config_ = config;
    w.atlas_ = &synth::UsAtlas::get();
    w.whp_ = std::make_shared<const synth::WhpModel>(std::move(whp));
    w.corpus_ = std::move(corpus);
    w.counties_ =
        std::make_shared<const synth::CountyMap>(std::move(counties));
    w.ingest_dropped_ = ingest_dropped;
    w.ingest_repaired_ = ingest_repaired;
    // providers_ is the built-in deterministic registry, already
    // default-constructed.
    w.txr_class_ = std::move(txr_class);
    w.txr_county_ = std::move(txr_county);
    w.txr_provider_ = std::move(txr_provider);
    w.txr_index_ = std::move(txr_index);
    return w;
  }

  // Shared-parts variant for rebuilds that keep the hazard surface and
  // county map of an existing world (sharded materialize, delta apply).
  static core::World make_world_shared(
      synth::ScenarioConfig config,
      std::shared_ptr<const synth::WhpModel> whp, cellnet::CellCorpus corpus,
      std::shared_ptr<const synth::CountyMap> counties,
      std::size_t ingest_dropped, std::size_t ingest_repaired,
      std::vector<std::uint8_t> txr_class, std::vector<std::int32_t> txr_county,
      std::vector<std::uint8_t> txr_provider, index::GridIndex txr_index) {
    core::World w;
    w.config_ = config;
    w.atlas_ = &synth::UsAtlas::get();
    w.whp_ = std::move(whp);
    w.corpus_ = std::move(corpus);
    w.counties_ = std::move(counties);
    w.ingest_dropped_ = ingest_dropped;
    w.ingest_repaired_ = ingest_repaired;
    w.txr_class_ = std::move(txr_class);
    w.txr_county_ = std::move(txr_county);
    w.txr_provider_ = std::move(txr_provider);
    w.txr_index_ = std::move(txr_index);
    return w;
  }
};

}  // namespace fa::store

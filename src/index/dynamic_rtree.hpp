// Incremental R-tree: a static STR-packed base plus a small overlay of
// inserts and a tombstone set, merged at query time and compacted back
// into one bulk-loaded base once the overlay grows past a threshold.
//
// The static RTree's packing is what makes its probes fast, and
// re-packing is cheap relative to how rarely the indexed sets change
// (live-feed fire perimeters arrive a handful per tick against thousands
// of active fires). So instead of R*-style node splitting, mutations go
// to a side vector — a linear scan while small — and compact() re-packs
// when the overlay would start to dominate probe cost. Queries see
// exactly the set of live entries regardless of which side they sit on;
// the randomized property suite pins query equivalence with a freshly
// bulk-loaded tree after every operation.
//
// Thread model: mutation is single-writer, externally synchronized;
// concurrent const queries are safe between mutations (the serve layer
// only ever queries immutable snapshots, but the feed generator shares
// one instance across its own phases).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "index/rtree.hpp"

namespace fa::index {

class DynamicRTree {
 public:
  using Entry = RTree::Entry;

  DynamicRTree() = default;
  // Bulk-loads the initial set. `compact_fraction` is the overlay size
  // (inserts + tombstones) relative to the live entry count that
  // triggers re-packing, clamped to (0, 1].
  explicit DynamicRTree(std::vector<Entry> entries,
                        double compact_fraction = 0.25, int max_fanout = 16);

  // Number of live entries.
  std::size_t size() const { return live_.size(); }
  bool empty() const { return live_.empty(); }

  // Inserts an entry. Ids are caller-assigned and must be unique among
  // live entries; re-inserting a live id replaces its box.
  void insert(const Entry& entry);
  // Removes the live entry with `id`; returns false when absent.
  bool remove(std::uint32_t id);
  // Live box lookup; returns false when `id` is not live.
  bool find(std::uint32_t id, geo::BBox& out) const;

  // Invokes fn(id) for every live entry whose box intersects `query`.
  // Order is unspecified (base-tree hits, then overlay hits).
  template <class Fn>
  void query(const geo::BBox& query, Fn&& fn) const {
    base_.query(query, [&](std::uint32_t id) {
      if (!is_shadowed(id)) fn(id);
    });
    if (!query.valid()) return;
    for (const Entry& e : overlay_) {
      if (e.box.intersects(query)) fn(e.id);
    }
  }
  std::vector<std::uint32_t> query(const geo::BBox& query) const;

  // Re-packs base + overlay into one fresh STR tree. Called
  // automatically past the threshold; exposed so callers can pay the
  // cost at a quiet moment instead.
  void compact();

  // Introspection for tests/benchmarks.
  std::size_t overlay_size() const { return overlay_.size(); }
  std::size_t tombstone_count() const { return shadowed_; }

 private:
  bool is_shadowed(std::uint32_t id) const {
    const auto it = live_.find(id);
    // A base id is shadowed when it is no longer live or its current
    // box lives in the overlay (replacement after re-insert).
    return it == live_.end() || it->second.in_overlay;
  }
  void maybe_compact();

  struct LiveRef {
    geo::BBox box;
    bool in_overlay = false;
    std::uint32_t overlay_slot = 0;  // into overlay_ when in_overlay
  };

  RTree base_;
  std::vector<Entry> overlay_;  // live entries not (or no longer) in base_
  std::unordered_map<std::uint32_t, LiveRef> live_;
  std::size_t shadowed_ = 0;  // base entries masked by retire/replace
  double compact_fraction_ = 0.25;
  int max_fanout_ = 16;
};

}  // namespace fa::index

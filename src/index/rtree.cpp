#include "index/rtree.hpp"

#include <algorithm>
#include <cmath>

namespace fa::index {

RTree::RTree(std::vector<Entry> entries, int max_fanout)
    : entries_(std::move(entries)), num_entries_(entries_.size()) {
  if (entries_.empty()) return;
  const std::size_t fanout =
      static_cast<std::size_t>(std::clamp(max_fanout, 2, kMaxFanout));

  // --- STR packing of the leaf level ---
  // Sort by x-center into vertical slices, then each slice by y-center.
  std::sort(entries_.begin(), entries_.end(), [](const Entry& a, const Entry& b) {
    return a.box.center().x < b.box.center().x;
  });
  const std::size_t n = entries_.size();
  const std::size_t num_leaves = (n + fanout - 1) / fanout;
  const std::size_t slices =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const std::size_t slice_size = (n + slices - 1) / slices;
  for (std::size_t s = 0; s < slices; ++s) {
    const std::size_t lo = s * slice_size;
    const std::size_t hi = std::min(n, lo + slice_size);
    if (lo >= hi) break;
    std::sort(entries_.begin() + static_cast<std::ptrdiff_t>(lo),
              entries_.begin() + static_cast<std::ptrdiff_t>(hi),
              [](const Entry& a, const Entry& b) {
                return a.box.center().y < b.box.center().y;
              });
  }

  // Build leaf nodes over contiguous runs of `fanout` entries.
  std::vector<std::uint32_t> level;
  for (std::size_t i = 0; i < n; i += fanout) {
    Node node;
    node.leaf = true;
    node.first = static_cast<std::uint32_t>(i);
    node.count = static_cast<std::uint16_t>(std::min(fanout, n - i));
    for (std::size_t j = i; j < i + node.count; ++j) {
      node.box.expand(entries_[j].box);
    }
    level.push_back(static_cast<std::uint32_t>(nodes_.size()));
    nodes_.push_back(node);
  }
  height_ = 1;

  // Pack upper levels until a single root remains. Children built by one
  // pass are contiguous in nodes_, so ranges stay valid.
  while (level.size() > 1) {
    std::vector<std::uint32_t> next;
    for (std::size_t i = 0; i < level.size(); i += fanout) {
      Node node;
      node.leaf = false;
      node.first = level[i];
      node.count =
          static_cast<std::uint16_t>(std::min(fanout, level.size() - i));
      for (std::size_t j = i; j < i + node.count; ++j) {
        node.box.expand(nodes_[level[j]].box);
      }
      next.push_back(static_cast<std::uint32_t>(nodes_.size()));
      nodes_.push_back(node);
    }
    level = std::move(next);
    ++height_;
  }
  root_ = level.front();
}

geo::BBox RTree::bounds() const {
  return nodes_.empty() ? geo::BBox{} : nodes_[root_].box;
}

std::vector<std::uint32_t> RTree::query(const geo::BBox& query) const {
  // Count first so the collection pass allocates exactly once; the
  // second traversal is far cheaper than the realloc churn it replaces.
  std::size_t n = 0;
  this->query(query, [&n](std::uint32_t) { ++n; });
  std::vector<std::uint32_t> out;
  out.reserve(n);
  this->query(query, [&out](std::uint32_t id) { out.push_back(id); });
  return out;
}

}  // namespace fa::index

#include "index/dynamic_rtree.hpp"

#include <algorithm>
#include <utility>

namespace fa::index {

DynamicRTree::DynamicRTree(std::vector<Entry> entries,
                           double compact_fraction, int max_fanout)
    : compact_fraction_(std::clamp(compact_fraction, 1e-3, 1.0)),
      max_fanout_(max_fanout) {
  live_.reserve(entries.size());
  for (const Entry& e : entries) {
    live_[e.id] = LiveRef{e.box, false, 0};
  }
  base_ = RTree(std::move(entries), max_fanout_);
}

void DynamicRTree::insert(const Entry& entry) {
  const auto it = live_.find(entry.id);
  if (it != live_.end()) {
    if (it->second.in_overlay) {
      // Replace in place; the base copy (if any) stays shadowed.
      overlay_[it->second.overlay_slot].box = entry.box;
      it->second.box = entry.box;
      return;
    }
    // The id's current box is in base_; the overlay copy supersedes it.
    ++shadowed_;
    it->second.box = entry.box;
    it->second.in_overlay = true;
    it->second.overlay_slot = static_cast<std::uint32_t>(overlay_.size());
    overlay_.push_back(entry);
    maybe_compact();
    return;
  }
  live_[entry.id] =
      LiveRef{entry.box, true, static_cast<std::uint32_t>(overlay_.size())};
  overlay_.push_back(entry);
  maybe_compact();
}

bool DynamicRTree::remove(std::uint32_t id) {
  const auto it = live_.find(id);
  if (it == live_.end()) return false;
  if (it->second.in_overlay) {
    // Swap-remove from the overlay; patch the moved entry's slot.
    const std::uint32_t slot = it->second.overlay_slot;
    overlay_[slot] = overlay_.back();
    overlay_.pop_back();
    if (slot < overlay_.size()) {
      live_[overlay_[slot].id].overlay_slot = slot;
    }
  } else {
    ++shadowed_;  // tombstone: the base copy is now masked
  }
  live_.erase(it);
  maybe_compact();
  return true;
}

bool DynamicRTree::find(std::uint32_t id, geo::BBox& out) const {
  const auto it = live_.find(id);
  if (it == live_.end()) return false;
  out = it->second.box;
  return true;
}

std::vector<std::uint32_t> DynamicRTree::query(const geo::BBox& q) const {
  std::vector<std::uint32_t> out;
  query(q, [&](std::uint32_t id) { out.push_back(id); });
  return out;
}

void DynamicRTree::compact() {
  std::vector<Entry> entries;
  entries.reserve(live_.size());
  for (auto& [id, ref] : live_) {
    entries.push_back(Entry{ref.box, id});
    ref.in_overlay = false;
  }
  // Deterministic packing: the map's iteration order must not leak into
  // the tree layout.
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.id < b.id; });
  base_ = RTree(std::move(entries), max_fanout_);
  overlay_.clear();
  shadowed_ = 0;
}

void DynamicRTree::maybe_compact() {
  const std::size_t pending = overlay_.size() + shadowed_;
  if (pending < 8) return;  // linear scan is free at this size
  if (static_cast<double>(pending) >
      compact_fraction_ * static_cast<double>(live_.size())) {
    compact();
  }
}

}  // namespace fa::index

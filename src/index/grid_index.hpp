// Uniform grid index over points. Complements the R-tree: the transceiver
// corpus is large (10^5..10^6 points) and queried by region, where binned
// points give cache-friendly scans and O(1) cell addressing.
//
// Visitors are templated (`Fn&&`) so the per-point callback inlines into
// the scan loop — no std::function indirection or allocation on the hot
// path. A std::function still binds to the template at call sites that
// genuinely need type erasure.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geo/bbox.hpp"

namespace fa::store {
struct Access;  // snapshot codec (store/codec.cpp)
}

namespace fa::index {

// One batch of point changes for GridIndex::applied(): survivors are
// re-densified through `new_id_of` (monotone over kept points, so the
// canonical ascending-id order inside every bin is preserved), moved
// points re-bin under their new position, and `added` points take the
// ids past the last survivor in order. kDropped marks a removal.
struct PointDelta {
  static constexpr std::uint32_t kDropped = 0xffffffffu;

  // new_id_of[old_id]: the point's id in the updated index, or kDropped.
  // Must be size() entries, strictly increasing over survivors, and
  // dense (survivors map onto 0..n_kept-1).
  std::vector<std::uint32_t> new_id_of;
  // Position changes for surviving points (old ids, ascending, unique).
  struct Moved {
    std::uint32_t old_id = 0;
    geo::Vec2 to;
  };
  std::vector<Moved> moved;
  // Appended points: ids n_kept, n_kept+1, ... in vector order.
  std::vector<geo::Vec2> added;
};

class GridIndex {
 public:
  GridIndex() = default;
  // Builds over `points` (copied) covering `bounds`, with `cols` x `rows`
  // bins. Points outside `bounds` are clamped into the edge bins. Point
  // ids are the indices into the input vector.
  GridIndex(std::vector<geo::Vec2> points, geo::BBox bounds, int cols,
            int rows);

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const geo::BBox& bounds() const { return bounds_; }

  // Invokes fn(point_id, point) for every point inside `query`.
  template <class Fn>
  void query(const geo::BBox& query, Fn&& fn) const {
    visit<true>(query, std::forward<Fn>(fn));
  }
  std::vector<std::uint32_t> query_ids(const geo::BBox& query) const;

  // Invokes fn for every point in bins that intersect `query`, without the
  // per-point containment test — callers that run an exact polygon test
  // afterwards use this to skip the redundant bbox check.
  template <class Fn>
  void query_candidates(const geo::BBox& query, Fn&& fn) const {
    visit<false>(query, std::forward<Fn>(fn));
  }

  // Invokes fn(begin, end) for each contiguous range [begin, end) of the
  // binned arrays covering one grid row's intersected cells (candidates:
  // no per-point containment test — cells in a row are adjacent in the
  // counting-sorted storage, so a row collapses to a single range).
  // Together with binned_ids()/binned_xs()/binned_ys() this hands whole
  // candidate spans to batch kernels such as
  // geo::PreparedMultiPolygon::contains_batch instead of point-at-a-time
  // callbacks. Entry order is identical to query_candidates.
  template <class Fn>
  void query_spans(const geo::BBox& query, Fn&& fn) const {
    if (points_.empty() || !query.valid() || !query.intersects(bounds_)) {
      return;
    }
    const int c0 = col_of(query.min_x);
    const int c1 = col_of(query.max_x);
    const int r0 = row_of(query.min_y);
    const int r1 = row_of(query.max_y);
    for (int r = r0; r <= r1; ++r) {
      const std::size_t row = static_cast<std::size_t>(r) * cols_;
      const std::uint32_t begin =
          cell_start_[row + static_cast<std::size_t>(c0)];
      const std::uint32_t end =
          cell_start_[row + static_cast<std::size_t>(c1) + 1];
      if (begin < end) fn(begin, end);
    }
  }

  // Structure-of-arrays views backing query_spans: binned entry k is
  // point id binned_ids()[k] at (binned_xs()[k], binned_ys()[k]).
  std::span<const std::uint32_t> binned_ids() const { return binned_; }
  std::span<const double> binned_xs() const { return binned_x_; }
  std::span<const double> binned_ys() const { return binned_y_; }

  // Incremental maintenance: a new index over the delta-applied point
  // set, byte-identical (points, binned SoA, cell spans) to
  // GridIndex(final_points, bounds(), cols, rows) built from scratch —
  // the property the delta snapshot byte-identity tests pin. Cost is
  // O(points + cells + changes), with no re-binning of clean points:
  // survivors keep their bin slot and are re-id'd in place, movers and
  // adds merge into their target bins by id.
  GridIndex applied(const PointDelta& delta) const;

  // Count of points within `query` (exact).
  std::size_t count(const geo::BBox& query) const;

  // The k nearest points to `target` (Euclidean in index coordinates),
  // nearest first. Expands the bin search ring until k candidates are
  // confirmed; returns fewer than k only when the index holds fewer.
  std::vector<std::uint32_t> nearest(geo::Vec2 target, std::size_t k) const;

  geo::Vec2 point(std::uint32_t id) const { return points_[id]; }

 private:
  friend struct fa::store::Access;  // serializes the binned SoA verbatim

  int col_of(double x) const;
  int row_of(double y) const;

  template <bool Exact, class Fn>
  void visit(const geo::BBox& query, Fn&& fn) const {
    if (points_.empty() || !query.valid() || !query.intersects(bounds_)) {
      return;
    }
    const int c0 = col_of(query.min_x);
    const int c1 = col_of(query.max_x);
    const int r0 = row_of(query.min_y);
    const int r1 = row_of(query.max_y);
    for (int r = r0; r <= r1; ++r) {
      for (int c = c0; c <= c1; ++c) {
        const std::size_t cell = static_cast<std::size_t>(r) * cols_ + c;
        for (std::uint32_t k = cell_start_[cell]; k < cell_start_[cell + 1];
             ++k) {
          const std::uint32_t id = binned_[k];
          const geo::Vec2 p = points_[id];
          if constexpr (Exact) {
            if (!query.contains(p)) continue;
          }
          fn(id, p);
        }
      }
    }
  }

  std::vector<geo::Vec2> points_;       // original order; id == index
  std::vector<std::uint32_t> binned_;   // point ids sorted by bin
  std::vector<double> binned_x_;        // coordinates in binned order,
  std::vector<double> binned_y_;        //   SoA for the batch kernels
  std::vector<std::uint32_t> cell_start_;  // size cols*rows+1, into binned_
  geo::BBox bounds_;
  int cols_ = 0;
  int rows_ = 0;
  double inv_cw_ = 0.0;
  double inv_ch_ = 0.0;
};

}  // namespace fa::index

#include "index/grid_index.hpp"

#include <algorithm>
#include <cstdlib>
#include <cmath>

namespace fa::index {

GridIndex::GridIndex(std::vector<geo::Vec2> points, geo::BBox bounds,
                     int cols, int rows)
    : points_(std::move(points)),
      bounds_(bounds),
      cols_(std::max(1, cols)),
      rows_(std::max(1, rows)) {
  const double w = std::max(bounds_.width(), 1e-12);
  const double h = std::max(bounds_.height(), 1e-12);
  inv_cw_ = static_cast<double>(cols_) / w;
  inv_ch_ = static_cast<double>(rows_) / h;

  const std::size_t num_cells =
      static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_);
  // Counting sort into bins.
  std::vector<std::uint32_t> counts(num_cells, 0);
  const auto bin_of = [this](geo::Vec2 p) {
    return static_cast<std::size_t>(row_of(p.y)) * cols_ +
           static_cast<std::size_t>(col_of(p.x));
  };
  for (const geo::Vec2& p : points_) ++counts[bin_of(p)];

  cell_start_.assign(num_cells + 1, 0);
  for (std::size_t c = 0; c < num_cells; ++c) {
    cell_start_[c + 1] = cell_start_[c] + counts[c];
  }
  binned_.resize(points_.size());
  std::vector<std::uint32_t> cursor(cell_start_.begin(),
                                    cell_start_.end() - 1);
  for (std::uint32_t id = 0; id < points_.size(); ++id) {
    binned_[cursor[bin_of(points_[id])]++] = id;
  }
  binned_x_.resize(points_.size());
  binned_y_.resize(points_.size());
  for (std::size_t k = 0; k < binned_.size(); ++k) {
    const geo::Vec2 p = points_[binned_[k]];
    binned_x_[k] = p.x;
    binned_y_[k] = p.y;
  }
}

int GridIndex::col_of(double x) const {
  const int c = static_cast<int>((x - bounds_.min_x) * inv_cw_);
  return std::clamp(c, 0, cols_ - 1);
}

int GridIndex::row_of(double y) const {
  const int r = static_cast<int>((y - bounds_.min_y) * inv_ch_);
  return std::clamp(r, 0, rows_ - 1);
}

std::vector<std::uint32_t> GridIndex::query_ids(const geo::BBox& q) const {
  std::size_t candidates = 0;
  query_spans(q, [&candidates](std::uint32_t b, std::uint32_t e) {
    candidates += e - b;
  });
  std::vector<std::uint32_t> out;
  out.reserve(candidates);
  query(q, [&out](std::uint32_t id, geo::Vec2) { out.push_back(id); });
  return out;
}

std::size_t GridIndex::count(const geo::BBox& q) const {
  std::size_t n = 0;
  query(q, [&n](std::uint32_t, geo::Vec2) { ++n; });
  return n;
}

std::vector<std::uint32_t> GridIndex::nearest(geo::Vec2 target,
                                              std::size_t k) const {
  std::vector<std::uint32_t> out;
  if (points_.empty() || k == 0) return out;
  k = std::min(k, points_.size());

  const int tc = col_of(target.x);
  const int tr = row_of(target.y);
  // candidates: (distance2, id), grown ring by ring until the kth-best
  // confirmed distance is inside the searched ring radius.
  std::vector<std::pair<double, std::uint32_t>> candidates;
  const double cell_w = bounds_.width() / cols_;
  const double cell_h = bounds_.height() / rows_;
  const int max_ring = std::max(cols_, rows_);
  for (int ring = 0; ring <= max_ring; ++ring) {
    // Visit the cells on this ring only.
    for (int r = tr - ring; r <= tr + ring; ++r) {
      if (r < 0 || r >= rows_) continue;
      for (int c = tc - ring; c <= tc + ring; ++c) {
        if (c < 0 || c >= cols_) continue;
        if (std::max(std::abs(c - tc), std::abs(r - tr)) != ring) continue;
        const std::size_t cell =
            static_cast<std::size_t>(r) * cols_ + c;
        for (std::uint32_t i = cell_start_[cell]; i < cell_start_[cell + 1];
             ++i) {
          const std::uint32_t id = binned_[i];
          candidates.push_back({geo::distance2(points_[id], target), id});
        }
      }
    }
    if (candidates.size() >= k) {
      std::nth_element(candidates.begin(),
                       candidates.begin() + static_cast<std::ptrdiff_t>(k - 1),
                       candidates.end());
      // Confirmed when the kth distance fits inside the searched ring.
      const double ring_reach =
          static_cast<double>(ring) * std::min(cell_w, cell_h);
      if (candidates[k - 1].first <= ring_reach * ring_reach ||
          ring == max_ring) {
        break;
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  out.reserve(k);
  for (std::size_t i = 0; i < k && i < candidates.size(); ++i) {
    out.push_back(candidates[i].second);
  }
  return out;
}

}  // namespace fa::index

#include "index/grid_index.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cmath>

namespace fa::index {

GridIndex::GridIndex(std::vector<geo::Vec2> points, geo::BBox bounds,
                     int cols, int rows)
    : points_(std::move(points)),
      bounds_(bounds),
      cols_(std::max(1, cols)),
      rows_(std::max(1, rows)) {
  const double w = std::max(bounds_.width(), 1e-12);
  const double h = std::max(bounds_.height(), 1e-12);
  inv_cw_ = static_cast<double>(cols_) / w;
  inv_ch_ = static_cast<double>(rows_) / h;

  const std::size_t num_cells =
      static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_);
  // Counting sort into bins.
  std::vector<std::uint32_t> counts(num_cells, 0);
  const auto bin_of = [this](geo::Vec2 p) {
    return static_cast<std::size_t>(row_of(p.y)) * cols_ +
           static_cast<std::size_t>(col_of(p.x));
  };
  for (const geo::Vec2& p : points_) ++counts[bin_of(p)];

  cell_start_.assign(num_cells + 1, 0);
  for (std::size_t c = 0; c < num_cells; ++c) {
    cell_start_[c + 1] = cell_start_[c] + counts[c];
  }
  binned_.resize(points_.size());
  std::vector<std::uint32_t> cursor(cell_start_.begin(),
                                    cell_start_.end() - 1);
  for (std::uint32_t id = 0; id < points_.size(); ++id) {
    binned_[cursor[bin_of(points_[id])]++] = id;
  }
  binned_x_.resize(points_.size());
  binned_y_.resize(points_.size());
  for (std::size_t k = 0; k < binned_.size(); ++k) {
    const geo::Vec2 p = points_[binned_[k]];
    binned_x_[k] = p.x;
    binned_y_[k] = p.y;
  }
}

GridIndex GridIndex::applied(const PointDelta& delta) const {
  assert(delta.new_id_of.size() == points_.size());
  const std::size_t n_old = points_.size();

  // Survivor count + moved-point lookup.
  std::size_t n_kept = 0;
  for (const std::uint32_t nid : delta.new_id_of) {
    if (nid != PointDelta::kDropped) ++n_kept;
  }
  std::vector<std::uint8_t> moved_flag(n_old, 0);
  for (const PointDelta::Moved& m : delta.moved) {
    assert(m.old_id < n_old &&
           delta.new_id_of[m.old_id] != PointDelta::kDropped);
    moved_flag[m.old_id] = 1;
  }

  // The updated id-ordered point array — exactly what a fresh build
  // would be handed: survivors (moves applied) then adds.
  const std::size_t n_new = n_kept + delta.added.size();
  std::vector<geo::Vec2> pts(n_new);
  for (std::uint32_t old_id = 0; old_id < n_old; ++old_id) {
    const std::uint32_t nid = delta.new_id_of[old_id];
    if (nid == PointDelta::kDropped) continue;
    pts[nid] = points_[old_id];
  }
  for (const PointDelta::Moved& m : delta.moved) {
    pts[delta.new_id_of[m.old_id]] = m.to;
  }
  for (std::size_t i = 0; i < delta.added.size(); ++i) {
    pts[n_kept + i] = delta.added[i];
  }

  GridIndex next;
  next.bounds_ = bounds_;
  next.cols_ = cols_;
  next.rows_ = rows_;
  next.inv_cw_ = inv_cw_;
  next.inv_ch_ = inv_ch_;

  const auto bin_of = [this](geo::Vec2 p) {
    return static_cast<std::size_t>(row_of(p.y)) * cols_ +
           static_cast<std::size_t>(col_of(p.x));
  };

  // Incoming entries (movers re-binned under their new position, plus
  // adds), sorted by (cell, new id) so the per-cell merge below sees
  // them in canonical order.
  struct Incoming {
    std::size_t cell;
    std::uint32_t id;
  };
  std::vector<Incoming> incoming;
  incoming.reserve(delta.moved.size() + delta.added.size());
  for (const PointDelta::Moved& m : delta.moved) {
    const std::uint32_t nid = delta.new_id_of[m.old_id];
    incoming.push_back({bin_of(pts[nid]), nid});
  }
  for (std::size_t i = 0; i < delta.added.size(); ++i) {
    const std::uint32_t nid = static_cast<std::uint32_t>(n_kept + i);
    incoming.push_back({bin_of(pts[nid]), nid});
  }
  std::sort(incoming.begin(), incoming.end(),
            [](const Incoming& a, const Incoming& b) {
              return a.cell != b.cell ? a.cell < b.cell : a.id < b.id;
            });

  // Per-cell counts: old occupancy minus departures (drops + movers)
  // plus the incoming entries.
  const std::size_t num_cells =
      static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_);
  std::vector<std::uint32_t> counts(num_cells, 0);
  for (std::size_t c = 0; c < num_cells; ++c) {
    counts[c] = cell_start_[c + 1] - cell_start_[c];
  }
  for (std::uint32_t old_id = 0; old_id < n_old; ++old_id) {
    if (delta.new_id_of[old_id] == PointDelta::kDropped ||
        moved_flag[old_id]) {
      --counts[bin_of(points_[old_id])];
    }
  }
  for (const Incoming& in : incoming) ++counts[in.cell];

  next.cell_start_.assign(num_cells + 1, 0);
  for (std::size_t c = 0; c < num_cells; ++c) {
    next.cell_start_[c + 1] = next.cell_start_[c] + counts[c];
  }

  // Fill each bin by merging its surviving old entries (already in
  // ascending old-id order; the remap is monotone over survivors, so
  // ascending new-id order too) with its incoming entries — restoring
  // the exact layout a counting-sorted fresh build produces.
  next.binned_.resize(n_new);
  next.binned_x_.resize(n_new);
  next.binned_y_.resize(n_new);
  std::size_t inc_cursor = 0;
  for (std::size_t cell = 0; cell < num_cells; ++cell) {
    std::uint32_t out = next.cell_start_[cell];
    std::uint32_t old_k = cell_start_[cell];
    const std::uint32_t old_end = cell_start_[cell + 1];
    const auto emit = [&](std::uint32_t id) {
      next.binned_[out] = id;
      next.binned_x_[out] = pts[id].x;
      next.binned_y_[out] = pts[id].y;
      ++out;
    };
    while (true) {
      // Next surviving stayer in this bin.
      std::uint32_t stay = PointDelta::kDropped;
      while (old_k < old_end) {
        const std::uint32_t old_id = binned_[old_k];
        if (delta.new_id_of[old_id] == PointDelta::kDropped ||
            moved_flag[old_id]) {
          ++old_k;
          continue;
        }
        stay = delta.new_id_of[old_id];
        break;
      }
      const bool has_inc =
          inc_cursor < incoming.size() && incoming[inc_cursor].cell == cell;
      if (stay == PointDelta::kDropped && !has_inc) break;
      if (stay != PointDelta::kDropped &&
          (!has_inc || stay < incoming[inc_cursor].id)) {
        emit(stay);
        ++old_k;
      } else {
        emit(incoming[inc_cursor].id);
        ++inc_cursor;
      }
    }
    assert(out == next.cell_start_[cell + 1]);
  }
  next.points_ = std::move(pts);
  return next;
}

int GridIndex::col_of(double x) const {
  const int c = static_cast<int>((x - bounds_.min_x) * inv_cw_);
  return std::clamp(c, 0, cols_ - 1);
}

int GridIndex::row_of(double y) const {
  const int r = static_cast<int>((y - bounds_.min_y) * inv_ch_);
  return std::clamp(r, 0, rows_ - 1);
}

std::vector<std::uint32_t> GridIndex::query_ids(const geo::BBox& q) const {
  std::size_t candidates = 0;
  query_spans(q, [&candidates](std::uint32_t b, std::uint32_t e) {
    candidates += e - b;
  });
  std::vector<std::uint32_t> out;
  out.reserve(candidates);
  query(q, [&out](std::uint32_t id, geo::Vec2) { out.push_back(id); });
  return out;
}

std::size_t GridIndex::count(const geo::BBox& q) const {
  std::size_t n = 0;
  query(q, [&n](std::uint32_t, geo::Vec2) { ++n; });
  return n;
}

std::vector<std::uint32_t> GridIndex::nearest(geo::Vec2 target,
                                              std::size_t k) const {
  std::vector<std::uint32_t> out;
  if (points_.empty() || k == 0) return out;
  k = std::min(k, points_.size());

  const int tc = col_of(target.x);
  const int tr = row_of(target.y);
  // candidates: (distance2, id), grown ring by ring until the kth-best
  // confirmed distance is inside the searched ring radius.
  std::vector<std::pair<double, std::uint32_t>> candidates;
  const double cell_w = bounds_.width() / cols_;
  const double cell_h = bounds_.height() / rows_;
  const int max_ring = std::max(cols_, rows_);
  for (int ring = 0; ring <= max_ring; ++ring) {
    // Visit the cells on this ring only.
    for (int r = tr - ring; r <= tr + ring; ++r) {
      if (r < 0 || r >= rows_) continue;
      for (int c = tc - ring; c <= tc + ring; ++c) {
        if (c < 0 || c >= cols_) continue;
        if (std::max(std::abs(c - tc), std::abs(r - tr)) != ring) continue;
        const std::size_t cell =
            static_cast<std::size_t>(r) * cols_ + c;
        for (std::uint32_t i = cell_start_[cell]; i < cell_start_[cell + 1];
             ++i) {
          const std::uint32_t id = binned_[i];
          candidates.push_back({geo::distance2(points_[id], target), id});
        }
      }
    }
    if (candidates.size() >= k) {
      std::nth_element(candidates.begin(),
                       candidates.begin() + static_cast<std::ptrdiff_t>(k - 1),
                       candidates.end());
      // Confirmed when the kth distance fits inside the searched ring.
      const double ring_reach =
          static_cast<double>(ring) * std::min(cell_w, cell_h);
      if (candidates[k - 1].first <= ring_reach * ring_reach ||
          ring == max_ring) {
        break;
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  out.reserve(k);
  for (std::size_t i = 0; i < k && i < candidates.size(); ++i) {
    out.push_back(candidates[i].second);
  }
  return out;
}

}  // namespace fa::index

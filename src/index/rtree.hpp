// Static STR-packed R-tree over (BBox, id) entries.
//
// The tree is bulk-loaded once with Sort-Tile-Recursive packing and is
// immutable afterwards — exactly the access pattern of the overlay
// pipeline, where a year's fire perimeters are indexed once and probed by
// millions of transceiver points.
//
// Visitors are templated (`Fn&&`) so the per-entry callback inlines into
// the traversal — no std::function indirection on the probe path. A
// std::function still binds to the template where type erasure is needed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geo/bbox.hpp"

namespace fa::index {

class RTree {
 public:
  struct Entry {
    geo::BBox box;
    std::uint32_t id = 0;
  };

  RTree() = default;
  // Bulk-loads `entries` (copied); `max_fanout` children per node,
  // clamped to [2, kMaxFanout] so query's traversal stack is bounded.
  explicit RTree(std::vector<Entry> entries, int max_fanout = 16);

  std::size_t size() const { return num_entries_; }
  bool empty() const { return num_entries_ == 0; }
  geo::BBox bounds() const;

  // Invokes `fn(id)` for every entry whose box intersects `query`.
  template <class Fn>
  void query(const geo::BBox& query, Fn&& fn) const {
    if (nodes_.empty() || !query.valid()) return;
    // Explicit stack: depth is bounded by the tree height (fanout >= 2),
    // and kMaxDepth leaves generous slack above log2(2^32) levels.
    std::uint32_t stack[kMaxDepth];
    int top = 0;
    stack[top++] = root_;
    while (top > 0) {
      const Node& node = nodes_[stack[--top]];
      if (!node.box.intersects(query)) continue;
      if (node.leaf) {
        for (std::uint32_t i = node.first; i < node.first + node.count; ++i) {
          if (entries_[i].box.intersects(query)) fn(entries_[i].id);
        }
        continue;
      }
      for (std::uint32_t i = node.first; i < node.first + node.count; ++i) {
        stack[top++] = i;
      }
    }
  }
  // Convenience: collect intersecting ids (unordered).
  std::vector<std::uint32_t> query(const geo::BBox& query) const;
  // Invokes `fn(id)` for every entry whose box contains the point.
  template <class Fn>
  void query_point(geo::Vec2 p, Fn&& fn) const {
    query(geo::BBox::of_point(p), std::forward<Fn>(fn));
  }

  // Number of tree levels (1 = leaves only); exposed for tests/benchmarks.
  int height() const { return height_; }

  static constexpr int kMaxFanout = 64;

 private:
  struct Node {
    geo::BBox box;
    // Children are a contiguous range: nodes_[first .. first+count) for
    // internal nodes, entries_[first .. first+count) for leaves.
    std::uint32_t first = 0;
    std::uint16_t count = 0;
    bool leaf = true;
  };

  // 40 levels of fanout >= 2 cover any 32-bit entry count; the stack
  // holds at most (fanout-1) * height + 1 pending nodes.
  static constexpr int kMaxDepth = 40 * (kMaxFanout - 1) + 1;

  std::vector<Entry> entries_;
  std::vector<Node> nodes_;  // nodes_[root_] is the root when non-empty
  std::uint32_t root_ = 0;
  std::size_t num_entries_ = 0;
  int height_ = 0;
};

}  // namespace fa::index

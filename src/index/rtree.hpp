// Static STR-packed R-tree over (BBox, id) entries.
//
// The tree is bulk-loaded once with Sort-Tile-Recursive packing and is
// immutable afterwards — exactly the access pattern of the overlay
// pipeline, where a year's fire perimeters are indexed once and probed by
// millions of transceiver points.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "geo/bbox.hpp"

namespace fa::index {

class RTree {
 public:
  struct Entry {
    geo::BBox box;
    std::uint32_t id = 0;
  };

  RTree() = default;
  // Bulk-loads `entries` (copied); `max_fanout` children per node.
  explicit RTree(std::vector<Entry> entries, int max_fanout = 16);

  std::size_t size() const { return num_entries_; }
  bool empty() const { return num_entries_ == 0; }
  geo::BBox bounds() const;

  // Invokes `fn(id)` for every entry whose box intersects `query`.
  void query(const geo::BBox& query,
             const std::function<void(std::uint32_t)>& fn) const;
  // Convenience: collect intersecting ids (unordered).
  std::vector<std::uint32_t> query(const geo::BBox& query) const;
  // Invokes `fn(id)` for every entry whose box contains the point.
  void query_point(geo::Vec2 p,
                   const std::function<void(std::uint32_t)>& fn) const;

  // Number of tree levels (1 = leaves only); exposed for tests/benchmarks.
  int height() const { return height_; }

 private:
  struct Node {
    geo::BBox box;
    // Children are a contiguous range: nodes_[first .. first+count) for
    // internal nodes, entries_[first .. first+count) for leaves.
    std::uint32_t first = 0;
    std::uint16_t count = 0;
    bool leaf = true;
  };

  void query_impl(std::uint32_t node_idx, const geo::BBox& query,
                  const std::function<void(std::uint32_t)>& fn) const;

  std::vector<Entry> entries_;
  std::vector<Node> nodes_;  // nodes_[root_] is the root when non-empty
  std::uint32_t root_ = 0;
  std::size_t num_entries_ = 0;
  int height_ = 0;
};

}  // namespace fa::index

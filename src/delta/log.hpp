// Delta persistence: hash-chained generation increments.
//
// A full snapshot (store/gen-NNNNNN.fa) is expensive to commit, so
// between snapshots each applied batch is appended as a small increment
// file in the same store directory:
//
//   gen-000042.fa            full snapshot image (fa::store)
//   gen-000042.d-000000.fad  first batch applied on top of it
//   gen-000042.d-000001.fad  second batch
//
// Every increment names its base generation and carries the CRC-32 of
// its predecessor — increment 0 links to the whole-file CRC of the base
// snapshot image, increment k to the whole-file CRC of increment k-1 —
// so cold start can prove it is replaying exactly the chain that was
// written, in order, on top of exactly the snapshot it has. Replay
// stops at the first broken link: a torn tail truncates (the serving
// path falls back to the last provably consistent state), it never
// poisons.
//
// Increments commit atomically (tmp + fsync + rename + dir fsync, the
// store's own protocol); a crash mid-append leaves ignorable .tmp
// debris.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "delta/event.hpp"
#include "store/store.hpp"

namespace fa::delta {

class DeltaLog {
 public:
  DeltaLog() = default;

  // Opens the increment chain for `base_gen` in `dir`. `base_crc` is
  // the base snapshot's whole-file CRC as the manifest records it; pass
  // 0 (a scan() manifest) to have it computed from the image file.
  // Scans existing increments to find the chain tail; unreachable
  // files past a broken link are deleted (they can never replay).
  static fault::Result<DeltaLog> open(const store::StoreDir& dir,
                                      std::uint64_t base_gen,
                                      std::uint32_t base_crc);

  // Durably appends one applied batch as the next increment; returns
  // its ordinal.
  fault::Result<std::uint64_t> append(std::span<const FeedEvent> batch);

  struct Replay {
    // Valid batches in append order.
    std::vector<std::vector<FeedEvent>> batches;
    // Increment files dropped at the first broken link (torn tail).
    std::size_t truncated = 0;
  };
  // Re-reads and verifies the chain from disk (cold start).
  Replay replay() const;

  std::uint64_t base_generation() const { return base_gen_; }
  std::uint64_t next_ordinal() const { return next_ordinal_; }

  // Deletes increments belonging to any base generation other than
  // `keep_base` (after a new full snapshot commits, older chains are
  // superseded — the snapshot already contains their effects).
  static void prune_stale(const store::StoreDir& dir,
                          std::uint64_t keep_base);

 private:
  DeltaLog(const store::StoreDir& dir, std::uint64_t base_gen)
      : dir_path_(dir.path()), base_gen_(base_gen) {}

  std::string dir_path_;
  std::uint64_t base_gen_ = 0;
  std::uint64_t next_ordinal_ = 0;
  std::uint32_t chain_crc_ = 0;  // whole-file CRC of the chain tail
};

// Increment filename ("gen-000042.d-000007.fad").
std::string increment_filename(std::uint64_t base_gen, std::uint64_t ordinal);

}  // namespace fa::delta

#include "delta/event.hpp"

#include <bit>
#include <cmath>
#include <utility>

#include "geo/lonlat.hpp"

namespace fa::delta {

namespace {

void put_u8(std::string& s, std::uint8_t v) {
  s.push_back(static_cast<char>(v));
}
void put_u16(std::string& s, std::uint16_t v) {
  const char b[2] = {static_cast<char>(v), static_cast<char>(v >> 8)};
  s.append(b, 2);
}
void put_u32(std::string& s, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
  s.append(b, 4);
}
void put_u64(std::string& s, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  s.append(b, 8);
}
// Same canonicalization as serve/wire.hpp: -0.0 writes as +0.0 so equal
// values encode bit-identically.
void put_f64(std::string& s, double v) {
  if (v == 0.0) v = 0.0;
  put_u64(s, std::bit_cast<std::uint64_t>(v));
}

// Bounds-checked little-endian cursor (the wire.cpp Reader, minus the
// frame header logic — the log stores bare batches).
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::size_t offset() const { return pos_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool done() const { return pos_ == bytes_.size(); }

  bool get_u8(std::uint8_t& out) {
    if (remaining() < 1) return false;
    out = static_cast<std::uint8_t>(bytes_[pos_++]);
    return true;
  }
  bool get_u16(std::uint16_t& out) {
    if (remaining() < 2) return false;
    out = 0;
    for (int i = 0; i < 2; ++i) {
      out = static_cast<std::uint16_t>(
          out | static_cast<std::uint16_t>(
                    static_cast<unsigned char>(bytes_[pos_ + i]))
                    << (8 * i));
    }
    pos_ += 2;
    return true;
  }
  bool get_u32(std::uint32_t& out) {
    if (remaining() < 4) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool get_u64(std::uint64_t& out) {
    if (remaining() < 8) return false;
    out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool get_f64(double& out) {
    std::uint64_t u = 0;
    if (!get_u64(u)) return false;
    out = std::bit_cast<double>(u);
    return true;
  }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string_view event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kAddTransceiver:
      return "add_transceiver";
    case EventKind::kRetireTransceiver:
      return "retire_transceiver";
    case EventKind::kMoveTransceiver:
      return "move_transceiver";
    case EventKind::kFirePerimeter:
      return "fire_perimeter";
    case EventKind::kWhpPatch:
      return "whp_patch";
  }
  return "unknown";
}

bool FeedEvent::operator==(const FeedEvent& o) const {
  if (seq != o.seq || t_ms != o.t_ms || kind != o.kind) return false;
  if (txr.id != o.txr.id || txr.position != o.txr.position ||
      txr.radio != o.txr.radio || txr.mcc != o.txr.mcc ||
      txr.mnc != o.txr.mnc || txr.cell_id != o.txr.cell_id ||
      txr.state != o.txr.state) {
    return false;
  }
  if (target != o.target || severity != o.severity ||
      patch_box != o.patch_box) {
    return false;
  }
  if (perimeter.size() != o.perimeter.size()) return false;
  for (std::size_t i = 0; i < perimeter.size(); ++i) {
    if (perimeter[i] != o.perimeter[i]) return false;
  }
  return true;
}

fault::Status validate_shape(const FeedEvent& event) {
  using fault::ErrCode;
  using fault::Status;
  const auto bad = [&](ErrCode code, std::string message) {
    return Status::error(code, event.seq, "delta.feed", std::move(message));
  };
  if (static_cast<std::uint8_t>(event.kind) >= kNumEventKinds) {
    return bad(ErrCode::kSchema, "unknown event kind");
  }
  switch (event.kind) {
    case EventKind::kAddTransceiver:
    case EventKind::kMoveTransceiver:
      if (!geo::is_valid(event.txr.position)) {
        return bad(ErrCode::kOutOfRange,
                   "position outside lon/lat domain");
      }
      break;
    case EventKind::kRetireTransceiver:
      break;
    case EventKind::kFirePerimeter: {
      if (event.perimeter.size() < 3) {
        return bad(ErrCode::kSchema, "perimeter has fewer than 3 vertices");
      }
      for (const geo::Vec2& p : event.perimeter.points()) {
        if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
          return bad(ErrCode::kOutOfRange, "non-finite perimeter vertex");
        }
      }
      if (static_cast<std::uint8_t>(event.severity) >=
          synth::kNumWhpClasses) {
        return bad(ErrCode::kOutOfRange, "severity outside class domain");
      }
      break;
    }
    case EventKind::kWhpPatch:
      if (!event.patch_box.valid() || !std::isfinite(event.patch_box.min_x) ||
          !std::isfinite(event.patch_box.min_y) ||
          !std::isfinite(event.patch_box.max_x) ||
          !std::isfinite(event.patch_box.max_y)) {
        return bad(ErrCode::kOutOfRange, "invalid patch box");
      }
      if (static_cast<std::uint8_t>(event.severity) >=
          synth::kNumWhpClasses) {
        return bad(ErrCode::kOutOfRange, "severity outside class domain");
      }
      break;
  }
  return {};
}

std::string encode_events(std::span<const FeedEvent> events) {
  std::string out;
  out.reserve(16 + events.size() * 64);
  put_u32(out, static_cast<std::uint32_t>(events.size()));
  for (const FeedEvent& e : events) {
    put_u64(out, e.seq);
    put_u64(out, e.t_ms);
    put_u8(out, static_cast<std::uint8_t>(e.kind));
    put_u32(out, e.txr.id);
    put_f64(out, e.txr.position.lon);
    put_f64(out, e.txr.position.lat);
    put_u8(out, static_cast<std::uint8_t>(e.txr.radio));
    put_u16(out, e.txr.mcc);
    put_u16(out, e.txr.mnc);
    put_u32(out, e.txr.cell_id);
    put_u16(out, static_cast<std::uint16_t>(e.txr.state));
    put_u32(out, e.target);
    put_u32(out, static_cast<std::uint32_t>(e.perimeter.size()));
    for (const geo::Vec2& p : e.perimeter.points()) {
      put_f64(out, p.x);
      put_f64(out, p.y);
    }
    put_u8(out, static_cast<std::uint8_t>(e.severity));
    put_f64(out, e.patch_box.min_x);
    put_f64(out, e.patch_box.min_y);
    put_f64(out, e.patch_box.max_x);
    put_f64(out, e.patch_box.max_y);
  }
  return out;
}

fault::Result<std::vector<FeedEvent>> decode_events(
    std::string_view bytes, const std::string& source) {
  using fault::ErrCode;
  using fault::Status;
  Reader r(bytes);
  const auto truncated = [&] {
    return Status::error(ErrCode::kTruncated, r.offset(), source,
                         "batch ends mid-field");
  };
  std::uint32_t count = 0;
  if (!r.get_u32(count)) return truncated();
  if (count > kMaxEventsPerBatch) {
    return Status::error(ErrCode::kLimit, r.offset(), source,
                         "event count " + std::to_string(count) +
                             " exceeds batch cap");
  }
  // Each event is at least 82 fixed bytes; reject counts the remaining
  // payload cannot possibly hold before reserving.
  if (static_cast<std::uint64_t>(count) * 82 > r.remaining()) {
    return truncated();
  }
  std::vector<FeedEvent> events;
  events.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    FeedEvent e;
    std::uint8_t kind = 0;
    std::uint8_t radio = 0;
    std::uint8_t severity = 0;
    std::uint16_t state = 0;
    std::uint32_t n_vertices = 0;
    if (!r.get_u64(e.seq) || !r.get_u64(e.t_ms) || !r.get_u8(kind) ||
        !r.get_u32(e.txr.id) || !r.get_f64(e.txr.position.lon) ||
        !r.get_f64(e.txr.position.lat) || !r.get_u8(radio) ||
        !r.get_u16(e.txr.mcc) || !r.get_u16(e.txr.mnc) ||
        !r.get_u32(e.txr.cell_id) || !r.get_u16(state) ||
        !r.get_u32(e.target) || !r.get_u32(n_vertices)) {
      return truncated();
    }
    if (kind >= kNumEventKinds) {
      return Status::error(ErrCode::kSchema, r.offset(), source,
                           "unknown event kind " + std::to_string(kind));
    }
    if (radio >= cellnet::kNumRadioTypes) {
      return Status::error(ErrCode::kSchema, r.offset(), source,
                           "unknown radio type " + std::to_string(radio));
    }
    if (n_vertices > kMaxPerimeterVertices) {
      return Status::error(ErrCode::kLimit, r.offset(), source,
                           "perimeter vertex count " +
                               std::to_string(n_vertices) +
                               " exceeds ring cap");
    }
    if (static_cast<std::uint64_t>(n_vertices) * 16 > r.remaining()) {
      return truncated();
    }
    e.kind = static_cast<EventKind>(kind);
    e.txr.radio = static_cast<cellnet::RadioType>(radio);
    e.txr.state = static_cast<std::int16_t>(state);
    std::vector<geo::Vec2> pts(n_vertices);
    for (geo::Vec2& p : pts) {
      if (!r.get_f64(p.x) || !r.get_f64(p.y)) return truncated();
    }
    e.perimeter = geo::Ring(std::move(pts));
    if (!r.get_u8(severity) || !r.get_f64(e.patch_box.min_x) ||
        !r.get_f64(e.patch_box.min_y) || !r.get_f64(e.patch_box.max_x) ||
        !r.get_f64(e.patch_box.max_y)) {
      return truncated();
    }
    if (severity >= synth::kNumWhpClasses) {
      return Status::error(ErrCode::kSchema, r.offset(), source,
                           "severity outside class domain");
    }
    e.severity = static_cast<synth::WhpClass>(severity);
    events.push_back(std::move(e));
  }
  if (!r.done()) {
    return Status::error(ErrCode::kSchema, r.offset(), source,
                         std::to_string(r.remaining()) +
                             " trailing bytes after batch");
  }
  return events;
}

}  // namespace fa::delta

#include "delta/feed.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <utility>

#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace fa::delta {

namespace {

constexpr std::string_view kFeedSite = "delta.feed";

}  // namespace

FeedGenerator::FeedGenerator(const core::World& world,
                             const FeedOptions& options)
    : options_(options), world_(&world), rng_(options.seed) {
  const std::vector<cellnet::Transceiver>& txr =
      world.corpus().transceivers();
  positions_.reserve(txr.size());
  for (const cellnet::Transceiver& t : txr) positions_.push_back(t.position);
}

geo::LonLat FeedGenerator::random_onshore_position() {
  const geo::BBox box = world_->atlas().conus_bbox();
  for (int attempt = 0; attempt < 64; ++attempt) {
    const geo::LonLat p{rng_.uniform(box.min_x, box.max_x),
                        rng_.uniform(box.min_y, box.max_y)};
    if (world_->atlas().state_of(p) >= 0) return p;
  }
  return geo::LonLat{box.center().x, box.center().y};
}

FeedEvent FeedGenerator::fire_event(std::uint64_t t_ms) {
  FeedEvent e;
  e.seq = next_seq_++;
  e.t_ms = t_ms;
  e.kind = EventKind::kFirePerimeter;
  e.severity = rng_.chance(0.6) ? synth::WhpClass::kVeryHigh
                                : synth::WhpClass::kHigh;
  const geo::LonLat at = random_onshore_position();
  Fire* grown = nullptr;
  std::uint32_t grown_id = 0;
  // An ignition that lands on an active fire is that fire growing: the
  // feed re-serves a larger perimeter for the same incident.
  fires_.query(geo::BBox::of_point(at.as_vec()), [&](std::uint32_t id) {
    if (grown == nullptr) {
      grown = &fire_state_[id];
      grown_id = id;
    }
  });
  if (grown != nullptr) {
    grown->radius *= rng_.uniform(1.3, 1.8);
    e.perimeter =
        geo::make_circle(grown->center, grown->radius, grown->segments);
    fires_.remove(grown_id);
    fires_.insert({e.perimeter.bbox(), grown_id});
    if (fire_state_[grown_id].radius > 1.5) {
      // A fire this size has burned out of the feed's interest window.
      fires_.remove(grown_id);
    }
  } else {
    Fire f;
    f.center = at.as_vec();
    f.radius = rng_.uniform(0.04, 0.15);
    f.segments = rng_.range(12, 24);
    const std::uint32_t id = next_fire_id_++;
    fire_state_.push_back(f);
    e.perimeter = geo::make_circle(f.center, f.radius, f.segments);
    fires_.insert({e.perimeter.bbox(), id});
  }
  return e;
}

FeedEvent FeedGenerator::fresh_event(std::uint64_t t_ms) {
  const std::array<double, 5> weights = {options_.w_add, options_.w_retire,
                                         options_.w_move, options_.w_fire,
                                         options_.w_patch};
  std::size_t kind = rng_.weighted(weights);
  // Retire/move need an untouched live target; degrade to an add when
  // the mirror cannot supply one (tiny corpora, heavy churn).
  const auto pick_target = [&](std::uint32_t& out) {
    if (positions_.empty()) return false;
    for (int attempt = 0; attempt < 16; ++attempt) {
      const auto id =
          static_cast<std::uint32_t>(rng_.below(positions_.size()));
      if (touched_.insert(id).second) {
        out = id;
        return true;
      }
    }
    return false;
  };

  FeedEvent e;
  e.t_ms = t_ms;
  std::uint32_t target = 0;
  if ((kind == 1 || kind == 2) && !pick_target(target)) kind = 0;
  e.seq = next_seq_++;
  switch (kind) {
    case 1:
      e.kind = EventKind::kRetireTransceiver;
      e.target = target;
      retired_.push_back(target);
      return e;
    case 2: {
      e.kind = EventKind::kMoveTransceiver;
      e.target = target;
      const geo::LonLat from = positions_[target];
      e.txr.position = {from.lon + rng_.normal(0.0, 0.01),
                        from.lat + rng_.normal(0.0, 0.008)};
      e.txr.position.lon = std::clamp(e.txr.position.lon, -180.0, 180.0);
      e.txr.position.lat = std::clamp(e.txr.position.lat, -90.0, 90.0);
      moved_.emplace_back(target, e.txr.position);
      return e;
    }
    case 3:
      --next_seq_;  // fire_event assigns its own seq
      return fire_event(t_ms);
    case 4: {
      e.kind = EventKind::kWhpPatch;
      const geo::LonLat at = random_onshore_position();
      const double half_w = rng_.uniform(0.05, 0.4);
      const double half_h = rng_.uniform(0.05, 0.4);
      e.patch_box = {at.lon - half_w, at.lat - half_h, at.lon + half_w,
                     at.lat + half_h};
      e.severity =
          static_cast<synth::WhpClass>(rng_.below(synth::kNumWhpClasses));
      return e;
    }
    default: {
      e.kind = EventKind::kAddTransceiver;
      const geo::LonLat site = random_onshore_position();
      e.txr.position = {site.lon + rng_.normal(0.0, 0.0003),
                        site.lat + rng_.normal(0.0, 0.0002)};
      e.txr.position.lon = std::clamp(e.txr.position.lon, -180.0, 180.0);
      e.txr.position.lat = std::clamp(e.txr.position.lat, -90.0, 90.0);
      e.txr.state =
          static_cast<std::int16_t>(world_->atlas().state_of(site));
      e.txr.radio = static_cast<cellnet::RadioType>(
          rng_.below(cellnet::kNumRadioTypes));
      const auto provider = static_cast<cellnet::Provider>(
          rng_.below(cellnet::kNumProviders));
      const std::vector<cellnet::MncRecord> blocks =
          world_->provider_registry().blocks_of(provider);
      const cellnet::MncRecord& block = blocks[rng_.below(blocks.size())];
      e.txr.mcc = block.mcc;
      e.txr.mnc = block.mnc;
      e.txr.cell_id = static_cast<std::uint32_t>(rng_.next_u64());
      added_.push_back(e.txr.position);
      return e;
    }
  }
}

std::vector<FeedEvent> FeedGenerator::tick() {
  const obs::Span span(obs::metrics::kDeltaFeedTickNs);
  retired_.clear();
  moved_.clear();
  added_.clear();
  touched_.clear();

  const std::uint64_t t_ms = ticks_ * options_.tick_ms;
  const std::uint64_t n_fresh =
      std::max<std::uint64_t>(1, rng_.poisson(options_.events_per_tick_mean));
  std::vector<FeedEvent> batch;
  batch.reserve(n_fresh + n_fresh / 2);
  for (std::uint64_t i = 0; i < n_fresh; ++i) {
    batch.push_back(fresh_event(t_ms + i));
    window_.emplace_back(ticks_ + options_.lookback_ticks, batch.back());
  }

  // Re-serve lookback copies verbatim (same seq — the dedup identity).
  const auto n_dup = static_cast<std::uint64_t>(
      options_.duplicate_fraction * static_cast<double>(n_fresh));
  for (std::uint64_t i = 0; i < n_dup && !window_.empty(); ++i) {
    batch.push_back(window_[rng_.below(window_.size())].second);
  }

  // Arrival order is not seq order: deterministic Fisher-Yates.
  for (std::size_t i = batch.size(); i > 1; --i) {
    std::swap(batch[i - 1], batch[rng_.below(i)]);
  }

  // Advance the mirror exactly the way the Applier re-densifies:
  // survivors in old-id order, movers at their destination, adds last.
  std::vector<bool> dead(positions_.size(), false);
  for (const std::uint32_t id : retired_) dead[id] = true;
  for (const auto& [id, to] : moved_) positions_[id] = to;
  std::vector<geo::LonLat> next;
  next.reserve(positions_.size() - retired_.size() + added_.size());
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    if (!dead[i]) next.push_back(positions_[i]);
  }
  next.insert(next.end(), added_.begin(), added_.end());
  positions_ = std::move(next);

  ++ticks_;
  while (!window_.empty() && window_.front().first <= ticks_) {
    window_.pop_front();
  }
  obs::count(obs::metrics::kDeltaFeedEvents, batch.size());
  return batch;
}

void corrupt_feed_stage(std::vector<FeedEvent>& raw) {
  const fault::Injector& inj = fault::Injector::global();
  if (!inj.armed()) return;
  std::vector<FeedEvent> out;
  out.reserve(raw.size() + 4);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    FeedEvent e = raw[i];
    if (!inj.fires(kFeedSite, e.seq)) {
      out.push_back(std::move(e));
      continue;
    }
    switch (inj.draw(kFeedSite, e.seq) & 3u) {
      case 0:  // the lookback window re-serves the record twice
        out.push_back(e);
        out.push_back(std::move(e));
        break;
      case 1:  // out-of-order arrival: lands behind its successor
        if (i + 1 < raw.size()) {
          out.push_back(raw[i + 1]);
          out.push_back(std::move(e));
          ++i;
        } else {
          out.push_back(std::move(e));
        }
        break;
      case 2:  // mangled beyond recognition
        e.kind = static_cast<EventKind>(0xff);
        out.push_back(std::move(e));
        break;
      default:  // truncated coordinate field
        e.txr.position.lat = std::numeric_limits<double>::quiet_NaN();
        out.push_back(std::move(e));
        break;
    }
  }
  raw = std::move(out);
}

FeedIngestor::FeedIngestor(const IngestOptions& options) : options_(options) {}

fault::Result<std::vector<FeedEvent>> FeedIngestor::ingest(
    std::vector<FeedEvent> raw) {
  using fault::RecoveryPolicy;
  const obs::Span span("delta.feed.ingest_ns");
  corrupt_feed_stage(raw);
  obs::count(obs::metrics::kDeltaFeedEvents, raw.size());

  std::stable_sort(raw.begin(), raw.end(),
                   [](const FeedEvent& a, const FeedEvent& b) {
                     return a.seq < b.seq;
                   });

  const std::uint64_t floor =
      watermark_ > options_.lookback_span
          ? watermark_ - options_.lookback_span
          : 0;
  IngestStats batch;
  std::vector<FeedEvent> accepted;
  accepted.reserve(raw.size());
  for (FeedEvent& e : raw) {
    if (seen_.contains(e.seq)) {
      ++batch.duplicates;
      continue;
    }
    if (e.seq < floor) {
      // Behind the lookback window: dedup can no longer vouch for it.
      ++batch.stale;
      if (options_.diagnostics != nullptr) {
        options_.diagnostics->dropped(fault::Status::error(
            fault::ErrCode::kOutOfRange, e.seq, std::string(kFeedSite),
            "event behind the lookback window"));
      }
      continue;
    }
    fault::Status shape = validate_shape(e);
    if (!shape.ok()) {
      if (options_.policy == RecoveryPolicy::kStrict) return shape;
      ++batch.malformed;
      if (options_.diagnostics != nullptr) {
        options_.diagnostics->dropped(std::move(shape));
      }
      continue;
    }
    seen_.insert(e.seq);
    if (e.seq >= watermark_) watermark_ = e.seq + 1;
    accepted.push_back(std::move(e));
  }
  batch.accepted = accepted.size();
  stats_.accepted += batch.accepted;
  stats_.duplicates += batch.duplicates;
  stats_.stale += batch.stale;
  stats_.malformed += batch.malformed;

  // Prune the dedup set to the window so it cannot grow with the feed.
  const std::uint64_t new_floor =
      watermark_ > options_.lookback_span
          ? watermark_ - options_.lookback_span
          : 0;
  if (new_floor > 0) {
    std::erase_if(seen_,
                  [new_floor](std::uint64_t s) { return s < new_floor; });
  }

  obs::count(obs::metrics::kDeltaFeedAccepted, batch.accepted);
  obs::count(obs::metrics::kDeltaFeedDuplicates, batch.duplicates);
  obs::count(obs::metrics::kDeltaFeedStale, batch.stale);
  obs::count(obs::metrics::kDeltaFeedMalformed, batch.malformed);
  return accepted;
}

}  // namespace fa::delta

#include "delta/apply.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "fault/injector.hpp"
#include "geo/projection.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "raster/raster.hpp"

namespace fa::delta {

namespace {

constexpr std::string_view kApplySite = "delta.apply";

fault::Status invalid(const FeedEvent& e, std::string message) {
  return fault::Status::error(fault::ErrCode::kOutOfRange, e.seq,
                              std::string(kApplySite), std::move(message));
}

// One staged hazard-surface edit (fire perimeter or box patch), kept in
// event order so overlapping edits resolve exactly as a replay would.
struct WhpEdit {
  const FeedEvent* event = nullptr;
};

// The lon/lat image of an Albers box. The inverse projection's
// coordinate extremes over a rectangle are attained on its boundary
// (the map is smooth and its gradient only vanishes at the cone apex,
// far outside CONUS), so sampling the edges bounds the image; the
// caller adds a margin to cover the gaps between samples.
geo::BBox lonlat_image(const geo::AlbersConus& proj, const geo::BBox& albers) {
  constexpr int kSamplesPerEdge = 48;
  geo::BBox out;
  for (int i = 0; i <= kSamplesPerEdge; ++i) {
    const double fx = static_cast<double>(i) / kSamplesPerEdge;
    const double x = albers.min_x + fx * (albers.max_x - albers.min_x);
    const double y = albers.min_y + fx * (albers.max_y - albers.min_y);
    out.expand(proj.inverse({x, albers.min_y}).as_vec());
    out.expand(proj.inverse({x, albers.max_y}).as_vec());
    out.expand(proj.inverse({albers.min_x, y}).as_vec());
    out.expand(proj.inverse({albers.max_x, y}).as_vec());
  }
  return out;
}

}  // namespace

fault::Result<ApplyResult> Applier::apply(
    const core::World& base, const core::ProviderRiskResult& base_risk,
    std::span<const FeedEvent> events, const ApplyOptions& options) {
  using fault::ErrCode;
  using fault::RecoveryPolicy;
  using fault::Status;
  const obs::Span span(obs::metrics::kDeltaApplyNs);
  obs::count(obs::metrics::kDeltaApplies);
  obs::count(obs::metrics::kDeltaApplyEvents, events.size());

  try {
    fault::Injector::global().fail_point(kApplySite,
                                         events.empty() ? 0 : events[0].seq);
  } catch (const fault::IoError& e) {
    obs::count(obs::metrics::kDeltaApplyFailures);
    return e.status();
  }

  const std::vector<cellnet::Transceiver>& base_txr =
      base.corpus().transceivers();
  const std::size_t n = base_txr.size();

  ApplyResult out;
  ApplyStats& stats = out.stats;
  stats.events = events.size();

  // ---- stage 1: validate and stage the batch (seq order) -------------
  std::vector<bool> alive(n, true);
  std::vector<bool> has_move(n, false);
  std::vector<geo::LonLat> move_to(n);
  std::vector<const FeedEvent*> adds;
  std::vector<WhpEdit> whp_edits;

  const auto reject = [&](Status status) -> std::optional<Status> {
    if (options.policy == RecoveryPolicy::kStrict) return status;
    ++stats.quarantined;
    if (options.diagnostics != nullptr) {
      options.diagnostics->dropped(std::move(status));
    }
    return std::nullopt;
  };

  for (const FeedEvent& e : events) {
    if (Status shape = validate_shape(e); !shape.ok()) {
      if (auto fail = reject(std::move(shape))) return *fail;
      continue;
    }
    switch (e.kind) {
      case EventKind::kRetireTransceiver:
        if (e.target >= n || !alive[e.target]) {
          if (auto fail = reject(invalid(e, "retire of dead target"))) {
            return *fail;
          }
          continue;
        }
        alive[e.target] = false;
        ++stats.retires;
        break;
      case EventKind::kMoveTransceiver:
        if (e.target >= n || !alive[e.target]) {
          if (auto fail = reject(invalid(e, "move of dead target"))) {
            return *fail;
          }
          continue;
        }
        has_move[e.target] = true;  // last move in seq order wins
        move_to[e.target] = e.txr.position;
        ++stats.moves;
        break;
      case EventKind::kAddTransceiver:
        adds.push_back(&e);
        ++stats.adds;
        break;
      case EventKind::kFirePerimeter:
        whp_edits.push_back({&e});
        ++stats.fires;
        break;
      case EventKind::kWhpPatch:
        whp_edits.push_back({&e});
        ++stats.patches;
        break;
    }
  }

  // ---- stage 2: hazard-surface patches (copy-on-write) ---------------
  // Edits land on a private copy only if at least one cell actually
  // changes value; an all-no-op batch keeps sharing the base surface.
  const synth::WhpModel& base_whp = base.whp();
  const geo::AlbersConus& proj = base_whp.projection();
  const raster::GridGeometry& geom = base_whp.grid().geom();

  std::shared_ptr<const synth::WhpModel> new_whp = base.whp_ptr();
  synth::WhpModel* mutable_whp = nullptr;
  // One box of changed cells PER EDIT, not a batch-wide union: a batch
  // whose fires land on opposite coasts would otherwise dirty a
  // CONUS-spanning bbox and re-evaluate most of the corpus for nothing.
  std::vector<geo::BBox> changed_boxes;
  geo::BBox* edit_box = nullptr;

  const auto cell_write = [&](int c, int r, std::uint8_t value) {
    if (!geom.in_bounds(c, r)) return;
    const raster::ClassRaster& current =
        mutable_whp != nullptr ? mutable_whp->grid_ : base_whp.grid();
    if (current.at(c, r) == value) return;
    if (mutable_whp == nullptr) {
      auto copy = std::make_shared<synth::WhpModel>(base_whp);
      mutable_whp = copy.get();
      new_whp = std::shared_ptr<const synth::WhpModel>(std::move(copy));
    }
    mutable_whp->grid_.at(c, r) = value;
    edit_box->expand(geom.cell_box(c, r));
    ++stats.whp_cells_changed;
  };

  for (const WhpEdit& edit : whp_edits) {
    const FeedEvent& e = *edit.event;
    geo::BBox this_edit;
    edit_box = &this_edit;
    if (e.kind == EventKind::kFirePerimeter) {
      // Project the lon/lat perimeter into Albers once, then raise every
      // cell whose center falls inside (burned ground stays hazardous:
      // max, never lower — re-served grown perimeters are idempotent).
      std::vector<geo::Vec2> albers_pts;
      albers_pts.reserve(e.perimeter.size());
      for (const geo::Vec2& p : e.perimeter.points()) {
        albers_pts.push_back(proj.forward(geo::LonLat::from_vec(p)));
      }
      const geo::Ring ring(std::move(albers_pts));
      const geo::BBox rb = ring.bbox();
      const int c0 = std::max(0, geom.col_of(rb.min_x));
      const int c1 = std::min(geom.cols - 1, geom.col_of(rb.max_x));
      const int r0 = std::max(0, geom.row_of(rb.min_y));
      const int r1 = std::min(geom.rows - 1, geom.row_of(rb.max_y));
      const auto floor_value = static_cast<std::uint8_t>(e.severity);
      for (int r = r0; r <= r1; ++r) {
        for (int c = c0; c <= c1; ++c) {
          if (!ring.contains(geom.cell_center(c, r))) continue;
          const raster::ClassRaster& current =
              mutable_whp != nullptr ? mutable_whp->grid_ : base_whp.grid();
          cell_write(c, r, std::max(current.at(c, r), floor_value));
        }
      }
    } else {
      // Box patch in lon/lat: candidate cells from the projected box's
      // Albers bounds, exact membership by inverse-projected center.
      geo::BBox albers_box;
      constexpr int kEdge = 16;
      for (int i = 0; i <= kEdge; ++i) {
        const double fx = static_cast<double>(i) / kEdge;
        const double lon =
            e.patch_box.min_x + fx * (e.patch_box.max_x - e.patch_box.min_x);
        const double lat =
            e.patch_box.min_y + fx * (e.patch_box.max_y - e.patch_box.min_y);
        albers_box.expand(proj.forward({lon, e.patch_box.min_y}));
        albers_box.expand(proj.forward({lon, e.patch_box.max_y}));
        albers_box.expand(proj.forward({e.patch_box.min_x, lat}));
        albers_box.expand(proj.forward({e.patch_box.max_x, lat}));
      }
      albers_box = albers_box.inflated(std::max(geom.cell_w, geom.cell_h));
      const int c0 = std::max(0, geom.col_of(albers_box.min_x));
      const int c1 = std::min(geom.cols - 1, geom.col_of(albers_box.max_x));
      const int r0 = std::max(0, geom.row_of(albers_box.min_y));
      const int r1 = std::min(geom.rows - 1, geom.row_of(albers_box.max_y));
      for (int r = r0; r <= r1; ++r) {
        for (int c = c0; c <= c1; ++c) {
          const geo::LonLat center = proj.inverse(geom.cell_center(c, r));
          if (!e.patch_box.contains(center.as_vec())) continue;
          cell_write(c, r, static_cast<std::uint8_t>(e.severity));
        }
      }
    }
    if (this_edit.valid()) changed_boxes.push_back(this_edit);
  }
  edit_box = nullptr;
  out.whp_shared = mutable_whp == nullptr;
  obs::count(obs::metrics::kDeltaApplyWhpCells, stats.whp_cells_changed);

  // ---- stage 3: dirty transceivers ------------------------------------
  // A surviving transceiver needs its hazard class recomputed iff its
  // projected position lands in a changed cell. Candidates come from
  // the spatial index over the lon/lat image of the changed region; the
  // recompute is a no-op for candidates whose cell didn't change, so a
  // generous margin costs time, never correctness.
  std::vector<bool> dirty(n, false);
  if (mutable_whp != nullptr) {
    const double margin_deg =
        std::max(geom.cell_w, geom.cell_h) / 70'000.0 + 0.05;
    for (const geo::BBox& box : changed_boxes) {
      const geo::BBox region =
          lonlat_image(proj, box.inflated(geom.cell_w)).inflated(margin_deg);
      base.txr_index().query_candidates(
          region, [&](std::uint32_t id, geo::Vec2) { dirty[id] = true; });
      out.dirty_boxes.push_back(region);
    }
  }

  // ---- stage 4: successor corpus + caches -----------------------------
  // Survivors in base order keep (or recompute) their caches; adds take
  // the tail ids — exactly the order validate_stage would re-densify.
  index::PointDelta delta;
  delta.new_id_of.resize(n);
  std::size_t n_kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    delta.new_id_of[i] = alive[i] ? static_cast<std::uint32_t>(n_kept++)
                                  : index::PointDelta::kDropped;
  }

  core::ProviderRiskResult risk = base_risk;
  bool regional_at_risk_changed = false;
  const auto risk_tally = [&](cellnet::Provider p, synth::WhpClass c,
                              std::ptrdiff_t sign) {
    core::ProviderRiskRow& row = risk.rows[static_cast<std::size_t>(p)];
    row.fleet = static_cast<std::size_t>(
        static_cast<std::ptrdiff_t>(row.fleet) + sign);
    switch (c) {
      case synth::WhpClass::kModerate:
        row.moderate = static_cast<std::size_t>(
            static_cast<std::ptrdiff_t>(row.moderate) + sign);
        break;
      case synth::WhpClass::kHigh:
        row.high = static_cast<std::size_t>(
            static_cast<std::ptrdiff_t>(row.high) + sign);
        break;
      case synth::WhpClass::kVeryHigh:
        row.very_high = static_cast<std::size_t>(
            static_cast<std::ptrdiff_t>(row.very_high) + sign);
        break;
      default:
        return;  // fleet adjusted above; no at-risk bucket involved
    }
    if (p == cellnet::Provider::kRegional) regional_at_risk_changed = true;
  };

  core::World w;
  w.config_ = base.config_;
  w.atlas_ = base.atlas_;
  w.whp_ = new_whp;
  w.counties_ = base.counties_;
  // From-parts contract: a world of final state S carries zero ingest
  // counters however S was reached; feed quarantine counts live in
  // ApplyStats and the delta.* OBS counters instead.
  w.ingest_dropped_ = 0;
  w.ingest_repaired_ = 0;

  const synth::WhpModel& whp = *new_whp;
  std::vector<cellnet::Transceiver> txr;
  txr.reserve(n_kept + adds.size());
  w.txr_class_.resize(n_kept + adds.size());
  w.txr_county_.resize(n_kept + adds.size());
  w.txr_provider_.resize(n_kept + adds.size());

  for (std::size_t i = 0; i < n; ++i) {
    if (!alive[i]) {
      risk_tally(base.txr_provider(static_cast<std::uint32_t>(i)),
                 base.txr_class(static_cast<std::uint32_t>(i)), -1);
      continue;
    }
    const auto old_id = static_cast<std::uint32_t>(i);
    const std::uint32_t new_id = delta.new_id_of[i];
    cellnet::Transceiver t = base_txr[i];
    t.id = new_id;
    std::uint8_t cls = base.txr_class_[i];
    std::int32_t county = base.txr_county_[i];
    if (has_move[i]) {
      t.position = move_to[i];
      cls = static_cast<std::uint8_t>(whp.class_at(t.position));
      county = base.counties().county_of(t.position);
      delta.moved.push_back({old_id, t.position.as_vec()});
      ++stats.dirty_transceivers;
    } else if (dirty[i]) {
      cls = static_cast<std::uint8_t>(whp.class_at(t.position));
      ++stats.dirty_transceivers;
    }
    if (cls != base.txr_class_[i]) {
      risk_tally(base.txr_provider(old_id), base.txr_class(old_id), -1);
      risk_tally(base.txr_provider(old_id), static_cast<synth::WhpClass>(cls),
                 +1);
      // risk_tally adjusts fleet on both legs; membership is unchanged.
    }
    w.txr_class_[new_id] = cls;
    w.txr_county_[new_id] = county;
    w.txr_provider_[new_id] = base.txr_provider_[i];
    txr.push_back(t);
  }

  for (const FeedEvent* e : adds) {
    const auto new_id = static_cast<std::uint32_t>(txr.size());
    cellnet::Transceiver t = e->txr;
    t.id = new_id;
    const auto cls = whp.class_at(t.position);
    w.txr_class_[new_id] = static_cast<std::uint8_t>(cls);
    w.txr_county_[new_id] = base.counties().county_of(t.position);
    const cellnet::Provider p = w.providers_.resolve(t.mcc, t.mnc);
    w.txr_provider_[new_id] = static_cast<std::uint8_t>(p);
    risk_tally(p, cls, +1);
    delta.added.push_back(t.position.as_vec());
    txr.push_back(t);
    ++stats.dirty_transceivers;
  }
  obs::count(obs::metrics::kDeltaApplyDirtyTxr, stats.dirty_transceivers);

  w.corpus_ = cellnet::CellCorpus{std::move(txr)};
  w.txr_index_ = base.txr_index().applied(delta);

  // The regional-brand count is a distinct-set cardinality, so it is not
  // incrementable from row deltas alone: when anything touched regional
  // at-risk membership, re-scan — one pass of two array reads per
  // record, no projection or geometry, still far from rebuild cost.
  if (regional_at_risk_changed) {
    std::set<std::string_view> brands;
    const std::vector<cellnet::Transceiver>& all =
        w.corpus_.transceivers();
    for (const cellnet::Transceiver& t : all) {
      if (static_cast<cellnet::Provider>(w.txr_provider_[t.id]) !=
          cellnet::Provider::kRegional) {
        continue;
      }
      if (!synth::whp_at_risk(static_cast<synth::WhpClass>(
              w.txr_class_[t.id]))) {
        continue;
      }
      brands.insert(w.providers_.brand(t.mcc, t.mnc));
    }
    risk.regional_brands_at_risk = brands.size();
  }

  out.world = std::move(w);
  out.provider_risk = risk;
  return out;
}

}  // namespace fa::delta

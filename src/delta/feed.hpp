// Synthetic live feed: a deterministic event stream over a world, plus
// the ingestion stage that normalizes the raw stream (FIRMS-style feeds
// re-serve a lookback window, arrive out of order, and carry malformed
// records) into a clean batch the Applier can consume.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "core/world.hpp"
#include "delta/event.hpp"
#include "fault/diagnostics.hpp"
#include "index/dynamic_rtree.hpp"
#include "synth/rng.hpp"

namespace fa::delta {

struct FeedOptions {
  std::uint64_t seed = 1;
  // Fresh events per tick (Poisson mean).
  double events_per_tick_mean = 32.0;
  // Relative kind weights for fresh events.
  double w_add = 4.0;
  double w_retire = 2.0;
  double w_move = 2.0;
  double w_fire = 1.5;
  double w_patch = 0.5;
  // Re-served lookback copies per tick, as a fraction of fresh events
  // (FIRMS serves the trailing window on every poll).
  double duplicate_fraction = 0.25;
  // How many past ticks stay re-servable.
  std::uint64_t lookback_ticks = 4;
  std::uint64_t tick_ms = 60'000;
};

// Deterministic event source. Mirrors the Applier's id assignment so
// every retire/move target it emits is a valid dense id of the epoch
// the next batch applies to: call tick() to get a raw batch, apply it
// (all of it — the generator assumes its own output is accepted), and
// tick() again for the successor epoch's batch.
class FeedGenerator {
 public:
  FeedGenerator(const core::World& world, const FeedOptions& options);

  // One feed poll: fresh events plus re-served duplicates from the
  // lookback window, deterministically shuffled (arrival order is not
  // seq order). Seqs are globally unique and monotone over fresh events.
  std::vector<FeedEvent> tick();

  std::uint64_t ticks() const { return ticks_; }
  std::uint64_t next_seq() const { return next_seq_; }
  // Transceivers alive in the generator's mirror of the current epoch.
  std::size_t alive() const { return positions_.size(); }

 private:
  struct Fire {
    geo::Vec2 center;  // lon/lat
    double radius = 0.0;
    int segments = 0;
  };

  FeedEvent fresh_event(std::uint64_t t_ms);
  FeedEvent fire_event(std::uint64_t t_ms);
  geo::LonLat random_onshore_position();

  FeedOptions options_;
  const core::World* world_;
  synth::Rng rng_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t ticks_ = 0;
  // Mirror of the live epoch's corpus: positions_[dense id]. Rebuilt
  // per tick exactly the way the Applier re-densifies.
  std::vector<geo::LonLat> positions_;
  // This tick's pending mutations (applied to the mirror at tick end).
  std::vector<std::uint32_t> retired_;
  std::vector<std::pair<std::uint32_t, geo::LonLat>> moved_;
  std::vector<geo::LonLat> added_;
  std::unordered_set<std::uint32_t> touched_;  // targets used this tick
  // Active fires, indexed by bbox so a new ignition that lands on an
  // existing fire grows it instead (the "grown perimeter" events).
  index::DynamicRTree fires_;
  std::vector<Fire> fire_state_;
  std::uint32_t next_fire_id_ = 0;
  // Lookback window: (expiry tick, event) for duplicate re-serving.
  std::deque<std::pair<std::uint64_t, FeedEvent>> window_;
};

struct IngestStats {
  std::size_t accepted = 0;
  std::size_t duplicates = 0;
  std::size_t stale = 0;
  std::size_t malformed = 0;
};

struct IngestOptions {
  fault::RecoveryPolicy policy = fault::RecoveryPolicy::kQuarantine;
  fault::Diagnostics* diagnostics = nullptr;
  // Dedup window in seq units: seqs older than watermark - span are
  // stale (droppable without dedup guarantees — outside the lookback).
  std::uint64_t lookback_span = 65'536;
};

// Normalizes raw feed batches: runs the "delta.feed" injection seam
// over the stream, sorts by seq, drops duplicates within the lookback
// window, drops stale records behind it, and validates shapes per the
// policy (Strict: first malformed record fails the batch; Quarantine /
// BestEffort: malformed records drop and count). Accepted events come
// back in strictly increasing seq order, ready for Applier::apply.
class FeedIngestor {
 public:
  explicit FeedIngestor(const IngestOptions& options = {});

  fault::Result<std::vector<FeedEvent>> ingest(std::vector<FeedEvent> raw);

  const IngestStats& stats() const { return stats_; }
  std::uint64_t watermark() const { return watermark_; }

 private:
  IngestOptions options_;
  IngestStats stats_;
  std::uint64_t watermark_ = 0;  // highest accepted seq + 1
  std::unordered_set<std::uint64_t> seen_;  // seqs within the window
};

// The "delta.feed" corruption stage (exposed so the quarantine-
// equivalence tests can predict exactly which records mutate): when the
// process-wide injector arms the seam, each selected event (keyed by
// seq) is duplicated, swapped with its successor (out-of-order
// arrival), or mangled into a shape validation rejects.
void corrupt_feed_stage(std::vector<FeedEvent>& raw);

}  // namespace fa::delta

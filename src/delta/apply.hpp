// Batched delta application: base epoch + accepted events -> successor
// epoch, without a from-scratch rebuild.
//
// The correctness contract (pinned by tests/delta/equivalence_test and
// the delta-epoch goldens): the produced world must be byte-identical —
// store::encode_world bytes and every query answer — to
// core::World::from_parts over the same final state. Incremental work
// is therefore only allowed where it provably reproduces what a fresh
// derivation would compute: clean survivors keep their cached class /
// county / provider, transceivers whose WHP cell changed are
// recomputed, and the spatial index is maintained through
// GridIndex::applied (itself byte-identical to a fresh build).
#pragma once

#include <span>

#include "core/provider_risk.hpp"
#include "core/world.hpp"
#include "delta/event.hpp"
#include "fault/diagnostics.hpp"

namespace fa::delta {

struct ApplyOptions {
  // Semantic validation policy. Strict: the first invalid event (dead /
  // out-of-range target, malformed shape) fails the batch; Quarantine /
  // BestEffort: invalid events drop and count.
  fault::RecoveryPolicy policy = fault::RecoveryPolicy::kQuarantine;
  fault::Diagnostics* diagnostics = nullptr;
};

struct ApplyStats {
  std::size_t events = 0;       // consumed from the batch
  std::size_t quarantined = 0;  // dropped by validation
  std::size_t adds = 0;
  std::size_t retires = 0;
  std::size_t moves = 0;
  std::size_t fires = 0;
  std::size_t patches = 0;
  std::size_t whp_cells_changed = 0;
  // Cache entries recomputed (movers, adds, hazard-region survivors) —
  // the measure of how much of the world the batch actually dirtied.
  std::size_t dirty_transceivers = 0;
};

struct ApplyResult {
  core::World world;
  core::ProviderRiskResult provider_risk;
  ApplyStats stats;
  // True when the batch left the WHP surface untouched and the new
  // world shares the base's WhpModel allocation (structure sharing).
  bool whp_shared = false;
  // Lon/lat regions whose hazard surface changed (one per WHP edit,
  // inflated by the same margin the dirty-transceiver scan used). Every
  // transceiver whose cached class this batch could have changed lies
  // inside one of these boxes — what lets a sharded view rebuild only
  // the shards the batch touched.
  std::vector<geo::BBox> dirty_boxes;
};

// Stateless; a struct (not free functions) so core::World and
// synth::WhpModel can grant friendship to exactly one name.
struct Applier {
  // `events` must be in increasing seq order (FeedIngestor output).
  // `base_risk` is the base epoch's provider-risk aggregate, adjusted
  // incrementally rather than re-tallied. The base world is not
  // modified; unchanged layers are shared by pointer.
  static fault::Result<ApplyResult> apply(
      const core::World& base, const core::ProviderRiskResult& base_risk,
      std::span<const FeedEvent> events, const ApplyOptions& options = {});
};

}  // namespace fa::delta

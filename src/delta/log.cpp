#include "delta/log.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "store/format.hpp"

namespace fa::delta {

namespace {

constexpr char kMagic[8] = {'F', 'A', 'D', 'E', 'L', 'T', 'A', '1'};
// magic(8) base_gen(8) ordinal(8) prev_crc(4) payload_len(4)
// payload_crc(4) header_crc(4) pad(8) = 48 bytes.
constexpr std::size_t kHeaderSize = 48;

void put_u32(std::string& s, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
  s.append(b, 4);
}
void put_u64(std::string& s, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  s.append(b, 8);
}
std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}
std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

fault::Status errno_status(const std::string& path, std::string what) {
  return fault::Status::error(fault::ErrCode::kIoFailure, 0, path,
                              what + ": " + std::strerror(errno));
}

std::string encode_increment(std::uint64_t base_gen, std::uint64_t ordinal,
                             std::uint32_t prev_crc,
                             const std::string& payload) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  out.append(kMagic, sizeof(kMagic));
  put_u64(out, base_gen);
  put_u64(out, ordinal);
  put_u32(out, prev_crc);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, store::crc32(payload.data(), payload.size()));
  put_u32(out, store::crc32(out.data(), out.size()));
  out.append(kHeaderSize - out.size(), '\0');
  out += payload;
  return out;
}

// Reads and verifies one increment file against the expected chain
// position. On success fills `payload` and the file's whole-file CRC
// (the next link); any mismatch is one Status — the caller treats every
// failure the same way: chain ends here.
fault::Status read_increment(const std::string& path,
                             std::uint64_t base_gen, std::uint64_t ordinal,
                             std::uint32_t expected_prev,
                             std::string& payload, std::uint32_t& file_crc) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return fault::Status::error(fault::ErrCode::kIoFailure, 0, path,
                                "cannot open increment");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = std::move(buf).str();
  const auto bad = [&](fault::ErrCode code, std::string message) {
    return fault::Status::error(code, ordinal, path, std::move(message));
  };
  if (bytes.size() < kHeaderSize) {
    return bad(fault::ErrCode::kTruncated, "short header");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return bad(fault::ErrCode::kBadMagic, "bad increment magic");
  }
  const std::uint32_t header_crc = get_u32(bytes.data() + 36);
  if (store::crc32(bytes.data(), 36) != header_crc) {
    return bad(fault::ErrCode::kParse, "header checksum mismatch");
  }
  if (get_u64(bytes.data() + 8) != base_gen) {
    return bad(fault::ErrCode::kSchema, "increment for another generation");
  }
  if (get_u64(bytes.data() + 16) != ordinal) {
    return bad(fault::ErrCode::kSchema, "increment out of sequence");
  }
  if (get_u32(bytes.data() + 24) != expected_prev) {
    return bad(fault::ErrCode::kParse, "chain link mismatch");
  }
  const std::uint32_t payload_len = get_u32(bytes.data() + 28);
  if (bytes.size() != kHeaderSize + payload_len) {
    return bad(fault::ErrCode::kTruncated, "payload length mismatch");
  }
  if (store::crc32(bytes.data() + kHeaderSize, payload_len) !=
      get_u32(bytes.data() + 32)) {
    return bad(fault::ErrCode::kParse, "payload checksum mismatch");
  }
  payload = bytes.substr(kHeaderSize);
  file_crc = store::crc32(bytes.data(), bytes.size());
  return {};
}

fault::Result<std::uint32_t> whole_file_crc(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return fault::Status::error(fault::ErrCode::kIoFailure, 0, path,
                                "cannot open base image for crc");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = std::move(buf).str();
  return store::crc32(bytes.data(), bytes.size());
}

}  // namespace

std::string increment_filename(std::uint64_t base_gen,
                               std::uint64_t ordinal) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "gen-%06llu.d-%06llu.fad",
                static_cast<unsigned long long>(base_gen),
                static_cast<unsigned long long>(ordinal));
  return buf;
}

fault::Result<DeltaLog> DeltaLog::open(const store::StoreDir& dir,
                                       std::uint64_t base_gen,
                                       std::uint32_t base_crc) {
  DeltaLog log(dir, base_gen);
  if (base_crc == 0) {
    fault::Result<std::uint32_t> crc = whole_file_crc(
        dir.file_path(store::generation_filename(base_gen)));
    if (!crc.ok()) return crc.status();
    base_crc = crc.value();
  }
  log.chain_crc_ = base_crc;
  // Walk the existing chain to its tail; everything past the first
  // broken link is unreachable debris from a torn append.
  for (std::uint64_t ordinal = 0;; ++ordinal) {
    const std::string path =
        dir.file_path(increment_filename(base_gen, ordinal));
    if (::access(path.c_str(), F_OK) != 0) {
      log.next_ordinal_ = ordinal;
      break;
    }
    std::string payload;
    std::uint32_t file_crc = 0;
    if (!read_increment(path, base_gen, ordinal, log.chain_crc_, payload,
                        file_crc)
             .ok()) {
      log.next_ordinal_ = ordinal;
      break;
    }
    log.chain_crc_ = file_crc;
  }
  for (std::uint64_t ordinal = log.next_ordinal_;; ++ordinal) {
    const std::string path =
        dir.file_path(increment_filename(base_gen, ordinal));
    if (::unlink(path.c_str()) != 0) break;
  }
  return log;
}

fault::Result<std::uint64_t> DeltaLog::append(
    std::span<const FeedEvent> batch) {
  const obs::Span span("delta.log.append_ns");
  const std::string image = encode_increment(
      base_gen_, next_ordinal_, chain_crc_, encode_events(batch));
  const std::string filename = increment_filename(base_gen_, next_ordinal_);
  const std::string final_path = dir_path_ + "/" + filename;
  const std::string tmp_path = final_path + ".tmp";

  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  if (fd < 0) {
    obs::count(obs::metrics::kDeltaLogAppendFailures);
    return errno_status(tmp_path, "open increment tmp");
  }
  std::size_t written = 0;
  while (written < image.size()) {
    const ssize_t n =
        ::write(fd, image.data() + written, image.size() - written);
    if (n < 0) {
      fault::Status s = errno_status(tmp_path, "write increment");
      ::close(fd);
      ::unlink(tmp_path.c_str());
      obs::count(obs::metrics::kDeltaLogAppendFailures);
      return s;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    fault::Status s = errno_status(tmp_path, "fsync increment");
    ::close(fd);
    ::unlink(tmp_path.c_str());
    obs::count(obs::metrics::kDeltaLogAppendFailures);
    return s;
  }
  ::close(fd);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    fault::Status s = errno_status(final_path, "rename increment");
    ::unlink(tmp_path.c_str());
    obs::count(obs::metrics::kDeltaLogAppendFailures);
    return s;
  }
  const int dfd = ::open(dir_path_.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }

  chain_crc_ = store::crc32(image.data(), image.size());
  obs::count(obs::metrics::kDeltaLogAppends);
  return next_ordinal_++;
}

DeltaLog::Replay DeltaLog::replay() const {
  const obs::Span span(obs::metrics::kDeltaLogReplayNs);
  Replay out;
  // The on-disk chain may be longer than this handle has seen (another
  // writer) or shorter (pruned); trust only the disk.
  std::uint32_t expected_prev = 0;
  {
    // Re-derive the base link so replay stands alone on cold start.
    fault::Result<std::uint32_t> crc = whole_file_crc(
        dir_path_ + "/" + store::generation_filename(base_gen_));
    if (!crc.ok()) return out;
    expected_prev = crc.value();
  }
  for (std::uint64_t ordinal = 0;; ++ordinal) {
    const std::string path =
        dir_path_ + "/" + increment_filename(base_gen_, ordinal);
    if (::access(path.c_str(), F_OK) != 0) break;
    std::string payload;
    std::uint32_t file_crc = 0;
    if (!read_increment(path, base_gen_, ordinal, expected_prev, payload,
                        file_crc)
             .ok()) {
      ++out.truncated;
      break;
    }
    fault::Result<std::vector<FeedEvent>> batch =
        decode_events(payload, "delta.log");
    if (!batch.ok()) {
      ++out.truncated;
      break;
    }
    out.batches.push_back(std::move(batch).take());
    expected_prev = file_crc;
  }
  obs::count(obs::metrics::kDeltaLogReplayed, out.batches.size());
  obs::count(obs::metrics::kDeltaLogTruncated, out.truncated);
  return out;
}

void DeltaLog::prune_stale(const store::StoreDir& dir,
                           std::uint64_t keep_base) {
  DIR* d = ::opendir(dir.path().c_str());
  if (d == nullptr) return;
  // Increment names carry their base generation; any chain not rooted
  // at `keep_base` is superseded (the newer full snapshot already
  // contains its effects), including orphans whose base image was
  // pruned by the store's keep window.
  std::vector<std::string> stale;
  while (const dirent* entry = ::readdir(d)) {
    const std::string_view name = entry->d_name;
    unsigned long long base = 0;
    unsigned long long ordinal = 0;
    int consumed = 0;
    if (std::sscanf(entry->d_name, "gen-%6llu.d-%6llu.fad%n", &base,
                    &ordinal, &consumed) == 2 &&
        static_cast<std::size_t>(consumed) == name.size() &&
        base != keep_base) {
      stale.push_back(dir.file_path(entry->d_name));
    }
  }
  ::closedir(d);
  for (const std::string& path : stale) ::unlink(path.c_str());
}

}  // namespace fa::delta

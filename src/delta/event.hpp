// fa::delta — live-feed incremental world updates.
//
// A FeedEvent is one record of a FIRMS-style live feed: a transceiver
// fleet change (add/retire/move), a new or grown fire perimeter, or a
// direct WHP raster patch. Events carry a monotone feed sequence number
// (the dedup identity — live feeds re-serve a lookback window, so the
// same event arrives more than once) and a feed-clock timestamp that
// bounds the dedup window.
//
// Batches of events are applied to a serving epoch by delta::Applier
// (apply.hpp) and persisted as hash-chained increments by delta::DeltaLog
// (log.hpp); encode_events/decode_events below is the canonical byte
// layout both share. The decode side is a total function: truncated or
// hostile bytes come back as an error Status, never UB.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cellnet/types.hpp"
#include "fault/status.hpp"
#include "geo/bbox.hpp"
#include "geo/polygon.hpp"
#include "synth/hazard.hpp"

namespace fa::delta {

enum class EventKind : std::uint8_t {
  kAddTransceiver = 0,    // txr: full record (id reassigned at apply)
  kRetireTransceiver = 1, // target: predecessor-epoch dense id
  kMoveTransceiver = 2,   // target + txr.position as the destination
  kFirePerimeter = 3,     // perimeter (lon/lat ring): WHP floor inside
  kWhpPatch = 4,          // patch_box (lon/lat): cells set to severity
};

inline constexpr int kNumEventKinds = 5;

std::string_view event_kind_name(EventKind k);

struct FeedEvent {
  std::uint64_t seq = 0;   // feed position, strictly increasing; dedup key
  std::uint64_t t_ms = 0;  // synthetic feed clock (lookback windows)
  EventKind kind = EventKind::kAddTransceiver;

  // kAddTransceiver: the record to append. kMoveTransceiver: only
  // txr.position is meaningful (the destination).
  cellnet::Transceiver txr;
  // kRetireTransceiver / kMoveTransceiver: dense id in the epoch the
  // batch applies to.
  std::uint32_t target = 0;

  // kFirePerimeter: lon/lat perimeter; cells whose center falls inside
  // are raised to at least `severity` (burned ground stays hazardous —
  // growth events re-serve a larger ring and the max is idempotent).
  geo::Ring perimeter;
  // kFirePerimeter: floor class. kWhpPatch: the exact class written.
  synth::WhpClass severity = synth::WhpClass::kVeryHigh;

  // kWhpPatch: lon/lat region; cells whose center falls inside are set.
  geo::BBox patch_box;

  bool operator==(const FeedEvent& o) const;
};

// Structural validity: kind/severity in domain, the shape-specific
// payload present (>= 3 finite perimeter vertices, a valid patch box,
// finite move/add coordinates). Semantic checks that need epoch state
// (target alive, position inside the lon/lat domain) live in the
// Applier. Error Statuses carry source "delta.feed" and offset = seq.
fault::Status validate_shape(const FeedEvent& event);

// -- canonical byte layout ---------------------------------------------
// Little-endian fixed-width fields, -0.0 normalized to +0.0 on write
// (same canonicalization as serve/wire.cpp); one u32 event count then
// each event's fields in declaration order, rings length-prefixed.
std::string encode_events(std::span<const FeedEvent> events);
fault::Result<std::vector<FeedEvent>> decode_events(
    std::string_view bytes, const std::string& source = "delta.events");

// Decoder ceilings: a hostile length prefix cannot drive allocation
// beyond these (the net frame cap does not protect the on-disk log).
inline constexpr std::uint32_t kMaxEventsPerBatch = 1u << 20;
inline constexpr std::uint32_t kMaxPerimeterVertices = 1u << 16;

}  // namespace fa::delta

// Selective re-shard after a delta batch.
//
// apply_update() advances a sharded view to the successor epoch a
// delta::Applier produced, rebuilding only the shards the batch
// touched and sharing every other shard's columns with the base view
// by refcount (the sharded analogue of the delta layer's
// structure-sharing contract).
//
// Equivalence contract (pinned by tests/shard/apply_test.cpp): the
// result is indistinguishable — encode_sharded bytes included — from
// ShardedWorld::from_world(update.world, update.provider_risk,
// base.layout()). The layout itself is never re-balanced: a lineage's
// tile->shard table is fixed at birth, only membership flows between
// shards, which is what makes "rebuild touched shards" and "re-shard
// from scratch over the same layout" the same function.
#pragma once

#include <cstddef>

#include "delta/apply.hpp"
#include "shard/world.hpp"

namespace fa::shard {

struct ShardApplyStats {
  std::size_t rebuilt = 0;  // shards rebuilt this apply
  std::size_t shared = 0;   // shards shared with the base by refcount
  // The batch retired transceivers: ids re-densify globally, every
  // shard's id column changes, so the whole view rebuilds.
  bool full_reshard = false;
};

// `base` must be the view the delta was applied over (update.world is
// its successor). A degraded base (quarantined shards) falls back to a
// full re-shard — the base columns cannot be trusted for diffing.
ShardedWorld apply_update(const ShardedWorld& base,
                          const delta::ApplyResult& update,
                          ShardApplyStats* stats = nullptr);

}  // namespace fa::shard

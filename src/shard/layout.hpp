// Geographic shard layout: a fixed lon/lat tile grid over the world's
// index domain, with a small balancing pass that groups contiguous
// row-major tile runs into shards of roughly equal transceiver count.
//
// The layout is the routing contract shared by the writer, the opened
// container, and the query planner:
//   * shard_of(p) uses the same clamped-floor arithmetic as
//     index::GridIndex, so every point the global index would bin —
//     including positions outside the domain, which clamp to edge
//     tiles — routes to exactly one shard, deterministically;
//   * shards_overlapping(box) clamps the box corners through the same
//     floors, so any point the box contains routes to a listed shard
//     (monotone clamped floors: box ∋ p ⇒ clamped tile range ∋ p's
//     clamped tile), and results merge in ascending shard id;
//   * a shard's bounds is the union of its member tile boxes, and every
//     member point lies inside it whenever the point is in-domain —
//     what makes the per-shard early-out (box misses bounds ⇒ no
//     member hits) sound.
//
// The layout is fixed for the life of a sharded lineage: delta applies
// rebuild member shards but never re-tile or re-balance, which is what
// keeps "apply then encode" byte-identical to "rebuild from the new
// world over the same layout".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geo/bbox.hpp"
#include "geo/vec2.hpp"

namespace fa::shard {

struct LayoutOptions {
  // Tile grid resolution. 32x16 over CONUS gives ~170 km tiles: fine
  // enough that the balancer can split the coastal population ridges,
  // coarse enough that the tile table stays a few KiB.
  int tiles_x = 32;
  int tiles_y = 16;
  // Shards to balance toward (exact when the grid has at least this
  // many tiles). Matches the default exec pool width so a continental
  // fan-out saturates the machine without oversubscribing it.
  int target_shards = 16;
};

// One shard's footprint in the layout (geometry only; the per-shard
// data columns live in shard::Shard).
struct ShardExtent {
  geo::BBox bounds;             // union of member tile boxes
  std::uint64_t first_tile = 0;  // contiguous row-major tile range
  std::uint64_t tile_count = 0;
  std::uint64_t n_points = 0;   // at layout build time
};

class ShardLayout {
 public:
  ShardLayout() = default;

  // Partitions `domain` (the global index bounds) into the option's
  // tile grid, counts `points` per tile with the clamped binning above,
  // and cuts the row-major tile sequence into contiguous runs whose
  // point counts track the adaptive target
  //   remaining_points / remaining_shards
  // (re-derived after every cut, so one dense run cannot starve the
  // rest). Deterministic: same domain + points + options, same layout.
  static ShardLayout build(const geo::BBox& domain,
                           std::span<const geo::Vec2> points,
                           const LayoutOptions& options = {});

  bool empty() const { return shards_.empty(); }
  const geo::BBox& domain() const { return domain_; }
  int tiles_x() const { return tiles_x_; }
  int tiles_y() const { return tiles_y_; }
  std::size_t shard_count() const { return shards_.size(); }
  const ShardExtent& extent(std::size_t s) const { return shards_[s]; }
  const std::vector<ShardExtent>& extents() const { return shards_; }
  // Row-major tile -> owning shard id.
  const std::vector<std::uint32_t>& tile_table() const { return tile_shard_; }

  // Clamped tile arithmetic (mirrors index::GridIndex::col_of/row_of).
  int tile_col(double x) const;
  int tile_row(double y) const;
  std::uint32_t shard_of(geo::Vec2 p) const {
    return tile_shard_[static_cast<std::size_t>(tile_row(p.y)) * tiles_x_ +
                       static_cast<std::size_t>(tile_col(p.x))];
  }

  // Ascending, deduplicated shard ids whose member tiles fall in the
  // clamped tile range of `box`. Empty for an invalid box. Any point
  // `box` contains routes to a listed shard.
  std::vector<std::uint32_t> shards_overlapping(const geo::BBox& box) const;

  // Lon/lat box of one tile (row-major index).
  geo::BBox tile_box(std::uint64_t tile) const;

  // Rebuilds the derived fields from serialized parts (shard codec).
  // Validates structural claims: positive grid dims, tile ranges that
  // partition [0, tiles) in ascending shard order, and a tile table
  // that agrees with the ranges. Returns false on any violation.
  static bool assemble(const geo::BBox& domain, int tiles_x, int tiles_y,
                       std::vector<std::uint32_t> tile_shard,
                       std::vector<ShardExtent> extents, ShardLayout& out);

 private:
  geo::BBox domain_;
  int tiles_x_ = 0;
  int tiles_y_ = 0;
  double inv_tw_ = 0.0;
  double inv_th_ = 0.0;
  std::vector<std::uint32_t> tile_shard_;  // row-major, size tiles_x*tiles_y
  std::vector<ShardExtent> shards_;
};

// Deterministic local grid sizing for one shard: ~6 points per cell,
// aspect ratio from the shard bounds, dims clamped to [1, 4096]. Both
// the from-world builder and the delta rebuilder derive dims through
// this one function, so a shard's grid never depends on how its current
// membership came to be.
void local_grid_dims(std::uint64_t n_points, const geo::BBox& bounds,
                     int& cols, int& rows);

}  // namespace fa::shard

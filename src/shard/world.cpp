#include "shard/world.hpp"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "cellnet/providers.hpp"
#include "cellnet/types.hpp"
#include "exec/exec.hpp"
#include "geo/lonlat.hpp"
#include "index/grid_index.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "store/access.hpp"
#include "synth/hazard.hpp"

namespace fa::shard {

namespace {

using fault::ErrCode;
using fault::Status;

Status mat_fail(ErrCode code, std::uint64_t offset, std::string message) {
  return Status::error(code, offset, "shard.materialize", std::move(message));
}

}  // namespace

Shard build_shard(const core::World& world,
                  std::span<const std::uint32_t> member_ids,
                  const geo::BBox& bounds) {
  const auto& corpus = world.corpus().transceivers();
  const auto& cls = store::Access::txr_class(world);
  const auto& county = store::Access::txr_county(world);
  const auto& provider = store::Access::txr_provider(world);
  const index::GridIndex& global = world.txr_index();

  const std::size_t n = member_ids.size();
  std::vector<geo::Vec2> points(n);
  for (std::size_t k = 0; k < n; ++k) {
    points[k] = global.point(member_ids[k]);
  }

  int cols = 0;
  int rows = 0;
  local_grid_dims(n, bounds, cols, rows);
  // Local counting-sort index over the member points; its binned SoA is
  // the shard's column order. Stable: binned ids ascend within every
  // cell, and member_ids is ascending, so the bin-order global ids are a
  // pure function of (members, bounds, dims).
  index::GridIndex local(std::move(points), bounds, cols, rows);

  auto columns = std::make_shared<ShardColumns>();
  ShardColumns& c = *columns;
  const auto& binned = store::Access::binned(local);
  c.ids.resize(n);
  c.cls.resize(n);
  c.provider.resize(n);
  c.radio.resize(n);
  c.mcc.resize(n);
  c.mnc.resize(n);
  c.cell_id.resize(n);
  c.state.resize(n);
  c.county.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint32_t gid = member_ids[binned[k]];
    c.ids[k] = gid;
    c.cls[k] = cls[gid];
    c.provider[k] = provider[gid];
    c.county[k] = county[gid];
    const cellnet::Transceiver& t = corpus[gid];
    c.radio[k] = static_cast<std::uint8_t>(t.radio);
    c.mcc[k] = t.mcc;
    c.mnc[k] = t.mnc;
    c.cell_id[k] = t.cell_id;
    c.state[k] = t.state;
  }
  c.xs = store::Access::binned_x(local);
  c.ys = store::Access::binned_y(local);
  c.cell_start = store::Access::cell_start(local);

  Shard s;
  s.bounds = bounds;
  s.cols = cols;
  s.rows = rows;
  s.inv_cw = store::Access::inv_cw(local);
  s.inv_ch = store::Access::inv_ch(local);
  s.ids = c.ids;
  s.xs = c.xs;
  s.ys = c.ys;
  s.cell_start = c.cell_start;
  s.cls = c.cls;
  s.provider = c.provider;
  s.radio = c.radio;
  s.mcc = c.mcc;
  s.mnc = c.mnc;
  s.cell_id = c.cell_id;
  s.state = c.state;
  s.county = c.county;
  s.payload = std::move(columns);
  return s;
}

ShardedWorld ShardedWorld::from_world(const core::World& world,
                                      const core::ProviderRiskResult& risk,
                                      const LayoutOptions& options) {
  const index::GridIndex& global = world.txr_index();
  const std::size_t n = global.size();
  std::vector<geo::Vec2> points(n);
  for (std::size_t i = 0; i < n; ++i) {
    points[i] = global.point(static_cast<std::uint32_t>(i));
  }
  return from_world(world, risk,
                    ShardLayout::build(global.bounds(), points, options));
}

ShardedWorld ShardedWorld::from_world(const core::World& world,
                                      const core::ProviderRiskResult& risk,
                                      ShardLayout layout) {
  obs::Span span(obs::metrics::kShardBuildNs);
  obs::count(obs::metrics::kShardBuilds);

  ShardedWorld sw;
  sw.meta_.config = world.config();
  sw.meta_.ingest_dropped = world.ingest_dropped();
  sw.meta_.ingest_repaired = world.ingest_repaired();
  sw.meta_.transceivers = world.corpus().size();
  sw.whp_ = world.whp_ptr();
  sw.counties_ = world.counties_ptr();
  sw.risk_ = risk;
  sw.layout_ = std::move(layout);
  sw.gcols_ = store::Access::cols(world.txr_index());
  sw.grows_ = store::Access::rows(world.txr_index());

  // Route every point once; iteration in id order keeps each shard's
  // member list ascending without a sort.
  const index::GridIndex& global = world.txr_index();
  const std::size_t shard_count = sw.layout_.shard_count();
  std::vector<std::vector<std::uint32_t>> members(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    members[s].reserve(sw.layout_.extent(s).n_points);
  }
  const std::size_t n = global.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t id = static_cast<std::uint32_t>(i);
    members[sw.layout_.shard_of(global.point(id))].push_back(id);
  }

  // Shard builds are independent (each writes only its own slot), so the
  // result does not depend on the worker count.
  sw.shards_.resize(shard_count);
  exec::parallel_for(
      shard_count,
      [&](std::size_t s) {
        sw.shards_[s] =
            build_shard(world, members[s], sw.layout_.extent(s).bounds);
      },
      exec::ExecOptions{.grain = 1});
  return sw;
}

fault::Result<core::World> ShardedWorld::materialize() const {
  obs::Span span(obs::metrics::kShardMaterializeNs);
  obs::count(obs::metrics::kShardMaterializes);

  if (quarantined_ > 0) {
    return mat_fail(ErrCode::kIoFailure, quarantined_,
                    "cannot materialize: " + std::to_string(quarantined_) +
                        " shard(s) quarantined");
  }
  const std::uint64_t total = meta_.transceivers;
  std::uint64_t held = 0;
  for (const Shard& s : shards_) held += s.n();
  if (held != total) {
    return mat_fail(ErrCode::kSchema, held,
                    "shard columns hold " + std::to_string(held) +
                        " points, meta says " + std::to_string(total));
  }

  // Scatter back to id order, proving along the way that shard ids form
  // a permutation of [0, total) and that every stored value is in domain
  // — the zero-copy open skipped per-record validation on purpose, so
  // this is where a tampered mmap gets caught.
  std::vector<cellnet::Transceiver> txr(total);
  std::vector<geo::Vec2> positions(total);
  std::vector<std::uint8_t> cls(total);
  std::vector<std::int32_t> county(total);
  std::vector<std::uint8_t> provider(total);
  std::vector<std::uint8_t> seen(total, 0);
  const std::int32_t county_count =
      static_cast<std::int32_t>(counties_->counties().size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& sh = shards_[s];
    for (std::size_t k = 0; k < sh.n(); ++k) {
      const std::uint32_t gid = sh.ids[k];
      if (gid >= total) {
        return mat_fail(ErrCode::kOutOfRange, gid,
                        "shard " + std::to_string(s) +
                            " references transceiver id out of range");
      }
      if (seen[gid]) {
        return mat_fail(ErrCode::kSchema, gid,
                        "transceiver id appears in more than one bin");
      }
      seen[gid] = 1;
      const geo::LonLat pos{sh.xs[k], sh.ys[k]};
      if (!geo::is_valid(pos)) {
        return mat_fail(ErrCode::kOutOfRange, gid,
                        "transceiver position outside lon/lat domain");
      }
      if (sh.cls[k] >= synth::kNumWhpClasses ||
          sh.radio[k] >= cellnet::kNumRadioTypes ||
          sh.provider[k] >= cellnet::kNumProviders ||
          sh.county[k] < -1 || sh.county[k] >= county_count) {
        return mat_fail(ErrCode::kOutOfRange, gid,
                        "transceiver attribute out of domain");
      }
      cellnet::Transceiver& t = txr[gid];
      t.id = gid;
      t.position = pos;
      t.radio = static_cast<cellnet::RadioType>(sh.radio[k]);
      t.mcc = sh.mcc[k];
      t.mnc = sh.mnc[k];
      t.cell_id = sh.cell_id[k];
      t.state = sh.state[k];
      positions[gid] = {sh.xs[k], sh.ys[k]};
      cls[gid] = sh.cls[k];
      county[gid] = sh.county[k];
      provider[gid] = sh.provider[k];
    }
  }
  // held == total and no duplicates ⇒ every id seen: a full permutation.

  // Rebuild the monolithic index over the same domain and dims the
  // original build used — same clamped binning, same counting sort, so
  // the result round-trips byte-identical through the monolithic codec.
  index::GridIndex idx(std::move(positions), layout_.domain(), gcols_,
                       grows_);

  core::World world = store::Access::make_world_shared(
      meta_.config, whp_, cellnet::CellCorpus(std::move(txr)), counties_,
      static_cast<std::size_t>(meta_.ingest_dropped),
      static_cast<std::size_t>(meta_.ingest_repaired), std::move(cls),
      std::move(county), std::move(provider), std::move(idx));

  // Semantic cross-check: the stored provider-risk aggregate must match
  // a recount over the reassembled columns.
  const core::ProviderRiskResult check = core::run_provider_risk(world);
  if (check.regional_brands_at_risk != risk_.regional_brands_at_risk) {
    return mat_fail(ErrCode::kSchema, 0,
                    "provider risk cross-check failed (regional brands)");
  }
  for (std::size_t p = 0; p < check.rows.size(); ++p) {
    const core::ProviderRiskRow& a = check.rows[p];
    const core::ProviderRiskRow& b = risk_.rows[p];
    if (a.fleet != b.fleet || a.moderate != b.moderate || a.high != b.high ||
        a.very_high != b.very_high) {
      return mat_fail(ErrCode::kSchema, p,
                      "provider risk cross-check failed (row mismatch)");
    }
  }
  return world;
}

}  // namespace fa::shard

// Sharded cold-start recovery ladder.
//
// ShardRecoveryManager walks the same store directory layout as
// store::RecoveryManager (MANIFEST -> scan fallback, generations newest
// to oldest) but recovers a serving *view* instead of a decoded world,
// and degrades shard-by-shard instead of generation-by-generation:
//
//   * a FASHRD01 generation opens zero-copy; if its whole-file checksum
//     disagrees with the manifest, the open retries with per-section
//     deep verification and quarantines exactly the shards that are
//     damaged — one flipped bit in one shard costs that shard, not the
//     generation (the monolithic ladder would reject the whole image
//     and fall back a generation, losing every committed delta since);
//   * a FASNAP01 generation (a store written before sharding, or by the
//     monolithic path) is decoded through store::RecoveryManager's full
//     ladder and migrated in memory with ShardedWorld::from_world — the
//     upgrade path needs no offline conversion step;
//   * a generation is rejected only when its frame or global sections
//     are unreadable, or every shard is quarantined (nothing servable).
#pragma once

#include <string>

#include "fault/status.hpp"
#include "shard/layout.hpp"
#include "shard/world.hpp"
#include "store/recovery.hpp"
#include "store/store.hpp"

namespace fa::shard {

struct RecoveredShardedWorld {
  ShardedWorld world;
  store::Generation generation;  // which image produced it
  // Loaded from a monolithic FASNAP01 image and re-sharded in memory.
  bool migrated = false;
};

class ShardRecoveryManager {
 public:
  // `layout` is used only when migrating a monolithic generation (a
  // FASHRD01 image carries its own layout).
  explicit ShardRecoveryManager(store::StoreDir dir,
                                const LayoutOptions& layout = {})
      : dir_(std::move(dir)), layout_(layout) {}

  const store::StoreDir& dir() const { return dir_; }

  // The ladder. On error every generation was rejected (or none exist);
  // the error Status summarizes the last failure. Reuses
  // store::RecoveryReport so operators read one step-per-attempt story
  // for either flavor.
  fault::Result<RecoveredShardedWorld> recover(
      store::RecoveryReport* report = nullptr);

  // Loads one generation, sniffing the magic to pick the path. Sets
  // `migrated` (when non-null) for the FASNAP01 case.
  fault::Result<ShardedWorld> load_generation(
      const store::Generation& generation, bool* migrated = nullptr);

 private:
  store::StoreDir dir_;
  LayoutOptions layout_;
};

// Convenience: open `path` (no create) and run the ladder.
fault::Result<RecoveredShardedWorld> recover_sharded(
    const std::string& path, const LayoutOptions& layout = {},
    store::RecoveryReport* report = nullptr);

}  // namespace fa::shard

#include "shard/codec.hpp"

#include <cmath>
#include <cstring>
#include <utility>

#include "exec/exec.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "store/access.hpp"
#include "store/codec.hpp"
#include "store/image.hpp"

namespace fa::shard {

namespace {

using fault::ErrCode;
using fault::Status;
using store::SectionInfo;
using store::SectionKind;
using store::SectionLookup;

// kShardLayout payload: one 64-byte header, the row-major tile->shard
// table, then one 64-byte record per shard.
constexpr std::size_t kLayoutHeaderBytes = 64;
constexpr std::size_t kShardRecordBytes = 64;

// Grid-dimension ceilings the writers respect (local_grid_dims clamps
// to 4096; the global index is 512x256). Open rejects anything larger
// before sizing an allocation off it.
constexpr int kMaxLocalGridDim = 4096;
constexpr int kMaxGlobalGridDim = 65536;
constexpr std::uint64_t kMaxGlobalCells = 1ull << 26;
constexpr int kMaxTilesPerAxis = 4096;
constexpr std::uint64_t kMaxTiles = 1ull << 22;

// The twelve per-shard section kinds in encode order.
constexpr SectionKind kShardKinds[store::kShardSectionsPerShard] = {
    SectionKind::kShardIds,      SectionKind::kShardX,
    SectionKind::kShardY,        SectionKind::kShardCellStart,
    SectionKind::kShardClass,    SectionKind::kShardProvider,
    SectionKind::kShardRadio,    SectionKind::kShardMcc,
    SectionKind::kShardMnc,      SectionKind::kShardCellId,
    SectionKind::kShardState,    SectionKind::kShardCounty,
};

bool finite_box(const geo::BBox& b) {
  return std::isfinite(b.min_x) && std::isfinite(b.min_y) &&
         std::isfinite(b.max_x) && std::isfinite(b.max_y);
}

// One shard's layout record as stored.
struct ShardRecord {
  geo::BBox bounds;
  std::int32_t cols = 0;
  std::int32_t rows = 0;
  std::uint64_t n_points = 0;
  std::uint64_t first_tile = 0;
  std::uint64_t tile_count = 0;
};

struct LayoutParts {
  ShardLayout layout;
  std::vector<ShardRecord> records;
  std::uint64_t total_points = 0;
  int gcols = 0;
  int grows = 0;
};

Status crc_check(const SectionLookup& img, const SectionInfo& s) {
  if (store::crc32(img.base + s.offset, s.length) != s.crc) {
    return store::fail(ErrCode::kTruncated, s.offset, img.source,
                       std::string("section ") +
                           std::string(section_kind_name(s.kind)) +
                           " payload checksum mismatch");
  }
  return Status{};
}

Status parse_layout(const SectionLookup& img, LayoutParts& out) {
  Status status;
  const SectionInfo* s = store::need(img, SectionKind::kShardLayout, status);
  if (!s) return status;
  if (Status c = crc_check(img, *s); !c.ok()) return c;
  if (s->length < kLayoutHeaderBytes) {
    return store::fail(ErrCode::kTruncated, s->offset, img.source,
                       "shard layout section too short");
  }
  store::Cursor c{img.base + s->offset, static_cast<std::size_t>(s->length)};
  const std::uint64_t shard_count = c.get<std::uint64_t>();
  out.total_points = c.get<std::uint64_t>();
  const std::int32_t tiles_x = c.get<std::int32_t>();
  const std::int32_t tiles_y = c.get<std::int32_t>();
  geo::BBox domain;
  domain.min_x = c.get<double>();
  domain.min_y = c.get<double>();
  domain.max_x = c.get<double>();
  domain.max_y = c.get<double>();
  out.gcols = c.get<std::int32_t>();
  out.grows = c.get<std::int32_t>();

  if (tiles_x < 1 || tiles_x > kMaxTilesPerAxis || tiles_y < 1 ||
      tiles_y > kMaxTilesPerAxis) {
    return store::fail(ErrCode::kOutOfRange, s->offset, img.source,
                       "shard layout tile grid dimensions out of range");
  }
  const std::uint64_t tiles = static_cast<std::uint64_t>(tiles_x) *
                              static_cast<std::uint64_t>(tiles_y);
  if (tiles > kMaxTiles || shard_count < 1 || shard_count > tiles) {
    return store::fail(ErrCode::kOutOfRange, s->offset, img.source,
                       "shard layout shard count out of range");
  }
  if (!finite_box(domain) || !domain.valid()) {
    return store::fail(ErrCode::kOutOfRange, s->offset, img.source,
                       "shard layout domain is not a valid bbox");
  }
  if (out.gcols < 1 || out.gcols > kMaxGlobalGridDim || out.grows < 1 ||
      out.grows > kMaxGlobalGridDim ||
      static_cast<std::uint64_t>(out.gcols) *
              static_cast<std::uint64_t>(out.grows) >
          kMaxGlobalCells) {
    return store::fail(ErrCode::kOutOfRange, s->offset, img.source,
                       "global index grid dimensions out of range");
  }
  const std::uint64_t want = kLayoutHeaderBytes + tiles * 4 +
                             shard_count * kShardRecordBytes;
  if (s->length != want) {
    return store::fail(ErrCode::kSchema, s->offset, img.source,
                       "shard layout payload disagrees with its counts");
  }

  std::vector<std::uint32_t> tile_shard =
      store::copy_vec<std::uint32_t>(c.p + kLayoutHeaderBytes, tiles * 4);
  c.off = kLayoutHeaderBytes + tiles * 4;

  out.records.resize(shard_count);
  std::vector<ShardExtent> extents(shard_count);
  std::uint64_t held = 0;
  for (std::uint64_t i = 0; i < shard_count; ++i) {
    ShardRecord& r = out.records[i];
    r.bounds.min_x = c.get<double>();
    r.bounds.min_y = c.get<double>();
    r.bounds.max_x = c.get<double>();
    r.bounds.max_y = c.get<double>();
    r.cols = c.get<std::int32_t>();
    r.rows = c.get<std::int32_t>();
    r.n_points = c.get<std::uint64_t>();
    r.first_tile = c.get<std::uint64_t>();
    r.tile_count = c.get<std::uint64_t>();
    if (!finite_box(r.bounds)) {
      return store::fail(ErrCode::kOutOfRange, s->offset, img.source,
                         "shard bounds are not finite");
    }
    extents[i] = ShardExtent{r.bounds, r.first_tile, r.tile_count,
                             r.n_points};
    held += r.n_points;
  }
  if (held != out.total_points) {
    return store::fail(ErrCode::kSchema, s->offset, img.source,
                       "per-shard point counts disagree with the total");
  }
  if (!ShardLayout::assemble(domain, tiles_x, tiles_y, std::move(tile_shard),
                             std::move(extents), out.layout)) {
    return store::fail(ErrCode::kSchema, s->offset, img.source,
                       "shard layout tile partition is inconsistent");
  }
  return Status{};
}

template <class T>
std::span<const T> section_span(const SectionLookup& img,
                                const SectionInfo& s) {
  return {reinterpret_cast<const T*>(img.base + s.offset),
          static_cast<std::size_t>(s.length) / sizeof(T)};
}

// Locates one shard's twelve sections and verifies the structural floor
// for span queries: every column length agrees with the layout record,
// the local grid dims are sane, and cell_start is a monotone prefix sum
// over exactly cols*rows cells ending at n_s. Returns false (shard
// quarantined) instead of failing the open. `deep` additionally CRCs
// every payload.
bool check_shard(const SectionLookup& img, std::uint32_t owner,
                 const ShardRecord& r, bool deep,
                 const SectionInfo* (&secs)[store::kShardSectionsPerShard]) {
  if (r.cols < 1 || r.cols > kMaxLocalGridDim || r.rows < 1 ||
      r.rows > kMaxLocalGridDim || !r.bounds.valid()) {
    return false;
  }
  const std::uint64_t n = r.n_points;
  const std::uint64_t cells = static_cast<std::uint64_t>(r.cols) *
                              static_cast<std::uint64_t>(r.rows);
  const std::uint64_t want_len[store::kShardSectionsPerShard] = {
      n * 4, n * 8, n * 8, (cells + 1) * 4, n, n, n, n * 2, n * 2, n * 4,
      n * 2, n * 4,
  };
  for (std::size_t k = 0; k < store::kShardSectionsPerShard; ++k) {
    const SectionInfo* s = img.find(kShardKinds[k], owner);
    if (!s || s->length != want_len[k] ||
        s->offset % store::kSectionAlign != 0) {
      return false;
    }
    if (deep && store::crc32(img.base + s->offset, s->length) != s->crc) {
      return false;
    }
    secs[k] = s;
  }
  const auto cell_start = section_span<std::uint32_t>(img, *secs[3]);
  if (cell_start.front() != 0 || cell_start.back() != n) return false;
  for (std::size_t i = 1; i < cell_start.size(); ++i) {
    if (cell_start[i] < cell_start[i - 1]) return false;
  }
  return true;
}

}  // namespace

// Friend of ShardedWorld: assembles a view from decoded parts.
struct Codec {
  static ShardedWorld assemble(store::MetaFields meta,
                               std::shared_ptr<const synth::WhpModel> whp,
                               std::shared_ptr<const synth::CountyMap> cty,
                               core::ProviderRiskResult risk,
                               ShardLayout layout, int gcols, int grows,
                               std::vector<Shard> shards,
                               std::size_t quarantined) {
    ShardedWorld sw;
    sw.meta_ = std::move(meta);
    sw.whp_ = std::move(whp);
    sw.counties_ = std::move(cty);
    sw.risk_ = std::move(risk);
    sw.layout_ = std::move(layout);
    sw.gcols_ = gcols;
    sw.grows_ = grows;
    sw.shards_ = std::move(shards);
    sw.quarantined_ = quarantined;
    return sw;
  }
};

std::string encode_sharded(const ShardedWorld& sw) {
  const std::size_t shard_count = sw.shard_count();
  store::ImageBuilder b(9 + store::kShardSectionsPerShard * shard_count,
                        store::kShardMagic, store::kGlobalOwner);

  store::encode_meta_section(b, sw.meta());

  b.section_raster_u8(SectionKind::kWhpGrid, sw.whp().grid());
  {
    b.begin(SectionKind::kWhpStates);
    b.geometry(sw.whp().state_grid().geom());
    b.vec(sw.whp().state_grid().data());
    b.end();
  }
  b.section_raster_u8(SectionKind::kWhpUrban, sw.whp().urban_mask());
  b.section_raster_u8(SectionKind::kWhpRoads, sw.whp().road_mask());

  store::encode_county_sections(b, sw.counties());
  store::encode_provider_risk_section(b, sw.provider_risk());

  {
    const ShardLayout& l = sw.layout();
    b.begin(SectionKind::kShardLayout);
    b.put<std::uint64_t>(shard_count);
    b.put<std::uint64_t>(sw.total_points());
    b.put<std::int32_t>(l.tiles_x());
    b.put<std::int32_t>(l.tiles_y());
    b.put<double>(l.domain().min_x);
    b.put<double>(l.domain().min_y);
    b.put<double>(l.domain().max_x);
    b.put<double>(l.domain().max_y);
    b.put<std::int32_t>(sw.global_cols());
    b.put<std::int32_t>(sw.global_rows());
    b.vec(l.tile_table());
    for (std::size_t s = 0; s < shard_count; ++s) {
      const Shard& sh = sw.shard(s);
      const ShardExtent& e = l.extent(s);
      b.put<double>(sh.bounds.min_x);
      b.put<double>(sh.bounds.min_y);
      b.put<double>(sh.bounds.max_x);
      b.put<double>(sh.bounds.max_y);
      b.put<std::int32_t>(sh.cols);
      b.put<std::int32_t>(sh.rows);
      // The record's count is the shard's *current* membership, not the
      // extent's build-time tally (delta applies shift points between
      // shards without re-balancing the layout).
      b.put<std::uint64_t>(sh.n());
      b.put<std::uint64_t>(e.first_tile);
      b.put<std::uint64_t>(e.tile_count);
    }
    b.end();
  }

  for (std::size_t s = 0; s < shard_count; ++s) {
    const Shard& sh = sw.shard(s);
    const std::uint32_t owner = static_cast<std::uint32_t>(s);
    b.section_span(SectionKind::kShardIds, owner, sh.ids.data(), sh.n());
    b.section_span(SectionKind::kShardX, owner, sh.xs.data(), sh.n());
    b.section_span(SectionKind::kShardY, owner, sh.ys.data(), sh.n());
    b.section_span(SectionKind::kShardCellStart, owner, sh.cell_start.data(),
                   sh.cell_start.size());
    b.section_span(SectionKind::kShardClass, owner, sh.cls.data(), sh.n());
    b.section_span(SectionKind::kShardProvider, owner, sh.provider.data(),
                   sh.n());
    b.section_span(SectionKind::kShardRadio, owner, sh.radio.data(), sh.n());
    b.section_span(SectionKind::kShardMcc, owner, sh.mcc.data(), sh.n());
    b.section_span(SectionKind::kShardMnc, owner, sh.mnc.data(), sh.n());
    b.section_span(SectionKind::kShardCellId, owner, sh.cell_id.data(),
                   sh.n());
    b.section_span(SectionKind::kShardState, owner, sh.state.data(), sh.n());
    b.section_span(SectionKind::kShardCounty, owner, sh.county.data(),
                   sh.n());
  }
  return b.finish();
}

fault::Result<ShardedWorld> open_sharded(const void* data, std::size_t size,
                                         std::shared_ptr<const void> payload,
                                         std::string source,
                                         const OpenOptions& options) {
  obs::Span span(obs::metrics::kShardOpenNs);
  obs::count(obs::metrics::kShardOpens);

  SectionLookup img;
  if (Status s = store::validate_container(data, size, source, img); !s.ok()) {
    return s;
  }

  // Global sections: small, always CRC'd, decoded through the codecs
  // shared with the monolithic format.
  Status status;
  for (const SectionKind kind :
       {SectionKind::kMeta, SectionKind::kWhpGrid, SectionKind::kWhpStates,
        SectionKind::kWhpUrban, SectionKind::kWhpRoads,
        SectionKind::kCountyTable, SectionKind::kCountyNames,
        SectionKind::kProviderRisk}) {
    const SectionInfo* s = store::need(img, kind, status);
    if (!s) return status;
    if (Status c = crc_check(img, *s); !c.ok()) return c;
  }

  store::MetaFields meta;
  if (Status s = store::decode_meta(img, meta); !s.ok()) return s;

  raster::ClassRaster whp_grid;
  raster::Raster<std::int16_t> whp_states;
  raster::MaskRaster whp_urban, whp_roads;
  if (Status s = decode_raster(img, SectionKind::kWhpGrid, whp_grid); !s.ok())
    return s;
  if (Status s = decode_raster(img, SectionKind::kWhpStates, whp_states);
      !s.ok())
    return s;
  if (Status s = decode_raster(img, SectionKind::kWhpUrban, whp_urban);
      !s.ok())
    return s;
  if (Status s = decode_raster(img, SectionKind::kWhpRoads, whp_roads);
      !s.ok())
    return s;

  std::vector<synth::County> counties;
  if (Status s = store::decode_counties(img, counties); !s.ok()) return s;

  core::ProviderRiskResult risk;
  if (Status s = store::decode_provider_risk(img, risk); !s.ok()) return s;

  LayoutParts parts;
  if (Status s = parse_layout(img, parts); !s.ok()) return s;
  if (parts.total_points != meta.transceivers) {
    return store::fail(ErrCode::kSchema, 0, source,
                       "shard layout total disagrees with scenario meta");
  }

  // Shards: structural floor only (plus payload CRCs under deep_verify);
  // a bad shard is quarantined, not fatal. The shards are independent,
  // so the walk fans out on fa::exec — under deep_verify that turns the
  // dominant cost of a cold start (CRCing the transceiver columns) into
  // a parallel sweep, which is what keeps the sharded cold start an
  // order of magnitude under the monolithic decode.
  const std::size_t shard_count = parts.records.size();
  std::vector<Shard> shards(shard_count);
  std::vector<std::uint8_t> bad(shard_count, 0);
  exec::parallel_for(
      shard_count,
      [&](std::size_t s) {
        const ShardRecord& r = parts.records[s];
        Shard& sh = shards[s];
        sh.bounds = r.bounds;
        sh.cols = std::max(1, static_cast<int>(r.cols));
        sh.rows = std::max(1, static_cast<int>(r.rows));
        // Same expressions the GridIndex constructor uses, so a reopened
        // shard bins queries exactly like the one that was encoded.
        sh.inv_cw = static_cast<double>(sh.cols) /
                    std::max(sh.bounds.width(), 1e-12);
        sh.inv_ch = static_cast<double>(sh.rows) /
                    std::max(sh.bounds.height(), 1e-12);
        sh.payload = payload;

        const SectionInfo* secs[store::kShardSectionsPerShard] = {};
        if (!check_shard(img, static_cast<std::uint32_t>(s), r,
                         options.deep_verify, secs)) {
          sh.quarantined = true;
          bad[s] = 1;
          return;
        }
        sh.ids = section_span<std::uint32_t>(img, *secs[0]);
        sh.xs = section_span<double>(img, *secs[1]);
        sh.ys = section_span<double>(img, *secs[2]);
        sh.cell_start = section_span<std::uint32_t>(img, *secs[3]);
        sh.cls = section_span<std::uint8_t>(img, *secs[4]);
        sh.provider = section_span<std::uint8_t>(img, *secs[5]);
        sh.radio = section_span<std::uint8_t>(img, *secs[6]);
        sh.mcc = section_span<std::uint16_t>(img, *secs[7]);
        sh.mnc = section_span<std::uint16_t>(img, *secs[8]);
        sh.cell_id = section_span<std::uint32_t>(img, *secs[9]);
        sh.state = section_span<std::int16_t>(img, *secs[10]);
        sh.county = section_span<std::int32_t>(img, *secs[11]);
      },
      exec::ExecOptions{.grain = 1});
  std::size_t quarantined = 0;
  for (const std::uint8_t b : bad) quarantined += b;
  if (quarantined) {
    obs::count(obs::metrics::kShardQuarantined, quarantined);
  }

  auto whp = std::make_shared<const synth::WhpModel>(store::Access::make_whp(
      std::move(whp_grid), std::move(whp_states), std::move(whp_urban),
      std::move(whp_roads)));
  auto cty = std::make_shared<const synth::CountyMap>(
      store::Access::make_counties(std::move(counties)));
  return Codec::assemble(std::move(meta), std::move(whp), std::move(cty),
                         std::move(risk), std::move(parts.layout),
                         parts.gcols, parts.grows, std::move(shards),
                         quarantined);
}

fault::Result<ShardedWorld> open_sharded(
    std::shared_ptr<const store::MappedFile> file, std::string source,
    const OpenOptions& options) {
  if (!file || !file->mapped()) {
    return store::fail(ErrCode::kIoFailure, 0, source,
                       "sharded open requires a mapped file");
  }
  const void* data = file->data();
  const std::size_t size = file->size();
  return open_sharded(data, size, std::move(file), std::move(source),
                      options);
}

fault::Result<ShardedWorld> open_sharded_file(const std::string& path,
                                              const OpenOptions& options) {
  auto mapped = store::MappedFile::open(path);
  if (!mapped.ok()) return mapped.status();
  return open_sharded(
      std::make_shared<const store::MappedFile>(std::move(mapped).take()),
      path, options);
}

bool ContainerReport::ok() const {
  if (!globals_ok) return false;
  for (const ShardReport& s : shards) {
    if (!s.structural_ok || !s.crc_ok) return false;
  }
  return true;
}

fault::Result<ContainerReport> inspect_sharded(const void* data,
                                               std::size_t size,
                                               std::string source) {
  SectionLookup img;
  if (Status s = store::validate_container(data, size, source, img); !s.ok()) {
    return s;
  }
  ContainerReport report;
  report.file_size = size;

  report.globals_ok = true;
  for (const SectionKind kind :
       {SectionKind::kMeta, SectionKind::kWhpGrid, SectionKind::kWhpStates,
        SectionKind::kWhpUrban, SectionKind::kWhpRoads,
        SectionKind::kCountyTable, SectionKind::kCountyNames,
        SectionKind::kProviderRisk}) {
    const SectionInfo* s = img.find(kind);
    if (!s || !crc_check(img, *s).ok()) report.globals_ok = false;
  }

  // Shard enumeration needs a sane layout; a mangled one is the one
  // per-shard failure that blocks the whole report.
  LayoutParts parts;
  if (Status s = parse_layout(img, parts); !s.ok()) return s;
  report.total_points = parts.total_points;
  report.tiles_x = static_cast<std::uint64_t>(parts.layout.tiles_x());
  report.tiles_y = static_cast<std::uint64_t>(parts.layout.tiles_y());

  report.shards.resize(parts.records.size());
  for (std::size_t s = 0; s < parts.records.size(); ++s) {
    const ShardRecord& r = parts.records[s];
    ShardReport& sr = report.shards[s];
    sr.shard = static_cast<std::uint32_t>(s);
    sr.bounds = r.bounds;
    sr.n_points = r.n_points;
    const SectionInfo* secs[store::kShardSectionsPerShard] = {};
    sr.structural_ok = check_shard(img, sr.shard, r, /*deep=*/false, secs);
    sr.crc_ok = sr.structural_ok;
    for (std::size_t k = 0; k < store::kShardSectionsPerShard; ++k) {
      const SectionInfo* sec =
          secs[k] ? secs[k] : img.find(kShardKinds[k], sr.shard);
      if (!sec) {
        sr.crc_ok = false;
        continue;
      }
      sr.bytes += sec->length;
      if (store::crc32(img.base + sec->offset, sec->length) != sec->crc) {
        sr.crc_ok = false;
      }
    }
  }
  return report;
}

}  // namespace fa::shard
